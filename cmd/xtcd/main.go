// Command xtcd is the XTC-style server daemon: it serves the transactional
// DOM API over the wire protocol, hosting one bib-document engine per lock
// protocol (sessions pick their protocol at open time) and multiplexing
// sessions across connections with admission control and backpressure.
//
// Usage:
//
//	xtcd                                  # listen on 127.0.0.1:4410
//	xtcd -addr :4410 -doc 0.05
//	xtcd -debug-addr localhost:6060       # live /metrics + pprof
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// transactions are aborted, and every engine must pass LeakCheck before the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bibserve"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/tamix"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:4410", "TCP listen address")
		docScale     = flag.Float64("doc", 0.02, "document scale per engine (1.0 = 2000 books)")
		lockTimeout  = flag.Duration("lock-timeout", 5*time.Second, "lock-wait timeout inside each engine")
		ckptEvery    = flag.Duration("checkpoint-interval", 0, "fuzzy-checkpoint cadence per engine; enables WAL logging + segment GC (0 disables)")
		walRetain    = flag.Int("wal-retain", 0, "newest WAL segments kept by checkpoint GC (0 = default)")
		maxSessions  = flag.Int("max-sessions", 256, "admission cap on concurrently open sessions")
		queueDepth   = flag.Int("queue-depth", 16, "per-session request queue bound (excess rejected busy)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget before in-flight sessions are cut")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "per-frame write deadline; a peer that stops reading is cut (negative disables)")
		keepAlive    = flag.Duration("keepalive", 30*time.Second, "expected client heartbeat interval (negative disables keep-alive enforcement)")
		kaMisses     = flag.Int("keepalive-misses", 3, "missed keep-alive intervals before a silent connection is closed")
		idleSession  = flag.Duration("idle-session", 5*time.Minute, "reap sessions idle this long: abort their transaction, release locks, free the slot (negative disables)")
		reapEvery    = flag.Duration("reap-interval", 0, "idle-session sweep cadence (0 = idle-session/4)")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address")
		quiet        = flag.Bool("quiet", false, "suppress connection-level diagnostics")
	)
	flag.Parse()

	logf := log.New(os.Stderr, "xtcd: ", log.LstdFlags).Printf
	cfg := server.Config{
		Addr: *addr,
		NewEngine: bibserve.NewEngineFactory(bibserve.Options{
			Bib:                tamix.Scaled(*docScale),
			LockTimeout:        *lockTimeout,
			CheckpointInterval: *ckptEvery,
			WALRetain:          *walRetain,
		}),
		MaxSessions:  *maxSessions,
		SessionQueue: *queueDepth,
		DrainTimeout: *drainTimeout,

		WriteTimeout:       *writeTimeout,
		KeepAliveInterval:  *keepAlive,
		KeepAliveMisses:    *kaMisses,
		SessionIdleTimeout: *idleSession,
		ReapInterval:       *reapEvery,
	}
	if !*quiet {
		cfg.Logf = logf
	}

	srv, err := server.Listen(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xtcd:", err)
		os.Exit(1)
	}
	if *debugAddr != "" {
		dbg, stop, err := metrics.ServeDebug(*debugAddr, srv.Metrics().Snapshot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xtcd: debug endpoint:", err)
			os.Exit(1)
		}
		defer stop()
		logf("debug endpoint on http://%s/ (metrics, pprof)", dbg)
	}
	logf("listening on %s (protocols: %s)", srv.Addr(), protocol.NamesHelp())

	// Serve until a signal arrives, then drain: stop admitting, let in-flight
	// requests finish inside the drain budget, abort whatever remains, and
	// audit every engine for lock residue.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case sig := <-sigCh:
		logf("received %v, draining (budget %s)", sig, *drainTimeout)
	case err := <-serveErr:
		// Listener died without a signal — still drain sessions and audit.
		logf("accept loop failed: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "xtcd: shutdown:", err)
		os.Exit(1)
	}
	logf("clean shutdown: all engines passed LeakCheck")
}
