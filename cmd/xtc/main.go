// Command xtc inspects XTC document files and XML documents through the
// storage layer: node statistics, SPLID sizes, B*-tree shapes, vocabulary,
// and optional subtree dumps.
//
// Usage:
//
//	xtc -load doc.xml -stats             # import XML, print statistics
//	xtc -open bib.xtc -stats             # inspect a stored document file
//	xtc -open bib.xtc -dump 1.17.17      # export one subtree as XML
//	xtc -open bib.xtc -id b42            # resolve an id attribute
//	xtc -load doc.xml -verify            # run the structural verifier
//	xtc -open bib.xtc -wal bib.wal       # attach a write-ahead log
//	xtc -open bib.xtc -wal bib.wal -recover -stats
//	                                     # replay the log after a crash
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/btree"
	"repro/internal/metrics"
	"repro/internal/pagestore"
	"repro/internal/splid"
	"repro/internal/storage"
	"repro/internal/wal"
)

func main() {
	var (
		load      = flag.String("load", "", "XML file to import into a fresh in-memory document")
		open      = flag.String("open", "", "XTC document file to open")
		stats     = flag.Bool("stats", false, "print document statistics")
		verify    = flag.Bool("verify", false, "run the structural verifier")
		dump      = flag.String("dump", "", "SPLID of a subtree to export as XML (\"root\" for everything)")
		id        = flag.String("id", "", "resolve an id attribute value to its element")
		walDir    = flag.String("wal", "", "directory of write-ahead log segments to attach")
		recover   = flag.Bool("recover", false, "run ARIES-style recovery from -wal before opening (requires -open)")
		shards    = flag.Int("buffer-shards", 0, "page-buffer table shards (0 = default 16; clamped to the pool size)")
		flusher   = flag.Duration("flusher", 0, "background flusher interval for dirty pages (0 = disabled)")
		ckptEvery = flag.Duration("checkpoint-interval", 0, "fuzzy-checkpoint cadence; flusher-driven, enables WAL segment GC (0 = disabled; requires -wal)")
		walRetain = flag.Int("wal-retain", 0, "newest WAL segments kept by checkpoint GC (0 = default)")
		redoShard = flag.Int("redo-shards", 0, "parallel redo shards for -recover (0 = default 16)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address while running")
		metricsFl = flag.Bool("metrics", false, "print the buffer/WAL latency digests after the run")
	)
	flag.Parse()

	// One registry for the whole invocation: the buffer pool and the WAL
	// report into it, the debug endpoint reads it live, and -metrics prints
	// the digests at the end.
	var reg *metrics.Registry
	if *debugAddr != "" || *metricsFl {
		reg = metrics.NewRegistry()
	}
	if *debugAddr != "" {
		addr, stop, err := metrics.ServeDebug(*debugAddr, reg.Snapshot)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/ (metrics, pprof)\n", addr)
	}

	opts := storage.Options{
		BufferShards:       *shards,
		FlusherInterval:    *flusher,
		CheckpointInterval: *ckptEvery,
		RedoShards:         *redoShard,
		Metrics:            reg,
	}

	var log *wal.Log
	if *walDir != "" {
		segs, serr := wal.NewFileSegmentStore(*walDir)
		if serr != nil {
			fatal(serr)
		}
		var lerr error
		log, lerr = wal.Open(segs, wal.Config{Retain: *walRetain, Metrics: reg})
		if lerr != nil {
			fatal(lerr)
		}
	}
	if *recover && (*open == "" || log == nil) {
		fatal(fmt.Errorf("-recover requires both -open and -wal"))
	}
	if *ckptEvery > 0 && log == nil {
		fatal(fmt.Errorf("-checkpoint-interval requires -wal"))
	}

	var doc *storage.Document
	var err error
	switch {
	case *load != "" && *open != "":
		fatal(fmt.Errorf("-load and -open are mutually exclusive"))
	case *load != "":
		f, ferr := os.Open(*load)
		if ferr != nil {
			fatal(ferr)
		}
		doc, err = storage.Create(pagestore.NewMemBackend(), "doc", opts)
		if err == nil {
			err = doc.ImportXML(bufio.NewReader(f))
		}
		f.Close()
		if err == nil && log != nil {
			err = doc.AttachWAL(log)
		}
	case *open != "":
		fb, ferr := pagestore.OpenFile(*open)
		if ferr != nil {
			fatal(ferr)
		}
		if *recover {
			var rep *storage.RecoveryReport
			doc, rep, err = storage.Recover(fb, log, opts)
			if err == nil {
				printRecovery(rep)
			}
		} else {
			doc, err = storage.Open(fb, opts)
			if err == nil && log != nil {
				err = doc.AttachWAL(log)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	defer doc.Close()

	if *stats {
		st, err := doc.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("nodes:      %d elements, %d texts, %d attributes (%d roots), %d strings\n",
			st.Elements, st.Texts, st.Attributes, st.AttrRoots, st.Strings)
		fmt.Printf("depth:      %d levels (incl. virtual attribute/string nodes)\n", st.MaxDepth)
		fmt.Printf("SPLIDs:     %.2f bytes average (%d total)\n", st.AvgSplid(), st.SplidBytes)
		fmt.Printf("content:    %d bytes of character data\n", st.ValueBytes)
		fmt.Printf("vocabulary: %d names\n", doc.Vocabulary().Len())
		fmt.Printf("doc tree:   depth %d, %d leaf + %d internal pages, %d keys, separators %.1fB avg\n",
			st.DocTree.Depth, st.DocTree.LeafPages, st.DocTree.InternalPages, st.DocTree.Keys, avgSep(st.DocTree))
		if st.DocTree.Keys > 0 {
			fmt.Printf("key store:  %.2f bytes/key after page prefix compression (logical %.2f)\n",
				float64(st.DocTree.KeyBytes+st.DocTree.PrefixBytes)/float64(st.DocTree.Keys),
				st.AvgSplid())
		}
		fmt.Printf("elem index: depth %d, %d keys\n", st.ElemTree.Depth, st.ElemTree.Keys)
		fmt.Printf("id index:   depth %d, %d keys\n", st.IDTree.Depth, st.IDTree.Keys)
		bs := doc.Store().Stats()
		fmt.Printf("buffer:     %d shards, %d hits, %d misses, %d evictions, %d writebacks (%d by flusher)\n",
			doc.Store().Shards(), bs.Hits, bs.Misses, bs.Evictions, bs.Writebacks, bs.FlusherWrites)
	}
	if *verify {
		if err := doc.Verify(); err != nil {
			fatal(err)
		}
		fmt.Println("verify: ok")
	}
	if *id != "" {
		el, err := doc.ElementByID([]byte(*id))
		if err != nil {
			fatal(err)
		}
		n, err := doc.GetNode(el)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("id %q -> %s element at %v\n", *id, doc.Vocabulary().Name(n.Name), el)
	}
	if *dump != "" {
		target := doc.Root()
		if *dump != "root" {
			target, err = splid.Parse(*dump)
			if err != nil {
				fatal(err)
			}
		}
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		if err := doc.ExportXML(w, target); err != nil {
			fatal(err)
		}
	}
	if *metricsFl {
		printMetrics(reg.Snapshot())
	}
}

// printMetrics prints the registry's latency digests and counters — the
// offline twin of the -debug-addr /metrics/summary endpoint.
func printMetrics(s *metrics.Snapshot) {
	for _, name := range s.HistogramNames() {
		d := s.Summary(name)
		if d.Count == 0 {
			continue
		}
		fmt.Printf("latency %-24s n=%-8d avg=%-12v p50=%-12v p95=%-12v p99=%-12v max=%v\n",
			name, d.Count,
			time.Duration(d.Avg).Round(time.Nanosecond),
			time.Duration(d.P50), time.Duration(d.P95), time.Duration(d.P99),
			time.Duration(d.Max))
	}
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("counter %-24s %d\n", name, s.Counters[name])
	}
}

func printRecovery(rep *storage.RecoveryReport) {
	var winners []uint64
	for txn := range rep.Committed {
		winners = append(winners, txn)
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i] < winners[j] })
	fmt.Printf("recovery:   %d log records, %d deltas redone, %d skipped, %d pages healed\n",
		rep.Records, rep.RedoneOps, rep.SkippedOps, rep.HealedPages)
	fmt.Printf("            committed %v, rolled back %v (%d ops undone)\n",
		winners, rep.Losers, rep.UndoneOps)
	if rep.CheckpointLSN != 0 {
		fmt.Printf("            checkpoint at LSN %d bounded the scan\n", rep.CheckpointLSN)
	}
	var busy int
	var maxNS int64
	for _, ns := range rep.ShardRedoNS {
		if ns > 0 {
			busy++
		}
		if ns > maxNS {
			maxNS = ns
		}
	}
	fmt.Printf("            redo: %d shards (%d busy), slowest %v\n",
		rep.RedoShards, busy, time.Duration(maxNS))
}

func avgSep(st btree.TreeStats) float64 {
	if st.Separators == 0 {
		return 0
	}
	return float64(st.SeparatorBytes) / float64(st.Separators)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xtc:", err)
	os.Exit(1)
}
