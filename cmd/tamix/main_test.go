package main

import "testing"

func TestParseDepths(t *testing.T) {
	ds, err := parseDepths("0,1, 2,7")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 || ds[0] != 0 || ds[3] != 7 {
		t.Errorf("ds = %v", ds)
	}
	if _, err := parseDepths("0,x"); err == nil {
		t.Error("bad depth should fail")
	}
	if _, err := parseDepths(""); err == nil {
		t.Error("empty list should fail")
	}
}
