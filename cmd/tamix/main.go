// Command tamix regenerates the figures of "Contest of XML Lock Protocols"
// (VLDB 2006) by running the TaMix benchmark framework against the embedded
// XTC-style engine.
//
// Usage:
//
//	tamix -fig 9                     # quick, scaled-down run of Figure 9
//	tamix -fig 7 -doc 0.05 -time 0.01
//	tamix -fig all -csv out/         # everything, CSV files per figure
//	tamix -fig 9 -doc 1 -time 1      # the paper's full setting (hours!)
//
// Scaling: -doc scales the bib document (1.0 = 2000 books), -time scales
// the run-control intervals (1.0 = 5-minute runs). Throughput is always
// normalized to the paper's 5-minute interval.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/figures"
	"repro/internal/tamix"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 7, 8, 9, 10, 11, or all")
		docScale = flag.Float64("doc", 0.02, "document scale (1.0 = the paper's 2000 books)")
		timeSc   = flag.Float64("time", 0.002, "timing scale (1.0 = 5-minute runs)")
		depths   = flag.String("depths", "0,1,2,3,4,5,6,7", "comma-separated lock depths")
		runs     = flag.Int("runs", 3, "TAdelBook repetitions for figure 11")
		avg      = flag.Int("avg", 1, "repetitions averaged per CLUSTER1 configuration (the paper used 4)")
		csvDir   = flag.String("csv", "", "also write CSV files into this directory")
		seed     = flag.Int64("seed", 0, "workload seed offset")
		lockTO   = flag.Duration("lock-timeout", 0, "lock-wait timeout (0 = scaled default)")
	)
	flag.Parse()

	ds, err := parseDepths(*depths)
	if err != nil {
		fatal(err)
	}
	opt := figures.Options{DocScale: *docScale, TimeScale: *timeSc, Depths: ds, Runs: *avg, Seed: *seed, LockTimeout: *lockTO}

	want := map[string]bool{}
	if *fig == "all" {
		for _, f := range []string{"7", "8", "9", "10", "11"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	if want["7"] {
		fmt.Println("== Figure 7: CLUSTER1 under taDOM3+ — influence of isolation level ==")
		tp, dl, err := figures.Figure7(opt)
		if err != nil {
			fatal(err)
		}
		figures.RenderSeries(os.Stdout, "Figure 7 (left)", "throughput", tp)
		figures.RenderSeries(os.Stdout, "Figure 7 (right)", "deadlocks", dl)
		writeCSV(*csvDir, "figure7.csv", tp)
		fmt.Println()
	}
	if want["8"] {
		fmt.Println("== Figure 8: CLUSTER1 under the *-2PL group ==")
		rows, err := figures.Figure8(opt)
		if err != nil {
			fatal(err)
		}
		figures.RenderFigure8(os.Stdout, rows)
		fmt.Println()
	}
	if want["9"] || want["10"] {
		fmt.Println("== Sweeping CLUSTER1 over all depth-aware protocols (figures 9 and 10) ==")
		sweep, err := figures.Cluster1Sweep(figures.DepthProtocols(), opt)
		if err != nil {
			fatal(err)
		}
		if want["9"] {
			tp, dl := figures.Figure9(sweep, opt)
			figures.RenderSeries(os.Stdout, "Figure 9 (left)", "throughput", tp)
			figures.RenderSeries(os.Stdout, "Figure 9 (right)", "deadlocks", dl)
			writeCSV(*csvDir, "figure9.csv", tp)
			fmt.Println()
		}
		if want["10"] {
			panels := figures.Figure10(sweep, opt)
			for i, typ := range []tamix.TxType{tamix.TAqueryBook, tamix.TAchapter, tamix.TAlendAndReturn, tamix.TArenameTopic} {
				title := fmt.Sprintf("Figure 10%c: %v", 'a'+i, typ)
				figures.RenderSeries(os.Stdout, title, "throughput", panels[typ])
				writeCSV(*csvDir, fmt.Sprintf("figure10%c.csv", 'a'+i), panels[typ])
			}
			fmt.Println()
		}
	}
	if want["11"] {
		fmt.Println("== Figure 11: CLUSTER2 — TAdelBook execution times ==")
		rows, err := figures.Figure11(opt, *runs)
		if err != nil {
			fatal(err)
		}
		figures.RenderFigure11(os.Stdout, rows)
	}
}

func parseDepths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad depth %q: %w", part, err)
		}
		out = append(out, d)
	}
	return out, nil
}

func writeCSV(dir, name string, series []figures.Series) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	figures.WriteSeriesCSV(f, series)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tamix:", err)
	os.Exit(1)
}
