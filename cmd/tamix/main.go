// Command tamix regenerates the figures of "Contest of XML Lock Protocols"
// (VLDB 2006) by running the TaMix benchmark framework against the embedded
// XTC-style engine.
//
// Usage:
//
//	tamix -fig 9                     # quick, scaled-down run of Figure 9
//	tamix -fig 7 -doc 0.05 -time 0.01
//	tamix -fig all -csv out/         # everything, CSV files per figure
//	tamix -fig 9 -doc 1 -time 1      # the paper's full setting (hours!)
//
// Scaling: -doc scales the bib document (1.0 = 2000 books), -time scales
// the run-control intervals (1.0 = 5-minute runs). Throughput is always
// normalized to the paper's 5-minute interval.
//
// Server mode drives the same workload through the xtcd wire protocol
// instead of an in-process engine:
//
//	tamix -server self               # spin up a loopback xtcd, bench it
//	tamix -server localhost:4410     # bench a running xtcd
//	tamix -server self -protocols taDOM* -conns 1,16,64
//
// Each (protocol, connection-count) cell appends one JSON line — throughput
// plus the client request-latency percentiles — to BENCH_server.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/bibserve"
	"repro/internal/figures"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/tamix"
	"repro/internal/tx"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 7, 8, 9, 10, 11, or all")
		docScale = flag.Float64("doc", 0.02, "document scale (1.0 = the paper's 2000 books)")
		timeSc   = flag.Float64("time", 0.002, "timing scale (1.0 = 5-minute runs)")
		depths   = flag.String("depths", "0,1,2,3,4,5,6,7", "comma-separated lock depths")
		runs     = flag.Int("runs", 3, "TAdelBook repetitions for figure 11")
		avg      = flag.Int("avg", 1, "repetitions averaged per CLUSTER1 configuration (the paper used 4)")
		csvDir   = flag.String("csv", "", "also write CSV files into this directory")
		seed     = flag.Int64("seed", 0, "workload seed offset")
		lockTO   = flag.Duration("lock-timeout", 0, "lock-wait timeout (0 = scaled default)")

		serverAddr = flag.String("server", "", "bench an xtcd server instead of regenerating figures: an address, or \"self\" for an in-process loopback daemon")
		protoList  = flag.String("protocols", "all", "server mode: protocols to bench ("+protocol.NamesHelp()+")")
		connList   = flag.String("conns", "1,16,64", "server mode: comma-separated pooled-connection counts to sweep")
		isoName    = flag.String("iso", "repeatable", "server mode: isolation level (none, uncommitted, committed, repeatable, snapshot; \"snapshot\" runs the read-only transaction types at MVCC snapshot isolation — snapshot protocol only — with writers at repeatable)")
		benchOut   = flag.String("out", "BENCH_server.json", "server mode: append one JSON line per cell to this file (\"-\" = stdout)")
	)
	flag.Parse()

	if *serverAddr != "" {
		if err := runServerBench(*serverAddr, *protoList, *connList, *isoName, *benchOut, *docScale, *timeSc, *seed); err != nil {
			fatal(err)
		}
		return
	}

	ds, err := parseDepths(*depths)
	if err != nil {
		fatal(err)
	}
	opt := figures.Options{DocScale: *docScale, TimeScale: *timeSc, Depths: ds, Runs: *avg, Seed: *seed, LockTimeout: *lockTO}

	want := map[string]bool{}
	if *fig == "all" {
		for _, f := range []string{"7", "8", "9", "10", "11"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	if want["7"] {
		fmt.Println("== Figure 7: CLUSTER1 under taDOM3+ — influence of isolation level ==")
		tp, dl, err := figures.Figure7(opt)
		if err != nil {
			fatal(err)
		}
		figures.RenderSeries(os.Stdout, "Figure 7 (left)", "throughput", tp)
		figures.RenderSeries(os.Stdout, "Figure 7 (right)", "deadlocks", dl)
		writeCSV(*csvDir, "figure7.csv", tp)
		fmt.Println()
	}
	if want["8"] {
		fmt.Println("== Figure 8: CLUSTER1 under the *-2PL group ==")
		rows, err := figures.Figure8(opt)
		if err != nil {
			fatal(err)
		}
		figures.RenderFigure8(os.Stdout, rows)
		fmt.Println()
	}
	if want["9"] || want["10"] {
		fmt.Println("== Sweeping CLUSTER1 over all depth-aware protocols (figures 9 and 10) ==")
		sweep, err := figures.Cluster1Sweep(figures.DepthProtocols(), opt)
		if err != nil {
			fatal(err)
		}
		if want["9"] {
			tp, dl := figures.Figure9(sweep, opt)
			figures.RenderSeries(os.Stdout, "Figure 9 (left)", "throughput", tp)
			figures.RenderSeries(os.Stdout, "Figure 9 (right)", "deadlocks", dl)
			writeCSV(*csvDir, "figure9.csv", tp)
			fmt.Println()
		}
		if want["10"] {
			panels := figures.Figure10(sweep, opt)
			for i, typ := range []tamix.TxType{tamix.TAqueryBook, tamix.TAchapter, tamix.TAlendAndReturn, tamix.TArenameTopic} {
				title := fmt.Sprintf("Figure 10%c: %v", 'a'+i, typ)
				figures.RenderSeries(os.Stdout, title, "throughput", panels[typ])
				writeCSV(*csvDir, fmt.Sprintf("figure10%c.csv", 'a'+i), panels[typ])
			}
			fmt.Println()
		}
	}
	if want["11"] {
		fmt.Println("== Figure 11: CLUSTER2 — TAdelBook execution times ==")
		rows, err := figures.Figure11(opt, *runs)
		if err != nil {
			fatal(err)
		}
		figures.RenderFigure11(os.Stdout, rows)
	}
}

func parseDepths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad depth %q: %w", part, err)
		}
		out = append(out, d)
	}
	return out, nil
}

func writeCSV(dir, name string, series []figures.Series) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	figures.WriteSeriesCSV(f, series)
}

// serverBenchRow is one BENCH_server.json line: one protocol at one
// connection count, with throughput (commits normalized to the paper's
// 5-minute interval) and the client-side request-latency percentiles.
type serverBenchRow struct {
	Date         string                 `json:"date"`
	Server       string                 `json:"server"`
	Protocol     string                 `json:"protocol"`
	Conns        int                    `json:"conns"`
	DocScale     float64                `json:"doc_scale"`
	TimeScale    float64                `json:"time_scale"`
	Committed    int                    `json:"committed"`
	Aborted      int                    `json:"aborted"`
	Deadlocks    uint64                 `json:"deadlocks"`
	Timeouts     uint64                 `json:"timeouts"`
	LockRequests uint64                 `json:"lock_requests"`
	Reconnects   uint64                 `json:"reconnects"`
	Redials      uint64                 `json:"redials"`
	Throughput   float64                `json:"throughput"`
	Latency      metrics.LatencySummary `json:"request_latency"`
}

// runServerBench sweeps the CLUSTER1 workload over (protocol × connection
// count) against an xtcd server — a loopback daemon started in-process when
// addr is "self" — and appends one JSON line per cell to the out file. Every
// run carries the server-side audit (Verify + LeakCheck) from the remote
// TaMix path, so this doubles as an end-to-end integrity gate.
func runServerBench(addr, protoList, connList, isoName, out string, docScale, timeSc float64, seed int64) error {
	protos, err := protocol.ParseList(protoList)
	if err != nil {
		return err
	}
	iso, err := tx.ParseLevel(isoName)
	if err != nil {
		return err
	}
	if iso == tx.LevelSnapshot {
		// Snapshot isolation is read-only, so the mixed CLUSTER1 workload
		// keeps its writers at repeatable; the read-only transaction types
		// pin snapshots (the remote engine downgrades them automatically
		// for snapshot-read protocols).
		iso = tx.LevelRepeatable
		for _, p := range protos {
			if !protocol.UsesSnapshotReads(p) {
				return fmt.Errorf("-iso snapshot needs snapshot-read protocols; %s takes read locks (use -protocols snapshot)", p.Name())
			}
		}
	}
	var conns []int
	for _, part := range strings.Split(connList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad connection count %q", part)
		}
		conns = append(conns, n)
	}

	serverLabel := addr
	if addr == "self" {
		srv, err := bibserve.Start(bibserve.Options{
			Bib:         tamix.Scaled(docScale),
			LockTimeout: tamix.ScaledTiming(timeSc).LockTimeout,
		}, server.Config{})
		if err != nil {
			return fmt.Errorf("start loopback server: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "tamix: loopback shutdown:", err)
			}
		}()
		addr = srv.Addr()
		serverLabel = "self"
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	date := time.Now().UTC().Format(time.RFC3339)

	for _, p := range protos {
		for _, c := range conns {
			cfg := tamix.Cluster1Config(p.Name(), iso, 5, docScale, timeSc)
			cfg.Remote = addr
			cfg.RemoteConns = c
			cfg.Seed = seed
			cfg.Metrics = metrics.NewRegistry() // fresh per cell: distributions must not mix
			res, err := tamix.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s @ %d conns: %w", p.Name(), c, err)
			}
			row := serverBenchRow{
				Date:         date,
				Server:       serverLabel,
				Protocol:     p.Name(),
				Conns:        c,
				DocScale:     docScale,
				TimeScale:    timeSc,
				Committed:    res.Committed,
				Aborted:      res.Aborted,
				Deadlocks:    res.Deadlocks,
				Timeouts:     res.Timeouts,
				LockRequests: res.LockRequests,
				Reconnects:   res.Metrics.CounterValue("client.reconnects"),
				Redials:      res.Metrics.CounterValue("client.redials"),
				Throughput:   res.Throughput(),
				Latency:      res.Metrics.Summary("client.request_ns"),
			}
			if err := enc.Encode(row); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "%-12s conns=%-3d committed=%-6d tpmC=%-10.1f p95=%s\n",
				p.Name(), c, res.Committed, row.Throughput,
				time.Duration(row.Latency.P95))
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tamix:", err)
	os.Exit(1)
}
