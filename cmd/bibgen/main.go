// Command bibgen generates the TaMix bib library document (Section 4.3) and
// either exports it as XML or stores it as a reopenable XTC document file.
//
// Usage:
//
//	bibgen -scale 0.01                   # print a small bib as XML
//	bibgen -scale 0.1 -out bib.xtc       # store a document file
//	bibgen -scale 0.1 -out bib.xtc -stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/pagestore"
	"repro/internal/tamix"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.01, "document scale (1.0 = the paper's 2000 books)")
		out   = flag.String("out", "", "store as an XTC document file instead of printing XML")
		stats = flag.Bool("stats", false, "print document statistics")
		seed  = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	cfg := tamix.Scaled(*scale)
	cfg.Seed = *seed

	var backend pagestore.Backend
	if *out != "" {
		fb, err := pagestore.OpenFile(*out)
		if err != nil {
			fatal(err)
		}
		backend = fb
	} else {
		backend = pagestore.NewMemBackend()
	}

	doc, cat, err := tamix.GenerateBib(backend, cfg)
	if err != nil {
		fatal(err)
	}
	defer doc.Close()

	if *stats {
		fmt.Fprintf(os.Stderr, "bib: %d nodes, %d topics, %d books, %d persons, %d vocabulary names\n",
			doc.Size(), len(cat.TopicIDs), cat.Books, len(cat.PersonIDs), doc.Vocabulary().Len())
	}
	if *out != "" {
		if err := doc.Flush(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bibgen: stored %d nodes in %s\n", doc.Size(), *out)
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := doc.ExportXML(w, doc.Root()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bibgen:", err)
	os.Exit(1)
}
