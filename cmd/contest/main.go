// Command contest runs the headline experiment in one shot: CLUSTER1 at
// isolation level repeatable under all 11 lock protocols, printed as a
// ranking table — the "contest" of the paper's title.
//
// Usage:
//
//	contest                  # quick, scaled-down run
//	contest -depth 5 -doc 0.05 -time 0.005
//	contest -json report.json            # machine-readable run report
//	contest -json -                      # report to stdout, table to stderr
//	contest -debug-addr localhost:6060   # live /metrics + pprof while running
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"repro/internal/metrics"
	"repro/internal/pagestore"
	"repro/internal/protocol"
	"repro/internal/tamix"
	"repro/internal/tx"
)

func main() {
	var (
		depth       = flag.Int("depth", 5, "lock depth for depth-aware protocols")
		docScale    = flag.Float64("doc", 0.02, "document scale (1.0 = 2000 books)")
		timeSc      = flag.Float64("time", 0.002, "timing scale (1.0 = 5-minute runs)")
		seed        = flag.Int64("seed", 0, "workload seed offset")
		lockTimeout = flag.Duration("lock-timeout", 0, "lock-wait timeout (0 = scaled default)")
		maxRestarts = flag.Int("max-restarts", 0, "restart cap per aborted transaction (0 = default, negative = no restarts)")
		faultProb   = flag.Float64("fault", 0, "transient storage-fault probability per page read/write (0 = off)")
		tornWrites  = flag.Bool("torn-writes", false, "injected write faults also tear the page image")
		frames      = flag.Int("frames", 0, "page-buffer frames (0 = default; shrink below the working set so -fault reaches the backend)")
		shards      = flag.Int("buffer-shards", 0, "page-buffer table shards (0 = default 16; clamped to the pool size)")
		flusher     = flag.Duration("flusher", 0, "background flusher interval for dirty pages (0 = disabled)")
		useWAL      = flag.Bool("wal", true, "attach an in-memory WAL so commits pay a durability force (wal.* latencies)")
		jsonOut     = flag.String("json", "", "write the JSON run report to this file (\"-\" = stdout, table moves to stderr)")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address while running")
		protoList   = flag.String("protocols", "all", "protocols to contest ("+protocol.NamesHelp()+")")
	)
	flag.Parse()

	contestants, err := protocol.ParseList(*protoList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "contest:", err)
		os.Exit(1)
	}

	// The debug endpoint follows the protocol currently under test: each run
	// gets a fresh registry (distributions must not mix protocols) and the
	// endpoint reads whichever one is live.
	var liveReg atomic.Pointer[metrics.Registry]
	if *debugAddr != "" {
		addr, stop, err := metrics.ServeDebug(*debugAddr, func() *metrics.Snapshot {
			return liveReg.Load().Snapshot() // nil-safe: empty snapshot between runs
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "contest: debug endpoint:", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/ (metrics, pprof)\n", addr)
	}

	report := &tamix.ContestReport{
		DocScale:  *docScale,
		TimeScale: *timeSc,
		Depth:     *depth,
		Seed:      *seed,
	}
	type row struct {
		group  string
		result *tamix.Result
	}
	rows := map[string]row{}
	for _, p := range contestants {
		cfg := tamix.Cluster1Config(p.Name(), tx.LevelRepeatable, *depth, *docScale, *timeSc)
		cfg.Seed += *seed
		if *lockTimeout > 0 {
			cfg.LockTimeout = *lockTimeout
		}
		cfg.MaxRestarts = *maxRestarts
		cfg.Bib.BufferFrames = *frames
		cfg.Bib.BufferShards = *shards
		cfg.Bib.FlusherInterval = *flusher
		cfg.WAL = *useWAL
		if *faultProb > 0 {
			cfg.Faults = &pagestore.FaultConfig{
				Seed:       cfg.Seed,
				ReadProb:   *faultProb,
				WriteProb:  *faultProb,
				TornWrites: *tornWrites,
			}
		}
		reg := metrics.NewRegistry()
		cfg.Metrics = reg
		liveReg.Store(reg)
		fmt.Fprintf(os.Stderr, "running %-10s ...", p.Name())
		start := time.Now()
		res, err := tamix.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, " %6.1f tx/5min, %d deadlocks, %d restarts (%s)\n",
			res.Throughput(), res.Deadlocks, res.Restarts, time.Since(start).Round(time.Millisecond))
		rows[p.Name()] = row{p.Group(), res}
		report.Results = append(report.Results, tamix.RankedReport{
			Group:  p.Group(),
			Report: res.Report(),
		})
	}
	report.Rank()

	tableOut := io.Writer(os.Stdout)
	if *jsonOut == "-" {
		tableOut = os.Stderr
	}
	w := tabwriter.NewWriter(tableOut, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rank\tprotocol\tgroup\tthroughput\tcommitted\taborted\trestarts\tdropped\tdeadlocks\tconv-deadlocks\tlock requests\tcache hits\tlock waits\twait p95\tfix-miss p95\twal-force p95\tfaults\tretries")
	for _, rr := range report.Results {
		r := rows[rr.Protocol]
		fmt.Fprintf(w, "%d\t%s\t%s\t%.1f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\t%s\t%d\t%d\n",
			rr.Rank, rr.Protocol, r.group, rr.Throughput,
			rr.Committed, rr.Aborted, rr.Restarts, rr.Dropped,
			rr.Deadlocks, rr.ConversionDeadlocks, rr.LockRequests,
			rr.LockCacheHits, rr.LockWaits,
			p95(rr.Latencies["lock.wait"]), p95(rr.Latencies["buffer.fix_miss"]), p95(rr.Latencies["wal.force"]),
			rr.FaultsInjected, rr.BufferRetries)
	}
	w.Flush()

	if *jsonOut != "" {
		out := io.Writer(os.Stdout)
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "contest:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "contest:", err)
			os.Exit(1)
		}
	}
}

// p95 formats a latency digest's p95 for the table ("-" when empty).
func p95(s metrics.LatencySummary) string {
	if s.Count == 0 {
		return "-"
	}
	return time.Duration(s.P95).Round(time.Microsecond).String()
}
