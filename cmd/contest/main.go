// Command contest runs the headline experiment in one shot: CLUSTER1 at
// isolation level repeatable under all 11 lock protocols, printed as a
// ranking table — the "contest" of the paper's title.
//
// Usage:
//
//	contest                  # quick, scaled-down run
//	contest -depth 5 -doc 0.05 -time 0.005
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/pagestore"
	"repro/internal/protocol"
	"repro/internal/tamix"
	"repro/internal/tx"
)

func main() {
	var (
		depth       = flag.Int("depth", 5, "lock depth for depth-aware protocols")
		docScale    = flag.Float64("doc", 0.02, "document scale (1.0 = 2000 books)")
		timeSc      = flag.Float64("time", 0.002, "timing scale (1.0 = 5-minute runs)")
		seed        = flag.Int64("seed", 0, "workload seed offset")
		lockTimeout = flag.Duration("lock-timeout", 0, "lock-wait timeout (0 = scaled default)")
		maxRestarts = flag.Int("max-restarts", 0, "restart cap per aborted transaction (0 = default, negative = no restarts)")
		faultProb   = flag.Float64("fault", 0, "transient storage-fault probability per page read/write (0 = off)")
		tornWrites  = flag.Bool("torn-writes", false, "injected write faults also tear the page image")
		frames      = flag.Int("frames", 0, "page-buffer frames (0 = default; shrink below the working set so -fault reaches the backend)")
		shards      = flag.Int("buffer-shards", 0, "page-buffer table shards (0 = default 16; clamped to the pool size)")
		flusher     = flag.Duration("flusher", 0, "background flusher interval for dirty pages (0 = disabled)")
	)
	flag.Parse()

	type row struct {
		proto   string
		group   string
		result  *tamix.Result
		ranking float64
	}
	var rows []row
	for _, p := range protocol.All() {
		cfg := tamix.Cluster1Config(p.Name(), tx.LevelRepeatable, *depth, *docScale, *timeSc)
		cfg.Seed += *seed
		if *lockTimeout > 0 {
			cfg.LockTimeout = *lockTimeout
		}
		cfg.MaxRestarts = *maxRestarts
		cfg.Bib.BufferFrames = *frames
		cfg.Bib.BufferShards = *shards
		cfg.Bib.FlusherInterval = *flusher
		if *faultProb > 0 {
			cfg.Faults = &pagestore.FaultConfig{
				Seed:       cfg.Seed,
				ReadProb:   *faultProb,
				WriteProb:  *faultProb,
				TornWrites: *tornWrites,
			}
		}
		fmt.Fprintf(os.Stderr, "running %-10s ...", p.Name())
		start := time.Now()
		res, err := tamix.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, " %6.1f tx/5min, %d deadlocks, %d restarts (%s)\n",
			res.Throughput(), res.Deadlocks, res.Restarts, time.Since(start).Round(time.Millisecond))
		rows = append(rows, row{p.Name(), p.Group(), res, res.Throughput()})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].ranking > rows[j].ranking })

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rank\tprotocol\tgroup\tthroughput\tcommitted\taborted\trestarts\tdropped\tdeadlocks\tconv-deadlocks\tlock requests\tcache hits\tlock waits\tfaults\tretries")
	for i, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%s\t%.1f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			i+1, r.proto, r.group, r.result.Throughput(),
			r.result.Committed, r.result.Aborted, r.result.Restarts, r.result.Dropped,
			r.result.Deadlocks, r.result.ConversionDeadlocks, r.result.LockRequests,
			r.result.LockCacheHits, r.result.LockWaits,
			r.result.FaultsInjected, r.result.BufferRetries)
	}
	w.Flush()
}
