// Command contest runs the headline experiment in one shot: CLUSTER1 at
// isolation level repeatable under all 11 lock protocols, printed as a
// ranking table — the "contest" of the paper's title.
//
// Usage:
//
//	contest                  # quick, scaled-down run
//	contest -depth 5 -doc 0.05 -time 0.005
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/protocol"
	"repro/internal/tamix"
	"repro/internal/tx"
)

func main() {
	var (
		depth    = flag.Int("depth", 5, "lock depth for depth-aware protocols")
		docScale = flag.Float64("doc", 0.02, "document scale (1.0 = 2000 books)")
		timeSc   = flag.Float64("time", 0.002, "timing scale (1.0 = 5-minute runs)")
		seed     = flag.Int64("seed", 0, "workload seed offset")
	)
	flag.Parse()

	type row struct {
		proto   string
		group   string
		result  *tamix.Result
		ranking float64
	}
	var rows []row
	for _, p := range protocol.All() {
		cfg := tamix.Cluster1Config(p.Name(), tx.LevelRepeatable, *depth, *docScale, *timeSc)
		cfg.Seed += *seed
		fmt.Fprintf(os.Stderr, "running %-10s ...", p.Name())
		res, err := tamix.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, " %6.1f tx/5min, %d deadlocks\n", res.Throughput(), res.Deadlocks)
		rows = append(rows, row{p.Name(), p.Group(), res, res.Throughput()})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].ranking > rows[j].ranking })

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rank\tprotocol\tgroup\tthroughput\tcommitted\taborted\tdeadlocks\tconv-deadlocks\tlock requests\tcache hits\tlock waits")
	for i, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%s\t%.1f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			i+1, r.proto, r.group, r.result.Throughput(),
			r.result.Committed, r.result.Aborted,
			r.result.Deadlocks, r.result.ConversionDeadlocks, r.result.LockRequests,
			r.result.LockCacheHits, r.result.LockWaits)
	}
	w.Flush()
}
