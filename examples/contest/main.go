// Contest: a miniature version of the paper's experiment through the public
// API — the same concurrent workload is replayed under every lock protocol
// and the outcomes are ranked. For the full TaMix reproduction with the
// paper's CLUSTER1/CLUSTER2 workloads, use cmd/tamix and cmd/contest.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

func buildXML(topics, booksPerTopic int) string {
	var b strings.Builder
	b.WriteString("<topics>")
	for t := 0; t < topics; t++ {
		fmt.Fprintf(&b, `<topic id="t%d">`, t)
		for k := 0; k < booksPerTopic; k++ {
			fmt.Fprintf(&b, `<book id="b%d-%d"><title>Book %d.%d</title><history/></book>`, t, k, t, k)
		}
		b.WriteString("</topic>")
	}
	b.WriteString("</topics>")
	return b.String()
}

func main() {
	var (
		workers = flag.Int("workers", 12, "concurrent transactions")
		millis  = flag.Int("millis", 400, "run duration per protocol")
	)
	flag.Parse()

	xmlDoc := buildXML(4, 5)
	type outcome struct {
		proto     string
		committed uint64
		aborted   uint64
	}
	var results []outcome

	for _, proto := range core.Protocols() {
		eng, err := core.Create(core.Config{
			RootName:    "bib",
			Protocol:    proto,
			LockTimeout: 2 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Load(strings.NewReader(xmlDoc)); err != nil {
			log.Fatal(err)
		}

		deadline := time.Now().Add(time.Duration(*millis) * time.Millisecond)
		var wg sync.WaitGroup
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for time.Now().Before(deadline) {
					bookID := fmt.Sprintf("b%d-%d", rng.Intn(4), rng.Intn(5))
					err := eng.Exec(core.Repeatable, func(s *core.Session) error {
						book, err := s.JumpToID(bookID)
						if err != nil {
							return err
						}
						if rng.Intn(3) == 0 { // writer: lend the book
							history, err := s.LastChild(book.ID)
							if err != nil || history.ID.IsNull() {
								return err
							}
							lend, err := s.AppendElement(history.ID, "lend")
							if err != nil {
								return err
							}
							return s.SetAttribute(lend.ID, "person", []byte("p1"))
						}
						_, err = s.ReadFragment(book.ID) // reader
						return err
					})
					if err != nil {
						return // retries exhausted; give the slot up
					}
				}
			}(int64(w))
		}
		wg.Wait()
		st := eng.Stats()
		results = append(results, outcome{proto, st.Committed, st.Aborted})
		eng.Close()
	}

	sort.SliceStable(results, func(i, j int) bool { return results[i].committed > results[j].committed })
	fmt.Printf("%-4s %-10s %10s %10s\n", "rank", "protocol", "committed", "aborted")
	for i, r := range results {
		fmt.Printf("%-4d %-10s %10d %10d\n", i+1, r.proto, r.committed, r.aborted)
	}
	fmt.Println("\n(the paper's verdict: the taDOM* group wins; see cmd/tamix for the full figures)")
}
