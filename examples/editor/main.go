// Editor: collaborative XML document processing (the XDP scenario of the
// paper's motivation) — several authors edit disjoint and overlapping
// sections of one document concurrently. The fine-granular protocols let
// edits in different sections proceed in parallel; edits colliding on the
// same section serialize or deadlock-retry, but the document always stays
// well-formed and every committed edit survives.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/core"
)

const articleXML = `
<article id="root-article">
  <section id="s-intro"><title>Introduction</title><para>XML editing.</para></section>
  <section id="s-model"><title>Model</title><para>taDOM trees.</para></section>
  <section id="s-locks"><title>Locks</title><para>Protocols.</para></section>
  <section id="s-eval"><title>Evaluation</title><para>TaMix.</para></section>
</article>`

func main() {
	var (
		protoName = flag.String("protocol", "taDOM3+", "lock protocol")
		authors   = flag.Int("authors", 6, "concurrent authors")
		edits     = flag.Int("edits", 40, "edits per author")
	)
	flag.Parse()

	eng, err := core.Create(core.Config{RootName: "doc", Protocol: *protoName})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Load(strings.NewReader(articleXML)); err != nil {
		log.Fatal(err)
	}

	sections := []string{"s-intro", "s-model", "s-locks", "s-eval"}
	var wg sync.WaitGroup
	for a := 0; a < *authors; a++ {
		wg.Add(1)
		go func(author int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(author)))
			for e := 0; e < *edits; e++ {
				section := sections[rng.Intn(len(sections))]
				err := eng.Exec(core.Repeatable, func(s *core.Session) error {
					sec, err := s.JumpToID(section)
					if err != nil {
						return err
					}
					switch rng.Intn(3) {
					case 0: // append a paragraph
						para, err := s.AppendElement(sec.ID, "para")
						if err != nil {
							return err
						}
						_, err = s.AppendText(para.ID,
							[]byte(fmt.Sprintf("Paragraph by author %d (edit %d).", author, e)))
						return err
					case 1: // revise the title
						title, err := s.FirstChild(sec.ID)
						if err != nil || title.ID.IsNull() {
							return err
						}
						txt, err := s.FirstChild(title.ID)
						if err != nil || txt.ID.IsNull() {
							return err
						}
						return s.SetValue(txt.ID,
							[]byte(fmt.Sprintf("%s (rev. %d.%d)", section, author, e)))
					default: // trim the oldest extra paragraph
						kids, err := s.Children(sec.ID)
						if err != nil {
							return err
						}
						if len(kids) <= 2 {
							return nil // keep title + one paragraph
						}
						return s.DeleteSubtree(kids[1].ID)
					}
				})
				if err != nil {
					log.Printf("author %d: edit lost: %v", author, err)
				}
			}
		}(a)
	}
	wg.Wait()

	st := eng.Stats()
	fmt.Printf("edited by %d authors: %d committed, %d deadlock aborts absorbed by retry\n",
		*authors, st.Committed, st.Aborted)

	// Verify the document is intact: every section still has a title.
	err = eng.Exec(core.Repeatable, func(s *core.Session) error {
		for _, id := range sections {
			sec, err := s.JumpToID(id)
			if err != nil {
				return err
			}
			kids, err := s.Children(sec.ID)
			if err != nil {
				return err
			}
			if len(kids) == 0 || s.Name(kids[0]) != "title" {
				return fmt.Errorf("section %s lost its title", id)
			}
			fmt.Printf("section %-8s: %d children\n", id, len(kids))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
