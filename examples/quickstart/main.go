// Quickstart: open an engine, load XML, and run concurrent transactions
// against it — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
)

const libraryXML = `
<topics>
  <topic id="databases">
    <book id="gray93" year="1993">
      <title>Transaction Processing: Concepts and Techniques</title>
      <history/>
    </book>
    <book id="haustein06" year="2006">
      <title>Contest of XML Lock Protocols</title>
      <history/>
    </book>
  </topic>
</topics>`

func main() {
	// An in-memory engine under the contest winner, taDOM3+.
	eng, err := core.Create(core.Config{RootName: "bib", Protocol: "taDOM3+"})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Load(strings.NewReader(libraryXML)); err != nil {
		log.Fatal(err)
	}

	// A read-write transaction: jump to a book by its id attribute, read
	// it, and lend it out. Exec commits on nil, aborts on error, and
	// retries automatically when chosen as a deadlock victim.
	err = eng.Exec(core.Repeatable, func(s *core.Session) error {
		book, err := s.JumpToID("haustein06")
		if err != nil {
			return err
		}
		title, err := s.FirstChild(book.ID)
		if err != nil {
			return err
		}
		text, err := s.FirstChild(title.ID)
		if err != nil {
			return err
		}
		v, err := s.Value(text.ID)
		if err != nil {
			return err
		}
		fmt.Printf("borrowing %q\n", v)

		history, err := s.LastChild(book.ID)
		if err != nil {
			return err
		}
		lend, err := s.AppendElement(history.ID, "lend")
		if err != nil {
			return err
		}
		return s.SetAttribute(lend.ID, "person", []byte("p-ada"))
	})
	if err != nil {
		log.Fatal(err)
	}

	// A read-only transaction sees the committed state.
	err = eng.Exec(core.Repeatable, func(s *core.Session) error {
		book, err := s.JumpToID("haustein06")
		if err != nil {
			return err
		}
		frag, err := s.ReadFragment(book.ID)
		if err != nil {
			return err
		}
		fmt.Printf("the book's subtree now holds %d nodes\n", len(frag))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	st := eng.Stats()
	fmt.Printf("engine: %d committed, %d aborted, %d lock requests\n",
		st.Committed, st.Aborted, st.LockRequests)

	fmt.Println("\ndocument after the session:")
	if err := eng.ExportXML(os.Stdout, eng.Root()); err != nil {
		log.Fatal(err)
	}
}
