// Library: the paper's motivating scenario as an application — many
// concurrent patrons lending and returning books while readers browse the
// catalog, all against one XML document. Run it with different -protocol
// values to feel the contest: the taDOM* protocols sustain the most
// parallelism, the *-2PL protocols abort the most.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/tamix"
)

func main() {
	var (
		protoName = flag.String("protocol", "taDOM3+", "lock protocol (see the paper's 11)")
		patrons   = flag.Int("patrons", 8, "concurrent lender goroutines")
		browsers  = flag.Int("browsers", 8, "concurrent reader goroutines")
		seconds   = flag.Int("seconds", 3, "run duration")
	)
	flag.Parse()

	// Build a small bib library with the TaMix generator, then wire it into
	// an engine under the chosen protocol.
	doc, cat, err := tamix.GenerateBib(pagestore.NewMemBackend(), tamix.Scaled(0.02))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.Wrap(doc, core.Config{Protocol: *protoName})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	fmt.Printf("library: %d books, protocol %s, %d patrons + %d browsers for %ds\n",
		cat.Books, eng.ProtocolName(), *patrons, *browsers, *seconds)

	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	var wg sync.WaitGroup
	var mu sync.Mutex
	lends, returns, browses := 0, 0, 0

	// Patrons lend and return books.
	for i := 0; i < *patrons; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				bookID := cat.BookIDs[rng.Intn(len(cat.BookIDs))]
				person := cat.PersonIDs[rng.Intn(len(cat.PersonIDs))]
				lend := rng.Intn(2) == 0
				err := eng.Exec(core.Repeatable, func(s *core.Session) error {
					book, err := s.JumpToID(bookID)
					if err != nil {
						return err
					}
					history, err := s.LastChild(book.ID)
					if err != nil || history.ID.IsNull() {
						return err
					}
					if lend {
						entry, err := s.AppendElement(history.ID, "lend")
						if err != nil {
							return err
						}
						return s.SetAttribute(entry.ID, "person", []byte(person))
					}
					entries, err := s.Children(history.ID)
					if err != nil || len(entries) <= 1 {
						return err
					}
					return s.DeleteSubtree(entries[0].ID)
				})
				if err != nil {
					log.Printf("patron: %v", err)
					continue
				}
				mu.Lock()
				if lend {
					lends++
				} else {
					returns++
				}
				mu.Unlock()
			}
		}(int64(i))
	}

	// Browsers read book fragments.
	for i := 0; i < *browsers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1000 + seed))
			for time.Now().Before(deadline) {
				bookID := cat.BookIDs[rng.Intn(len(cat.BookIDs))]
				err := eng.Exec(core.Repeatable, func(s *core.Session) error {
					book, err := s.JumpToID(bookID)
					if err != nil {
						return err
					}
					_, err = s.ReadFragment(book.ID)
					return err
				})
				if err != nil {
					log.Printf("browser: %v", err)
					continue
				}
				mu.Lock()
				browses++
				mu.Unlock()
			}
		}(int64(i))
	}

	wg.Wait()
	st := eng.Stats()
	fmt.Printf("done: %d lends, %d returns, %d browses\n", lends, returns, browses)
	fmt.Printf("engine: %d committed, %d aborted (%d deadlocks, %d by conversion), %d lock requests\n",
		st.Committed, st.Aborted, st.Deadlocks, st.ConversionDeadlocks, st.LockRequests)
}
