package repro

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Section 5). Each benchmark executes the figure's full parameter sweep at
// a reduced scale and reports the headline quantities as custom metrics, so
// `go test -bench=.` regenerates the whole evaluation. For larger (or
// paper-scale) runs and readable tables, use:
//
//	go run ./cmd/tamix -fig all -doc 0.05 -time 0.01
//
// The custom metrics are committed transactions normalized to the paper's
// 5-minute interval (tx5min) and deadlock counts; the claims under test are
// the relative shapes across protocols and depths, not absolute numbers.

import (
	"fmt"
	"testing"

	"repro/internal/figures"
	"repro/internal/tamix"
)

// benchOpts keeps one full `go test -bench=.` run in the minutes range:
// a ~3k-node document, sub-second runs, three representative depths.
func benchOpts() figures.Options {
	return figures.Options{
		DocScale:  0.02,
		TimeScale: 0.0015,
		Depths:    []int{1, 4, 7},
	}
}

func last(points []figures.Point) figures.Point {
	if len(points) == 0 {
		return figures.Point{}
	}
	return points[len(points)-1]
}

// BenchmarkFigure7 regenerates Figure 7: CLUSTER1 under taDOM3+ across the
// four isolation levels and the depth range; reported metrics are the
// deepest-depth throughput per isolation level and the repeatable-read
// deadlock count.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tp, dl, err := figures.Figure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range tp {
			b.ReportMetric(last(s.Points).Throughput, s.Label+"_tx5min")
		}
		for _, s := range dl {
			if s.Label == "REPEATABLE" {
				b.ReportMetric(float64(last(s.Points).Deadlocks), "repeatable_deadlocks")
			}
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8: CLUSTER1 under the pure *-2PL
// group (Node2PL, NO2PL, OO2PL), total and per transaction type.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Figure8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Total.Throughput, r.Protocol+"_tx5min")
			b.ReportMetric(float64(r.Total.Aborted), r.Protocol+"_aborts")
		}
	}
}

// BenchmarkFigure9And10 regenerates Figures 9 and 10 from one sweep of all
// depth-aware protocols: total throughput/deadlocks per protocol vs depth
// (Figure 9) and the per-transaction-type split (Figure 10).
func BenchmarkFigure9And10(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		sweep, err := figures.Cluster1Sweep(figures.DepthProtocols(), opt)
		if err != nil {
			b.Fatal(err)
		}
		tp, _ := figures.Figure9(sweep, opt)
		for _, s := range tp {
			b.ReportMetric(last(s.Points).Throughput, s.Label+"_tx5min")
		}
		panels := figures.Figure10(sweep, opt)
		for _, s := range panels[tamix.TArenameTopic] {
			// The panel the paper highlights: Node2PLa collapses on
			// TArenameTopic while taDOM3+ gains ~200%.
			if s.Label == "Node2PLa" || s.Label == "taDOM3+" {
				b.ReportMetric(last(s.Points).Throughput,
					fmt.Sprintf("rename_%s_tx5min", s.Label))
			}
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11: single-user TAdelBook execution
// time under all 11 protocols (CLUSTER2). The reported metrics are the
// mean execution times; the paper's claim is that the *-2PL group takes
// roughly twice as long as everyone else.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Figure11(figures.Options{DocScale: 0.02}, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.AvgTimeMs, r.Protocol+"_ms")
		}
	}
}

// BenchmarkContestHeadline runs the headline comparison once per iteration:
// taDOM3+ vs URIX vs Node2PLa at depth 5 (the groups' representatives),
// reporting their throughput ratio — the paper's ~100%/~50% gains.
func BenchmarkContestHeadline(b *testing.B) {
	opt := benchOpts()
	opt.Depths = []int{5}
	for i := 0; i < b.N; i++ {
		sweep, err := figures.Cluster1Sweep([]string{"taDOM3+", "URIX", "Node2PLa"}, opt)
		if err != nil {
			b.Fatal(err)
		}
		td := sweep["taDOM3+"][5].Throughput()
		ur := sweep["URIX"][5].Throughput()
		na := sweep["Node2PLa"][5].Throughput()
		b.ReportMetric(td, "taDOM3+_tx5min")
		b.ReportMetric(ur, "URIX_tx5min")
		b.ReportMetric(na, "Node2PLa_tx5min")
		if na > 0 {
			b.ReportMetric(td/na, "taDOM_vs_2PL_ratio")
			b.ReportMetric(ur/na, "MGL_vs_2PL_ratio")
		}
	}
}
