package server

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/wire"
	"repro/internal/xmlmodel"
)

// session is one client session: a protocol choice, at most one active
// transaction, and a single worker goroutine draining a bounded queue — the
// one-goroutine-per-transaction discipline the engine requires, enforced
// structurally.
type session struct {
	id     uint32
	eng    *Engine
	iso    tx.Level
	c      *conn
	queue  chan wire.Msg
	ctx    context.Context
	cancel context.CancelFunc

	// txn is the active transaction; touched only by the worker goroutine.
	txn *tx.Txn

	// done is closed when the session worker exits; after that the fate
	// fields below are final (they are written only by the worker goroutine,
	// and resumeSession reads them through the server's fate tombstones).
	done chan struct{}
	// lastTxnID and lastTxnFate record the outcome of the session's most
	// recent transaction (wire.Fate* codes) for resume-fate reporting.
	lastTxnID   uint64
	lastTxnFate uint8

	// lastUsed is the idle clock the reaper reads: UnixNano of the last
	// dispatched request or session-scoped heartbeat.
	lastUsed atomic.Int64
}

// fateRecord is the server-side tombstone of a finished session: what became
// of its last transaction.
type fateRecord struct {
	txn  uint64
	fate uint8
}

// fateTombstoneCap bounds the tombstone map; past it the map is cleared
// wholesale (fate reporting is best-effort, and a well-behaved client
// consumes its tombstone on resume).
const fateTombstoneCap = 8192

// noteFate records the outcome of the session's most recent transaction.
// Worker goroutine only.
func (sess *session) noteFate(id uint64, fate uint8) {
	sess.lastTxnID, sess.lastTxnFate = id, fate
}

// touch refreshes the session's idle clock.
func (sess *session) touch() {
	sess.lastUsed.Store(time.Now().UnixNano())
}

// isolationLevel validates the wire isolation byte. An out-of-range value is
// a malformed request to reject (StatusBadRequest), not a preference to
// silently coerce — a client asking for an isolation level this server does
// not know must not run at a different one without noticing.
func isolationLevel(b uint8) (tx.Level, error) {
	l := tx.Level(b)
	if l < tx.LevelNone || l > tx.LevelSnapshot {
		return 0, fmt.Errorf("server: invalid isolation level %d", b)
	}
	return l, nil
}

// statusOf maps an engine error to its wire status, preserving the
// distinctions remote clients must see: abort-worthy failures (deadlock
// victim, lock timeout) versus vanished targets versus cancellation.
func statusOf(err error) wire.Status {
	switch {
	case errors.Is(err, lock.ErrDeadlockVictim):
		return wire.StatusDeadlock
	case errors.Is(err, lock.ErrLockTimeout):
		return wire.StatusTimeout
	case errors.Is(err, lock.ErrCanceled):
		return wire.StatusCanceled
	case errors.Is(err, storage.ErrNodeNotFound):
		return wire.StatusNotFound
	case errors.Is(err, tx.ErrTxnDone):
		return wire.StatusTxDone
	default:
		return wire.StatusErr
	}
}

// sessionWorker drains the session queue until the session closes or its
// context is canceled (connection death or server drain).
func (s *Server) sessionWorker(sess *session) {
	defer s.sessWG.Done()
	defer close(sess.done)
	for {
		select {
		case <-sess.ctx.Done():
			s.teardown(sess)
			return
		case m := <-sess.queue:
			s.mQueue.Add(-1)
			if m.Op == wire.OpCloseSession {
				s.finishSession(sess)
				sess.c.reply(m, wire.StatusOK, nil)
				return
			}
			t0 := s.mLatency.Start()
			s.handle(sess, m)
			s.mLatency.Since(t0)
		}
	}
}

// teardown reaps a canceled session: execute any transaction-resolving
// request that fully arrived before the cancellation, abort whatever is
// still in flight, answer everything else queued with StatusShutdown, and
// release the slot.
func (s *Server) teardown(sess *session) {
	// A commit (or abort) frame the connection delivered before dying was
	// received — the readLoop enqueues it before the failed read that closes
	// the connection, so it is already in the queue when the cancellation
	// fires, racing the worker's select. Discarding it would abort a commit
	// the server took delivery of and make the resume fate report claim
	// FateAborted for a request the client is entitled to see honored.
	// Execute it instead; the reply is likely lost with the connection, but
	// the fate tombstone finishSession leaves carries the outcome.
	for drained := false; !drained; {
		select {
		case m := <-sess.queue:
			s.mQueue.Add(-1)
			if (m.Op == wire.OpCommit || m.Op == wire.OpAbort) &&
				sess.txn != nil && sess.txn.Active() {
				s.handle(sess, m)
				continue
			}
			sess.c.replyErr(m, wire.StatusShutdown, errors.New("server: session closed"))
		default:
			drained = true
		}
	}
	s.finishSession(sess)
	for {
		select {
		case m := <-sess.queue:
			s.mQueue.Add(-1)
			sess.c.replyErr(m, wire.StatusShutdown, errors.New("server: session closed"))
		default:
			return
		}
	}
}

// finishSession aborts any active transaction and unregisters the session,
// leaving a fate tombstone so a later resume can report what became of the
// session's last transaction.
func (s *Server) finishSession(sess *session) {
	if sess.txn != nil && sess.txn.Active() {
		// The session is going away; the abort itself must not hang on its
		// canceled context, so detach it first. Abort only releases locks —
		// it never acquires — but stay safe against future protocols.
		// Snapshot transactions have no lock context to detach.
		if ltx := sess.txn.LockTx(); ltx != nil {
			ltx.SetContext(context.Background())
		}
		sess.noteFate(sess.txn.ID(), wire.FateAborted)
		if err := sess.txn.Abort(); err != nil {
			s.logf("server: session %d: abort on teardown: %v", sess.id, err)
		}
	}
	sess.txn = nil
	sess.cancel()
	s.mu.Lock()
	if s.sessions[sess.id] == sess {
		delete(s.sessions, sess.id)
		s.mActive.Add(-1)
	}
	if sess.lastTxnFate != wire.FateUnknown {
		if len(s.fates) >= fateTombstoneCap {
			s.fates = map[uint32]fateRecord{}
		}
		s.fates[sess.id] = fateRecord{txn: sess.lastTxnID, fate: sess.lastTxnFate}
	}
	delete(sess.c.sessions, sess.id)
	s.mu.Unlock()
}

// handle executes one session-scoped request on the worker goroutine. The
// request's deadline (when present) is layered onto the session context and
// installed as the transaction's lock-wait context, so a slow lock queue
// cannot hold the request past its budget.
func (s *Server) handle(sess *session, m wire.Msg) {
	ctx := sess.ctx
	var cancel context.CancelFunc
	if m.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(sess.ctx, time.Duration(m.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	if sess.txn != nil && sess.txn.Active() {
		if ltx := sess.txn.LockTx(); ltx != nil {
			ltx.SetContext(ctx)
			defer ltx.SetContext(sess.ctx)
		}
	}

	body, err := s.execute(sess, m, ctx)
	if err != nil {
		sess.c.replyErr(m, statusOf(err), err)
		return
	}
	sess.c.reply(m, wire.StatusOK, body)
}

// errNoTxn is the out-of-protocol "node op without a transaction" failure.
var errNoTxn = fmt.Errorf("%w: no active transaction", tx.ErrTxnDone)

// execute dispatches one opcode against the session's engine, returning the
// encoded result body.
func (s *Server) execute(sess *session, m wire.Msg, ctx context.Context) ([]byte, error) {
	mgr := sess.eng.Mgr

	// Transaction lifecycle ops.
	switch m.Op {
	case wire.OpBegin:
		if sess.txn != nil && sess.txn.Active() {
			return nil, fmt.Errorf("server: session %d already has transaction %d", sess.id, sess.txn.ID())
		}
		sess.txn = mgr.Begin(sess.iso)
		// Snapshot transactions hold no lock context.
		if ltx := sess.txn.LockTx(); ltx != nil {
			ltx.SetContext(ctx)
		}
		return wire.AppendUvarint(nil, sess.txn.ID()), nil
	case wire.OpCommit:
		if sess.txn == nil {
			return nil, errNoTxn
		}
		id := sess.txn.ID()
		err := sess.txn.Commit()
		if err != nil && sess.txn.Active() {
			// A durability failure leaves the transaction active; roll it
			// back so its locks release and the recorded fate is the truth.
			if aerr := sess.txn.Abort(); aerr != nil {
				s.logf("server: session %d: abort after failed commit: %v", sess.id, aerr)
			}
		}
		sess.txn = nil
		if err == nil {
			sess.noteFate(id, wire.FateCommitted)
		} else {
			sess.noteFate(id, wire.FateAborted)
		}
		return nil, err
	case wire.OpAbort:
		if sess.txn == nil {
			return nil, errNoTxn
		}
		id := sess.txn.ID()
		err := sess.txn.Abort()
		sess.txn = nil
		sess.noteFate(id, wire.FateAborted)
		return nil, err
	case wire.OpCatalog:
		return wire.AppendCatalog(nil, sess.eng.Catalog), nil
	case wire.OpLookupName:
		name := wire.NewReader(m.Body).String()
		sur, ok := mgr.Document().Vocabulary().Lookup(name)
		body := []byte{0}
		if ok {
			body[0] = 1
		}
		return wire.AppendUvarint(body, uint64(sur)), nil
	}

	// Everything below operates on the document and needs a transaction.
	if sess.txn == nil || !sess.txn.Active() {
		return nil, errNoTxn
	}
	txn := sess.txn
	r := wire.NewReader(m.Body)

	switch m.Op {
	case wire.OpGetNode:
		id := r.ID()
		if err := r.Err(); err != nil {
			return nil, err
		}
		n, err := mgr.GetNode(txn, id)
		if err != nil {
			return nil, err
		}
		return wire.AppendNode(nil, n), nil
	case wire.OpJumpToID:
		value := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		n, err := mgr.JumpToID(txn, value)
		if err != nil {
			return nil, err
		}
		return wire.AppendNode(nil, n), nil
	case wire.OpFirstChild, wire.OpLastChild, wire.OpNextSibling, wire.OpPrevSibling, wire.OpParent:
		id := r.ID()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var n xmlmodel.Node
		var err error
		switch m.Op {
		case wire.OpFirstChild:
			n, err = mgr.FirstChild(txn, id)
		case wire.OpLastChild:
			n, err = mgr.LastChild(txn, id)
		case wire.OpNextSibling:
			n, err = mgr.NextSibling(txn, id)
		case wire.OpPrevSibling:
			n, err = mgr.PrevSibling(txn, id)
		default:
			n, err = mgr.Parent(txn, id)
		}
		if err != nil {
			return nil, err
		}
		return wire.AppendNode(nil, n), nil
	case wire.OpGetChildren:
		id := r.ID()
		if err := r.Err(); err != nil {
			return nil, err
		}
		ns, err := mgr.GetChildren(txn, id)
		if err != nil {
			return nil, err
		}
		return wire.AppendNodes(nil, ns), nil
	case wire.OpGetAttributes:
		id := r.ID()
		if err := r.Err(); err != nil {
			return nil, err
		}
		ns, err := mgr.GetAttributes(txn, id)
		if err != nil {
			return nil, err
		}
		return wire.AppendNodes(nil, ns), nil
	case wire.OpValue:
		id := r.ID()
		if err := r.Err(); err != nil {
			return nil, err
		}
		v, err := mgr.Value(txn, id)
		if err != nil {
			return nil, err
		}
		return wire.AppendBytes(nil, v), nil
	case wire.OpAttributeValue:
		id := r.ID()
		name := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		v, err := mgr.AttributeValue(txn, id, name)
		if err != nil {
			return nil, err
		}
		return wire.AppendBytes(nil, v), nil
	case wire.OpReadFragment, wire.OpReadFragmentForUpdate:
		id := r.ID()
		jump := r.Byte() != 0
		if err := r.Err(); err != nil {
			return nil, err
		}
		if m.Op == wire.OpReadFragment {
			out, err := mgr.ReadFragment(txn, id, jump)
			if err != nil {
				return nil, err
			}
			return wire.AppendNodes(nil, out), nil
		}
		out, err := mgr.ReadFragmentForUpdate(txn, id, jump)
		if err != nil {
			return nil, err
		}
		return wire.AppendNodes(nil, out), nil
	case wire.OpUpdateLastChildFragment:
		id := r.ID()
		if err := r.Err(); err != nil {
			return nil, err
		}
		n, frag, err := mgr.UpdateLastChildFragment(txn, id)
		if err != nil {
			return nil, err
		}
		return wire.AppendNodes(wire.AppendNode(nil, n), frag), nil
	case wire.OpSetValue:
		id := r.ID()
		value := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, mgr.SetValue(txn, id, value)
	case wire.OpRename:
		id := r.ID()
		name := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, mgr.Rename(txn, id, name)
	case wire.OpAppendElement:
		id := r.ID()
		name := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		n, err := mgr.AppendElement(txn, id, name)
		if err != nil {
			return nil, err
		}
		return wire.AppendNode(nil, n), nil
	case wire.OpAppendText:
		id := r.ID()
		value := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, err
		}
		n, err := mgr.AppendText(txn, id, value)
		if err != nil {
			return nil, err
		}
		return wire.AppendNode(nil, n), nil
	case wire.OpInsertElementBefore:
		parent := r.ID()
		before := r.ID()
		name := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		n, err := mgr.InsertElementBefore(txn, parent, before, name)
		if err != nil {
			return nil, err
		}
		return wire.AppendNode(nil, n), nil
	case wire.OpSetAttribute:
		id := r.ID()
		name := r.String()
		value := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, mgr.SetAttribute(txn, id, name, value)
	case wire.OpDeleteSubtree:
		id := r.ID()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, mgr.DeleteSubtree(txn, id)
	default:
		return nil, fmt.Errorf("server: unknown opcode %s", m.Op)
	}
}
