// Package server implements xtcd: the TCP front end that exposes the node
// manager's transactional DOM operations over the wire protocol. One daemon
// hosts one engine per lock protocol (meta-synchronization at the session
// level: each session names its protocol at open time) and multiplexes many
// sessions over many connections.
//
// Concurrency model: each connection runs a reader goroutine and a writer
// goroutine; each session runs exactly one worker goroutine draining a
// bounded queue, which preserves the engine's one-goroutine-per-transaction
// discipline while letting sessions on the same connection proceed
// independently. Admission control is two-level — a session cap at open time
// and the per-session queue bound per request — and both reject with
// StatusBusy rather than queueing unboundedly.
//
// Teardown: a dropped connection cancels its sessions' contexts, which
// aborts in-flight transactions and (through lock.Tx.SetContext) unblocks
// any pending lock waits with lock.ErrCanceled, so a dying client cannot
// strand locks. Shutdown drains the same way for every session, then audits
// every engine with LeakCheck.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/protocol"
	"repro/internal/tx"
	"repro/internal/wire"
)

// Engine is one document under one lock protocol, shared by every session
// that names that protocol.
type Engine struct {
	// Mgr executes the DOM operations (and owns the lock and tx managers).
	Mgr *node.Manager
	// Catalog is the jump-target catalog served to remote workloads.
	Catalog wire.Catalog
	// CloseFn, when non-nil, releases engine resources (the document) after
	// the manager is closed during server shutdown.
	CloseFn func() error
}

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// NewEngine builds the engine for a protocol the first time a session
	// names it. The depth is the lock-depth parameter from that first
	// session; later sessions share the engine regardless of their depth.
	NewEngine func(p protocol.Protocol, depth int) (*Engine, error)
	// MaxSessions caps concurrently open sessions (default 256); opens past
	// the cap are rejected with StatusBusy.
	MaxSessions int
	// SessionQueue bounds each session's request queue (default 16);
	// requests past the bound are rejected with StatusBusy.
	SessionQueue int
	// DrainTimeout bounds the graceful phase of Shutdown (default 10s).
	DrainTimeout time.Duration
	// WriteTimeout bounds each frame write to a connection (default 10s,
	// negative disables). A peer that accepts the TCP stream but stops
	// reading would otherwise park the writer goroutine indefinitely —
	// through Shutdown's drain window included.
	WriteTimeout time.Duration
	// KeepAliveInterval is the heartbeat cadence clients are expected to
	// tick at (default 30s, negative disables keep-alive enforcement). Any
	// frame counts as a heartbeat; a connection silent for
	// KeepAliveInterval×KeepAliveMisses is closed and counted in
	// server.heartbeat_misses. The allowance also bounds how long a peer may
	// stall mid-frame.
	KeepAliveInterval time.Duration
	// KeepAliveMisses is how many intervals a silent connection survives
	// before it is closed (default 3).
	KeepAliveMisses int
	// SessionIdleTimeout reaps sessions that executed no request (and were
	// not heartbeat-touched) for this long (default 5m, negative disables).
	// Reaping aborts the session's transaction, releases its locks through
	// the context-cancellation path, and frees the session slot; the
	// connection itself stays up. Counted in server.reaped_sessions.
	SessionIdleTimeout time.Duration
	// ReapInterval is the idle-session scan cadence (default
	// SessionIdleTimeout/4, clamped to [100ms, 30s]).
	ReapInterval time.Duration
	// Metrics receives the server.* instruments (a private registry is used
	// when nil).
	Metrics *metrics.Registry
	// Logf, when non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// engineSlot guards lazy engine construction so concurrent opens of the same
// protocol build it exactly once.
type engineSlot struct {
	once sync.Once
	eng  *Engine
	err  error
}

// Server is a running xtcd instance.
type Server struct {
	cfg Config
	ln  net.Listener
	reg *metrics.Registry

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	engines  map[string]*engineSlot
	sessions map[uint32]*session
	// fates are tombstones for finished sessions: the outcome of each one's
	// last transaction, kept so a reconnecting client's OpResumeSession can
	// learn whether its severed commit landed. Consumed (deleted) by resume;
	// cleared wholesale past fateTombstoneCap — fate reporting is best-effort.
	fates    map[uint32]fateRecord
	conns    map[*conn]struct{}
	nextSess uint32
	draining bool

	connWG sync.WaitGroup
	sessWG sync.WaitGroup

	mAccepted *metrics.Counter
	mRejected *metrics.Counter
	mActive   *metrics.Gauge
	mQueue    *metrics.Gauge
	mRequests *metrics.Counter
	mBusy     *metrics.Counter
	mConns    *metrics.Gauge
	mLatency  *metrics.Histogram
	mReaped   *metrics.Counter
	mHBMiss   *metrics.Counter
	mResumed  *metrics.Counter
}

// Listen binds cfg.Addr and returns a server ready to Serve.
func Listen(cfg Config) (*Server, error) {
	if cfg.NewEngine == nil {
		return nil, errors.New("server: Config.NewEngine is required")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 256
	}
	if cfg.SessionQueue <= 0 {
		cfg.SessionQueue = 16
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.KeepAliveInterval == 0 {
		cfg.KeepAliveInterval = 30 * time.Second
	}
	if cfg.KeepAliveMisses <= 0 {
		cfg.KeepAliveMisses = 3
	}
	if cfg.SessionIdleTimeout == 0 {
		cfg.SessionIdleTimeout = 5 * time.Minute
	}
	if cfg.ReapInterval <= 0 {
		cfg.ReapInterval = cfg.SessionIdleTimeout / 4
		if cfg.ReapInterval < 100*time.Millisecond {
			cfg.ReapInterval = 100 * time.Millisecond
		}
		if cfg.ReapInterval > 30*time.Second {
			cfg.ReapInterval = 30 * time.Second
		}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		reg:      cfg.Metrics,
		baseCtx:  ctx,
		cancel:   cancel,
		engines:  map[string]*engineSlot{},
		sessions: map[uint32]*session{},
		fates:    map[uint32]fateRecord{},
		conns:    map[*conn]struct{}{},

		mAccepted: cfg.Metrics.Counter("server.sessions_accepted"),
		mRejected: cfg.Metrics.Counter("server.sessions_rejected"),
		mActive:   cfg.Metrics.Gauge("server.sessions_active"),
		mQueue:    cfg.Metrics.Gauge("server.queue_depth"),
		mRequests: cfg.Metrics.Counter("server.requests"),
		mBusy:     cfg.Metrics.Counter("server.busy_rejects"),
		mConns:    cfg.Metrics.Gauge("server.conns_active"),
		mLatency:  cfg.Metrics.Histogram("server.request_ns"),
		mReaped:   cfg.Metrics.Counter("server.reaped_sessions"),
		mHBMiss:   cfg.Metrics.Counter("server.heartbeat_misses"),
		mResumed:  cfg.Metrics.Counter("server.sessions_resumed"),
	}
	if s.cfg.SessionIdleTimeout > 0 {
		go s.reaper()
	}
	return s, nil
}

// readWindow is the connection read-idle allowance: how long a peer may send
// nothing (no heartbeat, no request, or a stalled partial frame) before the
// server closes it. Zero disables the read deadline.
func (s *Server) readWindow() time.Duration {
	if s.cfg.KeepAliveInterval <= 0 {
		return 0
	}
	return s.cfg.KeepAliveInterval * time.Duration(s.cfg.KeepAliveMisses)
}

// reaper periodically cancels sessions idle past SessionIdleTimeout. The
// cancellation travels the same path a dead connection takes: the session
// worker aborts the in-flight transaction (unblocking pending lock waits
// via lock.ErrCanceled), answers queued requests with StatusShutdown, and
// frees the slot — so a wedged client cannot park locks forever even while
// its TCP connection stays alive.
func (s *Server) reaper() {
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-s.cfg.SessionIdleTimeout).UnixNano()
		var victims []*session
		s.mu.Lock()
		for _, sess := range s.sessions {
			if sess.lastUsed.Load() < cutoff {
				victims = append(victims, sess)
			}
		}
		s.mu.Unlock()
		for _, sess := range victims {
			s.mReaped.Add(1)
			s.logf("server: reaping session %d (idle > %v)", sess.id, s.cfg.SessionIdleTimeout)
			sess.cancel()
		}
	}
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Metrics returns the registry holding the server.* instruments.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Serve accepts connections until the listener is closed by Shutdown.
func (s *Server) Serve() error {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		c := &conn{
			srv:      s,
			nc:       nc,
			out:      make(chan []byte, 64),
			closed:   make(chan struct{}),
			sessions: map[uint32]*session{},
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.mConns.Add(1)
		s.connWG.Add(2)
		go c.writeLoop()
		go c.readLoop()
	}
}

// logf forwards to Config.Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// engine returns (building on first use) the engine for a protocol.
func (s *Server) engine(p protocol.Protocol, depth int) (*Engine, error) {
	s.mu.Lock()
	slot, ok := s.engines[p.Name()]
	if !ok {
		slot = &engineSlot{}
		s.engines[p.Name()] = slot
	}
	s.mu.Unlock()
	slot.once.Do(func() {
		slot.eng, slot.err = s.cfg.NewEngine(p, depth)
		if slot.err != nil {
			slot.err = fmt.Errorf("server: engine %s: %w", p.Name(), slot.err)
		}
	})
	return slot.eng, slot.err
}

// lookupEngine returns an already-built engine without creating one.
func (s *Server) lookupEngine(name string) *Engine {
	p, err := protocol.Parse(name)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	slot := s.engines[p.Name()]
	s.mu.Unlock()
	if slot == nil {
		return nil
	}
	slot.once.Do(func() {}) // wait out a concurrent build
	if slot.err != nil {
		return nil
	}
	return slot.eng
}

// Shutdown drains the server: stop accepting, cancel every session (aborting
// in-flight transactions and unblocking pending lock waits), wait out the
// drain, hard-close surviving connections, then audit every engine for lock
// residue. The returned error aggregates audit failures — a clean shutdown
// returns nil, so callers can turn residue into a non-zero exit status.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.draining = true
	s.mu.Unlock()

	s.ln.Close()
	s.cancel() // every session ctx derives from baseCtx

	drained := make(chan struct{})
	go func() { s.sessWG.Wait(); close(drained) }()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-drained:
	case <-ctx.Done():
	case <-timer.C:
		s.logf("server: drain timeout after %v", s.cfg.DrainTimeout)
	}

	// Hard-close whatever connections remain; their readers and writers
	// unblock with errors and the conn teardown reaps any session a worker
	// still holds.
	s.mu.Lock()
	for c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	s.sessWG.Wait()

	var errs []error
	s.mu.Lock()
	slots := make([]*engineSlot, 0, len(s.engines))
	for _, slot := range s.engines {
		slots = append(slots, slot)
	}
	s.mu.Unlock()
	for _, slot := range slots {
		slot.once.Do(func() {})
		if slot.err != nil || slot.eng == nil {
			continue
		}
		eng := slot.eng
		if err := eng.Mgr.LockManager().LeakCheck(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", eng.Mgr.Protocol().Name(), err))
		}
		eng.Mgr.Close()
		if eng.CloseFn != nil {
			if err := eng.CloseFn(); err != nil {
				errs = append(errs, fmt.Errorf("%s: close: %w", eng.Mgr.Protocol().Name(), err))
			}
		}
	}
	return errors.Join(errs...)
}

// conn is one accepted TCP connection: a reader goroutine decoding frames
// and routing them, and a writer goroutine serializing response frames.
type conn struct {
	srv    *Server
	nc     net.Conn
	out    chan []byte // response frame payloads
	closed chan struct{}
	once   sync.Once

	// sessions opened on this connection (guarded by srv.mu); a dying
	// connection cancels exactly these.
	sessions map[uint32]*session
}

// close tears the connection down once: unblocks the writer, closes the
// socket, and cancels every session the connection owns.
func (c *conn) close() {
	c.once.Do(func() {
		close(c.closed)
		c.nc.Close()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		sessions := make([]*session, 0, len(c.sessions))
		for _, sess := range c.sessions {
			sessions = append(sessions, sess)
		}
		c.srv.mu.Unlock()
		c.srv.mConns.Add(-1)
		for _, sess := range sessions {
			sess.cancel()
		}
	})
}

// send queues one response frame payload, dropping it if the connection died
// (the client is gone; nobody is waiting).
func (c *conn) send(payload []byte) {
	select {
	case c.out <- payload:
	case <-c.closed:
	}
}

// reply encodes a response to m: status byte, then the result body.
func (c *conn) reply(m wire.Msg, status wire.Status, body []byte) {
	resp := wire.Msg{Op: m.Op, Session: m.Session, Req: m.Req}
	resp.Body = append([]byte{byte(status)}, body...)
	c.send(wire.AppendMsg(nil, resp))
}

// replyErr encodes a failure response carrying the error text.
func (c *conn) replyErr(m wire.Msg, status wire.Status, err error) {
	c.reply(m, status, wire.AppendString(nil, err.Error()))
}

// writeLoop serializes frames onto the socket. Frames are built as single
// buffers and written with one Write each (WriteFrame), so no interleaving
// is possible even with many producing sessions. Every write runs under the
// configured write deadline: a peer that stops reading fails the write
// within WriteTimeout instead of parking this goroutine (and everyone
// waiting on the out channel) forever.
func (c *conn) writeLoop() {
	defer c.srv.connWG.Done()
	wt := c.srv.cfg.WriteTimeout
	for {
		select {
		case payload := <-c.out:
			if wt > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(wt))
			}
			if err := wire.WriteFrame(c.nc, payload); err != nil {
				c.srv.logf("server: %s: write: %v", c.nc.RemoteAddr(), err)
				c.close()
				return
			}
		case <-c.closed:
			return
		}
	}
}

// readLoop decodes frames and routes them until the connection dies. Any
// framing error is fatal to the connection: a peer that desynchronizes the
// stream cannot be trusted to resynchronize it. Each received frame renews
// the keep-alive allowance; a connection silent (or stalled mid-frame) past
// KeepAliveInterval×KeepAliveMisses is closed as missing its heartbeats.
func (c *conn) readLoop() {
	defer c.srv.connWG.Done()
	defer c.close()
	window := c.srv.readWindow()
	for {
		if window > 0 {
			c.nc.SetReadDeadline(time.Now().Add(window))
		}
		payload, err := wire.ReadFrame(c.nc)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				c.srv.mHBMiss.Add(1)
				c.srv.logf("server: %s: missed %d keep-alive intervals, closing",
					c.nc.RemoteAddr(), c.srv.cfg.KeepAliveMisses)
			}
			return
		}
		m, err := wire.DecodeMsg(payload)
		if err != nil {
			c.srv.logf("server: %s: bad message: %v", c.nc.RemoteAddr(), err)
			return
		}
		c.srv.dispatch(c, m)
	}
}

// dispatch routes one decoded request. Connection-scoped ops run on short
// spawned goroutines (opening a session may build an engine, which loads a
// document); session ops are enqueued to the session's worker.
func (s *Server) dispatch(c *conn, m wire.Msg) {
	s.mRequests.Add(1)
	switch m.Op {
	case wire.OpOpenSession:
		go s.openSession(c, m)
		return
	case wire.OpResumeSession:
		go s.resumeSession(c, m)
		return
	case wire.OpPing:
		c.reply(m, wire.StatusOK, m.Body)
		return
	case wire.OpHeartbeat:
		// The frame itself already renewed the connection's read-idle
		// allowance; a session-scoped heartbeat additionally refreshes that
		// session's reaper clock (a client may legitimately hold a session
		// idle between bursts).
		if m.Session != 0 {
			s.mu.Lock()
			if sess := s.sessions[m.Session]; sess != nil && sess.c == c {
				sess.touch()
			}
			s.mu.Unlock()
		}
		c.reply(m, wire.StatusOK, nil)
		return
	case wire.OpStats:
		go s.serveStats(c, m)
		return
	case wire.OpAudit:
		go s.serveAudit(c, m)
		return
	}

	s.mu.Lock()
	sess := s.sessions[m.Session]
	s.mu.Unlock()
	if sess == nil || sess.c != c {
		// Not necessarily misuse: the session may have been reaped for
		// idleness or torn down by a drain while the connection stayed up.
		// The dedicated status lets the client resume instead of erroring.
		c.replyErr(m, wire.StatusNoSession, fmt.Errorf("server: no session %d on this connection", m.Session))
		return
	}
	sess.touch()
	select {
	case sess.queue <- m:
		s.mQueue.Add(1)
	default:
		s.mBusy.Add(1)
		c.replyErr(m, wire.StatusBusy, fmt.Errorf("server: session %d queue full", m.Session))
	}
}

// openSession admits (or rejects) a new session and starts its worker.
func (s *Server) openSession(c *conn, m wire.Msg) {
	r := wire.NewReader(m.Body)
	open := r.OpenSession()
	if r.Err() != nil {
		c.replyErr(m, wire.StatusBadRequest, r.Err())
		return
	}
	s.admitSession(c, m, open, nil)
}

// resumeFateWait bounds how long a resume waits for the stale session's
// worker to finish so the fate of its last transaction is final. A worker
// wedged past this resumes with FateUnknown rather than blocking the client.
const resumeFateWait = 5 * time.Second

// resumeSession re-establishes a session for a reconnected client: evict the
// stale predecessor if it survived (its transaction aborts and its locks
// release through the cancellation path — the old connection may be dead
// without the server having noticed yet), then admit a replacement with the
// same parameters. The old transaction is gone either way; resumption
// restores the session slot, not in-flight work — but the response reports
// the FATE of the old session's last transaction (committed/aborted), so a
// client whose commit reply was severed learns the true outcome instead of
// living with at-least-once ambiguity.
func (s *Server) resumeSession(c *conn, m wire.Msg) {
	r := wire.NewReader(m.Body)
	rs := r.ResumeSession()
	if r.Err() != nil {
		c.replyErr(m, wire.StatusBadRequest, r.Err())
		return
	}
	s.mu.Lock()
	stale := s.sessions[rs.Old]
	s.mu.Unlock()
	if stale != nil {
		s.logf("server: resume evicting stale session %d", rs.Old)
		stale.cancel()
		// The fate is final only once the stale worker exited (a teardown
		// abort must be recorded before we claim anything).
		select {
		case <-stale.done:
		case <-time.After(resumeFateWait):
		}
	}
	fate := wire.ResumeResult{Fate: wire.FateUnknown}
	s.mu.Lock()
	if fr, ok := s.fates[rs.Old]; ok {
		fate.Fate, fate.FateTxn = fr.fate, fr.txn
		delete(s.fates, rs.Old)
	}
	s.mu.Unlock()
	s.mResumed.Add(1)
	s.admitSession(c, m, rs.Open, &fate)
}

// admitSession runs admission control and, when admitted, registers the new
// session and starts its worker — the shared tail of open and resume. resume
// is nil for a fresh open; a resume passes the fate report to deliver, and
// the reply carries it after the session id.
func (s *Server) admitSession(c *conn, m wire.Msg, open wire.OpenSession, resume *wire.ResumeResult) {
	p, err := protocol.Parse(open.Protocol)
	if err != nil {
		c.replyErr(m, wire.StatusBadRequest, err)
		return
	}
	iso, err := isolationLevel(open.Isolation)
	if err != nil {
		c.replyErr(m, wire.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		c.replyErr(m, wire.StatusShutdown, errors.New("server: draining"))
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.mRejected.Add(1)
		c.replyErr(m, wire.StatusBusy, fmt.Errorf("server: session limit %d reached", s.cfg.MaxSessions))
		return
	}
	s.mu.Unlock()

	eng, err := s.engine(p, open.Depth)
	if err != nil {
		c.replyErr(m, wire.StatusErr, err)
		return
	}
	if iso == tx.LevelSnapshot && !eng.Mgr.SnapshotsEnabled() {
		c.replyErr(m, wire.StatusBadRequest, fmt.Errorf(
			"server: engine for %s has no snapshot reads (no WAL attached)", p.Name()))
		return
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	sess := &session{
		eng:    eng,
		iso:    iso,
		c:      c,
		queue:  make(chan wire.Msg, s.cfg.SessionQueue),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	sess.touch()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		c.replyErr(m, wire.StatusShutdown, errors.New("server: draining"))
		return
	}
	s.nextSess++
	sess.id = s.nextSess
	s.sessions[sess.id] = sess
	c.sessions[sess.id] = sess
	s.mu.Unlock()

	s.mAccepted.Add(1)
	s.mActive.Add(1)
	s.sessWG.Add(1)
	go s.sessionWorker(sess)
	if resume != nil {
		resume.ID = sess.id
		c.reply(m, wire.StatusOK, wire.AppendResumeResult(nil, *resume))
		return
	}
	c.reply(m, wire.StatusOK, wire.AppendUvarint(nil, uint64(sess.id)))
}

// serveStats answers OpStats: counters for one protocol's engine.
func (s *Server) serveStats(c *conn, m wire.Msg) {
	name := wire.NewReader(m.Body).String()
	eng := s.lookupEngine(name)
	if eng == nil {
		c.replyErr(m, wire.StatusNotFound, fmt.Errorf("server: no engine for protocol %q", name))
		return
	}
	ls := eng.Mgr.LockManager().Stats()
	ts := eng.Mgr.TxManager().Stats()
	c.reply(m, wire.StatusOK, wire.AppendStats(nil, wire.Stats{
		LockRequests:        ls.Requests,
		LockCacheHits:       ls.CacheHits,
		LockWaits:           ls.Waits,
		Deadlocks:           ls.Deadlocks,
		ConversionDeadlocks: ls.ConversionDeadlocks,
		SubtreeDeadlocks:    ls.SubtreeDeadlocks,
		Timeouts:            ls.Timeouts,
		TxBegun:             ts.Begun,
		TxCommitted:         ts.Committed,
		TxAborted:           ts.Aborted,
	}))
}

// serveAudit answers OpAudit: the engine's integrity audits (document Verify
// plus lock LeakCheck), the same checks a local TaMix run ends with.
func (s *Server) serveAudit(c *conn, m wire.Msg) {
	name := wire.NewReader(m.Body).String()
	eng := s.lookupEngine(name)
	if eng == nil {
		c.replyErr(m, wire.StatusNotFound, fmt.Errorf("server: no engine for protocol %q", name))
		return
	}
	if err := eng.Mgr.Document().Verify(); err != nil {
		c.replyErr(m, wire.StatusErr, fmt.Errorf("verify: %w", err))
		return
	}
	if err := eng.Mgr.LockManager().LeakCheck(); err != nil {
		c.replyErr(m, wire.StatusErr, fmt.Errorf("leak check: %w", err))
		return
	}
	c.reply(m, wire.StatusOK, nil)
}
