package lock

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestObserverStorm hammers the mutex-free observer paths — Stats, Snapshot
// (with Render), ActiveResources, LeakCheck — concurrently with acquire/
// release storms that exercise every grant path: CAS fast grants, cache
// hits, batch walks, conversions, blocking waits, deadlocks, and short
// (operation-duration) locks. Run under -race this is the seqlock torture
// test: observers must never tear a read or trip the detector while the
// table churns underneath them.
func TestObserverStorm(t *testing.T) {
	m := newMgr(t, Options{Timeout: 2 * time.Second, Stripes: 8})

	const (
		workers   = 8
		observers = 3
		hotRes    = 6
	)
	duration := 400 * time.Millisecond
	if testing.Short() {
		duration = 100 * time.Millisecond
	}

	var (
		stop     atomic.Bool
		ops      atomic.Int64
		obsReads atomic.Int64
		wg       sync.WaitGroup
	)

	ancestors := []Resource{"st/r", "st/r/a", "st/r/a/b"}
	hot := make([]Resource, hotRes)
	for i := range hot {
		hot[i] = Resource(fmt.Sprintf("st/hot-%d", i))
	}
	modes := []Mode{tIS, tIX, tS, tU, tX}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			reqs := make([]Req, 0, 8)
			for !stop.Load() {
				tx := m.Begin()
				abort := false
				for step := 0; step < 6 && !abort; step++ {
					var err error
					switch rng.Intn(4) {
					case 0: // batch path walk onto a private leaf — fast grants + hits
						reqs = reqs[:0]
						for _, res := range ancestors {
							reqs = append(reqs, Req{Res: res, Mode: tIS})
						}
						leaf := Resource(fmt.Sprintf("st/r/a/b/leaf-%d-%d", w, rng.Intn(4)))
						reqs = append(reqs, Req{Res: leaf, Mode: tS})
						err = m.LockBatch(tx, reqs)
					case 1: // contended resource, random mode — waits, conversions
						err = m.Lock(tx, hot[rng.Intn(hotRes)], modes[rng.Intn(len(modes))], false)
					case 2: // short-duration lock, released mid-transaction
						if err = m.Lock(tx, hot[rng.Intn(hotRes)], tIS, true); err == nil {
							m.ReleaseShort(tx)
						}
					default: // re-request something likely held — cache-hit path
						err = m.Lock(tx, ancestors[rng.Intn(len(ancestors))], tIS, false)
					}
					if err != nil {
						if !errors.Is(err, ErrDeadlockVictim) && !errors.Is(err, ErrLockTimeout) {
							t.Errorf("worker %d: %v", w, err)
						}
						abort = true
					}
					ops.Add(1)
				}
				m.ReleaseAll(tx)
			}
		}(w)
	}

	for o := 0; o < observers; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			var buf bytes.Buffer
			for !stop.Load() {
				switch o % 3 {
				case 0:
					snap := m.Snapshot()
					buf.Reset()
					snap.Render(&buf)
				case 1:
					_ = m.Stats()
					_ = m.ActiveResources()
				default:
					_ = m.LeakCheck() // mid-storm it reports busy resources; must not race
					_ = m.Stats()
				}
				obsReads.Add(1)
			}
		}(o)
	}

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	if ops.Load() == 0 || obsReads.Load() == 0 {
		t.Fatalf("no progress: %d ops, %d observer reads", ops.Load(), obsReads.Load())
	}
	if err := m.LeakCheck(); err != nil {
		t.Fatalf("after storm: %v", err)
	}
	if n := m.ActiveResources(); n != 0 {
		t.Fatalf("after storm: %d active resources, want 0", n)
	}
}
