package lock

import "sort"

// Deadlock detection: the manager maintains no explicit wait-for graph;
// instead, a dedicated detector goroutine derives it on demand from a
// snapshot of the lock table and searches it for cycles. Every time a
// request blocks, the requester kicks the detector (a buffered signal, so
// kicks coalesce under load); a cycle can only come into existence when its
// last edge appears, and edges only appear when a transaction starts
// waiting, so running the detector after every block finds every deadlock.
//
// Detection is two-phase so the common no-deadlock pass never blocks the
// grant path:
//
//  1. An optimistic pass reads the wait-for edges through the per-partition
//     seqlocks — no mutex, grants and releases proceed underneath. A cycle
//     that existed when the detector was kicked consists entirely of
//     standing edges (its waiters stay blocked until the cycle is broken),
//     so the pass cannot miss it; what it *can* do is suspect a cycle from a
//     cross-partition view that was never simultaneous.
//  2. Only when the optimistic pass suspects a cycle does the detector lock
//     every partition (ascending index — the table-wide lock-order
//     discipline) and re-derive the graph exactly, confirming and resolving
//     cycles with the same algorithm and determinism as before the fast
//     path existed. No transaction is ever aborted on optimistic evidence.
//
// Edges of a waiting transaction w:
//   - to every holder of w's awaited resource whose granted mode is
//     incompatible with w's requested (converted) mode, and
//   - to every transaction queued ahead of w on that resource (the FIFO
//     queue makes w wait for them too).
//
// Waiters are scanned newest-first (by request sequence number): the most
// recent blocker is the one whose edge can have closed a new cycle, so the
// search starts where the old at-block-time detection started. The victim
// is the youngest member of the cycle (largest TxID), matching the usual
// "least work lost" heuristic. The victim's pending request fails with
// ErrDeadlockVictim; its held locks are freed when the transaction layer
// aborts it.

// detectorLoop runs until Close; each kick triggers one detection pass.
//
// Shutdown is a deterministic drain: when detStop closes, one final pass
// runs unconditionally before the loop exits. Without it, a kick enqueued
// after the last pass but before detStop wins the select would be dropped
// (the select picks randomly among ready cases), leaving a just-formed
// cycle undetected while its waiters still block. The final pass observes
// every edge published before Close — and Close waits on detDone, so by the
// time Close returns no pre-Close cycle can be outstanding.
func (m *Manager) detectorLoop() {
	defer close(m.detDone)
	for {
		select {
		case <-m.detStop:
			m.detectAndResolve()
			return
		case <-m.detKick:
			m.detectAndResolve()
		}
	}
}

// kickDetector schedules a detection pass. Non-blocking: the buffered
// channel coalesces concurrent kicks, and a kick sent while a pass runs
// triggers one more pass (which will see every edge published before the
// kick, because the pass reads the partitions afterwards).
func (m *Manager) kickDetector() {
	select {
	case m.detKick <- struct{}{}:
	default:
	}
}

// lockAllStripes acquires every partition mutex in ascending order (with
// the seqlock bumps — the combined section mutates the table when it aborts
// a victim).
func (m *Manager) lockAllStripes() {
	for i := range m.stripes {
		m.stripes[i].lock()
	}
}

func (m *Manager) unlockAllStripes() {
	for i := len(m.stripes) - 1; i >= 0; i-- {
		m.stripes[i].unlock()
	}
}

// detectAndResolve runs one detection pass: optimistic scan, then — only if
// a cycle is suspected — an exact confirm-and-resolve pass under every
// partition mutex, breaking cycles newest waiter first until none remain.
func (m *Manager) detectAndResolve() {
	t0 := m.hDetector.Start()
	defer m.hDetector.Since(t0)
	if !m.suspectCycle() {
		return
	}
	m.lockAllStripes()
	defer m.unlockAllStripes()
	for {
		waiting, order := m.waitingRequestsLocked()
		var cycle []*Tx
		for _, req := range order {
			if c := m.findCycleLocked(req.txp.Load(), waiting); c != nil {
				cycle = c
				break
			}
		}
		if cycle == nil {
			return
		}
		victim := cycle[0]
		for _, member := range cycle {
			if member.id > victim.id {
				victim = member
			}
		}
		info := DeadlockInfo{Victim: victim.id}
		for _, member := range cycle {
			info.Members = append(info.Members, member.id)
			if req := waiting[member.id]; req != nil {
				info.Resources = append(info.Resources, req.res)
				if req.conversion() {
					info.Conversion = true
				}
			} else {
				info.Resources = append(info.Resources, "")
			}
		}
		m.stats.deadlocks.Add(1)
		if info.Conversion {
			m.stats.conversionDeadlocks.Add(1)
		} else {
			m.stats.subtreeDeadlocks.Add(1)
		}
		if m.onDL != nil {
			m.onDL(info)
		}
		m.abortVictimLocked(victim, waiting[victim.id])
	}
}

// suspectCycle derives the wait-for graph from per-partition seqlock reads
// and reports whether it contains a cycle. Mutex-free: a pass over a busy
// table blocks no grant and no release. False positives are possible (the
// per-partition reads are not simultaneous); false negatives for standing
// cycles are not, because a standing cycle's edges persist until a victim
// is aborted — and aborting only happens in the confirm pass.
func (m *Manager) suspectCycle() bool {
	succ := make(map[TxID][]TxID)
	edges := false
	for i := range m.stripes {
		s := &m.stripes[i]
		var local [][2]TxID
		s.stableRead(func() bool {
			local = local[:0]
			ok := true
			s.index.walk(func(_ Resource, h *lockHead) {
				qp := h.waitq.Load()
				if qp == nil {
					return
				}
				q := *qp
				// A queued waiter keeps the head sealed, so the holder
				// chain is not being fast-pushed while we read it — but
				// this is a stale-tolerant read regardless.
				var holders []holderRef
				n := 0
				for e := h.holders.Load(); e != nil; e = e.next.Load() {
					if n++; n > observerWalkBound {
						ok = false
						return
					}
					if t := e.txp.Load(); t != nil {
						holders = append(holders, holderRef{t.id, e.mode()})
					}
				}
				for qi, r := range q {
					rt := r.txp.Load()
					if rt == nil {
						continue
					}
					w, target := rt.id, r.target()
					for _, hd := range holders {
						if hd.id != w && !m.table.Compatible(hd.mode, target) {
							local = append(local, [2]TxID{w, hd.id})
						}
					}
					for _, a := range q[:qi] {
						if at := a.txp.Load(); at != nil && at.id != w {
							local = append(local, [2]TxID{w, at.id})
						}
					}
				}
			})
			return ok
		})
		for _, e := range local {
			succ[e[0]] = append(succ[e[0]], e[1])
			edges = true
		}
	}
	return edges && hasCycle(succ)
}

type holderRef struct {
	id   TxID
	mode Mode
}

// hasCycle is a plain iterative three-color DFS over the suspected graph.
func hasCycle(succ map[TxID][]TxID) bool {
	const gray, black = 1, 2
	color := make(map[TxID]int, len(succ))
	type frame struct {
		id   TxID
		next int
	}
	for id := range succ {
		if color[id] != 0 {
			continue
		}
		color[id] = gray
		stack := []frame{{id: id}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			ss := succ[f.id]
			if f.next >= len(ss) {
				color[f.id] = black
				stack = stack[:len(stack)-1]
				continue
			}
			n := ss[f.next]
			f.next++
			switch color[n] {
			case gray:
				return true
			case 0:
				color[n] = gray
				stack = append(stack, frame{id: n})
			}
		}
	}
	return false
}

// waitingRequestsLocked collects every queued request across all partitions:
// a map keyed by transaction (each transaction waits on at most one
// resource) and a slice ordered newest block first. Caller holds all
// partition mutexes.
func (m *Manager) waitingRequestsLocked() (map[TxID]*request, []*request) {
	waiting := make(map[TxID]*request)
	var order []*request
	for i := range m.stripes {
		m.stripes[i].index.walk(func(_ Resource, h *lockHead) {
			for _, req := range h.queueLocked() {
				if t := req.txp.Load(); t != nil {
					waiting[t.id] = req
					order = append(order, req)
				}
			}
		})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].seq() > order[b].seq() })
	return waiting, order
}

// findCycleLocked searches for a wait-for cycle through start and returns
// its members (start first), or nil. Caller holds all partition mutexes.
func (m *Manager) findCycleLocked(start *Tx, waiting map[TxID]*request) []*Tx {
	// Iterative DFS keeping the current path for cycle reconstruction.
	type frame struct {
		tx    *Tx
		succs []*Tx
		next  int
	}
	visited := map[TxID]bool{}
	stack := []frame{{tx: start, succs: m.successorsLocked(start, waiting)}}
	onPath := map[TxID]bool{start.id: true}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succs) {
			onPath[f.tx.id] = false
			stack = stack[:len(stack)-1]
			continue
		}
		succ := f.succs[f.next]
		f.next++
		if succ == start {
			cycle := make([]*Tx, 0, len(stack))
			for i := range stack {
				cycle = append(cycle, stack[i].tx)
			}
			return cycle
		}
		if visited[succ.id] || onPath[succ.id] {
			continue
		}
		visited[succ.id] = true
		onPath[succ.id] = true
		stack = append(stack, frame{tx: succ, succs: m.successorsLocked(succ, waiting)})
	}
	return nil
}

// successorsLocked returns the transactions w is waiting for, sorted by
// TxID so detection is deterministic. Caller holds all partition mutexes
// (and the awaited head, having a queued waiter, is sealed — the holder
// chain is stable).
func (m *Manager) successorsLocked(w *Tx, waiting map[TxID]*request) []*Tx {
	req := waiting[w.id]
	if req == nil {
		return nil
	}
	h := m.headOf(req.res)
	if h == nil {
		return nil
	}
	var out []*Tx
	seen := map[TxID]bool{w.id: true}
	target := req.target()
	for e := h.holders.Load(); e != nil; e = e.next.Load() {
		t := e.txp.Load()
		if t == nil || seen[t.id] {
			continue
		}
		if !m.table.Compatible(e.mode(), target) {
			seen[t.id] = true
			out = append(out, t)
		}
	}
	for _, r := range h.queueLocked() {
		if r == req {
			break
		}
		if rt := r.txp.Load(); rt != nil && !seen[rt.id] {
			seen[rt.id] = true
			out = append(out, rt)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// abortVictimLocked dooms the victim and fails its pending request. Caller
// holds all partition mutexes and no Tx mutex.
func (m *Manager) abortVictimLocked(victim *Tx, req *request) {
	victim.doomed.Store(true)
	if req == nil {
		return
	}
	victim.mu.Lock()
	if victim.waiting == req {
		victim.waiting = nil
	}
	victim.mu.Unlock()
	hash := fnv1a(string(req.res))
	s := &m.stripes[hash&m.mask]
	if h := s.index.lookup(req.res, hash); h != nil {
		sealHeadLocked(h)
		m.removeRequestLocked(s, h, req)
		m.finishHeadLocked(s, h)
	}
	req.result <- ErrDeadlockVictim
}
