package lock

import "sort"

// Deadlock detection: the manager maintains no explicit wait-for graph;
// instead, a dedicated detector goroutine derives it on demand from a
// cross-partition snapshot of the lock table and searches it for cycles.
// Every time a request blocks, the requester kicks the detector (a buffered
// signal, so kicks coalesce under load); a cycle can only come into
// existence when its last edge appears, and edges only appear when a
// transaction starts waiting, so running the detector after every block
// finds every deadlock.
//
// The snapshot is taken by locking all partitions in ascending index order —
// the same lock-order discipline the batch API uses — which makes the
// detector's view exactly as consistent as the old single-mutex inline
// detection, just off the requester's critical path.
//
// Edges of a waiting transaction w:
//   - to every holder of w's awaited resource whose granted mode is
//     incompatible with w's requested (converted) mode, and
//   - to every transaction queued ahead of w on that resource (the FIFO
//     queue makes w wait for them too).
//
// Waiters are scanned newest-first (by request sequence number): the most
// recent blocker is the one whose edge can have closed a new cycle, so the
// search starts where the old at-block-time detection started. The victim
// is the youngest member of the cycle (largest TxID), matching the usual
// "least work lost" heuristic. The victim's pending request fails with
// ErrDeadlockVictim; its held locks are freed when the transaction layer
// aborts it.

// detectorLoop runs until Close; each kick triggers one detection pass.
//
// Shutdown is a deterministic drain: when detStop closes, one final pass
// runs unconditionally before the loop exits. Without it, a kick enqueued
// after the last pass but before detStop wins the select would be dropped
// (the select picks randomly among ready cases), leaving a just-formed
// cycle undetected while its waiters still block. The final pass takes
// every partition mutex, so it observes every edge published before Close —
// and Close waits on detDone, so by the time Close returns no pre-Close
// cycle can be outstanding.
func (m *Manager) detectorLoop() {
	defer close(m.detDone)
	for {
		select {
		case <-m.detStop:
			m.detectAndResolve()
			return
		case <-m.detKick:
			m.detectAndResolve()
		}
	}
}

// kickDetector schedules a detection pass. Non-blocking: the buffered
// channel coalesces concurrent kicks, and a kick sent while a pass runs
// triggers one more pass (which will see every edge published before the
// kick, because the pass acquires the partition mutexes afterwards).
func (m *Manager) kickDetector() {
	select {
	case m.detKick <- struct{}{}:
	default:
	}
}

// lockAllStripes acquires every partition mutex in ascending order.
func (m *Manager) lockAllStripes() {
	for i := range m.stripes {
		m.stripes[i].mu.Lock()
	}
}

func (m *Manager) unlockAllStripes() {
	for i := len(m.stripes) - 1; i >= 0; i-- {
		m.stripes[i].mu.Unlock()
	}
}

// detectAndResolve takes a cross-partition snapshot and breaks every cycle
// in it, newest waiter first, until none remain.
func (m *Manager) detectAndResolve() {
	t0 := m.hDetector.Start()
	defer m.hDetector.Since(t0)
	m.lockAllStripes()
	defer m.unlockAllStripes()
	for {
		waiting, order := m.waitingRequestsLocked()
		var cycle []*Tx
		for _, req := range order {
			if c := m.findCycleLocked(req.tx, waiting); c != nil {
				cycle = c
				break
			}
		}
		if cycle == nil {
			return
		}
		victim := cycle[0]
		for _, member := range cycle {
			if member.id > victim.id {
				victim = member
			}
		}
		info := DeadlockInfo{Victim: victim.id}
		for _, member := range cycle {
			info.Members = append(info.Members, member.id)
			if req := waiting[member.id]; req != nil {
				info.Resources = append(info.Resources, req.res)
				if req.conversion {
					info.Conversion = true
				}
			} else {
				info.Resources = append(info.Resources, "")
			}
		}
		m.stats.deadlocks.Add(1)
		if info.Conversion {
			m.stats.conversionDeadlocks.Add(1)
		} else {
			m.stats.subtreeDeadlocks.Add(1)
		}
		if m.onDL != nil {
			m.onDL(info)
		}
		m.abortVictimLocked(victim, waiting[victim.id])
	}
}

// waitingRequestsLocked collects every queued request across all partitions:
// a map keyed by transaction (each transaction waits on at most one
// resource) and a slice ordered newest block first. Caller holds all
// partition mutexes.
func (m *Manager) waitingRequestsLocked() (map[TxID]*request, []*request) {
	waiting := make(map[TxID]*request)
	var order []*request
	for i := range m.stripes {
		for _, h := range m.stripes[i].locks {
			for _, req := range h.queue {
				waiting[req.tx.id] = req
				order = append(order, req)
			}
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].seq > order[b].seq })
	return waiting, order
}

// findCycleLocked searches for a wait-for cycle through start and returns
// its members (start first), or nil. Caller holds all partition mutexes.
func (m *Manager) findCycleLocked(start *Tx, waiting map[TxID]*request) []*Tx {
	// Iterative DFS keeping the current path for cycle reconstruction.
	type frame struct {
		tx    *Tx
		succs []*Tx
		next  int
	}
	visited := map[TxID]bool{}
	stack := []frame{{tx: start, succs: m.successorsLocked(start, waiting)}}
	onPath := map[TxID]bool{start.id: true}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succs) {
			onPath[f.tx.id] = false
			stack = stack[:len(stack)-1]
			continue
		}
		succ := f.succs[f.next]
		f.next++
		if succ == start {
			cycle := make([]*Tx, 0, len(stack))
			for i := range stack {
				cycle = append(cycle, stack[i].tx)
			}
			return cycle
		}
		if visited[succ.id] || onPath[succ.id] {
			continue
		}
		visited[succ.id] = true
		onPath[succ.id] = true
		stack = append(stack, frame{tx: succ, succs: m.successorsLocked(succ, waiting)})
	}
	return nil
}

// successorsLocked returns the transactions w is waiting for, sorted by
// TxID so detection is deterministic. Caller holds all partition mutexes.
func (m *Manager) successorsLocked(w *Tx, waiting map[TxID]*request) []*Tx {
	req := waiting[w.id]
	if req == nil {
		return nil
	}
	h := m.stripeFor(req.res).locks[req.res]
	if h == nil {
		return nil
	}
	var out []*Tx
	seen := map[TxID]bool{w.id: true}
	for id, e := range h.granted {
		if id == w.id || seen[id] {
			continue
		}
		if !m.table.Compatible(e.mode, req.target) {
			seen[id] = true
			out = append(out, e.tx)
		}
	}
	for _, r := range h.queue {
		if r == req {
			break
		}
		if !seen[r.tx.id] {
			seen[r.tx.id] = true
			out = append(out, r.tx)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// abortVictimLocked dooms the victim and fails its pending request. Caller
// holds all partition mutexes and no Tx mutex.
func (m *Manager) abortVictimLocked(victim *Tx, req *request) {
	victim.doomed.Store(true)
	if req == nil {
		return
	}
	victim.mu.Lock()
	if victim.waiting == req {
		victim.waiting = nil
	}
	victim.mu.Unlock()
	m.removeRequestLocked(m.stripeFor(req.res), req)
	req.result <- ErrDeadlockVictim
}
