package lock

// Deadlock detection: the manager maintains no explicit wait-for graph;
// instead, each time a transaction blocks, the graph is derived on the fly
// from the lock table and searched for a cycle through the new waiter. A
// cycle can only come into existence when its last edge appears, and edges
// only appear when a transaction starts waiting, so checking at block time
// finds every deadlock exactly once.
//
// Edges of a waiting transaction w:
//   - to every holder of w's awaited resource whose granted mode is
//     incompatible with w's requested (converted) mode, and
//   - to every transaction queued ahead of w on that resource (the FIFO
//     queue makes w wait for them too).
//
// The victim is the youngest member of the cycle (largest TxID), matching
// the usual "least work lost" heuristic. The victim's pending request fails
// with ErrDeadlockVictim; its held locks are freed when the transaction
// layer aborts it.

// resolveDeadlocksLocked breaks every cycle through tx, returning true when
// tx itself was aborted as a victim. Caller holds m.mu.
func (m *Manager) resolveDeadlocksLocked(tx *Tx) bool {
	for {
		cycle := m.findCycleLocked(tx)
		if cycle == nil {
			return false
		}
		victim := cycle[0]
		for _, member := range cycle {
			if member.id > victim.id {
				victim = member
			}
		}
		info := DeadlockInfo{Victim: victim.id}
		for _, member := range cycle {
			info.Members = append(info.Members, member.id)
			if member.waiting != nil {
				info.Resources = append(info.Resources, member.waiting.res)
				if member.waiting.conversion {
					info.Conversion = true
				}
			} else {
				info.Resources = append(info.Resources, "")
			}
		}
		m.deadlocks.Add(1)
		if info.Conversion {
			m.conversionDeadlocks.Add(1)
		} else {
			m.subtreeDeadlocks.Add(1)
		}
		if m.onDL != nil {
			m.onDL(info)
		}
		m.abortVictimLocked(victim)
		if victim == tx {
			return true
		}
	}
}

// findCycleLocked searches for a wait-for cycle through start and returns
// its members (start first), or nil.
func (m *Manager) findCycleLocked(start *Tx) []*Tx {
	// Iterative DFS keeping the current path for cycle reconstruction.
	type frame struct {
		tx    *Tx
		succs []*Tx
		next  int
	}
	visited := map[TxID]bool{}
	stack := []frame{{tx: start, succs: m.successorsLocked(start)}}
	onPath := map[TxID]bool{start.id: true}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succs) {
			onPath[f.tx.id] = false
			stack = stack[:len(stack)-1]
			continue
		}
		succ := f.succs[f.next]
		f.next++
		if succ == start {
			cycle := make([]*Tx, 0, len(stack))
			for i := range stack {
				cycle = append(cycle, stack[i].tx)
			}
			return cycle
		}
		if visited[succ.id] || onPath[succ.id] {
			continue
		}
		visited[succ.id] = true
		onPath[succ.id] = true
		stack = append(stack, frame{tx: succ, succs: m.successorsLocked(succ)})
	}
	return nil
}

// successorsLocked returns the transactions w is waiting for.
func (m *Manager) successorsLocked(w *Tx) []*Tx {
	if w.waiting == nil {
		return nil
	}
	req := w.waiting
	h := m.locks[req.res]
	if h == nil {
		return nil
	}
	var out []*Tx
	seen := map[TxID]bool{w.id: true}
	for id, e := range h.granted {
		if id == w.id || seen[id] {
			continue
		}
		if !m.table.Compatible(e.mode, req.target) {
			seen[id] = true
			out = append(out, e.tx)
		}
	}
	for _, r := range h.queue {
		if r == req {
			break
		}
		if !seen[r.tx.id] {
			seen[r.tx.id] = true
			out = append(out, r.tx)
		}
	}
	return out
}

// abortVictimLocked dooms the victim and fails its pending request.
func (m *Manager) abortVictimLocked(victim *Tx) {
	victim.doomed = true
	if req := victim.waiting; req != nil {
		victim.waiting = nil
		m.removeRequestLocked(req)
		req.result <- ErrDeadlockVictim
	}
}
