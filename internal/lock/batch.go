package lock

import "fmt"

// Req is one lock request inside a batch (see Manager.LockBatch).
type Req struct {
	Res   Resource
	Mode  Mode
	Short bool
}

// pendReq is a batch request the single-critical-section pass could not
// answer, remembering how many cache hits preceded it in the batch.
type pendReq struct {
	Req
	hitsBefore int
}

// LockBatch acquires reqs for tx with the same observable semantics as
// issuing them through Lock in order, but under a single transaction-mutex
// critical section for the entire answerable prefix: cache hits
// (epoch-stamped held entries) anywhere in the batch, and CAS fast-path
// grants for fresh resources up to the first request that needs the slow
// path. Fast grants stop at that point because granting later requests
// before an earlier one completes would break the batch's acquisition
// order — the root-first discipline the protocols rely on to avoid
// deadlocks. The remainder go through Lock one by one in their original
// order. (The old combined multi-partition immediate-grant pass is gone:
// the per-request CAS path is cheaper than taking several partition
// mutexes together, and it preserves ordering trivially.)
//
// The first error aborts the batch; earlier grants stay (exactly as with
// sequential Lock calls — the transaction's abort releases them). The
// statistics come out exactly as for the sequential calls: cache hits are
// booked just before the table request that follows them, so the counters
// advance the way a sequential caller's would, even while a request blocks.
func (m *Manager) LockBatch(tx *Tx, reqs []Req) error {
	if len(reqs) == 0 {
		return nil
	}
	// Phase 1: one pass under tx.mu. Hits are counted but not booked yet:
	// if a later request fails, sequential semantics say the requests after
	// it were never issued, so only hits that precede the failure may show
	// up in the statistics. pend is allocated lazily — a fully answered
	// batch (the protocol hot path) allocates nothing here.
	var pend []pendReq
	hits, fasts := 0, 0
	tx.mu.Lock()
	if tx.done {
		tx.mu.Unlock()
		m.stats.requests.Add(1) // the first sequential Lock would be counted
		return ErrTxDone
	}
	if tx.doomed.Load() {
		tx.mu.Unlock()
		m.stats.requests.Add(1)
		return ErrDeadlockVictim
	}
	for i, r := range reqs {
		if r.Mode == ModeNone {
			tx.mu.Unlock()
			m.bookFastGrants(fasts)
			if hits > 0 { // every counted hit precedes the failure
				m.stats.cacheHits.Add(uint64(hits))
			}
			return fmt.Errorf("lock: cannot request ModeNone on %q", r.Res)
		}
		if e := tx.held[r.Res]; e != nil {
			hm, hshort := e.loadState()
			if (hm == r.Mode || m.table.Convert(hm, r.Mode) == hm) &&
				!hshort && e.cacheEpoch == tx.cacheEpoch {
				hits++
				continue
			}
			// Held but not a pure cache hit (short-held, stale stamp, or a
			// conversion): the sequential Lock call resolves it with exact
			// booking.
		} else if len(pend) == 0 && m.ft != nil {
			hash := fnv1a(string(r.Res))
			if h := m.stripes[hash&m.mask].index.lookup(r.Res, hash); h != nil &&
				m.tryFastGrantLocked(tx, h, r.Res, r.Mode, r.Short, hash) {
				fasts++
				continue
			}
		}
		if pend == nil {
			pend = make([]pendReq, 0, len(reqs)-i)
		}
		pend = append(pend, pendReq{Req: r, hitsBefore: hits})
	}
	tx.mu.Unlock()
	m.bookFastGrants(fasts)
	if pend == nil {
		if hits > 0 {
			m.stats.cacheHits.Add(uint64(hits))
		}
		return nil
	}

	// Phase 2: sequential Lock calls for the rest. Hits are booked just
	// before the table request they precede; a trailing run of hits is
	// booked once the last pending request has completed.
	booked := 0
	for i := range pend {
		p := &pend[i]
		if p.hitsBefore > booked {
			m.stats.cacheHits.Add(uint64(p.hitsBefore - booked))
			booked = p.hitsBefore
		}
		if err := m.Lock(tx, p.Res, p.Mode, p.Short); err != nil {
			return err
		}
	}
	if hits > booked {
		m.stats.cacheHits.Add(uint64(hits - booked))
	}
	return nil
}

// bookFastGrants books n CAS fast-path grants exactly as n sequential Lock
// calls would have.
func (m *Manager) bookFastGrants(n int) {
	if n == 0 {
		return
	}
	m.stats.requests.Add(uint64(n))
	m.stats.immediateGrants.Add(uint64(n))
	m.stats.fastGrants.Add(uint64(n))
}
