package lock

import (
	"fmt"
	"sort"
)

// Req is one lock request inside a batch (see Manager.LockBatch).
type Req struct {
	Res   Resource
	Mode  Mode
	Short bool
}

// pendReq is a batch request the cache could not answer, carrying its
// original batch position and precomputed home partition.
type pendReq struct {
	Req
	orig   int
	stripe int
}

// LockBatch acquires reqs for tx with the same observable semantics as
// issuing them through Lock in order, but with far fewer synchronization
// round-trips on the uncontended path:
//
//  1. Requests already covered by the per-transaction lock cache are
//     answered under a single transaction-mutex critical section, without
//     touching the shared table.
//  2. The remaining requests' partitions are sorted and their mutexes taken
//     together (ascending index — the table-wide lock-order discipline), and
//     every request that is immediately grantable is granted under that one
//     combined critical section. Because all partitions involved are held at
//     once, the grants are atomic: other transactions observe either none or
//     all of them, which is a legal linearization of the sequential order.
//  3. At the first request that would block, the partition mutexes are
//     dropped and the remaining requests fall back to sequential blocking
//     Lock calls in their original order, preserving the root-first wait
//     discipline the protocols rely on.
//
// The first error aborts the batch; earlier grants stay (exactly as with
// sequential Lock calls — the transaction's abort releases them). The
// statistics come out the same as for the sequential calls too, with one
// caveat: a resource that appears twice in the same batch has its second
// occurrence booked as an immediate grant rather than a cache hit (the
// cache is consulted once, before any of the batch is granted). Protocol
// batches never repeat a resource, so in practice the counters agree.
func (m *Manager) LockBatch(tx *Tx, reqs []Req) error {
	if len(reqs) == 0 {
		return nil
	}
	// Phase 1: per-transaction cache. Hits are not booked yet: if a later
	// request fails, sequential semantics say the requests after it were
	// never issued, so only hits that precede the failure may show up in
	// the statistics. pend is allocated lazily — a fully cached batch (the
	// protocol hot path) allocates nothing here.
	var pend []pendReq
	tx.mu.Lock()
	if tx.done {
		tx.mu.Unlock()
		m.stats.requests.Add(1) // the first sequential Lock would be counted
		return ErrTxDone
	}
	if tx.doomed.Load() {
		tx.mu.Unlock()
		m.stats.requests.Add(1)
		return ErrDeadlockVictim
	}
	for i, r := range reqs {
		if r.Mode == ModeNone {
			tx.mu.Unlock()
			if n := i - len(pend); n > 0 { // every hit so far precedes i
				m.stats.cacheHits.Add(uint64(n))
			}
			return fmt.Errorf("lock: cannot request ModeNone on %q", r.Res)
		}
		if held, ok := tx.cache[r.Res]; ok && m.table.Convert(held, r.Mode) == held {
			continue
		}
		if pend == nil {
			pend = make([]pendReq, 0, len(reqs)-i)
		}
		pend = append(pend, pendReq{Req: r, orig: i, stripe: int(fnv1a(string(r.Res)) & m.mask)})
	}
	tx.mu.Unlock()

	// Phase 2: combined immediate-grant pass under all involved partitions.
	granted := 0
	if len(pend) > 0 {
		granted = m.grantImmediate(tx, pend)
	}

	// Phase 3: sequential blocking fallback for whatever remains. Hits are
	// booked just before the table request that follows them, so the
	// counters advance exactly as a sequential caller's would — including
	// while a fallback request is still blocked. Hits and table requests
	// partition the batch positions in order, so the number of hits before
	// pend[k] is pend[k].orig - k.
	counted := 0
	for k := granted; k < len(pend); k++ {
		if t := pend[k].orig - k; t > counted {
			m.stats.cacheHits.Add(uint64(t - counted))
			counted = t
		}
		r := pend[k]
		if err := m.Lock(tx, r.Res, r.Mode, r.Short); err != nil {
			return err
		}
	}
	if t := len(reqs) - len(pend); t > counted {
		m.stats.cacheHits.Add(uint64(t - counted))
	}
	return nil
}

// grantImmediate locks every partition the pending requests hash to (in
// ascending index order), then applies requests in their original order for
// as long as each is immediately grantable. It returns how many were
// granted; the first non-grantable request stops the pass. Batches are
// small, so partitions are deduplicated by linear scan — no map allocation
// on the hot path.
func (m *Manager) grantImmediate(tx *Tx, pend []pendReq) int {
	// Common case: everything pending hashes to one partition (often a
	// single leaf request after the cache answered the ancestor path).
	single := true
	for _, p := range pend[1:] {
		if p.stripe != pend[0].stripe {
			single = false
			break
		}
	}
	if single {
		s := &m.stripes[pend[0].stripe]
		s.mu.Lock()
		granted := m.grantImmediateLocked(tx, pend)
		s.mu.Unlock()
		return granted
	}

	var idxBuf [8]int
	idx := idxBuf[:0]
	for _, p := range pend {
		dup := false
		for _, j := range idx {
			if j == p.stripe {
				dup = true
				break
			}
		}
		if !dup {
			idx = append(idx, p.stripe)
		}
	}
	sort.Ints(idx)
	for _, i := range idx {
		m.stripes[i].mu.Lock()
	}
	granted := m.grantImmediateLocked(tx, pend)
	for j := len(idx) - 1; j >= 0; j-- {
		m.stripes[idx[j]].mu.Unlock()
	}
	return granted
}

// grantImmediateLocked applies the immediate-grant pass. Caller holds the
// partition mutex of every pending request.
func (m *Manager) grantImmediateLocked(tx *Tx, pend []pendReq) int {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done || tx.doomed.Load() {
		return 0 // the fallback Lock calls surface the right error
	}
	granted := 0
	for _, p := range pend {
		s := &m.stripes[p.stripe]
		h := s.head(p.Res)
		if entry := tx.held[p.Res]; entry != nil {
			target := m.table.Convert(entry.mode, p.Mode)
			if !p.Short {
				entry.short = false
			}
			if target == entry.mode {
				tx.noteHeldLocked(p.Res, entry)
				m.stats.requests.Add(1)
				m.stats.immediateGrants.Add(1)
				granted++
				continue
			}
			if !m.compatibleWithOthers(h, tx.id, target) {
				m.maybeDropHeadLocked(s, p.Res, h)
				break
			}
			entry.mode = target
			tx.noteHeldLocked(p.Res, entry)
			m.stats.requests.Add(1)
			m.stats.conversions.Add(1)
			m.stats.immediateGrants.Add(1)
			granted++
			continue
		}
		if len(h.queue) == 0 && m.compatibleWithOthers(h, tx.id, p.Mode) {
			e := &holderEntry{tx: tx, mode: p.Mode, short: p.Short}
			h.granted[tx.id] = e
			tx.held[p.Res] = e
			tx.noteHeldLocked(p.Res, e)
			m.stats.requests.Add(1)
			m.stats.immediateGrants.Add(1)
			granted++
			continue
		}
		m.maybeDropHeadLocked(s, p.Res, h)
		break
	}
	return granted
}
