package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TxID identifies a transaction within one Manager.
type TxID uint64

// Resource is an opaque lockable name. Protocols derive resource names from
// SPLIDs (node locks) and from SPLID+edge-kind pairs (edge locks).
type Resource string

// ErrDeadlockVictim is returned from Lock when the transaction was chosen as
// the victim of a deadlock cycle. The caller must abort the transaction.
var ErrDeadlockVictim = errors.New("lock: transaction aborted as deadlock victim")

// ErrLockTimeout is returned when a lock request waited longer than the
// manager's timeout. The caller should abort the transaction.
var ErrLockTimeout = errors.New("lock: request timed out")

// ErrTxDone is returned when locking on behalf of a finished transaction.
var ErrTxDone = errors.New("lock: transaction already finished")

// DefaultTimeout bounds lock waits when Options.Timeout is zero.
const DefaultTimeout = 10 * time.Second

// Tx is the lock manager's view of a transaction: the set of locks it holds
// and its wait state. Create with Manager.Begin; a Tx must be used by one
// goroutine at a time (the usual one-goroutine-per-transaction discipline).
type Tx struct {
	id  TxID
	mgr *Manager

	// All fields below are guarded by mgr.mu.
	held    map[Resource]*holderEntry
	waiting *request
	doomed  bool
	done    bool
}

// ID returns the transaction's identifier (monotonic: larger = younger).
func (tx *Tx) ID() TxID { return tx.id }

type holderEntry struct {
	tx    *Tx
	mode  Mode
	short bool // true while only short-duration requests produced this lock
}

type request struct {
	tx         *Tx
	res        Resource
	target     Mode // effective mode after grant (converted for conversions)
	short      bool
	conversion bool
	result     chan error
}

type lockHead struct {
	granted map[TxID]*holderEntry
	queue   []*request
}

// Stats are monotonic counters describing lock-manager activity. They feed
// the paper's performance metrics (lock requests, blocks, deadlocks).
type Stats struct {
	Requests            uint64
	ImmediateGrants     uint64
	Waits               uint64
	Conversions         uint64
	Deadlocks           uint64
	ConversionDeadlocks uint64
	SubtreeDeadlocks    uint64
	Timeouts            uint64
}

// DeadlockInfo describes one detected cycle; it is passed to the OnDeadlock
// observer (the XTCdeadlockDetector role from Section 4.2).
type DeadlockInfo struct {
	// Victim is the aborted transaction.
	Victim TxID
	// Members are the transactions on the cycle, starting with the requester
	// whose wait closed it.
	Members []TxID
	// Resources are the resources each member was waiting for, aligned with
	// Members (running transactions contribute an empty resource).
	Resources []Resource
	// Conversion reports whether any member was waiting on a lock
	// conversion — the paper's "frequent" deadlock class, as opposed to
	// rare cycles between separate subtrees.
	Conversion bool
}

// Options configure a Manager.
type Options struct {
	// Timeout bounds each lock wait; DefaultTimeout when zero.
	Timeout time.Duration
	// OnDeadlock, when non-nil, observes every detected deadlock. It runs
	// with internal locks held and must return quickly without calling back
	// into the Manager.
	OnDeadlock func(DeadlockInfo)
}

// Manager is the lock manager: one lock table shared by all transactions of
// an engine instance.
type Manager struct {
	table   ModeTable
	timeout time.Duration
	onDL    func(DeadlockInfo)

	mu     sync.Mutex
	locks  map[Resource]*lockHead
	nextTx uint64

	requests            atomic.Uint64
	immediateGrants     atomic.Uint64
	waits               atomic.Uint64
	conversions         atomic.Uint64
	deadlocks           atomic.Uint64
	conversionDeadlocks atomic.Uint64
	subtreeDeadlocks    atomic.Uint64
	timeouts            atomic.Uint64
}

// NewManager builds a Manager for one protocol's mode table.
func NewManager(table ModeTable, opts Options) *Manager {
	to := opts.Timeout
	if to <= 0 {
		to = DefaultTimeout
	}
	return &Manager{
		table:   table,
		timeout: to,
		onDL:    opts.OnDeadlock,
		locks:   make(map[Resource]*lockHead),
	}
}

// Table returns the manager's mode table.
func (m *Manager) Table() ModeTable { return m.table }

// Begin registers a new transaction.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTx++
	return &Tx{id: TxID(m.nextTx), mgr: m, held: make(map[Resource]*holderEntry)}
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Requests:            m.requests.Load(),
		ImmediateGrants:     m.immediateGrants.Load(),
		Waits:               m.waits.Load(),
		Conversions:         m.conversions.Load(),
		Deadlocks:           m.deadlocks.Load(),
		ConversionDeadlocks: m.conversionDeadlocks.Load(),
		SubtreeDeadlocks:    m.subtreeDeadlocks.Load(),
		Timeouts:            m.timeouts.Load(),
	}
}

func (m *Manager) head(res Resource) *lockHead {
	h := m.locks[res]
	if h == nil {
		h = &lockHead{granted: make(map[TxID]*holderEntry)}
		m.locks[res] = h
	}
	return h
}

// compatibleWithOthers reports whether mode can coexist with every granted
// entry on h other than tx's own.
func (m *Manager) compatibleWithOthers(h *lockHead, self TxID, mode Mode) bool {
	for id, e := range h.granted {
		if id == self {
			continue
		}
		if !m.table.Compatible(e.mode, mode) {
			return false
		}
	}
	return true
}

// Lock acquires res in mode for tx, blocking until granted, deadlock abort,
// or timeout. short marks the request as releasable at operation end
// (committed-read isolation); a long request on the same resource upgrades
// the entry to long duration.
func (m *Manager) Lock(tx *Tx, res Resource, mode Mode, short bool) error {
	if mode == ModeNone {
		return fmt.Errorf("lock: cannot request ModeNone on %q", res)
	}
	m.requests.Add(1)
	m.mu.Lock()
	if tx.done {
		m.mu.Unlock()
		return ErrTxDone
	}
	if tx.doomed {
		m.mu.Unlock()
		return ErrDeadlockVictim
	}
	h := m.head(res)
	var req *request
	if entry := tx.held[res]; entry != nil {
		target := m.table.Convert(entry.mode, mode)
		if !short {
			entry.short = false
		}
		if target == entry.mode {
			m.mu.Unlock()
			m.immediateGrants.Add(1)
			return nil
		}
		m.conversions.Add(1)
		if m.compatibleWithOthers(h, tx.id, target) {
			entry.mode = target
			m.mu.Unlock()
			m.immediateGrants.Add(1)
			return nil
		}
		req = &request{tx: tx, res: res, target: target, short: short, conversion: true, result: make(chan error, 1)}
		// Conversions overtake non-conversion waiters but queue FIFO among
		// themselves.
		pos := 0
		for pos < len(h.queue) && h.queue[pos].conversion {
			pos++
		}
		h.queue = append(h.queue, nil)
		copy(h.queue[pos+1:], h.queue[pos:])
		h.queue[pos] = req
	} else {
		if len(h.queue) == 0 && m.compatibleWithOthers(h, tx.id, mode) {
			e := &holderEntry{tx: tx, mode: mode, short: short}
			h.granted[tx.id] = e
			tx.held[res] = e
			m.mu.Unlock()
			m.immediateGrants.Add(1)
			return nil
		}
		req = &request{tx: tx, res: res, target: mode, short: short, result: make(chan error, 1)}
		h.queue = append(h.queue, req)
	}

	tx.waiting = req
	m.waits.Add(1)
	victimIsMe := m.resolveDeadlocksLocked(tx)
	m.mu.Unlock()
	if victimIsMe {
		// resolveDeadlocksLocked already delivered the error and removed the
		// request; drain the channel for cleanliness.
		return <-req.result
	}

	timer := time.NewTimer(m.timeout)
	defer timer.Stop()
	select {
	case err := <-req.result:
		return err
	case <-timer.C:
		m.mu.Lock()
		select {
		case err := <-req.result:
			// Grant raced with the timeout; honor the grant.
			m.mu.Unlock()
			return err
		default:
		}
		m.removeRequestLocked(req)
		tx.waiting = nil
		m.mu.Unlock()
		m.timeouts.Add(1)
		return ErrLockTimeout
	}
}

// removeRequestLocked drops req from its queue (if still present).
func (m *Manager) removeRequestLocked(req *request) {
	h := m.locks[req.res]
	if h == nil {
		return
	}
	for i, r := range h.queue {
		if r == req {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			break
		}
	}
	// Removing a waiter may unblock those behind it.
	m.sweepLocked(h)
}

// sweepLocked grants queued requests from the front for as long as they are
// compatible, preserving FIFO fairness (the first non-grantable waiter
// blocks everything behind it).
func (m *Manager) sweepLocked(h *lockHead) {
	for len(h.queue) > 0 {
		req := h.queue[0]
		if req.tx.doomed || req.tx.done {
			h.queue = h.queue[1:]
			req.tx.waiting = nil
			req.result <- ErrDeadlockVictim
			continue
		}
		if req.conversion {
			entry := h.granted[req.tx.id]
			if entry == nil {
				// The holder aborted between enqueue and sweep; treat as a
				// fresh request.
				req.conversion = false
				continue
			}
			if !m.compatibleWithOthers(h, req.tx.id, req.target) {
				return
			}
			entry.mode = req.target
			if !req.short {
				entry.short = false
			}
		} else {
			if !m.compatibleWithOthers(h, req.tx.id, req.target) {
				return
			}
			e := &holderEntry{tx: req.tx, mode: req.target, short: req.short}
			h.granted[req.tx.id] = e
			req.tx.held[req.res] = e
		}
		h.queue = h.queue[1:]
		req.tx.waiting = nil
		req.result <- nil
	}
}

// ReleaseAll releases every lock tx holds and marks it finished. It is the
// commit/abort release for isolation level repeatable read.
func (m *Manager) ReleaseAll(tx *Tx) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx.done = true
	if tx.waiting != nil {
		m.removeRequestLocked(tx.waiting)
		tx.waiting = nil
	}
	for res := range tx.held {
		h := m.locks[res]
		delete(h.granted, tx.id)
		delete(tx.held, res)
		m.sweepLocked(h)
		m.maybeDropHeadLocked(res, h)
	}
}

// ReleaseShort releases the locks tx acquired only with short duration —
// the end-of-operation release for isolation levels uncommitted and
// committed read.
func (m *Manager) ReleaseShort(tx *Tx) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for res, e := range tx.held {
		if !e.short {
			continue
		}
		h := m.locks[res]
		delete(h.granted, tx.id)
		delete(tx.held, res)
		m.sweepLocked(h)
		m.maybeDropHeadLocked(res, h)
	}
}

// maybeDropHeadLocked garbage-collects empty lock heads so the table does
// not grow with every node ever touched.
func (m *Manager) maybeDropHeadLocked(res Resource, h *lockHead) {
	if len(h.granted) == 0 && len(h.queue) == 0 {
		delete(m.locks, res)
	}
}

// HeldMode returns the mode tx holds on res (ModeNone if none) — a test and
// debugging aid.
func (m *Manager) HeldMode(tx *Tx, res Resource) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := tx.held[res]; e != nil {
		return e.mode
	}
	return ModeNone
}

// HeldCount returns how many locks tx currently holds.
func (m *Manager) HeldCount(tx *Tx) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(tx.held)
}

// QueueLength returns the number of waiters on res (test aid).
func (m *Manager) QueueLength(res Resource) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.locks[res]; h != nil {
		return len(h.queue)
	}
	return 0
}
