package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// TxID identifies a transaction within one Manager.
type TxID uint64

// Resource is an opaque lockable name. Protocols derive resource names from
// SPLIDs (node locks) and from SPLID+edge-kind pairs (edge locks).
type Resource string

// ErrDeadlockVictim is returned from Lock when the transaction was chosen as
// the victim of a deadlock cycle. The caller must abort the transaction.
var ErrDeadlockVictim = errors.New("lock: transaction aborted as deadlock victim")

// ErrLockTimeout is returned when a lock request waited longer than the
// manager's timeout. The caller should abort the transaction.
var ErrLockTimeout = errors.New("lock: request timed out")

// ErrTxDone is returned when locking on behalf of a finished transaction.
var ErrTxDone = errors.New("lock: transaction already finished")

// ErrCanceled is returned when a lock wait was abandoned because the
// transaction's context (Tx.SetContext) was canceled or hit its deadline —
// a disconnected session's pending request must stop waiting immediately
// instead of burning the manager timeout while holding its queue slot. The
// caller must abort the transaction; the error is not retryable.
var ErrCanceled = errors.New("lock: request canceled")

// DefaultTimeout bounds lock waits when Options.Timeout is zero.
const DefaultTimeout = 10 * time.Second

// DefaultStripes is the default number of lock-table partitions. Power of
// two so the hash reduces with a mask.
const DefaultStripes = 64

// Tx is the lock manager's view of a transaction: the set of locks it holds
// and its wait state. Create with Manager.Begin; a Tx must be used by one
// goroutine at a time (the usual one-goroutine-per-transaction discipline).
type Tx struct {
	id  TxID
	mgr *Manager

	// mu guards held, waiting, and done. It is always acquired after the
	// partition mutex (stripe.mu before Tx.mu, never the reverse), because
	// sweeps on any partition must update the winner's held set.
	mu      sync.Mutex
	held    map[Resource]*holderEntry
	waiting *request
	done    bool

	// doomed flips when the deadlock detector picks this transaction as a
	// victim. Atomic so the owner's cache fast path can observe it without
	// taking any mutex.
	doomed atomic.Bool

	// cache maps resources to the long-duration mode this transaction holds
	// on them — the per-transaction lock cache, guarded by mu. Invariant:
	// cache[res] == m implies tx.held[res] exists, is long-duration, and
	// has mode m (long entries never weaken and only the owner converts
	// them, so the cached mode cannot go stale). A cache hit costs one
	// uncontended Tx mutex instead of a shared partition mutex.
	cache map[Resource]Mode

	// ctx, when non-nil, bounds every lock wait of this transaction: a
	// cancellation (session disconnect, per-request deadline) makes a
	// blocked Lock return ErrCanceled immediately. Guarded by mu; set by
	// the owner goroutine before issuing requests.
	ctx context.Context
}

// SetContext attaches a context to the transaction's subsequent lock waits.
// Cancellation makes a blocked Lock return ErrCanceled right away instead of
// waiting out the manager timeout — the hook servers use to tear down a
// disconnected session's pending requests. A nil ctx detaches.
func (tx *Tx) SetContext(ctx context.Context) {
	tx.mu.Lock()
	tx.ctx = ctx
	tx.mu.Unlock()
}

// ID returns the transaction's identifier (monotonic: larger = younger).
func (tx *Tx) ID() TxID { return tx.id }

// InvalidateCache drops the per-transaction lock cache. The transaction
// layer owns the cache lifecycle and calls this on abort and on partial
// (operation-end) release; releases through this manager also clear it
// defensively.
func (tx *Tx) InvalidateCache() {
	tx.mu.Lock()
	clear(tx.cache)
	tx.mu.Unlock()
}

// noteHeldLocked records a long-duration grant in the cache. Caller holds
// tx.mu (and the entry's partition mutex, which guards e's fields).
func (tx *Tx) noteHeldLocked(res Resource, e *holderEntry) {
	if e.short {
		delete(tx.cache, res)
	} else {
		tx.cache[res] = e.mode
	}
}

// noteGrant records a grant delivered through a wait (the sweeper stamped
// the resulting mode into the request before completing it).
func (tx *Tx) noteGrant(res Resource, mode Mode, short bool) {
	tx.mu.Lock()
	if short {
		delete(tx.cache, res)
	} else {
		tx.cache[res] = mode
	}
	tx.mu.Unlock()
}

type holderEntry struct {
	tx    *Tx
	mode  Mode // guarded by the partition mutex of the entry's resource
	short bool // true while only short-duration requests produced this lock
}

type request struct {
	tx         *Tx
	res        Resource
	target     Mode // effective mode after grant (converted for conversions)
	short      bool
	conversion bool
	seq        uint64 // global block order; the detector scans newest-first
	result     chan error

	// grantedMode/grantedShort are stamped under the partition mutex before
	// result delivers nil; the owner reads them after receiving (the channel
	// provides the happens-before edge) to refresh its lock cache.
	grantedMode  Mode
	grantedShort bool
}

type lockHead struct {
	granted map[TxID]*holderEntry
	queue   []*request
}

// DeadlockInfo describes one detected cycle; it is passed to the OnDeadlock
// observer (the XTCdeadlockDetector role from Section 4.2).
type DeadlockInfo struct {
	// Victim is the aborted transaction.
	Victim TxID
	// Members are the transactions on the cycle, starting with the waiter
	// whose wait closed it.
	Members []TxID
	// Resources are the resources each member was waiting for, aligned with
	// Members (running transactions contribute an empty resource).
	Resources []Resource
	// Conversion reports whether any member was waiting on a lock
	// conversion — the paper's "frequent" deadlock class, as opposed to
	// rare cycles between separate subtrees.
	Conversion bool
}

// Options configure a Manager.
type Options struct {
	// Timeout bounds each lock wait; DefaultTimeout when zero.
	Timeout time.Duration
	// Stripes is the number of lock-table partitions, rounded up to a power
	// of two; DefaultStripes when zero or negative.
	Stripes int
	// OnDeadlock, when non-nil, observes every detected deadlock. It runs
	// on the detector goroutine with every partition mutex held and must
	// return quickly without calling back into the Manager.
	OnDeadlock func(DeadlockInfo)
	// Metrics, when non-nil, receives the manager's instruments: the
	// lock.* counters and the acquire/wait/conversion-wait/detector-pass
	// latency histograms. A nil registry disables latency recording
	// entirely (no clock reads on the locking path).
	Metrics *metrics.Registry
}

// stripe is one lock-table partition: its own mutex, granted groups, and
// wait queues for the resources that hash here.
type stripe struct {
	mu    sync.Mutex
	locks map[Resource]*lockHead

	// waits counts requests that blocked on this partition — the
	// per-partition contention metric the benchmark harness reports.
	waits atomic.Uint64

	_ [32]byte // keep adjacent stripes off one cache line
}

func (s *stripe) head(res Resource) *lockHead {
	h := s.locks[res]
	if h == nil {
		h = &lockHead{granted: make(map[TxID]*holderEntry)}
		s.locks[res] = h
	}
	return h
}

// Manager is the lock manager: one lock table shared by all transactions of
// an engine instance. The table is striped into partitions hashed by
// Resource; each partition has its own mutex, so uncontended traffic on
// different resources proceeds in parallel. Deadlock detection runs on a
// dedicated goroutine over a cross-partition snapshot (see deadlock.go).
type Manager struct {
	table   ModeTable
	timeout time.Duration
	onDL    func(DeadlockInfo)

	stripes []stripe
	mask    uint64

	nextTx  atomic.Uint64
	nextSeq atomic.Uint64

	stats counters

	// Latency histograms (nil without Options.Metrics — recording and the
	// clock reads feeding it are skipped entirely then).
	hAcquire  *metrics.Histogram // lock.acquire: every slow-path acquisition
	hWait     *metrics.Histogram // lock.wait: blocked time until grant/abort/timeout
	hConvWait *metrics.Histogram // lock.conversion_wait: blocked conversions only
	hDetector *metrics.Histogram // lock.detector_pass: one detection pass

	detKick   chan struct{}
	detStop   chan struct{}
	detDone   chan struct{}
	closeOnce sync.Once
}

// NewManager builds a Manager for one protocol's mode table and starts its
// deadlock-detector goroutine. Call Close when the manager is no longer
// needed to stop the detector.
func NewManager(table ModeTable, opts Options) *Manager {
	m := newManager(table, opts)
	go m.detectorLoop()
	return m
}

// newManager builds the manager without starting the detector goroutine —
// shared by NewManager and by tests that need a pending kick to survive
// until they start the loop themselves.
func newManager(table ModeTable, opts Options) *Manager {
	to := opts.Timeout
	if to <= 0 {
		to = DefaultTimeout
	}
	n := opts.Stripes
	if n <= 0 {
		n = DefaultStripes
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	m := &Manager{
		table:   table,
		timeout: to,
		onDL:    opts.OnDeadlock,
		stripes: make([]stripe, pow),
		mask:    uint64(pow - 1),
		detKick: make(chan struct{}, 1),
		detStop: make(chan struct{}),
		detDone: make(chan struct{}),
	}
	for i := range m.stripes {
		m.stripes[i].locks = make(map[Resource]*lockHead)
	}
	if reg := opts.Metrics; reg != nil {
		m.hAcquire = reg.Histogram("lock.acquire")
		m.hWait = reg.Histogram("lock.wait")
		m.hConvWait = reg.Histogram("lock.conversion_wait")
		m.hDetector = reg.Histogram("lock.detector_pass")
		m.registerCounters(reg)
	}
	return m
}

// Close stops the deadlock-detector goroutine and waits for it to finish
// its final drain pass, so a kick that raced with Close is never dropped
// (any cycle formed before Close is resolved before Close returns). Safe to
// call more than once. Transactions must not use the manager after Close.
func (m *Manager) Close() {
	m.closeOnce.Do(func() { close(m.detStop) })
	<-m.detDone
}

// Table returns the manager's mode table.
func (m *Manager) Table() ModeTable { return m.table }

// NumPartitions returns the number of lock-table partitions.
func (m *Manager) NumPartitions() int { return len(m.stripes) }

// PartitionOf returns the partition index res hashes to (stable across
// runs: FNV-1a). Diagnostics and tests only.
func (m *Manager) PartitionOf(res Resource) int {
	return int(fnv1a(string(res)) & m.mask)
}

// PartitionWaits returns the per-partition count of requests that blocked —
// the contention profile of the lock table.
func (m *Manager) PartitionWaits() []uint64 {
	out := make([]uint64, len(m.stripes))
	for i := range m.stripes {
		out[i] = m.stripes[i].waits.Load()
	}
	return out
}

func fnv1a(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func (m *Manager) stripeFor(res Resource) *stripe {
	return &m.stripes[fnv1a(string(res))&m.mask]
}

// Begin registers a new transaction.
func (m *Manager) Begin() *Tx {
	return &Tx{
		id:    TxID(m.nextTx.Add(1)),
		mgr:   m,
		held:  make(map[Resource]*holderEntry),
		cache: make(map[Resource]Mode),
	}
}

// compatibleWithOthers reports whether mode can coexist with every granted
// entry on h other than tx's own. Caller holds the partition mutex.
func (m *Manager) compatibleWithOthers(h *lockHead, self TxID, mode Mode) bool {
	for id, e := range h.granted {
		if id == self {
			continue
		}
		if !m.table.Compatible(e.mode, mode) {
			return false
		}
	}
	return true
}

// Lock acquires res in mode for tx, blocking until granted, deadlock abort,
// or timeout. short marks the request as releasable at operation end
// (committed-read isolation); a long request on the same resource upgrades
// the entry to long duration.
//
// Re-requests covered by a long-duration lock the transaction already holds
// are answered from the per-transaction cache without touching the shared
// table — the hot path for protocols that re-acquire the same ancestor
// intention locks on every navigation step.
func (m *Manager) Lock(tx *Tx, res Resource, mode Mode, short bool) error {
	if mode == ModeNone {
		return fmt.Errorf("lock: cannot request ModeNone on %q", res)
	}
	tx.mu.Lock()
	done := tx.done
	held, cached := tx.cache[res]
	tx.mu.Unlock()
	if done {
		m.stats.requests.Add(1)
		return ErrTxDone
	}
	if tx.doomed.Load() {
		m.stats.requests.Add(1)
		return ErrDeadlockVictim
	}
	if cached && m.table.Convert(held, mode) == held {
		// Counted as a request and an immediate grant too, by derivation in
		// the stats snapshot.
		m.stats.cacheHits.Add(1)
		return nil
	}
	m.stats.requests.Add(1)
	return m.lockSlow(tx, res, mode, short)
}

func (m *Manager) lockSlow(tx *Tx, res Resource, mode Mode, short bool) error {
	t0 := m.hAcquire.Start()
	s := m.stripeFor(res)
	s.mu.Lock()
	tx.mu.Lock()
	if tx.done {
		tx.mu.Unlock()
		s.mu.Unlock()
		return ErrTxDone
	}
	if tx.doomed.Load() {
		tx.mu.Unlock()
		s.mu.Unlock()
		return ErrDeadlockVictim
	}
	ctx := tx.ctx
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			tx.mu.Unlock()
			s.mu.Unlock()
			m.stats.canceled.Add(1)
			return fmt.Errorf("%w: %w", ErrCanceled, cerr)
		}
	}
	h := s.head(res)
	var req *request
	if entry := tx.held[res]; entry != nil {
		target := m.table.Convert(entry.mode, mode)
		if !short {
			entry.short = false
		}
		if target == entry.mode {
			tx.noteHeldLocked(res, entry)
			tx.mu.Unlock()
			s.mu.Unlock()
			m.stats.immediateGrants.Add(1)
			m.hAcquire.Since(t0)
			return nil
		}
		m.stats.conversions.Add(1)
		if m.compatibleWithOthers(h, tx.id, target) {
			entry.mode = target
			tx.noteHeldLocked(res, entry)
			tx.mu.Unlock()
			s.mu.Unlock()
			m.stats.immediateGrants.Add(1)
			m.hAcquire.Since(t0)
			return nil
		}
		req = &request{tx: tx, res: res, target: target, short: short,
			conversion: true, seq: m.nextSeq.Add(1), result: make(chan error, 1)}
		// Conversions overtake non-conversion waiters but queue FIFO among
		// themselves.
		pos := 0
		for pos < len(h.queue) && h.queue[pos].conversion {
			pos++
		}
		h.queue = append(h.queue, nil)
		copy(h.queue[pos+1:], h.queue[pos:])
		h.queue[pos] = req
	} else {
		if len(h.queue) == 0 && m.compatibleWithOthers(h, tx.id, mode) {
			e := &holderEntry{tx: tx, mode: mode, short: short}
			h.granted[tx.id] = e
			tx.held[res] = e
			tx.noteHeldLocked(res, e)
			tx.mu.Unlock()
			s.mu.Unlock()
			m.stats.immediateGrants.Add(1)
			m.hAcquire.Since(t0)
			return nil
		}
		req = &request{tx: tx, res: res, target: mode, short: short,
			seq: m.nextSeq.Add(1), result: make(chan error, 1)}
		h.queue = append(h.queue, req)
	}

	tx.waiting = req
	tx.mu.Unlock()
	s.waits.Add(1)
	s.mu.Unlock()
	m.stats.waits.Add(1)
	m.kickDetector()

	// Blocked-time accounting: every exit from the select records the wait
	// into lock.wait (conversions also into lock.conversion_wait) and the
	// whole slow-path acquisition into lock.acquire — tail latency is the
	// signal the protocol contest is about, so timeouts and deadlock aborts
	// are recorded too, not just grants.
	tw := m.hWait.Start()
	record := func() {
		m.hWait.Since(tw)
		if req.conversion {
			m.hConvWait.Since(tw)
		}
		m.hAcquire.Since(t0)
	}

	// abandon withdraws the still-pending request after a timeout or a
	// context cancellation; a grant that raced the decision is honored (and
	// the failure counter is only bumped when the failure stands).
	abandon := func(failure error, counter *atomic.Uint64) error {
		s.mu.Lock()
		select {
		case err := <-req.result:
			// Grant raced with the timeout/cancellation; honor the grant.
			s.mu.Unlock()
			record()
			if err == nil {
				tx.noteGrant(res, req.grantedMode, req.grantedShort)
			}
			return err
		default:
		}
		m.removeRequestLocked(s, req)
		tx.mu.Lock()
		if tx.waiting == req {
			tx.waiting = nil
		}
		tx.mu.Unlock()
		s.mu.Unlock()
		counter.Add(1)
		record()
		return failure
	}

	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done() // nil channel (never ready) without a context
	}
	timer := time.NewTimer(m.timeout)
	defer timer.Stop()
	select {
	case err := <-req.result:
		record()
		if err == nil {
			tx.noteGrant(res, req.grantedMode, req.grantedShort)
		}
		return err
	case <-ctxDone:
		return abandon(fmt.Errorf("%w: %w", ErrCanceled, ctx.Err()), &m.stats.canceled)
	case <-timer.C:
		return abandon(ErrLockTimeout, &m.stats.timeouts)
	}
}

// removeRequestLocked drops req from its queue (if still present). Caller
// holds the partition mutex and no Tx mutex.
func (m *Manager) removeRequestLocked(s *stripe, req *request) {
	h := s.locks[req.res]
	if h == nil {
		return
	}
	for i, r := range h.queue {
		if r == req {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			break
		}
	}
	// Removing a waiter may unblock those behind it.
	m.sweepLocked(s, h)
}

// sweepLocked grants queued requests from the front for as long as they are
// compatible, preserving FIFO fairness (the first non-grantable waiter
// blocks everything behind it). Caller holds the partition mutex and no Tx
// mutex.
func (m *Manager) sweepLocked(s *stripe, h *lockHead) {
	for len(h.queue) > 0 {
		req := h.queue[0]
		rtx := req.tx
		rtx.mu.Lock()
		if rtx.done || rtx.doomed.Load() {
			h.queue = h.queue[1:]
			if rtx.waiting == req {
				rtx.waiting = nil
			}
			rtx.mu.Unlock()
			req.result <- ErrDeadlockVictim
			continue
		}
		if req.conversion {
			entry := h.granted[rtx.id]
			if entry == nil {
				// The holder aborted between enqueue and sweep; treat as a
				// fresh request.
				req.conversion = false
				rtx.mu.Unlock()
				continue
			}
			if !m.compatibleWithOthers(h, rtx.id, req.target) {
				rtx.mu.Unlock()
				return
			}
			entry.mode = req.target
			if !req.short {
				entry.short = false
			}
			req.grantedMode, req.grantedShort = entry.mode, entry.short
		} else {
			if !m.compatibleWithOthers(h, rtx.id, req.target) {
				rtx.mu.Unlock()
				return
			}
			e := &holderEntry{tx: rtx, mode: req.target, short: req.short}
			h.granted[rtx.id] = e
			rtx.held[req.res] = e
			req.grantedMode, req.grantedShort = e.mode, e.short
		}
		h.queue = h.queue[1:]
		if rtx.waiting == req {
			rtx.waiting = nil
		}
		rtx.mu.Unlock()
		req.result <- nil
	}
}

// ReleaseAll releases every lock tx holds and marks it finished. It is the
// commit/abort release for isolation level repeatable read.
func (m *Manager) ReleaseAll(tx *Tx) {
	tx.mu.Lock()
	tx.done = true
	w := tx.waiting
	tx.mu.Unlock()
	if w != nil {
		// Defensive: with the one-goroutine-per-transaction discipline the
		// owner cannot be blocked in Lock while calling ReleaseAll, but a
		// stale pending request must not outlive the transaction.
		s := m.stripeFor(w.res)
		s.mu.Lock()
		tx.mu.Lock()
		stillWaiting := tx.waiting == w
		tx.waiting = nil
		tx.mu.Unlock()
		if stillWaiting {
			// Not yet granted (sweeps clear waiting before completing a
			// request, and we hold the partition mutex), so completing it
			// here cannot race with a grant.
			m.removeRequestLocked(s, w)
			w.result <- ErrTxDone
		}
		s.mu.Unlock()
	}
	// No sweep can grant to tx anymore (done is set), so the held snapshot
	// is complete.
	tx.mu.Lock()
	resources := make([]Resource, 0, len(tx.held))
	for res := range tx.held {
		resources = append(resources, res)
	}
	tx.mu.Unlock()
	// One partition mutex at a time, so no cross-partition lock order to
	// respect here (and no allocation to group by partition).
	for _, res := range resources {
		s := m.stripeFor(res)
		s.mu.Lock()
		tx.mu.Lock()
		e := tx.held[res]
		delete(tx.held, res)
		tx.mu.Unlock()
		if e == nil {
			s.mu.Unlock()
			continue
		}
		h := s.locks[res]
		delete(h.granted, tx.id)
		m.sweepLocked(s, h)
		m.maybeDropHeadLocked(s, res, h)
		s.mu.Unlock()
	}
	tx.InvalidateCache()
}

// ReleaseShort releases the locks tx acquired only with short duration —
// the end-of-operation release for isolation levels uncommitted and
// committed read. Short entries are never cached, so the lock cache stays
// valid across this partial release (the transaction layer may still choose
// to invalidate it).
func (m *Manager) ReleaseShort(tx *Tx) {
	tx.mu.Lock()
	resources := make([]Resource, 0, len(tx.held))
	for res := range tx.held {
		resources = append(resources, res)
	}
	tx.mu.Unlock()
	for _, res := range resources {
		s := m.stripeFor(res)
		s.mu.Lock()
		tx.mu.Lock()
		e := tx.held[res]
		if e == nil || !e.short { // e.short guarded by s.mu, held here
			tx.mu.Unlock()
			s.mu.Unlock()
			continue
		}
		delete(tx.held, res)
		tx.mu.Unlock()
		h := s.locks[res]
		delete(h.granted, tx.id)
		m.sweepLocked(s, h)
		m.maybeDropHeadLocked(s, res, h)
		s.mu.Unlock()
	}
}

// maybeDropHeadLocked garbage-collects empty lock heads so the table does
// not grow with every node ever touched.
func (m *Manager) maybeDropHeadLocked(s *stripe, res Resource, h *lockHead) {
	if len(h.granted) == 0 && len(h.queue) == 0 {
		delete(s.locks, res)
	}
}

// HeldMode returns the mode tx holds on res (ModeNone if none), read from
// the lock table — a test and debugging aid.
func (m *Manager) HeldMode(tx *Tx, res Resource) Mode {
	s := m.stripeFor(res)
	s.mu.Lock()
	defer s.mu.Unlock()
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if e := tx.held[res]; e != nil {
		return e.mode
	}
	return ModeNone
}

// HeldModeCached returns the mode tx holds on res, answering from the
// per-transaction cache when possible (one uncontended Tx mutex instead of
// a shared partition mutex). Protocols use it for held-mode checks on their
// locking hot path (e.g. taDOM's fan-out conversion tests).
func (m *Manager) HeldModeCached(tx *Tx, res Resource) Mode {
	tx.mu.Lock()
	mode, ok := tx.cache[res]
	tx.mu.Unlock()
	if ok {
		return mode
	}
	return m.HeldMode(tx, res)
}

// HeldCount returns how many locks tx currently holds.
func (m *Manager) HeldCount(tx *Tx) int {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return len(tx.held)
}

// Waiting reports whether tx has a blocked request (test aid).
func (m *Manager) Waiting(tx *Tx) bool {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.waiting != nil
}

// QueueLength returns the number of waiters on res (test aid).
func (m *Manager) QueueLength(res Resource) int {
	s := m.stripeFor(res)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h := s.locks[res]; h != nil {
		return len(h.queue)
	}
	return 0
}
