package lock

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// TxID identifies a transaction within one Manager.
type TxID uint64

// Resource is an opaque lockable name. Protocols derive resource names from
// SPLIDs (node locks) and from SPLID+edge-kind pairs (edge locks).
type Resource string

// ErrDeadlockVictim is returned from Lock when the transaction was chosen as
// the victim of a deadlock cycle. The caller must abort the transaction.
var ErrDeadlockVictim = errors.New("lock: transaction aborted as deadlock victim")

// ErrLockTimeout is returned when a lock request waited longer than the
// manager's timeout. The caller should abort the transaction.
var ErrLockTimeout = errors.New("lock: request timed out")

// ErrTxDone is returned when locking on behalf of a finished transaction.
var ErrTxDone = errors.New("lock: transaction already finished")

// ErrCanceled is returned when a lock wait was abandoned because the
// transaction's context (Tx.SetContext) was canceled or hit its deadline —
// a disconnected session's pending request must stop waiting immediately
// instead of burning the manager timeout while holding its queue slot. The
// caller must abort the transaction; the error is not retryable.
var ErrCanceled = errors.New("lock: request canceled")

// DefaultTimeout bounds lock waits when Options.Timeout is zero.
const DefaultTimeout = 10 * time.Second

// DefaultStripes is the default number of lock-table partitions. Power of
// two so the hash reduces with a mask.
const DefaultStripes = 64

// gcInterval is how many became-empty head observations a stripe accumulates
// before sweeping its dead heads out of the index. Empty heads are kept
// around (sealed-capable, reusable by the fast path) rather than deleted
// eagerly — deleting on every release would force every next acquisition of
// the same resource through the slow path and would churn allocations.
const gcInterval = 512

// Tx is the lock manager's view of a transaction: the set of locks it holds
// and its wait state. Create with Manager.Begin; a Tx must be used by one
// goroutine at a time (the usual one-goroutine-per-transaction discipline).
type Tx struct {
	id  TxID
	mgr *Manager

	// mu guards held, waiting, done, cache, ctx, and freeEntry. It is always
	// acquired after the partition mutex (stripe.mu before Tx.mu, never the
	// reverse), because sweeps on any partition must update the winner's
	// held set. The CAS fast path takes only this mutex — never a partition
	// mutex.
	mu      sync.Mutex
	held    map[Resource]*holderEntry
	waiting *request
	done    bool

	// doomed flips when the deadlock detector picks this transaction as a
	// victim. Atomic so the owner's cache fast path can observe it without
	// taking any mutex.
	doomed atomic.Bool

	// cacheEpoch implements the per-transaction lock cache without a second
	// map: a long-duration grant stamps its holder entry with the current
	// epoch, and a re-request covered by a held entry is a cache hit iff
	// the entry is long-duration and its stamp is current. InvalidateCache
	// bumps the epoch, staling every stamp at once. (Long entries never
	// weaken and only the owner converts them, so a current stamp cannot
	// describe a stale mode.) A cache hit costs one uncontended Tx mutex
	// and one map lookup — no shared partition state. Guarded by mu.
	cacheEpoch uint64

	// freeEntry is a one-slot holder-entry freelist: ReleaseAll parks one
	// entry here and the next acquisition reuses it without touching the
	// shared sync.Pool — the per-tx half of the zero-alloc turnover path.
	freeEntry *holderEntry

	// ctx, when non-nil, bounds every lock wait of this transaction: a
	// cancellation (session disconnect, per-request deadline) makes a
	// blocked Lock return ErrCanceled immediately. Guarded by mu; set by
	// the owner goroutine before issuing requests.
	ctx context.Context
}

// SetContext attaches a context to the transaction's subsequent lock waits.
// Cancellation makes a blocked Lock return ErrCanceled right away instead of
// waiting out the manager timeout — the hook servers use to tear down a
// disconnected session's pending requests. A nil ctx detaches.
func (tx *Tx) SetContext(ctx context.Context) {
	tx.mu.Lock()
	tx.ctx = ctx
	tx.mu.Unlock()
}

// ID returns the transaction's identifier (monotonic: larger = younger).
func (tx *Tx) ID() TxID { return tx.id }

// InvalidateCache drops the per-transaction lock cache. The transaction
// layer owns the cache lifecycle and calls this on abort and on partial
// (operation-end) release. One epoch bump stales every cached entry.
func (tx *Tx) InvalidateCache() {
	tx.mu.Lock()
	tx.cacheEpoch++
	tx.mu.Unlock()
}

// stampLocked marks a long-duration entry as cache-answerable under the
// current epoch (short entries are never cached). Caller holds tx.mu.
func (tx *Tx) stampLocked(e *holderEntry) {
	if !e.isShort() {
		e.cacheEpoch = tx.cacheEpoch
	}
}

// stampGrant is stampLocked for grants delivered through a wait: the sweep
// inserted the entry into tx.held before completing the request.
func (tx *Tx) stampGrant(res Resource) {
	tx.mu.Lock()
	if e := tx.held[res]; e != nil {
		tx.stampLocked(e)
	}
	tx.mu.Unlock()
}

// holderEntry is one granted lock. Entries are pooled (sync.Pool plus the
// per-tx freelist) and linked into the head's lock-free holder chain, so
// every field a lock-free observer may read is atomic: a stale reader that
// reaches a recycled entry sees typed, internally consistent values, and its
// seqlock recheck discards the read.
type holderEntry struct {
	txp   atomic.Pointer[Tx]
	state atomic.Uint32               // mode | short flag; see pack/loadState
	next  atomic.Pointer[holderEntry] // holder-chain link

	// hash is the resource's fnv1a hash, cached at grant time so release
	// needn't rehash. Owner-written before the entry is published; lock-free
	// observers never read it.
	hash uint64

	// cacheEpoch is the lock-cache stamp (see Tx.cacheEpoch). Guarded by
	// the owner's Tx mutex; lock-free observers never read it.
	cacheEpoch uint64
}

const entryShortFlag = 1 << 8

func (e *holderEntry) loadState() (Mode, bool) {
	s := e.state.Load()
	return Mode(s & 0xFF), s&entryShortFlag != 0
}

func (e *holderEntry) mode() Mode { return Mode(e.state.Load() & 0xFF) }

func (e *holderEntry) isShort() bool { return e.state.Load()&entryShortFlag != 0 }

func (e *holderEntry) setState(m Mode, short bool) {
	v := uint32(m)
	if short {
		v |= entryShortFlag
	}
	e.state.Store(v)
}

// request is one queued lock request. Requests are pooled; as with
// holderEntry, the fields lock-free observers may read (txp, meta) are
// atomic. res/short are touched only by the owner and under the partition
// mutex.
type request struct {
	txp  atomic.Pointer[Tx]
	meta atomic.Uint64 // seq<<16 | target<<8 | flags
	res  Resource
	shrt bool
	// result is buffered (capacity 1) and reused across pool cycles; every
	// dequeue sends exactly one value and the owner receives it before the
	// request is repooled.
	result chan error
}

const reqConvFlag = 1 << 0

func (r *request) target() Mode     { return Mode(r.meta.Load() >> 8 & 0xFF) }
func (r *request) seq() uint64      { return r.meta.Load() >> 16 }
func (r *request) conversion() bool { return r.meta.Load()&reqConvFlag != 0 }

// clearConversion demotes the request to a fresh (non-conversion) request —
// the holder aborted between enqueue and sweep. Caller holds the partition
// mutex (sole writer; the atomic store keeps lock-free readers consistent).
func (r *request) clearConversion() { r.meta.Store(r.meta.Load() &^ reqConvFlag) }

// lockHead is one resource's lock state. The packed word (see word.go) is
// the fast path's entire view; the holder chain is the authoritative granted
// group; the queue is a copy-on-write slice so lock-free observers can read
// a loaded snapshot without racing slow-path mutations.
type lockHead struct {
	// word is the packed granted-group summary the CAS fast path grants
	// against. While sealed, the slow path owns the head and the fast path
	// stands off.
	word atomic.Uint64

	// inflight counts fast-path grants between their word-CAS and the
	// completion of their holder-chain push. The slow path seals the word
	// and then waits for inflight to drain, after which the chain is
	// authoritative and no further fast mutation can occur.
	inflight atomic.Int32

	// holders is the granted group as a singly linked chain. Fast grants
	// push at the chain head with CAS; unlinking happens only under the
	// partition mutex with the word sealed and inflight drained.
	holders atomic.Pointer[holderEntry]

	// waitq is the FIFO wait queue (conversions queued ahead, see
	// enqueueLocked). The slice is copy-on-write under the partition mutex:
	// mutations build a fresh array, so a slice loaded by an observer is
	// never written again. nil when empty.
	waitq atomic.Pointer[[]*request]

	// dead marks a head that was garbage-collected out of the index; its
	// word stays sealed forever so a stale fast-path lookup diverts to the
	// slow path (which resolves the resource afresh under the mutex). Heads
	// are never pooled — reusing one for a different resource would let a
	// stale reader grant against the wrong resource. Guarded by the
	// partition mutex.
	dead bool
}

func (h *lockHead) queueLocked() []*request {
	if p := h.waitq.Load(); p != nil {
		return *p
	}
	return nil
}

func (h *lockHead) setQueueLocked(q []*request) {
	if len(q) == 0 {
		h.waitq.Store(nil)
		return
	}
	h.waitq.Store(&q)
}

// enqueueLocked appends req (conversions overtake non-conversion waiters but
// queue FIFO among themselves). Caller holds the partition mutex.
func (h *lockHead) enqueueLocked(req *request, conversion bool) {
	q := h.queueLocked()
	nq := make([]*request, 0, len(q)+1)
	if conversion {
		pos := 0
		for pos < len(q) && q[pos].conversion() {
			pos++
		}
		nq = append(nq, q[:pos]...)
		nq = append(nq, req)
		nq = append(nq, q[pos:]...)
	} else {
		nq = append(nq, q...)
		nq = append(nq, req)
	}
	h.setQueueLocked(nq)
}

// pushHolder links e at the chain head. Lock-free: used by the fast path
// concurrently with other fast pushes (never concurrently with slow-path
// unlinks, which run sealed-and-drained).
func pushHolder(h *lockHead, e *holderEntry) {
	for {
		old := h.holders.Load()
		e.next.Store(old)
		if h.holders.CompareAndSwap(old, e) {
			return
		}
	}
}

// unlinkHolder removes e from the chain. Caller holds the partition mutex
// with the head sealed and drained (no concurrent pushes).
func unlinkHolder(h *lockHead, e *holderEntry) {
	if h.holders.Load() == e {
		h.holders.Store(e.next.Load())
		return
	}
	for p := h.holders.Load(); p != nil; p = p.next.Load() {
		if p.next.Load() == e {
			p.next.Store(e.next.Load())
			return
		}
	}
}

// sealHeadLocked transfers ownership of the head to the slow path: set the
// seal bit (stopping new fast grants) and wait out in-flight ones. After it
// returns, the holder chain is authoritative and only the caller mutates the
// head until it republishes the word. Caller holds the partition mutex.
func sealHeadLocked(h *lockHead) {
	w := h.word.Load()
	for w&wordSealed == 0 {
		if h.word.CompareAndSwap(w, w|wordSealed) {
			break
		}
		w = h.word.Load()
	}
	// A successful fast-path CAS always happens between an inflight
	// increment and decrement, so once inflight reads zero every fast grant
	// that beat the seal has finished its chain push.
	for h.inflight.Load() != 0 {
		runtime.Gosched()
	}
}

// DeadlockInfo describes one detected cycle; it is passed to the OnDeadlock
// observer (the XTCdeadlockDetector role from Section 4.2).
type DeadlockInfo struct {
	// Victim is the aborted transaction.
	Victim TxID
	// Members are the transactions on the cycle, starting with the waiter
	// whose wait closed it.
	Members []TxID
	// Resources are the resources each member was waiting for, aligned with
	// Members (running transactions contribute an empty resource).
	Resources []Resource
	// Conversion reports whether any member was waiting on a lock
	// conversion — the paper's "frequent" deadlock class, as opposed to
	// rare cycles between separate subtrees.
	Conversion bool
}

// Options configure a Manager.
type Options struct {
	// Timeout bounds each lock wait; DefaultTimeout when zero.
	Timeout time.Duration
	// Stripes is the number of lock-table partitions, rounded up to a power
	// of two; DefaultStripes when zero or negative.
	Stripes int
	// OnDeadlock, when non-nil, observes every detected deadlock. It runs
	// on the detector goroutine with every partition mutex held and must
	// return quickly without calling back into the Manager.
	OnDeadlock func(DeadlockInfo)
	// Metrics, when non-nil, receives the manager's instruments: the
	// lock.* counters and the acquire/wait/conversion-wait/detector-pass
	// latency histograms. A nil registry disables latency recording
	// entirely (no clock reads on the locking path).
	Metrics *metrics.Registry
}

// stripe is one lock-table partition: its own mutex, a lock-free head index,
// and a seqlock generation counter so observers can take stable reads
// without blocking anyone.
type stripe struct {
	mu sync.Mutex

	// seq is the stripe's seqlock: odd while a mutating critical section is
	// open (lock/unlock below), even when quiescent. Observers read the
	// stripe's atomics between two equal even loads; on failure they retry
	// and eventually fall back to mu. Fast-path grants do not bump seq —
	// they only add a holder-chain entry, which an observer either sees
	// complete or not at all (the entry is fully initialized before its
	// push), so they cannot tear a stable read.
	seq atomic.Uint64

	// index maps resources to heads; reads are lock-free, mutations happen
	// under mu.
	index headIndex

	// waits counts requests that blocked on this partition — the
	// per-partition contention metric the benchmark harness reports.
	waits atomic.Uint64

	// emptySeen counts heads observed empty at release time; every
	// gcInterval observations the stripe sweeps dead heads. Atomic because
	// the mutex-free release path increments it too.
	emptySeen atomic.Int64

	_ [24]byte // keep adjacent stripes off one cache line
}

// lock/unlock wrap mu with the seqlock bumps. Every mutating critical
// section must use these; read-only sections may take mu directly.
func (s *stripe) lock() {
	s.mu.Lock()
	s.seq.Add(1)
}

func (s *stripe) unlock() {
	s.seq.Add(1)
	s.mu.Unlock()
}

// headLocked resolves res to its head, creating (and publishing to the
// index) a sealed head if absent. Caller holds the stripe mutex.
func (s *stripe) headLocked(res Resource, hash uint64) *lockHead {
	if h := s.index.lookup(res, hash); h != nil {
		return h
	}
	h := &lockHead{}
	h.word.Store(wordSealed) // the open critical section owns it until publish
	s.index.insertLocked(res, hash, h)
	return h
}

// Manager is the lock manager: one lock table shared by all transactions of
// an engine instance. The table is striped into partitions hashed by
// Resource. An uncontended, compatible request is granted by a single CAS on
// the resource's packed granted-group word without touching any partition
// mutex; conflicts, conversions, and queue-non-empty resources fall back to
// the mutex+queue slow path, which keeps the FIFO fairness and deadlock
// semantics unchanged. Deadlock detection runs on a dedicated goroutine
// (see deadlock.go).
type Manager struct {
	table   ModeTable
	timeout time.Duration
	onDL    func(DeadlockInfo)

	// ft is the packed-word view of table; nil when the table has too many
	// modes for the word, which disables the fast path (every head stays
	// sealed).
	ft *fastTable

	stripes []stripe
	mask    uint64

	entryPool sync.Pool // *holderEntry
	reqPool   sync.Pool // *request

	nextTx  atomic.Uint64
	nextSeq atomic.Uint64

	stats counters

	// Latency histograms (nil without Options.Metrics — recording and the
	// clock reads feeding it are skipped entirely then).
	hAcquire  *metrics.Histogram // lock.acquire: every slow-path acquisition
	hWait     *metrics.Histogram // lock.wait: blocked time until grant/abort/timeout
	hConvWait *metrics.Histogram // lock.conversion_wait: blocked conversions only
	hDetector *metrics.Histogram // lock.detector_pass: one detection pass

	detKick   chan struct{}
	detStop   chan struct{}
	detDone   chan struct{}
	closeOnce sync.Once
}

// NewManager builds a Manager for one protocol's mode table and starts its
// deadlock-detector goroutine. Call Close when the manager is no longer
// needed to stop the detector.
func NewManager(table ModeTable, opts Options) *Manager {
	m := newManager(table, opts)
	go m.detectorLoop()
	return m
}

// newManager builds the manager without starting the detector goroutine —
// shared by NewManager and by tests that need a pending kick to survive
// until they start the loop themselves.
func newManager(table ModeTable, opts Options) *Manager {
	to := opts.Timeout
	if to <= 0 {
		to = DefaultTimeout
	}
	n := opts.Stripes
	if n <= 0 {
		n = DefaultStripes
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	m := &Manager{
		table:   table,
		timeout: to,
		onDL:    opts.OnDeadlock,
		ft:      newFastTable(table),
		stripes: make([]stripe, pow),
		mask:    uint64(pow - 1),
		detKick: make(chan struct{}, 1),
		detStop: make(chan struct{}),
		detDone: make(chan struct{}),
	}
	m.entryPool.New = func() any { return new(holderEntry) }
	m.reqPool.New = func() any { return &request{result: make(chan error, 1)} }
	for i := range m.stripes {
		m.stripes[i].index.init()
	}
	if reg := opts.Metrics; reg != nil {
		m.hAcquire = reg.Histogram("lock.acquire")
		m.hWait = reg.Histogram("lock.wait")
		m.hConvWait = reg.Histogram("lock.conversion_wait")
		m.hDetector = reg.Histogram("lock.detector_pass")
		m.registerCounters(reg)
	}
	return m
}

// Close stops the deadlock-detector goroutine and waits for it to finish
// its final drain pass, so a kick that raced with Close is never dropped
// (any cycle formed before Close is resolved before Close returns). Safe to
// call more than once. Transactions must not use the manager after Close.
func (m *Manager) Close() {
	m.closeOnce.Do(func() { close(m.detStop) })
	<-m.detDone
}

// Table returns the manager's mode table.
func (m *Manager) Table() ModeTable { return m.table }

// NumPartitions returns the number of lock-table partitions.
func (m *Manager) NumPartitions() int { return len(m.stripes) }

// PartitionOf returns the partition index res hashes to (stable across
// runs: FNV-1a). Diagnostics and tests only.
func (m *Manager) PartitionOf(res Resource) int {
	return int(fnv1a(string(res)) & m.mask)
}

// PartitionWaits returns the per-partition count of requests that blocked —
// the contention profile of the lock table.
func (m *Manager) PartitionWaits() []uint64 {
	out := make([]uint64, len(m.stripes))
	for i := range m.stripes {
		out[i] = m.stripes[i].waits.Load()
	}
	return out
}

func fnv1a(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func (m *Manager) stripeFor(res Resource) *stripe {
	return &m.stripes[fnv1a(string(res))&m.mask]
}

// headOf resolves res to its head (nil if absent). Caller holds the stripe
// mutex (or all of them).
func (m *Manager) headOf(res Resource) *lockHead {
	hash := fnv1a(string(res))
	return m.stripes[hash&m.mask].index.lookup(res, hash)
}

// Begin registers a new transaction.
func (m *Manager) Begin() *Tx {
	return &Tx{
		id:   TxID(m.nextTx.Add(1)),
		mgr:  m,
		held: make(map[Resource]*holderEntry, 32),
	}
}

// takeEntryLocked pops a holder entry from the per-tx freelist or the shared
// pool. Caller holds tx.mu.
func (m *Manager) takeEntryLocked(tx *Tx) *holderEntry {
	if e := tx.freeEntry; e != nil {
		tx.freeEntry = nil
		return e
	}
	return m.entryPool.Get().(*holderEntry)
}

// putEntryLocked recycles an unlinked entry. Caller holds tx.mu (tx may be
// nil to bypass the freelist).
func (m *Manager) putEntryLocked(tx *Tx, e *holderEntry) {
	e.txp.Store(nil)
	e.next.Store(nil)
	if tx != nil && tx.freeEntry == nil {
		tx.freeEntry = e
		return
	}
	m.entryPool.Put(e)
}

// takeRequest builds a pooled request for a wait.
func (m *Manager) takeRequest(tx *Tx, res Resource, target Mode, short, conv bool) *request {
	r := m.reqPool.Get().(*request)
	select { // defensive: a stale value must not satisfy the next wait
	case <-r.result:
	default:
	}
	r.txp.Store(tx)
	r.res = res
	r.shrt = short
	flags := uint64(0)
	if conv {
		flags = reqConvFlag
	}
	r.meta.Store(m.nextSeq.Add(1)<<16 | uint64(target)<<8 | flags)
	return r
}

func (m *Manager) putRequest(r *request) {
	r.txp.Store(nil)
	m.reqPool.Put(r)
}

// compatibleWithOthersLocked reports whether mode can coexist with every
// granted entry on h other than self's own. Caller holds the partition
// mutex with the head sealed (the chain is authoritative).
func (m *Manager) compatibleWithOthersLocked(h *lockHead, self *Tx, mode Mode) bool {
	for e := h.holders.Load(); e != nil; e = e.next.Load() {
		t := e.txp.Load()
		if t == nil || t == self {
			continue
		}
		if !m.table.Compatible(e.mode(), mode) {
			return false
		}
	}
	return true
}

// Lock acquires res in mode for tx, blocking until granted, deadlock abort,
// or timeout. short marks the request as releasable at operation end
// (committed-read isolation); a long request on the same resource upgrades
// the entry to long duration.
//
// Re-requests covered by a long-duration lock the transaction already holds
// are answered from the per-transaction cache (an epoch-stamped held entry)
// without touching the shared table. A first acquisition whose resource
// head is unsealed and whose mode is compatible with the packed
// granted-group word is granted by CAS — no partition mutex, no allocation
// (pooled entry). Everything else (conflict, conversion, queued waiters,
// unknown resource) takes the slow path, which has the same semantics as
// before the fast path existed.
//
// Like a cache hit, a fast grant does not consult tx's context: the
// already-canceled-context-fails-upfront contract applies to requests that
// would reach the slow path (and any request that could block does).
func (m *Manager) Lock(tx *Tx, res Resource, mode Mode, short bool) error {
	if mode == ModeNone {
		return fmt.Errorf("lock: cannot request ModeNone on %q", res)
	}
	tx.mu.Lock()
	if tx.done {
		tx.mu.Unlock()
		m.stats.requests.Add(1)
		return ErrTxDone
	}
	if tx.doomed.Load() {
		tx.mu.Unlock()
		m.stats.requests.Add(1)
		return ErrDeadlockVictim
	}
	if e := tx.held[res]; e != nil {
		hm, hshort := e.loadState()
		if hm == mode || m.table.Convert(hm, mode) == hm {
			if !hshort && e.cacheEpoch == tx.cacheEpoch {
				tx.mu.Unlock()
				// Counted as a request and an immediate grant too, by
				// derivation in the stats snapshot.
				m.stats.cacheHits.Add(1)
				return nil
			}
			// Covered but not cache-answerable (short-held, or the cache
			// was invalidated): a table re-request. The granted mode does
			// not change, so the duration upgrade and the restamp are
			// owner-local — no partition state is involved, exactly as the
			// slow path would conclude after taking the partition mutex.
			if tx.ctx != nil {
				if cerr := tx.ctx.Err(); cerr != nil {
					tx.mu.Unlock()
					m.stats.requests.Add(1)
					m.stats.canceled.Add(1)
					return fmt.Errorf("%w: %w", ErrCanceled, cerr)
				}
			}
			if !short && hshort {
				e.setState(hm, false)
			}
			tx.stampLocked(e)
			tx.mu.Unlock()
			m.stats.requests.Add(1)
			m.stats.immediateGrants.Add(1)
			return nil
		}
		tx.mu.Unlock()
		m.stats.requests.Add(1)
		return m.lockSlow(tx, res, mode, short, fnv1a(string(res)))
	}
	hash := fnv1a(string(res))
	if m.ft != nil {
		if h := m.stripes[hash&m.mask].index.lookup(res, hash); h != nil &&
			m.tryFastGrantLocked(tx, h, res, mode, short, hash) {
			tx.mu.Unlock()
			m.stats.requests.Add(1)
			m.stats.immediateGrants.Add(1)
			m.stats.fastGrants.Add(1)
			return nil
		}
	}
	tx.mu.Unlock()
	m.stats.requests.Add(1)
	return m.lockSlow(tx, res, mode, short, hash)
}

// tryFastGrantLocked attempts the CAS grant: admission is a single
// compare-and-swap on the packed word, then the pooled entry is pushed onto
// the lock-free holder chain. Caller holds tx.mu (only) and has verified tx
// holds nothing on res. Returns false to divert to the slow path.
func (m *Manager) tryFastGrantLocked(tx *Tx, h *lockHead, res Resource, mode Mode, short bool, hash uint64) bool {
	ft := m.ft
	if int(mode) >= len(ft.incompat) {
		return false // out-of-range mode: let the slow path reject it
	}
	incompat := ft.incompat[mode]
	w := h.word.Load()
	if w&wordSealed != 0 || w&incompat != 0 {
		return false
	}
	e := m.takeEntryLocked(tx)
	e.txp.Store(tx)
	e.setState(mode, short)
	e.hash = hash
	bit := ft.bit[mode]
	h.inflight.Add(1)
	for spin := 0; ; spin++ {
		// The epoch bumps on every fast grant too — not just slow-path
		// publishes — so a same-mode grant (whose bit is already set and
		// would otherwise leave the word's value unchanged) is visible to
		// the fast release's CAS (see tryFastRelease).
		if h.word.CompareAndSwap(w, nextWord(w&wordModeMask|bit, w, false)) {
			break
		}
		w = h.word.Load()
		if spin >= 3 || w&wordSealed != 0 || w&incompat != 0 {
			h.inflight.Add(-1)
			m.putEntryLocked(tx, e)
			return false
		}
	}
	pushHolder(h, e)
	h.inflight.Add(-1)
	tx.held[res] = e
	tx.stampLocked(e)
	return true
}

func (m *Manager) lockSlow(tx *Tx, res Resource, mode Mode, short bool, hash uint64) error {
	t0 := m.hAcquire.Start()
	s := &m.stripes[hash&m.mask]
	s.lock()
	tx.mu.Lock()
	if tx.done {
		tx.mu.Unlock()
		s.unlock()
		return ErrTxDone
	}
	if tx.doomed.Load() {
		tx.mu.Unlock()
		s.unlock()
		return ErrDeadlockVictim
	}
	ctx := tx.ctx
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			tx.mu.Unlock()
			s.unlock()
			m.stats.canceled.Add(1)
			return fmt.Errorf("%w: %w", ErrCanceled, cerr)
		}
	}
	h := s.headLocked(res, hash)
	sealHeadLocked(h)
	var req *request
	if entry := tx.held[res]; entry != nil {
		target := m.table.Convert(entry.mode(), mode)
		if !short {
			entry.setState(entry.mode(), false)
		}
		if target == entry.mode() {
			tx.stampLocked(entry)
			tx.mu.Unlock()
			m.finishHeadLocked(s, h)
			s.unlock()
			m.stats.immediateGrants.Add(1)
			m.hAcquire.Since(t0)
			return nil
		}
		m.stats.conversions.Add(1)
		if m.compatibleWithOthersLocked(h, tx, target) {
			entry.setState(target, entry.isShort())
			tx.stampLocked(entry)
			tx.mu.Unlock()
			m.finishHeadLocked(s, h)
			s.unlock()
			m.stats.immediateGrants.Add(1)
			m.hAcquire.Since(t0)
			return nil
		}
		req = m.takeRequest(tx, res, target, short, true)
		h.enqueueLocked(req, true)
	} else {
		if h.waitq.Load() == nil && m.compatibleWithOthersLocked(h, tx, mode) {
			e := m.takeEntryLocked(tx)
			e.txp.Store(tx)
			e.setState(mode, short)
			e.hash = hash
			pushHolder(h, e)
			tx.held[res] = e
			tx.stampLocked(e)
			tx.mu.Unlock()
			m.finishHeadLocked(s, h)
			s.unlock()
			m.stats.immediateGrants.Add(1)
			m.hAcquire.Since(t0)
			return nil
		}
		req = m.takeRequest(tx, res, mode, short, false)
		h.enqueueLocked(req, false)
	}

	tx.waiting = req
	tx.mu.Unlock()
	s.waits.Add(1)
	m.finishHeadLocked(s, h)
	s.unlock()
	m.stats.waits.Add(1)
	m.kickDetector()

	// Blocked-time accounting: every exit from the select records the wait
	// into lock.wait (conversions also into lock.conversion_wait) and the
	// whole slow-path acquisition into lock.acquire — tail latency is the
	// signal the protocol contest is about, so timeouts and deadlock aborts
	// are recorded too, not just grants.
	tw := m.hWait.Start()
	record := func() {
		m.hWait.Since(tw)
		if req.conversion() {
			m.hConvWait.Since(tw)
		}
		m.hAcquire.Since(t0)
	}

	// abandon withdraws the still-pending request after a timeout or a
	// context cancellation; a grant that raced the decision is honored (and
	// the failure counter is only bumped when the failure stands).
	abandon := func(failure error, counter *atomic.Uint64) error {
		s.lock()
		select {
		case err := <-req.result:
			// Grant raced with the timeout/cancellation; honor the grant.
			s.unlock()
			record()
			if err == nil {
				tx.stampGrant(res)
			}
			m.putRequest(req)
			return err
		default:
		}
		sealHeadLocked(h)
		m.removeRequestLocked(s, h, req)
		tx.mu.Lock()
		if tx.waiting == req {
			tx.waiting = nil
		}
		tx.mu.Unlock()
		m.finishHeadLocked(s, h)
		s.unlock()
		counter.Add(1)
		record()
		m.putRequest(req)
		return failure
	}

	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done() // nil channel (never ready) without a context
	}
	timer := time.NewTimer(m.timeout)
	defer timer.Stop()
	select {
	case err := <-req.result:
		record()
		if err == nil {
			tx.stampGrant(res)
		}
		m.putRequest(req)
		return err
	case <-ctxDone:
		return abandon(fmt.Errorf("%w: %w", ErrCanceled, ctx.Err()), &m.stats.canceled)
	case <-timer.C:
		return abandon(ErrLockTimeout, &m.stats.timeouts)
	}
}

// finishHeadLocked republishes the packed word at the end of a slow-path
// critical section: recompute the holder bitset from the chain, bump the
// epoch, and seal iff the fast path must stay off (waiters present, fast
// path disabled, or head dead). Cleared entries a fast release could not
// unlink (see tryFastRelease) are pruned and repooled here — the head is
// sealed and drained, so the chain is exclusively ours. Empty heads feed
// the stripe's lazy GC. Caller holds the partition mutex.
func (m *Manager) finishHeadLocked(s *stripe, h *lockHead) {
	m.pruneChainLocked(h)
	var bits uint64
	empty := true
	for e := h.holders.Load(); e != nil; e = e.next.Load() {
		empty = false
		if m.ft != nil {
			bits |= m.ft.bit[e.mode()]
		}
	}
	sealed := m.ft == nil || h.dead
	if q := h.queueLocked(); len(q) > 0 {
		sealed = true
		empty = false
	}
	h.word.Store(nextWord(bits, h.word.Load(), sealed))
	if empty && !h.dead {
		if s.emptySeen.Add(1) >= gcInterval {
			m.gcStripeLocked(s)
		}
	}
}

// pruneChainLocked unlinks and repools the cleared entries a fast release
// could not unlink itself. Caller holds the partition mutex with the head
// sealed and drained.
func (m *Manager) pruneChainLocked(h *lockHead) {
	for e := h.holders.Load(); e != nil; {
		next := e.next.Load()
		if e.txp.Load() == nil {
			unlinkHolder(h, e)
			e.next.Store(nil)
			m.entryPool.Put(e)
		}
		e = next
	}
}

// gcStripeLocked sweeps the stripe's empty heads out of the index so the
// table does not grow with every resource ever touched. Dead heads stay
// sealed forever; a fast path holding a stale pointer diverts to the slow
// path, which resolves the resource afresh. Caller holds the stripe mutex.
func (m *Manager) gcStripeLocked(s *stripe) {
	s.emptySeen.Store(0)
	b := s.index.buckets.Load()
	for i := range b.slots {
		prev := &b.slots[i]
		for sl := prev.Load(); sl != nil; sl = prev.Load() {
			h := sl.head
			sealHeadLocked(h)
			m.pruneChainLocked(h)
			if h.holders.Load() == nil && h.waitq.Load() == nil {
				h.dead = true // word stays sealed
				prev.Store(sl.next.Load())
				s.index.count--
				continue
			}
			m.finishHeadLocked(s, h)
			prev = &sl.next
		}
	}
}

// removeRequestLocked drops req from h's queue (if still present), then
// sweeps — removing a waiter may unblock those behind it. Caller holds the
// partition mutex with the head sealed.
func (m *Manager) removeRequestLocked(s *stripe, h *lockHead, req *request) {
	q := h.queueLocked()
	for i, r := range q {
		if r == req {
			nq := make([]*request, 0, len(q)-1)
			nq = append(nq, q[:i]...)
			nq = append(nq, q[i+1:]...)
			h.setQueueLocked(nq)
			break
		}
	}
	m.sweepLocked(s, h)
}

// sweepLocked grants queued requests from the front for as long as they are
// compatible, preserving FIFO fairness (the first non-grantable waiter
// blocks everything behind it). Caller holds the partition mutex with the
// head sealed, and no Tx mutex.
func (m *Manager) sweepLocked(s *stripe, h *lockHead) {
	q := h.queueLocked()
	granted := 0
	for granted < len(q) {
		req := q[granted]
		rtx := req.txp.Load()
		rtx.mu.Lock()
		if rtx.done || rtx.doomed.Load() {
			granted++
			if rtx.waiting == req {
				rtx.waiting = nil
			}
			rtx.mu.Unlock()
			req.result <- ErrDeadlockVictim
			continue
		}
		target := req.target()
		if req.conversion() {
			entry := rtx.held[req.res]
			if entry == nil {
				// The holder aborted between enqueue and sweep; treat as a
				// fresh request.
				req.clearConversion()
				rtx.mu.Unlock()
				continue
			}
			if !m.compatibleWithOthersLocked(h, rtx, target) {
				rtx.mu.Unlock()
				break
			}
			entry.setState(target, entry.isShort() && req.shrt)
		} else {
			if !m.compatibleWithOthersLocked(h, rtx, target) {
				rtx.mu.Unlock()
				break
			}
			e := m.takeEntryLocked(rtx)
			e.txp.Store(rtx)
			e.setState(target, req.shrt)
			e.hash = fnv1a(string(req.res))
			pushHolder(h, e)
			rtx.held[req.res] = e
		}
		granted++
		if rtx.waiting == req {
			rtx.waiting = nil
		}
		rtx.mu.Unlock()
		req.result <- nil
	}
	if granted > 0 {
		// Copy, don't subslice: a loaded queue slice must never share a
		// backing array a later enqueue could write into.
		h.setQueueLocked(append([]*request(nil), q[granted:]...))
	}
}

// ReleaseAll releases every lock tx holds and marks it finished. It is the
// commit/abort release for isolation level repeatable read.
func (m *Manager) ReleaseAll(tx *Tx) {
	tx.mu.Lock()
	tx.done = true
	w := tx.waiting
	tx.mu.Unlock()
	if w != nil {
		// Defensive: with the one-goroutine-per-transaction discipline the
		// owner cannot be blocked in Lock while calling ReleaseAll, but a
		// stale pending request must not outlive the transaction.
		hash := fnv1a(string(w.res))
		s := &m.stripes[hash&m.mask]
		s.lock()
		tx.mu.Lock()
		stillWaiting := tx.waiting == w
		tx.waiting = nil
		tx.mu.Unlock()
		if stillWaiting {
			// Not yet granted (sweeps clear waiting before completing a
			// request, and we hold the partition mutex), so completing it
			// here cannot race with a grant.
			if h := s.index.lookup(w.res, hash); h != nil {
				sealHeadLocked(h)
				m.removeRequestLocked(s, h, w)
				m.finishHeadLocked(s, h)
			}
			w.result <- ErrTxDone
		}
		s.unlock()
	}
	// No sweep can grant to tx anymore (done is set), so the held snapshot
	// is complete.
	tx.mu.Lock()
	pairs := make([]heldPair, 0, len(tx.held))
	for res, e := range tx.held {
		pairs = append(pairs, heldPair{res, e})
	}
	tx.mu.Unlock()
	// Sole-holder entries release with one CAS; the rest take their
	// partition mutex one at a time, so there is no cross-partition lock
	// order to respect here.
	for i := range pairs {
		p := &pairs[i]
		ok, pooled := m.tryFastRelease(p.res, p.e)
		if !ok {
			m.releaseOne(p.res, p.e)
		} else if !pooled {
			p.e = nil // still chained; the next sealed section repools it
		}
	}
	tx.mu.Lock()
	clear(tx.held)
	for _, p := range pairs {
		if p.e != nil {
			m.putEntryLocked(tx, p.e)
		}
	}
	tx.mu.Unlock()
}

type heldPair struct {
	res Resource
	e   *holderEntry
}

// tryFastRelease attempts the mutex-free release of a sole-holder entry: if
// e is the only granted entry on its head (its mode bit is the whole word
// and it is alone on the chain) with no waiters (a non-empty queue keeps
// the head sealed), the release is one CAS emptying the word. The word's
// epoch — bumped by every publish AND every fast grant — makes any
// interleaved grant fail the CAS, including a same-mode grant whose bit
// would not change. Returns (released, pooled): on released==false nothing
// happened and the caller must take the slow path; pooled==false means the
// release succeeded but a racing grant re-chained ahead of the (already
// cleared) entry before it could be unlinked, so the entry must NOT be
// reused until a sealed section prunes it (finishHeadLocked repools it).
func (m *Manager) tryFastRelease(res Resource, e *holderEntry) (bool, bool) {
	if m.ft == nil {
		return false, false
	}
	mode := e.mode()
	if int(mode) >= len(m.ft.bit) {
		return false, false
	}
	bit := m.ft.bit[mode]
	s := &m.stripes[e.hash&m.mask]
	h := s.index.lookup(res, e.hash)
	if h == nil {
		return false, false
	}
	h.inflight.Add(1)
	w := h.word.Load()
	if w&wordSealed != 0 || w&wordModeMask != bit ||
		h.holders.Load() != e || e.next.Load() != nil {
		h.inflight.Add(-1)
		return false, false
	}
	if !h.word.CompareAndSwap(w, nextWord(0, w, false)) {
		h.inflight.Add(-1)
		return false, false
	}
	e.txp.Store(nil) // invisible to every reader from here on
	pooled := h.holders.CompareAndSwap(e, nil)
	h.inflight.Add(-1)
	if s.emptySeen.Add(1) >= gcInterval {
		s.lock()
		m.gcStripeLocked(s)
		s.unlock()
	}
	return true, pooled
}

// releaseOne unlinks one granted entry and sweeps its head. The entry is
// left for the caller to recycle (it is unreachable once unlinked). The
// resource hash was cached in the entry at grant time.
func (m *Manager) releaseOne(res Resource, e *holderEntry) {
	hash := e.hash
	s := &m.stripes[hash&m.mask]
	s.lock()
	h := s.index.lookup(res, hash)
	if h == nil {
		s.unlock()
		return
	}
	sealHeadLocked(h)
	unlinkHolder(h, e)
	e.txp.Store(nil)
	m.sweepLocked(s, h)
	m.finishHeadLocked(s, h)
	s.unlock()
}

// ReleaseShort releases the locks tx acquired only with short duration —
// the end-of-operation release for isolation levels uncommitted and
// committed read. Short entries are never cache-stamped, so the lock cache
// stays valid across this partial release (the transaction layer may still
// choose to invalidate it). Only the owner converts its entries, so reading
// the short flag under tx.mu alone is sound.
func (m *Manager) ReleaseShort(tx *Tx) {
	var pairs []heldPair
	tx.mu.Lock()
	for res, e := range tx.held {
		if e.isShort() {
			pairs = append(pairs, heldPair{res, e})
		}
	}
	for _, p := range pairs {
		delete(tx.held, p.res)
	}
	tx.mu.Unlock()
	for i := range pairs {
		p := &pairs[i]
		ok, pooled := m.tryFastRelease(p.res, p.e)
		if !ok {
			m.releaseOne(p.res, p.e)
		} else if !pooled {
			p.e = nil
		}
	}
	if len(pairs) > 0 {
		tx.mu.Lock()
		for _, p := range pairs {
			if p.e != nil {
				m.putEntryLocked(tx, p.e)
			}
		}
		tx.mu.Unlock()
	}
}

// HeldMode returns the mode tx holds on res (ModeNone if none) — a test and
// debugging aid. The entry state is atomic and only the owner converts it,
// so tx.mu alone suffices.
func (m *Manager) HeldMode(tx *Tx, res Resource) Mode {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if e := tx.held[res]; e != nil {
		return e.mode()
	}
	return ModeNone
}

// HeldModeCached returns the mode tx holds on res. Protocols use it for
// held-mode checks on their locking hot path (e.g. taDOM's fan-out
// conversion tests). With the cache carried on the held entries themselves
// it is the same single-map lookup as HeldMode; the name survives as API.
func (m *Manager) HeldModeCached(tx *Tx, res Resource) Mode {
	return m.HeldMode(tx, res)
}

// HeldCount returns how many locks tx currently holds.
func (m *Manager) HeldCount(tx *Tx) int {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return len(tx.held)
}

// Waiting reports whether tx has a blocked request (test aid).
func (m *Manager) Waiting(tx *Tx) bool {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.waiting != nil
}

// QueueLength returns the number of waiters on res (test aid).
func (m *Manager) QueueLength(res Resource) int {
	hash := fnv1a(string(res))
	s := &m.stripes[hash&m.mask]
	s.mu.Lock() // read-only: no seqlock bump needed
	defer s.mu.Unlock()
	if h := s.index.lookup(res, hash); h != nil {
		return len(h.queueLocked())
	}
	return 0
}
