// Package lock implements the XTC lock manager of Section 3.3: a lock table
// keyed by opaque resource names, FIFO wait queues with priority for lock
// conversions, and a wait-for-graph deadlock detector with victim abort.
//
// The table is striped: resources hash onto partitions, each with its own
// mutex, granted groups, and wait queues, so concurrent traffic on
// different resources never serializes on a single table mutex. Each
// transaction additionally carries a private held-lock cache that answers
// re-requests covered by a long-duration lock without touching the shared
// table at all, and a batch API (LockBatch) acquires ancestor-path requests
// under one partition-ordered critical section. Deadlock detection runs on
// a dedicated goroutine over a cross-partition snapshot. See DESIGN.md,
// "Lock-table architecture".
//
// The manager is deliberately protocol-agnostic. Each of the paper's 11
// XML lock protocols supplies its own ModeTable (compatibility and
// conversion matrices); exchanging the table — together with the protocol's
// mapping of meta-lock requests to resources — exchanges the system's
// complete locking mechanism, which is exactly the paper's
// meta-synchronization idea.
package lock

// Mode is a protocol-specific lock mode. Mode values are indices into the
// protocol's compatibility and conversion matrices; ModeNone (0) means "no
// lock" and must never be granted.
type Mode uint8

// ModeNone is the absence of a lock.
const ModeNone Mode = 0

// ModeTable describes one protocol's lock modes. Implementations must be
// immutable after construction (they are shared across goroutines without
// synchronization).
type ModeTable interface {
	// Compatible reports whether a lock in mode requested can be granted to
	// one transaction while another transaction holds mode held on the same
	// resource.
	Compatible(held, requested Mode) bool
	// Convert returns the single mode that gives a transaction already
	// holding held at least the isolation of both held and requested — the
	// lock conversion matrix of Figure 4. Convert must be reflexive
	// (Convert(m, m) == m) and absorbing upward (converting never weakens).
	Convert(held, requested Mode) Mode
	// Name returns a short human-readable mode name for logs and tests.
	Name(m Mode) string
	// NumModes returns the number of modes including ModeNone; valid modes
	// are 1..NumModes-1.
	NumModes() int
}

// Table is a concrete ModeTable backed by explicit matrices. All protocol
// packages build their tables as Table literals via NewTable, which
// validates the structural invariants the paper relies on.
type Table struct {
	names  []string
	compat [][]bool
	conv   [][]Mode
}

// NewTable builds a Table from mode names (index 0 must be the no-lock
// placeholder), a compatibility matrix and a conversion matrix, both indexed
// [held][requested] over modes 1..n-1. It panics on malformed input — these
// are programmer-authored constants, so failing fast at init is right.
func NewTable(names []string, compat [][]bool, conv [][]Mode) *Table {
	n := len(names)
	if n < 2 {
		panic("lock: table needs at least one real mode")
	}
	if len(compat) != n || len(conv) != n {
		panic("lock: matrix size does not match mode count")
	}
	for i := 0; i < n; i++ {
		if len(compat[i]) != n || len(conv[i]) != n {
			panic("lock: matrix row size does not match mode count")
		}
	}
	t := &Table{names: names, compat: compat, conv: conv}
	for m := Mode(1); int(m) < n; m++ {
		if t.Convert(m, m) != m {
			panic("lock: conversion must be reflexive for " + names[m])
		}
		for r := Mode(1); int(r) < n; r++ {
			c := t.Convert(m, r)
			if c == ModeNone {
				panic("lock: conversion of " + names[m] + "+" + names[r] + " yields no mode")
			}
		}
	}
	return t
}

// Compatible implements ModeTable.
func (t *Table) Compatible(held, requested Mode) bool {
	return t.compat[held][requested]
}

// Convert implements ModeTable.
func (t *Table) Convert(held, requested Mode) Mode {
	if held == ModeNone {
		return requested
	}
	if requested == ModeNone {
		return held
	}
	return t.conv[held][requested]
}

// Name implements ModeTable.
func (t *Table) Name(m Mode) string {
	if int(m) >= len(t.names) {
		return "?"
	}
	return t.names[m]
}

// NumModes implements ModeTable.
func (t *Table) NumModes() int { return len(t.names) }
