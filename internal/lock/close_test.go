package lock

import (
	"errors"
	"testing"
	"time"
)

// TestCloseDrainsPendingKick pins the shutdown-drain contract: a deadlock
// cycle whose kick is still pending when Close runs must be resolved before
// Close returns. Before the drain fix, detectorLoop's select could pick
// detStop over the ready detKick and exit without a pass, leaving both
// waiters blocked on a formed cycle until their timeouts.
//
// The race window is made deterministic with newManager: the detector loop
// is NOT started until the cycle exists and the kick sits in the buffered
// channel, so the loop's very first select sees detStop and detKick ready
// simultaneously — the exact interleaving the old code lost.
func TestCloseDrainsPendingKick(t *testing.T) {
	for round := 0; round < 20; round++ {
		m := newManager(testTable(), Options{Timeout: time.Minute})
		t1, t2 := m.Begin(), m.Begin()
		if err := m.Lock(t1, "res-a", tX, false); err != nil {
			t.Fatal(err)
		}
		if err := m.Lock(t2, "res-b", tX, false); err != nil {
			t.Fatal(err)
		}

		type outcome struct {
			tx  *Tx
			err error
		}
		results := make(chan outcome, 2)
		go func() { results <- outcome{t1, m.Lock(t1, "res-b", tX, false)} }()
		go func() { results <- outcome{t2, m.Lock(t2, "res-a", tX, false)} }()

		// stats.waits increments after the request is enqueued, so seeing 2
		// means the cycle's last edge is published (and both enqueues kicked
		// the — not yet running — detector).
		deadline := time.Now().Add(10 * time.Second)
		for m.Stats().Waits < 2 {
			if time.Now().After(deadline) {
				t.Fatal("requests never blocked")
			}
			time.Sleep(100 * time.Microsecond)
		}

		go m.detectorLoop()
		m.Close()

		// Close has returned: the drain pass must already have broken the
		// cycle. No sleeping here — anything still blocked is the bug.
		select {
		case o := <-results:
			if !errors.Is(o.err, ErrDeadlockVictim) {
				t.Fatalf("round %d: first finished waiter got %v, want ErrDeadlockVictim", round, o.err)
			}
			m.ReleaseAll(o.tx) // victim aborts: frees its lock, unblocking the survivor
			o = <-results
			if o.err != nil {
				t.Fatalf("round %d: survivor got %v after victim released", round, o.err)
			}
			m.ReleaseAll(o.tx)
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: cycle survived Close: pending kick dropped", round)
		}
	}
}

// TestCloseIdempotent pins that Close can be called repeatedly and from
// multiple goroutines.
func TestCloseIdempotent(t *testing.T) {
	m := NewManager(testTable(), Options{})
	done := make(chan struct{}, 3)
	for i := 0; i < 3; i++ {
		go func() { m.Close(); done <- struct{}{} }()
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Close hung")
		}
	}
}
