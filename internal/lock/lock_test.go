package lock

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// A classic multi-granularity table (IS, IX, S, U, X) for exercising the
// manager independent of the XML protocols.
const (
	tIS Mode = iota + 1
	tIX
	tS
	tU
	tX
)

func testTable() *Table {
	names := []string{"-", "IS", "IX", "S", "U", "X"}
	// compat[held][requested]
	y, n := true, false
	compat := [][]bool{
		{n, n, n, n, n, n},
		{n, y, y, y, y, n}, // IS
		{n, y, y, n, n, n}, // IX
		{n, y, n, y, y, n}, // S  (U compatible with held S per Gray/Reuter)
		{n, y, n, n, n, n}, // U: once U is held, further S waits
		{n, n, n, n, n, n}, // X
	}
	mm := func(m Mode) []Mode { return []Mode{ModeNone, m, m, m, m, m} }
	_ = mm
	conv := [][]Mode{
		{ModeNone, tIS, tIX, tS, tU, tX},
		{ModeNone, tIS, tIX, tS, tU, tX}, // IS
		{ModeNone, tIX, tIX, tX, tX, tX}, // IX (no SIX mode in this small table)
		{ModeNone, tS, tX, tS, tU, tX},   // S
		{ModeNone, tU, tX, tU, tU, tX},   // U
		{ModeNone, tX, tX, tX, tX, tX},   // X
	}
	return NewTable(names, compat, conv)
}

func newMgr(t testing.TB, opts Options) *Manager {
	t.Helper()
	m := NewManager(testTable(), opts)
	t.Cleanup(m.Close)
	return m
}

func TestImmediateGrantAndSharing(t *testing.T) {
	m := newMgr(t, Options{})
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Lock(t1, "n1", tS, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(t2, "n1", tS, false); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldMode(t1, "n1"); got != tS {
		t.Errorf("t1 holds %v", got)
	}
	st := m.Stats()
	if st.ImmediateGrants != 2 || st.Waits != 0 {
		t.Errorf("stats %+v", st)
	}
	m.ReleaseAll(t1)
	m.ReleaseAll(t2)
}

func TestRepeatLockIsNoop(t *testing.T) {
	m := newMgr(t, Options{})
	t1 := m.Begin()
	for i := 0; i < 3; i++ {
		if err := m.Lock(t1, "n1", tS, false); err != nil {
			t.Fatal(err)
		}
	}
	if m.HeldCount(t1) != 1 {
		t.Errorf("held %d resources", m.HeldCount(t1))
	}
	m.ReleaseAll(t1)
}

func TestConflictBlocksUntilRelease(t *testing.T) {
	m := newMgr(t, Options{})
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Lock(t1, "n1", tX, false); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(t2, "n1", tS, false) }()
	select {
	case err := <-got:
		t.Fatalf("t2 acquired S while t1 holds X: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(t1)
	if err := <-got; err != nil {
		t.Fatalf("t2 lock after release: %v", err)
	}
	if m.HeldMode(t2, "n1") != tS {
		t.Error("t2 should hold S")
	}
	m.ReleaseAll(t2)
}

func TestConversionUpgrade(t *testing.T) {
	m := newMgr(t, Options{})
	t1 := m.Begin()
	if err := m.Lock(t1, "n1", tS, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(t1, "n1", tX, false); err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(t1, "n1") != tX {
		t.Errorf("mode after upgrade = %v", m.HeldMode(t1, "n1"))
	}
	if m.HeldCount(t1) != 1 {
		t.Error("upgrade must not duplicate entries")
	}
	m.ReleaseAll(t1)
}

func TestConversionWaitsForReaders(t *testing.T) {
	m := newMgr(t, Options{})
	t1, t2 := m.Begin(), m.Begin()
	m.Lock(t1, "n1", tS, false)
	m.Lock(t2, "n1", tS, false)
	got := make(chan error, 1)
	go func() { got <- m.Lock(t1, "n1", tX, false) }()
	select {
	case err := <-got:
		t.Fatalf("conversion granted while t2 reads: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(t2)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(t1, "n1") != tX {
		t.Error("t1 should hold X after conversion")
	}
	m.ReleaseAll(t1)
}

func TestConversionOvertakesQueue(t *testing.T) {
	m := newMgr(t, Options{})
	t1, t2, t3 := m.Begin(), m.Begin(), m.Begin()
	m.Lock(t1, "n1", tS, false)
	m.Lock(t2, "n1", tS, false)
	// t3 queues for X (blocked by both readers).
	t3got := make(chan error, 1)
	go func() { t3got <- m.Lock(t3, "n1", tX, false) }()
	waitForQueue(t, m, "n1", 1)
	// t1 requests conversion to X: goes ahead of t3 in the queue.
	t1got := make(chan error, 1)
	go func() { t1got <- m.Lock(t1, "n1", tX, false) }()
	waitForQueue(t, m, "n1", 2)
	// Release the other reader: the conversion must win.
	m.ReleaseAll(t2)
	if err := <-t1got; err != nil {
		t.Fatalf("conversion: %v", err)
	}
	select {
	case err := <-t3got:
		t.Fatalf("t3 should still wait, got %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(t1)
	if err := <-t3got; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(t3)
}

func waitForQueue(t *testing.T, m *Manager, res Resource, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for m.QueueLength(res) < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue on %s never reached %d", res, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFIFOPreventsStarvation(t *testing.T) {
	m := newMgr(t, Options{})
	t1, t2, t3 := m.Begin(), m.Begin(), m.Begin()
	m.Lock(t1, "n1", tX, false)
	order := make(chan int, 2)
	go func() {
		if m.Lock(t2, "n1", tX, false) == nil {
			order <- 2
			m.ReleaseAll(t2)
		}
	}()
	waitForQueue(t, m, "n1", 1)
	go func() {
		if m.Lock(t3, "n1", tS, false) == nil {
			order <- 3
			m.ReleaseAll(t3)
		}
	}()
	waitForQueue(t, m, "n1", 2)
	m.ReleaseAll(t1)
	if first := <-order; first != 2 {
		t.Errorf("queue jumped: %d won first", first)
	}
	<-order
}

func TestDeadlockDetection(t *testing.T) {
	var infos []DeadlockInfo
	var mu sync.Mutex
	m := newMgr(t, Options{OnDeadlock: func(i DeadlockInfo) {
		mu.Lock()
		infos = append(infos, i)
		mu.Unlock()
	}})
	t1, t2 := m.Begin(), m.Begin()
	m.Lock(t1, "a", tX, false)
	m.Lock(t2, "b", tX, false)
	// Each transaction releases its locks as soon as its request resolves —
	// a victim's abort is what unblocks the survivor.
	request := func(tx *Tx, res Resource, out chan<- error) {
		err := m.Lock(tx, res, tX, false)
		m.ReleaseAll(tx)
		out <- err
	}
	errs := make(chan error, 2)
	go request(t1, "b", errs)
	waitForQueue(t, m, "b", 1)
	go request(t2, "a", errs)

	e1, e2 := <-errs, <-errs
	victims := 0
	if errors.Is(e1, ErrDeadlockVictim) {
		victims++
	}
	if errors.Is(e2, ErrDeadlockVictim) {
		victims++
	}
	if victims != 1 {
		t.Fatalf("exactly one victim expected: %v, %v", e1, e2)
	}
	st := m.Stats()
	if st.Deadlocks != 1 {
		t.Errorf("Deadlocks = %d", st.Deadlocks)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(infos) != 1 {
		t.Fatalf("OnDeadlock calls = %d", len(infos))
	}
	// Youngest (t2) is the victim.
	if infos[0].Victim != t2.ID() {
		t.Errorf("victim = %d, want %d", infos[0].Victim, t2.ID())
	}
	if infos[0].Conversion {
		t.Error("plain crossing is not a conversion deadlock")
	}
}

func TestConversionDeadlockClassified(t *testing.T) {
	var infos []DeadlockInfo
	var mu sync.Mutex
	m := newMgr(t, Options{OnDeadlock: func(i DeadlockInfo) {
		mu.Lock()
		infos = append(infos, i)
		mu.Unlock()
	}})
	t1, t2 := m.Begin(), m.Begin()
	m.Lock(t1, "n", tS, false)
	m.Lock(t2, "n", tS, false)
	request := func(tx *Tx, out chan<- error) {
		err := m.Lock(tx, "n", tX, false)
		m.ReleaseAll(tx)
		out <- err
	}
	errs := make(chan error, 2)
	go request(t1, errs)
	waitForQueue(t, m, "n", 1)
	go request(t2, errs)
	e1, e2 := <-errs, <-errs
	if (e1 == nil) == (e2 == nil) {
		t.Fatalf("one conversion must fail: %v / %v", e1, e2)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(infos) != 1 || !infos[0].Conversion {
		t.Fatalf("expected one conversion deadlock, got %+v", infos)
	}
	st := m.Stats()
	if st.ConversionDeadlocks != 1 || st.SubtreeDeadlocks != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := newMgr(t, Options{})
	txs := []*Tx{m.Begin(), m.Begin(), m.Begin()}
	res := []Resource{"a", "b", "c"}
	for i, tx := range txs {
		if err := m.Lock(tx, res[i], tX, false); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 3)
	for i, tx := range txs {
		i, tx := i, tx
		go func() {
			err := m.Lock(tx, res[(i+1)%3], tX, false)
			m.ReleaseAll(tx) // victim abort or post-grant completion
			errs <- err
		}()
		if i < 2 {
			// Deterministic edge order; the third request resolves the
			// cycle synchronously, so its queue entry may never be visible.
			waitForQueue(t, m, res[(i+1)%3], 1)
		}
	}
	victims, grants := 0, 0
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			switch {
			case errors.Is(err, ErrDeadlockVictim):
				victims++
			case err == nil:
				grants++
			default:
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("deadlock not resolved")
		}
	}
	if victims != 1 || grants != 2 {
		t.Errorf("victims = %d, grants = %d; want 1 and 2", victims, grants)
	}
}

func TestTimeout(t *testing.T) {
	m := newMgr(t, Options{Timeout: 50 * time.Millisecond})
	t1, t2 := m.Begin(), m.Begin()
	m.Lock(t1, "n1", tX, false)
	start := time.Now()
	err := m.Lock(t2, "n1", tX, false)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("returned too early: %v", d)
	}
	if m.Stats().Timeouts != 1 {
		t.Errorf("Timeouts = %d", m.Stats().Timeouts)
	}
	m.ReleaseAll(t1)
	m.ReleaseAll(t2)
}

func TestShortRelease(t *testing.T) {
	m := newMgr(t, Options{})
	t1 := m.Begin()
	m.Lock(t1, "r-short", tS, true)
	m.Lock(t1, "r-long", tX, false)
	m.Lock(t1, "r-upgraded", tS, true)
	m.Lock(t1, "r-upgraded", tS, false) // long request upgrades duration
	m.ReleaseShort(t1)
	if m.HeldMode(t1, "r-short") != ModeNone {
		t.Error("short lock survived ReleaseShort")
	}
	if m.HeldMode(t1, "r-long") != tX {
		t.Error("long lock lost")
	}
	if m.HeldMode(t1, "r-upgraded") != tS {
		t.Error("duration-upgraded lock lost")
	}
	m.ReleaseAll(t1)
	if m.HeldCount(t1) != 0 {
		t.Error("locks survive ReleaseAll")
	}
}

func TestLockAfterDone(t *testing.T) {
	m := newMgr(t, Options{})
	t1 := m.Begin()
	m.ReleaseAll(t1)
	if err := m.Lock(t1, "n", tS, false); !errors.Is(err, ErrTxDone) {
		t.Errorf("err = %v", err)
	}
}

func TestReleaseWakesQueue(t *testing.T) {
	m := newMgr(t, Options{})
	t1 := m.Begin()
	m.Lock(t1, "n", tX, false)
	const waiters = 5
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := m.Begin()
			errs[i] = m.Lock(tx, "n", tS, false)
			m.ReleaseAll(tx)
		}(i)
	}
	waitForQueue(t, m, "n", waiters)
	m.ReleaseAll(t1)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("waiter %d: %v", i, err)
		}
	}
	if m.QueueLength("n") != 0 {
		t.Error("queue not drained")
	}
}

// TestStressInvariant hammers the manager with random lock patterns and
// verifies that no two transactions ever hold incompatible modes on the same
// resource simultaneously. The check runs over consistent Snapshots (taken
// with every partition mutex held) rather than recording grants after Lock
// returns: the test table is asymmetric (S admits U, U does not admit S), so
// a legal grant order observed out of order would look like a violation.
// With asymmetric compatibility the granted-group invariant is that every
// holder pair is compatible in at least one direction — the direction in
// which the later of the two was granted.
func TestStressInvariant(t *testing.T) {
	m := newMgr(t, Options{Timeout: 2 * time.Second})
	table := m.Table()
	const (
		goroutines = 16
		resources  = 8
		rounds     = 200
	)
	modeByName := map[string]Mode{}
	for mo := Mode(1); int(mo) < table.NumModes(); mo++ {
		modeByName[table.Name(mo)] = mo
	}
	checkSnapshot := func() {
		snap := m.Snapshot()
		for _, rs := range snap.Resources {
			for i := 0; i < len(rs.Holders); i++ {
				for j := i + 1; j < len(rs.Holders); j++ {
					a, b := modeByName[rs.Holders[i].Mode], modeByName[rs.Holders[j].Mode]
					if !table.Compatible(a, b) && !table.Compatible(b, a) {
						t.Errorf("incompatible holders on %s: tx%d %s vs tx%d %s",
							rs.Resource, rs.Holders[i].Tx, rs.Holders[i].Mode,
							rs.Holders[j].Tx, rs.Holders[j].Mode)
					}
				}
			}
		}
	}

	modes := []Mode{tIS, tIX, tS, tU, tX}
	stop := make(chan struct{})
	checkerDone := make(chan struct{})
	go func() {
		defer close(checkerDone)
		for {
			select {
			case <-stop:
				return
			default:
				checkSnapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				tx := m.Begin()
				for i := 0; i < 1+rng.Intn(4); i++ {
					res := Resource(fmt.Sprintf("res-%d", rng.Intn(resources)))
					mode := modes[rng.Intn(len(modes))]
					if err := m.Lock(tx, res, mode, false); err != nil {
						break
					}
				}
				m.ReleaseAll(tx)
			}
		}(int64(g))
	}
	wg.Wait()
	close(stop)
	<-checkerDone
	checkSnapshot()
	if m.Stats().Timeouts > 0 {
		t.Errorf("stress run hit %d timeouts (likely lost wakeup)", m.Stats().Timeouts)
	}
}

func TestTableValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-reflexive conversion must panic")
		}
	}()
	NewTable(
		[]string{"-", "A"},
		[][]bool{{false, false}, {false, true}},
		[][]Mode{{0, 1}, {0, 0}}, // Convert(A, A) == none: invalid
	)
}

func BenchmarkUncontendedLock(b *testing.B) {
	m := NewManager(testTable(), Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := m.Begin()
		m.Lock(tx, "r", tS, false)
		m.ReleaseAll(tx)
	}
}

func BenchmarkSharedLockFanout(b *testing.B) {
	m := NewManager(testTable(), Options{})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tx := m.Begin()
			m.Lock(tx, "hot", tS, false)
			m.ReleaseAll(tx)
		}
	})
}

func TestSnapshotAndRender(t *testing.T) {
	m := newMgr(t, Options{})
	t1, t2 := m.Begin(), m.Begin()
	m.Lock(t1, "res-a", tX, false)
	m.Lock(t1, "res-b", tS, true)
	go m.Lock(t2, "res-a", tS, false)
	waitForQueue(t, m, "res-a", 1)

	snap := m.Snapshot()
	if len(snap.Resources) != 2 {
		t.Fatalf("resources = %d", len(snap.Resources))
	}
	var resA *ResourceState
	for i := range snap.Resources {
		if snap.Resources[i].Resource == "res-a" {
			resA = &snap.Resources[i]
		}
	}
	if resA == nil || len(resA.Holders) != 1 || len(resA.Waiters) != 1 {
		t.Fatalf("res-a state = %+v", resA)
	}
	if resA.Holders[0].Tx != t1.ID() || resA.Holders[0].Mode != "X" {
		t.Errorf("holder = %+v", resA.Holders[0])
	}
	if resA.Waiters[0].Tx != t2.ID() || resA.Waiters[0].Conversion {
		t.Errorf("waiter = %+v", resA.Waiters[0])
	}
	// The wait-for graph has the one edge t2 -> t1.
	if len(snap.WaitFor) != 1 || snap.WaitFor[0].From != t2.ID() || snap.WaitFor[0].To != t1.ID() {
		t.Errorf("wait-for = %+v", snap.WaitFor)
	}
	var buf bytes.Buffer
	snap.Render(&buf)
	out := buf.String()
	for _, frag := range []string{"res-a", "held(tx1 X)", "wait(tx2 S)", "tx2 -> tx1", "short"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	if m.ActiveResources() != 2 {
		t.Errorf("ActiveResources = %d", m.ActiveResources())
	}
	m.ReleaseAll(t1)
	m.ReleaseAll(t2)
	if m.ActiveResources() != 0 {
		t.Error("resources should be garbage-collected after release")
	}
}
