package lock

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// distinctPartitionResources returns n resources that hash to n different
// partitions of m.
func distinctPartitionResources(t *testing.T, m *Manager, n int) []Resource {
	t.Helper()
	if m.NumPartitions() < n {
		t.Fatalf("manager has %d partitions, need %d", m.NumPartitions(), n)
	}
	seen := make(map[int]bool)
	var out []Resource
	for i := 0; len(out) < n && i < 10000; i++ {
		res := Resource(fmt.Sprintf("xp-%d", i))
		if p := m.PartitionOf(res); !seen[p] {
			seen[p] = true
			out = append(out, res)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d distinct partitions", n)
	}
	return out
}

func waitBlocked(t *testing.T, m *Manager, tx *Tx) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !m.Waiting(tx) {
		if time.Now().After(deadline) {
			t.Fatal("transaction never blocked")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestCrossPartitionDeadlock builds a three-transaction cycle whose wait
// edges span three different partitions — the case the dedicated detector
// goroutine exists for, since no single-partition view can see the cycle.
func TestCrossPartitionDeadlock(t *testing.T) {
	var mu sync.Mutex
	var infos []DeadlockInfo
	m := newMgr(t, Options{OnDeadlock: func(info DeadlockInfo) {
		mu.Lock()
		infos = append(infos, info)
		mu.Unlock()
	}})
	rs := distinctPartitionResources(t, m, 3)
	a, b, c := rs[0], rs[1], rs[2]

	t1, t2, t3 := m.Begin(), m.Begin(), m.Begin()
	for _, g := range []struct {
		tx  *Tx
		res Resource
	}{{t1, a}, {t2, b}, {t3, c}} {
		if err := m.Lock(g.tx, g.res, tX, false); err != nil {
			t.Fatal(err)
		}
	}

	ch1 := make(chan error, 1)
	go func() { ch1 <- m.Lock(t1, b, tX, false) }()
	waitBlocked(t, m, t1)
	ch2 := make(chan error, 1)
	go func() { ch2 <- m.Lock(t2, c, tX, false) }()
	waitBlocked(t, m, t2)

	// t3 closes the cycle t1→t2→t3→t1 and, as the youngest member, is the
	// victim.
	if err := m.Lock(t3, a, tX, false); err != ErrDeadlockVictim {
		t.Fatalf("t3 got %v, want ErrDeadlockVictim", err)
	}

	st := m.Stats()
	if st.Deadlocks != 1 || st.SubtreeDeadlocks != 1 || st.ConversionDeadlocks != 0 {
		t.Fatalf("stats %+v: want exactly one non-conversion deadlock", st)
	}
	mu.Lock()
	if len(infos) != 1 {
		t.Fatalf("got %d deadlock reports, want 1", len(infos))
	}
	info := infos[0]
	mu.Unlock()
	if info.Victim != t3.ID() {
		t.Fatalf("victim %d, want %d (youngest)", info.Victim, t3.ID())
	}
	if len(info.Members) != 3 {
		t.Fatalf("cycle members %v, want 3", info.Members)
	}
	if info.Conversion {
		t.Fatal("plain lock cycle misclassified as conversion deadlock")
	}
	parts := make(map[int]bool)
	for _, res := range info.Resources {
		parts[m.PartitionOf(res)] = true
	}
	if len(parts) != 3 {
		t.Fatalf("cycle resources %v span %d partitions, want 3", info.Resources, len(parts))
	}

	// The victim keeps its locks until released; unwinding it lets the
	// survivors drain in dependency order.
	m.ReleaseAll(t3)
	if err := <-ch2; err != nil {
		t.Fatalf("t2 after victim release: %v", err)
	}
	m.ReleaseAll(t2)
	if err := <-ch1; err != nil {
		t.Fatalf("t1 after t2 release: %v", err)
	}
	m.ReleaseAll(t1)
}

// TestCrossPartitionConversionDeadlock puts a conversion edge and a plain
// edge on different partitions and checks the cycle is still classified as
// a conversion deadlock (the paper's distinguishing metric).
func TestCrossPartitionConversionDeadlock(t *testing.T) {
	var mu sync.Mutex
	var infos []DeadlockInfo
	m := newMgr(t, Options{OnDeadlock: func(info DeadlockInfo) {
		mu.Lock()
		infos = append(infos, info)
		mu.Unlock()
	}})
	rs := distinctPartitionResources(t, m, 2)
	a, b := rs[0], rs[1]

	t1, t2 := m.Begin(), m.Begin()
	if err := m.Lock(t2, a, tS, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(t2, b, tX, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(t1, a, tS, false); err != nil {
		t.Fatal(err)
	}

	ch1 := make(chan error, 1)
	go func() { ch1 <- m.Lock(t1, b, tX, false) }()
	waitBlocked(t, m, t1)

	// t2 upgrades S→X on a, blocked by t1's S: a conversion wait that closes
	// the cycle. t2 is younger, so it is the victim.
	if err := m.Lock(t2, a, tX, false); err != ErrDeadlockVictim {
		t.Fatalf("t2 got %v, want ErrDeadlockVictim", err)
	}

	st := m.Stats()
	if st.Deadlocks != 1 || st.ConversionDeadlocks != 1 || st.SubtreeDeadlocks != 0 {
		t.Fatalf("stats %+v: want exactly one conversion deadlock", st)
	}
	mu.Lock()
	if len(infos) != 1 || !infos[0].Conversion || infos[0].Victim != t2.ID() {
		t.Fatalf("deadlock report %+v: want conversion cycle with victim %d", infos, t2.ID())
	}
	mu.Unlock()

	m.ReleaseAll(t2)
	if err := <-ch1; err != nil {
		t.Fatalf("t1 after victim release: %v", err)
	}
	m.ReleaseAll(t1)
}

// TestCacheLifecycle pins down when the per-transaction cache answers a
// request and — more importantly — when it must not: doomed and finished
// transactions, and short-duration locks.
func TestCacheLifecycle(t *testing.T) {
	m := newMgr(t, Options{})
	t1 := m.Begin()
	a, b := Resource("cl-a"), Resource("cl-b")

	if err := m.Lock(t1, a, tIX, false); err != nil {
		t.Fatal(err)
	}
	if hits := m.Stats().CacheHits; hits != 0 {
		t.Fatalf("fresh grant counted as cache hit (%d)", hits)
	}
	// Re-request at equal and at weaker strength: both covered by the cache.
	if err := m.Lock(t1, a, tIX, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(t1, a, tIS, false); err != nil {
		t.Fatal(err)
	}
	if hits := m.Stats().CacheHits; hits != 2 {
		t.Fatalf("CacheHits = %d, want 2", hits)
	}
	// A strengthening request must bypass the cache and convert.
	if err := m.Lock(t1, a, tX, false); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.CacheHits != 2 || st.Conversions != 1 {
		t.Fatalf("conversion went through the cache: %+v", st)
	}
	if got := m.HeldMode(t1, a); got != tX {
		t.Fatalf("held %v, want %v", got, tX)
	}

	// Short locks are never cached: re-requesting one touches the table.
	if err := m.Lock(t1, b, tS, true); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(t1, b, tS, true); err != nil {
		t.Fatal(err)
	}
	if hits := m.Stats().CacheHits; hits != 2 {
		t.Fatalf("short lock re-request hit the cache (CacheHits=%d)", hits)
	}
	m.ReleaseShort(t1)
	if got := m.HeldMode(t1, b); got != ModeNone {
		t.Fatalf("short lock survived ReleaseShort: %v", got)
	}

	// After ReleaseAll, a cached resource must yield ErrTxDone, not a stale
	// grant.
	m.ReleaseAll(t1)
	if err := m.Lock(t1, a, tIS, false); err != ErrTxDone {
		t.Fatalf("finished tx got %v, want ErrTxDone", err)
	}
}

// TestCacheDoomedTx checks that dooming a transaction takes priority over
// its cache: a deadlock victim re-requesting a resource it still holds (and
// had cached) must see ErrDeadlockVictim, not a stale cache hit.
func TestCacheDoomedTx(t *testing.T) {
	m := newMgr(t, Options{})
	rs := distinctPartitionResources(t, m, 2)
	c1, c2 := rs[0], rs[1]

	t2, t3 := m.Begin(), m.Begin()
	if err := m.Lock(t2, c1, tX, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(t3, c2, tX, false); err != nil {
		t.Fatal(err)
	}
	// Warm t3's cache on c2 and remember the hit count.
	if err := m.Lock(t3, c2, tIS, false); err != nil {
		t.Fatal(err)
	}
	hitsBefore := m.Stats().CacheHits

	ch2 := make(chan error, 1)
	go func() { ch2 <- m.Lock(t2, c2, tX, false) }()
	waitBlocked(t, m, t2)
	if err := m.Lock(t3, c1, tX, false); err != ErrDeadlockVictim {
		t.Fatalf("t3 got %v, want ErrDeadlockVictim", err)
	}

	// t3 still holds c2 and has it cached, but it is doomed now.
	if err := m.Lock(t3, c2, tIS, false); err != ErrDeadlockVictim {
		t.Fatalf("doomed tx got %v from a cached resource, want ErrDeadlockVictim", err)
	}
	if hits := m.Stats().CacheHits; hits != hitsBefore {
		t.Fatalf("doomed tx produced a cache hit (%d -> %d)", hitsBefore, hits)
	}

	// Release the victim; the survivor's blocked request completes, and a
	// restarted transaction can take over the resources.
	m.ReleaseAll(t3)
	if err := <-ch2; err != nil {
		t.Fatalf("t2 after victim release: %v", err)
	}
	m.ReleaseAll(t2)
	t4 := m.Begin()
	if err := m.Lock(t4, c2, tX, false); err != nil {
		t.Fatalf("restarted tx: %v", err)
	}
	m.ReleaseAll(t4)
}

// TestDumpDeterministic renders the same lock-table state twice and demands
// byte-identical output — the partition maps underneath iterate in random
// order, so any difference means the dump forgot to sort.
func TestDumpDeterministic(t *testing.T) {
	m := newMgr(t, Options{})
	t1, t2 := m.Begin(), m.Begin()
	for i := 0; i < 12; i++ {
		res := Resource(fmt.Sprintf("dump-%d", i))
		if err := m.Lock(t1, res, tIS, false); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := m.Lock(t2, res, tIS, i%4 == 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	render := func() string {
		var buf bytes.Buffer
		m.Snapshot().Render(&buf)
		return buf.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs:\n%s\n--- vs ---\n%s", i, got, first)
		}
	}
	snap := m.Snapshot()
	if snap.Partitions != m.NumPartitions() {
		t.Fatalf("snapshot reports %d partitions, manager has %d", snap.Partitions, m.NumPartitions())
	}
	m.ReleaseAll(t1)
	m.ReleaseAll(t2)
}
