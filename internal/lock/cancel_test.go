package lock

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCancelPendingWait: a pending lock request whose transaction context is
// canceled must stop waiting immediately — well before the manager timeout —
// and leave no residue in the lock table (the disconnected-session teardown
// path of the server front end).
func TestCancelPendingWait(t *testing.T) {
	m := newMgr(t, Options{Timeout: time.Minute}) // timeout must not be the rescuer
	holder, waiter := m.Begin(), m.Begin()
	if err := m.Lock(holder, "n1", tX, false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiter.SetContext(ctx)

	done := make(chan error, 1)
	go func() { done <- m.Lock(waiter, "n1", tS, false) }()
	// Wait until the request actually queues, then cut the session.
	deadline := time.Now().Add(5 * time.Second)
	for m.QueueLength("n1") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("expected ErrCanceled, got %v", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cause not preserved: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled wait did not return")
	}
	if got := m.Stats().Canceled; got != 1 {
		t.Fatalf("Canceled counter = %d, want 1", got)
	}

	// The canceled waiter must be gone from the queue; after both
	// transactions finish, the residue audit must pass.
	if q := m.QueueLength("n1"); q != 0 {
		t.Fatalf("canceled request still queued (%d waiters)", q)
	}
	m.ReleaseAll(waiter)
	m.ReleaseAll(holder)
	if err := m.LeakCheck(); err != nil {
		t.Fatalf("lock residue after canceled wait: %v", err)
	}
}

// TestCancelBeforeRequest: an already-canceled context fails the next
// slow-path request up front without queueing.
func TestCancelBeforeRequest(t *testing.T) {
	m := newMgr(t, Options{Timeout: time.Minute})
	holder, waiter := m.Begin(), m.Begin()
	if err := m.Lock(holder, "n1", tX, false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	waiter.SetContext(ctx)
	if err := m.Lock(waiter, "n1", tS, false); !errors.Is(err, ErrCanceled) {
		t.Fatalf("expected ErrCanceled, got %v", err)
	}
	if q := m.QueueLength("n1"); q != 0 {
		t.Fatalf("pre-canceled request queued (%d waiters)", q)
	}
	m.ReleaseAll(waiter)
	m.ReleaseAll(holder)
	if err := m.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelGrantRace: a grant that lands concurrently with the cancellation
// must be honored — the lock shows up in the holder set and is released
// normally (no double-completion, no lost lock).
func TestCancelGrantRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		m := newMgr(t, Options{Timeout: time.Minute})
		holder, waiter := m.Begin(), m.Begin()
		if err := m.Lock(holder, "r", tX, false); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		waiter.SetContext(ctx)
		done := make(chan error, 1)
		go func() { done <- m.Lock(waiter, "r", tS, false) }()
		for m.QueueLength("r") == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		// Release (grants the waiter) and cancel as close together as the
		// scheduler allows.
		released := make(chan struct{})
		go func() { m.ReleaseAll(holder); close(released) }()
		cancel()
		err := <-done
		<-released
		if err == nil {
			if got := m.HeldMode(waiter, "r"); got != tS {
				t.Fatalf("iter %d: grant honored but mode %v", i, got)
			}
		} else if !errors.Is(err, ErrCanceled) {
			t.Fatalf("iter %d: unexpected error %v", i, err)
		}
		m.ReleaseAll(waiter)
		if err := m.LeakCheck(); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
}

// TestCancelDeadlinePropagation: a context deadline bounds the wait like a
// per-request timeout (deadline propagation from the wire protocol).
func TestCancelDeadlinePropagation(t *testing.T) {
	m := newMgr(t, Options{Timeout: time.Minute})
	holder, waiter := m.Begin(), m.Begin()
	if err := m.Lock(holder, "n1", tX, false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	waiter.SetContext(ctx)
	t0 := time.Now()
	err := m.Lock(waiter, "n1", tS, false)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected ErrCanceled(DeadlineExceeded), got %v", err)
	}
	if d := time.Since(t0); d > 10*time.Second {
		t.Fatalf("deadline ignored: waited %v", d)
	}
	m.ReleaseAll(waiter)
	m.ReleaseAll(holder)
	if err := m.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
