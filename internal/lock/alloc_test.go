//go:build !race

// Allocation-regression guards for the lock-acquire fast path. The race
// detector instruments allocations and disables pooling heuristics, so these
// run only in the non-race suite (make verify runs both).

package lock

import (
	"fmt"
	"testing"
)

// allocWalk issues one ancestor-path-plus-leaf batch, reusing the caller's
// request buffer — the protocol layer's hot-path calling convention.
func allocWalk(m *Manager, tx *Tx, reqs []Req, ancestors []Resource, leaf Resource) []Req {
	reqs = reqs[:0]
	for _, res := range ancestors {
		reqs = append(reqs, Req{Res: res, Mode: tIS})
	}
	reqs = append(reqs, Req{Res: leaf, Mode: tS})
	if err := m.LockBatch(tx, reqs); err != nil {
		panic(err)
	}
	return reqs
}

func allocFixture() (ancestors []Resource, leaves []Resource) {
	ancestors = []Resource{"a/r", "a/r/b", "a/r/b/c", "a/r/b/c/d", "a/r/b/c/d/e"}
	for j := 0; j < 32; j++ {
		leaves = append(leaves, Resource(fmt.Sprintf("a/r/b/c/d/e/leaf-%d", j)))
	}
	return
}

// TestAllocWarmPathZero pins the warm re-traversal path — every request a
// cache hit — at zero allocations per walk.
func TestAllocWarmPathZero(t *testing.T) {
	m := NewManager(testTable(), Options{})
	defer m.Close()
	ancestors, leaves := allocFixture()
	tx := m.Begin()
	defer m.ReleaseAll(tx)
	reqs := make([]Req, 0, 8)
	reqs = allocWalk(m, tx, reqs, ancestors, leaves[0])

	avg := testing.AllocsPerRun(100, func() {
		reqs = allocWalk(m, tx, reqs, ancestors, leaves[0])
	})
	if avg != 0 {
		t.Fatalf("warm path walk allocated %.2f times, want 0", avg)
	}
}

// TestAllocUncontendedTurnover pins the full uncontended transaction cycle —
// Begin, 64 path walks over 32 leaves, ReleaseAll — at no more than 16
// allocations, i.e. well under the one-alloc-per-walk budget. With warm
// pools the cycle's only allocations are the Tx itself and its held map; a
// regression that allocates per grant or per walk (64+ per cycle) fails
// loudly.
func TestAllocUncontendedTurnover(t *testing.T) {
	m := NewManager(testTable(), Options{})
	defer m.Close()
	ancestors, leaves := allocFixture()
	reqs := make([]Req, 0, 8)
	cycle := func() {
		tx := m.Begin()
		for i := 0; i < 64; i++ {
			reqs = allocWalk(m, tx, reqs, ancestors, leaves[i%len(leaves)])
		}
		m.ReleaseAll(tx)
	}
	cycle() // warm the entry/request pools

	avg := testing.AllocsPerRun(10, cycle)
	const walks, budget = 64, 16
	if avg > budget {
		t.Fatalf("uncontended turnover cycle allocated %.1f times (%.3f per walk), want <= %d per %d-walk cycle",
			avg, avg/walks, budget, walks)
	}
}
