package lock

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// Model-based equivalence test: the striped manager and the single-mutex
// oracle (oracle_test.go) execute the same randomized schedule of lock
// operations, issued to per-transaction worker goroutines in both systems.
// Operations are serialized — the driver issues the next one only after the
// previous one has either completed in both systems or blocked in both — so
// the interleaving is fully controlled and every grant, block, deadlock
// victim, and statistics counter must come out identical.

type eqOp struct {
	err  error
	done chan struct{}
}

func (op *eqOp) finished() bool {
	select {
	case <-op.done:
		return true
	default:
		return false
	}
}

type eqTask struct {
	run func() error
	op  *eqOp
}

type eqHarness struct {
	t   *testing.T
	rng *rand.Rand

	m  *Manager
	om *oracleManager

	txs  []*Tx
	otxs []*oracleTx

	sOps []chan eqTask // striped-side worker inboxes
	oOps []chan eqTask // oracle-side worker inboxes

	sPend []*eqOp
	oPend []*eqOp

	released []bool
	doomed   []bool

	resources []Resource

	dlMu   sync.Mutex
	sInfos []DeadlockInfo
	oInfos []DeadlockInfo
}

func newEqHarness(t *testing.T, seed int64, stripes, numTx, numRes int) *eqHarness {
	h := &eqHarness{t: t, rng: rand.New(rand.NewSource(seed))}
	// Timeout far beyond the stabilization deadline: a divergence must show
	// up as a state mismatch, never be papered over by a lock timeout.
	opts := Options{Timeout: time.Minute, Stripes: stripes}
	sOpts, oOpts := opts, opts
	sOpts.OnDeadlock = func(info DeadlockInfo) {
		h.dlMu.Lock()
		h.sInfos = append(h.sInfos, info)
		h.dlMu.Unlock()
	}
	oOpts.OnDeadlock = func(info DeadlockInfo) {
		h.dlMu.Lock()
		h.oInfos = append(h.oInfos, info)
		h.dlMu.Unlock()
	}
	h.m = NewManager(testTable(), sOpts)
	t.Cleanup(h.m.Close)
	h.om = newOracleManager(testTable(), oOpts)

	for i := 0; i < numTx; i++ {
		// Same Begin order in both systems, so tx i has the same TxID in
		// both — victim selection (youngest = largest id) then agrees.
		h.txs = append(h.txs, h.m.Begin())
		h.otxs = append(h.otxs, h.om.Begin())
		sCh := make(chan eqTask, 1)
		oCh := make(chan eqTask, 1)
		h.sOps = append(h.sOps, sCh)
		h.oOps = append(h.oOps, oCh)
		for _, ch := range []chan eqTask{sCh, oCh} {
			go func(ch chan eqTask) {
				for task := range ch {
					task.op.err = task.run()
					close(task.op.done)
				}
			}(ch)
		}
	}
	h.sPend = make([]*eqOp, numTx)
	h.oPend = make([]*eqOp, numTx)
	h.released = make([]bool, numTx)
	h.doomed = make([]bool, numTx)
	for i := 0; i < numRes; i++ {
		h.resources = append(h.resources, Resource(fmt.Sprintf("res-%d", i)))
	}
	t.Cleanup(func() {
		for i := range h.sOps {
			close(h.sOps[i])
			close(h.oOps[i])
		}
	})
	return h
}

func (h *eqHarness) available(i int) bool { return h.sPend[i] == nil && h.oPend[i] == nil }

func (h *eqHarness) issue(i int, sRun, oRun func() error) {
	h.t.Helper()
	if !h.available(i) {
		h.t.Fatalf("issue to tx %d with an operation still pending", i)
	}
	so := &eqOp{done: make(chan struct{})}
	oo := &eqOp{done: make(chan struct{})}
	h.sPend[i] = so
	h.oPend[i] = oo
	h.sOps[i] <- eqTask{sRun, so}
	h.oOps[i] <- eqTask{oRun, oo}
}

func errsEqual(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

func normalizeDL(d DeadlockInfo) string {
	ms := append([]TxID(nil), d.Members...)
	sort.Slice(ms, func(a, b int) bool { return ms[a] < ms[b] })
	return fmt.Sprintf("victim=%d conversion=%t members=%v", d.Victim, d.Conversion, ms)
}

// stabilize polls until every pending operation has either completed in both
// systems (with identical errors) or blocked in both, and the lock tables,
// statistics (CacheHits aside — the oracle has no cache), and deadlock
// reports agree. The asynchronous striped deadlock detector is the reason
// this is a polling loop rather than a single check: the oracle resolves
// cycles inline, the striped manager a moment later on its detector
// goroutine.
func (h *eqHarness) stabilize() {
	h.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		mismatch := ""
		for i := range h.txs {
			sp, op := h.sPend[i], h.oPend[i]
			if sp == nil {
				continue
			}
			sDone, oDone := sp.finished(), op.finished()
			if sDone && oDone {
				if !errsEqual(sp.err, op.err) {
					h.t.Fatalf("tx %d: striped returned %v, oracle returned %v", i, sp.err, op.err)
				}
				if sp.err == ErrDeadlockVictim {
					h.doomed[i] = true
				}
				h.sPend[i], h.oPend[i] = nil, nil
				continue
			}
			if sDone != oDone {
				mismatch = fmt.Sprintf("tx %d: striped done=%t oracle done=%t", i, sDone, oDone)
				break
			}
			if !h.m.Waiting(h.txs[i]) || !h.om.Waiting(h.otxs[i]) {
				mismatch = fmt.Sprintf("tx %d: pending but not blocked in both systems", i)
				break
			}
		}
		if mismatch == "" {
			mismatch = h.compareState()
			if mismatch == "" {
				return
			}
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("systems failed to converge: %s", mismatch)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// compareState checks held modes, statistics, and deadlock reports; it
// returns a description of the first difference, or "" when equal.
func (h *eqHarness) compareState() string {
	for i := range h.txs {
		for _, res := range h.resources {
			sm := h.m.HeldMode(h.txs[i], res)
			om := h.om.HeldMode(h.otxs[i], res)
			if sm != om {
				return fmt.Sprintf("tx %d on %s: striped holds %v, oracle holds %v", i, res, sm, om)
			}
		}
	}
	ss, os := h.m.Stats(), h.om.Stats()
	ss.CacheHits = 0
	if ss != os {
		return fmt.Sprintf("stats: striped %+v, oracle %+v", ss, os)
	}
	h.dlMu.Lock()
	defer h.dlMu.Unlock()
	if len(h.sInfos) != len(h.oInfos) {
		return fmt.Sprintf("deadlock reports: striped %d, oracle %d", len(h.sInfos), len(h.oInfos))
	}
	for k := range h.sInfos {
		if s, o := normalizeDL(h.sInfos[k]), normalizeDL(h.oInfos[k]); s != o {
			return fmt.Sprintf("deadlock report %d: striped %s, oracle %s", k, s, o)
		}
	}
	return ""
}

func (h *eqHarness) issueLock(i int, res Resource, mode Mode, short bool) {
	tx, otx := h.txs[i], h.otxs[i]
	h.issue(i,
		func() error { return h.m.Lock(tx, res, mode, short) },
		func() error { return h.om.Lock(otx, res, mode, short) })
}

// issueBatch drives LockBatch on the striped side against its specified
// model — the same requests through sequential Lock calls, first error wins
// — on the oracle side.
func (h *eqHarness) issueBatch(i int, reqs []Req) {
	tx, otx := h.txs[i], h.otxs[i]
	h.issue(i,
		func() error { return h.m.LockBatch(tx, reqs) },
		func() error {
			for _, r := range reqs {
				if err := h.om.Lock(otx, r.Res, r.Mode, r.Short); err != nil {
					return err
				}
			}
			return nil
		})
}

func (h *eqHarness) issueReleaseShort(i int) {
	tx, otx := h.txs[i], h.otxs[i]
	h.issue(i,
		func() error { h.m.ReleaseShort(tx); return nil },
		func() error { h.om.ReleaseShort(otx); return nil })
}

func (h *eqHarness) issueReleaseAll(i int) {
	tx, otx := h.txs[i], h.otxs[i]
	h.released[i] = true
	h.issue(i,
		func() error { h.m.ReleaseAll(tx); return nil },
		func() error { h.om.ReleaseAll(otx); return nil })
}

func (h *eqHarness) randMode() Mode {
	modes := []Mode{tIS, tIX, tS, tU, tX}
	return modes[h.rng.Intn(len(modes))]
}

func (h *eqHarness) randRes() Resource {
	return h.resources[h.rng.Intn(len(h.resources))]
}

func runEquivalenceRound(t *testing.T, seed int64, stripes, numTx, numRes, steps int) {
	h := newEqHarness(t, seed, stripes, numTx, numRes)

	for step := 0; step < steps; step++ {
		// Pick a transaction with no pending operation. One always exists:
		// if every transaction were blocked, the wait-for graph would hold a
		// cycle and the detectors would have broken it before stabilize
		// returned.
		var avail []int
		for i := range h.txs {
			if h.available(i) {
				avail = append(avail, i)
			}
		}
		if len(avail) == 0 {
			t.Fatalf("step %d: no transaction available", step)
		}
		i := avail[h.rng.Intn(len(avail))]
		if h.released[i] && h.rng.Float64() > 0.15 {
			// Mostly leave finished transactions alone, but occasionally
			// poke one to confirm ErrTxDone parity.
			for try := 0; try < 8 && h.released[i]; try++ {
				i = avail[h.rng.Intn(len(avail))]
			}
		}

		switch r := h.rng.Float64(); {
		case r < 0.55:
			h.issueLock(i, h.randRes(), h.randMode(), h.rng.Intn(4) == 0)
		case r < 0.72:
			n := 1 + h.rng.Intn(4)
			reqs := make([]Req, n)
			for k := range reqs {
				reqs[k] = Req{Res: h.randRes(), Mode: h.randMode(), Short: h.rng.Intn(6) == 0}
			}
			h.issueBatch(i, reqs)
		case r < 0.82:
			h.issueReleaseShort(i)
		case r < 0.9:
			h.issueReleaseAll(i)
		default:
			// Re-request in a weak mode — the cache-hit path on the striped
			// side, a plain re-grant on the oracle side.
			h.issueLock(i, h.randRes(), tIS, false)
		}
		h.stabilize()
	}

	// Drain: release everything. Blocked transactions become available as
	// the releases unblock them.
	for pass := 0; pass < 8*numTx; pass++ {
		progress := false
		for i := range h.txs {
			if !h.released[i] && h.available(i) {
				h.issueReleaseAll(i)
				progress = true
			}
		}
		h.stabilize()
		done := true
		for i := range h.txs {
			if !h.released[i] || !h.available(i) {
				done = false
			}
		}
		if done {
			break
		}
		if !progress {
			time.Sleep(time.Millisecond)
		}
	}
	for i := range h.txs {
		if !h.released[i] {
			t.Fatalf("tx %d never drained", i)
		}
		for _, res := range h.resources {
			if m := h.m.HeldMode(h.txs[i], res); m != ModeNone {
				t.Fatalf("tx %d still holds %v on %s after drain", i, m, res)
			}
		}
	}
	h.stabilize()

	if s := h.m.Stats(); s.Timeouts != 0 {
		t.Fatalf("striped manager hit %d lock timeouts; schedule should resolve every wait", s.Timeouts)
	}
}

func TestEquivalenceRandomized(t *testing.T) {
	configs := []struct {
		stripes, numTx, numRes, steps int
	}{
		{1, 6, 5, 120},  // degenerate striping: one partition
		{4, 8, 6, 150},  // heavy cross-partition collisions
		{64, 8, 6, 150}, // default layout
	}
	for ci, c := range configs {
		for s := int64(1); s <= 4; s++ {
			seed := int64(ci)*1000 + s
			c := c
			t.Run(fmt.Sprintf("stripes=%d/seed=%d", c.stripes, seed), func(t *testing.T) {
				runEquivalenceRound(t, seed, c.stripes, c.numTx, c.numRes, c.steps)
			})
		}
	}
}

// TestBatchMatchesSequential pins the non-blocking half of the LockBatch
// contract directly: the same request list against two striped managers —
// one via LockBatch, one via sequential Lock — yields identical held modes
// and identical statistics (cache hits included, since both sides cache).
func TestBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	modes := []Mode{tIS, tIX, tS, tU, tX}
	for round := 0; round < 50; round++ {
		mb := newMgr(t, Options{})
		ms := newMgr(t, Options{})
		tb, ts := mb.Begin(), ms.Begin()
		var resources []Resource
		for i := 0; i < 6; i++ {
			resources = append(resources, Resource(fmt.Sprintf("seq-%d-%d", round, i)))
		}
		for op := 0; op < 12; op++ {
			// Distinct resources per batch, like the protocol layers issue:
			// an intra-batch duplicate is booked as an immediate grant where
			// sequential Lock sees a cache hit (see LockBatch).
			n := 1 + rng.Intn(5)
			perm := rng.Perm(len(resources))
			reqs := make([]Req, n)
			for k := range reqs {
				reqs[k] = Req{
					Res:   resources[perm[k]],
					Mode:  modes[rng.Intn(len(modes))],
					Short: rng.Intn(5) == 0,
				}
			}
			if err := mb.LockBatch(tb, reqs); err != nil {
				t.Fatalf("round %d op %d: LockBatch: %v", round, op, err)
			}
			for _, r := range reqs {
				if err := ms.Lock(ts, r.Res, r.Mode, r.Short); err != nil {
					t.Fatalf("round %d op %d: Lock: %v", round, op, err)
				}
			}
			for _, res := range resources {
				if bm, sm := mb.HeldMode(tb, res), ms.HeldMode(ts, res); bm != sm {
					t.Fatalf("round %d op %d: %s: batch holds %v, sequential holds %v", round, op, res, bm, sm)
				}
			}
		}
		if bs, ss := mb.Stats(), ms.Stats(); bs != ss {
			t.Fatalf("round %d: stats diverged: batch %+v, sequential %+v", round, bs, ss)
		}
		mb.ReleaseAll(tb)
		ms.ReleaseAll(ts)
	}
}
