package lock

import "fmt"

// Packed granted-group word: the lock-free fast path's summary of one
// resource's granted group, small enough to update with a single
// compare-and-swap. Layout (uint64):
//
//	bit 63        seal   — fast path disabled; the slow path owns the head
//	bits 48..62   epoch  — bumped on every publish, fast or slow (ABA insurance)
//	bits 0..47    modes  — bit m-1 set iff some transaction holds mode m
//
// The mode field is a *bitset*, not the per-mode counters one might first
// reach for: the taDOM3+ table has 23 modes (20 node modes plus 3 edge
// modes), so even 2-bit counters would not leave room for an epoch. A bitset
// loses the holder count, which has one consequence: the fast path can add
// holders freely but can only *remove* the sole holder. A general fast
// release would have to clear a mode bit, which is wrong whenever two
// transactions hold the same mode; the sole-holder release (tryFastRelease)
// instead CASes the whole bitset to zero after proving — under the head's
// inflight drain — that exactly one entry is chained. All other releases go
// through the slow path, which recomputes the word from the authoritative
// holder chain under the partition mutex. The epoch bump on *every* grant is
// what makes the release CAS sound: a same-mode second grant leaves the
// bitset unchanged, so without the bump the release's CAS could not detect
// it and would wrongly empty the word.
//
// The compatibility test collapses to one AND: a request for mode r is
// compatible with every current holder iff word&incompat[r] == 0, where
// incompat[r] is the precomputed union of the bits of all modes incompatible
// with r (in the held→requested direction — the matrices are asymmetric).
// This is exact, not conservative: compatibility against a *group* is the
// conjunction of per-holder compatibilities, and a disjunction over set bits
// computes exactly that.
const (
	wordSealed     = uint64(1) << 63
	wordEpochShift = 48
	wordEpochMask  = uint64(1)<<15 - 1
	wordModeMask   = uint64(1)<<wordEpochShift - 1

	// maxFastModes is the largest mode index the word can represent; tables
	// with more modes disable the fast path entirely (every head stays
	// sealed) rather than approximating.
	maxFastModes = 48
)

// fastTable is the packed-word view of a ModeTable: per-mode bit masks and
// precomputed incompatibility unions. Immutable after construction.
type fastTable struct {
	numModes int
	bit      [maxFastModes + 1]uint64
	incompat [maxFastModes + 1]uint64
}

// newFastTable derives the packed encoding from a mode table, or returns nil
// when the table has too many modes for the word (the manager then runs
// slow-path only — correct, just without the CAS grant).
func newFastTable(t ModeTable) *fastTable {
	n := t.NumModes()
	if n-1 > maxFastModes {
		return nil
	}
	ft := &fastTable{numModes: n}
	for m := 1; m < n; m++ {
		ft.bit[m] = uint64(1) << (m - 1)
	}
	for r := range ft.incompat {
		if r == 0 || r >= n {
			// ModeNone and out-of-range modes must never fast-grant; the slow
			// path rejects (or panics on) them exactly as before.
			ft.incompat[r] = ^uint64(0)
			continue
		}
		for h := 1; h < n; h++ {
			if !t.Compatible(Mode(h), Mode(r)) {
				ft.incompat[r] |= ft.bit[h]
			}
		}
	}
	return ft
}

func wordEpoch(w uint64) uint64 { return (w >> wordEpochShift) & wordEpochMask }

// nextWord builds the published word: the holder bitset, the epoch after
// prev's, and the seal flag.
func nextWord(bits uint64, prev uint64, sealed bool) uint64 {
	w := bits&wordModeMask | ((wordEpoch(prev)+1)&wordEpochMask)<<wordEpochShift
	if sealed {
		w |= wordSealed
	}
	return w
}

// VerifyPackedCompat exhaustively checks the packed-word encoding against
// the table's compatibility matrix: for every (held, requested) mode pair,
// the single-AND word test must agree with ModeTable.Compatible. Group
// compatibility follows because the word test is a disjunction over held
// bits and group compatibility is the conjunction of pair compatibilities.
// Returns nil for tables too large for the fast path (nothing to verify —
// the encoding is unused then). Exported for protocol-table tests.
func VerifyPackedCompat(t ModeTable) error {
	ft := newFastTable(t)
	if ft == nil {
		return nil
	}
	n := t.NumModes()
	for h := 1; h < n; h++ {
		if ft.bit[h] == 0 || ft.bit[h]&wordModeMask != ft.bit[h] {
			return fmt.Errorf("lock: mode %s maps to bad word bit %#x", t.Name(Mode(h)), ft.bit[h])
		}
		for r := 1; r < n; r++ {
			got := ft.bit[h]&ft.incompat[r] == 0
			want := t.Compatible(Mode(h), Mode(r))
			if got != want {
				return fmt.Errorf("lock: packed compat(%s held, %s requested) = %v, matrix says %v",
					t.Name(Mode(h)), t.Name(Mode(r)), got, want)
			}
		}
	}
	return nil
}
