package lock

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Diagnostics: snapshot and render the live lock table — the kind of
// information the paper's XTCdeadlockDetector gathers when a deadlock
// strikes (active transactions, locks held, state of the wait-for graph).

// HolderInfo describes one granted lock in a snapshot.
type HolderInfo struct {
	Tx    TxID
	Mode  string
	Short bool
}

// WaiterInfo describes one queued request in a snapshot.
type WaiterInfo struct {
	Tx         TxID
	Mode       string
	Conversion bool
}

// ResourceState is the snapshot of one lock-table entry.
type ResourceState struct {
	Resource Resource
	Holders  []HolderInfo
	Waiters  []WaiterInfo
}

// WaitEdge is one edge of the derived wait-for graph.
type WaitEdge struct {
	From, To TxID
}

// Snapshot captures the entire lock table and the derived wait-for graph at
// one instant. It is consistent (taken under the table mutex) but
// immediately stale; use it for diagnostics only.
type Snapshot struct {
	Taken     time.Time
	Resources []ResourceState
	WaitFor   []WaitEdge
}

// Snapshot captures the current lock-table state.
func (m *Manager) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{Taken: time.Now()}
	for res, h := range m.locks {
		rs := ResourceState{Resource: res}
		for _, e := range h.granted {
			rs.Holders = append(rs.Holders, HolderInfo{
				Tx: e.tx.id, Mode: m.table.Name(e.mode), Short: e.short,
			})
		}
		sort.Slice(rs.Holders, func(i, j int) bool { return rs.Holders[i].Tx < rs.Holders[j].Tx })
		for _, r := range h.queue {
			rs.Waiters = append(rs.Waiters, WaiterInfo{
				Tx: r.tx.id, Mode: m.table.Name(r.target), Conversion: r.conversion,
			})
			for _, succ := range m.successorsLocked(r.tx) {
				snap.WaitFor = append(snap.WaitFor, WaitEdge{From: r.tx.id, To: succ.id})
			}
		}
		snap.Resources = append(snap.Resources, rs)
	}
	sort.Slice(snap.Resources, func(i, j int) bool {
		return snap.Resources[i].Resource < snap.Resources[j].Resource
	})
	sort.Slice(snap.WaitFor, func(i, j int) bool {
		if snap.WaitFor[i].From != snap.WaitFor[j].From {
			return snap.WaitFor[i].From < snap.WaitFor[j].From
		}
		return snap.WaitFor[i].To < snap.WaitFor[j].To
	})
	return snap
}

// Render writes a human-readable dump of the snapshot.
func (s Snapshot) Render(w io.Writer) {
	fmt.Fprintf(w, "lock table snapshot (%d resources, %d wait edges)\n",
		len(s.Resources), len(s.WaitFor))
	for _, rs := range s.Resources {
		fmt.Fprintf(w, "  %q:", string(rs.Resource))
		for _, h := range rs.Holders {
			dur := ""
			if h.Short {
				dur = " short"
			}
			fmt.Fprintf(w, " held(tx%d %s%s)", h.Tx, h.Mode, dur)
		}
		for _, q := range rs.Waiters {
			conv := ""
			if q.Conversion {
				conv = " conv"
			}
			fmt.Fprintf(w, " wait(tx%d %s%s)", q.Tx, q.Mode, conv)
		}
		fmt.Fprintln(w)
	}
	for _, e := range s.WaitFor {
		fmt.Fprintf(w, "  tx%d -> tx%d\n", e.From, e.To)
	}
}

// ActiveResources returns the number of resources currently carrying locks.
func (m *Manager) ActiveResources() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.locks)
}
