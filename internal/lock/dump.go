package lock

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// Diagnostics: snapshot and render the live lock table — the kind of
// information the paper's XTCdeadlockDetector gathers when a deadlock
// strikes (active transactions, locks held, state of the wait-for graph).
// Observers read through the per-partition seqlocks, so a snapshot of a
// busy table never blocks a grant or a release.

// observerWalkBound caps lock-free holder-chain walks. A chain read without
// the partition mutex can transiently appear cyclic when recycled entries
// are re-pushed elsewhere mid-walk; a walk that runs past the bound gives
// up and the attempt is retried (the seqlock recheck would have discarded
// it anyway). Real chains are tiny — one entry per holding transaction.
const observerWalkBound = 1 << 14

// stableRead runs read under the stripe's seqlock: a bounded number of
// optimistic attempts (read must only follow atomics, reset its own
// accumulation on entry, and return false to void an attempt), each
// validated by an unchanged even sequence; then a read-only fallback under
// the mutex, which observes an exact state. Fast-path grants do not bump
// the sequence — they only push fully initialized entries onto holder
// chains, which a reader sees entirely or not at all.
func (s *stripe) stableRead(read func() bool) {
	for attempt := 0; attempt < 4; attempt++ {
		v := s.seq.Load()
		if v&1 == 0 && read() && s.seq.Load() == v {
			return
		}
		runtime.Gosched()
	}
	s.mu.Lock() // read-only: no seqlock bump
	read()
	s.mu.Unlock()
}

// HolderInfo describes one granted lock in a snapshot.
type HolderInfo struct {
	Tx    TxID
	Mode  string
	Short bool
}

// WaiterInfo describes one queued request in a snapshot.
type WaiterInfo struct {
	Tx         TxID
	Mode       string
	Conversion bool
}

// ResourceState is the snapshot of one lock-table entry.
type ResourceState struct {
	Resource  Resource
	Partition int
	Holders   []HolderInfo
	Waiters   []WaiterInfo
}

// WaitEdge is one edge of the derived wait-for graph.
type WaitEdge struct {
	From, To TxID
}

// Snapshot captures the lock table and the derived wait-for graph. Each
// partition is internally consistent (one stable seqlock read); partitions
// are read in sequence, so cross-partition relations can be skewed by
// concurrent activity — it is a diagnostic view, immediately stale either
// way. On a quiescent table it is exact. All slices are sorted and the
// wait-for edges deduplicated, so rendering the same table state always
// produces identical output. Resources whose heads are empty (kept around
// for fast-path reuse) are not reported.
type Snapshot struct {
	Taken      time.Time
	Partitions int
	Resources  []ResourceState
	WaitFor    []WaitEdge
}

// Snapshot captures the current lock-table state without blocking any
// grant: it reads through the per-partition seqlocks.
func (m *Manager) Snapshot() Snapshot {
	snap := Snapshot{Taken: time.Now(), Partitions: len(m.stripes)}
	edges := make(map[WaitEdge]struct{})
	for i := range m.stripes {
		s := &m.stripes[i]
		var localRes []ResourceState
		var localEdges []WaitEdge
		s.stableRead(func() bool {
			localRes = localRes[:0]
			localEdges = localEdges[:0]
			ok := true
			s.index.walk(func(res Resource, h *lockHead) {
				rs := ResourceState{Resource: res, Partition: i}
				var held []holderRef
				n := 0
				for e := h.holders.Load(); e != nil; e = e.next.Load() {
					if n++; n > observerWalkBound {
						ok = false
						return
					}
					t := e.txp.Load()
					if t == nil {
						continue
					}
					mode, short := e.loadState()
					held = append(held, holderRef{t.id, mode})
					rs.Holders = append(rs.Holders, HolderInfo{
						Tx: t.id, Mode: m.table.Name(mode), Short: short,
					})
				}
				sort.Slice(rs.Holders, func(a, b int) bool { return rs.Holders[a].Tx < rs.Holders[b].Tx })
				q := h.queueLocked() // atomic load; "Locked" is about mutating it
				for qi, r := range q {
					rt := r.txp.Load()
					if rt == nil {
						continue
					}
					rs.Waiters = append(rs.Waiters, WaiterInfo{
						Tx: rt.id, Mode: m.table.Name(r.target()), Conversion: r.conversion(),
					})
					// The waiter's wait-for edges: incompatible holders and
					// everyone queued ahead (the per-head successor rule the
					// deadlock detector uses).
					for _, hd := range held {
						if hd.id != rt.id && !m.table.Compatible(hd.mode, r.target()) {
							localEdges = append(localEdges, WaitEdge{From: rt.id, To: hd.id})
						}
					}
					for _, a := range q[:qi] {
						if at := a.txp.Load(); at != nil && at.id != rt.id {
							localEdges = append(localEdges, WaitEdge{From: rt.id, To: at.id})
						}
					}
				}
				if len(rs.Holders) == 0 && len(rs.Waiters) == 0 {
					return // empty head kept for reuse; not a locked resource
				}
				localRes = append(localRes, rs)
			})
			return ok
		})
		snap.Resources = append(snap.Resources, localRes...)
		for _, e := range localEdges {
			edges[e] = struct{}{}
		}
	}
	for e := range edges {
		snap.WaitFor = append(snap.WaitFor, e)
	}
	sort.Slice(snap.Resources, func(i, j int) bool {
		return snap.Resources[i].Resource < snap.Resources[j].Resource
	})
	sort.Slice(snap.WaitFor, func(i, j int) bool {
		if snap.WaitFor[i].From != snap.WaitFor[j].From {
			return snap.WaitFor[i].From < snap.WaitFor[j].From
		}
		return snap.WaitFor[i].To < snap.WaitFor[j].To
	})
	return snap
}

// Render writes a human-readable dump of the snapshot. The output is
// deterministic for a given table state (resources sorted by name, holders
// by transaction, edges deduplicated and sorted), so it is safe to compare
// against golden text in tests.
func (s Snapshot) Render(w io.Writer) {
	fmt.Fprintf(w, "lock table snapshot (%d resources, %d wait edges)\n",
		len(s.Resources), len(s.WaitFor))
	for _, rs := range s.Resources {
		fmt.Fprintf(w, "  %q:", string(rs.Resource))
		for _, h := range rs.Holders {
			dur := ""
			if h.Short {
				dur = " short"
			}
			fmt.Fprintf(w, " held(tx%d %s%s)", h.Tx, h.Mode, dur)
		}
		for _, q := range rs.Waiters {
			conv := ""
			if q.Conversion {
				conv = " conv"
			}
			fmt.Fprintf(w, " wait(tx%d %s%s)", q.Tx, q.Mode, conv)
		}
		fmt.Fprintln(w)
	}
	for _, e := range s.WaitFor {
		fmt.Fprintf(w, "  tx%d -> tx%d\n", e.From, e.To)
	}
}

// LeakCheck audits the lock table for leftovers. After every transaction
// has committed or aborted the table must be empty: a surviving holder or
// waiter means a release path was skipped. (Empty heads retained for
// fast-path reuse are not leaks.) The TaMix harness runs this audit at the
// end of every run, next to the document's Verify.
func (m *Manager) LeakCheck() error {
	var leaked []string
	total := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		var lt int
		var ll []string
		s.stableRead(func() bool {
			lt, ll = 0, ll[:0]
			ok := true
			s.index.walk(func(res Resource, h *lockHead) {
				busy := h.waitq.Load() != nil
				if !busy {
					n := 0
					for e := h.holders.Load(); e != nil; e = e.next.Load() {
						if n++; n > observerWalkBound {
							ok = false
							return
						}
						if e.txp.Load() != nil {
							busy = true
							break
						}
					}
				}
				if busy {
					lt++
					if len(ll) < 8 {
						ll = append(ll, string(res))
					}
				}
			})
			return ok
		})
		total += lt
		for _, r := range ll {
			if len(leaked) < 8 {
				leaked = append(leaked, r)
			}
		}
	}
	if total == 0 {
		return nil
	}
	sort.Strings(leaked)
	return fmt.Errorf("lock: leak audit: %d resources still locked after all transactions finished (e.g. %q)", total, leaked)
}

// ActiveResources returns the number of resources currently carrying locks
// (holders or waiters; retained empty heads don't count).
func (m *Manager) ActiveResources() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		var c int
		s.stableRead(func() bool {
			c = 0
			ok := true
			s.index.walk(func(_ Resource, h *lockHead) {
				if h.waitq.Load() != nil {
					c++
					return
				}
				cnt := 0
				for e := h.holders.Load(); e != nil; e = e.next.Load() {
					if cnt++; cnt > observerWalkBound {
						ok = false
						return
					}
					if e.txp.Load() != nil {
						c++
						return
					}
				}
			})
			return ok
		})
		n += c
	}
	return n
}
