package lock

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Diagnostics: snapshot and render the live lock table — the kind of
// information the paper's XTCdeadlockDetector gathers when a deadlock
// strikes (active transactions, locks held, state of the wait-for graph).

// HolderInfo describes one granted lock in a snapshot.
type HolderInfo struct {
	Tx    TxID
	Mode  string
	Short bool
}

// WaiterInfo describes one queued request in a snapshot.
type WaiterInfo struct {
	Tx         TxID
	Mode       string
	Conversion bool
}

// ResourceState is the snapshot of one lock-table entry.
type ResourceState struct {
	Resource  Resource
	Partition int
	Holders   []HolderInfo
	Waiters   []WaiterInfo
}

// WaitEdge is one edge of the derived wait-for graph.
type WaitEdge struct {
	From, To TxID
}

// Snapshot captures the entire lock table and the derived wait-for graph at
// one instant. It is consistent (taken with every partition mutex held, in
// ascending order — the same cross-partition discipline the deadlock
// detector uses) but immediately stale; use it for diagnostics only. All
// slices are sorted and the wait-for edges deduplicated, so rendering the
// same table state always produces identical output.
type Snapshot struct {
	Taken      time.Time
	Partitions int
	Resources  []ResourceState
	WaitFor    []WaitEdge
}

// Snapshot captures the current lock-table state.
func (m *Manager) Snapshot() Snapshot {
	m.lockAllStripes()
	defer m.unlockAllStripes()
	snap := Snapshot{Taken: time.Now(), Partitions: len(m.stripes)}
	waiting, _ := m.waitingRequestsLocked()
	edges := make(map[WaitEdge]struct{})
	for i := range m.stripes {
		for res, h := range m.stripes[i].locks {
			rs := ResourceState{Resource: res, Partition: i}
			for _, e := range h.granted {
				rs.Holders = append(rs.Holders, HolderInfo{
					Tx: e.tx.id, Mode: m.table.Name(e.mode), Short: e.short,
				})
			}
			sort.Slice(rs.Holders, func(a, b int) bool { return rs.Holders[a].Tx < rs.Holders[b].Tx })
			for _, r := range h.queue {
				rs.Waiters = append(rs.Waiters, WaiterInfo{
					Tx: r.tx.id, Mode: m.table.Name(r.target), Conversion: r.conversion,
				})
				for _, succ := range m.successorsLocked(r.tx, waiting) {
					edges[WaitEdge{From: r.tx.id, To: succ.id}] = struct{}{}
				}
			}
			snap.Resources = append(snap.Resources, rs)
		}
	}
	for e := range edges {
		snap.WaitFor = append(snap.WaitFor, e)
	}
	sort.Slice(snap.Resources, func(i, j int) bool {
		return snap.Resources[i].Resource < snap.Resources[j].Resource
	})
	sort.Slice(snap.WaitFor, func(i, j int) bool {
		if snap.WaitFor[i].From != snap.WaitFor[j].From {
			return snap.WaitFor[i].From < snap.WaitFor[j].From
		}
		return snap.WaitFor[i].To < snap.WaitFor[j].To
	})
	return snap
}

// Render writes a human-readable dump of the snapshot. The output is
// deterministic for a given table state (resources sorted by name, holders
// by transaction, edges deduplicated and sorted), so it is safe to compare
// against golden text in tests.
func (s Snapshot) Render(w io.Writer) {
	fmt.Fprintf(w, "lock table snapshot (%d resources, %d wait edges)\n",
		len(s.Resources), len(s.WaitFor))
	for _, rs := range s.Resources {
		fmt.Fprintf(w, "  %q:", string(rs.Resource))
		for _, h := range rs.Holders {
			dur := ""
			if h.Short {
				dur = " short"
			}
			fmt.Fprintf(w, " held(tx%d %s%s)", h.Tx, h.Mode, dur)
		}
		for _, q := range rs.Waiters {
			conv := ""
			if q.Conversion {
				conv = " conv"
			}
			fmt.Fprintf(w, " wait(tx%d %s%s)", q.Tx, q.Mode, conv)
		}
		fmt.Fprintln(w)
	}
	for _, e := range s.WaitFor {
		fmt.Fprintf(w, "  tx%d -> tx%d\n", e.From, e.To)
	}
}

// LeakCheck audits the lock table for leftovers. After every transaction
// has committed or aborted the table must be empty: a surviving holder or
// waiter means a release path was skipped. The TaMix harness runs this
// audit at the end of every run, next to the document's Verify.
func (m *Manager) LeakCheck() error {
	var leaked []string
	total := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		for res, h := range s.locks {
			if len(h.granted) > 0 || len(h.queue) > 0 {
				total++
				if len(leaked) < 8 {
					leaked = append(leaked, string(res))
				}
			}
		}
		s.mu.Unlock()
	}
	if total == 0 {
		return nil
	}
	sort.Strings(leaked)
	return fmt.Errorf("lock: leak audit: %d resources still locked after all transactions finished (e.g. %q)", total, leaked)
}

// ActiveResources returns the number of resources currently carrying locks.
func (m *Manager) ActiveResources() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		n += len(s.locks)
		s.mu.Unlock()
	}
	return n
}
