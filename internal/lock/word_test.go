package lock

import (
	"fmt"
	"testing"
)

// TestPackedWordMatchesMatrix checks the packed-word compatibility test
// against the test table's matrix for every (held-group, requested) pair:
// the single AND over the group's word must equal the conjunction of the
// per-holder matrix answers, for every subset of held modes.
func TestPackedWordMatchesMatrix(t *testing.T) {
	table := testTable()
	ft := newFastTable(table)
	if ft == nil {
		t.Fatal("test table should support the fast path")
	}
	n := table.NumModes()
	for set := 0; set < 1<<(n-1); set++ {
		var word uint64
		for h := 1; h < n; h++ {
			if set&(1<<(h-1)) != 0 {
				word |= ft.bit[h]
			}
		}
		for r := 1; r < n; r++ {
			want := true
			for h := 1; h < n; h++ {
				if set&(1<<(h-1)) != 0 && !table.Compatible(Mode(h), Mode(r)) {
					want = false
				}
			}
			if got := word&ft.incompat[r] == 0; got != want {
				t.Errorf("group %b, request %s: word test %v, matrix %v",
					set, table.Name(Mode(r)), got, want)
			}
		}
	}
	if err := VerifyPackedCompat(table); err != nil {
		t.Errorf("VerifyPackedCompat: %v", err)
	}
}

// TestPackedWordRejectsSpecials pins the guard rows: ModeNone and
// out-of-range modes must never pass the fast-path compatibility test, even
// against an empty group.
func TestPackedWordRejectsSpecials(t *testing.T) {
	ft := newFastTable(testTable())
	for _, r := range []int{0, testTable().NumModes(), maxFastModes} {
		if uint64(0)&ft.incompat[r] == 0 && ft.incompat[r] != ^uint64(0) {
			t.Errorf("mode %d has a grantable incompat mask %#x", r, ft.incompat[r])
		}
	}
}

// oversizeTable builds a valid table with more modes than the packed word
// can hold (everything compatible; conversion = max).
func oversizeTable(n int) *Table {
	names := make([]string, n)
	compat := make([][]bool, n)
	conv := make([][]Mode, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("m%d", i)
		compat[i] = make([]bool, n)
		conv[i] = make([]Mode, n)
		for j := 0; j < n; j++ {
			compat[i][j] = i > 0 && j > 0
			c := Mode(i)
			if j > i {
				c = Mode(j)
			}
			conv[i][j] = c
		}
	}
	return NewTable(names, compat, conv)
}

// TestOversizedTableRunsSlowPathOnly checks that a table with more modes
// than the word can encode disables the fast path (no fastTable, heads stay
// sealed) while the manager keeps working through the slow path.
func TestOversizedTableRunsSlowPathOnly(t *testing.T) {
	table := oversizeTable(maxFastModes + 10)
	if newFastTable(table) != nil {
		t.Fatal("oversized table must not build a fastTable")
	}
	if err := VerifyPackedCompat(table); err != nil {
		t.Fatalf("VerifyPackedCompat must be a no-op for oversized tables: %v", err)
	}
	m := NewManager(table, Options{})
	defer m.Close()
	if m.ft != nil {
		t.Fatal("manager built a fastTable for an oversized table")
	}
	t1, t2 := m.Begin(), m.Begin()
	if err := m.Lock(t1, "res", Mode(50), false); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(t2, "res", Mode(55), false); err != nil {
		t.Fatal(err)
	}
	// Re-request: the per-tx cache works without the fast path.
	if err := m.Lock(t1, "res", Mode(50), false); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", st.CacheHits)
	}
	m.ReleaseAll(t1)
	m.ReleaseAll(t2)
	if err := m.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// FuzzModeCompat cross-checks the packed-word encoding against arbitrary
// compatibility matrices: for random tables, every (held-subset, request)
// answer of the word test must match the matrix conjunction. The conversion
// matrix is irrelevant to the encoding, so the fuzzer fixes it to max(h, r).
func FuzzModeCompat(f *testing.F) {
	f.Add(uint8(5), []byte{0xff, 0x0f, 0xa5})
	f.Add(uint8(2), []byte{0x01})
	f.Add(uint8(10), []byte{0x00})
	f.Add(uint8(48), []byte{0x35, 0x29, 0xfe, 0x11})
	f.Fuzz(func(t *testing.T, nModes uint8, bits []byte) {
		n := 2 + int(nModes)%47 // 2..48 modes incl. ModeNone => fast path active
		names := make([]string, n)
		compat := make([][]bool, n)
		conv := make([][]Mode, n)
		bit := func(k int) bool {
			if len(bits) == 0 {
				return false
			}
			return bits[(k/8)%len(bits)]&(1<<(k%8)) != 0
		}
		k := 0
		for i := 0; i < n; i++ {
			names[i] = fmt.Sprintf("m%d", i)
			compat[i] = make([]bool, n)
			conv[i] = make([]Mode, n)
			for j := 0; j < n; j++ {
				if i > 0 && j > 0 {
					compat[i][j] = bit(k)
					k++
				}
				c := Mode(i)
				if j > i {
					c = Mode(j)
				}
				conv[i][j] = c
			}
		}
		table := NewTable(names, compat, conv)
		if err := VerifyPackedCompat(table); err != nil {
			t.Fatal(err)
		}
		ft := newFastTable(table)
		if ft == nil {
			t.Fatalf("no fastTable for %d modes", n)
		}
		// Spot-check random group subsets (exhaustive for small n).
		subsets := 1 << (n - 1)
		step := 1
		if subsets > 1<<12 {
			step = subsets / (1 << 12)
		}
		for set := 0; set < subsets; set += step {
			var word uint64
			for h := 1; h < n; h++ {
				if set&(1<<(h-1)) != 0 {
					word |= ft.bit[h]
				}
			}
			for r := 1; r < n; r++ {
				want := true
				for h := 1; h < n; h++ {
					if set&(1<<(h-1)) != 0 && !table.Compatible(Mode(h), Mode(r)) {
						want = false
						break
					}
				}
				if got := word&ft.incompat[r] == 0; got != want {
					t.Fatalf("n=%d group=%b request=%d: word %v, matrix %v", n, set, r, got, want)
				}
			}
		}
	})
}
