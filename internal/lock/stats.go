package lock

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Stats are monotonic counters describing lock-manager activity. They feed
// the paper's performance metrics (lock requests, blocks, deadlocks). The
// counters are maintained as atomics, so reading them never touches any
// lock-table partition mutex; Stats is the torn-read-free snapshot type.
type Stats struct {
	Requests            uint64
	CacheHits           uint64 // requests satisfied by the per-tx lock cache
	ImmediateGrants     uint64
	Waits               uint64
	Conversions         uint64
	Deadlocks           uint64
	ConversionDeadlocks uint64
	SubtreeDeadlocks    uint64
	Timeouts            uint64
	// Canceled counts lock waits abandoned by context cancellation
	// (disconnected sessions, per-request deadlines).
	Canceled uint64
}

// counters is the live atomic form of Stats.
type counters struct {
	requests            atomic.Uint64
	cacheHits           atomic.Uint64
	immediateGrants     atomic.Uint64
	waits               atomic.Uint64
	conversions         atomic.Uint64
	deadlocks           atomic.Uint64
	conversionDeadlocks atomic.Uint64
	subtreeDeadlocks    atomic.Uint64
	timeouts            atomic.Uint64
	canceled            atomic.Uint64

	// fastGrants counts immediate grants that took the CAS fast path (a
	// subset of immediateGrants, already included there). Not part of
	// Stats — it describes *how* grants happened, not lock semantics — but
	// exported through the metrics registry for observability.
	fastGrants atomic.Uint64
}

// snapshot loads every counter. Each field is individually consistent;
// cross-field relations (e.g. Requests >= Waits) may be momentarily off by
// in-flight operations, which is inherent to mutex-free reads.
//
// A cache hit is by definition also a request and an immediate grant, so
// the hot path increments only cacheHits and the other two totals are
// derived here — one atomic add per hit instead of three.
func (c *counters) snapshot() Stats {
	ch := c.cacheHits.Load()
	return Stats{
		Requests:            c.requests.Load() + ch,
		CacheHits:           ch,
		ImmediateGrants:     c.immediateGrants.Load() + ch,
		Waits:               c.waits.Load(),
		Conversions:         c.conversions.Load(),
		Deadlocks:           c.deadlocks.Load(),
		ConversionDeadlocks: c.conversionDeadlocks.Load(),
		SubtreeDeadlocks:    c.subtreeDeadlocks.Load(),
		Timeouts:            c.timeouts.Load(),
		Canceled:            c.canceled.Load(),
	}
}

// Stats returns a snapshot of the counters. It never blocks on the lock
// table.
func (m *Manager) Stats() Stats {
	return m.stats.snapshot()
}

// registerCounters unifies the manager's atomic counters onto a metrics
// registry as computed values: the hot path keeps its single-atomic-add
// discipline and the registry reads the same atomics at snapshot time
// (including the derived request/immediate-grant totals — see snapshot).
func (m *Manager) registerCounters(reg *metrics.Registry) {
	reg.Func("lock.requests", func() uint64 { return m.stats.requests.Load() + m.stats.cacheHits.Load() })
	reg.Func("lock.cache_hits", m.stats.cacheHits.Load)
	reg.Func("lock.immediate_grants", func() uint64 { return m.stats.immediateGrants.Load() + m.stats.cacheHits.Load() })
	reg.Func("lock.waits", m.stats.waits.Load)
	reg.Func("lock.conversions", m.stats.conversions.Load)
	reg.Func("lock.deadlocks", m.stats.deadlocks.Load)
	reg.Func("lock.conversion_deadlocks", m.stats.conversionDeadlocks.Load)
	reg.Func("lock.subtree_deadlocks", m.stats.subtreeDeadlocks.Load)
	reg.Func("lock.timeouts", m.stats.timeouts.Load)
	reg.Func("lock.canceled", m.stats.canceled.Load)
	reg.Func("lock.fast_grants", m.stats.fastGrants.Load)
}
