package lock

import (
	"fmt"
	"sync"
	"testing"
)

// benchSystem abstracts one lock-manager configuration so the contention
// benchmark drives each through the same workload: a transaction "walks" a
// five-level ancestor path in intention mode and then locks its own leaf —
// the navigation pattern the XML protocols issue on every operation.
type benchSystem[T any] struct {
	begin   func() T
	walk    func(tx T, ancestors []Resource, leaf Resource) error
	release func(tx T)
}

// benchScenario shapes the walk stream. turnover is how many walks a
// transaction performs before committing (its cache dies with it); leavesPer
// is how many distinct leaves each goroutine cycles through, so smaller
// values revisit leaves sooner.
type benchScenario struct {
	turnover  int
	leavesPer int
}

var benchScenarios = []struct {
	name string
	benchScenario
}{
	// turnover: transactions commit every 64 walks and caches are rebuilt
	// from scratch — a mixed stream of fresh grants, cache hits, and full
	// release cycles.
	{"turnover", benchScenario{turnover: 64, leavesPer: 32}},
	// warm: one long transaction re-traversing its working set — the
	// repeat-traversal hot path. Real protocol streams are dominated by it:
	// every operation re-locks the target's full ancestor path, so ancestor
	// re-requests outnumber first requests (50-60% cache-hit rates in the
	// tamix contest runs).
	{"warm", benchScenario{turnover: 1 << 30, leavesPer: 4}},
}

// benchContention measures path-walks per second under the given scenario.
func benchContention[T any](b *testing.B, goroutines int, sc benchScenario, sys benchSystem[T]) {
	ancestors := []Resource{
		"bench/r",
		"bench/r/a",
		"bench/r/a/b",
		"bench/r/a/b/c",
		"bench/r/a/b/c/d",
	}
	leaves := make([][]Resource, goroutines)
	for g := range leaves {
		leaves[g] = make([]Resource, sc.leavesPer)
		for j := range leaves[g] {
			leaves[g][j] = Resource(fmt.Sprintf("bench/r/a/b/c/d/leaf-%d-%d", g, j))
		}
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := b.N / goroutines
			if g < b.N%goroutines {
				n++
			}
			tx := sys.begin()
			for i := 0; i < n; i++ {
				if i%sc.turnover == sc.turnover-1 {
					sys.release(tx)
					tx = sys.begin()
				}
				if err := sys.walk(tx, ancestors, leaves[g][i%sc.leavesPer]); err != nil {
					b.Errorf("walk: %v", err)
					return
				}
			}
			sys.release(tx)
		}(g)
	}
	wg.Wait()
}

// BenchmarkLockTableContention compares the locking hot path before and
// after the refactor under increasing goroutine counts:
//
//   - striped-batch: the new path — LockBatch over the ancestor path plus
//     leaf, answered mostly by the per-transaction cache (this is what the
//     protocol layer now issues via lockPathAndNode)
//   - striped-lock: the new table through the old call pattern, one Lock
//     per node
//   - singlemutex: the seed design, kept verbatim as the equivalence
//     oracle — one global mutex, one Lock call per node
//
// One benchmark op is one path-walk: five intention locks plus a leaf lock.
func BenchmarkLockTableContention(b *testing.B) {
	for _, sc := range benchScenarios {
		for _, g := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/striped-batch/goroutines=%d", sc.name, g), func(b *testing.B) {
				m := NewManager(testTable(), Options{})
				defer m.Close()
				// batchTx pairs the transaction with a request scratch
				// buffer, as the protocol layer's Ctx does on the real hot
				// path.
				type batchTx struct {
					tx   *Tx
					reqs []Req
				}
				benchContention(b, g, sc.benchScenario, benchSystem[*batchTx]{
					begin: func() *batchTx { return &batchTx{tx: m.Begin(), reqs: make([]Req, 0, 8)} },
					walk: func(bt *batchTx, ancestors []Resource, leaf Resource) error {
						reqs := bt.reqs[:0]
						for _, res := range ancestors {
							reqs = append(reqs, Req{Res: res, Mode: tIS})
						}
						reqs = append(reqs, Req{Res: leaf, Mode: tS})
						return m.LockBatch(bt.tx, reqs)
					},
					release: func(bt *batchTx) { m.ReleaseAll(bt.tx) },
				})
			})
			b.Run(fmt.Sprintf("%s/striped-lock/goroutines=%d", sc.name, g), func(b *testing.B) {
				m := NewManager(testTable(), Options{})
				defer m.Close()
				benchContention(b, g, sc.benchScenario, benchSystem[*Tx]{
					begin:   m.Begin,
					walk:    func(tx *Tx, ancestors []Resource, leaf Resource) error { return seqWalk(m.Lock, tx, ancestors, leaf) },
					release: m.ReleaseAll,
				})
			})
			b.Run(fmt.Sprintf("%s/singlemutex/goroutines=%d", sc.name, g), func(b *testing.B) {
				m := newOracleManager(testTable(), Options{})
				benchContention(b, g, sc.benchScenario, benchSystem[*oracleTx]{
					begin: m.Begin,
					walk: func(tx *oracleTx, ancestors []Resource, leaf Resource) error {
						return seqWalk(m.Lock, tx, ancestors, leaf)
					},
					release: m.ReleaseAll,
				})
			})
		}
	}
}

func seqWalk[T any](lock func(T, Resource, Mode, bool) error, tx T, ancestors []Resource, leaf Resource) error {
	for _, res := range ancestors {
		if err := lock(tx, res, tIS, false); err != nil {
			return err
		}
	}
	return lock(tx, leaf, tS, false)
}
