package lock

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file carries the ORACLE for the model-based equivalence test in
// equivalence_test.go: a faithful copy of the pre-striping lock manager (one
// global mutex, inline at-block-time deadlock detection). The striped
// manager must be observationally equivalent to it — same grants, same
// blocks, same deadlock victims, same statistics.
//
// The only deliberate change from the seed implementation: successorsLocked
// sorts its result by TxID. The seed iterated a Go map there, so its DFS
// order (and hence which of several simultaneously-closed cycles is found
// first) was nondeterministic run to run; fixing any order is consistent
// with seed semantics, and TxID order matches the striped detector's
// tie-break so both sides resolve multi-cycle situations identically.

type oracleTx struct {
	id  TxID
	mgr *oracleManager

	// All fields below are guarded by mgr.mu.
	held    map[Resource]*oracleEntry
	waiting *oracleRequest
	doomed  bool
	done    bool
}

func (tx *oracleTx) ID() TxID { return tx.id }

type oracleEntry struct {
	tx    *oracleTx
	mode  Mode
	short bool
}

type oracleRequest struct {
	tx         *oracleTx
	res        Resource
	target     Mode
	short      bool
	conversion bool
	result     chan error
}

type oracleHead struct {
	granted map[TxID]*oracleEntry
	queue   []*oracleRequest
}

type oracleManager struct {
	table   ModeTable
	timeout time.Duration
	onDL    func(DeadlockInfo)

	mu     sync.Mutex
	locks  map[Resource]*oracleHead
	nextTx uint64

	requests            atomic.Uint64
	immediateGrants     atomic.Uint64
	waits               atomic.Uint64
	conversions         atomic.Uint64
	deadlocks           atomic.Uint64
	conversionDeadlocks atomic.Uint64
	subtreeDeadlocks    atomic.Uint64
	timeouts            atomic.Uint64
}

func newOracleManager(table ModeTable, opts Options) *oracleManager {
	to := opts.Timeout
	if to <= 0 {
		to = DefaultTimeout
	}
	return &oracleManager{
		table:   table,
		timeout: to,
		onDL:    opts.OnDeadlock,
		locks:   make(map[Resource]*oracleHead),
	}
}

func (m *oracleManager) Begin() *oracleTx {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTx++
	return &oracleTx{id: TxID(m.nextTx), mgr: m, held: make(map[Resource]*oracleEntry)}
}

func (m *oracleManager) Stats() Stats {
	return Stats{
		Requests:            m.requests.Load(),
		ImmediateGrants:     m.immediateGrants.Load(),
		Waits:               m.waits.Load(),
		Conversions:         m.conversions.Load(),
		Deadlocks:           m.deadlocks.Load(),
		ConversionDeadlocks: m.conversionDeadlocks.Load(),
		SubtreeDeadlocks:    m.subtreeDeadlocks.Load(),
		Timeouts:            m.timeouts.Load(),
	}
}

func (m *oracleManager) head(res Resource) *oracleHead {
	h := m.locks[res]
	if h == nil {
		h = &oracleHead{granted: make(map[TxID]*oracleEntry)}
		m.locks[res] = h
	}
	return h
}

func (m *oracleManager) compatibleWithOthers(h *oracleHead, self TxID, mode Mode) bool {
	for id, e := range h.granted {
		if id == self {
			continue
		}
		if !m.table.Compatible(e.mode, mode) {
			return false
		}
	}
	return true
}

func (m *oracleManager) Lock(tx *oracleTx, res Resource, mode Mode, short bool) error {
	m.requests.Add(1)
	m.mu.Lock()
	if tx.done {
		m.mu.Unlock()
		return ErrTxDone
	}
	if tx.doomed {
		m.mu.Unlock()
		return ErrDeadlockVictim
	}
	h := m.head(res)
	var req *oracleRequest
	if entry := tx.held[res]; entry != nil {
		target := m.table.Convert(entry.mode, mode)
		if !short {
			entry.short = false
		}
		if target == entry.mode {
			m.mu.Unlock()
			m.immediateGrants.Add(1)
			return nil
		}
		m.conversions.Add(1)
		if m.compatibleWithOthers(h, tx.id, target) {
			entry.mode = target
			m.mu.Unlock()
			m.immediateGrants.Add(1)
			return nil
		}
		req = &oracleRequest{tx: tx, res: res, target: target, short: short, conversion: true, result: make(chan error, 1)}
		pos := 0
		for pos < len(h.queue) && h.queue[pos].conversion {
			pos++
		}
		h.queue = append(h.queue, nil)
		copy(h.queue[pos+1:], h.queue[pos:])
		h.queue[pos] = req
	} else {
		if len(h.queue) == 0 && m.compatibleWithOthers(h, tx.id, mode) {
			e := &oracleEntry{tx: tx, mode: mode, short: short}
			h.granted[tx.id] = e
			tx.held[res] = e
			m.mu.Unlock()
			m.immediateGrants.Add(1)
			return nil
		}
		req = &oracleRequest{tx: tx, res: res, target: mode, short: short, result: make(chan error, 1)}
		h.queue = append(h.queue, req)
	}

	tx.waiting = req
	m.waits.Add(1)
	victimIsMe := m.resolveDeadlocksLocked(tx)
	m.mu.Unlock()
	if victimIsMe {
		return <-req.result
	}

	timer := time.NewTimer(m.timeout)
	defer timer.Stop()
	select {
	case err := <-req.result:
		return err
	case <-timer.C:
		m.mu.Lock()
		select {
		case err := <-req.result:
			m.mu.Unlock()
			return err
		default:
		}
		m.removeRequestLocked(req)
		tx.waiting = nil
		m.mu.Unlock()
		m.timeouts.Add(1)
		return ErrLockTimeout
	}
}

func (m *oracleManager) removeRequestLocked(req *oracleRequest) {
	h := m.locks[req.res]
	if h == nil {
		return
	}
	for i, r := range h.queue {
		if r == req {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			break
		}
	}
	m.sweepLocked(h)
}

func (m *oracleManager) sweepLocked(h *oracleHead) {
	for len(h.queue) > 0 {
		req := h.queue[0]
		if req.tx.doomed || req.tx.done {
			h.queue = h.queue[1:]
			req.tx.waiting = nil
			req.result <- ErrDeadlockVictim
			continue
		}
		if req.conversion {
			entry := h.granted[req.tx.id]
			if entry == nil {
				req.conversion = false
				continue
			}
			if !m.compatibleWithOthers(h, req.tx.id, req.target) {
				return
			}
			entry.mode = req.target
			if !req.short {
				entry.short = false
			}
		} else {
			if !m.compatibleWithOthers(h, req.tx.id, req.target) {
				return
			}
			e := &oracleEntry{tx: req.tx, mode: req.target, short: req.short}
			h.granted[req.tx.id] = e
			req.tx.held[req.res] = e
		}
		h.queue = h.queue[1:]
		req.tx.waiting = nil
		req.result <- nil
	}
}

func (m *oracleManager) ReleaseAll(tx *oracleTx) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx.done = true
	if tx.waiting != nil {
		m.removeRequestLocked(tx.waiting)
		tx.waiting = nil
	}
	for res := range tx.held {
		h := m.locks[res]
		delete(h.granted, tx.id)
		delete(tx.held, res)
		m.sweepLocked(h)
		m.maybeDropHeadLocked(res, h)
	}
}

func (m *oracleManager) ReleaseShort(tx *oracleTx) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for res, e := range tx.held {
		if !e.short {
			continue
		}
		h := m.locks[res]
		delete(h.granted, tx.id)
		delete(tx.held, res)
		m.sweepLocked(h)
		m.maybeDropHeadLocked(res, h)
	}
}

func (m *oracleManager) maybeDropHeadLocked(res Resource, h *oracleHead) {
	if len(h.granted) == 0 && len(h.queue) == 0 {
		delete(m.locks, res)
	}
}

func (m *oracleManager) HeldMode(tx *oracleTx, res Resource) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := tx.held[res]; e != nil {
		return e.mode
	}
	return ModeNone
}

func (m *oracleManager) Waiting(tx *oracleTx) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return tx.waiting != nil
}

func (m *oracleManager) resolveDeadlocksLocked(tx *oracleTx) bool {
	for {
		cycle := m.findCycleLocked(tx)
		if cycle == nil {
			return false
		}
		victim := cycle[0]
		for _, member := range cycle {
			if member.id > victim.id {
				victim = member
			}
		}
		info := DeadlockInfo{Victim: victim.id}
		for _, member := range cycle {
			info.Members = append(info.Members, member.id)
			if member.waiting != nil {
				info.Resources = append(info.Resources, member.waiting.res)
				if member.waiting.conversion {
					info.Conversion = true
				}
			} else {
				info.Resources = append(info.Resources, "")
			}
		}
		m.deadlocks.Add(1)
		if info.Conversion {
			m.conversionDeadlocks.Add(1)
		} else {
			m.subtreeDeadlocks.Add(1)
		}
		if m.onDL != nil {
			m.onDL(info)
		}
		m.abortVictimLocked(victim)
		if victim == tx {
			return true
		}
	}
}

func (m *oracleManager) findCycleLocked(start *oracleTx) []*oracleTx {
	type frame struct {
		tx    *oracleTx
		succs []*oracleTx
		next  int
	}
	visited := map[TxID]bool{}
	stack := []frame{{tx: start, succs: m.successorsLocked(start)}}
	onPath := map[TxID]bool{start.id: true}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succs) {
			onPath[f.tx.id] = false
			stack = stack[:len(stack)-1]
			continue
		}
		succ := f.succs[f.next]
		f.next++
		if succ == start {
			cycle := make([]*oracleTx, 0, len(stack))
			for i := range stack {
				cycle = append(cycle, stack[i].tx)
			}
			return cycle
		}
		if visited[succ.id] || onPath[succ.id] {
			continue
		}
		visited[succ.id] = true
		onPath[succ.id] = true
		stack = append(stack, frame{tx: succ, succs: m.successorsLocked(succ)})
	}
	return nil
}

func (m *oracleManager) successorsLocked(w *oracleTx) []*oracleTx {
	if w.waiting == nil {
		return nil
	}
	req := w.waiting
	h := m.locks[req.res]
	if h == nil {
		return nil
	}
	var out []*oracleTx
	seen := map[TxID]bool{w.id: true}
	for id, e := range h.granted {
		if id == w.id || seen[id] {
			continue
		}
		if !m.table.Compatible(e.mode, req.target) {
			seen[id] = true
			out = append(out, e.tx)
		}
	}
	for _, r := range h.queue {
		if r == req {
			break
		}
		if !seen[r.tx.id] {
			seen[r.tx.id] = true
			out = append(out, r.tx)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

func (m *oracleManager) abortVictimLocked(victim *oracleTx) {
	victim.doomed = true
	if req := victim.waiting; req != nil {
		victim.waiting = nil
		m.removeRequestLocked(req)
		req.result <- ErrDeadlockVictim
	}
}
