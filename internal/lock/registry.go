package lock

import "sync/atomic"

// headIndex is a per-stripe resource→lockHead index readable without the
// stripe mutex — the lock-free registry the fast path resolves resources
// through (the apache-lucy LockFreeRegistry shape: atomic bucket chains,
// insert-by-CAS-visible-publish, reads never block). All *mutations* happen
// under the stripe mutex, which is what keeps the structure simple: readers
// only ever follow atomic pointers, and a reader racing a grow or an unlink
// at worst misses an entry — a miss sends the request to the slow path,
// which re-resolves under the mutex, so a stale view is never wrong, only
// slow.
//
// Slots are never reused for a different resource, so a stale reader cannot
// be redirected to the wrong head (the ABA that makes pooled heads unsound —
// lock heads are therefore never pooled either).
type headSlot struct {
	hash uint64
	res  Resource
	head *lockHead
	next atomic.Pointer[headSlot]
}

type headBuckets struct {
	mask  uint64
	slots []atomic.Pointer[headSlot]
}

type headIndex struct {
	buckets atomic.Pointer[headBuckets]
	count   int // live slots; guarded by the stripe mutex
}

// bucketOf picks the bucket from the high hash bits: the low bits already
// chose the stripe, so they are constant within one index.
func (b *headBuckets) bucketOf(hash uint64) *atomic.Pointer[headSlot] {
	return &b.slots[(hash>>32)&b.mask]
}

func (ix *headIndex) init() {
	b := &headBuckets{mask: 7, slots: make([]atomic.Pointer[headSlot], 8)}
	ix.buckets.Store(b)
}

// lookup resolves res without any mutex. Safe concurrently with mutations;
// may return nil (or a sealed dead head) while a mutation is in flight —
// both divert the caller to the slow path.
func (ix *headIndex) lookup(res Resource, hash uint64) *lockHead {
	b := ix.buckets.Load()
	for sl := b.bucketOf(hash).Load(); sl != nil; sl = sl.next.Load() {
		if sl.hash == hash && sl.res == res {
			return sl.head
		}
	}
	return nil
}

// insertLocked publishes a new head. Caller holds the stripe mutex and has
// checked res is absent.
func (ix *headIndex) insertLocked(res Resource, hash uint64, h *lockHead) {
	b := ix.buckets.Load()
	if ix.count >= 2*len(b.slots) {
		b = ix.growLocked(b)
	}
	bucket := b.bucketOf(hash)
	sl := &headSlot{hash: hash, res: res, head: h}
	sl.next.Store(bucket.Load())
	bucket.Store(sl) // publish: the slot is fully initialized before this
	ix.count++
}

// growLocked doubles the bucket array twice over. Existing slots are left
// untouched (readers mid-walk on the old array keep a complete, merely
// stale view); the new array gets fresh slot objects.
func (ix *headIndex) growLocked(old *headBuckets) *headBuckets {
	nb := &headBuckets{mask: uint64(len(old.slots))*4 - 1,
		slots: make([]atomic.Pointer[headSlot], len(old.slots)*4)}
	for i := range old.slots {
		for sl := old.slots[i].Load(); sl != nil; sl = sl.next.Load() {
			bucket := nb.bucketOf(sl.hash)
			ns := &headSlot{hash: sl.hash, res: sl.res, head: sl.head}
			ns.next.Store(bucket.Load())
			bucket.Store(ns)
		}
	}
	ix.buckets.Store(nb)
	return nb
}

// removeLocked unlinks res. Caller holds the stripe mutex. A concurrent
// reader that already loaded the slot still sees its (dead-sealed) head;
// the seal diverts it to the slow path.
func (ix *headIndex) removeLocked(res Resource, hash uint64) {
	b := ix.buckets.Load()
	prev := b.bucketOf(hash)
	for sl := prev.Load(); sl != nil; sl = prev.Load() {
		if sl.hash == hash && sl.res == res {
			prev.Store(sl.next.Load())
			ix.count--
			return
		}
		prev = &sl.next
	}
}

// walk visits every (resource, head) pair. Safe both under the stripe mutex
// (exact) and lock-free (stale-but-typed; callers pair it with the stripe
// seqlock for stability).
func (ix *headIndex) walk(f func(res Resource, h *lockHead)) {
	b := ix.buckets.Load()
	for i := range b.slots {
		for sl := b.slots[i].Load(); sl != nil; sl = sl.next.Load() {
			f(sl.res, sl.head)
		}
	}
}
