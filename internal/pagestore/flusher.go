package pagestore

import "time"

// Background flusher: a goroutine that periodically trickles dirty,
// unpinned, resident frames to the backend so that CLOCK eviction almost
// always finds clean victims and a Fix miss rarely stalls on a synchronous
// write-back. Every trickled write goes through the same writeBack path as
// eviction, so the WAL rule (FlushTo before the page image leaves the
// buffer) and the transient-retry policy apply unchanged. A failed trickle
// leaves the frame dirty — it is simply retried on a later pass or, at the
// latest, by the evictor — and is counted in Stats.FlusherErrors.
//
// The same goroutine also drives fuzzy checkpoints: when a checkpoint
// interval is configured and a checkpointer has been installed (see
// SetCheckpointer), each checkpoint tick invokes it. Checkpoint errors are
// swallowed here — the WAL layer owns checkpoint bookkeeping and a failed
// checkpoint merely delays truncation; the next tick retries.

// startFlusher launches the background flusher goroutine. Either interval
// may be zero, which disables that duty (a nil ticker channel never fires).
func (s *Store) startFlusher(flushEvery, ckptEvery time.Duration) {
	s.flusherStop = make(chan struct{})
	s.flusherWG.Add(1)
	go func() {
		defer s.flusherWG.Done()
		var flushC, ckptC <-chan time.Time
		if flushEvery > 0 {
			t := time.NewTicker(flushEvery)
			defer t.Stop()
			flushC = t.C
		}
		if ckptEvery > 0 {
			t := time.NewTicker(ckptEvery)
			defer t.Stop()
			ckptC = t.C
		}
		for {
			select {
			case <-s.flusherStop:
				return
			case <-flushC:
				s.FlushDirty()
				// Retire version-chain entries below the oldest active
				// snapshot on the same cadence (no-op when versioning is
				// off: the watermark reads 0).
				s.PruneVersions(s.snapshotWatermark())
			case <-ckptC:
				if fn := s.checkpointer.Load(); fn != nil {
					_ = (*fn)()
				}
			}
		}
	}()
}

// stopFlusher terminates the flusher goroutine (if any) and waits for an
// in-flight pass to finish. Idempotent.
func (s *Store) stopFlusher() {
	if s.flusherStop == nil {
		return
	}
	s.flusherOnce.Do(func() { close(s.flusherStop) })
	s.flusherWG.Wait()
}

// FlushDirty performs one flusher pass over all shards: every frame that is
// dirty, unpinned, and resident is written back. Exported so tools and
// tests can force a pass; the background flusher calls it on every tick.
// Unlike Flush it skips pinned frames (their holders may be mutating the
// bytes) and does not sync the backend.
func (s *Store) FlushDirty() {
	for _, sh := range s.shards {
		sh.trickle()
	}
}

// trickle writes back the shard's dirty unpinned frames. Candidates are
// collected under the read lock; each is then claimed via the frameWriting
// protocol under its own latch, which re-validates the frame (it may have
// been pinned, evicted, or cleaned since the scan) and excludes concurrent
// evictors. Pins only appear under the frame latch, so the pins == 0 check
// inside the latch is authoritative: once the frame is in frameWriting no
// Fix can pin it until the write finishes.
func (sh *bufShard) trickle() {
	s := sh.store
	sh.mu.RLock()
	var cands []*Frame
	for _, f := range sh.frames {
		if f.dirty.Load() && f.pins.Load() == 0 {
			cands = append(cands, f)
		}
	}
	sh.mu.RUnlock()
	for _, f := range cands {
		f.mu.Lock()
		if f.state != frameResident || f.pins.Load() != 0 || !f.dirty.Load() {
			f.mu.Unlock()
			continue
		}
		f.state = frameWriting
		f.mu.Unlock()
		err := s.writeBack(f)
		f.mu.Lock()
		f.state = frameResident
		if err == nil {
			f.markClean()
			s.flusherWrites.Add(1)
		} else {
			s.flusherErrors.Add(1)
		}
		f.cond.Broadcast()
		f.mu.Unlock()
	}
}
