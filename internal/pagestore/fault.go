package pagestore

// Fault injection: a deterministic, seeded Backend wrapper that fails page
// operations on a schedule or by probability, plus the error-classification
// scheme the layers above use to decide between retrying (transient) and
// surfacing the failure (permanent). Native-XDBMS practice treats storage
// faults as first-class citizens of the design; this file makes every
// failure path of the engine an exercisable, testable path.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// FaultOp enumerates the backend operations fault injection can target.
type FaultOp int

const (
	// OpRead targets Backend.ReadPage.
	OpRead FaultOp = iota
	// OpWrite targets Backend.WritePage.
	OpWrite
	// OpSync targets Backend.Sync.
	OpSync
	// OpAllocate targets Backend.Allocate.
	OpAllocate

	numFaultOps
)

// String implements fmt.Stringer.
func (o FaultOp) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpAllocate:
		return "allocate"
	default:
		return fmt.Sprintf("FaultOp(%d)", int(o))
	}
}

// FaultClass classifies a failure for the retry machinery.
type FaultClass int

const (
	// ClassTransient faults may succeed when retried (dropped request,
	// momentary contention on the device).
	ClassTransient FaultClass = iota
	// ClassPermanent faults will not heal on retry (media failure, device
	// gone); the operation must be surfaced to the caller.
	ClassPermanent
)

// String implements fmt.Stringer.
func (c FaultClass) String() string {
	if c == ClassTransient {
		return "transient"
	}
	return "permanent"
}

// ErrInjectedFault is the sentinel every injected FaultError unwraps to.
var ErrInjectedFault = errors.New("pagestore: injected fault")

// FaultError is one injected backend failure, carrying its classification.
type FaultError struct {
	// Op is the failed operation.
	Op FaultOp
	// Page is the page operated on (InvalidPage for sync/allocate).
	Page PageID
	// Class is the failure classification.
	Class FaultClass
	// Torn marks a write that persisted only a prefix of the page (the
	// crash-mid-write failure mode).
	Torn bool
}

// Error implements error.
func (e *FaultError) Error() string {
	torn := ""
	if e.Torn {
		torn = " (torn)"
	}
	if e.Op == OpSync || e.Op == OpAllocate {
		return fmt.Sprintf("pagestore: injected %s %s fault%s", e.Class, e.Op, torn)
	}
	return fmt.Sprintf("pagestore: injected %s %s fault on page %d%s", e.Class, e.Op, e.Page, torn)
}

// Unwrap ties the error to ErrInjectedFault for errors.Is.
func (e *FaultError) Unwrap() error { return ErrInjectedFault }

// Transient reports whether a retry may succeed.
func (e *FaultError) Transient() bool { return e.Class == ClassTransient }

// Permanent reports whether the failure is known not to heal on retry.
func (e *FaultError) Permanent() bool { return e.Class == ClassPermanent }

// IsTransient reports whether err is classified transient: some error in
// its chain says Transient() == true before any says false. Unclassified
// errors (plain I/O errors, ErrPageOutOfRange) are not transient — retrying
// them blindly would mask bugs.
func IsTransient(err error) bool {
	var c interface{ Transient() bool }
	return errors.As(err, &c) && c.Transient()
}

// IsPermanent reports whether err is explicitly classified permanent.
func IsPermanent(err error) bool {
	var c interface{ Permanent() bool }
	return errors.As(err, &c) && c.Permanent()
}

// Classify names err's fault class for diagnostics: "transient",
// "permanent", or "unclassified".
func Classify(err error) string {
	switch {
	case IsTransient(err):
		return "transient"
	case IsPermanent(err):
		return "permanent"
	default:
		return "unclassified"
	}
}

// TornPrefix is how many leading bytes of the new page image a torn write
// persists; the tail keeps the previous content.
const TornPrefix = PageSize / 2

// ScheduledFault deterministically fails one specific operation.
type ScheduledFault struct {
	// Op selects the operation kind.
	Op FaultOp
	// N is the 1-based occurrence index of Op (counted while armed) to fail.
	N uint64
	// Class is the injected failure's classification.
	Class FaultClass
	// Torn additionally tears the page image (OpWrite only).
	Torn bool
}

// FaultConfig configures a FaultBackend. The zero value injects nothing.
type FaultConfig struct {
	// Seed drives the injection randomness; runs with equal seeds and equal
	// operation sequences inject identical faults.
	Seed int64
	// ReadProb, WriteProb, SyncProb, AllocProb are per-operation injection
	// probabilities in [0, 1).
	ReadProb, WriteProb, SyncProb, AllocProb float64
	// PermanentFraction is the fraction of probabilistically injected
	// faults classified permanent; the rest (and the zero value: all) are
	// transient.
	PermanentFraction float64
	// TornWrites makes every injected write fault also tear the page:
	// the first TornPrefix bytes of the new image are persisted over the
	// old content before the error returns.
	TornWrites bool
	// Schedule lists exact operations to fail, in addition to the
	// probabilistic injection.
	Schedule []ScheduledFault
}

// FaultStats counts operations seen and faults injected, indexed by FaultOp.
type FaultStats struct {
	// Ops counts operations that passed the armed injector.
	Ops [numFaultOps]uint64
	// Injected counts injected faults.
	Injected [numFaultOps]uint64
	// TornWrites counts writes that persisted a torn page image.
	TornWrites uint64
}

// TotalInjected sums injected faults across operations.
func (s FaultStats) TotalInjected() uint64 {
	var n uint64
	for _, v := range s.Injected {
		n += v
	}
	return n
}

// FaultBackend wraps a Backend and injects failures per its FaultConfig.
// It starts armed; Disarm/Arm bracket phases that must run fault-free
// (document generation, post-run verification). Operation counters advance
// only while armed, so the schedule is stable regardless of setup work.
type FaultBackend struct {
	inner Backend
	armed atomic.Bool

	mu    sync.Mutex
	rng   *rand.Rand
	cfg   FaultConfig
	sched map[FaultOp]map[uint64]ScheduledFault
	stats FaultStats
}

// NewFaultBackend wraps inner with seeded fault injection, armed.
func NewFaultBackend(inner Backend, cfg FaultConfig) *FaultBackend {
	b := &FaultBackend{
		inner: inner,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
		sched: make(map[FaultOp]map[uint64]ScheduledFault),
	}
	for _, sf := range cfg.Schedule {
		m := b.sched[sf.Op]
		if m == nil {
			m = make(map[uint64]ScheduledFault)
			b.sched[sf.Op] = m
		}
		m[sf.N] = sf
	}
	b.armed.Store(true)
	return b
}

// Arm enables injection.
func (b *FaultBackend) Arm() { b.armed.Store(true) }

// Disarm makes the backend a transparent pass-through.
func (b *FaultBackend) Disarm() { b.armed.Store(false) }

// Armed reports whether injection is enabled.
func (b *FaultBackend) Armed() bool { return b.armed.Load() }

// Inner returns the wrapped backend.
func (b *FaultBackend) Inner() Backend { return b.inner }

// Stats snapshots the injection counters.
func (b *FaultBackend) Stats() FaultStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// decide rolls the dice for one operation and returns the fault to inject,
// or nil. Counters only advance while armed.
func (b *FaultBackend) decide(op FaultOp, page PageID) *FaultError {
	if !b.armed.Load() {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Ops[op]++
	n := b.stats.Ops[op]
	if sf, ok := b.sched[op][n]; ok {
		b.stats.Injected[op]++
		return &FaultError{Op: op, Page: page, Class: sf.Class, Torn: sf.Torn && op == OpWrite}
	}
	var p float64
	switch op {
	case OpRead:
		p = b.cfg.ReadProb
	case OpWrite:
		p = b.cfg.WriteProb
	case OpSync:
		p = b.cfg.SyncProb
	case OpAllocate:
		p = b.cfg.AllocProb
	}
	if p <= 0 || b.rng.Float64() >= p {
		return nil
	}
	class := ClassTransient
	if b.cfg.PermanentFraction > 0 && b.rng.Float64() < b.cfg.PermanentFraction {
		class = ClassPermanent
	}
	b.stats.Injected[op]++
	return &FaultError{Op: op, Page: page, Class: class, Torn: op == OpWrite && b.cfg.TornWrites}
}

// ReadPage implements Backend.
func (b *FaultBackend) ReadPage(id PageID, buf []byte) error {
	if fe := b.decide(OpRead, id); fe != nil {
		return fe
	}
	return b.inner.ReadPage(id, buf)
}

// WritePage implements Backend. A torn fault persists the first TornPrefix
// bytes of buf over the page's old tail before failing — the half-written
// page a crash mid-write leaves behind. A retry that rewrites the full
// image heals it, which is exactly what the buffer manager's retry does.
func (b *FaultBackend) WritePage(id PageID, buf []byte) error {
	fe := b.decide(OpWrite, id)
	if fe == nil {
		return b.inner.WritePage(id, buf)
	}
	if fe.Torn {
		old := make([]byte, PageSize)
		if err := b.inner.ReadPage(id, old); err == nil {
			copy(old[:TornPrefix], buf[:TornPrefix])
			if err := b.inner.WritePage(id, old); err == nil {
				b.mu.Lock()
				b.stats.TornWrites++
				b.mu.Unlock()
			}
		}
	}
	return fe
}

// Allocate implements Backend.
func (b *FaultBackend) Allocate() (PageID, error) {
	if fe := b.decide(OpAllocate, InvalidPage); fe != nil {
		return InvalidPage, fe
	}
	return b.inner.Allocate()
}

// NumPages implements Backend.
func (b *FaultBackend) NumPages() PageID { return b.inner.NumPages() }

// Sync implements Backend.
func (b *FaultBackend) Sync() error {
	if fe := b.decide(OpSync, InvalidPage); fe != nil {
		return fe
	}
	return b.inner.Sync()
}

// Close implements Backend. Close is never injected: teardown must work.
func (b *FaultBackend) Close() error { return b.inner.Close() }
