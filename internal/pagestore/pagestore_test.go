package pagestore

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func backends(t *testing.T) map[string]Backend {
	t.Helper()
	fb, err := OpenFile(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"mem": NewMemBackend(), "file": fb}
}

func TestBackendReadWrite(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			id1, err := b.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			id2, err := b.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id1 == id2 {
				t.Fatal("Allocate returned duplicate IDs")
			}
			if b.NumPages() != 2 {
				t.Fatalf("NumPages = %d", b.NumPages())
			}
			buf := make([]byte, PageSize)
			for i := range buf {
				buf[i] = byte(i)
			}
			if err := b.WritePage(id2, buf); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, PageSize)
			if err := b.ReadPage(id2, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, got) {
				t.Error("read back mismatch")
			}
			// Fresh pages are zeroed.
			if err := b.ReadPage(id1, got); err != nil {
				t.Fatal(err)
			}
			for _, x := range got {
				if x != 0 {
					t.Fatal("fresh page not zeroed")
				}
			}
			// Out of range.
			if err := b.ReadPage(99, got); !errors.Is(err, ErrPageOutOfRange) {
				t.Errorf("read out of range: %v", err)
			}
			if err := b.WritePage(99, got); !errors.Is(err, ErrPageOutOfRange) {
				t.Errorf("write out of range: %v", err)
			}
		})
	}
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := fb.Allocate()
	buf := make([]byte, PageSize)
	copy(buf, "persisted")
	if err := fb.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	fb2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	if fb2.NumPages() != 1 {
		t.Fatalf("NumPages after reopen = %d", fb2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := fb2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("persisted")) {
		t.Error("content lost across reopen")
	}
}

func TestBufferFixUnfix(t *testing.T) {
	s := Open(NewMemBackend(), 4)
	defer s.Close()
	f, err := s.FixNew()
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data(), "hello")
	f.MarkDirty()
	id := f.ID()
	s.Unfix(f)

	f2, err := s.Fix(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(f2.Data(), []byte("hello")) {
		t.Error("buffered content lost")
	}
	s.Unfix(f2)
	st := s.Stats()
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1", st.Hits)
	}
}

func TestBufferEvictionWritesBack(t *testing.T) {
	mb := NewMemBackend()
	s := Open(mb, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		f, err := s.FixNew()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i + 1)
		f.MarkDirty()
		ids = append(ids, f.ID())
		s.Unfix(f)
	}
	// Pool of 2 held 4 pages: at least 2 evictions with write-back.
	st := s.Stats()
	if st.Evictions < 2 || st.Writebacks < 2 {
		t.Errorf("stats = %+v, want >=2 evictions and writebacks", st)
	}
	// All pages readable with correct content, whether buffered or not.
	for i, id := range ids {
		f, err := s.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data()[0] != byte(i+1) {
			t.Errorf("page %d content %d, want %d", id, f.Data()[0], i+1)
		}
		s.Unfix(f)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferAllPinned(t *testing.T) {
	s := Open(NewMemBackend(), 2)
	defer s.Close()
	f1, _ := s.FixNew()
	f2, _ := s.FixNew()
	if _, err := s.FixNew(); !errors.Is(err, ErrNoFrames) {
		t.Errorf("expected ErrNoFrames, got %v", err)
	}
	s.Unfix(f2)
	if _, err := s.FixNew(); err != nil {
		t.Errorf("after Unfix, FixNew should succeed: %v", err)
	}
	s.Unfix(f1)
}

func TestBufferDoublePin(t *testing.T) {
	s := Open(NewMemBackend(), 2)
	defer s.Close()
	f, _ := s.FixNew()
	id := f.ID()
	f2, err := s.Fix(id)
	if err != nil {
		t.Fatal(err)
	}
	if f != f2 {
		t.Error("same page must map to the same frame")
	}
	if s.PinnedFrames() != 1 {
		t.Errorf("PinnedFrames = %d", s.PinnedFrames())
	}
	s.Unfix(f)
	if s.PinnedFrames() != 1 {
		t.Error("frame must stay pinned until both Unfix calls")
	}
	s.Unfix(f2)
	if s.PinnedFrames() != 0 {
		t.Error("frame should be unpinned")
	}
}

func TestUnfixPanicsWithoutFix(t *testing.T) {
	s := Open(NewMemBackend(), 2)
	defer s.Close()
	f, _ := s.FixNew()
	s.Unfix(f)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unbalanced Unfix")
		}
	}()
	s.Unfix(f)
}

func TestFlushPersists(t *testing.T) {
	mb := NewMemBackend()
	s := Open(mb, 8)
	f, _ := s.FixNew()
	copy(f.Data(), "flushed")
	f.MarkDirty()
	id := f.ID()
	s.Unfix(f)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, PageSize)
	if err := mb.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("flushed")) {
		t.Error("Flush did not reach the backend")
	}
}

func TestBufferConcurrentAccess(t *testing.T) {
	s := Open(NewMemBackend(), 16)
	defer s.Close()
	const pages = 64
	ids := make([]PageID, pages)
	for i := range ids {
		f, err := s.FixNew()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i)
		f.MarkDirty()
		ids[i] = f.ID()
		s.Unfix(f)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				n := rng.Intn(pages)
				f, err := s.Fix(ids[n])
				if err != nil {
					t.Error(err)
					return
				}
				if f.Data()[0] != byte(n) {
					t.Errorf("page %d holds %d", n, f.Data()[0])
					s.Unfix(f)
					return
				}
				s.Unfix(f)
			}
		}(int64(w))
	}
	wg.Wait()
	if s.PinnedFrames() != 0 {
		t.Errorf("pin leak: %d frames pinned", s.PinnedFrames())
	}
}

func TestOpenFileBadSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fb.Close()
	// Corrupt the size.
	if err := writeJunk(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("expected error for non-multiple file size")
	}
}

func writeJunk(path string) error {
	return os.WriteFile(path, []byte("junk"), 0o644)
}
