package pagestore

import (
	"container/list"
	"fmt"
	"sync"
	"testing"
	"time"
)

// mutexLRU replicates the pre-sharding buffer manager's synchronization
// design — one global mutex guarding the page table, pin counts, and an
// LRU list touched on every hit, with miss I/O performed *under* the table
// lock (as the old Fix did) — as the in-run baseline the sharded pool is
// measured against. Backend reads are modeled as a sleep so both designs
// pay the same per-miss latency; what differs is who else that latency
// blocks.
type mutexLRU struct {
	mu      sync.Mutex
	pages   map[PageID]*mutexFrame
	lru     *list.List
	cap     int
	latency time.Duration
}

type mutexFrame struct {
	id   PageID
	pins int
	elem *list.Element
}

func newMutexLRU(capacity int, latency time.Duration) *mutexLRU {
	return &mutexLRU{
		pages:   make(map[PageID]*mutexFrame),
		lru:     list.New(),
		cap:     capacity,
		latency: latency,
	}
}

func (p *mutexLRU) fix(id PageID) *mutexFrame {
	p.mu.Lock()
	if f, ok := p.pages[id]; ok {
		f.pins++
		if f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		p.mu.Unlock()
		return f
	}
	var f *mutexFrame
	if len(p.pages) < p.cap {
		f = &mutexFrame{}
	} else {
		el := p.lru.Front()
		f = el.Value.(*mutexFrame)
		p.lru.Remove(el)
		f.elem = nil
		delete(p.pages, f.id)
	}
	if p.latency > 0 {
		time.Sleep(p.latency) // the backend read, under the table lock
	}
	f.id = id
	f.pins = 1
	p.pages[id] = f
	p.mu.Unlock()
	return f
}

func (p *mutexLRU) unfix(f *mutexFrame) {
	p.mu.Lock()
	f.pins--
	if f.pins == 0 {
		f.elem = p.lru.PushBack(f)
	}
	p.mu.Unlock()
}

// runContention splits b.N Fix/Unfix pairs across g goroutines, each
// feeding its own xorshift stream into op.
func runContention(b *testing.B, g int, op func(x uint64)) {
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		share := b.N / g
		if w < b.N%g {
			share++
		}
		wg.Add(1)
		go func(seed uint64, n int) {
			defer wg.Done()
			x := seed*2654435761 + 1
			for i := 0; i < n; i++ {
				// xorshift: cheap, per-goroutine, no shared state.
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				op(x)
			}
		}(uint64(w+1), share)
	}
	wg.Wait()
	b.StopTimer()
}

// BenchmarkBufferContention measures resident-page Fix/Unfix throughput at
// 1, 4, and 16 goroutines for the sharded pool and for the single-mutex
// LRU design it replaced, in the same run. Two scenarios:
//
//   - hits: every access is a buffer hit. This isolates raw
//     synchronization overhead on the hot path.
//   - mixed: ~1 access in 64 is a miss on a cold page range with 50µs of
//     simulated backend latency; the rest are resident hits. The old
//     design performed miss I/O under the global table lock, so one
//     goroutine's miss stalls every other goroutine's hits for the full
//     I/O; the sharded pool does I/O with only the frame marked loading,
//     so other goroutines' hits overlap the latency. This is the
//     contention the redesign removes, and it shows even on a single-CPU
//     host where parallel speedup of the lock-free-I/O hit path is
//     unobservable.
//
// `make bench-buffer` records the results in BENCH_buffer.json; the
// acceptance ratio is mixed/mutex/g16 over mixed/sharded/g16.
func BenchmarkBufferContention(b *testing.B) {
	const (
		hotPages  = 128
		frames    = 512
		coldPages = 2048 // 4x capacity: cold accesses nearly always miss
		ioLatency = 50 * time.Microsecond
		missShift = 6 // 1 miss per 2^6 accesses in the mixed scenario
	)
	mb := NewMemBackend()
	s := OpenConfig(mb, Config{Frames: frames, Shards: 16})
	defer s.Close()

	// Cold range first, hot set last: the hot pages start resident and
	// constant re-reference keeps them resident (LRU recency in the
	// baseline, CLOCK ref bits in the sharded pool).
	cold := make([]PageID, coldPages)
	for i := range cold {
		f, err := s.FixNew()
		if err != nil {
			b.Fatal(err)
		}
		cold[i] = f.ID()
		s.Unfix(f)
	}
	hot := make([]PageID, hotPages)
	for i := range hot {
		f, err := s.FixNew()
		if err != nil {
			b.Fatal(err)
		}
		hot[i] = f.ID()
		s.Unfix(f)
	}
	// Clean every frame so the timed region evicts without write-backs.
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	mb.SimulatedLatency = ioLatency

	base := newMutexLRU(frames, ioLatency)
	for _, id := range hot {
		base.unfix(base.fix(id))
	}

	shardedOp := func(id PageID) {
		f, err := s.Fix(id)
		if err != nil {
			b.Error(err)
			return
		}
		s.Unfix(f)
	}
	mutexOp := func(id PageID) {
		base.unfix(base.fix(id))
	}

	for _, sc := range []struct {
		name   string
		misses bool
	}{{"hits", false}, {"mixed", true}} {
		for _, im := range []struct {
			name string
			op   func(PageID)
		}{{"sharded", shardedOp}, {"mutex", mutexOp}} {
			for _, g := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/%s/g%d", sc.name, im.name, g), func(b *testing.B) {
					runContention(b, g, func(x uint64) {
						// Low bits pick hit vs miss, high bits pick the
						// page, so the two choices are uncorrelated.
						if sc.misses && x&(1<<missShift-1) == 0 {
							im.op(cold[(x>>16)%coldPages])
						} else {
							im.op(hot[(x>>16)%hotPages])
						}
					})
				})
			}
		}
	}
}
