package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardClamping pins the shard-count policy: requested counts are
// rounded down to powers of two and clamped so each shard holds at least
// minFramesPerShard frames — tiny pools must keep whole-pool semantics.
func TestShardClamping(t *testing.T) {
	cases := []struct {
		frames, shards, want int
	}{
		{2, 0, 1},        // tiny pool: single shard
		{64, 16, 1},      // one shard's worth of frames
		{128, 16, 2},     // clamped to frames/minFramesPerShard
		{256, 16, 4},     // clamped
		{1024, 0, 16},    // default frames/shards
		{1024, 5, 4},     // rounded down to a power of two
		{4096, 16, 16},   // fits
		{100000, 64, 64}, // large pool honors the request
		{DefaultFrames, DefaultShards, 16},
	}
	for _, c := range cases {
		s := OpenConfig(NewMemBackend(), Config{Frames: c.frames, Shards: c.shards})
		if got := s.Shards(); got != c.want {
			t.Errorf("frames=%d shards=%d: got %d shards, want %d", c.frames, c.shards, got, c.want)
		}
		s.Close()
	}
}

// TestShardCapacitySum checks the per-shard capacities sum to the pool
// capacity (the remainder frames must not be lost).
func TestShardCapacitySum(t *testing.T) {
	s := OpenConfig(NewMemBackend(), Config{Frames: 1030, Shards: 16})
	defer s.Close()
	total := 0
	for _, sh := range s.shards {
		total += sh.cap
	}
	if total != 1030 {
		t.Errorf("shard capacities sum to %d, want 1030", total)
	}
}

// TestUnfixPanicMessage is the regression test for the double-Unfix
// corruption bug: an Unfix on an already-unpinned frame must panic — not
// silently push the pin count negative — and the message must identify the
// frame by its page so the caller can be found.
func TestUnfixPanicMessage(t *testing.T) {
	s := Open(NewMemBackend(), 4)
	defer s.Close()
	f, err := s.FixNew()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	s.Unfix(f)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on double Unfix")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.Contains(msg, fmt.Sprintf("page %d", id)) {
			t.Errorf("panic %q does not name page %d", msg, id)
		}
		if got := f.pins.Load(); got != 0 {
			t.Errorf("pin count corrupted to %d by double Unfix", got)
		}
	}()
	s.Unfix(f)
}

// stampPage writes the torture test's content oracle into a page body:
// every page holds its ID and version, then a deterministic byte pattern.
func stampPage(data []byte, id PageID, version uint32) {
	binary.BigEndian.PutUint32(data[PageHeaderSize:], uint32(id))
	binary.BigEndian.PutUint32(data[PageHeaderSize+4:], version)
	seed := byte(uint32(id)*31 + version)
	for i := PageHeaderSize + 8; i < PageHeaderSize+64; i++ {
		data[i] = seed + byte(i)
	}
}

// checkPage verifies the oracle pattern; returns the stored version.
func checkPage(data []byte, id PageID) (uint32, error) {
	if got := PageID(binary.BigEndian.Uint32(data[PageHeaderSize:])); got != id {
		return 0, fmt.Errorf("page %d holds content of page %d", id, got)
	}
	version := binary.BigEndian.Uint32(data[PageHeaderSize+4:])
	seed := byte(uint32(id)*31 + version)
	for i := PageHeaderSize + 8; i < PageHeaderSize+64; i++ {
		if data[i] != seed+byte(i) {
			return 0, fmt.Errorf("page %d version %d corrupt at offset %d", id, version, i)
		}
	}
	return version, nil
}

// TestBufferTorture is the randomized multi-goroutine Fix/Unfix/MarkDirty
// torture test: a pool at half the working-set size (every miss evicts),
// the background flusher racing every write, and a content + version
// oracle. Per-page RW locks in the test serialize content access the way
// the layers above the buffer do, so any corruption the test observes is
// the buffer manager's fault. Run it under -race.
func TestBufferTorture(t *testing.T) {
	const (
		pages   = 512
		frames  = 256 // half the working set: constant eviction traffic
		workers = 8
		iters   = 400
	)
	s := OpenConfig(NewMemBackend(), Config{
		Frames:          frames,
		Shards:          16, // clamps to 4
		FlusherInterval: 200 * time.Microsecond,
	})
	defer s.Close()

	ids := make([]PageID, pages)
	versions := make([]atomic.Uint32, pages)
	pageLocks := make([]sync.RWMutex, pages)
	for i := range ids {
		f, err := s.FixNew()
		if err != nil {
			t.Fatal(err)
		}
		stampPage(f.Data(), f.ID(), 0)
		f.MarkDirty()
		ids[i] = f.ID()
		s.Unfix(f)
	}

	var wg sync.WaitGroup
	var fails atomic.Int32
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				if fails.Load() > 0 {
					return
				}
				n := rng.Intn(pages)
				switch op := rng.Intn(10); {
				case op < 6: // read and verify
					pageLocks[n].RLock()
					f, err := s.Fix(ids[n])
					if err != nil {
						t.Errorf("Fix(%d): %v", ids[n], err)
						fails.Add(1)
						pageLocks[n].RUnlock()
						return
					}
					v, err := checkPage(f.Data(), ids[n])
					if err == nil && v != versions[n].Load() {
						err = fmt.Errorf("page %d at version %d, oracle says %d", ids[n], v, versions[n].Load())
					}
					s.Unfix(f)
					pageLocks[n].RUnlock()
					if err != nil {
						t.Error(err)
						fails.Add(1)
						return
					}
				case op < 9: // mutate
					pageLocks[n].Lock()
					f, err := s.Fix(ids[n])
					if err != nil {
						t.Errorf("Fix(%d): %v", ids[n], err)
						fails.Add(1)
						pageLocks[n].Unlock()
						return
					}
					if _, err := checkPage(f.Data(), ids[n]); err != nil {
						t.Error(err)
						fails.Add(1)
						s.Unfix(f)
						pageLocks[n].Unlock()
						return
					}
					v := versions[n].Load() + 1
					stampPage(f.Data(), ids[n], v)
					f.MarkDirty()
					versions[n].Store(v)
					s.Unfix(f)
					pageLocks[n].Unlock()
				default: // double pin: same page must come back as one frame
					pageLocks[n].RLock()
					f1, err1 := s.Fix(ids[n])
					f2, err2 := s.Fix(ids[n])
					if err1 == nil && err2 == nil && f1 != f2 {
						t.Errorf("page %d pinned as two frames", ids[n])
						fails.Add(1)
					}
					if err1 == nil {
						s.Unfix(f1)
					}
					if err2 == nil {
						s.Unfix(f2)
					}
					pageLocks[n].RUnlock()
					if err1 != nil || err2 != nil {
						t.Errorf("double pin of %d: %v / %v", ids[n], err1, err2)
						fails.Add(1)
						return
					}
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Residency/pin oracle: no leaked pins, residency within capacity.
	if n := s.PinnedFrames(); n != 0 {
		t.Errorf("pin leak: %d frames still pinned", n)
	}
	if n := s.ResidentPages(); n > frames {
		t.Errorf("%d resident pages exceed pool capacity %d", n, frames)
	}
	// Every page must hold its final oracle version, whether it survived in
	// the buffer or went through eviction and reload.
	for n, id := range ids {
		f, err := s.Fix(id)
		if err != nil {
			t.Fatalf("final Fix(%d): %v", id, err)
		}
		v, err := checkPage(f.Data(), id)
		if err == nil && v != versions[n].Load() {
			err = fmt.Errorf("page %d final version %d, oracle says %d", id, v, versions[n].Load())
		}
		s.Unfix(f)
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("torture run saw no evictions; pool sizing is wrong for this test")
	}
}

// TestEvictionUnderFault proves a failed write-back requeues the victim
// instead of dropping the page: the Fix that triggered the eviction fails,
// but the victim's content stays buffered and dirty, and is written back
// successfully once the fault clears.
func TestEvictionUnderFault(t *testing.T) {
	inner := NewMemBackend()
	fb := NewFaultBackend(inner, FaultConfig{
		Schedule: []ScheduledFault{{Op: OpWrite, N: 1, Class: ClassPermanent}},
	})
	fb.Disarm()
	s := Open(fb, 2) // 1 shard of 2 frames
	defer s.Close()

	// Three pages through a two-frame pool; creating C evicts A cleanly
	// while the injector is disarmed. B and C stay buffered and dirty.
	mk := func(tag byte) PageID {
		f, err := s.FixNew()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[PageHeaderSize] = tag
		f.MarkDirty()
		id := f.ID()
		s.Unfix(f)
		return id
	}
	a, b, c := mk('a'), mk('b'), mk('c')

	// Fixing A forces a dirty eviction; the scheduled permanent write
	// fault fails it. The error must surface as permanent and unretried.
	fb.Arm()
	if _, err := s.Fix(a); err == nil {
		t.Fatal("Fix(a) should fail when the eviction write-back faults")
	} else if !IsPermanent(err) {
		t.Fatalf("eviction failure %v not classified permanent", err)
	}
	fb.Disarm()
	if got := s.Stats().Retries; got != 0 {
		t.Errorf("permanent fault was retried %d times", got)
	}

	// The victim was requeued: both B and C are still buffered (hits, no
	// backend read) with intact content and dirty bits.
	before := s.Stats().Hits
	for _, pc := range []struct {
		id  PageID
		tag byte
	}{{b, 'b'}, {c, 'c'}} {
		f, err := s.Fix(pc.id)
		if err != nil {
			t.Fatalf("Fix(%d) after failed eviction: %v", pc.id, err)
		}
		if f.Data()[PageHeaderSize] != pc.tag {
			t.Errorf("page %d content %q, want %q — failed write-back dropped content",
				pc.id, f.Data()[PageHeaderSize], pc.tag)
		}
		s.Unfix(f)
	}
	if got := s.Stats().Hits - before; got != 2 {
		t.Errorf("pages B/C were not retained in the buffer (hits +%d, want +2)", got)
	}

	// With the fault cleared the blocked eviction goes through and A comes
	// back with its original content.
	f, err := s.Fix(a)
	if err != nil {
		t.Fatalf("Fix(a) after fault cleared: %v", err)
	}
	if f.Data()[PageHeaderSize] != 'a' {
		t.Errorf("page a content %q, want 'a'", f.Data()[PageHeaderSize])
	}
	s.Unfix(f)
}

// togglingSyncer is a LogSyncer whose FlushTo can be switched between
// success and failure, emulating a live and a crashed log.
type togglingSyncer struct{ fail atomic.Bool }

func (l *togglingSyncer) FlushTo(uint64) error {
	if l.fail.Load() {
		return errors.New("log unavailable")
	}
	return nil
}

// TestFlusherTrickles checks the background flusher writes dirty unpinned
// frames to the backend without evicting them, and leaves pinned frames
// alone.
func TestFlusherTrickles(t *testing.T) {
	mb := NewMemBackend()
	s := OpenConfig(mb, Config{Frames: 8, FlusherInterval: time.Millisecond})
	defer s.Close()

	f, err := s.FixNew()
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data()[PageHeaderSize:], "trickled")
	f.MarkDirty()
	id := f.ID()

	// Pinned: the flusher must not touch it.
	time.Sleep(10 * time.Millisecond)
	if got := s.Stats().FlusherWrites; got != 0 {
		t.Fatalf("flusher wrote %d pinned frames", got)
	}
	s.Unfix(f)

	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().FlusherWrites == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never wrote the dirty unpinned frame")
		}
		time.Sleep(time.Millisecond)
	}
	raw := make([]byte, PageSize)
	if err := mb.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if string(raw[PageHeaderSize:PageHeaderSize+8]) != "trickled" {
		t.Error("flusher write did not reach the backend")
	}
	if err := VerifyChecksum(id, raw); err != nil {
		t.Errorf("flusher wrote an unstamped page: %v", err)
	}
	// The page was trickled, not evicted: fetching it is a hit.
	before := s.Stats().Hits
	f2, err := s.Fix(id)
	if err != nil {
		t.Fatal(err)
	}
	s.Unfix(f2)
	if s.Stats().Hits != before+1 {
		t.Error("trickled page left the buffer")
	}
}

// TestFlusherHonorsWALRule checks the flusher enforces the WAL rule: while
// the log refuses FlushTo (crashed), dirty pages must not reach the
// backend; once the log recovers, they trickle out.
func TestFlusherHonorsWALRule(t *testing.T) {
	mb := NewMemBackend()
	s := OpenConfig(mb, Config{Frames: 8, FlusherInterval: time.Millisecond})
	defer s.Close()
	log := &togglingSyncer{}
	log.fail.Store(true)
	s.SetWAL(log)

	f, err := s.FixNew()
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data()[PageHeaderSize:], "guarded")
	f.MarkDirty()
	id := f.ID()
	s.Unfix(f)

	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().FlusherErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never attempted the dirty frame")
		}
		time.Sleep(time.Millisecond)
	}
	raw := make([]byte, PageSize)
	if err := mb.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if string(raw[PageHeaderSize:PageHeaderSize+7]) == "guarded" {
		t.Fatal("flusher wrote page content ahead of the log")
	}

	log.fail.Store(false)
	for s.Stats().FlusherWrites == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never recovered after the log came back")
		}
		time.Sleep(time.Millisecond)
	}
	if err := mb.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if string(raw[PageHeaderSize:PageHeaderSize+7]) != "guarded" {
		t.Error("page content missing after the log recovered")
	}
}

// TestConcurrentSamePageMiss checks that concurrent Fix misses of one page
// load it exactly once and everybody gets the same frame.
func TestConcurrentSamePageMiss(t *testing.T) {
	mb := NewMemBackend()
	s := Open(mb, 8)
	f, err := s.FixNew()
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[PageHeaderSize] = 'x'
	f.MarkDirty()
	id := f.ID()
	s.Unfix(f)
	if err := s.Close(); err != nil { // write it out, then reopen cold
		t.Fatal(err)
	}
	s = Open(mb, 8)
	defer s.Close()

	const workers = 16
	frames := make([]*Frame, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := s.Fix(id)
			if err != nil {
				t.Error(err)
				return
			}
			frames[i] = f
		}(w)
	}
	wg.Wait()
	for _, f := range frames {
		if f == nil {
			t.Fatal("a worker failed to fix the page")
		}
		if f != frames[0] {
			t.Fatal("concurrent misses produced distinct frames for one page")
		}
		if f.Data()[PageHeaderSize] != 'x' {
			t.Fatal("loaded content wrong")
		}
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single load)", st.Misses)
	}
	for range frames {
		s.Unfix(frames[0])
	}
	if s.PinnedFrames() != 0 {
		t.Error("pins leaked")
	}
}
