package pagestore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Stats aggregates buffer-manager counters. Values are monotonically
// increasing and may be read concurrently with operation.
type Stats struct {
	// Hits counts Fix calls satisfied from the buffer.
	Hits uint64
	// Misses counts Fix calls that had to read the backend.
	Misses uint64
	// Evictions counts frames recycled for another page.
	Evictions uint64
	// Writebacks counts dirty pages written to the backend.
	Writebacks uint64
	// Retries counts backend re-attempts after transient failures.
	Retries uint64
	// RetryFailures counts operations whose transient failures outlived the
	// retry budget and were escalated to permanent.
	RetryFailures uint64
	// FlusherWrites counts dirty pages trickled out by the background
	// flusher.
	FlusherWrites uint64
	// FlusherErrors counts background write-backs that failed; the frame
	// stays dirty and is retried on a later pass (or at eviction).
	FlusherErrors uint64
}

// frameState is the I/O state of a frame, guarded by Frame.mu. Transitions
// out of the in-flight states broadcast Frame.cond.
type frameState int32

const (
	// frameResident: data holds the page image; the frame may be pinned.
	frameResident frameState = iota
	// frameLoading: a Fix miss owns the frame and is reading its page from
	// the backend. Nobody may pin it; Fixers of the page wait on cond.
	frameLoading
	// frameWriting: an evictor, the background flusher, or Flush claimed
	// the frame and is writing its image to the backend. Nobody may pin
	// it; Fixers of the page wait on cond.
	frameWriting
	// frameFree: the frame is not mapped to any page (recycled after a
	// failed load, parked on the shard free list).
	frameFree
)

// Frame is a pinned buffer slot holding one page. It stays valid (and its
// page stays in memory) until Unfix is called; a frame must not be used
// afterwards.
type Frame struct {
	store *Store
	shard *bufShard
	data  []byte

	// pins counts active Fixes. It is incremented only under shard.mu
	// (read-locked) plus mu, so holders of the shard write lock or of mu
	// that observe zero know no pin can appear underneath them. Decrements
	// (Unfix) are lock-free.
	pins atomic.Int32
	// dirty marks content that must reach the backend before the frame is
	// recycled.
	dirty atomic.Bool
	// ref is the CLOCK second-chance bit, set on every Fix.
	ref atomic.Bool
	// recLSN is the LSN of the first log record that dirtied the page since
	// it last went clean (0 = clean, or dirt that predates the WAL epoch).
	// It is the page's dirty-page-table entry: a fuzzy checkpoint's redo
	// scan must start at or before the minimum recLSN of all dirty frames.
	// Set once per dirty epoch by Capture.Commit, cleared by markClean.
	recLSN atomic.Uint64
	// imaged records that a full body image of the page was logged since it
	// last went clean. Cleared on every clean transition so the first delta
	// after re-dirtying is upgraded to a full image again — the invariant
	// that keeps every torn page healable from the post-redo-LSN log suffix
	// even after WAL segments below it are garbage-collected.
	imaged atomic.Bool
	// influx is up while an active capture holds the page: its bytes (the
	// pageLSN stamp included) may change until the capture closes. Snapshot
	// readers (FixAt) divert to the version chain instead of reading the
	// live bytes; the Store(false) at capture close releases the stamp to
	// their Load. Set by Capture.note only while a snapshot source is
	// installed; captured frames keep their pins, so the frame cannot be
	// remapped while the flag matters.
	influx atomic.Bool

	mu    sync.Mutex
	cond  *sync.Cond
	state frameState
	// id is the page held. Remapped only under shard.mu write-locked with
	// pins == 0; stable while the frame is pinned or while its mapping is
	// observed under shard.mu.
	id PageID
}

// ID returns the page ID held by the frame.
func (f *Frame) ID() PageID { return f.id }

// Data returns the page bytes. Mutating them requires holding the pin and
// calling MarkDirty before Unfix.
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the page content changed and must be written back
// before eviction.
func (f *Frame) MarkDirty() { f.dirty.Store(true) }

// markClean ends a dirty epoch after a successful write-back (or remap):
// the dirty-page-table entry and the full-image flag reset together, so the
// next dirtying starts a fresh epoch with a fresh full-image anchor. Called
// only while the frame is claimed (frameWriting, pins 0) or freshly mapped,
// so no capture can be stamping it concurrently.
func (f *Frame) markClean() {
	f.dirty.Store(false)
	f.recLSN.Store(0)
	f.imaged.Store(false)
}

// bufShard is one partition of the buffer pool: a page table, the frames
// backing it, and a CLOCK hand. Fix hits take only the shard read lock plus
// the frame latch; the write lock is held for map surgery only — never
// across backend I/O or WAL forces.
type bufShard struct {
	store *Store

	mu     sync.RWMutex
	pages  map[PageID]*Frame
	frames []*Frame // every frame allocated in this shard
	free   []*Frame // unmapped frames (recycled after failed loads)
	hand   int      // CLOCK hand over frames
	cap    int

	// Per-shard instruments (nil without Config.Metrics; Counter and
	// Histogram methods no-op on nil). They localize the contention
	// picture the same way the lock table's PartitionWaits does: which
	// shard the hits, misses, evictions, and write-back stalls landed on.
	cHits, cMisses, cEvictions *metrics.Counter
	hWriteback                 *metrics.Histogram
}

// Store is the buffer manager: a fixed pool of page frames over a Backend,
// partitioned into power-of-two shards with per-shard CLOCK replacement of
// unpinned frames.
type Store struct {
	backend   Backend
	shards    []*bufShard
	shardMask uint32
	cap       int

	wal     atomic.Pointer[walRef]
	capture atomic.Pointer[Capture]

	// captureFloor is the LSN floor published by the active capture: no
	// record the capture will log has an LSN below it. DirtyPageTable reads
	// it BEFORE scanning frames, so a page whose Commit stamp is still in
	// flight is covered by the floor instead of its (unset) recLSN. Zero
	// means no capture is active.
	captureFloor atomic.Uint64

	// checkpointer is the callback the background flusher invokes every
	// Config.CheckpointInterval (installed via SetCheckpointer, typically by
	// storage.Document.AttachWAL). Nil until installed.
	checkpointer atomic.Pointer[func() error]

	// Version sidecar (versions.go): retained pre-images serving MVCC
	// snapshot readers. snapSrc is the oldest-active-snapshot watermark
	// callback; version publication is off until one is installed.
	snapSrc  atomic.Pointer[func() uint64]
	verMu    sync.Mutex
	versions map[PageID][]*pageVersion

	retry    RetryPolicy
	retryMu  sync.Mutex
	retryRng *rand.Rand

	flusherStop chan struct{}
	flusherWG   sync.WaitGroup
	flusherOnce sync.Once

	hits, misses, evictions, writebacks, retries, retryFailures atomic.Uint64
	flusherWrites, flusherErrors                                atomic.Uint64

	// Latency histograms (nil without Config.Metrics): miss-path load
	// latency (backend read + checksum + retries) and write-back latency
	// (WAL force + checksum stamp + backend write + retries).
	hFixMiss   *metrics.Histogram
	hWriteback *metrics.Histogram
}

// LogSyncer is the write-ahead log hook the WAL rule needs: FlushTo blocks
// until the log is durable up to lsn (and fails once the log is dead, which
// stops all further write-backs — after a log crash nothing unlogged may
// reach the backend). The wal package's Log satisfies it; the indirection
// keeps pagestore free of a wal import.
type LogSyncer interface {
	FlushTo(lsn uint64) error
}

// walRef boxes the LogSyncer so the attached log can be swapped and read
// without a lock.
type walRef struct{ ls LogSyncer }

// SetWAL attaches a write-ahead log. From then on every dirty-page
// write-back first forces the log up to the page's LSN (the WAL rule).
func (s *Store) SetWAL(w LogSyncer) { s.wal.Store(&walRef{ls: w}) }

// walSyncer returns the attached log, or nil.
func (s *Store) walSyncer() LogSyncer {
	if r := s.wal.Load(); r != nil {
		return r.ls
	}
	return nil
}

// RetryPolicy bounds how the buffer manager re-attempts backend operations
// that failed with a transient classification (see IsTransient). Permanent
// and unclassified failures are never retried.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure.
	MaxRetries int
	// BaseBackoff is slept before the first retry; it doubles per attempt.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling.
	MaxBackoff time.Duration
	// Seed drives the backoff jitter (±50%), keeping runs reproducible.
	Seed int64
}

// DefaultRetryPolicy absorbs short transient glitches without stalling the
// engine. Retries never run under a page-table lock (I/O is done in the
// frameLoading/frameWriting states), so only Fixers of the affected page
// wait out a backoff.
var DefaultRetryPolicy = RetryPolicy{
	MaxRetries:  5,
	BaseBackoff: 50 * time.Microsecond,
	MaxBackoff:  2 * time.Millisecond,
}

// RetryExhaustedError wraps a transient failure that outlived the retry
// budget. It reclassifies the chain as permanent: the caller must not keep
// retrying what the buffer manager already gave up on.
type RetryExhaustedError struct {
	// Attempts is the total number of attempts made.
	Attempts int
	// Err is the last failure.
	Err error
}

// Error implements error.
func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("pagestore: %d attempts exhausted: %v", e.Attempts, e.Err)
}

// Unwrap exposes the last failure.
func (e *RetryExhaustedError) Unwrap() error { return e.Err }

// Transient reports false: the retry budget is spent.
func (e *RetryExhaustedError) Transient() bool { return false }

// Permanent reports true.
func (e *RetryExhaustedError) Permanent() bool { return true }

// SetRetryPolicy replaces the store's retry policy (DefaultRetryPolicy at
// Open). Call before concurrent use.
func (s *Store) SetRetryPolicy(p RetryPolicy) {
	s.retry = p
	s.retryRng = rand.New(rand.NewSource(p.Seed))
}

// withRetry runs op, re-attempting transient failures with exponential
// backoff and seeded jitter. A transient failure that survives the budget
// comes back wrapped in RetryExhaustedError (classified permanent).
func (s *Store) withRetry(op func() error) error {
	err := op()
	if err == nil || !IsTransient(err) {
		return err
	}
	backoff := s.retry.BaseBackoff
	for attempt := 0; attempt < s.retry.MaxRetries; attempt++ {
		s.retries.Add(1)
		if backoff > 0 {
			s.retryMu.Lock()
			j := s.retryRng.Float64()
			s.retryMu.Unlock()
			time.Sleep(backoff/2 + time.Duration(float64(backoff)*j))
		}
		if backoff *= 2; backoff > s.retry.MaxBackoff {
			backoff = s.retry.MaxBackoff
		}
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
	}
	s.retryFailures.Add(1)
	return &RetryExhaustedError{Attempts: s.retry.MaxRetries + 1, Err: err}
}

// ErrNoFrames is returned when every frame in the target shard is pinned
// and a new page is requested.
var ErrNoFrames = errors.New("pagestore: all buffer frames pinned")

// DefaultFrames is the default buffer pool capacity.
const DefaultFrames = 1024

// DefaultShards is the default shard count; the effective count is clamped
// so small pools keep whole-pool eviction semantics (see Config).
const DefaultShards = 16

// minFramesPerShard is the smallest per-shard capacity sharding is allowed
// to produce. Below it the pool degrades to fewer shards (ultimately one):
// a tiny shard would return ErrNoFrames while other shards still had room,
// which small fixed-capacity configurations (tests, chaos harnesses) rely
// on not happening.
const minFramesPerShard = 64

// Config configures a buffer-manager Store.
type Config struct {
	// Frames is the pool capacity (DefaultFrames if <= 0).
	Frames int
	// Shards is the requested page-table shard count (DefaultShards if
	// <= 0). It is rounded down to a power of two and clamped so every
	// shard holds at least minFramesPerShard frames.
	Shards int
	// FlusherInterval enables the background flusher: every interval, all
	// dirty unpinned frames are trickled to the backend so evictions
	// rarely stall on a write-back. Zero or negative disables it.
	FlusherInterval time.Duration
	// CheckpointInterval makes the background flusher goroutine invoke the
	// installed checkpointer (SetCheckpointer) on this cadence — the
	// flusher-driven fuzzy checkpoints of DESIGN.md §14. Zero or negative
	// disables it. The goroutine runs whenever either interval is set.
	CheckpointInterval time.Duration
	// Metrics, when non-nil, receives the buffer instruments: the buffer.*
	// counters, fix-miss and write-back latency histograms, and per-shard
	// hit/miss/eviction counters plus write-back latency. Nil disables all
	// latency recording (no clock reads on the Fix path).
	Metrics *metrics.Registry
}

// Open wraps backend in a buffer manager with the given frame capacity
// (DefaultFrames if frames <= 0) and default sharding.
func Open(backend Backend, frames int) *Store {
	return OpenConfig(backend, Config{Frames: frames})
}

// OpenConfig wraps backend in a buffer manager per cfg.
func OpenConfig(backend Backend, cfg Config) *Store {
	frames := cfg.Frames
	if frames <= 0 {
		frames = DefaultFrames
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	for shards&(shards-1) != 0 {
		shards &= shards - 1 // round down to a power of two
	}
	for shards > 1 && frames/shards < minFramesPerShard {
		shards >>= 1
	}
	s := &Store{
		backend:   backend,
		shards:    make([]*bufShard, shards),
		shardMask: uint32(shards - 1),
		cap:       frames,
	}
	base, rem := frames/shards, frames%shards
	for i := range s.shards {
		c := base
		if i < rem {
			c++
		}
		s.shards[i] = &bufShard{store: s, pages: make(map[PageID]*Frame, c), cap: c}
	}
	if reg := cfg.Metrics; reg != nil {
		s.hFixMiss = reg.Histogram("buffer.fix_miss")
		s.hWriteback = reg.Histogram("buffer.writeback")
		for i, sh := range s.shards {
			prefix := fmt.Sprintf("buffer.shard%02d.", i)
			sh.cHits = reg.Counter(prefix + "hits")
			sh.cMisses = reg.Counter(prefix + "misses")
			sh.cEvictions = reg.Counter(prefix + "evictions")
			sh.hWriteback = reg.Histogram(prefix + "writeback")
		}
		s.registerCounters(reg)
	}
	s.SetRetryPolicy(DefaultRetryPolicy)
	if cfg.FlusherInterval > 0 || cfg.CheckpointInterval > 0 {
		s.startFlusher(cfg.FlusherInterval, cfg.CheckpointInterval)
	}
	return s
}

// registerCounters unifies the store's atomic counters onto a metrics
// registry as snapshot-time computed values; the hot paths keep their
// existing single atomic adds.
func (s *Store) registerCounters(reg *metrics.Registry) {
	reg.Func("buffer.hits", s.hits.Load)
	reg.Func("buffer.misses", s.misses.Load)
	reg.Func("buffer.evictions", s.evictions.Load)
	reg.Func("buffer.writebacks", s.writebacks.Load)
	reg.Func("buffer.retries", s.retries.Load)
	reg.Func("buffer.retry_failures", s.retryFailures.Load)
	reg.Func("buffer.flusher_writes", s.flusherWrites.Load)
	reg.Func("buffer.flusher_errors", s.flusherErrors.Load)
	reg.Func("buffer.resident_pages", func() uint64 { return uint64(s.ResidentPages()) })
}

// Shards reports the effective shard count after clamping.
func (s *Store) Shards() int { return len(s.shards) }

// shardFor hashes a page ID onto its shard. Multiplicative hashing spreads
// the sequential IDs Allocate hands out across all shards.
func (s *Store) shardFor(id PageID) *bufShard {
	return s.shards[ShardIndex(id, len(s.shards))]
}

// ShardIndex returns the shard a page ID maps to in a pool of n shards
// (n must be a power of two). Exported so recovery can partition its
// parallel redo pass along exactly the buffer pool's shard map.
func ShardIndex(id PageID, n int) int {
	h := uint32(id) * 0x9E3779B1
	h ^= h >> 16
	return int(h & uint32(n-1))
}

// Backend exposes the underlying backend (used by tests and tools).
func (s *Store) Backend() Backend { return s.backend }

// newFrame allocates an empty frame for a shard.
func newFrame(s *Store, sh *bufShard) *Frame {
	f := &Frame{store: s, shard: sh, data: make([]byte, PageSize)}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Fix pins the page into a frame, reading it from the backend on a miss.
// Every successful Fix must be paired with exactly one Unfix. A hit on a
// resident page touches only its shard's read lock and the frame latch.
func (s *Store) Fix(id PageID) (*Frame, error) {
	sh := s.shardFor(id)
	for {
		sh.mu.RLock()
		if f := sh.pages[id]; f != nil {
			f.mu.Lock()
			if f.state == frameResident {
				f.pins.Add(1)
				f.mu.Unlock()
				sh.mu.RUnlock()
				f.ref.Store(true)
				s.hits.Add(1)
				sh.cHits.Add(1)
				s.noteCapture(f)
				return f, nil
			}
			// The frame is mid-I/O (being loaded, or written back by an
			// evictor/flusher). Wait on the frame, not the shard, then
			// retry the lookup from scratch: the frame may belong to a
			// different page by the time it settles.
			sh.mu.RUnlock()
			for f.state == frameLoading || f.state == frameWriting {
				f.cond.Wait()
			}
			f.mu.Unlock()
			continue
		}
		sh.mu.RUnlock()

		f, err := sh.alloc(id)
		if err != nil {
			return nil, err
		}
		if f == nil {
			// Lost the allocation race to a concurrent Fix of the same
			// page; its frame is (or will shortly be) in the table.
			continue
		}
		t0 := s.hFixMiss.Start()
		if err := s.loadFrame(sh, f, id); err != nil {
			s.hFixMiss.Since(t0)
			return nil, err
		}
		s.hFixMiss.Since(t0)
		s.misses.Add(1)
		sh.cMisses.Add(1)
		s.noteCapture(f)
		return f, nil
	}
}

// FixNew allocates a fresh zeroed page in the backend and pins it.
func (s *Store) FixNew() (*Frame, error) {
	var id PageID
	err := s.withRetry(func() (e error) { id, e = s.backend.Allocate(); return e })
	if err != nil {
		return nil, err
	}
	sh := s.shardFor(id)
	f, err := sh.alloc(id)
	if err != nil {
		return nil, err
	}
	if f == nil {
		// Allocate hands out fresh IDs, so nobody can be loading this page
		// concurrently; reaching here means the ID was recycled behind our
		// back. Fall back to a plain Fix of the (zeroed) page.
		return s.Fix(id)
	}
	clear(f.data)
	f.dirty.Store(true)
	f.mu.Lock()
	f.state = frameResident
	f.cond.Broadcast()
	f.mu.Unlock()
	s.noteCapture(f)
	return f, nil
}

// alloc claims a frame for page id: it re-checks the table, reuses a free
// frame, grows the shard up to its capacity, or CLOCK-evicts. The returned
// frame is mapped to id, pinned once, and in frameLoading state — the
// caller must fill data and publish frameResident (or fail the load). A
// nil, nil return means another goroutine mapped id concurrently; the
// caller should retry its lookup.
func (sh *bufShard) alloc(id PageID) (*Frame, error) {
	s := sh.store
	for {
		sh.mu.Lock()
		if _, ok := sh.pages[id]; ok {
			sh.mu.Unlock()
			return nil, nil
		}
		if n := len(sh.free); n > 0 {
			f := sh.free[n-1]
			sh.free = sh.free[:n-1]
			sh.mapFrameLocked(f, id)
			sh.mu.Unlock()
			return f, nil
		}
		if len(sh.frames) < sh.cap {
			f := newFrame(s, sh)
			sh.frames = append(sh.frames, f)
			sh.mapFrameLocked(f, id)
			sh.mu.Unlock()
			return f, nil
		}

		// CLOCK sweep: up to two revolutions (the first may only clear
		// reference bits). A victim must be resident, unpinned, and
		// unreferenced. It is claimed by moving it to frameWriting under
		// its latch before the shard lock is dropped, which atomically
		// excludes the background flusher and concurrent Fixers.
		var victim, inflight *Frame
		for i := 0; i < 2*len(sh.frames); i++ {
			f := sh.frames[sh.hand]
			sh.hand = (sh.hand + 1) % len(sh.frames)
			f.mu.Lock()
			if f.state != frameResident {
				if f.state == frameLoading || f.state == frameWriting {
					inflight = f
				}
				f.mu.Unlock()
				continue
			}
			if f.pins.Load() != 0 {
				f.mu.Unlock()
				continue
			}
			if f.ref.Load() {
				f.ref.Store(false)
				f.mu.Unlock()
				continue
			}
			f.state = frameWriting
			f.mu.Unlock()
			victim = f
			break
		}
		if victim == nil {
			sh.mu.Unlock()
			if inflight == nil {
				return nil, fmt.Errorf("%w (capacity %d)", ErrNoFrames, s.cap)
			}
			// Every unpinned frame is mid-I/O; wait for one to settle and
			// rescan instead of failing a pool that is about to have room.
			inflight.mu.Lock()
			for inflight.state == frameLoading || inflight.state == frameWriting {
				inflight.cond.Wait()
			}
			inflight.mu.Unlock()
			continue
		}

		if !victim.dirty.Load() {
			delete(sh.pages, victim.id)
			sh.mapFrameLocked(victim, id)
			s.evictions.Add(1)
			sh.cEvictions.Add(1)
			sh.mu.Unlock()
			return victim, nil
		}

		// Dirty victim: write it back with no shard lock held. The frame
		// stays mapped in frameWriting, so Fixers of the old page block on
		// the frame latch — not the whole shard — and cannot pin it while
		// the backend reads its bytes.
		sh.mu.Unlock()
		err := s.writeBack(victim)
		sh.mu.Lock()
		if err != nil {
			// Requeue: the page stays buffered and dirty — a failed
			// write-back must never drop content. The error surfaces to
			// the caller (permanent or retry-exhausted by now).
			victim.mu.Lock()
			victim.state = frameResident
			victim.cond.Broadcast()
			victim.mu.Unlock()
			sh.mu.Unlock()
			return nil, err
		}
		victim.markClean()
		s.evictions.Add(1)
		sh.cEvictions.Add(1)
		if _, ok := sh.pages[id]; ok {
			// Someone mapped our target page while we wrote; release the
			// victim as a clean resident frame and retry the lookup.
			victim.mu.Lock()
			victim.state = frameResident
			victim.cond.Broadcast()
			victim.mu.Unlock()
			sh.mu.Unlock()
			return nil, nil
		}
		delete(sh.pages, victim.id)
		sh.mapFrameLocked(victim, id)
		sh.mu.Unlock()
		return victim, nil
	}
}

// mapFrameLocked binds an unpinned, unmapped (or just-claimed) frame to
// page id in frameLoading state with one pin for the caller. The caller
// holds sh.mu write-locked.
func (sh *bufShard) mapFrameLocked(f *Frame, id PageID) {
	f.mu.Lock()
	f.state = frameLoading
	f.mu.Unlock()
	f.id = id
	f.pins.Store(1)
	f.ref.Store(true)
	f.markClean()
	f.influx.Store(false)
	sh.pages[id] = f
}

// loadFrame fills a just-mapped frame from the backend and publishes it
// resident. On failure the frame is unmapped and recycled through the free
// list; waiters retry their lookup and surface their own errors.
func (s *Store) loadFrame(sh *bufShard, f *Frame, id PageID) error {
	err := s.withRetry(func() error { return s.backend.ReadPage(id, f.data) })
	if err == nil {
		// Detect torn or corrupt images at read time: the checksum was
		// stamped by the last write-back, so a mismatch means the backend
		// returned a page that was never completely written. Classified
		// permanent — recovery (full-image redo) is the only heal.
		err = VerifyChecksum(id, f.data)
	}
	if err == nil {
		f.mu.Lock()
		f.state = frameResident
		f.cond.Broadcast()
		f.mu.Unlock()
		return nil
	}
	sh.mu.Lock()
	delete(sh.pages, id)
	f.mu.Lock()
	f.state = frameFree
	f.cond.Broadcast()
	f.mu.Unlock()
	f.pins.Store(0)
	sh.free = append(sh.free, f)
	sh.mu.Unlock()
	return err
}

// writeBack persists one frame the caller has claimed in frameWriting: it
// enforces the WAL rule (force the log up to the page's LSN first — with no
// attached log the rule is vacuous), stamps the page checksum, and writes
// through the retry policy. No table lock is held. FlushTo is called
// unconditionally, even for pages with LSN 0: a crashed log fails every
// FlushTo, which is exactly the barrier that keeps post-crash unlogged
// content off the backend.
func (s *Store) writeBack(f *Frame) error {
	t0 := s.hWriteback.Start()
	if w := s.walSyncer(); w != nil {
		if err := w.FlushTo(PageLSN(f.data)); err != nil {
			s.hWriteback.Since(t0)
			return fmt.Errorf("pagestore: WAL rule for page %d: %w", f.id, err)
		}
	}
	StampChecksum(f.data)
	if err := s.withRetry(func() error { return s.backend.WritePage(f.id, f.data) }); err != nil {
		s.hWriteback.Since(t0)
		return err
	}
	s.writebacks.Add(1)
	s.hWriteback.Since(t0)
	f.shard.hWriteback.Since(t0)
	return nil
}

// Unfix releases one pin. When the pin count reaches zero the frame becomes
// eligible for eviction (dirty content is written back lazily, or earlier
// by the background flusher). Unfixing an already-unpinned frame is always
// a caller bug — the pin count would silently corrupt — so it panics with
// the frame's page identity.
func (s *Store) Unfix(f *Frame) {
	// A frame inside an active capture keeps its pins until the capture
	// closes: its content may be ahead of the log, so it must not become
	// evictable before the operation's record is appended and stamped.
	if c := s.capture.Load(); c != nil && c.deferUnfix(f) {
		return
	}
	for {
		n := f.pins.Load()
		if n <= 0 {
			panic(fmt.Sprintf("pagestore: Unfix without matching Fix on frame for page %d", f.id))
		}
		if f.pins.CompareAndSwap(n, n-1) {
			return
		}
	}
}

// Flush writes all dirty buffered pages (pinned ones included — callers
// quiesce mutators) to the backend and syncs it.
func (s *Store) Flush() error {
	for _, sh := range s.shards {
		if err := sh.flushAll(); err != nil {
			return err
		}
	}
	return s.withRetry(s.backend.Sync)
}

// flushAll writes every dirty frame of the shard, waiting out in-flight
// I/O. Unlike the flusher it does not skip pinned frames: Flush is a
// checkpoint barrier and its callers hold the document quiescent.
func (sh *bufShard) flushAll() error {
	s := sh.store
	sh.mu.RLock()
	frames := append([]*Frame(nil), sh.frames...)
	sh.mu.RUnlock()
	for _, f := range frames {
		f.mu.Lock()
		for f.state == frameLoading || f.state == frameWriting {
			f.cond.Wait()
		}
		if f.state != frameResident || !f.dirty.Load() {
			f.mu.Unlock()
			continue
		}
		f.state = frameWriting
		f.mu.Unlock()
		err := s.writeBack(f)
		f.mu.Lock()
		f.state = frameResident
		if err == nil {
			f.markClean()
		}
		f.cond.Broadcast()
		f.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close stops the background flusher, flushes, and closes the backend.
func (s *Store) Close() error {
	s.stopFlusher()
	if err := s.Flush(); err != nil {
		s.backend.Close()
		return err
	}
	return s.backend.Close()
}

// Stats returns a snapshot of the buffer counters. All counters are
// atomics; the snapshot is race-clean against concurrent operation.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Evictions:     s.evictions.Load(),
		Writebacks:    s.writebacks.Load(),
		Retries:       s.retries.Load(),
		RetryFailures: s.retryFailures.Load(),
		FlusherWrites: s.flusherWrites.Load(),
		FlusherErrors: s.flusherErrors.Load(),
	}
}

// PinnedFrames reports how many frames currently hold at least one pin
// (test and debugging aid for pin-leak detection).
func (s *Store) PinnedFrames() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, f := range sh.frames {
			if f.pins.Load() > 0 {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// ResidentPages reports how many pages are currently buffered (all shards).
func (s *Store) ResidentPages() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.pages)
		sh.mu.RUnlock()
	}
	return n
}
