package pagestore

import (
	"container/list"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Stats aggregates buffer-manager counters. Values are monotonically
// increasing and may be read concurrently with operation.
type Stats struct {
	// Hits counts Fix calls satisfied from the buffer.
	Hits uint64
	// Misses counts Fix calls that had to read the backend.
	Misses uint64
	// Evictions counts frames recycled for another page.
	Evictions uint64
	// Writebacks counts dirty pages written to the backend.
	Writebacks uint64
	// Retries counts backend re-attempts after transient failures.
	Retries uint64
	// RetryFailures counts operations whose transient failures outlived the
	// retry budget and were escalated to permanent.
	RetryFailures uint64
}

// Frame is a pinned buffer slot holding one page. It stays valid (and its
// page stays in memory) until Unfix is called; a frame must not be used
// afterwards.
type Frame struct {
	store *Store
	id    PageID
	data  []byte
	pins  int32
	dirty bool
	elem  *list.Element // position in the LRU list when unpinned
}

// ID returns the page ID held by the frame.
func (f *Frame) ID() PageID { return f.id }

// Data returns the page bytes. Mutating them requires holding the pin and
// calling MarkDirty before Unfix.
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the page content changed and must be written back
// before eviction.
func (f *Frame) MarkDirty() {
	f.store.mu.Lock()
	f.dirty = true
	f.store.mu.Unlock()
}

// Store is the buffer manager: a fixed pool of page frames over a Backend
// with LRU replacement of unpinned frames.
type Store struct {
	backend Backend
	mu      sync.Mutex
	frames  map[PageID]*Frame
	lru     *list.List // unpinned frames, front = least recently used
	cap     int
	wal     LogSyncer
	capture *Capture

	retry    RetryPolicy
	retryMu  sync.Mutex
	retryRng *rand.Rand

	hits, misses, evictions, writebacks, retries, retryFailures atomic.Uint64
}

// LogSyncer is the write-ahead log hook the WAL rule needs: FlushTo blocks
// until the log is durable up to lsn (and fails once the log is dead, which
// stops all further write-backs — after a log crash nothing unlogged may
// reach the backend). The wal package's Log satisfies it; the indirection
// keeps pagestore free of a wal import.
type LogSyncer interface {
	FlushTo(lsn uint64) error
}

// SetWAL attaches a write-ahead log. From then on every dirty-page
// write-back first forces the log up to the page's LSN (the WAL rule).
func (s *Store) SetWAL(w LogSyncer) {
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
}

// RetryPolicy bounds how the buffer manager re-attempts backend operations
// that failed with a transient classification (see IsTransient). Permanent
// and unclassified failures are never retried.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure.
	MaxRetries int
	// BaseBackoff is slept before the first retry; it doubles per attempt.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling.
	MaxBackoff time.Duration
	// Seed drives the backoff jitter (±50%), keeping runs reproducible.
	Seed int64
}

// DefaultRetryPolicy absorbs short transient glitches without stalling the
// engine: backoffs stay in the microsecond range because some retries run
// under the buffer-table mutex.
var DefaultRetryPolicy = RetryPolicy{
	MaxRetries:  5,
	BaseBackoff: 50 * time.Microsecond,
	MaxBackoff:  2 * time.Millisecond,
}

// RetryExhaustedError wraps a transient failure that outlived the retry
// budget. It reclassifies the chain as permanent: the caller must not keep
// retrying what the buffer manager already gave up on.
type RetryExhaustedError struct {
	// Attempts is the total number of attempts made.
	Attempts int
	// Err is the last failure.
	Err error
}

// Error implements error.
func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("pagestore: %d attempts exhausted: %v", e.Attempts, e.Err)
}

// Unwrap exposes the last failure.
func (e *RetryExhaustedError) Unwrap() error { return e.Err }

// Transient reports false: the retry budget is spent.
func (e *RetryExhaustedError) Transient() bool { return false }

// Permanent reports true.
func (e *RetryExhaustedError) Permanent() bool { return true }

// SetRetryPolicy replaces the store's retry policy (DefaultRetryPolicy at
// Open). Call before concurrent use.
func (s *Store) SetRetryPolicy(p RetryPolicy) {
	s.retry = p
	s.retryRng = rand.New(rand.NewSource(p.Seed))
}

// withRetry runs op, re-attempting transient failures with exponential
// backoff and seeded jitter. A transient failure that survives the budget
// comes back wrapped in RetryExhaustedError (classified permanent).
func (s *Store) withRetry(op func() error) error {
	err := op()
	if err == nil || !IsTransient(err) {
		return err
	}
	backoff := s.retry.BaseBackoff
	for attempt := 0; attempt < s.retry.MaxRetries; attempt++ {
		s.retries.Add(1)
		if backoff > 0 {
			s.retryMu.Lock()
			j := s.retryRng.Float64()
			s.retryMu.Unlock()
			time.Sleep(backoff/2 + time.Duration(float64(backoff)*j))
		}
		if backoff *= 2; backoff > s.retry.MaxBackoff {
			backoff = s.retry.MaxBackoff
		}
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
	}
	s.retryFailures.Add(1)
	return &RetryExhaustedError{Attempts: s.retry.MaxRetries + 1, Err: err}
}

// ErrNoFrames is returned when every frame is pinned and a new page is
// requested.
var ErrNoFrames = errors.New("pagestore: all buffer frames pinned")

// DefaultFrames is the default buffer pool capacity.
const DefaultFrames = 1024

// Open wraps backend in a buffer manager with the given frame capacity
// (DefaultFrames if frames <= 0).
func Open(backend Backend, frames int) *Store {
	if frames <= 0 {
		frames = DefaultFrames
	}
	s := &Store{
		backend: backend,
		frames:  make(map[PageID]*Frame, frames),
		lru:     list.New(),
		cap:     frames,
	}
	s.SetRetryPolicy(DefaultRetryPolicy)
	return s
}

// Backend exposes the underlying backend (used by tests and tools).
func (s *Store) Backend() Backend { return s.backend }

// Fix pins the page into a frame, reading it from the backend on a miss.
// Every successful Fix must be paired with exactly one Unfix.
func (s *Store) Fix(id PageID) (*Frame, error) {
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		f.pins++
		if f.elem != nil {
			s.lru.Remove(f.elem)
			f.elem = nil
		}
		if s.capture != nil {
			s.capture.noteLocked(f)
		}
		s.mu.Unlock()
		s.hits.Add(1)
		return f, nil
	}
	f, err := s.allocFrameLocked(id)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	// The read happens under the table lock: once the frame is mapped, a
	// concurrent Fix for the same page would pin it and expect loaded data,
	// so the frame must not become visible-but-empty. Transient-fault
	// retries therefore also sleep under the lock — backoffs are bounded to
	// microseconds by the retry policy.
	if err := s.withRetry(func() error { return s.backend.ReadPage(id, f.data) }); err != nil {
		s.dropFrameLocked(f)
		s.mu.Unlock()
		return nil, err
	}
	// Detect torn or corrupt images at read time: the checksum was stamped
	// by the last write-back, so a mismatch means the backend returned a
	// page that was never completely written. Classified permanent — the
	// retry loop must not spin on it; recovery (full-image redo) is the
	// only heal.
	if err := VerifyChecksum(id, f.data); err != nil {
		s.dropFrameLocked(f)
		s.mu.Unlock()
		return nil, err
	}
	if s.capture != nil {
		s.capture.noteLocked(f)
	}
	s.mu.Unlock()
	s.misses.Add(1)
	return f, nil
}

// FixNew allocates a fresh zeroed page in the backend and pins it.
func (s *Store) FixNew() (*Frame, error) {
	var id PageID
	err := s.withRetry(func() (e error) { id, e = s.backend.Allocate(); return e })
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	f.dirty = true
	if s.capture != nil {
		s.capture.noteLocked(f)
	}
	return f, nil
}

// allocFrameLocked finds or evicts a frame for page id, pins it once, and
// maps it. The caller holds s.mu. The returned frame's data is zeroed.
func (s *Store) allocFrameLocked(id PageID) (*Frame, error) {
	var f *Frame
	if len(s.frames) < s.cap {
		f = &Frame{store: s, data: make([]byte, PageSize)}
	} else {
		el := s.lru.Front()
		if el == nil {
			return nil, fmt.Errorf("%w (capacity %d)", ErrNoFrames, s.cap)
		}
		f = el.Value.(*Frame)
		s.lru.Remove(el)
		f.elem = nil
		delete(s.frames, f.id)
		s.evictions.Add(1)
		if f.dirty {
			if err := s.writeBackLocked(f); err != nil {
				// Re-insert the victim so the page is not lost.
				s.frames[f.id] = f
				f.elem = s.lru.PushFront(f)
				return nil, err
			}
		}
		for i := range f.data {
			f.data[i] = 0
		}
	}
	f.id = id
	f.pins = 1
	s.frames[id] = f
	return f, nil
}

// writeBackLocked persists one dirty frame: it enforces the WAL rule
// (force the log up to the page's LSN first — with no attached log the
// rule is vacuous), stamps the page checksum, and writes through the retry
// policy. The caller holds s.mu. FlushTo is called unconditionally, even
// for pages with LSN 0: a crashed log fails every FlushTo, which is
// exactly the barrier that keeps post-crash unlogged content off the
// backend.
func (s *Store) writeBackLocked(f *Frame) error {
	if s.wal != nil {
		if err := s.wal.FlushTo(PageLSN(f.data)); err != nil {
			return fmt.Errorf("pagestore: WAL rule for page %d: %w", f.id, err)
		}
	}
	StampChecksum(f.data)
	if err := s.withRetry(func() error { return s.backend.WritePage(f.id, f.data) }); err != nil {
		return err
	}
	s.writebacks.Add(1)
	f.dirty = false
	return nil
}

// dropFrameLocked removes a freshly allocated frame after a failed read.
func (s *Store) dropFrameLocked(f *Frame) {
	delete(s.frames, f.id)
	f.pins = 0
}

// Unfix releases one pin. When the pin count reaches zero the frame becomes
// eligible for eviction (dirty content is written back lazily).
func (s *Store) Unfix(f *Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.pins <= 0 {
		panic("pagestore: Unfix without matching Fix")
	}
	// A frame inside an active capture keeps its pins until the capture
	// closes: its content may be ahead of the log, so it must not become
	// evictable before the operation's record is appended and stamped.
	if s.capture != nil && s.capture.deferUnfixLocked(f) {
		return
	}
	f.pins--
	if f.pins == 0 {
		f.elem = s.lru.PushBack(f)
	}
}

// Flush writes all dirty buffered pages to the backend and syncs it.
func (s *Store) Flush() error {
	s.mu.Lock()
	for _, f := range s.frames {
		if f.dirty {
			if err := s.writeBackLocked(f); err != nil {
				s.mu.Unlock()
				return err
			}
		}
	}
	s.mu.Unlock()
	return s.withRetry(s.backend.Sync)
}

// Close flushes and closes the backend.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		s.backend.Close()
		return err
	}
	return s.backend.Close()
}

// Stats returns a snapshot of the buffer counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Evictions:     s.evictions.Load(),
		Writebacks:    s.writebacks.Load(),
		Retries:       s.retries.Load(),
		RetryFailures: s.retryFailures.Load(),
	}
}

// PinnedFrames reports how many frames currently hold at least one pin
// (test and debugging aid for pin-leak detection).
func (s *Store) PinnedFrames() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}
