// Package pagestore provides the disk substrate of the XDBMS: fixed-size
// pages on a backing store (file or memory) behind a pinning buffer manager
// with LRU replacement. The document container and all B*-tree indexes of
// Section 3 live on these pages; the paper's observation that most upper
// index layers stay buffer-resident ("reference locality ... reducing disk
// accesses to a minimum") is what the buffer manager reproduces.
package pagestore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// PageSize is the size of every page in bytes.
const PageSize = 8192

// PageID identifies a page within a backend. Page 0 is valid and usually
// holds store metadata.
type PageID uint32

// InvalidPage is a sentinel PageID that no backend ever allocates.
const InvalidPage = PageID(^uint32(0))

// Backend is the raw page I/O interface under the buffer manager.
// Implementations must be safe for concurrent use.
type Backend interface {
	// ReadPage fills buf (len PageSize) with the page's content.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len PageSize) as the page's content.
	WritePage(id PageID, buf []byte) error
	// Allocate reserves a fresh zeroed page and returns its ID.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() PageID
	// Sync flushes backend buffers to stable storage.
	Sync() error
	// Close releases backend resources.
	Close() error
}

// ErrPageOutOfRange is returned when accessing an unallocated page.
var ErrPageOutOfRange = errors.New("pagestore: page out of range")

// MemBackend keeps pages in memory. SimulatedLatency, when non-zero, is
// spent on every page read and write to approximate disk behavior in
// benchmarks without real I/O (see DESIGN.md, substitutions).
type MemBackend struct {
	mu               sync.RWMutex
	pages            [][]byte
	SimulatedLatency time.Duration
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// Clone returns a deep copy of the backend's pages. The crash-recovery
// benchmarks and the parallel-vs-serial redo oracle recover the same crash
// image repeatedly; cloning keeps each run independent.
func (m *MemBackend) Clone() *MemBackend {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := &MemBackend{
		pages:            make([][]byte, len(m.pages)),
		SimulatedLatency: m.SimulatedLatency,
	}
	for i, p := range m.pages {
		c.pages[i] = append([]byte(nil), p...)
	}
	return c
}

// simulateIO spends SimulatedLatency as device time. Sub-millisecond
// latencies busy-wait: time.Sleep rounds short sleeps up to scheduler
// granularity (a millisecond or more), which would turn a simulated 20µs
// seek into a 1ms one and swamp any benchmark built on it.
func (m *MemBackend) simulateIO() {
	d := m.SimulatedLatency
	if d <= 0 {
		return
	}
	if d >= time.Millisecond {
		time.Sleep(d)
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// ReadPage implements Backend.
func (m *MemBackend) ReadPage(id PageID, buf []byte) error {
	m.simulateIO()
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Backend.
func (m *MemBackend) WritePage(id PageID, buf []byte) error {
	m.simulateIO()
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	copy(m.pages[id], buf)
	return nil
}

// Allocate implements Backend.
func (m *MemBackend) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pages) >= int(InvalidPage) {
		return InvalidPage, errors.New("pagestore: memory backend full")
	}
	m.pages = append(m.pages, make([]byte, PageSize))
	return PageID(len(m.pages) - 1), nil
}

// NumPages implements Backend.
func (m *MemBackend) NumPages() PageID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return PageID(len(m.pages))
}

// Sync implements Backend.
func (m *MemBackend) Sync() error { return nil }

// Close implements Backend.
func (m *MemBackend) Close() error { return nil }

// FileBackend stores pages in a single OS file at offset id*PageSize.
type FileBackend struct {
	mu    sync.Mutex
	f     *os.File
	pages PageID
}

// OpenFile opens (creating if necessary) a file backend at path. An existing
// file must have a size that is a multiple of PageSize.
func OpenFile(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagestore: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pagestore: %s has size %d, not a multiple of %d", path, st.Size(), PageSize)
	}
	return &FileBackend{f: f, pages: PageID(st.Size() / PageSize)}, nil
}

// ReadPage implements Backend.
func (b *FileBackend) ReadPage(id PageID, buf []byte) error {
	b.mu.Lock()
	n := b.pages
	b.mu.Unlock()
	if id >= n {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, n)
	}
	if _, err := b.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("pagestore: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Backend.
func (b *FileBackend) WritePage(id PageID, buf []byte) error {
	b.mu.Lock()
	n := b.pages
	b.mu.Unlock()
	if id >= n {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, n)
	}
	if _, err := b.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagestore: write page %d: %w", id, err)
	}
	return nil
}

// Allocate implements Backend.
func (b *FileBackend) Allocate() (PageID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.pages
	var zero [PageSize]byte
	if _, err := b.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return InvalidPage, fmt.Errorf("pagestore: extend to page %d: %w", id, err)
	}
	b.pages++
	return id, nil
}

// NumPages implements Backend.
func (b *FileBackend) NumPages() PageID {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pages
}

// Sync implements Backend.
func (b *FileBackend) Sync() error { return b.f.Sync() }

// Close implements Backend.
func (b *FileBackend) Close() error { return b.f.Close() }
