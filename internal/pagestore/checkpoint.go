package pagestore

// Checkpoint support: the buffer pool's contribution to a fuzzy checkpoint
// is the dirty-page table — every resident dirty page with the LSN of the
// first record that dirtied it (recLSN). The WAL layer combines it with
// the active-transaction table to compute the redo LSN a restart can scan
// from and the truncation point behind which segments may be unlinked.

// DirtyPage is one dirty-page-table entry: a resident dirty page and the
// LSN of the first log record that dirtied it since it last went clean.
// RecLSN 0 means the dirt predates LSN tracking (page dirtied without a
// WAL attached); consumers must treat such entries as "unbounded below"
// and fall back to the scan's other floors.
type DirtyPage struct {
	Page   PageID
	RecLSN uint64
}

// DirtyPageTable snapshots the dirty-page table without quiescing writers.
// It returns the table plus the capture floor: the log position published
// by a capture that was in flight while the scan ran. The floor is loaded
// BEFORE the frames are scanned — with sequentially consistent atomics
// this ordering is load-bearing. If the scan observes floor == 0, any
// capture whose Commit stores were missed by the scan must have begun
// after the floor load, hence after the caller snapshotted the log's next
// LSN, hence its records sit above that snapshot and need no dirty-table
// coverage. If floor != 0, the in-flight capture's records are at or above
// the floor, and the caller folds the floor into its redo-LSN minimum.
func (s *Store) DirtyPageTable() ([]DirtyPage, uint64) {
	floor := s.captureFloor.Load()
	var out []DirtyPage
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, f := range sh.pages {
			if f.dirty.Load() {
				out = append(out, DirtyPage{Page: id, RecLSN: f.recLSN.Load()})
			}
		}
		sh.mu.RUnlock()
	}
	return out, floor
}

// SetCheckpointer installs the function the background flusher invokes on
// every checkpoint tick (Config.CheckpointInterval). The storage layer
// installs a closure that drives wal.Log.Checkpoint; installing nil (or
// never installing) makes checkpoint ticks no-ops.
func (s *Store) SetCheckpointer(fn func() error) {
	if fn == nil {
		s.checkpointer.Store(nil)
		return
	}
	s.checkpointer.Store(&fn)
}
