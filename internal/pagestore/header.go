package pagestore

// Common page header. Every page managed through the buffer pool reserves
// its first PageHeaderSize bytes for recovery metadata; the layers above
// (btree, storage metadata) lay their content out after it.
//
//	off 0  u64  pageLSN — LSN of the last log record applied to this page
//	off 8  u32  checksum — CRC32-C over the rest of the page; 0 = unstamped
//	off 12 u32  reserved
//
// The pageLSN drives the WAL rule (the log must be durable up to it before
// the page is written back) and makes redo conditional: a record is applied
// only when its LSN exceeds the page's. The checksum is stamped on every
// write-back and verified on every Fix that reads from the backend, so a
// torn write surfaces as a permanent, classified error at read time instead
// of silent corruption.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// PageHeaderSize is the number of bytes reserved at the start of every page
// for the recovery header.
const PageHeaderSize = 16

// checksumOff is the byte offset of the checksum field within the header.
const checksumOff = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// PageLSN reads the page's LSN from its header.
func PageLSN(p []byte) uint64 {
	return binary.LittleEndian.Uint64(p[:8])
}

// SetPageLSN stamps the page's LSN into its header.
func SetPageLSN(p []byte, lsn uint64) {
	binary.LittleEndian.PutUint64(p[:8], lsn)
}

// pageCRC computes the page checksum: CRC32-C over the whole page with the
// checksum field itself skipped. The reserved value 0 ("unstamped") is
// mapped to 1.
func pageCRC(p []byte) uint32 {
	c := crc32.Update(0, crcTable, p[:checksumOff])
	c = crc32.Update(c, crcTable, p[checksumOff+4:])
	if c == 0 {
		c = 1
	}
	return c
}

// StampChecksum computes and stores the page checksum. The buffer manager
// calls it immediately before every backend write.
func StampChecksum(p []byte) {
	binary.LittleEndian.PutUint32(p[checksumOff:], pageCRC(p))
}

// VerifyChecksum checks a page image read from the backend. A stored value
// of 0 means the page was never stamped (fresh allocation, pre-header data)
// and is accepted; any other mismatch is corruption — typically a torn
// write — and returns a *ChecksumError.
func VerifyChecksum(id PageID, p []byte) error {
	stored := binary.LittleEndian.Uint32(p[checksumOff:])
	if stored == 0 {
		return nil
	}
	if got := pageCRC(p); got != stored {
		return &ChecksumError{Page: id, Stored: stored, Computed: got}
	}
	return nil
}

// ChecksumError reports a page whose stored checksum does not match its
// content. It classifies as permanent: re-reading the same torn image
// cannot heal it, only recovery (or a full-image rewrite) can.
type ChecksumError struct {
	Page     PageID
	Stored   uint32
	Computed uint32
}

// Error implements error.
func (e *ChecksumError) Error() string {
	return fmt.Sprintf("pagestore: page %d checksum mismatch: stored %08x, computed %08x (torn or corrupt page)",
		e.Page, e.Stored, e.Computed)
}

// Transient implements the fault-classification probe: never retryable.
func (e *ChecksumError) Transient() bool { return false }

// Permanent implements the fault-classification probe.
func (e *ChecksumError) Permanent() bool { return true }
