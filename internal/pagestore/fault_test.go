package pagestore

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func newFaultedMem(t *testing.T, cfg FaultConfig, pages int) (*FaultBackend, *MemBackend) {
	t.Helper()
	mem := NewMemBackend()
	fb := NewFaultBackend(mem, cfg)
	fb.Disarm()
	for i := 0; i < pages; i++ {
		if _, err := fb.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	fb.Arm()
	return fb, mem
}

func TestFaultClassification(t *testing.T) {
	te := &FaultError{Op: OpRead, Page: 3, Class: ClassTransient}
	pe := &FaultError{Op: OpWrite, Page: 4, Class: ClassPermanent}
	if !IsTransient(te) || IsPermanent(te) {
		t.Errorf("transient fault classified as %s", Classify(te))
	}
	if IsTransient(pe) || !IsPermanent(pe) {
		t.Errorf("permanent fault classified as %s", Classify(pe))
	}
	if !errors.Is(te, ErrInjectedFault) {
		t.Error("FaultError does not unwrap to ErrInjectedFault")
	}
	// Wrapping must preserve the classification.
	wrapped := errors.Join(errors.New("context"), te)
	if !IsTransient(wrapped) {
		t.Error("wrapping lost the transient classification")
	}
	if Classify(errors.New("plain")) != "unclassified" {
		t.Error("plain error should be unclassified")
	}
	// Retry exhaustion flips transient to permanent even though the
	// original transient error stays in the chain.
	ex := &RetryExhaustedError{Attempts: 6, Err: te}
	if IsTransient(ex) || !IsPermanent(ex) {
		t.Errorf("exhausted retry classified as %s", Classify(ex))
	}
	if !errors.Is(ex, ErrInjectedFault) {
		t.Error("RetryExhaustedError lost the error chain")
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	cfg := FaultConfig{Schedule: []ScheduledFault{
		{Op: OpRead, N: 2, Class: ClassTransient},
		{Op: OpWrite, N: 1, Class: ClassPermanent},
	}}
	fb, _ := newFaultedMem(t, cfg, 4)
	buf := make([]byte, PageSize)

	if err := fb.ReadPage(0, buf); err != nil {
		t.Fatalf("read 1 should pass: %v", err)
	}
	err := fb.ReadPage(1, buf)
	if !IsTransient(err) {
		t.Fatalf("read 2 should fail transient, got %v", err)
	}
	if err := fb.ReadPage(2, buf); err != nil {
		t.Fatalf("read 3 should pass: %v", err)
	}
	if err := fb.WritePage(0, buf); !IsPermanent(err) {
		t.Fatalf("write 1 should fail permanent, got %v", err)
	}
	st := fb.Stats()
	if st.Injected[OpRead] != 1 || st.Injected[OpWrite] != 1 || st.TotalInjected() != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultDisarmedPassesThrough(t *testing.T) {
	cfg := FaultConfig{ReadProb: 1, WriteProb: 1, SyncProb: 1, AllocProb: 1}
	fb, _ := newFaultedMem(t, cfg, 1)
	fb.Disarm()
	buf := make([]byte, PageSize)
	if err := fb.ReadPage(0, buf); err != nil {
		t.Errorf("disarmed read failed: %v", err)
	}
	if err := fb.WritePage(0, buf); err != nil {
		t.Errorf("disarmed write failed: %v", err)
	}
	if _, err := fb.Allocate(); err != nil {
		t.Errorf("disarmed allocate failed: %v", err)
	}
	if st := fb.Stats(); st.TotalInjected() != 0 || st.Ops[OpRead] != 0 {
		t.Errorf("disarmed ops counted: %+v", st)
	}
}

func TestFaultProbabilisticSeededReproducible(t *testing.T) {
	run := func() FaultStats {
		fb, _ := newFaultedMem(t, FaultConfig{Seed: 42, ReadProb: 0.3, PermanentFraction: 0.5}, 8)
		buf := make([]byte, PageSize)
		for i := 0; i < 200; i++ {
			fb.ReadPage(PageID(i%8), buf) //nolint:errcheck — faults expected
		}
		return fb.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Injected[OpRead] == 0 || a.Injected[OpRead] == a.Ops[OpRead] {
		t.Errorf("implausible injection count: %+v", a)
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	cfg := FaultConfig{Schedule: []ScheduledFault{{Op: OpWrite, N: 1, Class: ClassTransient, Torn: true}}}
	fb, mem := newFaultedMem(t, cfg, 1)

	old := bytes.Repeat([]byte{0xAA}, PageSize)
	fb.Disarm()
	if err := fb.WritePage(0, old); err != nil {
		t.Fatal(err)
	}
	fb.Arm()

	img := bytes.Repeat([]byte{0xBB}, PageSize)
	err := fb.WritePage(0, img)
	var fe *FaultError
	if !errors.As(err, &fe) || !fe.Torn {
		t.Fatalf("want torn FaultError, got %v", err)
	}
	got := make([]byte, PageSize)
	if err := mem.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:TornPrefix], img[:TornPrefix]) {
		t.Error("torn write did not persist the new prefix")
	}
	if !bytes.Equal(got[TornPrefix:], old[TornPrefix:]) {
		t.Error("torn write touched the tail")
	}
	if fb.Stats().TornWrites != 1 {
		t.Errorf("TornWrites = %d", fb.Stats().TornWrites)
	}
}

func TestBufferRetryAbsorbsTransientFaults(t *testing.T) {
	// Every odd read fails transient; the retry loop must hide that from
	// Fix entirely.
	var sched []ScheduledFault
	for n := uint64(1); n <= 40; n += 2 {
		sched = append(sched, ScheduledFault{Op: OpRead, N: n, Class: ClassTransient})
	}
	fb, _ := newFaultedMem(t, FaultConfig{Schedule: sched}, 8)
	s := Open(fb, 2) // tiny pool forces repeated backend reads
	s.SetRetryPolicy(RetryPolicy{MaxRetries: 3, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond})
	for i := 0; i < 16; i++ {
		f, err := s.Fix(PageID(i % 8))
		if err != nil {
			t.Fatalf("Fix(%d): %v", i%8, err)
		}
		s.Unfix(f)
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Error("no retries recorded")
	}
	if st.RetryFailures != 0 {
		t.Errorf("RetryFailures = %d", st.RetryFailures)
	}
}

func TestBufferRetryEscalatesAfterBudget(t *testing.T) {
	fb, _ := newFaultedMem(t, FaultConfig{ReadProb: 1}, 1) // every read fails
	s := Open(fb, 2)
	s.SetRetryPolicy(RetryPolicy{MaxRetries: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond})
	_, err := s.Fix(0)
	if err == nil {
		t.Fatal("Fix succeeded through a 100% fault rate")
	}
	if !IsPermanent(err) || IsTransient(err) {
		t.Errorf("exhausted Fix error classified as %s: %v", Classify(err), err)
	}
	if st := s.Stats(); st.Retries != 2 || st.RetryFailures != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The failed frame must not linger: a later Fix with injection off
	// reads cleanly.
	fb.Disarm()
	f, err := s.Fix(0)
	if err != nil {
		t.Fatalf("Fix after disarm: %v", err)
	}
	s.Unfix(f)
}

func TestBufferRetryNeverRetriesPermanent(t *testing.T) {
	fb, _ := newFaultedMem(t, FaultConfig{ReadProb: 1, PermanentFraction: 1}, 1)
	s := Open(fb, 2)
	s.SetRetryPolicy(RetryPolicy{MaxRetries: 5, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond})
	if _, err := s.Fix(0); !IsPermanent(err) {
		t.Fatalf("want permanent fault, got %v", err)
	}
	if st := s.Stats(); st.Retries != 0 {
		t.Errorf("permanent fault was retried %d times", st.Retries)
	}
	if fb.Stats().Ops[OpRead] != 1 {
		t.Errorf("backend saw %d reads, want 1", fb.Stats().Ops[OpRead])
	}
}

func TestTornWriteHealedByRetry(t *testing.T) {
	// A transient torn write leaves a half-new page, but the retry rewrites
	// the full image: the store's view stays consistent.
	cfg := FaultConfig{Schedule: []ScheduledFault{{Op: OpWrite, N: 1, Class: ClassTransient, Torn: true}}}
	fb, mem := newFaultedMem(t, cfg, 1)
	s := Open(fb, 2)
	s.SetRetryPolicy(RetryPolicy{MaxRetries: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond})

	f, err := s.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	img := bytes.Repeat([]byte{0xCD}, PageSize)
	copy(f.Data(), img)
	f.MarkDirty()
	s.Unfix(f)
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := make([]byte, PageSize)
	if err := mem.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	// The body must match; the header's checksum field is owned by the
	// write-back path and is stamped over whatever the test wrote there.
	if !bytes.Equal(got[PageHeaderSize:], img[PageHeaderSize:]) {
		t.Error("retry did not heal the torn page")
	}
	if err := VerifyChecksum(0, got); err != nil {
		t.Errorf("healed page fails checksum: %v", err)
	}
	if fb.Stats().TornWrites != 1 {
		t.Errorf("TornWrites = %d", fb.Stats().TornWrites)
	}
}

func TestFixRejectsCorruptPageAsPermanent(t *testing.T) {
	// A permanently-failing torn write leaves a half-new page on disk with
	// a checksum that matches neither half. A later cold Fix of that page
	// must refuse to serve the garbage: it fails with a ChecksumError that
	// classifies as permanent (retrying the read cannot help), and the
	// frame is not cached.
	cfg := FaultConfig{Schedule: []ScheduledFault{{Op: OpWrite, N: 1, Class: ClassPermanent, Torn: true}}}
	fb, _ := newFaultedMem(t, cfg, 1)
	s := Open(fb, 2)

	// Establish a valid stamped page, then overwrite it with a torn image.
	fb.Disarm()
	f, err := s.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data(), bytes.Repeat([]byte{0xAA}, PageSize))
	f.MarkDirty()
	s.Unfix(f)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	fb.Arm()
	f, err = s.Fix(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data()[PageHeaderSize:], bytes.Repeat([]byte{0xBB}, PageSize-PageHeaderSize))
	f.MarkDirty()
	s.Unfix(f)
	if err := s.Flush(); err == nil {
		t.Fatal("permanent write fault did not surface through Flush")
	}
	if fb.Stats().TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", fb.Stats().TornWrites)
	}

	// Cold read: a fresh store must detect the torn page.
	s2 := Open(fb, 2)
	_, err = s2.Fix(0)
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("Fix of torn page = %v, want ChecksumError", err)
	}
	if ce.Page != 0 {
		t.Errorf("ChecksumError.Page = %d", ce.Page)
	}
	if IsTransient(err) || !IsPermanent(err) {
		t.Errorf("checksum failure classified as %s, want permanent", Classify(err))
	}
	// The poisoned frame must not be cached: a second Fix re-reads and
	// fails identically instead of serving garbage.
	if _, err := s2.Fix(0); !errors.As(err, &ce) {
		t.Errorf("second Fix = %v, want ChecksumError again", err)
	}
}
