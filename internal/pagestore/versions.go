package pagestore

import "fmt"

// Page-version sidecar: the copy-on-write layer behind MVCC snapshot reads.
//
// While a snapshot source is installed (SetSnapshotSource), every page
// noted by a capture publishes its pre-image into a per-page version chain
// before the capture mutates the live bytes. A chain entry covers the
// half-open LSN interval [lsn, end): lsn is the pre-image's own pageLSN and
// end is the stamp the capture's record put on the live page (0 while the
// capture is still open). A snapshot reader pinned at S resolves a page via
// FixAt: the live frame when it is visible (no capture in flux and
// pageLSN <= S), otherwise the newest chain entry whose interval covers S.
//
// Retirement is watermark-driven: entries whose end lies at or below the
// oldest active snapshot (or, with no snapshots active, the log's current
// commit-consistent position) can never be read again — the snapshot-LSN
// watermark is monotonic — and are pruned opportunistically at capture
// close, on flusher ticks, and at checkpoints.

// pageVersion is one retained pre-image of a page.
type pageVersion struct {
	lsn  uint64 // pageLSN of the image: first snapshot LSN it serves
	end  uint64 // first LSN the image no longer serves (0 = open)
	data []byte
}

// SetSnapshotSource installs the oldest-snapshot watermark callback and
// turns version publication on. fn must be safe for concurrent use
// (typically tx.Manager.SnapshotWatermark). Install it before the first
// write that snapshot transactions should be isolated from; with no source
// installed the version layer is completely inert.
func (s *Store) SetSnapshotSource(fn func() uint64) {
	s.snapSrc.Store(&fn)
}

// SnapshotsEnabled reports whether a snapshot source is installed.
func (s *Store) SnapshotsEnabled() bool { return s.snapSrc.Load() != nil }

// snapshotWatermark returns the current retirement watermark, or 0 when
// versioning is off.
func (s *Store) snapshotWatermark() uint64 {
	if fn := s.snapSrc.Load(); fn != nil {
		return (*fn)()
	}
	return 0
}

// pushVersion publishes a page's pre-image as the open head of its version
// chain. Called by Capture.note with the pre-image it just copied; the
// slice is shared (both sides only read it). Reports whether an entry was
// pushed — the capture closes or drops it when it resolves.
func (s *Store) pushVersion(id PageID, pre []byte) bool {
	if s.snapSrc.Load() == nil {
		return false
	}
	lsn := PageLSN(pre)
	s.verMu.Lock()
	defer s.verMu.Unlock()
	chain := s.versions[id]
	if n := len(chain); n > 0 {
		tail := chain[n-1]
		if tail.end == 0 || tail.lsn >= lsn {
			// An open entry (a racing note of the same capture) or an image
			// at least as new already heads the chain.
			return false
		}
	}
	if s.versions == nil {
		s.versions = make(map[PageID][]*pageVersion)
	}
	s.versions[id] = append(chain, &pageVersion{lsn: lsn, data: pre})
	return true
}

// closeVersion seals the open head entry of a page's chain at end: the
// pre-image now serves snapshots in [lsn, end). Called by Capture.Commit
// with the record LSN it stamped into the live page.
func (s *Store) closeVersion(id PageID, end uint64) {
	s.verMu.Lock()
	defer s.verMu.Unlock()
	chain := s.versions[id]
	if n := len(chain); n > 0 && chain[n-1].end == 0 {
		chain[n-1].end = end
	}
}

// dropOpenVersion removes a page's open head entry — the capture noted the
// page but never logged a change to it, so the pre-image equals the live
// bytes and retains nothing.
func (s *Store) dropOpenVersion(id PageID) {
	s.verMu.Lock()
	defer s.verMu.Unlock()
	chain := s.versions[id]
	n := len(chain)
	if n == 0 || chain[n-1].end != 0 {
		return
	}
	if n == 1 {
		delete(s.versions, id)
		return
	}
	s.versions[id] = chain[:n-1]
}

// versionAt returns the page image visible to a snapshot at snap, if the
// chain holds one.
func (s *Store) versionAt(id PageID, snap uint64) ([]byte, bool) {
	s.verMu.Lock()
	defer s.verMu.Unlock()
	chain := s.versions[id]
	for i := len(chain) - 1; i >= 0; i-- {
		v := chain[i]
		if v.lsn <= snap && (v.end == 0 || v.end > snap) {
			return v.data, true
		}
	}
	return nil, false
}

// FixAt resolves page id as of snapshot snap: the live frame when it is
// visible (released via the returned func), otherwise the covering version
// chain entry (whose release func is a no-op). An error means no image
// covering snap exists — with a correctly maintained watermark that is an
// invariant violation, not a transient condition.
func (s *Store) FixAt(id PageID, snap uint64) ([]byte, func(), error) {
	f, err := s.Fix(id)
	if err != nil {
		// The live page is unreachable (I/O failure); a retained version
		// can still serve the snapshot.
		if data, ok := s.versionAt(id, snap); ok {
			return data, func() {}, nil
		}
		return nil, nil, err
	}
	// The influx flag must be read before the page bytes: a capture stamps
	// pageLSN only while the flag is up, so a down flag (acquire) means the
	// bytes — stamp included — are settled.
	if !f.influx.Load() && PageLSN(f.data) <= snap {
		return f.data, func() { s.Unfix(f) }, nil
	}
	s.Unfix(f)
	if data, ok := s.versionAt(id, snap); ok {
		return data, func() {}, nil
	}
	return nil, nil, fmt.Errorf("pagestore: no version of page %d covers snapshot LSN %d", id, snap)
}

// PruneVersions retires every chain entry sealed at or below the watermark
// w and returns how many entries were dropped. Safe because the snapshot
// watermark is monotonic: no present or future snapshot can have an LSN
// below w, and an entry with end <= w serves only snapshots below w.
func (s *Store) PruneVersions(w uint64) int {
	if w == 0 {
		return 0
	}
	s.verMu.Lock()
	defer s.verMu.Unlock()
	dropped := 0
	for id, chain := range s.versions {
		keep := chain[:0]
		for _, v := range chain {
			if v.end != 0 && v.end <= w {
				dropped++
				continue
			}
			keep = append(keep, v)
		}
		if len(keep) == 0 {
			delete(s.versions, id)
		} else {
			s.versions[id] = keep
		}
	}
	return dropped
}

// StaleVersions counts chain entries that should not exist in a drained
// store: entries sealed at or below the watermark w (PruneVersions residue)
// and open entries (a capture that never resolved them). It is the version
// layer's analogue of lock.Manager.LeakCheck and is meaningful only while
// no capture is active.
func (s *Store) StaleVersions(w uint64) int {
	s.verMu.Lock()
	defer s.verMu.Unlock()
	stale := 0
	for _, chain := range s.versions {
		for _, v := range chain {
			if v.end == 0 || v.end <= w {
				stale++
			}
		}
	}
	return stale
}

// RetainedVersions reports the total number of live chain entries (tooling
// and tests).
func (s *Store) RetainedVersions() int {
	s.verMu.Lock()
	defer s.verMu.Unlock()
	n := 0
	for _, chain := range s.versions {
		n += len(chain)
	}
	return n
}
