package pagestore

import "sync"

// Page-image capture: the hook the storage layer uses to turn one logical
// document operation into a physiological WAL record. While a capture is
// active on a Store, every page fixed (or newly allocated) gets its
// pre-image snapshotted, and all unpins on captured frames are deferred
// until the capture closes. The deferral is load-bearing: a captured page
// can hold modified content whose log record has not been appended yet, so
// it must not become evictable (the WAL rule could not be honored for it).
// Because the evictor, the background flusher, and Flush all require a
// zero pin count before touching a frame's bytes, the retained pins are
// exactly what keeps ahead-of-log content out of every concurrent
// write-back path.
//
// At the end of the operation the capture diffs each page body against its
// pre-image, the storage layer logs the deltas in a single record, and
// Commit stamps the record's LSN into every changed page before the pins
// are finally released.

// PageDelta is one contiguous changed byte range of a page, the redo unit
// of a physiological log record.
type PageDelta struct {
	// Page is the page the range belongs to.
	Page PageID
	// Off is the byte offset of the range within the page.
	Off int
	// Data is the after-image of the range.
	Data []byte
}

// FullImage reports whether the delta covers the entire page body (all
// bytes after the page header). Full-image deltas can heal a torn page
// during redo regardless of what the corrupt image contains.
func (d PageDelta) FullImage() bool {
	return d.Off == PageHeaderSize && len(d.Data) == PageSize-PageHeaderSize
}

// captureEntry tracks one page touched during a capture.
type captureEntry struct {
	f *Frame
	// pre is the page image at first Fix within the capture.
	pre []byte
	// deferred counts Unfix calls intercepted while the capture was active.
	deferred int32
	// logged is set by Deltas when the page body changed; Commit stamps
	// only logged entries.
	logged bool
	// full is set by Deltas when the page's complete body was emitted (a
	// full image); Commit then marks the frame imaged so later captures in
	// the same dirty epoch log minimal ranges.
	full bool
	// pushed is set by note when the pre-image was published to the page's
	// version chain (snapshot source installed); Commit seals the entry,
	// Close drops it if the capture never logged a change to the page.
	pushed bool
}

// Capture is one active page-image capture session. It is created by
// Store.BeginCapture and must be finished with Close exactly once. A Store
// supports at most one active capture; the storage layer's document latch
// provides that exclusion. The capture has its own mutex — the sharded
// store no longer has a global lock to piggyback on — guarding entries
// against the race between the owner's Fixes and other transactions'
// concurrent Unfix calls.
type Capture struct {
	s *Store

	mu      sync.Mutex
	closed  bool
	entries map[PageID]*captureEntry
	order   []PageID // insertion order, for deterministic delta layout
}

// BeginCapture starts a capture session. Until Close, every Fix/FixNew
// snapshots the page's pre-image and Unfix calls on captured frames are
// deferred. floor is the WAL position at which this capture's record will
// be appended at the earliest (the log's next LSN); it is published as the
// store's capture floor so a concurrent dirty-page-table scan can bound
// the recLSN of pages this capture is about to dirty. Pass 0 when no WAL
// is attached.
func (s *Store) BeginCapture(floor uint64) *Capture {
	c := &Capture{s: s, entries: make(map[PageID]*captureEntry)}
	if !s.capture.CompareAndSwap(nil, c) {
		panic("pagestore: nested capture")
	}
	s.captureFloor.Store(floor)
	return c
}

// noteCapture snapshots f into the active capture, if any. Called with the
// caller's pin held, after the frame is resident.
func (s *Store) noteCapture(f *Frame) {
	if c := s.capture.Load(); c != nil {
		c.note(f)
	}
}

// note snapshots f's pre-image on its first Fix within the capture.
func (c *Capture) note(f *Frame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if _, ok := c.entries[f.id]; ok {
		return
	}
	pre := make([]byte, PageSize)
	copy(pre, f.data)
	e := &captureEntry{f: f, pre: pre}
	// Raise the in-flux flag before the owner can mutate the page (the
	// owner's first touch is this Fix), diverting snapshot readers to the
	// version chain, and publish the pre-image as the chain's open head.
	// The slice is shared with the entry: both sides only read it.
	f.influx.Store(true)
	e.pushed = c.s.pushVersion(f.id, pre)
	c.entries[f.id] = e
	c.order = append(c.order, f.id)
}

// deferUnfix intercepts an Unfix on a captured frame. Returns false when
// the frame is not part of the capture (or the capture already closed), in
// which case the caller performs a normal unpin.
func (c *Capture) deferUnfix(f *Frame) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	e, ok := c.entries[f.id]
	if !ok || e.f != f {
		return false
	}
	e.deferred++
	return true
}

// Deltas diffs every captured page body against its pre-image and returns
// the changed ranges in page-touch order. A page that has no full body
// image in the log since it last went clean (the frame's imaged bit is
// unset) contributes its complete body instead of a minimal range — the
// torn-page healing anchor: recovery can rebuild the page from the log
// alone, and the image sits at exactly the page's recLSN, so a
// checkpoint-bounded redo scan always covers it. The header bytes are
// excluded: pageLSN and checksum are recovery metadata, not logged content.
func (c *Capture) Deltas() []PageDelta {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []PageDelta
	for _, id := range c.order {
		e := c.entries[id]
		lo, hi := diffRange(e.pre, e.f.data)
		if lo < 0 {
			continue
		}
		e.logged = true
		if !e.f.imaged.Load() {
			lo, hi = PageHeaderSize, PageSize
			e.full = true
		}
		data := make([]byte, hi-lo)
		copy(data, e.f.data[lo:hi])
		out = append(out, PageDelta{Page: id, Off: lo, Data: data})
	}
	return out
}

// diffRange returns the smallest [lo, hi) range within the page body where
// pre and cur differ, or lo = -1 when they are identical.
func diffRange(pre, cur []byte) (lo, hi int) {
	lo = -1
	for i := PageHeaderSize; i < PageSize; i++ {
		if pre[i] != cur[i] {
			lo = i
			break
		}
	}
	if lo < 0 {
		return -1, -1
	}
	hi = PageSize
	for hi > lo && pre[hi-1] == cur[hi-1] {
		hi--
	}
	return lo, hi
}

// Commit stamps lsn into every page Deltas reported changed and marks them
// dirty, establishing the pageLSN the WAL rule and conditional redo key on.
// Call it after the log record holding the deltas has been appended. The
// stamped frames are still pinned (their unpins are deferred), so no
// concurrent write-back can observe a half-stamped page.
func (c *Capture) Commit(lsn uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		e := c.entries[id]
		if !e.logged {
			continue
		}
		SetPageLSN(e.f.data, lsn)
		// First record to dirty the page this epoch wins the recLSN; the
		// CAS keeps an already-dirty page's earlier recLSN intact.
		e.f.recLSN.CompareAndSwap(0, lsn)
		if e.full {
			e.f.imaged.Store(true)
		}
		e.f.dirty.Store(true)
		if e.pushed {
			// Seal the chain entry at the new stamp: the retained pre-image
			// now serves exactly the snapshots older than this record.
			c.s.closeVersion(id, lsn)
		}
	}
}

// Close ends the capture: deferred unpins are applied and the store stops
// snapshotting. Must be called exactly once, after Deltas/Commit. The
// capture pointer is cleared first, so Unfix calls that race with Close
// either get deferred before the drain below or fall through to a normal
// unpin — never both.
func (c *Capture) Close() {
	if !c.s.capture.CompareAndSwap(c, nil) {
		panic("pagestore: capture closed twice or out of order")
	}
	c.s.captureFloor.Store(0)
	c.mu.Lock()
	c.closed = true
	pushed := false
	for _, id := range c.order {
		e := c.entries[id]
		if e.pushed {
			pushed = true
			if !e.logged {
				// The page's body never changed (a read-only touch, or an
				// operation that failed before mutating it): the open chain
				// entry duplicates the live bytes and retains nothing.
				c.s.dropOpenVersion(id)
			}
		}
		// Lower the in-flux flag after Commit's stamp: the release/acquire
		// pair on the flag is what publishes the new pageLSN to snapshot
		// readers that go on to read the live bytes.
		e.f.influx.Store(false)
		if e.deferred > 0 {
			if n := e.f.pins.Add(-e.deferred); n < 0 {
				panic("pagestore: capture pin accounting underflow")
			}
		}
	}
	c.mu.Unlock()
	if pushed {
		// Opportunistic retirement: every capture close is a chance to drop
		// chain entries no active snapshot can reach anymore.
		c.s.PruneVersions(c.s.snapshotWatermark())
	}
}
