// Package tx provides the transaction layer of the XDBMS: begin/commit/
// abort with physical undo logging, the four isolation levels of the
// paper's experiments (Section 4.3), and transaction statistics.
//
// Lock acquisition itself lives in the protocol layer; this package decides
// *when* locks are released (commit for repeatable read, operation end for
// the weaker levels) and guarantees that an aborting transaction physically
// undoes its document changes while still holding its locks.
package tx

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// Level is an isolation level. The ordering matches the paper: stronger
// levels give more consistency and (usually) less throughput.
type Level int

const (
	// LevelNone acquires no locks at all.
	LevelNone Level = iota
	// LevelUncommitted takes long write locks but no read locks.
	LevelUncommitted
	// LevelCommitted takes short read locks (released at operation end) and
	// long write locks.
	LevelCommitted
	// LevelRepeatable takes long read and write locks, released at commit —
	// the level all 11 protocols are compared under.
	LevelRepeatable
	// LevelSnapshot is MVCC snapshot isolation for read-only transactions:
	// Begin pins the WAL's newest commit-consistent LSN and every read
	// resolves pages as of that position through the version layer — zero
	// lock-manager traffic. Write operations are rejected; writers keep
	// their taDOM protocol at one of the locking levels above.
	LevelSnapshot
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelUncommitted:
		return "uncommitted"
	case LevelCommitted:
		return "committed"
	case LevelRepeatable:
		return "repeatable"
	case LevelSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel converts the textual names used by the CLI tools.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "none":
		return LevelNone, nil
	case "uncommitted":
		return LevelUncommitted, nil
	case "committed":
		return LevelCommitted, nil
	case "repeatable":
		return LevelRepeatable, nil
	case "snapshot":
		return LevelSnapshot, nil
	default:
		return 0, fmt.Errorf("tx: unknown isolation level %q", s)
	}
}

// Status is a transaction's lifecycle state.
type Status int

const (
	// StatusActive means the transaction can still operate.
	StatusActive Status = iota
	// StatusCommitted is terminal and successful.
	StatusCommitted
	// StatusAborted is terminal; all changes were undone.
	StatusAborted
)

// ErrTxnDone is returned when finishing an already-finished transaction:
// Commit after Abort, Abort after Commit, or either one twice. The first
// outcome always stands.
var ErrTxnDone = errors.New("tx: transaction already finished")

// ErrNotActive is the historical name for ErrTxnDone; both errors.Is checks
// match the same sentinel.
var ErrNotActive = ErrTxnDone

// Txn is one transaction. A Txn is owned by a single goroutine; only the
// status accessors are safe for cross-goroutine use.
type Txn struct {
	id    uint64
	iso   Level
	mgr   *Manager
	ltx   *lock.Tx
	start time.Time

	mu     sync.Mutex
	status Status
	undo   []func() error

	// protoCtx caches the protocol-layer context for this transaction so the
	// node manager does not rebuild it on every DOM operation. The tx package
	// cannot import the protocol layer, hence the untyped slot. Owner
	// goroutine only.
	protoCtx any

	// snapLSN is the commit-consistent WAL position a LevelSnapshot
	// transaction reads at (0 otherwise, or when no WAL is attached).
	snapLSN uint64
	// snapView caches the storage-layer snapshot accessor, the snapshot
	// analogue of protoCtx: same untyped-slot pattern, same owner-goroutine
	// discipline.
	snapView any
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// Isolation returns the transaction's isolation level.
func (t *Txn) Isolation() Level { return t.iso }

// LockTx exposes the lock-manager handle for the protocol layer. It is nil
// for isolation level none.
func (t *Txn) LockTx() *lock.Tx { return t.ltx }

// ProtoCtx returns the cached protocol context (nil until SetProtoCtx).
func (t *Txn) ProtoCtx() any { return t.protoCtx }

// SetProtoCtx caches the protocol context for reuse across operations.
func (t *Txn) SetProtoCtx(c any) { t.protoCtx = c }

// SnapshotLSN returns the WAL position a LevelSnapshot transaction reads
// at; 0 for every other level.
func (t *Txn) SnapshotLSN() uint64 { return t.snapLSN }

// SnapView returns the cached snapshot accessor (nil until SetSnapView).
func (t *Txn) SnapView() any { return t.snapView }

// SetSnapView caches the snapshot accessor for reuse across operations.
func (t *Txn) SetSnapView(v any) { t.snapView = v }

// Start returns the begin time.
func (t *Txn) Start() time.Time { return t.start }

// Status returns the lifecycle state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Active reports whether the transaction can still operate.
func (t *Txn) Active() bool { return t.Status() == StatusActive }

// PushUndo records a compensation action. Undo actions run in reverse order
// during Abort, while the transaction still holds every lock it acquired, so
// they may touch the document without further synchronization.
func (t *Txn) PushUndo(fn func() error) {
	t.mu.Lock()
	t.undo = append(t.undo, fn)
	t.mu.Unlock()
}

// UndoDepth returns the number of pending undo actions (test aid).
func (t *Txn) UndoDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.undo)
}

// Stats aggregates transaction outcomes.
type Stats struct {
	Begun     uint64
	Committed uint64
	Aborted   uint64
}

// Manager creates and finishes transactions against one lock manager.
type Manager struct {
	lm     *lock.Manager
	wal    *wal.Log
	nextID atomic.Uint64

	begun     atomic.Uint64
	committed atomic.Uint64
	aborted   atomic.Uint64

	// active tracks every transaction begun but not yet finished, for the
	// ActiveTxns snapshot checkpoints and diagnostics read. The WAL keeps
	// its own active-transaction table from the record stream (which only
	// sees transactions with logged work); this one also covers read-only
	// transactions that never log.
	activeMu sync.Mutex
	active   map[uint64]*Txn

	// snaps maps every active LevelSnapshot transaction to its pinned
	// snapshot LSN. snapMu is held across the wal.SnapshotLSN read AND the
	// registration in Begin, and across the min-scan in SnapshotWatermark —
	// that span is what makes the watermark sound: a pruner can never
	// compute a watermark above a snapshot that is about to register below
	// it.
	snapMu sync.Mutex
	snaps  map[uint64]uint64

	// Latency histograms (nil without SetMetrics): the Commit call (undo
	// discard + durability force + lock release) and the Abort call
	// (rollback + lock release).
	hCommit *metrics.Histogram
	hAbort  *metrics.Histogram
}

// NewManager builds a transaction manager over lm (which may be nil only if
// every transaction uses isolation level none).
func NewManager(lm *lock.Manager) *Manager {
	return &Manager{
		lm:     lm,
		active: make(map[uint64]*Txn),
		snaps:  make(map[uint64]uint64),
	}
}

// ActiveTxns returns the IDs of all transactions begun but not yet
// committed or aborted, in ascending order.
func (m *Manager) ActiveTxns() []uint64 {
	m.activeMu.Lock()
	out := make([]uint64, 0, len(m.active))
	for id := range m.active {
		out = append(out, id)
	}
	m.activeMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// dropActive removes a finished transaction from the active table.
func (m *Manager) dropActive(id uint64) {
	m.activeMu.Lock()
	delete(m.active, id)
	m.activeMu.Unlock()
}

// dropSnap unregisters a finished snapshot transaction, releasing its pin
// on the version-retirement watermark.
func (m *Manager) dropSnap(id uint64) {
	m.snapMu.Lock()
	delete(m.snaps, id)
	m.snapMu.Unlock()
}

// SnapshotWatermark returns the version-retirement watermark: the oldest
// LSN any active snapshot transaction reads at, or — with no snapshots
// active — the log's current commit-consistent position (every future
// snapshot will pin at or above it; the snapshot LSN is monotonic). Zero
// means "retire nothing" (no WAL attached). This is the function installed
// as the pagestore's snapshot source.
func (m *Manager) SnapshotWatermark() uint64 {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	if len(m.snaps) > 0 {
		// LSN 0 is a valid pin (a snapshot begun before any logged commit),
		// so it cannot double as the "uninitialized" sentinel here.
		first := true
		var min uint64
		for _, s := range m.snaps {
			if first || s < min {
				min, first = s, false
			}
		}
		return min
	}
	if m.wal != nil {
		return m.wal.SnapshotLSN()
	}
	return 0
}

// SnapshotLeakCheck fails when snapshot transactions are still registered —
// the drain-time residue audit for the version layer, mirroring
// lock.Manager.LeakCheck.
func (m *Manager) SnapshotLeakCheck() error {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	if n := len(m.snaps); n > 0 {
		return fmt.Errorf("tx: %d snapshot transaction(s) still pin the version watermark", n)
	}
	return nil
}

// LockManager returns the underlying lock manager.
func (m *Manager) LockManager() *lock.Manager { return m.lm }

// SetWAL attaches a write-ahead log: from now on Commit appends a commit
// record and forces the log before reporting success (durability), and
// Abort appends an end record after its rollback completes. Call before
// starting transactions; the same log must be attached to the document
// (storage.Document.AttachWAL) so operation records and commit records
// land in one sequence.
func (m *Manager) SetWAL(l *wal.Log) { m.wal = l }

// WAL returns the attached log (nil when logging is off).
func (m *Manager) WAL() *wal.Log { return m.wal }

// SetMetrics registers the transaction instruments on a registry: the tx.*
// counters (computed at snapshot time from the existing atomics) and
// commit/abort latency histograms. Call before starting transactions.
func (m *Manager) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.hCommit = reg.Histogram("tx.commit")
	m.hAbort = reg.Histogram("tx.abort")
	reg.Func("tx.begun", m.begun.Load)
	reg.Func("tx.committed", m.committed.Load)
	reg.Func("tx.aborted", m.aborted.Load)
}

// Begin starts a transaction at the given isolation level.
func (m *Manager) Begin(iso Level) *Txn {
	m.begun.Add(1)
	t := &Txn{
		id:    m.nextID.Add(1),
		iso:   iso,
		mgr:   m,
		start: time.Now(),
	}
	if iso != LevelNone && iso != LevelSnapshot && m.lm != nil {
		t.ltx = m.lm.Begin()
	}
	if iso == LevelSnapshot {
		// Read the snapshot LSN and register under one snapMu hold: a
		// concurrent SnapshotWatermark either sees this entry or runs
		// before the read — it can never return a watermark above the LSN
		// this transaction is pinning.
		m.snapMu.Lock()
		if m.wal != nil {
			t.snapLSN = m.wal.SnapshotLSN()
		}
		m.snaps[t.id] = t.snapLSN
		m.snapMu.Unlock()
	}
	m.activeMu.Lock()
	m.active[t.id] = t
	m.activeMu.Unlock()
	return t
}

// Commit finishes the transaction successfully and releases all its locks.
// With a WAL attached, the commit record is appended and the log forced
// BEFORE the status flips: if durability fails (log crashed), the
// transaction stays active so the caller can still Abort it.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return ErrTxnDone
	}
	t.mu.Unlock()
	t0 := t.mgr.hCommit.Start()
	// Only transactions with logged work need a commit record. Snapshot
	// transactions never log; other read-only transactions skip the record
	// (and its log force) too — recovery ignores transactions it saw no
	// operations from, and an unearned record would advance the WAL's
	// snapshot position to an LSN no writer produced.
	if w := t.mgr.wal; w != nil && t.iso != LevelSnapshot && w.TxnLogged(t.id) {
		lsn, err := w.AppendCommit(t.id)
		if err == nil {
			err = w.Force(lsn)
		}
		if err != nil {
			return fmt.Errorf("tx %d: commit not durable: %w", t.id, err)
		}
	}
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return ErrTxnDone
	}
	t.status = StatusCommitted
	t.undo = nil
	t.mu.Unlock()
	t.mgr.dropActive(t.id)
	if t.iso == LevelSnapshot {
		t.mgr.dropSnap(t.id)
	}
	if t.ltx != nil {
		t.mgr.lm.ReleaseAll(t.ltx)
	}
	t.mgr.committed.Add(1)
	t.mgr.hCommit.Since(t0)
	return nil
}

// Abort undoes all changes in reverse order (still holding locks) and then
// releases the locks. All undo actions are attempted and the locks are
// released regardless of failures; every undo error is reported, aggregated
// with errors.Join, so a multi-step rollback cannot silently half-fail.
func (t *Txn) Abort() error {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return ErrTxnDone
	}
	t.status = StatusAborted
	undo := t.undo
	t.undo = nil
	t.mu.Unlock()
	t.mgr.dropActive(t.id)
	if t.iso == LevelSnapshot {
		t.mgr.dropSnap(t.id)
	}
	t0 := t.mgr.hAbort.Start()

	var errs []error
	for i := len(undo) - 1; i >= 0; i-- {
		if err := undo[i](); err != nil {
			errs = append(errs, fmt.Errorf("tx %d: undo step %d: %w", t.id, i, err))
		}
	}
	if w := t.mgr.wal; w != nil && t.iso != LevelSnapshot && w.TxnLogged(t.id) {
		// Mark the rollback complete so recovery skips this transaction.
		// Best effort, not forced: a crashed log must not block lock
		// release, and an unlogged end just means recovery re-applies an
		// idempotent rollback. Transactions with no logged operations need
		// no end record — recovery never saw them.
		_, _ = w.AppendEnd(t.id)
	}
	if t.ltx != nil {
		// The transaction layer owns the lock-cache lifecycle: an aborted
		// transaction must not keep cached grants around (a restart gets a
		// fresh lock.Tx, but the protocol context may hold on to this one).
		t.ltx.InvalidateCache()
		t.mgr.lm.ReleaseAll(t.ltx)
	}
	t.mgr.aborted.Add(1)
	t.mgr.hAbort.Since(t0)
	return errors.Join(errs...)
}

// EndOperation marks the end of one logical operation: under the weak
// isolation levels (uncommitted, committed) the short-duration locks are
// released here, per the meta-lock interface of Section 3.3.
func (t *Txn) EndOperation() {
	if t.ltx == nil || t.iso == LevelRepeatable {
		return
	}
	t.mgr.lm.ReleaseShort(t.ltx)
	// Short-duration entries are never cached, so the cache is still valid
	// here; dropping it anyway keeps the lifecycle contract simple — partial
	// release means the cache starts over.
	t.ltx.InvalidateCache()
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Begun:     m.begun.Load(),
		Committed: m.committed.Load(),
		Aborted:   m.aborted.Load(),
	}
}
