package tx

import (
	"errors"
	"testing"

	"repro/internal/lock"
	"repro/internal/wal"
)

const (
	mS lock.Mode = iota + 1
	mX
)

func simpleTable() *lock.Table {
	y, n := true, false
	return lock.NewTable(
		[]string{"-", "S", "X"},
		[][]bool{{n, n, n}, {n, y, n}, {n, n, n}},
		[][]lock.Mode{{0, mS, mX}, {0, mS, mX}, {0, mX, mX}},
	)
}

func newMgr() *Manager {
	return NewManager(lock.NewManager(simpleTable(), lock.Options{}))
}

func TestLevelStringsRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelNone, LevelUncommitted, LevelCommitted, LevelRepeatable} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%s) = %v, %v", l, got, err)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Error("bogus level should fail")
	}
}

func TestCommitReleasesLocks(t *testing.T) {
	m := newMgr()
	t1 := m.Begin(LevelRepeatable)
	if err := m.LockManager().Lock(t1.LockTx(), "n", mX, false); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if t1.Status() != StatusCommitted {
		t.Error("status should be committed")
	}
	// A second transaction can take the lock immediately.
	t2 := m.Begin(LevelRepeatable)
	if err := m.LockManager().Lock(t2.LockTx(), "n", mX, false); err != nil {
		t.Fatal(err)
	}
	t2.Commit()
	st := m.Stats()
	if st.Begun != 2 || st.Committed != 2 || st.Aborted != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestAbortRunsUndoInReverse(t *testing.T) {
	m := newMgr()
	t1 := m.Begin(LevelRepeatable)
	var order []int
	t1.PushUndo(func() error { order = append(order, 1); return nil })
	t1.PushUndo(func() error { order = append(order, 2); return nil })
	t1.PushUndo(func() error { order = append(order, 3); return nil })
	if t1.UndoDepth() != 3 {
		t.Errorf("UndoDepth = %d", t1.UndoDepth())
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Errorf("undo order = %v", order)
	}
	if t1.Status() != StatusAborted {
		t.Error("status should be aborted")
	}
}

func TestAbortReportsUndoErrorButReleases(t *testing.T) {
	m := newMgr()
	t1 := m.Begin(LevelRepeatable)
	m.LockManager().Lock(t1.LockTx(), "n", mX, false)
	sentinel := errors.New("undo failed")
	ran := 0
	t1.PushUndo(func() error { ran++; return nil })
	t1.PushUndo(func() error { ran++; return sentinel })
	err := t1.Abort()
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
	if ran != 2 {
		t.Errorf("all undo actions must run, got %d", ran)
	}
	// Locks were released despite the undo error.
	t2 := m.Begin(LevelRepeatable)
	if err := m.LockManager().Lock(t2.LockTx(), "n", mX, false); err != nil {
		t.Fatal(err)
	}
	t2.Commit()
}

func TestAbortAggregatesAllUndoErrors(t *testing.T) {
	m := newMgr()
	t1 := m.Begin(LevelRepeatable)
	m.LockManager().Lock(t1.LockTx(), "n", mX, false)
	errA := errors.New("undo A failed")
	errB := errors.New("undo B failed")
	ran := 0
	t1.PushUndo(func() error { ran++; return errA })
	t1.PushUndo(func() error { ran++; return nil })
	t1.PushUndo(func() error { ran++; return errB })
	err := t1.Abort()
	if ran != 3 {
		t.Fatalf("all undo actions must run, got %d", ran)
	}
	// errors.Join keeps every failure reachable, not just the first.
	if !errors.Is(err, errA) {
		t.Errorf("aggregated error lost errA: %v", err)
	}
	if !errors.Is(err, errB) {
		t.Errorf("aggregated error lost errB: %v", err)
	}
	// Locks were still released.
	t2 := m.Begin(LevelRepeatable)
	if err := m.LockManager().Lock(t2.LockTx(), "n", mX, false); err != nil {
		t.Fatal(err)
	}
	t2.Commit()
	if err := m.LockManager().LeakCheck(); err != nil {
		t.Errorf("leak audit after failed undo: %v", err)
	}
}

func TestCommitClearsUndo(t *testing.T) {
	m := newMgr()
	t1 := m.Begin(LevelRepeatable)
	called := false
	t1.PushUndo(func() error { called = true; return nil })
	t1.Commit()
	if called {
		t.Error("undo must not run on commit")
	}
}

func TestDoubleFinish(t *testing.T) {
	m := newMgr()
	t1 := m.Begin(LevelRepeatable)
	t1.Commit()
	if err := t1.Commit(); !errors.Is(err, ErrNotActive) {
		t.Errorf("second commit: %v", err)
	}
	if err := t1.Abort(); !errors.Is(err, ErrNotActive) {
		t.Errorf("abort after commit: %v", err)
	}
}

func TestLevelNoneHasNoLockTx(t *testing.T) {
	m := newMgr()
	t1 := m.Begin(LevelNone)
	if t1.LockTx() != nil {
		t.Error("none-level transaction should not register with the lock manager")
	}
	t1.EndOperation() // must not panic
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestEndOperationReleasesShortLocks(t *testing.T) {
	m := newMgr()
	lm := m.LockManager()
	t1 := m.Begin(LevelCommitted)
	lm.Lock(t1.LockTx(), "read", mS, true)
	lm.Lock(t1.LockTx(), "write", mX, false)
	t1.EndOperation()
	if lm.HeldMode(t1.LockTx(), "read") != lock.ModeNone {
		t.Error("short read lock should be gone after EndOperation")
	}
	if lm.HeldMode(t1.LockTx(), "write") != mX {
		t.Error("long write lock must survive EndOperation")
	}
	t1.Commit()
}

func TestEndOperationNoopForRepeatable(t *testing.T) {
	m := newMgr()
	lm := m.LockManager()
	t1 := m.Begin(LevelRepeatable)
	lm.Lock(t1.LockTx(), "read", mS, true)
	t1.EndOperation()
	if lm.HeldMode(t1.LockTx(), "read") != mS {
		t.Error("repeatable read must keep read locks to commit")
	}
	t1.Commit()
}

func TestErrTxnDoneBothOrderings(t *testing.T) {
	m := newMgr()

	// Commit first, then every further finish fails with ErrTxnDone.
	t1 := m.Begin(LevelRepeatable)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Abort after Commit = %v, want ErrTxnDone", err)
	}
	if err := t1.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Commit after Commit = %v, want ErrTxnDone", err)
	}
	if t1.Status() != StatusCommitted {
		t.Errorf("status = %v after rejected finishes, want committed", t1.Status())
	}

	// Abort first, then every further finish fails with ErrTxnDone.
	t2 := m.Begin(LevelRepeatable)
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Commit after Abort = %v, want ErrTxnDone", err)
	}
	if err := t2.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Abort after Abort = %v, want ErrTxnDone", err)
	}
	if t2.Status() != StatusAborted {
		t.Errorf("status = %v after rejected finishes, want aborted", t2.Status())
	}

	// The historical sentinel name still matches.
	if !errors.Is(t2.Commit(), ErrNotActive) {
		t.Error("ErrNotActive no longer matches the double-finish error")
	}
}

func TestCommitForcesWALAndSurvivesLogCrash(t *testing.T) {
	m := newMgr()
	segs := wal.NewMemSegmentStore()
	log, err := wal.Open(segs, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.SetWAL(log)

	// A committed transaction's commit record is durable immediately. The
	// transaction must log work first: read-only commits write no record.
	t1 := m.Begin(LevelRepeatable)
	if _, err := log.Append(wal.RecOp, t1.ID(), []byte("op")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	var types []byte
	var txns []uint64
	if err := log.Scan(func(r wal.Record) error {
		types = append(types, r.Type)
		txns = append(txns, r.Txn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(types) != 2 || types[1] != wal.RecCommit || txns[1] != t1.ID() {
		t.Fatalf("log after commit: types %v txns %v", types, txns)
	}

	// With a crashed log, a writer's Commit must fail and the transaction
	// must STAY ACTIVE so the caller can still roll it back. The op record
	// lands before the crash so the transaction owes a commit record.
	t2 := m.Begin(LevelRepeatable)
	if _, err := log.Append(wal.RecOp, t2.ID(), []byte("op")); err != nil {
		t.Fatal(err)
	}
	log.CrashNow()

	// A read-only transaction has nothing to make durable: its commit must
	// succeed even on a crashed log.
	ro := m.Begin(LevelRepeatable)
	if err := ro.Commit(); err != nil {
		t.Fatalf("read-only commit on crashed log = %v, want nil", err)
	}

	if err := t2.Commit(); !errors.Is(err, wal.ErrCrashed) {
		t.Fatalf("commit on crashed log = %v, want ErrCrashed", err)
	}
	if t2.Status() != StatusActive {
		t.Fatalf("status = %v after failed commit, want active", t2.Status())
	}
	undone := false
	t2.PushUndo(func() error { undone = true; return nil })
	if err := t2.Abort(); err != nil {
		t.Fatalf("abort after failed commit: %v", err)
	}
	if !undone {
		t.Error("undo did not run on abort after failed commit")
	}
}

func TestAbortAppendsEndRecord(t *testing.T) {
	m := newMgr()
	segs := wal.NewMemSegmentStore()
	log, err := wal.Open(segs, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.SetWAL(log)
	// An aborted transaction WITH logged work owes the log an end record; a
	// read-only one owes nothing (recovery never saw it).
	t1 := m.Begin(LevelRepeatable)
	if _, err := log.Append(wal.RecOp, t1.ID(), []byte("op")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin(LevelRepeatable)
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	log2, err := wal.Open(segs, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	found := false
	if err := log2.Scan(func(r wal.Record) error {
		if r.Type == wal.RecEnd && r.Txn == t1.ID() {
			found = true
		}
		if r.Txn == t2.ID() {
			t.Errorf("read-only aborted transaction left a %d record in the log", r.Type)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("no end record for the aborted transaction")
	}
}
