// Package protocol implements the meta-synchronization layer of Section 3.3
// and the paper's 11 XML concurrency control protocols:
//
//	*-2PL group:  Node2PL, NO2PL, OO2PL, Node2PLa
//	MGL* group:   IRX, IRIX, URIX
//	taDOM* group: taDOM2, taDOM2+, taDOM3, taDOM3+
//
// The node manager issues abstract meta-lock requests (read node, write
// node, read level, read/delete subtree, insert, rename, traverse edge);
// each Protocol maps them onto its own lock modes against the shared lock
// manager. Exchanging the Protocol exchanges the system's complete XML
// locking mechanism while storage, transactions, and workloads stay
// identical — the property that makes the paper's contest a fair one.
package protocol

import (
	"fmt"
	"sort"

	"repro/internal/lock"
	"repro/internal/splid"
	"repro/internal/tx"
)

// Access distinguishes how a node is reached: by navigation from its parent
// or by a direct jump (getElementById / index access). The *-2PL group uses
// special ID lock modes for jumps; all other protocols protect the ancestor
// path with intention locks in both cases.
type Access int

const (
	// Navigate reaches the node step-by-step from an already-locked parent.
	Navigate Access = iota
	// Jump reaches the node directly via an index.
	Jump
)

// Edge identifies a logical navigation edge of a node (Section 2: the edges
// that must be isolated so repeated traversals see identical paths).
type Edge int

const (
	// EdgeFirstChild is the parent -> first child edge.
	EdgeFirstChild Edge = iota
	// EdgeLastChild is the parent -> last child edge.
	EdgeLastChild
	// EdgeNextSibling is the node -> next sibling edge.
	EdgeNextSibling
	// EdgePrevSibling is the node -> previous sibling edge.
	EdgePrevSibling
)

// String implements fmt.Stringer.
func (e Edge) String() string {
	switch e {
	case EdgeFirstChild:
		return "firstChild"
	case EdgeLastChild:
		return "lastChild"
	case EdgeNextSibling:
		return "nextSibling"
	case EdgePrevSibling:
		return "prevSibling"
	default:
		return fmt.Sprintf("Edge(%d)", int(e))
	}
}

// TreeAccess provides the structural lookups some protocols need while
// locking: taDOM's fan-out conversions enumerate direct children, and the
// *-2PL protocols must find every element owning an ID attribute inside a
// subtree before deleting it. Implementations read the document physically,
// without taking locks (the protocol is in the middle of acquiring them).
type TreeAccess interface {
	// Children returns the SPLIDs of the regular children of id in document
	// order.
	Children(id splid.ID) ([]splid.ID, error)
	// ElementsWithIDAttribute returns the SPLIDs of all elements in the
	// subtree rooted at id (including id itself) that own an ID attribute.
	ElementsWithIDAttribute(id splid.ID) ([]splid.ID, error)
	// SubtreeNodes returns the SPLIDs of all regular nodes (elements and
	// texts, excluding attribute machinery) in the subtree rooted at id,
	// in document order. The *-2PL protocols lock them one by one when
	// deleting a subtree — the cost CLUSTER2 measures.
	SubtreeNodes(id splid.ID) ([]splid.ID, error)
}

// Ctx carries the per-engine state a protocol operates against.
type Ctx struct {
	// LM is the shared lock manager (built over this protocol's mode table).
	LM *lock.Manager
	// Txn is the acting transaction.
	Txn *tx.Txn
	// Depth is the lock-depth parameter: nodes deeper than Depth (root =
	// depth 0) are covered by a subtree lock at level Depth. Negative means
	// unlimited (always lock individual nodes).
	Depth int
	// Tree provides structural lookups.
	Tree TreeAccess

	// reqs is the scratch buffer for batched lock requests. A context serves
	// one transaction, and a transaction runs on one goroutine at a time, so
	// the buffer is reused across lock calls without synchronization
	// (LockBatch does not retain it).
	reqs []lock.Req
}

// reqBuf returns the context's request scratch buffer, emptied, with room
// for at least n requests. Builders fill it and pass it to lockBatch before
// the next reqBuf call.
func (c *Ctx) reqBuf(n int) []lock.Req {
	if cap(c.reqs) < n {
		c.reqs = make([]lock.Req, 0, n)
	}
	return c.reqs[:0]
}

// Protocol is one XML concurrency control protocol. Implementations are
// stateless (all state lives in the lock manager), so a single Protocol
// value serves all transactions of an engine.
type Protocol interface {
	// Name is the protocol's name as used in the paper ("taDOM3+", ...).
	Name() string
	// Group is the protocol family: "*-2PL", "MGL*", or "taDOM*".
	Group() string
	// DepthAware reports whether the protocol honors the lock-depth
	// parameter (the pure *-2PL protocols do not).
	DepthAware() bool
	// Table returns the protocol's lock mode table.
	Table() lock.ModeTable

	// ReadNode isolates read access to the node (navigation target or jump
	// target) including whatever path protection the protocol prescribes.
	ReadNode(c *Ctx, id splid.ID, acc Access) error
	// WriteNode isolates a content update of a text or attribute node.
	WriteNode(c *Ctx, id splid.ID) error
	// ReadLevel isolates getChildNodes/getAttributes: the node and all its
	// direct children. children carries the current child list for
	// protocols without level locks.
	ReadLevel(c *Ctx, parent splid.ID, children []splid.ID) error
	// ReadTree isolates reading the whole subtree rooted at id.
	ReadTree(c *Ctx, id splid.ID, acc Access) error
	// UpdateTree isolates reading the subtree with declared intent to
	// modify it later — the update mode of the meta-lock interface
	// ("tree locks (shared, update, exclusive)"). Protocols without an
	// update mode (IRX, IRIX, the pure *-2PL variants) fall back to
	// ReadTree; URIX maps it to U, the taDOM* protocols to SU. Declared
	// update intent serializes would-be writers up front and thereby
	// avoids the symmetric read-then-convert deadlocks of Section 5.
	UpdateTree(c *Ctx, id splid.ID, acc Access) error
	// Insert isolates a structural insert of a new node (or subtree root)
	// with the given SPLID under parent, between siblings left and right
	// (either may be null at the ends of the child list).
	Insert(c *Ctx, parent, newID, left, right splid.ID) error
	// DeleteTree isolates deletion of the subtree rooted at id; left and
	// right are its neighboring siblings (null at the list ends), whose
	// navigation edges the deletion invalidates.
	DeleteTree(c *Ctx, id, left, right splid.ID) error
	// Rename isolates a DOM level 3 renameNode of an element.
	Rename(c *Ctx, id splid.ID) error
	// ReadEdge isolates traversal of one navigation edge of the node.
	ReadEdge(c *Ctx, id splid.ID, e Edge) error
}

// --- shared helpers --------------------------------------------------------

// nodeRes names a node's lock resource.
func nodeRes(id splid.ID) lock.Resource {
	return lock.Resource(id.Encode())
}

// edgeRes names an edge lock resource.
func edgeRes(id splid.ID, e Edge) lock.Resource {
	return lock.Resource(string(id.Encode()) + ":e" + string(rune('0'+int(e))))
}

// readPlan reports whether a read lock is needed and with what duration,
// given the transaction's isolation level (footnote 5 of the paper: none
// takes no locks, uncommitted no read locks, committed short read locks,
// repeatable long read locks).
func readPlan(t *tx.Txn) (skip, short bool) {
	switch t.Isolation() {
	case tx.LevelNone, tx.LevelUncommitted:
		return true, false
	case tx.LevelCommitted:
		return false, true
	default:
		return false, false
	}
}

// writePlan reports whether a write lock is needed (all levels except none
// take long write locks).
func writePlan(t *tx.Txn) (skip bool) {
	return t.Isolation() == tx.LevelNone
}

// lockOne acquires one lock respecting the transaction's lifecycle.
func lockOne(c *Ctx, res lock.Resource, m lock.Mode, short bool) error {
	return c.LM.Lock(c.Txn.LockTx(), res, m, short)
}

// lockBatch submits pre-built requests through the manager's batch API,
// which answers cache-covered requests without touching the lock table and
// grants the rest under one partition-ordered critical section.
func lockBatch(c *Ctx, reqs []lock.Req) error {
	return c.LM.LockBatch(c.Txn.LockTx(), reqs)
}

// lockPath locks every proper ancestor of id (root first) in the given
// intention mode, as one batched request. Thanks to SPLIDs the path derives
// from the label alone — no document access (Section 3.2).
func lockPath(c *Ctx, id splid.ID, m lock.Mode, short bool) error {
	anc := id.Ancestors()
	reqs := c.reqBuf(len(anc))
	for _, a := range anc {
		reqs = append(reqs, lock.Req{Res: nodeRes(a), Mode: m, Short: short})
	}
	return lockBatch(c, reqs)
}

// lockPathAndNode locks the ancestor path of id in pathMode and id itself in
// nodeMode as a single batch — the common shape of every path-protecting
// lock request (root-first intention locks, then the node lock).
func lockPathAndNode(c *Ctx, id splid.ID, pathMode, nodeMode lock.Mode, short bool) error {
	anc := id.Ancestors()
	reqs := c.reqBuf(len(anc) + 1)
	for _, a := range anc {
		reqs = append(reqs, lock.Req{Res: nodeRes(a), Mode: pathMode, Short: short})
	}
	reqs = append(reqs, lock.Req{Res: nodeRes(id), Mode: nodeMode, Short: short})
	return lockBatch(c, reqs)
}

// level0 is the 0-based tree level used by the lock-depth parameter
// (depth 0 = document lock on the root).
func level0(id splid.ID) int { return id.Level() - 1 }

// depthTarget maps a node to the node actually locked under the protocol's
// lock-depth parameter: the node itself when shallow enough, else the
// ancestor at the cut-off level, which then carries a subtree lock.
func depthTarget(c *Ctx, id splid.ID) (target splid.ID, subtree bool) {
	if c.Depth < 0 || level0(id) <= c.Depth {
		return id, false
	}
	return id.AncestorAtLevel(c.Depth + 1), true
}

// --- registry --------------------------------------------------------------

var registry = map[string]Protocol{}

func register(p Protocol) Protocol {
	if _, dup := registry[p.Name()]; dup {
		panic("protocol: duplicate registration of " + p.Name())
	}
	registry[p.Name()] = p
	return p
}

// ByName returns a registered protocol.
func ByName(name string) (Protocol, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("protocol: unknown protocol %q", name)
	}
	return p, nil
}

// All returns the registered protocols in presentation order: the paper's
// 11 contestants followed by the snapshot-reads contestant.
func All() []Protocol {
	order := map[string]int{
		"Node2PL": 0, "NO2PL": 1, "OO2PL": 2, "Node2PLa": 3,
		"IRX": 4, "IRIX": 5, "URIX": 6,
		"taDOM2": 7, "taDOM2+": 8, "taDOM3": 9, "taDOM3+": 10,
		"snapshot": 11,
	}
	out := make([]Protocol, 0, len(registry))
	for _, p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		oi, iok := order[out[i].Name()]
		oj, jok := order[out[j].Name()]
		if iok && jok {
			return oi < oj
		}
		if iok != jok {
			return iok
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// Names returns all registered protocol names in presentation order.
func Names() []string {
	ps := All()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name()
	}
	return out
}
