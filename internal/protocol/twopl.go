package protocol

import (
	"repro/internal/lock"
	"repro/internal/splid"
)

// The *-2PL group (Section 2.1, developed for Natix [13]). Three disjoint
// lock spaces are used: structure locks T (traverse) / M (modify) protecting
// navigation, content locks CS/CX protecting node values, and ID locks
// IDR/IDX protecting direct jumps via ID attributes. The group's defining
// weaknesses, reproduced here:
//
//   - Direct jumps are protected by IDR/IDX on the target only — no path
//     protection — so deleting a subtree must first *scan it* and IDX-lock
//     every element owning an ID attribute (the CLUSTER2 penalty).
//   - There are no subtree or intention modes, so isolating a fragment read
//     means locking node by node.
//
// Variants differ in granularity:
//
//	Node2PL — locks the *parent* of the context node, blocking the whole
//	          level for any structural update.
//	NO2PL   — locks only the nodes reachable from the context node.
//	OO2PL   — locks only the traversed/affected navigation edges: the most
//	          lock requests, the highest parallelism in the group.

// Resource namespaces for the three lock spaces.
func structRes(id splid.ID) lock.Resource  { return lock.Resource("s" + string(id.Encode())) }
func contentRes(id splid.ID) lock.Resource { return lock.Resource("c" + string(id.Encode())) }
func jumpRes(id splid.ID) lock.Resource    { return lock.Resource("j" + string(id.Encode())) }

// twoPLTable builds the shared *-2PL mode table (Figure 1): three
// independent two-mode hierarchies. Cross-space cells are never consulted
// because the spaces use disjoint resource namespaces.
func twoPLTable() (*lock.Table, map[string]lock.Mode) {
	compat := `
     T M CS CX IDR IDX
T    + - -  -  -   -
M    - - -  -  -   -
CS   - - +  -  -   -
CX   - - -  -  -   -
IDR  - - -  -  +   -
IDX  - - -  -  -   -`
	conv := `
     T  M CS CX IDR IDX
T    T  M T  T  T   T
M    M  M M  M  M   M
CS   CS CS CS CX CS CS
CX   CX CX CX CX CX CX
IDR  IDR IDR IDR IDR IDR IDX
IDX  IDX IDX IDX IDX IDX IDX`
	return buildTable(compat, conv, true)
}

// twoPL carries the shared mode handles and per-variant behavior flags.
type twoPL struct {
	name       string
	table      *lock.Table
	t, m       lock.Mode // structure traverse / modify
	cs, cx     lock.Mode // content shared / exclusive
	idr, idx   lock.Mode // ID-jump read / exclusive
	es, eu, ex lock.Mode // edge modes (OO2PL)
	style      int       // 0 = Node2PL, 1 = NO2PL, 2 = OO2PL
}

const (
	styleNode2PL = iota
	styleNO2PL
	styleOO2PL
)

// Node2PL, NO2PL, and OO2PL are the *-2PL protocols (Node2PLa, the
// intention-enhanced representative, lives in node2pla.go).
var (
	Node2PL = register(newTwoPL("Node2PL", styleNode2PL))
	NO2PL   = register(newTwoPL("NO2PL", styleNO2PL))
	OO2PL   = register(newTwoPL("OO2PL", styleOO2PL))
)

func newTwoPL(name string, style int) *twoPL {
	t, idx := twoPLTable()
	m := modes(idx, "T", "M", "CS", "CX", "IDR", "IDX", "ES", "EU", "EX")
	return &twoPL{
		name: name, table: t, style: style,
		t: m[0], m: m[1], cs: m[2], cx: m[3], idr: m[4], idx: m[5],
		es: m[6], eu: m[7], ex: m[8],
	}
}

// Name implements Protocol.
func (p *twoPL) Name() string { return p.name }

// Group implements Protocol.
func (p *twoPL) Group() string { return "*-2PL" }

// DepthAware implements Protocol: the pure *-2PL protocols have no lock
// depth parameter.
func (p *twoPL) DepthAware() bool { return false }

// Table implements Protocol.
func (p *twoPL) Table() lock.ModeTable { return p.table }

// ReadNode implements Protocol. Jumps take IDR on the target (no path!);
// navigation leaves T locks on the path (Figure 1) — on the ancestors for
// Node2PL/NO2PL, on nothing for OO2PL (edges carry its read protection) —
// plus a shared content lock on the node itself for NO2PL/OO2PL.
func (p *twoPL) ReadNode(c *Ctx, id splid.ID, acc Access) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	if acc == Jump {
		if err := lockOne(c, jumpRes(id), p.idr, short); err != nil {
			return err
		}
	}
	// Reading a node's value always takes a shared content lock.
	if err := lockOne(c, contentRes(id), p.cs, short); err != nil {
		return err
	}
	switch p.style {
	case styleNode2PL:
		return p.lockAncestorsT(c, id, short)
	case styleNO2PL:
		if err := p.lockAncestorsT(c, id, short); err != nil {
			return err
		}
		return lockOne(c, structRes(id), p.t, short)
	default: // OO2PL: structure is protected by edge locks alone
		return nil
	}
}

func (p *twoPL) lockAncestorsT(c *Ctx, id splid.ID, short bool) error {
	anc := id.Ancestors()
	reqs := c.reqBuf(len(anc))
	for _, a := range anc {
		reqs = append(reqs, lock.Req{Res: structRes(a), Mode: p.t, Short: short})
	}
	return lockBatch(c, reqs)
}

// WriteNode implements Protocol: a content-exclusive lock; structure locks
// are not involved in pure value updates.
func (p *twoPL) WriteNode(c *Ctx, id splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	return lockOne(c, contentRes(id), p.cx, false)
}

// ReadLevel implements Protocol: without level or intention locks, reading
// a child list costs one structure lock on the parent plus per-child locks
// for the finer variants.
func (p *twoPL) ReadLevel(c *Ctx, parent splid.ID, children []splid.ID) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	switch p.style {
	case styleNode2PL:
		if err := p.lockAncestorsT(c, parent, short); err != nil {
			return err
		}
		return lockOne(c, structRes(parent), p.t, short)
	case styleNO2PL:
		reqs := make([]lock.Req, 0, len(children)+1)
		reqs = append(reqs, lock.Req{Res: structRes(parent), Mode: p.t, Short: short})
		for _, ch := range children {
			reqs = append(reqs, lock.Req{Res: structRes(ch), Mode: p.t, Short: short})
		}
		return lockBatch(c, reqs)
	default: // OO2PL: the traversal edges
		reqs := make([]lock.Req, 0, 2*len(children)+1)
		reqs = append(reqs, lock.Req{Res: edgeRes(parent, EdgeFirstChild), Mode: p.es, Short: short})
		for _, ch := range children {
			reqs = append(reqs,
				lock.Req{Res: contentRes(ch), Mode: p.cs, Short: short},
				lock.Req{Res: edgeRes(ch, EdgeNextSibling), Mode: p.es, Short: short})
		}
		return lockBatch(c, reqs)
	}
}

// ReadTree implements Protocol. With no subtree modes, fragment isolation
// degenerates to node-by-node locking of the whole subtree.
func (p *twoPL) ReadTree(c *Ctx, id splid.ID, acc Access) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	if acc == Jump {
		if err := lockOne(c, jumpRes(id), p.idr, short); err != nil {
			return err
		}
	}
	nodes, err := c.Tree.SubtreeNodes(id)
	if err != nil {
		return err
	}
	switch p.style {
	case styleNode2PL, styleNO2PL:
		if err := p.lockAncestorsT(c, id, short); err != nil {
			return err
		}
		reqs := make([]lock.Req, 0, 2*len(nodes))
		for _, n := range nodes {
			reqs = append(reqs,
				lock.Req{Res: structRes(n), Mode: p.t, Short: short},
				lock.Req{Res: contentRes(n), Mode: p.cs, Short: short})
		}
		return lockBatch(c, reqs)
	default: // OO2PL
		reqs := make([]lock.Req, 0, 3*len(nodes))
		for _, n := range nodes {
			reqs = append(reqs,
				lock.Req{Res: contentRes(n), Mode: p.cs, Short: short},
				lock.Req{Res: edgeRes(n, EdgeFirstChild), Mode: p.es, Short: short},
				lock.Req{Res: edgeRes(n, EdgeNextSibling), Mode: p.es, Short: short})
		}
		return lockBatch(c, reqs)
	}
}

// Insert implements Protocol.
func (p *twoPL) Insert(c *Ctx, parent, newID, left, right splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	switch p.style {
	case styleNode2PL:
		// M on the parent blocks the entire level of the context node.
		return lockOne(c, structRes(parent), p.m, false)
	case styleNO2PL:
		// Only the nodes reachable from the insert position.
		return p.lockNeighborsM(c, parent, left, right)
	default: // OO2PL: only the affected navigation edges.
		return p.lockBoundaryEdgesX(c, parent, left, right)
	}
}

func (p *twoPL) lockNeighborsM(c *Ctx, parent, left, right splid.ID) error {
	if !left.IsNull() {
		if err := lockOne(c, structRes(left), p.m, false); err != nil {
			return err
		}
	}
	if !right.IsNull() {
		if err := lockOne(c, structRes(right), p.m, false); err != nil {
			return err
		}
	}
	if left.IsNull() || right.IsNull() {
		// The parent's first/last-child pointer changes.
		return lockOne(c, structRes(parent), p.m, false)
	}
	return nil
}

func (p *twoPL) lockBoundaryEdgesX(c *Ctx, parent, left, right splid.ID) error {
	if left.IsNull() {
		if err := lockOne(c, edgeRes(parent, EdgeFirstChild), p.ex, false); err != nil {
			return err
		}
	} else {
		if err := lockOne(c, edgeRes(left, EdgeNextSibling), p.ex, false); err != nil {
			return err
		}
	}
	if right.IsNull() {
		return lockOne(c, edgeRes(parent, EdgeLastChild), p.ex, false)
	}
	return lockOne(c, edgeRes(right, EdgePrevSibling), p.ex, false)
}

// DeleteTree implements Protocol — the CLUSTER2 experiment. Because jumps
// carry no path protection, the subtree must be searched for elements owning
// ID attributes and each must be IDX-locked before removal; additionally the
// entire subtree is locked node by node (M, or all edges for OO2PL). These
// location steps run through the node manager and may touch disk — the
// reason the group takes roughly twice as long as everyone else (Figure 11).
func (p *twoPL) DeleteTree(c *Ctx, id, left, right splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	idOwners, err := c.Tree.ElementsWithIDAttribute(id)
	if err != nil {
		return err
	}
	idReqs := make([]lock.Req, len(idOwners))
	for i, el := range idOwners {
		idReqs[i] = lock.Req{Res: jumpRes(el), Mode: p.idx}
	}
	if err := lockBatch(c, idReqs); err != nil {
		return err
	}
	nodes, err := c.Tree.SubtreeNodes(id)
	if err != nil {
		return err
	}
	switch p.style {
	case styleNode2PL:
		reqs := make([]lock.Req, 0, len(nodes)+1)
		reqs = append(reqs, lock.Req{Res: structRes(id.Parent()), Mode: p.m})
		for _, n := range nodes {
			reqs = append(reqs, lock.Req{Res: structRes(n), Mode: p.m})
		}
		return lockBatch(c, reqs)
	case styleNO2PL:
		if err := p.lockNeighborsM(c, id.Parent(), left, right); err != nil {
			return err
		}
		reqs := make([]lock.Req, len(nodes))
		for i, n := range nodes {
			reqs[i] = lock.Req{Res: structRes(n), Mode: p.m}
		}
		return lockBatch(c, reqs)
	default: // OO2PL
		if err := p.lockBoundaryEdgesX(c, id.Parent(), left, right); err != nil {
			return err
		}
		reqs := make([]lock.Req, 0, 5*len(nodes))
		for _, n := range nodes {
			reqs = append(reqs, lock.Req{Res: contentRes(n), Mode: p.cx})
			for _, e := range []Edge{EdgeFirstChild, EdgeLastChild, EdgeNextSibling, EdgePrevSibling} {
				reqs = append(reqs, lock.Req{Res: edgeRes(n, e), Mode: p.ex})
			}
		}
		return lockBatch(c, reqs)
	}
}

// Rename implements Protocol: the group has no tailored mode for renames.
func (p *twoPL) Rename(c *Ctx, id splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	switch p.style {
	case styleNode2PL:
		// M on the parent: the whole level blocks.
		return lockOne(c, structRes(id.Parent()), p.m, false)
	case styleNO2PL:
		return lockOne(c, structRes(id), p.m, false)
	default: // OO2PL: name treated as content.
		return lockOne(c, contentRes(id), p.cx, false)
	}
}

// ReadEdge implements Protocol: only OO2PL locks traversed edges; the node
// variants cover navigation with their structure locks.
func (p *twoPL) ReadEdge(c *Ctx, id splid.ID, e Edge) error {
	if p.style != styleOO2PL {
		return nil
	}
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	return lockOne(c, edgeRes(id, e), p.es, short)
}

// UpdateTree implements Protocol: the *-2PL lock spaces have no update
// modes; declared intent degenerates to the plain subtree read.
func (p *twoPL) UpdateTree(c *Ctx, id splid.ID, acc Access) error {
	return p.ReadTree(c, id, acc)
}
