package protocol

import (
	"fmt"
	"strings"

	"repro/internal/lock"
)

// Matrix literals. Protocol tables are written as whitespace-separated text
// blocks that mirror the figures in the paper, so they can be checked
// visually against the publication. The first header row names the
// requested modes; each following row starts with the held mode. "+" and
// "-" express compatibility; conversion cells name the resulting mode.
//
// Every parsed table is additionally extended with the three edge-lock
// modes (ES, EU, EX) when the protocol uses edge locks; edge and node
// resources live in disjoint namespaces, so their cross-compatibilities are
// never consulted and are filled with permissive placeholders.

// parseMatrix splits a matrix literal into header and row cells.
func parseMatrix(s string) (header []string, rows [][]string) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	header = strings.Fields(lines[0])
	for _, ln := range lines[1:] {
		f := strings.Fields(ln)
		if len(f) == 0 {
			continue
		}
		if len(f) != len(header)+1 {
			panic(fmt.Sprintf("protocol: matrix row %q has %d cells, want %d", ln, len(f)-1, len(header)))
		}
		rows = append(rows, f)
	}
	if len(rows) != len(header) {
		panic(fmt.Sprintf("protocol: matrix has %d rows for %d modes", len(rows), len(header)))
	}
	return header, rows
}

// buildTable assembles a lock.Table from textual compatibility and
// conversion matrices over the same mode names, optionally appending the
// standard edge modes. It returns the table and a name->Mode index.
func buildTable(compatText, convText string, withEdges bool) (*lock.Table, map[string]lock.Mode) {
	header, compatRows := parseMatrix(compatText)
	convHeader, convRows := parseMatrix(convText)
	if strings.Join(header, " ") != strings.Join(convHeader, " ") {
		panic("protocol: compatibility and conversion matrices name different modes")
	}

	names := append([]string{"-"}, header...)
	if withEdges {
		names = append(names, "ES", "EU", "EX")
	}
	n := len(names)
	idx := make(map[string]lock.Mode, n)
	for i, name := range names {
		idx[name] = lock.Mode(i)
	}

	compat := make([][]bool, n)
	conv := make([][]lock.Mode, n)
	for i := range compat {
		compat[i] = make([]bool, n)
		conv[i] = make([]lock.Mode, n)
		for j := range conv[i] {
			// Placeholder conversion for unrelated namespaces: keep the
			// held mode. Real cells are overwritten below.
			conv[i][j] = lock.Mode(i)
			if i == 0 {
				conv[i][j] = lock.Mode(j)
			}
		}
	}

	for _, row := range compatRows {
		held, ok := idx[row[0]]
		if !ok {
			panic("protocol: unknown held mode " + row[0])
		}
		for c, cell := range row[1:] {
			req := idx[header[c]]
			switch cell {
			case "+":
				compat[held][req] = true
			case "-":
			default:
				panic(fmt.Sprintf("protocol: bad compatibility cell %q", cell))
			}
		}
	}
	for _, row := range convRows {
		held := idx[row[0]]
		for c, cell := range row[1:] {
			req := idx[header[c]]
			result, ok := idx[cell]
			if !ok {
				panic(fmt.Sprintf("protocol: conversion result %q is not a mode", cell))
			}
			conv[held][req] = result
		}
	}

	if withEdges {
		applyEdgeModes(names, idx, compat, conv)
	}
	return lock.NewTable(names, compat, conv), idx
}

// applyEdgeModes wires the standard edge-lock semantics (shared, update,
// exclusive — the "three modes for edges" of taDOM3+) into a table.
func applyEdgeModes(names []string, idx map[string]lock.Mode, compat [][]bool, conv [][]lock.Mode) {
	es, eu, ex := idx["ES"], idx["EU"], idx["EX"]
	// Shared/update/exclusive with the usual asymmetric update semantics.
	compat[es][es] = true
	compat[es][eu] = true // held ES admits a new EU request
	compat[eu][es] = true
	// eu-eu, *-ex, ex-* stay false.
	type pair struct{ held, req, res lock.Mode }
	rules := []pair{
		{es, es, es}, {es, eu, eu}, {es, ex, ex},
		{eu, es, eu}, {eu, eu, eu}, {eu, ex, ex},
		{ex, es, ex}, {ex, eu, ex}, {ex, ex, ex},
	}
	for _, r := range rules {
		conv[r.held][r.req] = r.res
	}
	// Node modes and edge modes are used on disjoint resource namespaces;
	// their cross products are never consulted. Leave compat false and the
	// placeholder conversions in place.
	_ = names
}

// modeSet is a convenience bundle of looked-up modes.
func modes(idx map[string]lock.Mode, names ...string) []lock.Mode {
	out := make([]lock.Mode, len(names))
	for i, n := range names {
		m, ok := idx[n]
		if !ok {
			panic("protocol: unknown mode " + n)
		}
		out[i] = m
	}
	return out
}
