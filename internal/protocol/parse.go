package protocol

import (
	"fmt"
	"sort"
	"strings"
)

// Parse resolves a user-supplied protocol name to a registered Protocol.
// Unlike ByName it is forgiving about the spellings CLIs and wire peers
// produce: matching is case-insensitive ("tadom3+", "TADOM3+"), and the
// *-2PL names accept the "-" the paper sometimes hyphenates with
// ("Node-2PL" = "Node2PL"). Every front end that accepts a protocol name —
// contest, xtc, tamix, xtcd sessions — funnels through here so they agree on
// what is valid and produce the same error text.
func Parse(name string) (Protocol, error) {
	if p, ok := registry[name]; ok {
		return p, nil
	}
	key := canonKey(name)
	if p, ok := canonIndex()[key]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("protocol: unknown protocol %q (known: %s)",
		name, strings.Join(Names(), ", "))
}

// ParseList resolves a comma-separated protocol list. Besides names it
// accepts the selector "all" (every protocol in presentation order) and the
// three group names ("*-2PL", "MGL*", "taDOM*", case-insensitively and with
// the * optional) which expand to their members. Duplicates are removed,
// first occurrence wins the ordering.
func ParseList(list string) ([]Protocol, error) {
	var out []Protocol
	seen := map[string]bool{}
	add := func(p Protocol) {
		if !seen[p.Name()] {
			seen[p.Name()] = true
			out = append(out, p)
		}
	}
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.EqualFold(part, "all") {
			for _, p := range All() {
				add(p)
			}
			continue
		}
		if group, ok := matchGroup(part); ok {
			for _, p := range All() {
				if p.Group() == group {
					add(p)
				}
			}
			continue
		}
		p, err := Parse(part)
		if err != nil {
			return nil, err
		}
		add(p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("protocol: empty protocol list %q", list)
	}
	return out, nil
}

// matchGroup resolves a group selector to the canonical group name.
func matchGroup(s string) (string, bool) {
	key := canonKey(s)
	for _, g := range Groups() {
		if canonKey(g) == key {
			return g, true
		}
	}
	return "", false
}

// Groups returns the protocol group names in presentation order.
func Groups() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range All() {
		if !seen[p.Group()] {
			seen[p.Group()] = true
			out = append(out, p.Group())
		}
	}
	return out
}

// canonKey normalizes a name for matching: lower case, "-" and "*" dropped.
// The "+" is significant (taDOM2 vs taDOM2+), so it stays.
func canonKey(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "-", "")
	s = strings.ReplaceAll(s, "*", "")
	return s
}

// canonIndexCache maps canonical keys to protocols. Built lazily after all
// init-time register calls have run; the registry is immutable afterwards.
var canonIndexCache map[string]Protocol

func canonIndex() map[string]Protocol {
	if canonIndexCache == nil {
		idx := make(map[string]Protocol, len(registry))
		for _, p := range registry {
			idx[canonKey(p.Name())] = p
		}
		canonIndexCache = idx
	}
	return canonIndexCache
}

// NamesHelp renders the protocol names (and group selectors) for CLI flag
// usage strings, so every tool's -protocols help stays in sync with the
// registry.
func NamesHelp() string {
	groups := Groups()
	sort.Strings(groups)
	return fmt.Sprintf("%s; groups: %s; or \"all\"",
		strings.Join(Names(), ", "), strings.Join(groups, ", "))
}
