package protocol

import (
	"testing"

	"repro/internal/lock"
)

// TestPackedCompatAllProtocols verifies the lock manager's packed
// granted-group-word encoding against every protocol's compatibility matrix:
// the CAS fast path must answer exactly as the matrix for all (held,
// requested) mode pairs. This is the contract that lets the fast path grant
// without consulting the table.
func TestPackedCompatAllProtocols(t *testing.T) {
	for _, p := range All() {
		if err := lock.VerifyPackedCompat(p.Table()); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}
