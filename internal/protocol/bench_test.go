package protocol

import (
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/splid"
	"repro/internal/tx"
)

// benchTree is a static TreeAccess shaped like one bib book.
func benchTree() *fakeTree {
	children := map[string][]string{
		"1.3.3": {"1.3.3.3", "1.3.3.5", "1.3.3.7", "1.3.3.9", "1.3.3.11"},
	}
	var subtree []string
	subtree = append(subtree, "1.3.3")
	for _, c := range children["1.3.3"] {
		subtree = append(subtree, c, c+".3", c+".3.1")
	}
	return &fakeTree{
		children: children,
		idOwners: map[string][]string{"1.3.3": {"1.3.3"}},
		subtrees: map[string][]string{"1.3.3": subtree},
	}
}

// BenchmarkProtocolReadNode measures the lock-request overhead of one deep
// node read per protocol — the per-operation cost the paper trades against
// parallelism ("the advantage of higher parallelism clearly outweighs this
// processing overhead").
func BenchmarkProtocolReadNode(b *testing.B) {
	target := splid.MustParse("1.3.3.5.3")
	for _, p := range All() {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			lm := lock.NewManager(p.Table(), lock.Options{Timeout: time.Second})
			tm := tx.NewManager(lm)
			tree := benchTree()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				txn := tm.Begin(tx.LevelRepeatable)
				c := &Ctx{LM: lm, Txn: txn, Depth: -1, Tree: tree}
				if err := p.ReadNode(c, target, Navigate); err != nil {
					b.Fatal(err)
				}
				txn.Commit()
			}
			b.ReportMetric(float64(lm.Stats().Requests)/float64(b.N), "locks/op")
		})
	}
}

// BenchmarkProtocolReadTree measures one fragment read: node-by-node for
// the *-2PL group, one subtree lock for everyone else.
func BenchmarkProtocolReadTree(b *testing.B) {
	target := splid.MustParse("1.3.3")
	for _, p := range All() {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			lm := lock.NewManager(p.Table(), lock.Options{Timeout: time.Second})
			tm := tx.NewManager(lm)
			tree := benchTree()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				txn := tm.Begin(tx.LevelRepeatable)
				c := &Ctx{LM: lm, Txn: txn, Depth: -1, Tree: tree}
				if err := p.ReadTree(c, target, Jump); err != nil {
					b.Fatal(err)
				}
				txn.Commit()
			}
			b.ReportMetric(float64(lm.Stats().Requests)/float64(b.N), "locks/op")
		})
	}
}

// BenchmarkProtocolDeleteTree measures the CLUSTER2 locking work per
// protocol in isolation (no storage): the *-2PL IDX/M scan versus a single
// subtree lock.
func BenchmarkProtocolDeleteTree(b *testing.B) {
	target := splid.MustParse("1.3.3")
	left, right := splid.Null, splid.MustParse("1.3.5")
	for _, p := range All() {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			lm := lock.NewManager(p.Table(), lock.Options{Timeout: time.Second})
			tm := tx.NewManager(lm)
			tree := benchTree()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				txn := tm.Begin(tx.LevelRepeatable)
				c := &Ctx{LM: lm, Txn: txn, Depth: -1, Tree: tree}
				if err := p.DeleteTree(c, target, left, right); err != nil {
					b.Fatal(err)
				}
				txn.Commit()
			}
			b.ReportMetric(float64(lm.Stats().Requests)/float64(b.N), "locks/op")
		})
	}
}

// BenchmarkTableLookup measures the raw matrix operations.
func BenchmarkTableLookup(b *testing.B) {
	tab := TaDOM3Plus.Table()
	n := tab.NumModes()
	b.Run("compatible", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab.Compatible(lock.Mode(i%n), lock.Mode((i+3)%n))
		}
	})
	b.Run("convert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m1 := lock.Mode(i%(n-1)) + 1
			m2 := lock.Mode((i+3)%(n-1)) + 1
			tab.Convert(m1, m2)
		}
	})
}
