package protocol

import (
	"repro/internal/lock"
	"repro/internal/splid"
)

// Node2PLa (Section 2.2, last paragraph): the paper's optimized *-2PL
// representative. It keeps the group's defining idea — every access is
// protected at the *parent* of the context node — but borrows URIX's
// intention locks to protect the ancestor paths of direct jumps (replacing
// the IDR/IDX machinery and its subtree scans) and honors the lock-depth
// parameter, which in turn introduces subtree locks.
//
// Consequences the experiments show and this implementation reproduces:
//
//   - Reads place IR (or, for fragment reads, subtree R) on the parent:
//     the protocol "reacts a level deeper" than the node-granular
//     protocols (Figure 10).
//   - Every write escalates to a subtree X on the parent — for
//     TArenameTopic that locks the whole topics level, which is why
//     Node2PLa "fails almost completely" there (Figure 10d).
//   - CLUSTER2 subtree deletes need no IDX scan: the intention path makes
//     them as cheap as in the MGL*/taDOM* groups (Figure 11).
type node2PLa struct {
	name         string
	table        *lock.Table
	ir, ix       lock.Mode
	r, rix, u, x lock.Mode
	es, eu, ex   lock.Mode
}

// Node2PLa is the optimized *-2PL representative.
var Node2PLa = register(newNode2PLa())

func newNode2PLa() *node2PLa {
	// Same matrices as URIX (Figure 2).
	compat := `
     IR IX R RIX U X
IR   +  +  + +   - -
IX   +  +  - -   - -
R    +  -  + -   - -
RIX  +  -  - -   - -
U    +  -  + -   - -
X    -  -  - -   - -`
	conv := `
     IR  IX  R   RIX U X
IR   IR  IX  R   RIX U X
IX   IX  IX  RIX RIX X X
R    R   RIX R   RIX R X
RIX  RIX RIX RIX RIX X X
U    U   X   U   X   U X
X    X   X   X   X   X X`
	t, idx := buildTable(compat, conv, true)
	m := modes(idx, "IR", "IX", "R", "RIX", "U", "X", "ES", "EU", "EX")
	return &node2PLa{name: "Node2PLa", table: t,
		ir: m[0], ix: m[1], r: m[2], rix: m[3], u: m[4], x: m[5],
		es: m[6], eu: m[7], ex: m[8]}
}

// Name implements Protocol.
func (p *node2PLa) Name() string { return p.name }

// Group implements Protocol.
func (p *node2PLa) Group() string { return "*-2PL" }

// DepthAware implements Protocol.
func (p *node2PLa) DepthAware() bool { return true }

// Table implements Protocol.
func (p *node2PLa) Table() lock.ModeTable { return p.table }

// anchor returns the parent-focused lock target: the context node's parent,
// folded through the lock-depth parameter. The root anchors on itself.
func (p *node2PLa) anchor(c *Ctx, id splid.ID) (splid.ID, bool) {
	par := id.Parent()
	if par.IsNull() {
		par = id
	}
	return depthTarget(c, par)
}

// ReadNode implements Protocol: IR on the parent (R beyond lock depth), IR
// along the path — jumps included, that is the optimization over IDR.
func (p *node2PLa) ReadNode(c *Ctx, id splid.ID, acc Access) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, sub := p.anchor(c, id)
	m := p.ir
	if sub {
		m = p.r
	}
	return lockPathAndNode(c, tgt, p.ir, m, short)
}

// WriteNode implements Protocol: subtree X on the parent — the group's
// coarse write granule.
func (p *node2PLa) WriteNode(c *Ctx, id splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	return p.writeParent(c, id)
}

func (p *node2PLa) writeParent(c *Ctx, id splid.ID) error {
	tgt, _ := p.anchor(c, id)
	return lockPathAndNode(c, tgt, p.ix, p.x, false)
}

// ReadLevel implements Protocol: subtree R on the parent of the children —
// i.e. the context node itself.
func (p *node2PLa) ReadLevel(c *Ctx, parent splid.ID, children []splid.ID) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, _ := depthTarget(c, parent)
	return lockPathAndNode(c, tgt, p.ir, p.r, short)
}

// ReadTree implements Protocol: fragment reads anchor a subtree R on the
// parent of the fragment root — one level coarser than the MGL*/taDOM*
// protocols, the "reacts a level deeper" effect of Figure 10.
func (p *node2PLa) ReadTree(c *Ctx, id splid.ID, acc Access) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, _ := p.anchor(c, id)
	return lockPathAndNode(c, tgt, p.ir, p.r, short)
}

// Insert implements Protocol: subtree X on the parent of the new node.
func (p *node2PLa) Insert(c *Ctx, parent, newID, left, right splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	return p.writeParent(c, newID)
}

// DeleteTree implements Protocol: subtree X on the parent — intention locks
// make the IDX subtree scan of the pure *-2PL protocols unnecessary.
func (p *node2PLa) DeleteTree(c *Ctx, id, left, right splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	return p.writeParent(c, id)
}

// Rename implements Protocol: the parent-level X means renaming a topic
// locks the whole topics subtree — the very large granules of Figure 10d.
func (p *node2PLa) Rename(c *Ctx, id splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	return p.writeParent(c, id)
}

// ReadEdge implements Protocol: sibling order is protected by the parent
// locks, so Node2PLa needs no edge locks.
func (p *node2PLa) ReadEdge(c *Ctx, id splid.ID, e Edge) error { return nil }

// UpdateTree implements Protocol: U on the parent anchor.
func (p *node2PLa) UpdateTree(c *Ctx, id splid.ID, acc Access) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, _ := p.anchor(c, id)
	return lockPathAndNode(c, tgt, p.ir, p.u, short)
}
