package protocol

// The 12th contestant: multiversion snapshot reads. The protocol itself is
// taDOM3+ — writers lock exactly like the paper's best protocol — but
// engines that detect it (via UsesSnapshotReads) run read-only transactions
// at tx.LevelSnapshot against copy-on-write page versions pinned to a
// commit-consistent WAL position. Those readers never touch the lock
// manager at all: the contest's lock-overhead axis collapses to zero for
// the read side, at the price of version storage and stale-but-consistent
// results.
type snapshotProto struct {
	Protocol
}

// Name implements Protocol.
func (snapshotProto) Name() string { return "snapshot" }

// Group implements Protocol: the MVCC family of one.
func (snapshotProto) Group() string { return "MVCC" }

// DepthAware implements Protocol: the embedded taDOM3+ honors the
// lock-depth parameter for writing transactions.
func (snapshotProto) DepthAware() bool { return true }

// SnapshotReads marks the protocol for snapshot-read routing.
func (snapshotProto) SnapshotReads() bool { return true }

// SnapshotReader is implemented by protocols whose read-only transactions
// should bypass the lock manager through MVCC snapshot views.
type SnapshotReader interface{ SnapshotReads() bool }

// UsesSnapshotReads reports whether p routes read-only transactions through
// snapshot reads.
func UsesSnapshotReads(p Protocol) bool {
	sr, ok := p.(SnapshotReader)
	return ok && sr.SnapshotReads()
}

// Snapshot is the registered snapshot-reads contestant.
var Snapshot = register(snapshotProto{Protocol: TaDOM3Plus})
