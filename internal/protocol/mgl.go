package protocol

import (
	"repro/internal/lock"
	"repro/internal/splid"
)

// The MGL* group (Section 2.2): multi-granularity locking adapted to XML
// trees. Compared with classical MGL, intention locks play a double role —
// they indicate read/write activity deeper in the tree AND lock the node
// itself (without its subtree); R and X are subtree locks. Direct jumps are
// protected by intention-locking the entire ancestor path (derived from the
// SPLID without document access), which is the group's key advantage over
// the *-2PL protocols.
//
// Three variants:
//
//	IRX  — one general intention mode I (hides reads and writes alike, so
//	       it must conflict with subtree reads: reader-blocks-reader).
//	IRIX — separate IR and IX intentions; without an RIX mode the
//	       conversion R+IX coarsens all the way to X.
//	URIX — IRIX plus the RIX and U modes of Figure 2 (matrices verbatim).

// mglProto implements the shared MGL behavior; mode fields differ per
// variant.
type mglProto struct {
	name       string
	table      *lock.Table
	ir, ix     lock.Mode // intention read / write (both = I for IRX)
	r, x       lock.Mode // subtree read / exclusive
	u          lock.Mode // update mode (URIX only, ModeNone otherwise)
	es, eu, ex lock.Mode
}

// IRX, IRIX, and URIX are the MGL* group protocols.
var (
	IRX  = register(newIRX())
	IRIX = register(newIRIX())
	URIX = register(newURIX())
)

func newIRX() *mglProto {
	compat := `
   I R X
I  + - -
R  - + -
X  - - -`
	// With a single general intention mode, a held I may hide *write*
	// activity deeper in the tree, so combining it with a subtree read can
	// only be expressed as X — single-intention locking converts coarsely.
	conv := `
   I R X
I  I X X
R  X R X
X  X X X`
	t, idx := buildTable(compat, conv, true)
	m := modes(idx, "I", "I", "R", "X", "ES", "EU", "EX")
	return &mglProto{name: "IRX", table: t,
		ir: m[0], ix: m[1], r: m[2], x: m[3], es: m[4], eu: m[5], ex: m[6]}
}

func newIRIX() *mglProto {
	compat := `
    IR IX R X
IR  +  +  + -
IX  +  +  - -
R   +  -  + -
X   -  -  - -`
	// Without an RIX mode, holding a subtree read and intending a write
	// below it can only be expressed as X — the coarsening URIX removes.
	conv := `
    IR IX R X
IR  IR IX R X
IX  IX IX X X
R   R  X  R X
X   X  X  X X`
	t, idx := buildTable(compat, conv, true)
	m := modes(idx, "IR", "IX", "R", "X", "ES", "EU", "EX")
	return &mglProto{name: "IRIX", table: t,
		ir: m[0], ix: m[1], r: m[2], x: m[3], es: m[4], eu: m[5], ex: m[6]}
}

func newURIX() *mglProto {
	// Figure 2 of the paper, verbatim (held mode = row, request = column).
	compat := `
     IR IX R RIX U X
IR   +  +  + +   - -
IX   +  +  - -   - -
R    +  -  + -   - -
RIX  +  -  - -   - -
U    +  -  + -   - -
X    -  -  - -   - -`
	conv := `
     IR  IX  R   RIX U X
IR   IR  IX  R   RIX U X
IX   IX  IX  RIX RIX X X
R    R   RIX R   RIX R X
RIX  RIX RIX RIX RIX X X
U    U   X   U   X   U X
X    X   X   X   X   X X`
	t, idx := buildTable(compat, conv, true)
	m := modes(idx, "IR", "IX", "R", "X", "U", "ES", "EU", "EX")
	return &mglProto{name: "URIX", table: t,
		ir: m[0], ix: m[1], r: m[2], x: m[3], u: m[4], es: m[5], eu: m[6], ex: m[7]}
}

// Name implements Protocol.
func (p *mglProto) Name() string { return p.name }

// Group implements Protocol.
func (p *mglProto) Group() string { return "MGL*" }

// DepthAware implements Protocol.
func (p *mglProto) DepthAware() bool { return true }

// Table implements Protocol.
func (p *mglProto) Table() lock.ModeTable { return p.table }

// ReadNode implements Protocol: IR on the node (or R on the lock-depth
// ancestor) plus IR along the ancestor path — identical for navigation and
// direct jumps.
func (p *mglProto) ReadNode(c *Ctx, id splid.ID, acc Access) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, sub := depthTarget(c, id)
	m := p.ir
	if sub {
		m = p.r
	}
	return lockPathAndNode(c, tgt, p.ir, m, short)
}

// WriteNode implements Protocol: X on the node (whose subtree is just its
// string child) or on the lock-depth ancestor, with IX along the path.
func (p *mglProto) WriteNode(c *Ctx, id splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	tgt, _ := depthTarget(c, id)
	return lockPathAndNode(c, tgt, p.ix, p.x, false)
}

// ReadLevel implements Protocol. MGL has no level locks: the parent and
// every child are locked individually (or the whole subtree once the
// lock depth is exceeded) — more requests for the same isolation,
// exactly the overhead taDOM's LR mode eliminates.
func (p *mglProto) ReadLevel(c *Ctx, parent splid.ID, children []splid.ID) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, sub := depthTarget(c, parent)
	if sub {
		return lockPathAndNode(c, tgt, p.ir, p.r, short)
	}
	if err := lockPathAndNode(c, parent, p.ir, p.ir, short); err != nil {
		return err
	}
	// The child list itself must be a repeatable observation: lock the
	// traversal edges too (taDOM's LR mode makes all of this one request).
	reqs := make([]lock.Req, 0, 2*len(children)+1)
	reqs = append(reqs, lock.Req{Res: edgeRes(parent, EdgeFirstChild), Mode: p.es, Short: short})
	for _, ch := range children {
		chTgt, chSub := depthTarget(c, ch)
		m := p.ir
		if chSub {
			m = p.r
		}
		reqs = append(reqs, lock.Req{Res: nodeRes(chTgt), Mode: m, Short: short})
		if !chSub {
			reqs = append(reqs, lock.Req{Res: edgeRes(ch, EdgeNextSibling), Mode: p.es, Short: short})
		}
	}
	return lockBatch(c, reqs)
}

// ReadTree implements Protocol: R on the subtree root plus IR on the path.
func (p *mglProto) ReadTree(c *Ctx, id splid.ID, acc Access) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, _ := depthTarget(c, id)
	return lockPathAndNode(c, tgt, p.ir, p.r, short)
}

// Insert implements Protocol: X on the new node's slot, IX on the path, and
// exclusive locks on the navigation edges the insertion redirects.
func (p *mglProto) Insert(c *Ctx, parent, newID, left, right splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	tgt, sub := depthTarget(c, newID)
	if err := lockPathAndNode(c, tgt, p.ix, p.x, false); err != nil {
		return err
	}
	if sub {
		return nil // edges inside the locked subtree are covered
	}
	return p.writeBoundaryEdges(c, parent, left, right)
}

// DeleteTree implements Protocol: X on the subtree root, IX on the path,
// exclusive edge locks on the boundary. No subtree scan is needed — the
// group's decisive advantage in CLUSTER2.
func (p *mglProto) DeleteTree(c *Ctx, id, left, right splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	tgt, sub := depthTarget(c, id)
	if err := lockPathAndNode(c, tgt, p.ix, p.x, false); err != nil {
		return err
	}
	if sub {
		return nil
	}
	return p.writeBoundaryEdges(c, id.Parent(), left, right)
}

// Rename implements Protocol. MGL cannot separate a node's name from its
// content (Section 5.2): renaming locks the whole subtree exclusively.
func (p *mglProto) Rename(c *Ctx, id splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	tgt, _ := depthTarget(c, id)
	return lockPathAndNode(c, tgt, p.ix, p.x, false)
}

// ReadEdge implements Protocol: a shared edge lock, unless the edge lies
// below the lock depth (then the covering subtree lock isolates it).
func (p *mglProto) ReadEdge(c *Ctx, id splid.ID, e Edge) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	if c.Depth >= 0 && level0(id) > c.Depth {
		return nil
	}
	return lockOne(c, edgeRes(id, e), p.es, short)
}

// writeBoundaryEdges exclusively locks the edges a structural change at a
// child-list position redirects: the neighbors' sibling edges and, at the
// list boundaries, the parent's first/last-child edges.
func (p *mglProto) writeBoundaryEdges(c *Ctx, parent, left, right splid.ID) error {
	if c.Depth >= 0 && level0(parent) >= c.Depth {
		return nil // covered by subtree locks at the cut-off level
	}
	if left.IsNull() {
		if err := lockOne(c, edgeRes(parent, EdgeFirstChild), p.ex, false); err != nil {
			return err
		}
	} else {
		if err := lockOne(c, edgeRes(left, EdgeNextSibling), p.ex, false); err != nil {
			return err
		}
	}
	if right.IsNull() {
		return lockOne(c, edgeRes(parent, EdgeLastChild), p.ex, false)
	}
	return lockOne(c, edgeRes(right, EdgePrevSibling), p.ex, false)
}

// UpdateTree implements Protocol: U on the subtree root for URIX; IRX and
// IRIX have no update mode and fall back to a plain subtree read.
func (p *mglProto) UpdateTree(c *Ctx, id splid.ID, acc Access) error {
	if p.u == lock.ModeNone {
		return p.ReadTree(c, id, acc)
	}
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, _ := depthTarget(c, id)
	return lockPathAndNode(c, tgt, p.ir, p.u, short)
}
