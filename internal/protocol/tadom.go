package protocol

import (
	"repro/internal/lock"
	"repro/internal/splid"
)

// The taDOM* group (Section 2.3): node locks tailored to DOM operations.
// Intention locks (IR, IX) are complemented by a node read lock (NR), level
// locks (LR: node + all direct children shared; CX: some direct child is
// exclusively locked), and subtree locks (SR, SU, SX).
//
//	taDOM2  — the 8 modes of Figures 3a/4, matrices verbatim, including the
//	          fan-out conversions (e.g. CX_NR: convert LR to CX on the node
//	          and acquire NR on every direct child).
//	taDOM2+ — adds LRIX, LRCX, SRIX, SRCX so those conversions complete in
//	          one mode switch without fan-out or extra blocking.
//	taDOM3  — adds NU and NX (node update/exclusive without the subtree)
//	          for the DOM level 3 renameNode operation.
//	taDOM3+ — taDOM3 plus the four level/subtree combination modes and the
//	          NRIX/NRCX combinations, making every conversion fan-out-free.
//	          (The original taDOM3+ counts 20 lock modes; its exact list is
//	          in an unavailable internal report — see DESIGN.md for the
//	          substitution rationale. The behavioral properties the paper
//	          measures are preserved: optimal conversions and node-only
//	          rename locks.)
//
// The extended tables are generated from the taDOM2 base by decomposing
// modes into read/write components and joining component-wise; a test
// verifies that the generator restricted to the base modes reproduces the
// paper's Figure 3a/4 matrices exactly.

// tadomProto implements the shared taDOM behavior.
type tadomProto struct {
	name                           string
	table                          *lock.Table
	idx                            map[string]lock.Mode
	ir, nr, lr, sr, ix, cx, su, sx lock.Mode
	nu, nx                         lock.Mode // ModeNone for taDOM2/2+
	combined                       bool      // "+" variants: no fan-out needed
	es, eu, ex                     lock.Mode
}

// TaDOM2, TaDOM2Plus, TaDOM3, and TaDOM3Plus are the taDOM* group.
var (
	TaDOM2     = register(newTaDOM(false, false))
	TaDOM2Plus = register(newTaDOM(true, false))
	TaDOM3     = register(newTaDOM(false, true))
	TaDOM3Plus = register(newTaDOM(true, true))
)

// --- table generation -------------------------------------------------------

// tdMode is the semantic decomposition of a taDOM mode.
type tdMode struct {
	name  string
	read  int  // 0 none, 1 IR, 2 NR, 3 LR, 4 SR
	write int  // 0 none, 1 IX, 2 CX, 5 SX (gap leaves room for node writes)
	nodeW int  // 0 none, 1 NU, 2 NX (node-only writes, taDOM3*)
	subU  bool // SU
}

const (
	rdNone = 0
	rdIR   = 1
	rdNR   = 2
	rdLR   = 3
	rdSR   = 4

	wrNone = 0
	wrIX   = 1
	wrCX   = 2
	wrSX   = 5
)

func tadomModes(plus, dom3 bool) []tdMode {
	ms := []tdMode{
		{name: "IR", read: rdIR},
		{name: "NR", read: rdNR},
		{name: "LR", read: rdLR},
		{name: "SR", read: rdSR},
		{name: "IX", write: wrIX},
		{name: "CX", write: wrCX},
		{name: "SU", subU: true},
		{name: "SX", write: wrSX},
	}
	if dom3 {
		ms = append(ms,
			tdMode{name: "NU", nodeW: 1},
			tdMode{name: "NX", nodeW: 2},
		)
	}
	if plus {
		ms = append(ms,
			tdMode{name: "LRIX", read: rdLR, write: wrIX},
			tdMode{name: "LRCX", read: rdLR, write: wrCX},
			tdMode{name: "SRIX", read: rdSR, write: wrIX},
			tdMode{name: "SRCX", read: rdSR, write: wrCX},
		)
		if dom3 {
			ms = append(ms,
				tdMode{name: "NRIX", read: rdNR, write: wrIX},
				tdMode{name: "NRCX", read: rdNR, write: wrCX},
			)
		}
	}
	return ms
}

// tadomCompatible mirrors Figure 3a component-wise. held and req may be
// combined modes; they are compatible iff every held component admits every
// requested component.
func tadomCompatible(held, req tdMode, plus bool) bool {
	// SX conflicts with everything.
	if held.write == wrSX || req.write == wrSX {
		return false
	}
	// SU (subtree update): a held SU admits readers up to SR (the update
	// asymmetry of Figure 3a), but no held lock admits a new SU request —
	// column SU of Figure 3a is all "-".
	if held.subU {
		return req.read != rdNone && req.write == wrNone && req.nodeW == 0 && !req.subU
	}
	if req.subU {
		return false
	}
	// Node writes (taDOM3's NU/NX) lock the node itself: they conflict with
	// node reads (NR and stronger — LR/SR read the node too) and with each
	// other. CX stays compatible (it locks a child, not this node). Pure IX
	// conflicts only in the non-plus tables, where conversions absorb NR
	// into IX and an IX may therefore hide a node read; taDOM3+ keeps node
	// reads explicit via NRIX, so its IX is a pure intention.
	if held.nodeW > 0 || req.nodeW > 0 {
		if held.nodeW > 0 && req.nodeW > 0 {
			return false
		}
		heldWrites := held.nodeW > 0
		other := req
		if !heldWrites {
			other = held
		}
		if other.read >= rdNR {
			// A held NU (update) still admits new node readers; a held
			// reader never admits a node-write request.
			return heldWrites && held.nodeW == 1
		}
		if other.write >= wrIX && !plus {
			// In taDOM3, conversions absorb NR into IX and CX (Figure 4),
			// so either may hide a node read; node writes must conservatively
			// conflict. taDOM3+ keeps node reads explicit (NRIX/NRCX) and
			// its pure intentions stay compatible with node writes.
			return false
		}
		return true
	}
	// Read-vs-write components (Figure 3a):
	//   LR conflicts with CX (children read vs child written).
	//   SR conflicts with IX and CX (subtree read vs writes below).
	if held.read == rdLR && req.write == wrCX || req.read == rdLR && held.write == wrCX {
		return false
	}
	if held.read == rdSR && req.write >= wrIX || req.read == rdSR && held.write >= wrIX {
		return false
	}
	return true
}

// tadomConvert joins two modes per Figure 4 extended to the combined and
// node-write modes. For non-plus tables the level/subtree × IX/CX joins
// return the bare write mode; the protocol layer performs the NR/SR fan-out
// to the children first (the subscripted conversions CX_NR etc.).
func tadomConvert(a, b tdMode, plus, dom3 bool) string {
	read := a.read
	if b.read > read {
		read = b.read
	}
	write := a.write
	if b.write > write {
		write = b.write
	}
	nodeW := a.nodeW
	if b.nodeW > nodeW {
		nodeW = b.nodeW
	}
	subU := a.subU || b.subU

	if write == wrSX {
		return "SX"
	}
	if nodeW > 0 {
		// Node writes combine with anything beyond plain node access by
		// coarsening to the subtree lock (no NU/NX combination modes).
		if subU || write != wrNone || read >= rdLR {
			return "SX"
		}
		if nodeW == 2 {
			return "NX"
		}
		return "NU"
	}
	if subU {
		// Figure 4, asymmetric: a held SU absorbs every read request (row
		// SU), while requesting SU on a held SR leaves SR (row SR); writes
		// escalate to SX.
		if write > wrNone {
			return "SX"
		}
		if a.subU {
			return "SU"
		}
		if read == rdSR {
			return "SR"
		}
		return "SU"
	}
	if write == wrNone {
		return [5]string{"", "IR", "NR", "LR", "SR"}[read]
	}
	wname := [3]string{"", "IX", "CX"}[write]
	switch {
	case read <= rdIR:
		return wname
	case read == rdNR:
		if plus && dom3 {
			return "NR" + wname
		}
		return wname // Figure 4: NR is absorbed by IX/CX
	case read == rdLR:
		if plus {
			return "LR" + wname
		}
		return wname // fan-out conversion IX_NR / CX_NR
	default: // SR
		if plus {
			return "SR" + wname
		}
		return wname // fan-out conversion IX_SR / CX_SR
	}
}

func newTaDOM(plus, dom3 bool) *tadomProto {
	ms := tadomModes(plus, dom3)
	names := []string{"-"}
	for _, m := range ms {
		names = append(names, m.name)
	}
	names = append(names, "ES", "EU", "EX")
	idx := make(map[string]lock.Mode, len(names))
	for i, n := range names {
		idx[n] = lock.Mode(i)
	}
	n := len(names)
	compat := make([][]bool, n)
	conv := make([][]lock.Mode, n)
	for i := range compat {
		compat[i] = make([]bool, n)
		conv[i] = make([]lock.Mode, n)
		for j := range conv[i] {
			conv[i][j] = lock.Mode(i)
			if i == 0 {
				conv[i][j] = lock.Mode(j)
			}
		}
	}
	for i, a := range ms {
		hi := lock.Mode(i + 1)
		for j, b := range ms {
			rj := lock.Mode(j + 1)
			compat[hi][rj] = tadomCompatible(a, b, plus)
			res := tadomConvert(a, b, plus, dom3)
			rm, ok := idx[res]
			if !ok {
				panic("protocol: taDOM conversion produced unknown mode " + res)
			}
			conv[hi][rj] = rm
		}
	}
	applyEdgeModes(names, idx, compat, conv)
	table := lock.NewTable(names, compat, conv)

	p := &tadomProto{
		name:     "taDOM" + map[bool]string{false: "2", true: "3"}[dom3] + map[bool]string{false: "", true: "+"}[plus],
		table:    table,
		idx:      idx,
		combined: plus,
	}
	m := modes(idx, "IR", "NR", "LR", "SR", "IX", "CX", "SU", "SX", "ES", "EU", "EX")
	p.ir, p.nr, p.lr, p.sr, p.ix, p.cx, p.su, p.sx = m[0], m[1], m[2], m[3], m[4], m[5], m[6], m[7]
	p.es, p.eu, p.ex = m[8], m[9], m[10]
	if dom3 {
		nm := modes(idx, "NU", "NX")
		p.nu, p.nx = nm[0], nm[1]
	}
	return p
}

// --- behavior ---------------------------------------------------------------

// Name implements Protocol.
func (p *tadomProto) Name() string { return p.name }

// Group implements Protocol.
func (p *tadomProto) Group() string { return "taDOM*" }

// DepthAware implements Protocol.
func (p *tadomProto) DepthAware() bool { return true }

// Table implements Protocol.
func (p *tadomProto) Table() lock.ModeTable { return p.table }

// lockNode acquires a node lock, performing the subscripted fan-out
// conversions of Figure 4 when required: if the transaction holds LR (or
// SR) and requests IX/CX, the implicit child coverage of the level (or
// subtree) lock is first materialized as NR (or SR) locks on every direct
// child. The "+" protocols skip this entirely — their combined modes keep
// the coverage inside a single lock.
func (p *tadomProto) lockNode(c *Ctx, id splid.ID, m lock.Mode, short bool) error {
	if !p.combined {
		// The held-mode probe runs on every node lock — answer it from the
		// per-transaction cache instead of the shared table when possible.
		held := c.LM.HeldModeCached(c.Txn.LockTx(), nodeRes(id))
		var childMode lock.Mode
		switch {
		// Figure 4, IX_NR / CX_NR / IX_SR / CX_SR: a write request meeting
		// a held level/subtree read materializes the read coverage on the
		// children before the node lock converts.
		case (m == p.ix || m == p.cx) && held == p.lr:
			childMode = p.nr
		case (m == p.ix || m == p.cx) && held == p.sr:
			childMode = p.sr
		// ...and the symmetric direction: a level/subtree read request
		// meeting a held write intention keeps the node's IX/CX and adds
		// the read coverage child by child.
		case m == p.lr && (held == p.ix || held == p.cx):
			childMode = p.nr
		case m == p.sr && (held == p.ix || held == p.cx):
			childMode = p.sr
		}
		if childMode != lock.ModeNone {
			children, err := c.Tree.Children(id)
			if err != nil {
				return err
			}
			reqs := make([]lock.Req, len(children))
			for i, ch := range children {
				reqs[i] = lock.Req{Res: nodeRes(ch), Mode: childMode, Short: short}
			}
			if err := lockBatch(c, reqs); err != nil {
				return err
			}
		}
	}
	return lockOne(c, nodeRes(id), m, short)
}

// writePath protects the ancestor path of a write: CX on the direct parent
// (some child of it is exclusively locked), IX on all higher ancestors. The
// "+" protocols never fan out, so their whole path goes through one batch;
// the base protocols must probe each ancestor for fan-out conversions.
func (p *tadomProto) writePath(c *Ctx, target splid.ID, short bool) error {
	anc := target.Ancestors()
	if p.combined {
		reqs := c.reqBuf(len(anc))
		for i, a := range anc {
			m := p.ix
			if i == len(anc)-1 {
				m = p.cx
			}
			reqs = append(reqs, lock.Req{Res: nodeRes(a), Mode: m, Short: short})
		}
		return lockBatch(c, reqs)
	}
	for i, a := range anc {
		m := p.ix
		if i == len(anc)-1 {
			m = p.cx
		}
		if err := p.lockNode(c, a, m, short); err != nil {
			return err
		}
	}
	return nil
}

// readPath protects the ancestor path of a read with IR locks, as one
// batch: IR requests never trigger fan-out conversions (Figure 4 converts
// IR into any held mode without child materialization), so the probe in
// lockNode is unnecessary for every variant.
func (p *tadomProto) readPath(c *Ctx, target splid.ID, short bool) error {
	anc := target.Ancestors()
	reqs := c.reqBuf(len(anc))
	for _, a := range anc {
		reqs = append(reqs, lock.Req{Res: nodeRes(a), Mode: p.ir, Short: short})
	}
	return lockBatch(c, reqs)
}

// ReadNode implements Protocol: NR on the node (SR on the lock-depth
// ancestor) plus IR on the ancestor path — Figure 3b's T1/T2 pattern.
func (p *tadomProto) ReadNode(c *Ctx, id splid.ID, acc Access) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, sub := depthTarget(c, id)
	if err := p.readPath(c, tgt, short); err != nil {
		return err
	}
	m := p.nr
	if sub {
		m = p.sr
	}
	return p.lockNode(c, tgt, m, short)
}

// WriteNode implements Protocol: SX on the text/attribute node (covering
// its string child), CX on the parent, IX above.
func (p *tadomProto) WriteNode(c *Ctx, id splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	tgt, _ := depthTarget(c, id)
	if err := p.writePath(c, tgt, false); err != nil {
		return err
	}
	return p.lockNode(c, tgt, p.sx, false)
}

// ReadLevel implements Protocol: a single LR lock on the parent covers the
// node and all direct children — getChildNodes and getAttributes need no
// per-child requests (Section 2.3).
func (p *tadomProto) ReadLevel(c *Ctx, parent splid.ID, children []splid.ID) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, sub := depthTarget(c, parent)
	if err := p.readPath(c, tgt, short); err != nil {
		return err
	}
	m := p.lr
	if sub {
		m = p.sr
	}
	return p.lockNode(c, tgt, m, short)
}

// ReadTree implements Protocol: SR on the subtree root, IR on the path.
func (p *tadomProto) ReadTree(c *Ctx, id splid.ID, acc Access) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, _ := depthTarget(c, id)
	if err := p.readPath(c, tgt, short); err != nil {
		return err
	}
	return p.lockNode(c, tgt, p.sr, short)
}

// Insert implements Protocol: SX on the new slot, CX on the parent, IX
// above, and exclusive edge locks on the redirected navigation edges.
func (p *tadomProto) Insert(c *Ctx, parent, newID, left, right splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	tgt, sub := depthTarget(c, newID)
	if err := p.writePath(c, tgt, false); err != nil {
		return err
	}
	if err := p.lockNode(c, tgt, p.sx, false); err != nil {
		return err
	}
	if sub {
		return nil
	}
	return p.writeBoundaryEdges(c, parent, left, right)
}

// DeleteTree implements Protocol: SX on the subtree root (T2conv in Figure
// 3b), CX on the parent, IX above, plus boundary edge locks.
func (p *tadomProto) DeleteTree(c *Ctx, id, left, right splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	tgt, sub := depthTarget(c, id)
	if err := p.writePath(c, tgt, false); err != nil {
		return err
	}
	if err := p.lockNode(c, tgt, p.sx, false); err != nil {
		return err
	}
	if sub {
		return nil
	}
	return p.writeBoundaryEdges(c, id.Parent(), left, right)
}

// Rename implements Protocol. taDOM3 and taDOM3+ lock only the node (NX);
// taDOM2 and taDOM2+ lack node-exclusive modes and must take the subtree
// lock — the difference Figure 10d measures on TArenameTopic.
func (p *tadomProto) Rename(c *Ctx, id splid.ID) error {
	if writePlan(c.Txn) {
		return nil
	}
	tgt, sub := depthTarget(c, id)
	if err := p.writePath(c, tgt, false); err != nil {
		return err
	}
	m := p.sx
	if p.nx != lock.ModeNone && !sub {
		m = p.nx
	}
	return p.lockNode(c, tgt, m, false)
}

// ReadEdge implements Protocol: shared edge lock, skipped below lock depth.
func (p *tadomProto) ReadEdge(c *Ctx, id splid.ID, e Edge) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	if c.Depth >= 0 && level0(id) > c.Depth {
		return nil
	}
	return lockOne(c, edgeRes(id, e), p.es, short)
}

func (p *tadomProto) writeBoundaryEdges(c *Ctx, parent, left, right splid.ID) error {
	if c.Depth >= 0 && level0(parent) >= c.Depth {
		return nil
	}
	if left.IsNull() {
		if err := lockOne(c, edgeRes(parent, EdgeFirstChild), p.ex, false); err != nil {
			return err
		}
	} else {
		if err := lockOne(c, edgeRes(left, EdgeNextSibling), p.ex, false); err != nil {
			return err
		}
	}
	if right.IsNull() {
		return lockOne(c, edgeRes(parent, EdgeLastChild), p.ex, false)
	}
	return lockOne(c, edgeRes(right, EdgePrevSibling), p.ex, false)
}

// taDOM2Figure3a and taDOM2Figure4 are the paper's matrices verbatim; a test
// asserts the generated taDOM2 table matches them cell for cell.
const taDOM2Figure3a = `
    IR NR LR SR IX CX SU SX
IR  +  +  +  +  +  +  -  -
NR  +  +  +  +  +  +  -  -
LR  +  +  +  +  +  -  -  -
SR  +  +  +  +  -  -  -  -
IX  +  +  +  -  +  +  -  -
CX  +  +  -  -  +  +  -  -
SU  +  +  +  +  -  -  -  -
SX  -  -  -  -  -  -  -  -`

const taDOM2Figure4 = `
    IR NR LR SR IX CX SU SX
IR  IR NR LR SR IX CX SU SX
NR  NR NR LR SR IX CX SU SX
LR  LR LR LR SR IX CX SU SX
SR  SR SR SR SR IX CX SR SX
IX  IX IX IX IX IX CX SX SX
CX  CX CX CX CX CX CX SX SX
SU  SU SU SU SU SX SX SU SX
SX  SX SX SX SX SX SX SX SX`

// UpdateTree implements Protocol: SU on the subtree root (IR path). The
// update mode admits concurrent readers but serializes intending writers,
// so the later conversion to SX cannot deadlock symmetrically.
func (p *tadomProto) UpdateTree(c *Ctx, id splid.ID, acc Access) error {
	skip, short := readPlan(c.Txn)
	if skip {
		return nil
	}
	tgt, _ := depthTarget(c, id)
	if err := p.readPath(c, tgt, short); err != nil {
		return err
	}
	return p.lockNode(c, tgt, p.su, short)
}
