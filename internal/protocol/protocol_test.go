package protocol

import (
	"strings"
	"testing"

	"repro/internal/lock"
	"repro/internal/splid"
	"repro/internal/tx"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"Node2PL", "NO2PL", "OO2PL", "Node2PLa",
		"IRX", "IRIX", "URIX",
		"taDOM2", "taDOM2+", "taDOM3", "taDOM3+",
		"snapshot",
	}
	got := Names()
	if len(got) != 12 {
		t.Fatalf("registered %d protocols: %v", len(got), got)
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("protocol %d = %s, want %s", i, got[i], name)
		}
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown protocol should error")
	}
}

func TestGroups(t *testing.T) {
	groups := map[string]string{
		"Node2PL": "*-2PL", "NO2PL": "*-2PL", "OO2PL": "*-2PL", "Node2PLa": "*-2PL",
		"IRX": "MGL*", "IRIX": "MGL*", "URIX": "MGL*",
		"taDOM2": "taDOM*", "taDOM2+": "taDOM*", "taDOM3": "taDOM*", "taDOM3+": "taDOM*",
	}
	depth := map[string]bool{
		"Node2PL": false, "NO2PL": false, "OO2PL": false, "Node2PLa": true,
		"IRX": true, "IRIX": true, "URIX": true,
		"taDOM2": true, "taDOM2+": true, "taDOM3": true, "taDOM3+": true,
	}
	for name, g := range groups {
		p, _ := ByName(name)
		if p.Group() != g {
			t.Errorf("%s group = %s, want %s", name, p.Group(), g)
		}
		if p.DepthAware() != depth[name] {
			t.Errorf("%s DepthAware = %v", name, p.DepthAware())
		}
	}
}

// TestTaDOM2MatchesPaperFigures verifies the generated taDOM2 table against
// the verbatim matrices of Figures 3a and 4.
func TestTaDOM2MatchesPaperFigures(t *testing.T) {
	p := TaDOM2.(*tadomProto)
	header, compatRows := parseMatrix(taDOM2Figure3a)
	for _, row := range compatRows {
		held := p.idx[row[0]]
		for c, cell := range row[1:] {
			req := p.idx[header[c]]
			want := cell == "+"
			if got := p.table.Compatible(held, req); got != want {
				t.Errorf("compat(%s, %s) = %v, Figure 3a says %v", row[0], header[c], got, want)
			}
		}
	}
	_, convRows := parseMatrix(taDOM2Figure4)
	for _, row := range convRows {
		held := p.idx[row[0]]
		for c, cell := range row[1:] {
			req := p.idx[header[c]]
			want := p.idx[cell]
			if got := p.table.Convert(held, req); got != want {
				t.Errorf("convert(%s, %s) = %s, Figure 4 says %s",
					row[0], header[c], p.table.Name(got), cell)
			}
		}
	}
}

// TestTableInvariants checks the structural properties every protocol's
// matrices must satisfy.
func TestTableInvariants(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			tab := p.Table().(*lock.Table)
			n := tab.NumModes()
			for a := lock.Mode(1); int(a) < n; a++ {
				// Conversion is reflexive and never weakens below either input.
				if tab.Convert(a, a) != a {
					t.Errorf("Convert(%s,%s) != %s", tab.Name(a), tab.Name(a), tab.Name(a))
				}
				for b := lock.Mode(1); int(b) < n; b++ {
					c := tab.Convert(a, b)
					if c == lock.ModeNone {
						t.Fatalf("Convert(%s,%s) = none", tab.Name(a), tab.Name(b))
					}
					// taDOM2/taDOM3 fan-out conversions (Figure 4's IX_NR,
					// CX_NR, IX_SR, CX_SR) intentionally weaken the node
					// lock: the lost coverage is rebuilt as explicit child
					// locks by the protocol layer, which this table-level
					// check cannot see.
					if isFanoutCell(p.Name(), tab, a, b) {
						continue
					}
					// The converted mode must be at least as restrictive as
					// both inputs: whatever conflicts with a or b must
					// conflict with c.
					for x := lock.Mode(1); int(x) < n; x++ {
						if !tab.Compatible(a, x) && tab.Compatible(c, x) &&
							sameNamespace(tab, a, b, x) {
							t.Errorf("%s absorbs %s but Convert=%s re-admits %s",
								tab.Name(a), tab.Name(b), tab.Name(c), tab.Name(x))
						}
						if !tab.Compatible(b, x) && tab.Compatible(c, x) &&
							sameNamespace(tab, a, b, x) {
							t.Errorf("request %s on held %s: Convert=%s re-admits %s",
								tab.Name(b), tab.Name(a), tab.Name(c), tab.Name(x))
						}
					}
				}
			}
		})
	}
}

// isFanoutCell reports whether (held, req) is one of the subscripted
// conversion cells of the non-plus taDOM protocols, where the table result
// is deliberately weaker and the protocol layer compensates with child
// locks.
func isFanoutCell(proto string, tab *lock.Table, a, b lock.Mode) bool {
	if proto != "taDOM2" && proto != "taDOM3" {
		return false
	}
	an, bn := tab.Name(a), tab.Name(b)
	levelOrSub := func(s string) bool { return s == "LR" || s == "SR" }
	intent := func(s string) bool { return s == "IX" || s == "CX" }
	return levelOrSub(an) && intent(bn) || intent(an) && levelOrSub(bn)
}

// sameNamespace filters the cross-namespace placeholder cells of the *-2PL
// tables (structure/content/ID locks live on disjoint resources, so their
// cross conversions are never consulted).
func sameNamespace(tab *lock.Table, ms ...lock.Mode) bool {
	space := func(m lock.Mode) int {
		name := tab.Name(m)
		switch {
		case name == "T" || name == "M":
			return 1
		case name == "CS" || name == "CX":
			return 2
		case strings.HasPrefix(name, "ID"):
			return 3
		case strings.HasPrefix(name, "E") && len(name) == 2:
			return 4
		default:
			return 0
		}
	}
	s := space(ms[0])
	for _, m := range ms[1:] {
		if space(m) != s {
			return false
		}
	}
	return true
}

// TestExclusiveModesConflictWithEverything: each protocol's strongest mode
// admits nothing within its namespace.
func TestExclusiveModesConflictWithEverything(t *testing.T) {
	cases := map[string]string{
		"IRX": "X", "IRIX": "X", "URIX": "X", "Node2PLa": "X",
		"taDOM2": "SX", "taDOM2+": "SX", "taDOM3": "SX", "taDOM3+": "SX",
	}
	for name, xname := range cases {
		p, _ := ByName(name)
		tab := p.Table().(*lock.Table)
		var x lock.Mode
		for m := lock.Mode(1); int(m) < tab.NumModes(); m++ {
			if tab.Name(m) == xname {
				x = m
			}
		}
		if x == lock.ModeNone {
			t.Fatalf("%s: mode %s not found", name, xname)
		}
		for m := lock.Mode(1); int(m) < tab.NumModes(); m++ {
			if strings.HasPrefix(tab.Name(m), "E") && len(tab.Name(m)) == 2 {
				continue // edge namespace
			}
			if tab.Compatible(x, m) || tab.Compatible(m, x) {
				t.Errorf("%s: %s compatible with %s", name, xname, tab.Name(m))
			}
		}
	}
}

// fakeTree is a TreeAccess over a static structure description.
type fakeTree struct {
	children map[string][]string
	idOwners map[string][]string
	subtrees map[string][]string
}

func (f *fakeTree) Children(id splid.ID) ([]splid.ID, error) {
	return parseAll(f.children[id.String()]), nil
}
func (f *fakeTree) ElementsWithIDAttribute(id splid.ID) ([]splid.ID, error) {
	return parseAll(f.idOwners[id.String()]), nil
}
func (f *fakeTree) SubtreeNodes(id splid.ID) ([]splid.ID, error) {
	if ss, ok := f.subtrees[id.String()]; ok {
		return parseAll(ss), nil
	}
	return []splid.ID{id}, nil // leaf subtree: just the node itself
}
func parseAll(ss []string) []splid.ID {
	out := make([]splid.ID, len(ss))
	for i, s := range ss {
		out[i] = splid.MustParse(s)
	}
	return out
}

// harness builds a lock manager + two transactions for one protocol.
type harness struct {
	p    Protocol
	lm   *lock.Manager
	tm   *tx.Manager
	tree *fakeTree
}

func newHarness(t *testing.T, name string) *harness {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	lm := lock.NewManager(p.Table(), lock.Options{Timeout: 200 * 1e6}) // 200ms
	return &harness{
		p:  p,
		lm: lm,
		tm: tx.NewManager(lm),
		tree: &fakeTree{
			children: map[string][]string{
				"1.3.3": {"1.3.3.3", "1.3.3.5", "1.3.3.7"},
			},
			idOwners: map[string][]string{
				"1.3.3": {"1.3.3", "1.3.3.5"},
			},
			subtrees: map[string][]string{
				"1.3.3": {"1.3.3", "1.3.3.3", "1.3.3.5", "1.3.3.7"},
			},
		},
	}
}

func (h *harness) ctx(t *tx.Txn, depth int) *Ctx {
	return &Ctx{LM: h.lm, Txn: t, Depth: depth, Tree: h.tree}
}

// canBoth reports whether op2 under t2 succeeds after op1 under t1 (blocked
// requests fail via the 200ms timeout).
func (h *harness) canBoth(op1, op2 func(*Ctx) error) (bool, error) {
	t1 := h.tm.Begin(tx.LevelRepeatable)
	t2 := h.tm.Begin(tx.LevelRepeatable)
	defer t1.Abort()
	defer t2.Abort()
	if err := op1(h.ctx(t1, -1)); err != nil {
		return false, err
	}
	err := op2(h.ctx(t2, -1))
	if err == lock.ErrLockTimeout || err == lock.ErrDeadlockVictim {
		return false, nil
	}
	return err == nil, err
}

func TestReadersShareEverywhere(t *testing.T) {
	node := splid.MustParse("1.3.3.5")
	for _, name := range Names() {
		h := newHarness(t, name)
		ok, err := h.canBoth(
			func(c *Ctx) error { return h.p.ReadNode(c, node, Navigate) },
			func(c *Ctx) error { return h.p.ReadNode(c, node, Navigate) },
		)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		} else if !ok {
			t.Errorf("%s: concurrent readers of the same node blocked", name)
		}
	}
}

func TestWriterExcludesReaderOfSameNode(t *testing.T) {
	// A content write and a fragment read of the same node must conflict
	// under every protocol at repeatable-read isolation.
	node := splid.MustParse("1.3.3.5")
	for _, name := range Names() {
		h := newHarness(t, name)
		ok, err := h.canBoth(
			func(c *Ctx) error { return h.p.WriteNode(c, node) },
			func(c *Ctx) error { return h.p.ReadTree(c, node, Navigate) },
		)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		} else if ok {
			t.Errorf("%s: fragment read succeeded despite concurrent content write", name)
		}
	}
}

func TestSubtreeDeleteExcludesInnerReader(t *testing.T) {
	// T1 reads a node inside the subtree; T2 deletes the subtree: conflict.
	sub := splid.MustParse("1.3.3")
	inner := splid.MustParse("1.3.3.5")
	for _, name := range Names() {
		h := newHarness(t, name)
		ok, err := h.canBoth(
			func(c *Ctx) error { return h.p.ReadTree(c, inner, Navigate) },
			func(c *Ctx) error {
				return h.p.DeleteTree(c, sub, splid.Null, splid.MustParse("1.3.5"))
			},
		)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		} else if ok {
			t.Errorf("%s: subtree delete succeeded under an inner fragment reader", name)
		}
	}
}

func TestJumpReaderBlocksDelete(t *testing.T) {
	// T1 jumps to an element inside the subtree (index access), T2 deletes
	// the subtree. Every protocol must detect the conflict — the *-2PL
	// group via the IDX scan, the others via the intention path.
	sub := splid.MustParse("1.3.3")
	inner := splid.MustParse("1.3.3.5") // owns an ID attribute in fakeTree
	for _, name := range Names() {
		h := newHarness(t, name)
		ok, err := h.canBoth(
			func(c *Ctx) error { return h.p.ReadTree(c, inner, Jump) },
			func(c *Ctx) error {
				return h.p.DeleteTree(c, sub, splid.Null, splid.MustParse("1.3.5"))
			},
		)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		} else if ok {
			t.Errorf("%s: delete ignored a jumped-in reader", name)
		}
	}
}

func TestDisjointSubtreesDontConflict(t *testing.T) {
	// A reader in one book and a writer in another must not block in the
	// fine-granular protocols (the *-2PL parent-locking variants may be
	// coarser; Node2PL blocks same-level but not disjoint-parent nodes).
	readT := splid.MustParse("1.3.3.3.3")  // inside book 1 (parent 1.3.3.3)
	writeT := splid.MustParse("1.3.5.3.3") // inside book 2
	for _, name := range Names() {
		h := newHarness(t, name)
		ok, err := h.canBoth(
			func(c *Ctx) error { return h.p.ReadNode(c, readT, Navigate) },
			func(c *Ctx) error { return h.p.WriteNode(c, writeT) },
		)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		} else if !ok {
			t.Errorf("%s: operations in disjoint subtrees blocked each other", name)
		}
	}
}

func TestLockDepthCoarsens(t *testing.T) {
	// At depth 0 every protocol that honors depth degenerates to document
	// locks: a reader and a writer anywhere in the tree conflict.
	readT := splid.MustParse("1.3.3.3.3")
	writeT := splid.MustParse("1.5.3.3")
	for _, name := range Names() {
		p, _ := ByName(name)
		if !p.DepthAware() {
			continue
		}
		h := newHarness(t, name)
		t1 := h.tm.Begin(tx.LevelRepeatable)
		t2 := h.tm.Begin(tx.LevelRepeatable)
		if err := h.p.ReadTree(h.ctx(t1, 0), readT, Navigate); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		err := h.p.WriteNode(h.ctx(t2, 0), writeT)
		if err != lock.ErrLockTimeout && err != lock.ErrDeadlockVictim {
			t.Errorf("%s: depth 0 should force a document-level conflict, got %v", name, err)
		}
		t1.Abort()
		t2.Abort()
	}
}

func TestTaDOM3RenameOnlyLocksNode(t *testing.T) {
	// taDOM3/3+ rename a node while another transaction reads deeper inside
	// it (IR path); taDOM2/2+ and the MGL protocols cannot.
	topic := splid.MustParse("1.3.3")
	deep := splid.MustParse("1.3.3.5.3")
	expectOK := map[string]bool{
		"taDOM3": true, "taDOM3+": true,
		"taDOM2": false, "taDOM2+": false,
		"IRX": false, "IRIX": false, "URIX": false, "Node2PLa": false,
	}
	for name, want := range expectOK {
		h := newHarness(t, name)
		ok, err := h.canBoth(
			func(c *Ctx) error { return h.p.ReadNode(c, deep, Navigate) },
			func(c *Ctx) error { return h.p.Rename(c, topic) },
		)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if ok != want {
			t.Errorf("%s: rename under deep reader = %v, want %v", name, ok, want)
		}
	}
}

func TestTaDOM2FanoutConversion(t *testing.T) {
	// The LR -> CX conversion of taDOM2 must leave NR locks on every direct
	// child (rule CX_NR of Figure 4); taDOM2+ instead converts to the
	// combined LRCX mode without touching the children.
	parent := splid.MustParse("1.3.3")
	children := []splid.ID{
		splid.MustParse("1.3.3.3"), splid.MustParse("1.3.3.5"), splid.MustParse("1.3.3.7"),
	}

	h2 := newHarness(t, "taDOM2")
	t1 := h2.tm.Begin(tx.LevelRepeatable)
	c := h2.ctx(t1, -1)
	if err := h2.p.ReadLevel(c, parent, children); err != nil {
		t.Fatal(err)
	}
	// Delete one child: CX on parent triggers the fan-out.
	if err := h2.p.DeleteTree(c, children[1], children[0], children[2]); err != nil {
		t.Fatal(err)
	}
	td2 := h2.p.(*tadomProto)
	for i, ch := range children {
		got := h2.lm.HeldMode(t1.LockTx(), nodeRes(ch))
		if i == 1 {
			if got != td2.sx {
				t.Errorf("deleted child holds %s, want SX", h2.p.Table().Name(got))
			}
		} else if got != td2.nr {
			t.Errorf("child %d holds %s, want NR after fan-out", i, h2.p.Table().Name(got))
		}
	}
	if got := h2.lm.HeldMode(t1.LockTx(), nodeRes(parent)); got != td2.cx {
		t.Errorf("parent holds %s, want CX", h2.p.Table().Name(got))
	}
	t1.Abort()

	h2p := newHarness(t, "taDOM2+")
	t2 := h2p.tm.Begin(tx.LevelRepeatable)
	c2 := h2p.ctx(t2, -1)
	if err := h2p.p.ReadLevel(c2, parent, children); err != nil {
		t.Fatal(err)
	}
	if err := h2p.p.DeleteTree(c2, children[1], children[0], children[2]); err != nil {
		t.Fatal(err)
	}
	td2p := h2p.p.(*tadomProto)
	if got := h2p.lm.HeldMode(t2.LockTx(), nodeRes(parent)); h2p.p.Table().Name(got) != "LRCX" {
		t.Errorf("taDOM2+ parent holds %s, want LRCX", h2p.p.Table().Name(got))
	}
	for i, ch := range children {
		if i == 1 {
			continue
		}
		if got := h2p.lm.HeldMode(t2.LockTx(), nodeRes(ch)); got != lock.ModeNone {
			t.Errorf("taDOM2+ fan-out lock %s on child %d (should be none)",
				h2p.p.Table().Name(got), i)
		}
	}
	_ = td2p
	t2.Abort()
}

func TestIsolationLevelsControlLocking(t *testing.T) {
	node := splid.MustParse("1.3.3.5")
	for _, name := range Names() {
		h := newHarness(t, name)
		// Level none: no locks at all.
		t0 := h.tm.Begin(tx.LevelNone)
		if err := h.p.WriteNode(h.ctx(t0, -1), node); err != nil {
			t.Errorf("%s/none: %v", name, err)
		}
		t0.Commit()

		// Uncommitted: reads lock nothing.
		t1 := h.tm.Begin(tx.LevelUncommitted)
		if err := h.p.ReadTree(h.ctx(t1, -1), node, Navigate); err != nil {
			t.Errorf("%s/uncommitted: %v", name, err)
		}
		if n := h.lm.HeldCount(t1.LockTx()); n != 0 {
			t.Errorf("%s/uncommitted read acquired %d locks", name, n)
		}
		t1.Commit()

		// Committed: read locks released at operation end.
		t2 := h.tm.Begin(tx.LevelCommitted)
		if err := h.p.ReadTree(h.ctx(t2, -1), node, Navigate); err != nil {
			t.Errorf("%s/committed: %v", name, err)
		}
		t2.EndOperation()
		if n := h.lm.HeldCount(t2.LockTx()); n != 0 {
			t.Errorf("%s/committed kept %d locks after EndOperation", name, n)
		}
		t2.Commit()

		// Repeatable: read locks survive until commit.
		t3 := h.tm.Begin(tx.LevelRepeatable)
		if err := h.p.ReadNode(h.ctx(t3, -1), node, Navigate); err != nil {
			t.Errorf("%s/repeatable: %v", name, err)
		}
		t3.EndOperation()
		if n := h.lm.HeldCount(t3.LockTx()); n == 0 {
			t.Errorf("%s/repeatable dropped read locks at operation end", name)
		}
		t3.Commit()
	}
}

func TestEdgeLockConflicts(t *testing.T) {
	// Protocols with edge locks: reading a sibling edge conflicts with an
	// insert that redirects it.
	parent := splid.MustParse("1.3.3")
	left := splid.MustParse("1.3.3.3")
	right := splid.MustParse("1.3.3.5")
	newID := splid.MustParse("1.3.3.4.3")
	for _, name := range []string{"OO2PL", "IRX", "IRIX", "URIX", "taDOM2", "taDOM2+", "taDOM3", "taDOM3+"} {
		h := newHarness(t, name)
		ok, err := h.canBoth(
			func(c *Ctx) error { return h.p.ReadEdge(c, left, EdgeNextSibling) },
			func(c *Ctx) error { return h.p.Insert(c, parent, newID, left, right) },
		)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		} else if ok {
			t.Errorf("%s: insert ignored a traversed edge", name)
		}
	}
}

func TestCombinedModesReachable(t *testing.T) {
	// taDOM3+: NR + IX converts to the combined NRIX mode (keeping the node
	// read explicit), LR + CX to LRCX, SR + IX to SRIX.
	h := newHarness(t, "taDOM3+")
	p := h.p.(*tadomProto)
	parent := splid.MustParse("1.3.3")
	children := []splid.ID{splid.MustParse("1.3.3.3"), splid.MustParse("1.3.3.5"), splid.MustParse("1.3.3.7")}

	t1 := h.tm.Begin(tx.LevelRepeatable)
	c := h.ctx(t1, -1)
	// NR on the book node (jump), then a write deeper inside: the path IX on
	// the book meets the held NR.
	if err := h.p.ReadNode(c, parent, Jump); err != nil {
		t.Fatal(err)
	}
	if err := h.p.WriteNode(c, splid.MustParse("1.3.3.5.3")); err != nil {
		t.Fatal(err)
	}
	if got := h.p.Table().Name(h.lm.HeldMode(t1.LockTx(), nodeRes(parent))); got != "NRIX" {
		t.Errorf("book holds %s, want NRIX", got)
	}
	t1.Abort()

	// LR then a child delete: LRCX.
	t2 := h.tm.Begin(tx.LevelRepeatable)
	c2 := h.ctx(t2, -1)
	if err := h.p.ReadLevel(c2, parent, children); err != nil {
		t.Fatal(err)
	}
	if err := h.p.DeleteTree(c2, children[1], children[0], children[2]); err != nil {
		t.Fatal(err)
	}
	if got := h.p.Table().Name(h.lm.HeldMode(t2.LockTx(), nodeRes(parent))); got != "LRCX" {
		t.Errorf("parent holds %s, want LRCX", got)
	}
	t2.Abort()

	// SR then a write inside the fragment: SRIX on the fragment root.
	t3 := h.tm.Begin(tx.LevelRepeatable)
	c3 := h.ctx(t3, -1)
	if err := h.p.ReadTree(c3, parent, Navigate); err != nil {
		t.Fatal(err)
	}
	if err := h.p.WriteNode(c3, splid.MustParse("1.3.3.5.3")); err != nil {
		t.Fatal(err)
	}
	got := h.p.Table().Name(h.lm.HeldMode(t3.LockTx(), nodeRes(parent)))
	if got != "SRIX" && got != "SRCX" {
		t.Errorf("fragment root holds %s, want SRIX/SRCX", got)
	}
	t3.Abort()
	_ = p
}

func TestUpdateModeReachable(t *testing.T) {
	// UpdateTree materializes the protocols' update modes: SU for taDOM,
	// U for URIX and Node2PLa; IRX/IRIX fall back to subtree reads.
	sub := splid.MustParse("1.3.3")
	expect := map[string]string{
		"taDOM2": "SU", "taDOM2+": "SU", "taDOM3": "SU", "taDOM3+": "SU",
		"URIX": "U", "IRIX": "R", "IRX": "R",
	}
	for name, want := range expect {
		h := newHarness(t, name)
		t1 := h.tm.Begin(tx.LevelRepeatable)
		if err := h.p.UpdateTree(h.ctx(t1, -1), sub, Navigate); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := h.p.Table().Name(h.lm.HeldMode(t1.LockTx(), nodeRes(sub))); got != want {
			t.Errorf("%s: holds %s, want %s", name, got, want)
		}
		t1.Abort()
	}
	// Node2PLa anchors the U on the parent.
	h := newHarness(t, "Node2PLa")
	t1 := h.tm.Begin(tx.LevelRepeatable)
	if err := h.p.UpdateTree(h.ctx(t1, -1), sub, Navigate); err != nil {
		t.Fatal(err)
	}
	if got := h.p.Table().Name(h.lm.HeldMode(t1.LockTx(), nodeRes(splid.MustParse("1.3")))); got != "U" {
		t.Errorf("Node2PLa parent holds %s, want U", got)
	}
	t1.Abort()

	// Two concurrent update intents on the same subtree serialize (that is
	// the whole point of the mode).
	h2 := newHarness(t, "taDOM3+")
	ok, err := h2.canBoth(
		func(c *Ctx) error { return h2.p.UpdateTree(c, sub, Navigate) },
		func(c *Ctx) error { return h2.p.UpdateTree(c, sub, Navigate) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("two SU holders on one subtree must conflict")
	}
	// But an update intent admits plain readers.
	ok, err = h2.canBoth(
		func(c *Ctx) error { return h2.p.UpdateTree(c, sub, Navigate) },
		func(c *Ctx) error { return h2.p.ReadTree(c, sub, Navigate) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("a held SU must admit subtree readers")
	}
}
