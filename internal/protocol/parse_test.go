package protocol

import (
	"strings"
	"testing"
)

func TestParseTable(t *testing.T) {
	cases := []struct {
		in   string
		want string // expected protocol name; "" = error expected
	}{
		// Exact registry names.
		{"taDOM3+", "taDOM3+"},
		{"Node2PL", "Node2PL"},
		{"IRIX", "IRIX"},
		// Case-insensitive.
		{"tadom3+", "taDOM3+"},
		{"TADOM2", "taDOM2"},
		{"urix", "URIX"},
		{"no2pl", "NO2PL"},
		// Hyphenated *-2PL spellings.
		{"Node-2PL", "Node2PL"},
		{"node-2pla", "Node2PLa"},
		{"OO-2PL", "OO2PL"},
		// The + is significant.
		{"taDOM2+", "taDOM2+"},
		{"tadom3", "taDOM3"},
		// Errors.
		{"taDOM4", ""},
		{"", ""},
		{"2PL", ""},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("Parse(%q): expected error, got %s", c.in, p.Name())
			} else if !strings.Contains(err.Error(), "known:") {
				t.Errorf("Parse(%q): error should list known protocols: %v", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if p.Name() != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.in, p.Name(), c.want)
		}
	}
}

func TestParseListTable(t *testing.T) {
	cases := []struct {
		in   string
		want []string // expected names in order; nil = error expected
	}{
		{"all", Names()},
		{"ALL", Names()},
		{"taDOM3+", []string{"taDOM3+"}},
		{"taDOM3+,URIX", []string{"taDOM3+", "URIX"}},
		{" tadom2 , irix ", []string{"taDOM2", "IRIX"}},
		// Group selectors expand in presentation order.
		{"MGL*", []string{"IRX", "IRIX", "URIX"}},
		{"mgl", []string{"IRX", "IRIX", "URIX"}},
		{"*-2PL", []string{"Node2PL", "NO2PL", "OO2PL", "Node2PLa"}},
		{"taDOM*", []string{"taDOM2", "taDOM2+", "taDOM3", "taDOM3+"}},
		// Duplicates collapse, first occurrence wins.
		{"URIX,mgl*", []string{"URIX", "IRX", "IRIX"}},
		{"taDOM3+,taDOM3+", []string{"taDOM3+"}},
		// Errors.
		{"", nil},
		{",,", nil},
		{"taDOM3+,bogus", nil},
	}
	for _, c := range cases {
		ps, err := ParseList(c.in)
		if c.want == nil {
			if err == nil {
				t.Errorf("ParseList(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseList(%q): %v", c.in, err)
			continue
		}
		got := make([]string, len(ps))
		for i, p := range ps {
			got[i] = p.Name()
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseList(%q)[%d] = %s, want %s", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestGroupsAndHelp(t *testing.T) {
	gs := Groups()
	if len(gs) != 4 {
		t.Fatalf("Groups() = %v", gs)
	}
	help := NamesHelp()
	for _, name := range []string{"taDOM3+", "Node2PL", "MGL*", "all"} {
		if !strings.Contains(help, name) {
			t.Errorf("NamesHelp() missing %q: %s", name, help)
		}
	}
}
