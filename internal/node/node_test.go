package node

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/pagestore"
	"repro/internal/protocol"
	"repro/internal/splid"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/xmlmodel"
)

// newLibrary builds the small Figure 5-style document under one protocol.
func newLibrary(t testing.TB, protoName string, depth int) *Manager {
	t.Helper()
	d, err := storage.Create(pagestore.NewMemBackend(), "bib", storage.Options{Dist: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	b := d.NewBuilder()
	b.StartElement("topics")
	for ti := 0; ti < 2; ti++ {
		b.StartElement("topic").Attribute("id", fmt.Sprintf("t-%d", ti))
		for bi := 0; bi < 3; bi++ {
			b.StartElement("book").Attribute("id", fmt.Sprintf("b-%d-%d", ti, bi)).
				Element("title", fmt.Sprintf("book %d.%d", ti, bi)).
				Element("author", "haustein").
				Element("price", "42").
				StartElement("history").
				StartElement("lend").Attribute("person", "p-1").EndElement().
				EndElement().
				EndElement()
		}
		b.EndElement()
	}
	b.EndElement()
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	p, err := protocol.ByName(protoName)
	if err != nil {
		t.Fatal(err)
	}
	return New(d, p, Options{Depth: depth, LockTimeout: 500 * time.Millisecond})
}

func TestNavigationUnderAllProtocols(t *testing.T) {
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := newLibrary(t, name, -1)
			txn := m.Begin(tx.LevelRepeatable)
			defer txn.Commit()

			topics, err := m.FirstChild(txn, m.Document().Root())
			if err != nil {
				t.Fatal(err)
			}
			if m.Document().Vocabulary().Name(topics.Name) != "topics" {
				t.Fatalf("FirstChild(root) = %v", topics)
			}
			topic, err := m.FirstChild(txn, topics.ID)
			if err != nil {
				t.Fatal(err)
			}
			next, err := m.NextSibling(txn, topic.ID)
			if err != nil {
				t.Fatal(err)
			}
			if next.ID.IsNull() {
				t.Fatal("expected second topic")
			}
			back, err := m.PrevSibling(txn, next.ID)
			if err != nil || !back.ID.Equal(topic.ID) {
				t.Fatalf("PrevSibling = %v, %v", back, err)
			}
			par, err := m.Parent(txn, topic.ID)
			if err != nil || !par.ID.Equal(topics.ID) {
				t.Fatalf("Parent = %v, %v", par, err)
			}
			kids, err := m.GetChildren(txn, topic.ID)
			if err != nil || len(kids) != 3 {
				t.Fatalf("GetChildren = %d, %v", len(kids), err)
			}
			book, err := m.JumpToID(txn, "b-0-1")
			if err != nil {
				t.Fatal(err)
			}
			attrs, err := m.GetAttributes(txn, book.ID)
			if err != nil || len(attrs) != 1 {
				t.Fatalf("GetAttributes = %d, %v", len(attrs), err)
			}
			v, err := m.AttributeValue(txn, book.ID, "id")
			if err != nil || string(v) != "b-0-1" {
				t.Fatalf("AttributeValue = %q, %v", v, err)
			}
			frag, err := m.ReadFragment(txn, book.ID, false)
			if err != nil || len(frag) < 8 {
				t.Fatalf("ReadFragment = %d nodes, %v", len(frag), err)
			}
		})
	}
}

func TestUpdateAndCommit(t *testing.T) {
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := newLibrary(t, name, -1)
			txn := m.Begin(tx.LevelRepeatable)
			book, err := m.JumpToID(txn, "b-0-0")
			if err != nil {
				t.Fatal(err)
			}
			title, err := m.FirstChild(txn, book.ID)
			if err != nil {
				t.Fatal(err)
			}
			text, err := m.FirstChild(txn, title.ID)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.SetValue(txn, text.ID, []byte("updated")); err != nil {
				t.Fatal(err)
			}
			if err := txn.Commit(); err != nil {
				t.Fatal(err)
			}
			v, _ := m.Document().Value(text.ID)
			if string(v) != "updated" {
				t.Errorf("value after commit = %q", v)
			}
		})
	}
}

func TestAbortUndoesEverything(t *testing.T) {
	m := newLibrary(t, "taDOM3+", -1)
	doc := m.Document()
	sizeBefore := doc.Size()

	txn := m.Begin(tx.LevelRepeatable)
	book, err := m.JumpToID(txn, "b-0-0")
	if err != nil {
		t.Fatal(err)
	}
	// Content update.
	title, _ := m.FirstChild(txn, book.ID)
	text, _ := m.FirstChild(txn, title.ID)
	if err := m.SetValue(txn, text.ID, []byte("scratch")); err != nil {
		t.Fatal(err)
	}
	// Rename.
	if err := m.Rename(txn, book.ID, "tome"); err != nil {
		t.Fatal(err)
	}
	// Structural insert.
	hist, err := m.LastChild(txn, book.ID)
	if err != nil {
		t.Fatal(err)
	}
	lend, err := m.AppendElement(txn, hist.ID, "lend")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetAttribute(txn, lend.ID, "person", []byte("p-9")); err != nil {
		t.Fatal(err)
	}
	// Subtree delete of another book.
	other, err := m.Document().ElementByID([]byte("b-1-2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteSubtree(txn, other); err != nil {
		t.Fatal(err)
	}

	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}

	if doc.Size() != sizeBefore {
		t.Errorf("size after abort = %d, want %d", doc.Size(), sizeBefore)
	}
	if v, _ := doc.Value(text.ID); string(v) != "book 0.0" {
		t.Errorf("title text after abort = %q", v)
	}
	n, _ := doc.GetNode(book.ID)
	if doc.Vocabulary().Name(n.Name) != "book" {
		t.Errorf("name after abort = %s", doc.Vocabulary().Name(n.Name))
	}
	if _, err := doc.ElementByID([]byte("b-1-2")); err != nil {
		t.Errorf("deleted book not restored: %v", err)
	}
	// The id index still finds the restored book's content.
	restored, _ := doc.ElementByID([]byte("b-1-2"))
	if cnt, _ := doc.SubtreeSize(restored); cnt < 8 {
		t.Errorf("restored subtree has %d nodes", cnt)
	}
}

func TestRepeatableReadBlocksConcurrentUpdate(t *testing.T) {
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := newLibrary(t, name, -1)
			reader := m.Begin(tx.LevelRepeatable)
			book, err := m.JumpToID(reader, "b-0-0")
			if err != nil {
				t.Fatal(err)
			}
			frag1, err := m.ReadFragment(reader, book.ID, false)
			if err != nil {
				t.Fatal(err)
			}

			// A concurrent writer must not be able to change what the reader
			// saw before the reader commits.
			writer := m.Begin(tx.LevelRepeatable)
			title, _ := m.Document().FirstChild(book.ID)
			text, _ := m.Document().FirstChild(title.ID)
			werr := m.SetValue(writer, text.ID, []byte("dirty"))
			if werr == nil {
				t.Fatal("writer updated a fragment under repeatable read")
			}
			if !IsAbortWorthy(werr) {
				t.Fatalf("unexpected writer error: %v", werr)
			}
			writer.Abort()

			// Re-traversal yields the identical fragment.
			frag2, err := m.ReadFragment(reader, book.ID, false)
			if err != nil {
				t.Fatal(err)
			}
			if len(frag1) != len(frag2) {
				t.Errorf("fragment changed under repeatable read: %d vs %d", len(frag1), len(frag2))
			}
			reader.Commit()
		})
	}
}

func TestUncommittedReadersDontBlock(t *testing.T) {
	m := newLibrary(t, "taDOM3+", -1)
	writer := m.Begin(tx.LevelRepeatable)
	book, err := m.JumpToID(writer, "b-0-0")
	if err != nil {
		t.Fatal(err)
	}
	title, _ := m.Document().FirstChild(book.ID)
	text, _ := m.Document().FirstChild(title.ID)
	if err := m.SetValue(writer, text.ID, []byte("wip")); err != nil {
		t.Fatal(err)
	}
	// An uncommitted-level reader sails through the write locks.
	reader := m.Begin(tx.LevelUncommitted)
	v, err := m.Value(reader, text.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "wip" {
		t.Errorf("dirty read = %q, want the in-flight value", v)
	}
	reader.Commit()
	writer.Commit()
}

func TestDeadlockVictimCanRetry(t *testing.T) {
	m := newLibrary(t, "taDOM2", -1)
	doc := m.Document()
	b1, _ := doc.ElementByID([]byte("b-0-0"))
	b2, _ := doc.ElementByID([]byte("b-0-1"))
	t1v, _ := doc.FirstChild(b1)
	t1text, _ := doc.FirstChild(t1v.ID)
	t2v, _ := doc.FirstChild(b2)
	t2text, _ := doc.FirstChild(t2v.ID)

	var wg sync.WaitGroup
	var aborts, commits int
	var mu sync.Mutex
	run := func(first, second splid.ID) {
		defer wg.Done()
		for attempt := 0; attempt < 10; attempt++ {
			txn := m.Begin(tx.LevelRepeatable)
			err := m.SetValue(txn, first, []byte("x"))
			if err == nil {
				time.Sleep(10 * time.Millisecond) // encourage the crossing
				err = m.SetValue(txn, second, []byte("y"))
			}
			if err != nil {
				txn.Abort()
				if !IsAbortWorthy(err) {
					t.Errorf("unexpected error: %v", err)
					return
				}
				mu.Lock()
				aborts++
				mu.Unlock()
				continue
			}
			if err := txn.Commit(); err != nil {
				t.Error(err)
			}
			mu.Lock()
			commits++
			mu.Unlock()
			return
		}
		t.Error("transaction never succeeded after 10 attempts")
	}
	wg.Add(2)
	go run(t1text.ID, t2text.ID)
	go run(t2text.ID, t1text.ID)
	wg.Wait()
	if commits != 2 {
		t.Errorf("commits = %d, want 2", commits)
	}
	// Both updates eventually applied.
	if v, _ := doc.Value(t1text.ID); string(v) != "x" && string(v) != "y" {
		t.Errorf("t1 value = %q", v)
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	// Writers on different books proceed fully in parallel under the
	// fine-granular protocols.
	for _, name := range []string{"taDOM3+", "URIX", "OO2PL"} {
		name := name
		t.Run(name, func(t *testing.T) {
			m := newLibrary(t, name, -1)
			doc := m.Document()
			var wg sync.WaitGroup
			errs := make([]error, 6)
			for ti := 0; ti < 2; ti++ {
				for bi := 0; bi < 3; bi++ {
					wg.Add(1)
					go func(ti, bi int) {
						defer wg.Done()
						idx := ti*3 + bi
						book, err := doc.ElementByID([]byte(fmt.Sprintf("b-%d-%d", ti, bi)))
						if err != nil {
							errs[idx] = err
							return
						}
						txn := m.Begin(tx.LevelRepeatable)
						title, _ := doc.FirstChild(book)
						text, _ := doc.FirstChild(title.ID)
						if err := m.SetValue(txn, text.ID, []byte(fmt.Sprintf("t%d%d", ti, bi))); err != nil {
							errs[idx] = err
							txn.Abort()
							return
						}
						errs[idx] = txn.Commit()
					}(ti, bi)
				}
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("writer %d: %v", i, err)
				}
			}
		})
	}
}

func TestInsertBeforeAndAppend(t *testing.T) {
	m := newLibrary(t, "taDOM3+", -1)
	txn := m.Begin(tx.LevelRepeatable)
	book, err := m.JumpToID(txn, "b-0-0")
	if err != nil {
		t.Fatal(err)
	}
	title, err := m.FirstChild(txn, book.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a new element before the title.
	isbn, err := m.InsertElementBefore(txn, book.ID, title.ID, "isbn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AppendText(txn, isbn.ID, []byte("978-3")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	check := m.Begin(tx.LevelRepeatable)
	defer check.Commit()
	first, err := m.FirstChild(check, book.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !first.ID.Equal(isbn.ID) {
		t.Errorf("first child = %v, want the inserted isbn", first.ID)
	}
	kids, _ := m.GetChildren(check, book.ID)
	if len(kids) != 5 {
		t.Errorf("book has %d children, want 5", len(kids))
	}
}

func TestOperationsOnFinishedTxn(t *testing.T) {
	m := newLibrary(t, "taDOM3+", -1)
	txn := m.Begin(tx.LevelRepeatable)
	txn.Commit()
	if _, err := m.GetNode(txn, m.Document().Root()); !errors.Is(err, ErrNotActive) {
		t.Errorf("GetNode on finished txn: %v", err)
	}
	if err := m.SetValue(txn, m.Document().Root(), nil); !errors.Is(err, ErrNotActive) {
		t.Errorf("SetValue on finished txn: %v", err)
	}
}

func TestLevelLockSavesRequests(t *testing.T) {
	// taDOM's LR covers getChildNodes with one node lock; MGL needs one per
	// child — observable through the lock-manager request counter.
	mTD := newLibrary(t, "taDOM3+", -1)
	tTD := mTD.Begin(tx.LevelRepeatable)
	topics, _ := mTD.Document().FirstChild(mTD.Document().Root())
	topic, _ := mTD.Document().FirstChild(topics.ID)
	if _, err := mTD.GetChildren(tTD, topic.ID); err != nil {
		t.Fatal(err)
	}
	tdReqs := mTD.LockManager().Stats().Requests
	tTD.Commit()

	mMG := newLibrary(t, "URIX", -1)
	tMG := mMG.Begin(tx.LevelRepeatable)
	if _, err := mMG.GetChildren(tMG, topic.ID); err != nil {
		t.Fatal(err)
	}
	mgReqs := mMG.LockManager().Stats().Requests
	tMG.Commit()

	if tdReqs >= mgReqs {
		t.Errorf("taDOM level lock should need fewer requests: taDOM=%d, URIX=%d", tdReqs, mgReqs)
	}
}

func TestPhantomChildPrevention(t *testing.T) {
	// After getChildNodes, no concurrent transaction may add a child.
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := newLibrary(t, name, -1)
			doc := m.Document()
			book, _ := doc.ElementByID([]byte("b-0-0"))

			reader := m.Begin(tx.LevelRepeatable)
			kids, err := m.GetChildren(reader, book)
			if err != nil {
				t.Fatal(err)
			}
			writer := m.Begin(tx.LevelRepeatable)
			_, werr := m.AppendElement(writer, book, "phantom")
			if werr == nil {
				writer.Commit()
				kids2, _ := m.GetChildren(reader, book)
				if len(kids2) != len(kids) {
					t.Errorf("phantom child visible: %d -> %d", len(kids), len(kids2))
				}
			} else {
				writer.Abort()
			}
			reader.Commit()
		})
	}
}

func TestXMLRoundTripThroughManager(t *testing.T) {
	m := newLibrary(t, "taDOM2+", -1)
	txn := m.Begin(tx.LevelRepeatable)
	defer txn.Commit()
	frag, err := m.ReadFragment(txn, m.Document().Root(), false)
	if err != nil {
		t.Fatal(err)
	}
	elements := 0
	for _, n := range frag {
		if n.Kind == xmlmodel.KindElement {
			elements++
		}
	}
	// 1 bib + 1 topics + 2 topic + 6 book + 6*(title+author+price+history+lend)
	want := 1 + 1 + 2 + 6 + 6*5
	if elements != want {
		t.Errorf("element count = %d, want %d", elements, want)
	}
}
