package node

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/xmlmodel"
)

// TestChaosAllProtocols runs a storm of random transactions (reads, writes,
// structural changes, renames, deliberate aborts) against every protocol
// and verifies afterwards that the document store survived with all
// invariants intact — the strongest end-to-end check in the suite.
func TestChaosAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos test")
	}
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			chaosRun(t, name, tx.LevelRepeatable)
		})
	}
}

// TestChaosWeakIsolation runs the same storm under the weaker levels, where
// transactions take fewer (or no) locks: logical anomalies are expected,
// physical corruption is not.
func TestChaosWeakIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos test")
	}
	for _, iso := range []tx.Level{tx.LevelNone, tx.LevelUncommitted, tx.LevelCommitted} {
		iso := iso
		t.Run(iso.String(), func(t *testing.T) {
			t.Parallel()
			chaosRun(t, "taDOM3+", iso)
		})
	}
}

func chaosRun(t *testing.T, protoName string, iso tx.Level) {
	t.Helper()
	m := newLibrary(t, protoName, -1)
	doc := m.Document()
	var bookIDs []string
	for ti := 0; ti < 2; ti++ {
		for bi := 0; bi < 3; bi++ {
			bookIDs = append(bookIDs, fmt.Sprintf("b-%d-%d", ti, bi))
		}
	}
	var commits, aborts atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(700 * time.Millisecond)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				txn := m.Begin(iso)
				err := chaosTxn(m, txn, rng, bookIDs)
				switch {
				case err == nil && rng.Intn(8) == 0:
					// Deliberate abort of a healthy transaction.
					txn.Abort()
					aborts.Add(1)
				case err == nil:
					if cerr := txn.Commit(); cerr != nil {
						t.Errorf("commit: %v", cerr)
						return
					}
					commits.Add(1)
				case IsAbortWorthy(err) || errors.Is(err, storage.ErrNodeNotFound) ||
					errors.Is(err, storage.ErrNodeExists):
					txn.Abort()
					aborts.Add(1)
				default:
					txn.Abort()
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if commits.Load() == 0 {
		t.Fatalf("no transaction committed (aborts: %d)", aborts.Load())
	}
	if err := doc.Verify(); err != nil {
		t.Fatalf("document corrupted after chaos (%d commits, %d aborts): %v",
			commits.Load(), aborts.Load(), err)
	}
}

// chaosTxn performs 1-4 random operations.
func chaosTxn(m *Manager, txn *tx.Txn, rng *rand.Rand, bookIDs []string) error {
	ops := 1 + rng.Intn(4)
	for i := 0; i < ops; i++ {
		book, err := m.JumpToID(txn, bookIDs[rng.Intn(len(bookIDs))])
		if err != nil {
			return err
		}
		switch rng.Intn(8) {
		case 0: // fragment read
			if _, err := m.ReadFragment(txn, book.ID, false); err != nil {
				return err
			}
		case 1: // children + attributes
			if _, err := m.GetChildren(txn, book.ID); err != nil {
				return err
			}
			if _, err := m.GetAttributes(txn, book.ID); err != nil {
				return err
			}
		case 2: // navigate and read a value
			title, err := m.FirstChild(txn, book.ID)
			if err != nil || title.ID.IsNull() {
				return err
			}
			txt, err := m.FirstChild(txn, title.ID)
			if err != nil || txt.ID.IsNull() {
				return err
			}
			if txt.Kind != xmlmodel.KindText {
				return nil
			}
			if _, err := m.Value(txn, txt.ID); err != nil {
				return err
			}
		case 3: // content update
			title, err := m.FirstChild(txn, book.ID)
			if err != nil || title.ID.IsNull() {
				return err
			}
			txt, err := m.FirstChild(txn, title.ID)
			if err != nil || txt.ID.IsNull() || txt.Kind != xmlmodel.KindText {
				return err
			}
			if err := m.SetValue(txn, txt.ID, []byte(fmt.Sprintf("t%d", rng.Int()))); err != nil {
				return err
			}
		case 4: // lend (append + attributes)
			hist, err := m.LastChild(txn, book.ID)
			if err != nil || hist.ID.IsNull() {
				return err
			}
			lend, err := m.AppendElement(txn, hist.ID, "lend")
			if err != nil {
				return err
			}
			if err := m.SetAttribute(txn, lend.ID, "person", []byte("p-1")); err != nil {
				return err
			}
		case 5: // return (delete a lend)
			hist, err := m.LastChild(txn, book.ID)
			if err != nil || hist.ID.IsNull() {
				return err
			}
			lends, err := m.GetChildren(txn, hist.ID)
			if err != nil || len(lends) <= 1 {
				return err
			}
			if err := m.DeleteSubtree(txn, lends[rng.Intn(len(lends))].ID); err != nil {
				return err
			}
		case 6: // rename the book
			names := []string{"book", "tome", "volume"}
			if err := m.Rename(txn, book.ID, names[rng.Intn(len(names))]); err != nil {
				return err
			}
		default: // update-intent fragment read
			hist, err := m.LastChild(txn, book.ID)
			if err != nil || hist.ID.IsNull() {
				return err
			}
			if _, err := m.ReadFragmentForUpdate(txn, hist.ID, false); err != nil {
				return err
			}
		}
	}
	return nil
}
