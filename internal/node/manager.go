// Package node implements XTC's node manager: the transactional DOM-style
// operation layer. Every public operation issues the meta-lock requests of
// Section 3.3 through the configured protocol before touching the document
// store, and registers physical undo actions so aborting transactions roll
// back cleanly while still holding their locks.
//
// This is the layer the paper's meta-synchronization plugs into: exchanging
// the protocol value exchanges the complete locking mechanism underneath an
// unchanged DOM API.
package node

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/splid"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/xmlmodel"
)

// ErrNotActive is returned when operating under a finished transaction.
var ErrNotActive = tx.ErrNotActive

// Options configure a Manager.
type Options struct {
	// Depth is the lock-depth parameter (negative = unlimited, i.e. always
	// lock individual nodes; 0 = document locks).
	Depth int
	// LockTimeout bounds lock waits (lock.DefaultTimeout when zero).
	LockTimeout time.Duration
	// OnDeadlock observes detected deadlocks (the XTCdeadlockDetector hook).
	OnDeadlock func(lock.DeadlockInfo)
	// Metrics, when non-nil, receives the lock manager's and transaction
	// manager's instruments (the lock.* and tx.* namespaces). Harnesses
	// pass the same registry into storage.Options so every layer reports
	// into one document.
	Metrics *metrics.Registry
}

// Manager executes transactional DOM operations on one document under one
// lock protocol. It is safe for concurrent use; each transaction must stay
// on a single goroutine.
type Manager struct {
	doc   *storage.Document
	proto protocol.Protocol
	lm    *lock.Manager
	tm    *tx.Manager
	depth int

	// snapReads is set by EnableSnapshotReads: copy-on-write page versioning
	// is active and tx.LevelSnapshot transactions read frozen views.
	snapReads atomic.Bool
}

// New builds a Manager for the document under the given protocol.
func New(doc *storage.Document, proto protocol.Protocol, opts Options) *Manager {
	lm := lock.NewManager(proto.Table(), lock.Options{
		Timeout:    opts.LockTimeout,
		OnDeadlock: opts.OnDeadlock,
		Metrics:    opts.Metrics,
	})
	tm := tx.NewManager(lm)
	tm.SetMetrics(opts.Metrics)
	return &Manager{
		doc:   doc,
		proto: proto,
		lm:    lm,
		tm:    tm,
		depth: opts.Depth,
	}
}

// Document exposes the underlying document (for tools and tests; access
// through it bypasses locking).
func (m *Manager) Document() *storage.Document { return m.doc }

// Protocol returns the active lock protocol.
func (m *Manager) Protocol() protocol.Protocol { return m.proto }

// LockManager exposes the lock manager (statistics).
func (m *Manager) LockManager() *lock.Manager { return m.lm }

// TxManager exposes the transaction manager (statistics).
func (m *Manager) TxManager() *tx.Manager { return m.tm }

// Depth returns the configured lock depth.
func (m *Manager) Depth() int { return m.depth }

// Begin starts a transaction.
func (m *Manager) Begin(iso tx.Level) *tx.Txn { return m.tm.Begin(iso) }

// Close stops the lock manager's background deadlock detector. The manager
// must not be used afterwards.
func (m *Manager) Close() { m.lm.Close() }

// ctx returns the protocol context for one transaction, built once per
// transaction and cached on the Txn so every DOM operation reuses it (the
// per-transaction lock context: one Ctx, one lock.Tx, one lock cache).
func (m *Manager) ctx(t *tx.Txn) *protocol.Ctx {
	if c, ok := t.ProtoCtx().(*protocol.Ctx); ok && c.LM == m.lm {
		return c
	}
	c := &protocol.Ctx{LM: m.lm, Txn: t, Depth: m.depth, Tree: (*treeAccess)(m)}
	t.SetProtoCtx(c)
	return c
}

func (m *Manager) check(t *tx.Txn) error {
	if !t.Active() {
		return ErrNotActive
	}
	return nil
}

// ErrReadOnly is returned when an update operation runs under a
// tx.LevelSnapshot transaction: snapshot transactions read a frozen view
// and hold no locks, so they cannot write.
var ErrReadOnly = errors.New("snapshot transaction is read-only")

// checkWrite is check plus the read-only guard for snapshot transactions.
func (m *Manager) checkWrite(t *tx.Txn, op string) error {
	if err := m.check(t); err != nil {
		return err
	}
	if t.Isolation() == tx.LevelSnapshot {
		return opErr(op, ErrReadOnly)
	}
	return nil
}

// EnableSnapshotReads switches on copy-on-write page versioning in the
// document's page store, feeding it the transaction manager's
// oldest-active-snapshot watermark so retired versions are pruned as
// snapshot transactions finish. Must be called before concurrent writers
// start (versions captured from then on are what snapshots can read).
func (m *Manager) EnableSnapshotReads() {
	m.doc.Store().SetSnapshotSource(m.tm.SnapshotWatermark)
	m.snapReads.Store(true)
}

// SnapshotsEnabled reports whether EnableSnapshotReads was called.
func (m *Manager) SnapshotsEnabled() bool { return m.snapReads.Load() }

// snap returns the transaction's frozen document view, building it on first
// use and caching it on the Txn (one Snapshot per transaction, like the
// protocol Ctx cache above).
func (m *Manager) snap(t *tx.Txn) *storage.Snapshot {
	if v, ok := t.SnapView().(*storage.Snapshot); ok {
		return v
	}
	v := m.doc.AtSnapshot(t.SnapshotLSN())
	t.SetSnapView(v)
	return v
}

// treeAccess adapts the Manager to protocol.TreeAccess: raw physical reads
// used by protocols while they acquire locks.
type treeAccess Manager

// Children implements protocol.TreeAccess.
func (a *treeAccess) Children(id splid.ID) ([]splid.ID, error) {
	var out []splid.ID
	err := a.doc.ScanChildren(id, func(n xmlmodel.Node) bool {
		out = append(out, n.ID)
		return true
	})
	return out, err
}

// ElementsWithIDAttribute implements protocol.TreeAccess: the *-2PL IDX
// scan — every element in the subtree owning an ID attribute, located
// through the document store (Section 5.3's expensive path).
func (a *treeAccess) ElementsWithIDAttribute(id splid.ID) ([]splid.ID, error) {
	var out []splid.ID
	idSur, ok := a.doc.Vocabulary().Lookup(storage.IDAttrName)
	if !ok {
		return nil, nil
	}
	err := a.doc.ScanSubtree(id, func(n xmlmodel.Node) bool {
		if n.Kind == xmlmodel.KindAttribute && n.Name == idSur {
			el := n.ID.Parent().Parent() // attribute -> attribute root -> element
			out = append(out, el)
		}
		return true
	})
	return out, err
}

// SubtreeNodes implements protocol.TreeAccess.
func (a *treeAccess) SubtreeNodes(id splid.ID) ([]splid.ID, error) {
	var out []splid.ID
	err := a.doc.ScanSubtree(id, func(n xmlmodel.Node) bool {
		if n.Kind == xmlmodel.KindElement || n.Kind == xmlmodel.KindText {
			out = append(out, n.ID)
		}
		return true
	})
	return out, err
}

// opErr wraps protocol/lock failures with operation context. Lock errors
// (deadlock victim, timeout) pass through errors.Is for the caller's
// abort-and-retry logic.
func opErr(op string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("node: %s: %w", op, err)
}

// IsAbortWorthy reports whether err means the transaction should be aborted
// and retried (deadlock victim or lock timeout). Errors from other layers
// can opt in by carrying an `AbortWorthy() bool` method in their chain — the
// xtcd client marks a connection loss with a resumed session this way, so a
// remote workload's restart loop absorbs a server bounce exactly like a
// deadlock abort.
func IsAbortWorthy(err error) bool {
	if errors.Is(err, lock.ErrDeadlockVictim) || errors.Is(err, lock.ErrLockTimeout) {
		return true
	}
	var aw interface{ AbortWorthy() bool }
	return errors.As(err, &aw) && aw.AbortWorthy()
}
