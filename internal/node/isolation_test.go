package node

import (
	"testing"
	"time"

	"repro/internal/tx"
)

// Isolation anomaly tests (footnote 5 of the paper): each level permits
// exactly the anomalies above it and prevents the ones below.

func TestDirtyReadOnlyUnderUncommitted(t *testing.T) {
	m := newLibrary(t, "taDOM3+", -1)
	book, _ := m.Document().ElementByID([]byte("b-0-0"))
	title, _ := m.Document().FirstChild(book)
	text, _ := m.Document().FirstChild(title.ID)

	writer := m.Begin(tx.LevelRepeatable)
	jb, err := m.JumpToID(writer, "b-0-0")
	if err != nil || jb.ID.IsNull() {
		t.Fatal(err)
	}
	if err := m.SetValue(writer, text.ID, []byte("uncommitted-value")); err != nil {
		t.Fatal(err)
	}

	// Uncommitted read: sees the dirty value without blocking.
	dirty := m.Begin(tx.LevelUncommitted)
	v, err := m.Value(dirty, text.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "uncommitted-value" {
		t.Errorf("uncommitted read = %q", v)
	}
	dirty.Commit()

	// Committed read: blocks on the writer's long X lock (observed as a
	// timeout with a short lock timeout).
	committed := m.Begin(tx.LevelCommitted)
	if _, err := m.Value(committed, text.ID); !IsAbortWorthy(err) {
		t.Errorf("committed read under a dirty write: %v", err)
	}
	committed.Abort()
	writer.Abort()
}

func TestNonRepeatableReadUnderCommitted(t *testing.T) {
	m := newLibrary(t, "taDOM3+", -1)
	book, _ := m.Document().ElementByID([]byte("b-0-0"))
	title, _ := m.Document().FirstChild(book)
	text, _ := m.Document().FirstChild(title.ID)

	// Committed-level reader: its read lock is released at operation end,
	// so a writer can change the value between two reads — the
	// non-repeatable read anomaly the level admits.
	reader := m.Begin(tx.LevelCommitted)
	v1, err := m.Value(reader, text.ID)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		writer := m.Begin(tx.LevelRepeatable)
		if err := m.SetValue(writer, text.ID, []byte("changed-between-reads")); err != nil {
			writer.Abort()
			done <- err
			return
		}
		done <- writer.Commit()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked although the committed-level read lock should be gone")
	}

	v2, err := m.Value(reader, text.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(v1) == string(v2) {
		t.Errorf("expected a non-repeatable read, got %q twice", v1)
	}
	reader.Commit()
}

func TestRepeatableReadHasNoAnomaly(t *testing.T) {
	m := newLibrary(t, "taDOM3+", -1)
	book, _ := m.Document().ElementByID([]byte("b-0-0"))
	title, _ := m.Document().FirstChild(book)
	text, _ := m.Document().FirstChild(title.ID)

	reader := m.Begin(tx.LevelRepeatable)
	v1, err := m.Value(reader, text.ID)
	if err != nil {
		t.Fatal(err)
	}
	// A concurrent writer cannot intervene.
	writer := m.Begin(tx.LevelRepeatable)
	if err := m.SetValue(writer, text.ID, []byte("never-lands")); !IsAbortWorthy(err) {
		t.Fatalf("writer error = %v", err)
	}
	writer.Abort()
	v2, err := m.Value(reader, text.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(v1) != string(v2) {
		t.Errorf("repeatable read broke: %q -> %q", v1, v2)
	}
	reader.Commit()
}
