package node

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pagestore"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/wal"
	"repro/internal/xmlmodel"
)

// newSnapshotLibrary builds the Figure 5-style document with a WAL attached
// and snapshot reads enabled, returning the pieces a crash-restart test
// needs to rebuild the world from.
func newSnapshotLibrary(t testing.TB, protoName string) (*Manager, *storage.Document, *wal.Log, *pagestore.MemBackend, *wal.MemSegmentStore) {
	t.Helper()
	backend := pagestore.NewMemBackend()
	d, err := storage.Create(backend, "bib", storage.Options{Dist: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := d.NewBuilder()
	b.StartElement("topics")
	for ti := 0; ti < 2; ti++ {
		b.StartElement("topic").Attribute("id", fmt.Sprintf("t-%d", ti))
		for bi := 0; bi < 3; bi++ {
			b.StartElement("book").Attribute("id", fmt.Sprintf("b-%d-%d", ti, bi)).
				Element("title", fmt.Sprintf("book %d.%d", ti, bi)).
				Element("author", "haustein").
				Element("price", "42").
				StartElement("history").
				StartElement("lend").Attribute("person", "p-1").EndElement().
				EndElement().
				EndElement()
		}
		b.EndElement()
	}
	b.EndElement()
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	segs := wal.NewMemSegmentStore()
	log, err := wal.Open(segs, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	p, err := protocol.ByName(protoName)
	if err != nil {
		t.Fatal(err)
	}
	m := New(d, p, Options{Depth: -1, LockTimeout: 500 * time.Millisecond})
	m.TxManager().SetWAL(log)
	m.EnableSnapshotReads()
	t.Cleanup(func() {
		m.Close()
		d.Close()
		log.Close()
	})
	return m, d, log, backend, segs
}

// titleText resolves a book's title text node — the value-bearing node the
// test writers overwrite.
func titleText(m *Manager, txn *tx.Txn, bookID string) (xmlmodel.Node, error) {
	bk, err := m.JumpToID(txn, bookID)
	if err != nil {
		return xmlmodel.Node{}, err
	}
	title, err := m.FirstChild(txn, bk.ID)
	if err != nil {
		return xmlmodel.Node{}, err
	}
	return m.FirstChild(txn, title.ID)
}

// TestSnapshotWritesRejected pins the contestant's contract: a LevelSnapshot
// transaction is read-only, and every mutating operation refuses it before
// touching the lock manager or the document.
func TestSnapshotWritesRejected(t *testing.T) {
	m, _, _, _, _ := newSnapshotLibrary(t, "snapshot")
	txn := m.Begin(tx.LevelSnapshot)
	defer txn.Commit()

	book, err := m.JumpToID(txn, "b-0-0")
	if err != nil {
		t.Fatal(err)
	}
	writes := map[string]func() error{
		"SetValue":     func() error { return m.SetValue(txn, book.ID, []byte("x")) },
		"Rename":       func() error { return m.Rename(txn, book.ID, "tome") },
		"SetAttribute": func() error { return m.SetAttribute(txn, book.ID, "id", []byte("x")) },
		"Delete":       func() error { return m.DeleteSubtree(txn, book.ID) },
		"Append": func() error {
			_, err := m.AppendElement(txn, book.ID, "note")
			return err
		},
		"InsertBefore": func() error {
			_, err := m.InsertElementBefore(txn, book.ID, book.ID, "note")
			return err
		},
		"ReadForUpdate": func() error {
			_, err := m.ReadFragmentForUpdate(txn, book.ID, false)
			return err
		},
		"UpdateLastChild": func() error {
			_, _, err := m.UpdateLastChildFragment(txn, book.ID)
			return err
		},
	}
	for name, w := range writes {
		if err := w(); !errors.Is(err, ErrReadOnly) {
			t.Errorf("%s on snapshot txn: err = %v, want ErrReadOnly", name, err)
		}
	}
}

// TestSnapshotReadsZeroLockTraffic is the tentpole acceptance test: a
// read-only workload at tx.LevelSnapshot navigates and reads the document
// with ZERO lock-manager requests while a writer commits concurrently.
func TestSnapshotReadsZeroLockTraffic(t *testing.T) {
	m, d, _, _, _ := newSnapshotLibrary(t, "snapshot")

	// Seed some committed history so snapshots have versions to pin.
	seed := m.Begin(tx.LevelRepeatable)
	txt, err := titleText(m, seed, "b-1-2")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetValue(seed, txt.ID, []byte("seeded")); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	base := m.LockManager().Stats().Requests

	// The concurrent writer runs at LevelNone: it commits real page
	// mutations through the WAL but places no lock requests itself, so any
	// movement of the request counter must come from the snapshot readers.
	var stop atomic.Bool
	var commits atomic.Uint64
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; !stop.Load(); i++ {
			w := m.Begin(tx.LevelNone)
			txt, err := titleText(m, w, "b-0-1")
			if err == nil {
				err = m.SetValue(w, txt.ID, []byte(fmt.Sprintf("rev-%d", i)))
			}
			if err != nil {
				w.Abort()
				t.Errorf("writer: %v", err)
				return
			}
			if err := w.Commit(); err != nil {
				t.Errorf("writer commit: %v", err)
				return
			}
			commits.Add(1)
		}
	}()

	const readers = 8
	var readerWG sync.WaitGroup
	readerWG.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer readerWG.Done()
			for round := 0; round < 50; round++ {
				txn := m.Begin(tx.LevelSnapshot)
				txt, err := titleText(m, txn, "b-0-1")
				if err == nil {
					_, err = m.Value(txn, txt.ID)
				}
				if err == nil {
					bk, berr := m.JumpToID(txn, "b-0-1")
					err = berr
					if err == nil {
						_, err = m.ReadFragment(txn, bk.ID, false)
					}
				}
				if err == nil {
					kids, kerr := m.GetChildren(txn, d.Root())
					err = kerr
					if err == nil && len(kids) != 1 {
						err = fmt.Errorf("root has %d children", len(kids))
					}
				}
				if cerr := txn.Commit(); err == nil {
					err = cerr
				}
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}

	// Let readers finish, then release the writer.
	readerWG.Wait()
	stop.Store(true)
	writerWG.Wait()

	if got := m.LockManager().Stats().Requests; got != base {
		t.Errorf("snapshot read workload placed %d lock requests, want 0", got-base)
	}
	if commits.Load() == 0 {
		t.Error("writer committed nothing; the run proved no concurrency")
	}
	if err := m.TxManager().SnapshotLeakCheck(); err != nil {
		t.Error(err)
	}
}

// docDigest hashes the whole document as seen through txn: every node's ID,
// kind, name surrogate, and value, in document order.
func docDigest(t testing.TB, m *Manager, txn *tx.Txn) uint64 {
	t.Helper()
	frag, err := m.ReadFragment(txn, m.Document().Root(), false)
	if err != nil {
		t.Fatalf("digest scan: %v", err)
	}
	h := fnv.New64a()
	for _, n := range frag {
		h.Write(n.ID.Encode())
		h.Write([]byte{byte(n.Kind)})
		h.Write([]byte{byte(n.Name), byte(n.Name >> 8)})
		h.Write(n.Value)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// oracleEntry records the committed document state at one snapshot LSN.
type oracleEntry struct {
	lsn    uint64
	digest uint64
}

// TestSnapshotVisibilityOracle is the randomized equivalence check: a single
// writer mutates and commits, recording after each commit the WAL's snapshot
// LSN and a digest of the committed document. Concurrent snapshot readers
// then demand that a transaction pinned at LSN S observes exactly the digest
// recorded at S — never a torn in-between state, never a stale-but-mislabeled
// one. Run under -race this also hammers the version-chain concurrency.
func TestSnapshotVisibilityOracle(t *testing.T) {
	m, _, log, _, _ := newSnapshotLibrary(t, "snapshot")

	var mu sync.Mutex
	var oracle []oracleEntry
	record := func() {
		// The writer is quiescent between commits and readers never write,
		// so a LevelNone live read sees exactly the committed state.
		txn := m.Begin(tx.LevelNone)
		dig := docDigest(t, m, txn)
		lsn := log.SnapshotLSN()
		txn.Commit()
		mu.Lock()
		oracle = append(oracle, oracleEntry{lsn: lsn, digest: dig})
		mu.Unlock()
	}
	record() // state zero, before any logged commit

	const rounds = 60
	var wg sync.WaitGroup
	var writerDone atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for i := 0; i < rounds; i++ {
			w := m.Begin(tx.LevelRepeatable)
			id := fmt.Sprintf("b-%d-%d", i%2, i%3)
			txt, err := titleText(m, w, id)
			if err == nil {
				err = m.SetValue(w, txt.ID, []byte(fmt.Sprintf("round-%d", i)))
			}
			if err == nil && i%4 == 3 {
				// Structural churn: grow the document so tree pages split and
				// roots move, exercising the root log and version chains.
				var bk xmlmodel.Node
				bk, err = m.JumpToID(w, id)
				if err == nil {
					_, err = m.AppendElement(w, bk.ID, "note")
				}
			}
			if err != nil {
				w.Abort()
				t.Errorf("writer round %d: %v", i, err)
				return
			}
			if err := w.Commit(); err != nil {
				t.Errorf("writer commit %d: %v", i, err)
				return
			}
			record()
		}
	}()

	var validated atomic.Uint64
	const readers = 6
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			// Keep reading a while after the writer stops: the last commits'
			// oracle entries are then guaranteed recorded, so late rounds
			// always validate instead of slipping into the recording window.
			for i := 0; i < 30 || !writerDone.Load(); i++ {
				txn := m.Begin(tx.LevelSnapshot)
				s := txn.SnapshotLSN()
				dig := docDigest(t, m, txn)
				txn.Commit()
				mu.Lock()
				i := sort.Search(len(oracle), func(i int) bool { return oracle[i].lsn >= s })
				var want oracleEntry
				found := i < len(oracle) && oracle[i].lsn == s
				if found {
					want = oracle[i]
				}
				mu.Unlock()
				if !found {
					// The commit that produced S is recorded slightly after it
					// becomes visible; a reader can slip into that window.
					continue
				}
				if dig != want.digest {
					t.Errorf("snapshot at LSN %d read digest %x, oracle says %x", s, dig, want.digest)
					return
				}
				validated.Add(1)
			}
		}()
	}
	wg.Wait()

	if n := validated.Load(); n < 20 {
		t.Fatalf("only %d reader checks matched an oracle entry; test proved too little", n)
	}
	if err := m.TxManager().SnapshotLeakCheck(); err != nil {
		t.Error(err)
	}
	// With every snapshot released the watermark is the WAL's snapshot LSN;
	// pruning must leave nothing below it.
	w := m.TxManager().SnapshotWatermark()
	m.Document().Store().PruneVersions(w)
	if n := m.Document().Store().StaleVersions(w); n != 0 {
		t.Errorf("%d page versions survived below watermark %d", n, w)
	}
}

// TestSnapshotOracleCrashRestart commits through the WAL, crashes the
// process (buffer pool and document lost, backend and log keep only what was
// made durable), recovers, and demands that a fresh snapshot transaction on
// the recovered document sees exactly the last committed state.
func TestSnapshotOracleCrashRestart(t *testing.T) {
	m, _, log, backend, segs := newSnapshotLibrary(t, "snapshot")

	var lastDigest uint64
	for i := 0; i < 10; i++ {
		w := m.Begin(tx.LevelRepeatable)
		id := fmt.Sprintf("b-%d-%d", i%2, i%3)
		txt, err := titleText(m, w, id)
		if err == nil {
			err = m.SetValue(w, txt.ID, []byte(fmt.Sprintf("pre-crash-%d", i)))
		}
		if err == nil && i%3 == 0 {
			var bk xmlmodel.Node
			bk, err = m.JumpToID(w, id)
			if err == nil {
				_, err = m.AppendElement(w, bk.ID, "note")
			}
		}
		if err != nil {
			t.Fatalf("writer round %d: %v", i, err)
		}
		if err := w.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		ro := m.Begin(tx.LevelNone)
		lastDigest = docDigest(t, m, ro)
		ro.Commit()
	}

	// Power failure: no Close anywhere, the log and segment store crash.
	log.CrashNow()
	segs.Crash()

	log2, err := wal.Open(segs, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	d2, rep, err := storage.Recover(backend, log2, storage.Options{})
	if err != nil {
		t.Fatalf("recover: %v (report %+v)", err, rep)
	}
	defer d2.Close()
	p, err := protocol.ByName("snapshot")
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(d2, p, Options{Depth: -1, LockTimeout: 500 * time.Millisecond})
	defer m2.Close()
	m2.TxManager().SetWAL(log2)
	m2.EnableSnapshotReads()

	txn := m2.Begin(tx.LevelSnapshot)
	defer txn.Commit()
	if got := docDigest(t, m2, txn); got != lastDigest {
		t.Errorf("post-recovery snapshot digest %x, want last committed %x", got, lastDigest)
	}
	if s := txn.SnapshotLSN(); s == 0 {
		t.Error("post-recovery snapshot pinned LSN 0; WAL lost its snapshot position")
	}
}

// BenchmarkSnapshotReads compares the snapshot contestant's lock-free reads
// against taDOM2 read locks under a background writer, at 1, 16, and 64
// reader goroutines. Each iteration is one read transaction: jump to a book,
// read its value, scan its fragment.
func BenchmarkSnapshotReads(b *testing.B) {
	for _, mode := range []struct {
		name  string
		proto string
		iso   tx.Level
	}{
		{"snapshot", "snapshot", tx.LevelSnapshot},
		{"taDOM2", "taDOM2", tx.LevelRepeatable},
	} {
		for _, par := range []int{1, 16, 64} {
			b.Run(fmt.Sprintf("%s/readers=%d", mode.name, par), func(b *testing.B) {
				m, _, _, _, _ := newSnapshotLibrary(b, mode.proto)

				var stop atomic.Bool
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; !stop.Load(); i++ {
						w := m.Begin(tx.LevelRepeatable)
						txt, err := titleText(m, w, "b-1-1")
						if err == nil {
							err = m.SetValue(w, txt.ID, []byte(fmt.Sprintf("r%d", i)))
						}
						if err != nil {
							w.Abort()
							continue
						}
						w.Commit()
						time.Sleep(100 * time.Microsecond)
					}
				}()

				// Exactly par reader goroutines splitting b.N transactions.
				var next atomic.Int64
				next.Store(int64(b.N))
				var readers sync.WaitGroup
				b.ResetTimer()
				readers.Add(par)
				for g := 0; g < par; g++ {
					go func() {
						defer readers.Done()
						for next.Add(-1) >= 0 {
							txn := m.Begin(mode.iso)
							bk, err := m.JumpToID(txn, "b-0-1")
							if err == nil {
								var txt xmlmodel.Node
								if txt, err = titleText(m, txn, "b-0-1"); err == nil {
									_, err = m.Value(txn, txt.ID)
								}
							}
							if err == nil {
								_, err = m.ReadFragment(txn, bk.ID, false)
							}
							if err != nil {
								txn.Abort()
								b.Error(err)
								return
							}
							txn.Commit()
						}
					}()
				}
				readers.Wait()
				b.StopTimer()
				stop.Store(true)
				wg.Wait()
			})
		}
	}
}
