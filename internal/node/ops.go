package node

import (
	"errors"
	"fmt"

	"repro/internal/lock"

	"repro/internal/protocol"
	"repro/internal/splid"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/xmlmodel"
)

// Read operations. Each public operation is one logical operation in the
// meta-lock sense: under the weak isolation levels its short read locks are
// released at the end (EndOperation); under repeatable read they are held
// to commit. Under tx.LevelSnapshot every read op branches to the
// transaction's frozen Snapshot view before touching the protocol: zero
// lock-manager traffic, no EndOperation (there is no lock context).

// GetNode reads one node by SPLID (navigational access).
func (m *Manager) GetNode(t *tx.Txn, id splid.ID) (xmlmodel.Node, error) {
	if err := m.check(t); err != nil {
		return xmlmodel.Node{}, err
	}
	if t.Isolation() == tx.LevelSnapshot {
		return m.snap(t).GetNode(id)
	}
	defer t.EndOperation()
	if err := m.proto.ReadNode(m.ctx(t), id, protocol.Navigate); err != nil {
		return xmlmodel.Node{}, opErr("GetNode", err)
	}
	return m.doc.GetNode(id)
}

// JumpToID resolves an ID-attribute value to its element (getElementById)
// and read-locks the target as a direct jump.
func (m *Manager) JumpToID(t *tx.Txn, value string) (xmlmodel.Node, error) {
	if err := m.check(t); err != nil {
		return xmlmodel.Node{}, err
	}
	if t.Isolation() == tx.LevelSnapshot {
		v := m.snap(t)
		id, err := v.ElementByID([]byte(value))
		if err != nil {
			return xmlmodel.Node{}, err
		}
		return v.GetNode(id)
	}
	defer t.EndOperation()
	id, err := m.doc.ElementByID([]byte(value))
	if err != nil {
		return xmlmodel.Node{}, err
	}
	if err := m.proto.ReadNode(m.ctx(t), id, protocol.Jump); err != nil {
		return xmlmodel.Node{}, opErr("JumpToID", err)
	}
	return m.doc.GetNode(id)
}

// navigate factors the four sibling/child axes: lock the traversed logical
// edge, resolve it physically, then lock the target node.
func (m *Manager) navigate(t *tx.Txn, op string, owner splid.ID, e protocol.Edge,
	resolve func(storage.ReadView, splid.ID) (xmlmodel.Node, error)) (xmlmodel.Node, error) {
	if err := m.check(t); err != nil {
		return xmlmodel.Node{}, err
	}
	if t.Isolation() == tx.LevelSnapshot {
		return resolve(m.snap(t), owner)
	}
	defer t.EndOperation()
	c := m.ctx(t)
	if err := m.proto.ReadEdge(c, owner, e); err != nil {
		return xmlmodel.Node{}, opErr(op, err)
	}
	n, err := resolve(m.doc, owner)
	if err != nil {
		return xmlmodel.Node{}, err
	}
	if n.ID.IsNull() {
		return n, nil // edge leads nowhere; the edge lock isolates that fact
	}
	if err := m.proto.ReadNode(c, n.ID, protocol.Navigate); err != nil {
		return xmlmodel.Node{}, opErr(op, err)
	}
	return n, nil
}

// FirstChild returns the first regular child (null-ID node when none).
func (m *Manager) FirstChild(t *tx.Txn, id splid.ID) (xmlmodel.Node, error) {
	return m.navigate(t, "FirstChild", id, protocol.EdgeFirstChild, storage.ReadView.FirstChild)
}

// LastChild returns the last regular child.
func (m *Manager) LastChild(t *tx.Txn, id splid.ID) (xmlmodel.Node, error) {
	return m.navigate(t, "LastChild", id, protocol.EdgeLastChild, storage.ReadView.LastChild)
}

// NextSibling returns the following sibling.
func (m *Manager) NextSibling(t *tx.Txn, id splid.ID) (xmlmodel.Node, error) {
	return m.navigate(t, "NextSibling", id, protocol.EdgeNextSibling, storage.ReadView.NextSibling)
}

// PrevSibling returns the preceding sibling.
func (m *Manager) PrevSibling(t *tx.Txn, id splid.ID) (xmlmodel.Node, error) {
	return m.navigate(t, "PrevSibling", id, protocol.EdgePrevSibling, storage.ReadView.PrevSibling)
}

// Parent returns the parent node (null-ID node for the root).
func (m *Manager) Parent(t *tx.Txn, id splid.ID) (xmlmodel.Node, error) {
	if err := m.check(t); err != nil {
		return xmlmodel.Node{}, err
	}
	if t.Isolation() == tx.LevelSnapshot {
		return m.snap(t).Parent(id)
	}
	defer t.EndOperation()
	p := id.Parent()
	if p.IsNull() {
		return xmlmodel.Node{}, nil
	}
	if err := m.proto.ReadNode(m.ctx(t), p, protocol.Navigate); err != nil {
		return xmlmodel.Node{}, opErr("Parent", err)
	}
	return m.doc.GetNode(p)
}

// GetChildren returns all regular children (getChildNodes): one level-read
// meta-lock.
func (m *Manager) GetChildren(t *tx.Txn, id splid.ID) ([]xmlmodel.Node, error) {
	if err := m.check(t); err != nil {
		return nil, err
	}
	if t.Isolation() == tx.LevelSnapshot {
		var out []xmlmodel.Node
		err := m.snap(t).ScanChildren(id, func(n xmlmodel.Node) bool {
			out = append(out, n)
			return true
		})
		return out, err
	}
	defer t.EndOperation()
	kids, err := (*treeAccess)(m).Children(id)
	if err != nil {
		return nil, err
	}
	if err := m.proto.ReadLevel(m.ctx(t), id, kids); err != nil {
		return nil, opErr("GetChildren", err)
	}
	out := make([]xmlmodel.Node, 0, len(kids))
	err = m.doc.ScanChildren(id, func(n xmlmodel.Node) bool {
		out = append(out, n)
		return true
	})
	return out, err
}

// GetAttributes returns the attribute nodes of an element (getAttributes):
// a level-read on the virtual attribute root covers them with one request.
func (m *Manager) GetAttributes(t *tx.Txn, el splid.ID) ([]xmlmodel.Node, error) {
	if err := m.check(t); err != nil {
		return nil, err
	}
	if t.Isolation() == tx.LevelSnapshot {
		var out []xmlmodel.Node
		err := m.snap(t).Attributes(el, func(n xmlmodel.Node) bool {
			out = append(out, n)
			return true
		})
		return out, err
	}
	defer t.EndOperation()
	ar := el.AttributeRoot()
	ok, err := m.doc.Exists(ar)
	if err != nil {
		return nil, err
	}
	if !ok {
		// Even "no attributes" must be a repeatable observation: lock the
		// element node itself.
		if err := m.proto.ReadNode(m.ctx(t), el, protocol.Navigate); err != nil {
			return nil, opErr("GetAttributes", err)
		}
		return nil, nil
	}
	attrs, err := (*treeAccess)(m).Children(ar)
	if err != nil {
		return nil, err
	}
	if err := m.proto.ReadLevel(m.ctx(t), ar, attrs); err != nil {
		return nil, opErr("GetAttributes", err)
	}
	var out []xmlmodel.Node
	err = m.doc.Attributes(el, func(n xmlmodel.Node) bool {
		out = append(out, n)
		return true
	})
	return out, err
}

// Value reads the character data of a text or attribute node.
func (m *Manager) Value(t *tx.Txn, id splid.ID) ([]byte, error) {
	if err := m.check(t); err != nil {
		return nil, err
	}
	if t.Isolation() == tx.LevelSnapshot {
		return m.snap(t).Value(id)
	}
	defer t.EndOperation()
	if err := m.proto.ReadNode(m.ctx(t), id, protocol.Navigate); err != nil {
		return nil, opErr("Value", err)
	}
	return m.doc.Value(id)
}

// AttributeValue reads one attribute of an element by name.
func (m *Manager) AttributeValue(t *tx.Txn, el splid.ID, name string) ([]byte, error) {
	if err := m.check(t); err != nil {
		return nil, err
	}
	if t.Isolation() == tx.LevelSnapshot {
		v := m.snap(t)
		a, err := v.AttributeByName(el, name)
		if err != nil || a.ID.IsNull() {
			return nil, err
		}
		return v.Value(a.ID)
	}
	defer t.EndOperation()
	a, err := m.doc.AttributeByName(el, name)
	if err != nil {
		return nil, err
	}
	if a.ID.IsNull() {
		if err := m.proto.ReadNode(m.ctx(t), el, protocol.Navigate); err != nil {
			return nil, opErr("AttributeValue", err)
		}
		return nil, nil
	}
	if err := m.proto.ReadNode(m.ctx(t), a.ID, protocol.Navigate); err != nil {
		return nil, opErr("AttributeValue", err)
	}
	return m.doc.Value(a.ID)
}

// ReadFragment reads the whole subtree under id in document order (the
// getFragment operation of Section 5.2), returning all regular nodes. jump
// marks index-based access to the fragment root.
func (m *Manager) ReadFragment(t *tx.Txn, id splid.ID, jump bool) ([]xmlmodel.Node, error) {
	if err := m.check(t); err != nil {
		return nil, err
	}
	if t.Isolation() == tx.LevelSnapshot {
		var out []xmlmodel.Node
		err := m.snap(t).ScanSubtree(id, func(n xmlmodel.Node) bool {
			out = append(out, n)
			return true
		})
		return out, err
	}
	defer t.EndOperation()
	acc := protocol.Navigate
	if jump {
		acc = protocol.Jump
	}
	if err := m.proto.ReadTree(m.ctx(t), id, acc); err != nil {
		return nil, opErr("ReadFragment", err)
	}
	var out []xmlmodel.Node
	err := m.doc.ScanSubtree(id, func(n xmlmodel.Node) bool {
		out = append(out, n)
		return true
	})
	return out, err
}

// --- updates ----------------------------------------------------------------

// SetValue overwrites the character data of a text or attribute node.
func (m *Manager) SetValue(t *tx.Txn, id splid.ID, value []byte) error {
	if err := m.checkWrite(t, "SetValue"); err != nil {
		return err
	}
	defer t.EndOperation()
	if err := m.proto.WriteNode(m.ctx(t), id); err != nil {
		return opErr("SetValue", err)
	}
	old, err := m.doc.Value(id)
	if err != nil {
		return err
	}
	if err := m.doc.ForTx(t.ID()).SetValue(id, value); err != nil {
		return err
	}
	txd := m.doc.ForTx(t.ID())
	t.PushUndo(func() error { return txd.SetValue(id, old) })
	return nil
}

// Rename changes an element's name (DOM level 3 renameNode).
func (m *Manager) Rename(t *tx.Txn, id splid.ID, newName string) error {
	if err := m.checkWrite(t, "Rename"); err != nil {
		return err
	}
	defer t.EndOperation()
	if err := m.proto.Rename(m.ctx(t), id); err != nil {
		return opErr("Rename", err)
	}
	n, err := m.doc.GetNode(id)
	if err != nil {
		return err
	}
	oldName := m.doc.Vocabulary().Name(n.Name)
	if err := m.doc.ForTx(t.ID()).Rename(id, newName); err != nil {
		return err
	}
	txd := m.doc.ForTx(t.ID())
	t.PushUndo(func() error { return txd.Rename(id, oldName) })
	return nil
}

// AppendElement inserts a new element as the last child of parent and
// returns it.
func (m *Manager) AppendElement(t *tx.Txn, parent splid.ID, name string) (xmlmodel.Node, error) {
	return m.insertChild(t, parent, func(id splid.ID) (xmlmodel.Node, error) {
		return m.doc.ForTx(t.ID()).InsertElement(id, name)
	})
}

// AppendText inserts a new text node as the last child of parent.
func (m *Manager) AppendText(t *tx.Txn, parent splid.ID, value []byte) (xmlmodel.Node, error) {
	return m.insertChild(t, parent, func(id splid.ID) (xmlmodel.Node, error) {
		return m.doc.ForTx(t.ID()).InsertText(id, value)
	})
}

// insertRetries bounds the revalidation loop of structural inserts. The
// position stabilizes as soon as the inserter holds the boundary locks, so
// more than a couple of iterations indicate a livelock; the transaction then
// aborts like a timeout victim.
const insertRetries = 8

func (m *Manager) insertChild(t *tx.Txn, parent splid.ID,
	create func(splid.ID) (xmlmodel.Node, error)) (xmlmodel.Node, error) {
	if err := m.checkWrite(t, "Append"); err != nil {
		return xmlmodel.Node{}, err
	}
	defer t.EndOperation()
	// The append position is computed physically, then locked, then
	// revalidated: a concurrent appender may have extended the child list
	// while this transaction blocked on the boundary locks.
	for attempt := 0; attempt < insertRetries; attempt++ {
		last, err := m.doc.LastChild(parent)
		if err != nil {
			return xmlmodel.Node{}, err
		}
		newID, err := m.doc.Allocator().Between(parent, last.ID, splid.Null)
		if err != nil {
			return xmlmodel.Node{}, err
		}
		if err := m.proto.Insert(m.ctx(t), parent, newID, last.ID, splid.Null); err != nil {
			return xmlmodel.Node{}, opErr("Append", err)
		}
		check, err := m.doc.LastChild(parent)
		if err != nil {
			return xmlmodel.Node{}, err
		}
		if !check.ID.Equal(last.ID) {
			continue // position moved while blocking; relock the new slot
		}
		n, err := create(newID)
		if errors.Is(err, storage.ErrNodeExists) {
			// Under the weak isolation levels no locks serialize appenders;
			// the storage latch rejected a racing twin. Recompute and retry.
			continue
		}
		if err != nil {
			return xmlmodel.Node{}, err
		}
		txd := m.doc.ForTx(t.ID())
		t.PushUndo(func() error {
			_, err := txd.DeleteSubtree(newID)
			return err
		})
		return n, nil
	}
	return xmlmodel.Node{}, opErr("Append", lock.ErrLockTimeout)
}

// InsertElementBefore inserts a new element in front of sibling `before`
// under parent.
func (m *Manager) InsertElementBefore(t *tx.Txn, parent, before splid.ID, name string) (xmlmodel.Node, error) {
	if err := m.checkWrite(t, "InsertElementBefore"); err != nil {
		return xmlmodel.Node{}, err
	}
	defer t.EndOperation()
	for attempt := 0; attempt < insertRetries; attempt++ {
		prev, err := m.doc.PrevSibling(before)
		if err != nil {
			return xmlmodel.Node{}, err
		}
		newID, err := m.doc.Allocator().Between(parent, prev.ID, before)
		if err != nil {
			return xmlmodel.Node{}, err
		}
		if err := m.proto.Insert(m.ctx(t), parent, newID, prev.ID, before); err != nil {
			return xmlmodel.Node{}, opErr("InsertElementBefore", err)
		}
		check, err := m.doc.PrevSibling(before)
		if err != nil {
			return xmlmodel.Node{}, err
		}
		if !check.ID.Equal(prev.ID) {
			continue
		}
		n, err := m.doc.ForTx(t.ID()).InsertElement(newID, name)
		if errors.Is(err, storage.ErrNodeExists) {
			continue
		}
		if err != nil {
			return xmlmodel.Node{}, err
		}
		txd := m.doc.ForTx(t.ID())
		t.PushUndo(func() error {
			_, err := txd.DeleteSubtree(newID)
			return err
		})
		return n, nil
	}
	return xmlmodel.Node{}, opErr("InsertElementBefore", lock.ErrLockTimeout)
}

// SetAttribute creates or overwrites an attribute on an element.
func (m *Manager) SetAttribute(t *tx.Txn, el splid.ID, name string, value []byte) error {
	if err := m.checkWrite(t, "SetAttribute"); err != nil {
		return err
	}
	defer t.EndOperation()
	// Attribute updates are writes below the element's attribute root; the
	// whole attribute compound is protected like a child insert/update.
	existing, err := m.doc.AttributeByName(el, name)
	if err != nil {
		return err
	}
	c := m.ctx(t)
	txd := m.doc.ForTx(t.ID())
	if existing.ID.IsNull() {
		// A new attribute is a structural insert under the virtual
		// attribute root. The SPLID is computed with the same append rule
		// storage.SetAttribute uses, so the locked slot is the stored slot;
		// like the other structural inserts, the position is revalidated
		// after blocking on the boundary locks.
		ar := el.AttributeRoot()
		lastAttr := func() (splid.ID, error) {
			var last splid.ID
			err := m.doc.ScanChildren(ar, func(n xmlmodel.Node) bool {
				last = n.ID
				return true
			})
			return last, err
		}
		for attempt := 0; attempt < insertRetries; attempt++ {
			last, err := lastAttr()
			if err != nil {
				return err
			}
			var newID splid.ID
			if last.IsNull() {
				newID = m.doc.Allocator().FirstChild(ar)
			} else {
				newID = m.doc.Allocator().NextSibling(last)
			}
			if err := m.proto.Insert(c, ar, newID, last, splid.Null); err != nil {
				return opErr("SetAttribute", err)
			}
			check, err := lastAttr()
			if err != nil {
				return err
			}
			if !check.Equal(last) {
				continue
			}
			if _, err := txd.SetAttribute(el, name, value); err != nil {
				return err
			}
			doc := m.doc
			t.PushUndo(func() error {
				a, err := doc.AttributeByName(el, name)
				if err != nil || a.ID.IsNull() {
					return err
				}
				_, err = txd.DeleteSubtree(a.ID)
				return err
			})
			return nil
		}
		return opErr("SetAttribute", lock.ErrLockTimeout)
	}
	if err := m.proto.WriteNode(c, existing.ID); err != nil {
		return opErr("SetAttribute", err)
	}
	old, err := m.doc.Value(existing.ID)
	if err != nil {
		return err
	}
	if _, err := txd.SetAttribute(el, name, value); err != nil {
		return err
	}
	t.PushUndo(func() error { return txd.SetValue(existing.ID, old) })
	return nil
}

// DeleteSubtree removes the node and its whole subtree.
func (m *Manager) DeleteSubtree(t *tx.Txn, id splid.ID) error {
	if err := m.checkWrite(t, "DeleteSubtree"); err != nil {
		return err
	}
	defer t.EndOperation()
	left, err := m.doc.PrevSibling(id)
	if err != nil {
		return err
	}
	right, err := m.doc.NextSibling(id)
	if err != nil {
		return err
	}
	if err := m.proto.DeleteTree(m.ctx(t), id, left.ID, right.ID); err != nil {
		return opErr("DeleteSubtree", err)
	}
	// Capture the victim records for physical undo before removal.
	var victims []xmlmodel.Node
	if err := m.doc.ScanSubtree(id, func(n xmlmodel.Node) bool {
		victims = append(victims, n)
		return true
	}); err != nil {
		return err
	}
	if len(victims) == 0 {
		return fmt.Errorf("node: DeleteSubtree: %w", storage.ErrNodeNotFound)
	}
	if _, err := m.doc.ForTx(t.ID()).DeleteSubtree(id); err != nil {
		return err
	}
	txd := m.doc.ForTx(t.ID())
	t.PushUndo(func() error { return txd.RestoreSubtree(victims) })
	return nil
}

// ReadFragmentForUpdate reads the subtree under id like ReadFragment but
// declares update intent: protocols with update modes (URIX's U, taDOM's
// SU) serialize intending writers up front, which prevents the symmetric
// read-then-convert deadlocks the paper attributes to lock conversion.
func (m *Manager) ReadFragmentForUpdate(t *tx.Txn, id splid.ID, jump bool) ([]xmlmodel.Node, error) {
	if err := m.checkWrite(t, "ReadFragmentForUpdate"); err != nil {
		return nil, err
	}
	defer t.EndOperation()
	acc := protocol.Navigate
	if jump {
		acc = protocol.Jump
	}
	if err := m.proto.UpdateTree(m.ctx(t), id, acc); err != nil {
		return nil, opErr("ReadFragmentForUpdate", err)
	}
	var out []xmlmodel.Node
	err := m.doc.ScanSubtree(id, func(n xmlmodel.Node) bool {
		out = append(out, n)
		return true
	})
	return out, err
}

// UpdateLastChildFragment navigates to the last child of id and reads its
// whole subtree with *declared update intent in one step*: the traversed
// edge is share-locked, then the target subtree is locked in the protocol's
// update mode (SU/U) directly — without first taking a node read lock that
// would make the update request conflict with other intending writers'
// reads. This is how a transaction that knows it will modify the fragment
// avoids the read-then-convert deadlock altogether.
func (m *Manager) UpdateLastChildFragment(t *tx.Txn, id splid.ID) (xmlmodel.Node, []xmlmodel.Node, error) {
	if err := m.checkWrite(t, "UpdateLastChildFragment"); err != nil {
		return xmlmodel.Node{}, nil, err
	}
	defer t.EndOperation()
	c := m.ctx(t)
	if err := m.proto.ReadEdge(c, id, protocol.EdgeLastChild); err != nil {
		return xmlmodel.Node{}, nil, opErr("UpdateLastChildFragment", err)
	}
	n, err := m.doc.LastChild(id)
	if err != nil || n.ID.IsNull() {
		return n, nil, err
	}
	if err := m.proto.UpdateTree(c, n.ID, protocol.Navigate); err != nil {
		return xmlmodel.Node{}, nil, opErr("UpdateLastChildFragment", err)
	}
	var frag []xmlmodel.Node
	err = m.doc.ScanSubtree(n.ID, func(fn xmlmodel.Node) bool {
		frag = append(frag, fn)
		return true
	})
	return n, frag, err
}
