package node

import (
	"errors"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/tx"
)

// TestLockTimeoutAbortLeavesNoResidue covers the ErrLockTimeout path end to
// end: a blocked request under a short timeout returns the error, the
// timeout counter increments, and the aborting victim leaves nothing behind
// in the lock table while the winner keeps working.
func TestLockTimeoutAbortLeavesNoResidue(t *testing.T) {
	m := newLibraryTimeout(t, "taDOM3+", -1, 50*time.Millisecond)
	lm := m.LockManager()

	holder := m.Begin(tx.LevelRepeatable)
	topic, err := m.JumpToID(holder, "t-0")
	if err != nil {
		t.Fatal(err)
	}
	// The rename's exclusive lock blocks any second writer on the node.
	if err := m.Rename(holder, topic.ID, "held-topic"); err != nil {
		t.Fatal(err)
	}

	victim := m.Begin(tx.LevelRepeatable)
	start := time.Now()
	err = m.Rename(victim, topic.ID, "wanted-topic")
	if !errors.Is(err, lock.ErrLockTimeout) {
		t.Fatalf("blocked rename returned %v, want ErrLockTimeout", err)
	}
	if !IsAbortWorthy(err) {
		t.Error("lock timeout must be abort-worthy")
	}
	if waited := time.Since(start); waited < 40*time.Millisecond {
		t.Errorf("request returned after %v, before the 50ms timeout", waited)
	}
	if got := lm.Stats().Timeouts; got != 1 {
		t.Errorf("Stats().Timeouts = %d, want 1", got)
	}

	victimLtx := victim.LockTx()
	if err := victim.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	// The aborted victim must hold nothing — neither grants (the intention
	// locks it acquired on the way down) nor queued requests.
	if n := lm.HeldCount(victimLtx); n != 0 {
		t.Errorf("aborted victim still holds %d locks", n)
	}
	if lm.Waiting(victimLtx) {
		t.Error("aborted victim still queued")
	}

	// The holder is unaffected and finishes normally.
	if err := m.Rename(holder, topic.ID, "final-topic"); err != nil {
		t.Errorf("holder rename after victim abort: %v", err)
	}
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := lm.LeakCheck(); err != nil {
		t.Errorf("leak audit: %v", err)
	}
}

// newLibraryTimeout is newLibrary with a configurable lock timeout.
func newLibraryTimeout(t testing.TB, protoName string, depth int, timeout time.Duration) *Manager {
	t.Helper()
	m := newLibrary(t, protoName, depth)
	m2 := New(m.Document(), m.Protocol(), Options{Depth: depth, LockTimeout: timeout})
	t.Cleanup(m2.Close)
	return m2
}
