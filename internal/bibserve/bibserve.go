// Package bibserve glues the TaMix bib document generator to the xtcd
// server: the engine factory that cmd/xtcd and the loopback test harnesses
// share. Each protocol a session names gets its own freshly generated bib
// document under its own lock manager — protocols have different mode
// tables, so a document is never shared across them.
package bibserve

import (
	"time"

	"repro/internal/node"
	"repro/internal/pagestore"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/tamix"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Options configure the engines a factory builds.
type Options struct {
	// Bib sizes each engine's document (tamix.DefaultBibConfig when the
	// Topics field is zero — the zero BibConfig is invalid).
	Bib tamix.BibConfig
	// LockTimeout bounds lock waits in each engine (5s when zero).
	LockTimeout time.Duration
	// CheckpointInterval, when > 0, attaches an in-memory WAL to each
	// engine's document and has the flusher take fuzzy checkpoints at this
	// cadence (segment GC rides along, bounding log growth).
	CheckpointInterval time.Duration
	// WALRetain caps how many newest segments checkpoint GC keeps
	// (wal.DefaultRetain when 0). Only meaningful with CheckpointInterval.
	WALRetain int
}

// NewEngineFactory returns the server.Config.NewEngine implementation: build
// a bib document and node manager for the protocol. The engine's stats are
// served over the wire (OpStats), so engines take no registry — the server's
// own registry holds only the server.* instruments and stays free of
// per-protocol collisions.
func NewEngineFactory(opts Options) func(p protocol.Protocol, depth int) (*server.Engine, error) {
	if opts.Bib.Topics == 0 {
		opts.Bib = tamix.DefaultBibConfig()
	}
	if opts.LockTimeout <= 0 {
		opts.LockTimeout = 5 * time.Second
	}
	if opts.CheckpointInterval > 0 {
		opts.Bib.CheckpointInterval = opts.CheckpointInterval
	}
	return func(p protocol.Protocol, depth int) (*server.Engine, error) {
		doc, cat, err := tamix.GenerateBib(pagestore.NewMemBackend(), opts.Bib)
		if err != nil {
			return nil, err
		}
		closeFn := doc.Close
		var log *wal.Log
		// The snapshot contestant needs a WAL even when checkpointing is off:
		// commit LSNs are what its read snapshots pin.
		if opts.CheckpointInterval > 0 || protocol.UsesSnapshotReads(p) {
			log, err = wal.Open(wal.NewMemSegmentStore(), wal.Config{Retain: opts.WALRetain})
			if err != nil {
				doc.Close()
				return nil, err
			}
			if err := doc.AttachWAL(log); err != nil {
				doc.Close()
				return nil, err
			}
			closeFn = func() error {
				err := doc.Close()
				if cerr := log.Close(); err == nil {
					err = cerr
				}
				return err
			}
		}
		mgr := node.New(doc, p, node.Options{Depth: depth, LockTimeout: opts.LockTimeout})
		if log != nil {
			mgr.TxManager().SetWAL(log)
			// A WAL-backed engine can serve tx.LevelSnapshot sessions: page
			// versions pin commit-LSN snapshots for lock-free reads.
			mgr.EnableSnapshotReads()
		}
		return &server.Engine{
			Mgr: mgr,
			Catalog: wire.Catalog{
				Books:   cat.BookIDs,
				Topics:  cat.TopicIDs,
				Persons: cat.PersonIDs,
			},
			CloseFn: closeFn,
		}, nil
	}
}

// Start launches a loopback xtcd for tests and harnesses: listen on an
// ephemeral port, serve in the background, return the running server. The
// caller shuts it down with Shutdown.
func Start(opts Options, cfg server.Config) (*server.Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	cfg.NewEngine = NewEngineFactory(opts)
	srv, err := server.Listen(cfg)
	if err != nil {
		return nil, err
	}
	go srv.Serve()
	return srv, nil
}
