package bibserve

import (
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/tamix"
	"repro/internal/tx"
	"repro/internal/wire"
)

// testOptions is the small-document engine configuration the tests share.
func testOptions() Options {
	return Options{Bib: tamix.Scaled(0.03), LockTimeout: 3 * time.Second}
}

func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	srv, err := Start(testOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

// TestLoopbackTaMixAllProtocols is the acceptance smoke: a TaMix run over
// loopback must complete under every registered protocol — per-session
// protocol selection end to end — and pass the server-side Verify and
// LeakCheck audits (tamix.Run fails otherwise).
func TestLoopbackTaMixAllProtocols(t *testing.T) {
	srv := startServer(t, server.Config{})
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := tamix.Run(tamix.Config{
				Protocol:  name,
				Isolation: tx.LevelRepeatable,
				Depth:     7,
				Clients:   1,
				Mix: map[tamix.TxType]int{
					tamix.TAqueryBook:     1,
					tamix.TAchapter:       1,
					tamix.TAlendAndReturn: 2,
					tamix.TArenameTopic:   1,
				},
				Duration:        300 * time.Millisecond,
				WaitAfterCommit: time.Millisecond,
				MaxStartDelay:   2 * time.Millisecond,
				Seed:            42,
				Remote:          srv.Addr(),
				RemoteConns:     2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed == 0 {
				t.Fatal("no transactions committed over loopback")
			}
			if res.LockRequests == 0 {
				t.Fatal("server reported no lock requests — stats plumbing broken")
			}
		})
	}
}

// rawConn drives the wire protocol directly, so tests can die abruptly
// mid-transaction — something the polite client package never does.
type rawConn struct {
	t    *testing.T
	nc   net.Conn
	req  uint32
	sess uint32
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return &rawConn{t: t, nc: nc}
}

// send writes one frame without waiting for the response.
func (r *rawConn) send(op wire.Op, body []byte) {
	r.t.Helper()
	r.req++
	payload := wire.AppendMsg(nil, wire.Msg{Op: op, Session: r.sess, Req: r.req, Body: body})
	if err := wire.WriteFrame(r.nc, payload); err != nil {
		r.t.Fatalf("%s: write: %v", op, err)
	}
}

// call round-trips one request and requires StatusOK.
func (r *rawConn) call(op wire.Op, body []byte) []byte {
	r.t.Helper()
	r.send(op, body)
	payload, err := wire.ReadFrame(r.nc)
	if err != nil {
		r.t.Fatalf("%s: read: %v", op, err)
	}
	m, err := wire.DecodeMsg(payload)
	if err != nil {
		r.t.Fatalf("%s: decode: %v", op, err)
	}
	if len(m.Body) == 0 || wire.Status(m.Body[0]) != wire.StatusOK {
		r.t.Fatalf("%s: status %s (%s)", op, wire.Status(m.Body[0]),
			wire.NewReader(m.Body[1:]).String())
	}
	return m.Body[1:]
}

// open creates a session and targets subsequent requests at it.
func (r *rawConn) open(proto string) {
	r.t.Helper()
	resp := r.call(wire.OpOpenSession, wire.AppendOpenSession(nil, wire.OpenSession{
		Protocol: proto, Isolation: uint8(tx.LevelRepeatable), Depth: 7,
	}))
	rd := wire.NewReader(resp)
	r.sess = uint32(rd.Uvarint())
	if err := rd.Err(); err != nil {
		r.t.Fatal(err)
	}
}

// TestAbruptDisconnectMidTransaction kills a client that holds write locks
// inside an open transaction. The server must abort the transaction and
// release its locks: a second session then acquires the same lock well
// within the lock timeout, and the post-run audits pass.
func TestAbruptDisconnectMidTransaction(t *testing.T) {
	const proto = "taDOM3+"
	srv := startServer(t, server.Config{})

	victim := dialRaw(t, srv.Addr())
	victim.open(proto)
	cat := func() wire.Catalog {
		rd := wire.NewReader(victim.call(wire.OpCatalog, nil))
		c := rd.Catalog()
		if err := rd.Err(); err != nil {
			t.Fatal(err)
		}
		return c
	}()
	victim.call(wire.OpBegin, nil)
	rd := wire.NewReader(victim.call(wire.OpJumpToID, wire.AppendString(nil, cat.Books[0])))
	book := rd.Node()
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	// Write inside the open transaction: the X lock is now held.
	victim.call(wire.OpSetAttribute,
		wire.AppendBytes(wire.AppendString(wire.AppendID(nil, book.ID), "flag"), []byte("dirty")))
	// Die without commit, abort, or session close.
	victim.nc.Close()

	// A healthy session must be able to take the same lock: the server's
	// teardown aborted the orphan and released it. The 3s engine lock
	// timeout is the failure detector — a leaked lock fails this call.
	pool, err := client.Dial(srv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sess, err := pool.OpenSession(proto, tx.LevelRepeatable, 7)
	if err != nil {
		t.Fatal(err)
	}
	txn, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetAttribute(book.ID, "flag", []byte("clean")); err != nil {
		t.Fatalf("lock not released after abrupt disconnect: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// The victim's write must have been rolled back, not committed.
	txn2, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	v, err := sess.AttributeValue(book.ID, "flag")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "clean" {
		t.Fatalf("attribute = %q, want the committed value (orphan write rolled back)", v)
	}
	if err := txn2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// Document integrity and lock-table residue, checked server-side.
	if err := pool.Audit(proto); err != nil {
		t.Fatalf("post-disconnect audit: %v", err)
	}
}

// TestDisconnectCancelsPendingLockWait pins the context-cancellation path:
// a session whose request is WAITING in the lock queue disconnects, and the
// pending request must stop waiting immediately — observable as the lock
// manager's Canceled counter — rather than sit until timeout or grant.
func TestDisconnectCancelsPendingLockWait(t *testing.T) {
	const proto = "URIX"
	// Wrap the factory to capture the engine for white-box lock inspection.
	var mu sync.Mutex
	engines := map[string]*server.Engine{}
	fac := NewEngineFactory(testOptions())
	cfg := server.Config{
		Addr: "127.0.0.1:0",
		NewEngine: func(p protocol.Protocol, depth int) (*server.Engine, error) {
			eng, err := fac(p, depth)
			if err == nil {
				mu.Lock()
				engines[p.Name()] = eng
				mu.Unlock()
			}
			return eng, err
		},
	}
	srv, err := server.Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})

	holder := dialRaw(t, srv.Addr())
	holder.open(proto)
	cat := func() wire.Catalog {
		rd := wire.NewReader(holder.call(wire.OpCatalog, nil))
		c := rd.Catalog()
		return c
	}()
	holder.call(wire.OpBegin, nil)
	rd := wire.NewReader(holder.call(wire.OpJumpToID, wire.AppendString(nil, cat.Books[1])))
	book := rd.Node()
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	holder.call(wire.OpSetAttribute,
		wire.AppendBytes(wire.AppendString(wire.AppendID(nil, book.ID), "held"), []byte("x")))

	mu.Lock()
	eng := engines[proto]
	mu.Unlock()
	if eng == nil {
		t.Fatal("engine not captured")
	}
	lm := eng.Mgr.LockManager()
	baseWaits := lm.Stats().Waits

	// The waiter requests a conflicting write and blocks in the lock queue.
	waiter := dialRaw(t, srv.Addr())
	waiter.open(proto)
	waiter.call(wire.OpBegin, nil)
	waiter.send(wire.OpSetAttribute,
		wire.AppendBytes(wire.AppendString(wire.AppendID(nil, book.ID), "held"), []byte("y")))

	deadline := time.Now().Add(5 * time.Second)
	for lm.Stats().Waits == baseWaits {
		if time.Now().After(deadline) {
			t.Fatal("waiter never blocked in the lock queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the waiter while its request is pending. The holder still holds
	// the lock, so only context cancellation can end that wait.
	waiter.nc.Close()
	for lm.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pending lock wait was not canceled by the disconnect")
		}
		time.Sleep(time.Millisecond)
	}

	// The holder finishes normally; afterwards the table must be clean.
	holder.call(wire.OpCommit, nil)
	holder.call(wire.OpCloseSession, nil)
	for !time.Now().After(deadline) {
		if lm.LeakCheck() == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := lm.LeakCheck(); err != nil {
		t.Fatalf("lock residue after canceled wait: %v", err)
	}
	if err := eng.Mgr.Document().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestServerMetricsSnapshotGolden drives a fixed request sequence and pins
// the server.* counter snapshot as JSON — the admission and traffic counters
// are deterministic even though latencies are not.
func TestServerMetricsSnapshotGolden(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := startServer(t, server.Config{MaxSessions: 1, Metrics: reg})

	c := dialRaw(t, srv.Addr())
	defer c.nc.Close()
	c.call(wire.OpPing, []byte("hi"))
	c.open("taDOM2")

	// Second open must be rejected by admission control (MaxSessions: 1).
	rejected := dialRaw(t, srv.Addr())
	defer rejected.nc.Close()
	rejected.send(wire.OpOpenSession, wire.AppendOpenSession(nil, wire.OpenSession{
		Protocol: "taDOM2", Isolation: uint8(tx.LevelRepeatable), Depth: 7,
	}))
	payload, err := wire.ReadFrame(rejected.nc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wire.DecodeMsg(payload)
	if err != nil {
		t.Fatal(err)
	}
	if wire.Status(m.Body[0]) != wire.StatusBusy {
		t.Fatalf("over-limit open: status %s, want busy", wire.Status(m.Body[0]))
	}

	c.call(wire.OpBegin, nil)
	c.call(wire.OpCommit, nil)
	c.call(wire.OpCloseSession, nil)
	c.sess = 0

	snap := reg.Snapshot()
	got := struct {
		Accepted    uint64 `json:"sessions_accepted"`
		Active      int64  `json:"sessions_active"`
		Rejected    uint64 `json:"sessions_rejected"`
		BusyRejects uint64 `json:"busy_rejects"`
		QueueDepth  int64  `json:"queue_depth"`
		Conns       int64  `json:"conns_active"`
		Requests    uint64 `json:"requests"`
	}{
		Accepted:    snap.Counters["server.sessions_accepted"],
		Active:      snap.Gauges["server.sessions_active"],
		Rejected:    snap.Counters["server.sessions_rejected"],
		BusyRejects: snap.Counters["server.busy_rejects"],
		QueueDepth:  snap.Gauges["server.queue_depth"],
		Conns:       snap.Gauges["server.conns_active"],
		Requests:    snap.Counters["server.requests"],
	}
	b, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "sessions_accepted": 1,
  "sessions_active": 0,
  "sessions_rejected": 1,
  "busy_rejects": 0,
  "queue_depth": 0,
  "conns_active": 2,
  "requests": 6
}`
	if string(b) != golden {
		t.Errorf("metrics snapshot mismatch:\ngot:\n%s\nwant:\n%s", b, golden)
	}
	// Request latencies were recorded even though their values float.
	if n := snap.Hist("server.request_ns").Count; n == 0 {
		t.Error("no request latencies recorded")
	}
}
