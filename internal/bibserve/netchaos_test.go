package bibserve

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultconn"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/server"
	"repro/internal/tamix"
	"repro/internal/tx"
	"repro/internal/wire"
)

// The netchaos suite (make netchaos) exercises the connection-lifecycle
// resilience layer end to end: server keep-alives and the idle-session
// reaper on one side, the client's redial/resume machinery on the other,
// and seeded network-fault injection across both. Every server started
// here passes LeakCheck at shutdown (startServer's cleanup), so "zero lock
// residue" is asserted structurally in every test.

// callStatus round-trips one request and returns the raw status — for
// requests that are supposed to fail.
func (r *rawConn) callStatus(op wire.Op, body []byte) wire.Status {
	r.t.Helper()
	r.send(op, body)
	payload, err := wire.ReadFrame(r.nc)
	if err != nil {
		r.t.Fatalf("%s: read: %v", op, err)
	}
	m, err := wire.DecodeMsg(payload)
	if err != nil {
		r.t.Fatalf("%s: decode: %v", op, err)
	}
	if len(m.Body) == 0 {
		r.t.Fatalf("%s: empty response body", op)
	}
	return wire.Status(m.Body[0])
}

// catalog fetches the engine catalog through a raw connection.
func (r *rawConn) catalog() wire.Catalog {
	r.t.Helper()
	rd := wire.NewReader(r.call(wire.OpCatalog, nil))
	c := rd.Catalog()
	if err := rd.Err(); err != nil {
		r.t.Fatal(err)
	}
	return c
}

// counterAtLeast polls the server registry until the counter reaches want.
func counterAtLeast(t *testing.T, srv *server.Server, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := srv.Metrics().Snapshot().Counters[name]; got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %d (now %d)",
				name, want, srv.Metrics().Snapshot().Counters[name])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNetChaosKeepAliveClosesSilentConn: a connection that goes silent
// mid-transaction (no heartbeats, no requests) while holding an X lock must
// be closed after KeepAliveInterval×KeepAliveMisses, counted in
// server.heartbeat_misses, and its locks released so a healthy client
// acquires them well inside the engine lock timeout.
func TestNetChaosKeepAliveClosesSilentConn(t *testing.T) {
	const proto = "taDOM2"
	srv := startServer(t, server.Config{
		KeepAliveInterval: 50 * time.Millisecond,
		KeepAliveMisses:   2,
	})

	// Warm the engine through a heartbeating client first: building the
	// document takes longer than the aggressive 100ms keep-alive window, and
	// only a client that heartbeats through the build survives it. The raw
	// victim below then rides the cached engine between its (fast) calls.
	warm, err := client.Dial(srv.Addr(), client.Options{HeartbeatInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	wsess, err := warm.OpenSession(proto, tx.LevelRepeatable, 7)
	if err != nil {
		t.Fatal(err)
	}
	wsess.Close()
	warm.Close()

	victim := dialRaw(t, srv.Addr())
	victim.open(proto)
	cat := victim.catalog()
	victim.call(wire.OpBegin, nil)
	rd := wire.NewReader(victim.call(wire.OpJumpToID, wire.AppendString(nil, cat.Books[0])))
	book := rd.Node()
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	victim.call(wire.OpSetAttribute,
		wire.AppendBytes(wire.AppendString(wire.AppendID(nil, book.ID), "flag"), []byte("stalled")))

	// Go silent: no heartbeats, no requests. The server's keep-alive window
	// (100ms) must fire and tear the connection down.
	counterAtLeast(t, srv, "server.heartbeat_misses", 1)

	// The victim's X lock must be free for a live client (which heartbeats
	// fast enough to survive the aggressive keep-alive policy itself).
	pool, err := client.Dial(srv.Addr(), client.Options{HeartbeatInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sess, err := pool.OpenSession(proto, tx.LevelRepeatable, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	txn, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetAttribute(book.ID, "flag", []byte("live")); err != nil {
		t.Fatalf("lock not released after keep-alive kill: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestNetChaosReaperFreesIdleSessionLocks: a session idle past
// SessionIdleTimeout is reaped — transaction aborted, locks released, slot
// freed, server.reaped_sessions counted — even though its connection stays
// up (conn-scoped heartbeats keep the keep-alive window renewed but do not
// touch the session's idle clock). The connection survives; the session is
// gone (StatusNoSession).
func TestNetChaosReaperFreesIdleSessionLocks(t *testing.T) {
	const proto = "taDOM3+"
	srv := startServer(t, server.Config{
		SessionIdleTimeout: 200 * time.Millisecond,
	})

	victim := dialRaw(t, srv.Addr())
	victim.open(proto)
	sessID := victim.sess
	cat := victim.catalog()
	victim.call(wire.OpBegin, nil)
	rd := wire.NewReader(victim.call(wire.OpJumpToID, wire.AppendString(nil, cat.Books[0])))
	book := rd.Node()
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	victim.call(wire.OpSetAttribute,
		wire.AppendBytes(wire.AppendString(wire.AppendID(nil, book.ID), "flag"), []byte("idle")))

	// Keep the connection demonstrably alive with conn-scoped heartbeats
	// while the session idles into the reaper's cutoff.
	stop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		hb := dialRaw(t, srv.Addr()) // separate conn: rawConn is not concurrency-safe
		defer hb.nc.Close()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				hb.call(wire.OpPing, nil)
			}
		}
	}()
	victim.sess = 0
	for i := 0; i < 20; i++ { // conn-level heartbeats on the victim conn itself
		victim.call(wire.OpHeartbeat, nil)
		time.Sleep(25 * time.Millisecond)
	}
	victim.sess = sessID
	close(stop)
	hbWG.Wait()

	counterAtLeast(t, srv, "server.reaped_sessions", 1)

	// Connection alive, session gone.
	victim.sess = 0
	victim.call(wire.OpPing, nil)
	victim.sess = sessID
	if st := victim.callStatus(wire.OpGetNode, wire.AppendID(nil, book.ID)); st != wire.StatusNoSession {
		t.Fatalf("op on reaped session: status %s, want %s", st, wire.StatusNoSession)
	}

	// And the reaped session's X lock must be free.
	pool, err := client.Dial(srv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sess, err := pool.OpenSession(proto, tx.LevelRepeatable, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	txn, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetAttribute(book.ID, "flag", []byte("fresh")); err != nil {
		t.Fatalf("lock not released after reap: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestNetChaosClientKillMidBurst kills a fleet of clients abruptly in the
// middle of write bursts — open transactions, held X locks, frames possibly
// half-consumed. The server must tear every session down (sessions_active
// returns to zero) and leave zero lock residue: a survivor then writes to
// every contested book and the server-side audit passes.
func TestNetChaosClientKillMidBurst(t *testing.T) {
	const proto = "taDOM2+"
	const clients = 4
	srv := startServer(t, server.Config{})

	var books []wire.Catalog
	raws := make([]*rawConn, clients)
	for i := range raws {
		raws[i] = dialRaw(t, srv.Addr())
		raws[i].open(proto)
		books = append(books, raws[i].catalog())
	}
	var wg sync.WaitGroup
	for i, r := range raws {
		wg.Add(1)
		go func(i int, r *rawConn) {
			defer wg.Done()
			r.call(wire.OpBegin, nil)
			rd := wire.NewReader(r.call(wire.OpJumpToID, wire.AppendString(nil, books[i].Books[i])))
			book := rd.Node()
			if err := rd.Err(); err != nil {
				t.Error(err)
				return
			}
			for n := 0; n < 20; n++ {
				r.call(wire.OpSetAttribute,
					wire.AppendBytes(wire.AppendString(wire.AppendID(nil, book.ID), "burst"), []byte{byte(n)}))
			}
			r.nc.Close() // die mid-burst: no commit, no abort, no close
		}(i, r)
	}
	wg.Wait()

	// Every orphaned session must be torn down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.Metrics().Snapshot().Gauges["server.sessions_active"] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions_active stuck at %d after client kill",
				srv.Metrics().Snapshot().Gauges["server.sessions_active"])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Zero residue: a survivor locks every contested book, and the
	// server-side Verify+LeakCheck audit passes.
	pool, err := client.Dial(srv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sess, err := pool.OpenSession(proto, tx.LevelRepeatable, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	txn, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < clients; i++ {
		n, err := sess.JumpToID(books[i].Books[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.SetAttribute(n.ID, "burst", []byte("survivor")); err != nil {
			t.Fatalf("book %d lock leaked: %v", i, err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Audit(proto); err != nil {
		t.Fatalf("post-kill audit: %v", err)
	}
}

// TestNetChaosSessionResumeAbortWorthy cuts a session's connection out from
// under it mid-transaction. The next operation must (a) fail with an error
// that satisfies node.IsAbortWorthy and wraps ErrConnLost, (b) leave the
// session transparently resumed — the follow-up abort succeeds and a fresh
// transaction commits — and (c) count one reconnect and at least one redial.
func TestNetChaosSessionResumeAbortWorthy(t *testing.T) {
	const proto = "taDOM3"
	srv := startServer(t, server.Config{})

	var connMu sync.Mutex
	var conns []net.Conn
	reg := metrics.NewRegistry()
	pool, err := client.Dial(srv.Addr(), client.Options{
		Metrics: reg,
		Dialer: func(addr string, timeout time.Duration) (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", addr, timeout)
			if err == nil {
				connMu.Lock()
				conns = append(conns, nc)
				connMu.Unlock()
			}
			return nc, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	sess, err := pool.OpenSession(proto, tx.LevelRepeatable, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	cat, err := sess.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	txn, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	book, err := sess.JumpToID(cat.Books[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetAttribute(book.ID, "flag", []byte("before-cut")); err != nil {
		t.Fatal(err)
	}

	// Cut the wire under the session.
	connMu.Lock()
	for _, nc := range conns {
		nc.Close()
	}
	connMu.Unlock()

	_, err = sess.JumpToID(cat.Books[0])
	if err == nil {
		t.Fatal("operation across a cut connection succeeded")
	}
	if !errors.Is(err, client.ErrConnLost) {
		t.Fatalf("want ErrConnLost in chain, got %v", err)
	}
	if !node.IsAbortWorthy(err) {
		t.Fatalf("connection-loss error is not abort-worthy: %v", err)
	}
	// The restart loop's next moves must both work: abort the lost
	// transaction (vacuously — the resumed session has no transaction, which
	// surfaces as ErrNotActive exactly like a local double-finish, the case
	// TaMix's restart loop already tolerates), then run it again.
	if err := txn.Abort(); err != nil && !errors.Is(err, tx.ErrNotActive) {
		t.Fatalf("abort after resume: %v", err)
	}
	txn, err = sess.Begin()
	if err != nil {
		t.Fatalf("begin on resumed session: %v", err)
	}
	if err := sess.SetAttribute(book.ID, "flag", []byte("after-cut")); err != nil {
		t.Fatalf("write on resumed session: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Counters["client.reconnects"] < 1 {
		t.Fatalf("client.reconnects = %d, want >= 1", snap.Counters["client.reconnects"])
	}
	if snap.Counters["client.redials"] < 1 {
		t.Fatalf("client.redials = %d, want >= 1", snap.Counters["client.redials"])
	}
	if err := pool.Audit(proto); err != nil {
		t.Fatalf("post-resume audit: %v", err)
	}
}

// TestNetChaosServerRestartUnderTaMixLoad bounces the server in the middle
// of a 16-connection TaMix run. The client fleet must ride the bounce:
// every session redials and resumes against the replacement server, only
// in-flight transactions abort (absorbed by the restart loop as restart
// counters, not run errors), and the run finishes with commits and a clean
// server-side audit.
func TestNetChaosServerRestartUnderTaMixLoad(t *testing.T) {
	const proto = "taDOM3+"
	srv1, err := Start(testOptions(), server.Config{DrainTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()

	reg := metrics.NewRegistry()
	cfg := tamix.Config{
		Protocol:  proto,
		Isolation: tx.LevelRepeatable,
		Depth:     7,
		Clients:   4,
		Mix: map[tamix.TxType]int{
			tamix.TAqueryBook:     1,
			tamix.TAchapter:       1,
			tamix.TAlendAndReturn: 1,
			tamix.TArenameTopic:   1,
		}, // 16 slots = 16 sessions over 16 connections
		Duration:        4 * time.Second,
		WaitAfterCommit: time.Millisecond,
		MaxStartDelay:   5 * time.Millisecond,
		MaxRestarts:     50, // a bounce aborts every in-flight txn at once
		Seed:            7,
		Remote:          addr,
		RemoteConns:     16,
		Metrics:         reg,
	}
	type runOut struct {
		res *tamix.Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := tamix.Run(cfg)
		done <- runOut{res, err}
	}()

	// Let the fleet get properly in flight, then bounce the server.
	time.Sleep(1 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("first server shutdown not clean: %v", err)
	}
	cancel()

	// The replacement must bind the same address (the listener closed at
	// the start of Shutdown, so the port is free).
	var srv2 *server.Server
	for i := 0; ; i++ {
		srv2, err = Start(testOptions(), server.Config{Addr: addr})
		if err == nil {
			break
		}
		if i >= 50 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv2.Shutdown(ctx); err != nil {
			t.Errorf("second server shutdown: %v", err)
		}
	})

	out := <-done
	if out.err != nil {
		t.Fatalf("TaMix run did not absorb the server bounce: %v", out.err)
	}
	res := out.res
	if res.Committed == 0 {
		t.Fatal("no transactions committed across the bounce")
	}
	snap := reg.Snapshot()
	if snap.Counters["client.reconnects"] < 1 {
		t.Fatalf("client.reconnects = %d, want >= 1 (fleet never resumed)",
			snap.Counters["client.reconnects"])
	}
	if snap.Counters["client.redials"] < 1 {
		t.Fatalf("client.redials = %d, want >= 1", snap.Counters["client.redials"])
	}
	// The bounce must cost bounded aborts: at worst every session loses its
	// in-flight transaction once per disruption event (the drain and the
	// cut), plus ordinary deadlock aborts. A leak of "every retry aborts
	// forever" would blow far past this.
	if res.Aborted > 0 && res.Restarts == 0 && res.Dropped == 0 {
		t.Fatalf("aborts (%d) without restarts or drops — restart loop not engaged", res.Aborted)
	}
	t.Logf("across bounce: committed=%d aborted=%d restarts=%d dropped=%d reconnects=%d redials=%d",
		res.Committed, res.Aborted, res.Restarts, res.Dropped,
		snap.Counters["client.reconnects"], snap.Counters["client.redials"])
}

// TestNetChaosFaultyNetworkTaMix runs TaMix through faultconn-wrapped
// connections: seeded corruption, drops, partial writes, and stalls on the
// client→server path while the run is mid-flight. Corrupted frames kill
// connections (the server cannot trust a desynchronized stream), so the
// fleet must redial and resume its way through the weather — the run still
// commits and the post-run server-side audit still passes.
func TestNetChaosFaultyNetworkTaMix(t *testing.T) {
	const proto = "taDOM2"
	// Tight keep-alive: a corrupted length header can poison a connection
	// into a never-completing frame — the server sits in a blocked read that
	// only the keep-alive window (renewed per completed frame) bounds. At
	// the default 90s window one poisoned connection stalls a session for
	// the whole test; at 1.5s the fleet shrugs it off.
	srv := startServer(t, server.Config{
		KeepAliveInterval: 500 * time.Millisecond,
		KeepAliveMisses:   3,
	})

	// Warm the engine through a heartbeating client: the document build is
	// longer than the aggressive keep-alive window, and the TaMix bootstrap
	// session must not be killed mid-build.
	warm, err := client.Dial(srv.Addr(), client.Options{HeartbeatInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	wsess, err := warm.OpenSession(proto, tx.LevelRepeatable, 7)
	if err != nil {
		t.Fatal(err)
	}
	wsess.Close()
	warm.Close()

	inj := faultconn.NewInjector(faultconn.Config{
		Seed:        99,
		DropProb:    0.001,
		PartialProb: 0.001,
		CorruptProb: 0.004,
		StallProb:   0.002,
		Stall:       10 * time.Millisecond,
	})
	var salt atomic.Int64
	reg := metrics.NewRegistry()
	cfg := tamix.Config{
		Protocol:  proto,
		Isolation: tx.LevelRepeatable,
		Depth:     7,
		Clients:   2,
		Mix: map[tamix.TxType]int{
			tamix.TAqueryBook:     1,
			tamix.TAchapter:       1,
			tamix.TAlendAndReturn: 1,
			tamix.TArenameTopic:   1,
		},
		Duration:        3 * time.Second,
		WaitAfterCommit: time.Millisecond,
		MaxStartDelay:   5 * time.Millisecond,
		MaxRestarts:     50,
		Seed:            13,
		Remote:          srv.Addr(),
		RemoteConns:     8,
		Metrics:         reg,
		RemoteClient: client.Options{
			// Heartbeat under the server's keep-alive window so sessions
			// parked in lock queues don't get their (healthy) connections
			// reaped as silent.
			HeartbeatInterval: 100 * time.Millisecond,
			Dialer: func(addr string, timeout time.Duration) (net.Conn, error) {
				nc, err := net.DialTimeout("tcp", addr, timeout)
				if err != nil {
					return nil, err
				}
				return inj.Wrap(nc, salt.Add(1)), nil
			},
		},
	}
	type runOut struct {
		res *tamix.Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := tamix.Run(cfg)
		done <- runOut{res, err}
	}()

	// Arm after the bootstrap (catalog + baseline stats) is done, disarm
	// before the run's deadline so the final audit runs on clean wires.
	time.Sleep(400 * time.Millisecond)
	inj.Arm()
	time.Sleep(1600 * time.Millisecond)
	inj.Disarm()

	out := <-done
	if out.err != nil {
		t.Fatalf("TaMix run did not absorb network faults: %v", out.err)
	}
	if out.res.Committed == 0 {
		t.Fatal("no transactions committed under network faults")
	}
	st := inj.Stats()
	if st.Drops+st.Corruptions+st.Partials+st.Stalls == 0 {
		t.Fatal("fault injector armed but injected nothing — test exercised no chaos")
	}
	if st.Drops+st.Corruptions+st.Partials > 0 {
		if snap := reg.Snapshot(); snap.Counters["client.redials"] < 1 {
			t.Fatalf("connection-killing faults injected (%+v) but client.redials = %d", st,
				snap.Counters["client.redials"])
		}
	}
	t.Logf("faults injected: %+v; committed=%d aborted=%d elapsed=%v",
		st, out.res.Committed, out.res.Aborted, out.res.Elapsed)
}

// commitCut wraps the connections one Dialer hands out: while armed, the
// first OpCommit frame written is either forwarded — and the connection cut
// the moment its response comes back, so the server committed but the
// client never hears it — or cut before the frame leaves, so the commit
// never happened. Exactly the two halves of the classic at-least-once
// commit ambiguity.
type commitCut struct {
	net.Conn
	afterSend bool
	armed     *atomic.Bool
	cut       atomic.Bool
}

func (c *commitCut) Write(b []byte) (int, error) {
	// wire.WriteFrame emits each frame in a single Write call —
	// [u32 len][payload][u32 crc] — so b[4] is the message opcode.
	if len(b) >= 5 && wire.Op(b[4]) == wire.OpCommit && c.armed.CompareAndSwap(true, false) {
		if !c.afterSend {
			c.Conn.Close()
			return 0, errors.New("netchaos: connection cut before commit frame")
		}
		n, err := c.Conn.Write(b)
		c.cut.Store(true)
		return n, err
	}
	return c.Conn.Write(b)
}

func (c *commitCut) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if c.cut.Load() && n > 0 {
		// The commit's response reached the client side of the wire:
		// proof the server processed the commit. Drop it and kill the
		// connection so only the resume's fate report can say what happened.
		c.Conn.Close()
		return 0, errors.New("netchaos: connection cut before commit response")
	}
	return n, err
}

// TestNetChaosResumeCommitFate severs the connection around an OpCommit
// round trip, on both sides of the ambiguity, and demands the resumed
// session report the truth: a commit the server processed before the cut
// returns nil (it landed exactly once — the resume's fate report vouches for
// it), while a commit that never reached the server surfaces the usual
// abort-worthy ErrConnLost error. A fresh transaction then audits the
// document state against the verdict.
func TestNetChaosResumeCommitFate(t *testing.T) {
	const proto = "taDOM3"
	srv := startServer(t, server.Config{})

	for _, tc := range []struct {
		name      string
		afterSend bool
	}{
		{"commit-reached-server", true},
		{"commit-never-sent", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			armed := &atomic.Bool{}
			pool, err := client.Dial(srv.Addr(), client.Options{
				Dialer: func(addr string, timeout time.Duration) (net.Conn, error) {
					nc, err := net.DialTimeout("tcp", addr, timeout)
					if err != nil {
						return nil, err
					}
					return &commitCut{Conn: nc, afterSend: tc.afterSend, armed: armed}, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			sess, err := pool.OpenSession(proto, tx.LevelRepeatable, 7)
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			cat, err := sess.Catalog()
			if err != nil {
				t.Fatal(err)
			}

			// Baseline: a committed attribute value the interrupted write must
			// either replace (fate committed) or leave untouched (fate aborted).
			seed, err := sess.Begin()
			if err != nil {
				t.Fatal(err)
			}
			book, err := sess.JumpToID(cat.Books[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.SetAttribute(book.ID, "fate", []byte("baseline")); err != nil {
				t.Fatal(err)
			}
			if err := seed.Commit(); err != nil {
				t.Fatal(err)
			}

			txn, err := sess.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.SetAttribute(book.ID, "fate", []byte("cut")); err != nil {
				t.Fatal(err)
			}
			armed.Store(true)
			err = txn.Commit()
			want := []byte("baseline")
			if tc.afterSend {
				// The server committed before the cut; the fate report must turn
				// the severed round trip into a clean nil.
				if err != nil {
					t.Fatalf("interrupted-but-landed commit = %v, want nil via fate report", err)
				}
				want = []byte("cut")
			} else {
				// The commit never left the client; the server aborted the
				// transaction at session teardown and the fate report says so.
				if err == nil {
					t.Fatal("commit that never reached the server returned nil")
				}
				if !errors.Is(err, client.ErrConnLost) {
					t.Fatalf("want ErrConnLost in chain, got %v", err)
				}
				if !node.IsAbortWorthy(err) {
					t.Fatalf("unsent-commit error is not abort-worthy: %v", err)
				}
			}

			// The session resumed either way; audit durable state against the
			// verdict from a fresh transaction.
			check, err := sess.Begin()
			if err != nil {
				t.Fatalf("begin on resumed session: %v", err)
			}
			got, err := sess.AttributeValue(book.ID, "fate")
			if err != nil {
				t.Fatalf("read-back on resumed session: %v", err)
			}
			if string(got) != string(want) {
				t.Fatalf("fate attribute = %q, want %q — durable state contradicts the commit verdict", got, want)
			}
			if err := check.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := pool.Audit(proto); err != nil {
				t.Fatalf("post-fate audit: %v", err)
			}
		})
	}
}
