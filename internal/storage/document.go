// Package storage implements XTC's taDOM document store (Sections 3.1-3.2,
// Figure 6): an XML document kept in left-most depth-first (document) order
// in a single B*-tree keyed by encoded SPLIDs, plus an element index (name
// directory with node-reference indexes) and an ID-attribute index for
// direct jumps à la getElementById.
//
// This layer is purely physical: it performs no concurrency control. The
// node manager (package node) wraps every operation in the meta-lock
// requests that the paper's 11 protocols translate into actual locks.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/metrics"
	"repro/internal/pagestore"
	"repro/internal/splid"
	"repro/internal/wal"
	"repro/internal/xmlmodel"
)

// ErrNodeNotFound is returned for SPLIDs that label no stored node.
var ErrNodeNotFound = errors.New("storage: node not found")

// ErrNodeExists is returned when inserting a node under an occupied SPLID.
var ErrNodeExists = errors.New("storage: node already exists")

// IDAttrName is the attribute name treated as an XML ID for the ID index,
// matching the bib document's id attributes used for direct jumps.
const IDAttrName = "id"

// Document is one stored XML document. The embedded reader serves every
// read-only operation over the live trees (see reader.go); the Tree fields
// here are the same trees, kept for the write paths, which need the full
// mutating API.
type Document struct {
	reader

	store *pagestore.Store
	doc   *btree.Tree // SPLID -> node record, document order
	elem  *btree.Tree // name surrogate + SPLID -> nil (element index)
	ids   *btree.Tree // id-attribute value -> element SPLID
	vocab *xmlmodel.Vocabulary
	alloc splid.Allocator

	// roots is the tree-root history for point-in-time snapshots (seeded by
	// AttachWAL, appended by logOp via noteRoots; see reader.go).
	roots rootLog

	mu   sync.RWMutex // guards meta-level state (vocabulary is self-locking)
	size int          // stored node count

	// latch serializes compound structural mutations. Transactional locks
	// above this layer handle isolation; the latch only guarantees physical
	// consistency (a check-then-insert must not interleave with another),
	// which must hold even under isolation level none, where transactions
	// acquire no locks at all.
	latch sync.Mutex

	// Write-ahead logging state, all guarded by latch. wal is nil until
	// AttachWAL; from then on every structural mutation runs inside a page
	// capture and appends one RecOp (see logOp in txdoc.go). Full-image
	// upgrades (the torn-page healing anchor) are tracked per frame by the
	// buffer pool's imaged bit, which resets on every clean transition so a
	// checkpoint-bounded redo scan always finds an image at the page's
	// recLSN. walMeta is the signature of the last logged metadata page
	// content.
	wal     *wal.Log
	walMeta metaSig
}

// Options configure document creation.
type Options struct {
	// Dist is the SPLID labeling gap (splid.DefaultDist when zero).
	Dist uint32
	// BufferFrames sizes the page buffer (pagestore.DefaultFrames if zero).
	BufferFrames int
	// BufferShards requests a page-table shard count
	// (pagestore.DefaultShards if zero; clamped to the pool size).
	BufferShards int
	// FlusherInterval enables the buffer pool's background flusher
	// (disabled if zero).
	FlusherInterval time.Duration
	// CheckpointInterval makes the flusher goroutine take a fuzzy
	// checkpoint on this cadence once a WAL is attached (disabled if
	// zero). Checkpoints bound both restart time and WAL disk usage.
	CheckpointInterval time.Duration
	// RedoShards is the parallelism of recovery's redo pass (Recover
	// partitions pages with the buffer pool's shard map). Zero means
	// DefaultRedoShards; 1 forces serial redo.
	RedoShards int
	// Metrics, when non-nil, receives the buffer pool's instruments (the
	// buffer.* namespace); run harnesses pass one registry through every
	// layer so the run report is a single document.
	Metrics *metrics.Registry
}

// bufferConfig translates the options into a pagestore configuration.
func (o Options) bufferConfig() pagestore.Config {
	return pagestore.Config{
		Frames:             o.BufferFrames,
		Shards:             o.BufferShards,
		FlusherInterval:    o.FlusherInterval,
		CheckpointInterval: o.CheckpointInterval,
		Metrics:            o.Metrics,
	}
}

// Create builds an empty document (just the root element, named rootName)
// on the given backend.
func Create(backend pagestore.Backend, rootName string, opts Options) (*Document, error) {
	store := pagestore.OpenConfig(backend, opts.bufferConfig())
	// Reserve page 0 for the metadata page before any tree allocates it.
	if store.Backend().NumPages() == 0 {
		meta, err := store.FixNew()
		if err != nil {
			return nil, err
		}
		store.Unfix(meta)
	}
	doc, err := btree.Create(store)
	if err != nil {
		return nil, err
	}
	elem, err := btree.Create(store)
	if err != nil {
		return nil, err
	}
	ids, err := btree.Create(store)
	if err != nil {
		return nil, err
	}
	d := &Document{
		store: store,
		doc:   doc,
		elem:  elem,
		ids:   ids,
		vocab: xmlmodel.NewVocabulary(),
		alloc: splid.Allocator{Dist: opts.Dist},
	}
	d.reader = liveReader(doc, elem, ids, d.vocab)
	sur, err := d.vocab.Intern(rootName)
	if err != nil {
		return nil, err
	}
	root := xmlmodel.Node{ID: splid.Root(), Kind: xmlmodel.KindElement, Name: sur}
	if err := d.insertRaw(root); err != nil {
		return nil, err
	}
	return d, nil
}

// Close writes the metadata page, flushes, and closes the underlying store.
func (d *Document) Close() error {
	if err := d.writeMeta(); err != nil {
		d.store.Close()
		return err
	}
	return d.store.Close()
}

// Vocabulary exposes the document's name vocabulary.
func (d *Document) Vocabulary() *xmlmodel.Vocabulary { return d.vocab }

// Allocator exposes the document's SPLID allocator.
func (d *Document) Allocator() splid.Allocator { return d.alloc }

// Store exposes the buffer manager (statistics, tooling).
func (d *Document) Store() *pagestore.Store { return d.store }

// Root returns the root element's SPLID.
func (d *Document) Root() splid.ID { return splid.Root() }

// Size returns the number of stored nodes (all kinds).
func (d *Document) Size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.size
}

// insertRaw stores a node and maintains the secondary indexes. The parent
// must already exist: under isolation level none no locks prevent a racing
// subtree delete, and an orphan insert must fail rather than corrupt the
// tree.
func (d *Document) insertRaw(n xmlmodel.Node) error {
	key := n.ID.Encode()
	if ok, err := d.doc.Has(key); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %v", ErrNodeExists, n.ID)
	}
	if parent := n.ID.Parent(); !parent.IsNull() {
		if ok, err := d.doc.Has(parent.Encode()); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("%w: parent %v of %v", ErrNodeNotFound, parent, n.ID)
		}
	}
	if err := d.doc.Insert(key, xmlmodel.EncodeRecord(n)); err != nil {
		return err
	}
	if n.Kind == xmlmodel.KindElement {
		if err := d.elem.Insert(elemKey(n.Name, n.ID), nil); err != nil {
			return err
		}
	}
	d.mu.Lock()
	d.size++
	d.mu.Unlock()
	return nil
}

// deleteRaw removes a node and its index entries. The caller is responsible
// for subtree consistency.
func (d *Document) deleteRaw(n xmlmodel.Node) error {
	if err := d.doc.Delete(n.ID.Encode()); err != nil {
		return err
	}
	if n.Kind == xmlmodel.KindElement {
		if err := d.elem.Delete(elemKey(n.Name, n.ID)); err != nil && err != btree.ErrNotFound {
			return err
		}
	}
	d.mu.Lock()
	d.size--
	d.mu.Unlock()
	return nil
}

// elemKey builds the element-index composite key: surrogate, then SPLID.
func elemKey(sur xmlmodel.Sur, id splid.ID) []byte {
	key := make([]byte, 2, 2+id.EncodedLen())
	binary.BigEndian.PutUint16(key, uint16(sur))
	return id.AppendEncode(key)
}

// InsertElement adds an element node labeled id, attributed to the system
// transaction. Transactional callers use ForTx.
func (d *Document) InsertElement(id splid.ID, name string) (xmlmodel.Node, error) {
	return d.ForTx(SystemTxn).InsertElement(id, name)
}

func (d *Document) insertElementLocked(id splid.ID, name string) (xmlmodel.Node, error) {
	sur, err := d.vocab.Intern(name)
	if err != nil {
		return xmlmodel.Node{}, err
	}
	n := xmlmodel.Node{ID: id, Kind: xmlmodel.KindElement, Name: sur}
	return n, d.insertRaw(n)
}

// InsertText adds a text node labeled id with the given character data (a
// string node child is created automatically, taDOM-style).
func (d *Document) InsertText(id splid.ID, value []byte) (xmlmodel.Node, error) {
	return d.ForTx(SystemTxn).InsertText(id, value)
}

func (d *Document) insertTextLocked(id splid.ID, value []byte) (xmlmodel.Node, error) {
	n := xmlmodel.Node{ID: id, Kind: xmlmodel.KindText}
	if err := d.insertRaw(n); err != nil {
		return xmlmodel.Node{}, err
	}
	s := xmlmodel.Node{ID: id.StringNode(), Kind: xmlmodel.KindString, Value: value}
	return n, d.insertRaw(s)
}

// SetAttribute adds (or overwrites) an attribute on element el, creating the
// virtual attribute root on first use. It returns the attribute node.
func (d *Document) SetAttribute(el splid.ID, name string, value []byte) (xmlmodel.Node, error) {
	return d.ForTx(SystemTxn).SetAttribute(el, name, value)
}

// setAttributeLocked performs SetAttribute and returns the logical inverse:
// deleting the attribute when it was created, or restoring the previous
// value when it was overwritten.
func (d *Document) setAttributeLocked(el splid.ID, name string, value []byte) (xmlmodel.Node, []byte, error) {
	sur, err := d.vocab.Intern(name)
	if err != nil {
		return xmlmodel.Node{}, nil, err
	}
	ar := el.AttributeRoot()
	if ok, err := d.Exists(ar); err != nil {
		return xmlmodel.Node{}, nil, err
	} else if !ok {
		if err := d.insertRaw(xmlmodel.Node{ID: ar, Kind: xmlmodel.KindAttributeRoot}); err != nil {
			return xmlmodel.Node{}, nil, err
		}
	}
	// Find an existing attribute with this name, else append a new one.
	var existing splid.ID
	var last splid.ID
	err = d.ScanChildren(ar, func(n xmlmodel.Node) bool {
		last = n.ID
		if n.Kind == xmlmodel.KindAttribute && n.Name == sur {
			existing = n.ID
			return false
		}
		return true
	})
	if err != nil {
		return xmlmodel.Node{}, nil, err
	}
	if !existing.IsNull() {
		old, err := d.Value(existing)
		if err != nil {
			return xmlmodel.Node{}, nil, err
		}
		if name == IDAttrName {
			if err := d.reindexID(el, existing, value); err != nil {
				return xmlmodel.Node{}, nil, err
			}
		}
		s := xmlmodel.Node{ID: existing.StringNode(), Kind: xmlmodel.KindString, Value: value}
		if err := d.doc.Insert(s.ID.Encode(), xmlmodel.EncodeRecord(s)); err != nil {
			return xmlmodel.Node{}, nil, err
		}
		return xmlmodel.Node{ID: existing, Kind: xmlmodel.KindAttribute, Name: sur}, encodeUndoSetValue(existing, old), nil
	}
	var attrID splid.ID
	if last.IsNull() {
		attrID = d.alloc.FirstChild(ar)
	} else {
		attrID = d.alloc.NextSibling(last)
	}
	n := xmlmodel.Node{ID: attrID, Kind: xmlmodel.KindAttribute, Name: sur}
	if err := d.insertRaw(n); err != nil {
		return xmlmodel.Node{}, nil, err
	}
	s := xmlmodel.Node{ID: attrID.StringNode(), Kind: xmlmodel.KindString, Value: value}
	if err := d.insertRaw(s); err != nil {
		return xmlmodel.Node{}, nil, err
	}
	if name == IDAttrName {
		if err := d.ids.Insert(append([]byte(nil), value...), el.Encode()); err != nil {
			return xmlmodel.Node{}, nil, err
		}
	}
	return n, encodeUndoDelete(attrID), nil
}

// SetValue overwrites the character data of a text or attribute node.
func (d *Document) SetValue(id splid.ID, value []byte) error {
	return d.ForTx(SystemTxn).SetValue(id, value)
}

// setValueLocked performs SetValue and returns the previous value for the
// logical undo record.
func (d *Document) setValueLocked(id splid.ID, value []byte) ([]byte, error) {
	n, err := d.GetNode(id)
	if err != nil {
		return nil, err
	}
	if n.Kind != xmlmodel.KindText && n.Kind != xmlmodel.KindAttribute {
		return nil, fmt.Errorf("storage: cannot set value of %v node %v", n.Kind, id)
	}
	old, err := d.Value(id)
	if err != nil {
		return nil, err
	}
	if n.Kind == xmlmodel.KindAttribute && d.vocab.Name(n.Name) == IDAttrName {
		// id attributes feed the direct-jump index: keep it in sync.
		el := id.Parent().Parent() // attribute -> attribute root -> element
		if err := d.reindexID(el, id, value); err != nil {
			return nil, err
		}
	}
	s := xmlmodel.Node{ID: id.StringNode(), Kind: xmlmodel.KindString, Value: value}
	return old, d.doc.Insert(s.ID.Encode(), xmlmodel.EncodeRecord(s))
}

// reindexID replaces the ID-index entry of attribute attr (on element el)
// with a mapping for the new value.
func (d *Document) reindexID(el, attr splid.ID, newValue []byte) error {
	if old, err := d.Value(attr); err == nil {
		if err := d.ids.Delete(old); err != nil && err != btree.ErrNotFound {
			return err
		}
	}
	return d.ids.Insert(append([]byte(nil), newValue...), el.Encode())
}

// Rename changes the name of an element or attribute node (the DOM level 3
// renameNode operation exercised by TArenameTopic).
func (d *Document) Rename(id splid.ID, newName string) error {
	return d.ForTx(SystemTxn).Rename(id, newName)
}

// renameLocked performs Rename and returns the previous name for the
// logical undo record.
func (d *Document) renameLocked(id splid.ID, newName string) (string, error) {
	n, err := d.GetNode(id)
	if err != nil {
		return "", err
	}
	if !n.HasName() {
		return "", fmt.Errorf("storage: cannot rename %v node %v", n.Kind, id)
	}
	oldName := d.vocab.Name(n.Name)
	sur, err := d.vocab.Intern(newName)
	if err != nil {
		return "", err
	}
	if n.Kind == xmlmodel.KindElement && sur != n.Name {
		if err := d.elem.Delete(elemKey(n.Name, n.ID)); err != nil && err != btree.ErrNotFound {
			return "", err
		}
		if err := d.elem.Insert(elemKey(sur, n.ID), nil); err != nil {
			return "", err
		}
	}
	n.Name = sur
	return oldName, d.doc.Insert(id.Encode(), xmlmodel.EncodeRecord(n))
}

// DeleteSubtree removes the node labeled id together with every descendant
// (including virtual attribute and string nodes) and returns the number of
// nodes removed. Secondary index entries are maintained.
func (d *Document) DeleteSubtree(id splid.ID) (int, error) {
	return d.ForTx(SystemTxn).DeleteSubtree(id)
}

// deleteSubtreeLocked performs DeleteSubtree and returns the removed nodes
// (in document order) — both the result count and the undo payload source.
func (d *Document) deleteSubtreeLocked(id splid.ID) ([]xmlmodel.Node, error) {
	if id.IsRoot() {
		return nil, errors.New("storage: cannot delete the document root")
	}
	var victims []xmlmodel.Node
	err := d.ScanSubtree(id, func(n xmlmodel.Node) bool {
		victims = append(victims, n)
		return true
	})
	if err != nil {
		return nil, err
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("%w: %v", ErrNodeNotFound, id)
	}
	for _, n := range victims {
		if n.Kind == xmlmodel.KindAttribute && d.vocab.Name(n.Name) == IDAttrName {
			if v, err := d.Value(n.ID); err == nil {
				if err := d.ids.Delete(v); err != nil && err != btree.ErrNotFound {
					return nil, err
				}
			}
		}
	}
	for _, n := range victims {
		if err := d.deleteRaw(n); err != nil {
			return nil, err
		}
	}
	return victims, nil
}

// RestoreSubtree reinserts previously deleted node records (in document
// order) and rebuilds the secondary index entries — the physical undo of
// DeleteSubtree, run by aborting transactions that still hold their locks.
func (d *Document) RestoreSubtree(nodes []xmlmodel.Node) error {
	return d.ForTx(SystemTxn).RestoreSubtree(nodes)
}

func (d *Document) restoreSubtreeLocked(nodes []xmlmodel.Node) error {
	for _, n := range nodes {
		if err := d.insertRaw(n); err != nil {
			return err
		}
	}
	idSur, ok := d.vocab.Lookup(IDAttrName)
	if !ok {
		return nil
	}
	for _, n := range nodes {
		if n.Kind == xmlmodel.KindAttribute && n.Name == idSur {
			el := n.ID.Parent().Parent()
			v, err := d.Value(n.ID)
			if err != nil {
				return err
			}
			if err := d.ids.Insert(v, el.Encode()); err != nil {
				return err
			}
		}
	}
	return nil
}

// DocStats summarizes a document's physical shape — the storage-density
// numbers Section 3.2 discusses (SPLID bytes, tree depth, node mix).
type DocStats struct {
	// Nodes counts stored nodes by kind.
	Elements, Texts, Attributes, AttrRoots, Strings int
	// MaxDepth is the deepest level (root = 1), counting virtual nodes.
	MaxDepth int
	// SplidBytes is the total encoded size of all node labels; AvgSplid the
	// mean per node.
	SplidBytes int
	// ValueBytes is the total character data volume.
	ValueBytes int
	// DocTree/ElemTree/IDTree are the B*-tree shapes.
	DocTree, ElemTree, IDTree btree.TreeStats
}

// AvgSplid returns the mean encoded SPLID size in bytes.
func (s DocStats) AvgSplid() float64 {
	n := s.Elements + s.Texts + s.Attributes + s.AttrRoots + s.Strings
	if n == 0 {
		return 0
	}
	return float64(s.SplidBytes) / float64(n)
}

// Stats walks the document and returns its physical statistics.
func (d *Document) Stats() (DocStats, error) {
	var st DocStats
	err := d.ScanDocument(func(n xmlmodel.Node) bool {
		switch n.Kind {
		case xmlmodel.KindElement:
			st.Elements++
		case xmlmodel.KindText:
			st.Texts++
		case xmlmodel.KindAttribute:
			st.Attributes++
		case xmlmodel.KindAttributeRoot:
			st.AttrRoots++
		case xmlmodel.KindString:
			st.Strings++
			st.ValueBytes += len(n.Value)
		}
		st.SplidBytes += n.ID.EncodedLen()
		if l := n.ID.Level(); l > st.MaxDepth {
			st.MaxDepth = l
		}
		return true
	})
	if err != nil {
		return st, err
	}
	if st.DocTree, err = d.doc.Stats(); err != nil {
		return st, err
	}
	if st.ElemTree, err = d.elem.Stats(); err != nil {
		return st, err
	}
	st.IDTree, err = d.ids.Stats()
	return st, err
}
