// Parallel-redo oracle: shard-parallel redo must be a pure reordering of
// serial redo. Pages are independent under physiological logging, so
// recovering the same crash image with 1 shard and with 16 shards has to
// produce byte-identical page stores — any divergence means the partition
// leaked state across pages or broke a page's LSN order.
package storage_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/pagestore"
	"repro/internal/storage"
	"repro/internal/tamix"
	"repro/internal/wal"
)

// recoverImage recovers a cloned crash image at the given redo parallelism
// and returns the repaired backend.
func recoverImage(t *testing.T, out *tamix.CrashOutcome, shards int) *pagestore.MemBackend {
	t.Helper()
	mem, ok := out.Backend.(*pagestore.MemBackend)
	if !ok {
		t.Fatalf("oracle needs a raw MemBackend, got %T", out.Backend)
	}
	backend := mem.Clone()
	log, err := wal.Open(out.Segments.Clone(), wal.Config{})
	if err != nil {
		t.Fatalf("reopening log: %v", err)
	}
	opts := out.Opts
	opts.RedoShards = shards
	d, rep, err := storage.Recover(backend, log, opts)
	if err != nil {
		t.Fatalf("recover with %d shards: %v", shards, err)
	}
	defer d.Close()
	if err := tamix.AuditRecovered(d, out.Expected(rep)); err != nil {
		t.Errorf("audit with %d shards: %v", shards, err)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	return backend
}

// TestRecoverySerialParallelOracle recovers the same crash images serially
// and with 16 redo shards and demands byte-identical page stores.
func TestRecoverySerialParallelOracle(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := tamix.CrashConfig{
				Seed:              int64(7000 + seed),
				CrashAfterAppends: uint64(40 + seed*29%180),
			}
			if seed%2 == 1 {
				// Half the images carry checkpoints and truncated logs.
				cfg.CheckpointEvery = 3
			}
			out, err := tamix.CrashBurst(cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial := recoverImage(t, out, 1)
			parallel := recoverImage(t, out, 16)

			if sn, pn := serial.NumPages(), parallel.NumPages(); sn != pn {
				t.Fatalf("page counts diverge: serial %d, parallel %d", sn, pn)
			}
			sbuf := make([]byte, pagestore.PageSize)
			pbuf := make([]byte, pagestore.PageSize)
			for id := pagestore.PageID(0); id < serial.NumPages(); id++ {
				if err := serial.ReadPage(id, sbuf); err != nil {
					t.Fatalf("serial read page %d: %v", id, err)
				}
				if err := parallel.ReadPage(id, pbuf); err != nil {
					t.Fatalf("parallel read page %d: %v", id, err)
				}
				if !bytes.Equal(sbuf, pbuf) {
					t.Fatalf("page %d diverges between serial and 16-shard redo", id)
				}
			}
		})
	}
}
