package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/btree"
	"repro/internal/pagestore"
	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// Document metadata page. Page 0 of the backend holds the roots of the
// three B*-trees, the SPLID gap, and the vocabulary, so a document stored
// on a file backend can be reopened. Like every page, it starts with the
// pagestore recovery header; the metadata proper begins at metaBase.
// Version 2 is exactly the version-1 layout shifted by that header.
//
// Layout (offsets relative to metaBase):
//
//	off  0: magic "XTCD"
//	off  4: version uint16
//	off  6: dist uint32
//	off 10: doc root, elem root, ids root (uint32 each)
//	off 22: vocabulary blob length uint16, then the blob
const (
	metaMagic   = "XTCD"
	metaVersion = 2

	metaBase    = pagestore.PageHeaderSize
	metaBlobOff = metaBase + 24
)

var errBadMeta = errors.New("storage: invalid metadata page")

// Flush persists dirty pages and the metadata page.
func (d *Document) Flush() error {
	if err := d.writeMeta(); err != nil {
		return err
	}
	return d.store.Flush()
}

func (d *Document) writeMeta() error {
	f, err := d.store.Fix(0)
	if err != nil {
		return err
	}
	defer d.store.Unfix(f)
	p := f.Data()[metaBase:]
	copy(p[0:4], metaMagic)
	binary.BigEndian.PutUint16(p[4:6], metaVersion)
	binary.BigEndian.PutUint32(p[6:10], d.alloc.Dist)
	binary.BigEndian.PutUint32(p[10:14], uint32(d.doc.Root()))
	binary.BigEndian.PutUint32(p[14:18], uint32(d.elem.Root()))
	binary.BigEndian.PutUint32(p[18:22], uint32(d.ids.Root()))
	blob := d.vocab.Encode()
	if len(blob) > pagestore.PageSize-metaBlobOff {
		return fmt.Errorf("storage: vocabulary (%d bytes) exceeds the metadata page", len(blob))
	}
	binary.BigEndian.PutUint16(p[22:24], uint16(len(blob)))
	copy(p[24:], blob)
	f.MarkDirty()
	return nil
}

// Open attaches to a document previously created on backend (and flushed
// via Flush or Close).
func Open(backend pagestore.Backend, opts Options) (*Document, error) {
	store := pagestore.OpenConfig(backend, opts.bufferConfig())
	f, err := store.Fix(0)
	if err != nil {
		return nil, fmt.Errorf("storage: reading metadata: %w", err)
	}
	p := f.Data()[metaBase:]
	if string(p[0:4]) != metaMagic {
		store.Unfix(f)
		return nil, fmt.Errorf("%w: bad magic", errBadMeta)
	}
	if v := binary.BigEndian.Uint16(p[4:6]); v != metaVersion {
		store.Unfix(f)
		return nil, fmt.Errorf("%w: version %d", errBadMeta, v)
	}
	dist := binary.BigEndian.Uint32(p[6:10])
	docRoot := pagestore.PageID(binary.BigEndian.Uint32(p[10:14]))
	elemRoot := pagestore.PageID(binary.BigEndian.Uint32(p[14:18]))
	idsRoot := pagestore.PageID(binary.BigEndian.Uint32(p[18:22]))
	blobLen := int(binary.BigEndian.Uint16(p[22:24]))
	if metaBlobOff+blobLen > pagestore.PageSize {
		store.Unfix(f)
		return nil, fmt.Errorf("%w: vocabulary length %d", errBadMeta, blobLen)
	}
	vocab, err := xmlmodel.DecodeVocabulary(append([]byte(nil), p[24:24+blobLen]...))
	store.Unfix(f)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadMeta, err)
	}

	docTree, err := btree.Open(store, docRoot)
	if err != nil {
		return nil, err
	}
	elemTree, err := btree.Open(store, elemRoot)
	if err != nil {
		return nil, err
	}
	idsTree, err := btree.Open(store, idsRoot)
	if err != nil {
		return nil, err
	}
	d := &Document{
		store: store,
		doc:   docTree,
		elem:  elemTree,
		ids:   idsTree,
		vocab: vocab,
		alloc: splid.Allocator{Dist: dist},
		size:  docTree.Len(),
	}
	d.reader = liveReader(docTree, elemTree, idsTree, vocab)
	return d, nil
}
