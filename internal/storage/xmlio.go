package storage

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// Builder bulk-loads a document in document order, assigning gap-spaced
// SPLIDs level by level (the paper's "initial document storage only assigns
// odd division values"). It is not safe for concurrent use and bypasses
// locking — use it only to construct benchmark fixtures before transactions
// start.
type Builder struct {
	d     *Document
	stack []builderFrame
	err   error
}

type builderFrame struct {
	id       splid.ID
	children int
}

// NewBuilder starts building below the document root.
func (d *Document) NewBuilder() *Builder {
	return &Builder{d: d, stack: []builderFrame{{id: splid.Root()}}}
}

func (b *Builder) top() *builderFrame { return &b.stack[len(b.stack)-1] }

// nextChildID allocates the label for the next child of the current frame.
func (b *Builder) nextChildID() splid.ID {
	f := b.top()
	id := b.d.alloc.NthChild(f.id, f.children)
	f.children++
	return id
}

// StartElement opens a child element; calls nest.
func (b *Builder) StartElement(name string) *Builder {
	if b.err != nil {
		return b
	}
	id := b.nextChildID()
	if _, err := b.d.InsertElement(id, name); err != nil {
		b.err = err
		return b
	}
	b.stack = append(b.stack, builderFrame{id: id})
	return b
}

// EndElement closes the innermost open element.
func (b *Builder) EndElement() *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 1 {
		b.err = fmt.Errorf("storage: EndElement without StartElement")
		return b
	}
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Attribute sets an attribute on the innermost open element.
func (b *Builder) Attribute(name, value string) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 1 {
		b.err = fmt.Errorf("storage: Attribute outside an element")
		return b
	}
	if _, err := b.d.SetAttribute(b.top().id, name, []byte(value)); err != nil {
		b.err = err
	}
	return b
}

// Text appends a text node to the innermost open element.
func (b *Builder) Text(value string) *Builder {
	if b.err != nil {
		return b
	}
	id := b.nextChildID()
	if _, err := b.d.InsertText(id, []byte(value)); err != nil {
		b.err = err
	}
	return b
}

// Element writes a leaf element with a single text child — the common
// `<title>foo</title>` shape.
func (b *Builder) Element(name, text string) *Builder {
	return b.StartElement(name).Text(text).EndElement()
}

// CurrentID returns the SPLID of the innermost open element.
func (b *Builder) CurrentID() splid.ID { return b.top().id }

// Err returns the first error encountered while building.
func (b *Builder) Err() error { return b.err }

// ImportXML loads an XML byte stream below the document root. Whitespace-
// only character data is dropped; comments and processing instructions are
// ignored.
func (d *Document) ImportXML(r io.Reader) error {
	dec := xml.NewDecoder(r)
	b := d.NewBuilder()
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("storage: ImportXML: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			b.StartElement(t.Name.Local)
			for _, a := range t.Attr {
				b.Attribute(a.Name.Local, a.Value)
			}
			depth++
		case xml.EndElement:
			b.EndElement()
			depth--
		case xml.CharData:
			if s := strings.TrimSpace(string(t)); s != "" {
				b.Text(s)
			}
		}
	}
	if depth != 0 {
		return fmt.Errorf("storage: ImportXML: unbalanced document (depth %d)", depth)
	}
	return b.Err()
}

// ExportXML serializes the subtree rooted at id (the whole document when id
// is the root) as indented XML.
func (d *Document) ExportXML(w io.Writer, id splid.ID) error {
	n, err := d.GetNode(id)
	if err != nil {
		return err
	}
	return d.exportNode(w, n, 0)
}

func (d *Document) exportNode(w io.Writer, n xmlmodel.Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	switch n.Kind {
	case xmlmodel.KindElement:
		name := d.vocab.Name(n.Name)
		var attrs strings.Builder
		err := d.Attributes(n.ID, func(a xmlmodel.Node) bool {
			v, verr := d.Value(a.ID)
			if verr != nil {
				return true
			}
			fmt.Fprintf(&attrs, " %s=%q", d.vocab.Name(a.Name), string(v))
			return true
		})
		if err != nil {
			return err
		}
		var children []xmlmodel.Node
		if err := d.ScanChildren(n.ID, func(c xmlmodel.Node) bool {
			children = append(children, c)
			return true
		}); err != nil {
			return err
		}
		if len(children) == 0 {
			_, err := fmt.Fprintf(w, "%s<%s%s/>\n", indent, name, attrs.String())
			return err
		}
		// Single text child renders inline.
		if len(children) == 1 && children[0].Kind == xmlmodel.KindText {
			v, err := d.Value(children[0].ID)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s<%s%s>%s</%s>\n", indent, name, attrs.String(), escape(string(v)), name)
			return err
		}
		if _, err := fmt.Fprintf(w, "%s<%s%s>\n", indent, name, attrs.String()); err != nil {
			return err
		}
		for _, c := range children {
			if err := d.exportNode(w, c, depth+1); err != nil {
				return err
			}
		}
		_, err = fmt.Fprintf(w, "%s</%s>\n", indent, name)
		return err
	case xmlmodel.KindText:
		v, err := d.Value(n.ID)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s%s\n", indent, escape(string(v)))
		return err
	default:
		return fmt.Errorf("storage: cannot export %v node %v", n.Kind, n.ID)
	}
}

var escaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

func escape(s string) string { return escaper.Replace(s) }
