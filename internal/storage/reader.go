package storage

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/btree"
	"repro/internal/pagestore"
	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// treeView is the read surface the document layer needs from a B*-tree. It
// is satisfied by both *btree.Tree (the live tree) and *btree.SnapView (the
// tree as of one WAL snapshot LSN), which is what lets every navigation
// primitive serve live and snapshot reads from a single implementation.
type treeView interface {
	Get(key []byte) ([]byte, error)
	Has(key []byte) (bool, error)
	Ascend(start, limit []byte, fn func(key, val []byte) bool) error
	SeekGE(target []byte) (key, val []byte, err error)
	SeekLT(target []byte) (key, val []byte, err error)
}

var (
	_ treeView = (*btree.Tree)(nil)
	_ treeView = (*btree.SnapView)(nil)
)

// reader bundles the three tree views plus the vocabulary and implements
// every read-only document operation (lookups in reader.go, the navigation
// axes in navigate.go). Document embeds a reader over its live trees, so
// all existing read calls promote through it unchanged; Snapshot embeds a
// reader over SnapViews pinned at one LSN. The vocabulary is shared between
// the two: it is append-only with stable surrogates, so a name interned
// after the snapshot simply resolves to a name no snapshot node references.
type reader struct {
	doc   treeView // SPLID -> node record, document order
	elem  treeView // name surrogate + SPLID -> nil (element index)
	ids   treeView // id-attribute value -> element SPLID
	vocab *xmlmodel.Vocabulary
}

// liveReader builds the reader a Document embeds over its live trees.
func liveReader(doc, elem, ids *btree.Tree, vocab *xmlmodel.Vocabulary) reader {
	return reader{doc: doc, elem: elem, ids: ids, vocab: vocab}
}

// GetNode fetches the node labeled id.
func (r reader) GetNode(id splid.ID) (xmlmodel.Node, error) {
	if id.IsNull() {
		return xmlmodel.Node{}, fmt.Errorf("%w: null SPLID", ErrNodeNotFound)
	}
	v, err := r.doc.Get(id.Encode())
	if err == btree.ErrNotFound {
		return xmlmodel.Node{}, fmt.Errorf("%w: %v", ErrNodeNotFound, id)
	}
	if err != nil {
		return xmlmodel.Node{}, err
	}
	return xmlmodel.DecodeRecord(id, v)
}

// Exists reports whether a node is stored under id.
func (r reader) Exists(id splid.ID) (bool, error) {
	if id.IsNull() {
		return false, nil
	}
	return r.doc.Has(id.Encode())
}

// Value returns the character data of a text or attribute node.
func (r reader) Value(id splid.ID) ([]byte, error) {
	n, err := r.GetNode(id)
	if err != nil {
		return nil, err
	}
	switch n.Kind {
	case xmlmodel.KindText, xmlmodel.KindAttribute:
		s, err := r.GetNode(id.StringNode())
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), s.Value...), nil
	case xmlmodel.KindString:
		return append([]byte(nil), n.Value...), nil
	default:
		return nil, fmt.Errorf("storage: node %v (%v) has no value", id, n.Kind)
	}
}

// ElementByID resolves an id-attribute value to the owning element's SPLID —
// the getElementById direct jump.
func (r reader) ElementByID(value []byte) (splid.ID, error) {
	v, err := r.ids.Get(value)
	if err == btree.ErrNotFound {
		return splid.Null, fmt.Errorf("%w: id %q", ErrNodeNotFound, value)
	}
	if err != nil {
		return splid.Null, err
	}
	return splid.Decode(v)
}

// ElementsByName visits the SPLIDs of all elements with the given name in
// document order (the node-reference index of Figure 6b).
func (r reader) ElementsByName(name string, fn func(splid.ID) bool) error {
	sur, ok := r.vocab.Lookup(name)
	if !ok {
		return nil
	}
	var prefix [2]byte
	binary.BigEndian.PutUint16(prefix[:], uint16(sur))
	limit := []byte{prefix[0], prefix[1] + 1}
	if prefix[1] == 0xFF {
		limit = []byte{prefix[0] + 1, 0}
	}
	return r.elem.Ascend(prefix[:], limit, func(k, _ []byte) bool {
		id, err := splid.Decode(append([]byte(nil), k[2:]...))
		if err != nil {
			return true
		}
		return fn(id)
	})
}

// ReadView is the read-only operation surface shared by the live *Document
// and point-in-time *Snapshot views: every method is implemented once on
// reader and promoted into both. Callers that must work against either —
// the node manager routing a snapshot transaction, tests comparing live and
// frozen state — program against this interface.
type ReadView interface {
	GetNode(id splid.ID) (xmlmodel.Node, error)
	Exists(id splid.ID) (bool, error)
	Value(id splid.ID) ([]byte, error)
	ElementByID(value []byte) (splid.ID, error)
	ElementsByName(name string, fn func(splid.ID) bool) error
	ScanSubtree(id splid.ID, fn func(xmlmodel.Node) bool) error
	ScanDocument(fn func(xmlmodel.Node) bool) error
	ScanChildren(id splid.ID, fn func(xmlmodel.Node) bool) error
	FirstChild(id splid.ID) (xmlmodel.Node, error)
	LastChild(id splid.ID) (xmlmodel.Node, error)
	NextSibling(id splid.ID) (xmlmodel.Node, error)
	PrevSibling(id splid.ID) (xmlmodel.Node, error)
	Parent(id splid.ID) (xmlmodel.Node, error)
	Attributes(el splid.ID, fn func(xmlmodel.Node) bool) error
	AttributeByName(el splid.ID, name string) (xmlmodel.Node, error)
	CountChildren(id splid.ID) (int, error)
	SubtreeSize(id splid.ID) (int, error)
}

var (
	_ ReadView = (*Document)(nil)
	_ ReadView = (*Snapshot)(nil)
)

// Snapshot is a read-only view of a document frozen at one WAL snapshot
// LSN: every promoted reader method resolves pages through the version
// layer, so the view observes exactly the state committed as of LSN() no
// matter what concurrent writers do. Snapshots hold no locks, no pins, and
// no resources — drop one when done.
type Snapshot struct {
	reader
	lsn uint64
}

// LSN returns the WAL position the snapshot reads at.
func (s *Snapshot) LSN() uint64 { return s.lsn }

// rootEntry records the tree roots in effect for snapshots at or above lsn
// (up to the next entry). Appended by noteRoots whenever a logged operation
// moved a root; the lsn is the operation record's, which strictly precedes
// any commit-consistent snapshot LSN that can see the change.
type rootEntry struct {
	lsn            uint64
	doc, elem, ids pagestore.PageID
}

// rootLog is the in-memory history of tree-root movements since AttachWAL,
// the structure-at-S complement of the page version chains: page versions
// reconstruct old pages, the root log says where to start descending.
// Snapshots do not survive restart, so neither does the log — AttachWAL
// re-seeds it after recovery.
type rootLog struct {
	mu      sync.Mutex
	entries []rootEntry
}

// seed resets the log to a single entry covering every LSN.
func (l *rootLog) seed(e rootEntry) {
	l.mu.Lock()
	l.entries = []rootEntry{e}
	l.mu.Unlock()
}

// note appends e when it moves any root; no-op when the log is unseeded
// (no WAL attached).
func (l *rootLog) note(e rootEntry) {
	l.mu.Lock()
	if n := len(l.entries); n > 0 {
		last := l.entries[n-1]
		if last.doc != e.doc || last.elem != e.elem || last.ids != e.ids {
			l.entries = append(l.entries, e)
		}
	}
	l.mu.Unlock()
}

// at returns the roots in effect for a snapshot at s; ok is false when the
// log is unseeded.
func (l *rootLog) at(s uint64) (rootEntry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.entries) - 1; i >= 0; i-- {
		if l.entries[i].lsn <= s {
			return l.entries[i], true
		}
	}
	return rootEntry{}, false
}

// noteRoots records the current tree roots as of the operation record at
// lsn. Called by logOp under d.latch, after the record's LSN is stamped.
func (d *Document) noteRoots(lsn uint64) {
	d.roots.note(rootEntry{
		lsn:  lsn,
		doc:  d.doc.Root(),
		elem: d.elem.Root(),
		ids:  d.ids.Root(),
	})
}

// AtSnapshot returns a read-only view of the document as of WAL position s
// (a commit-consistent LSN obtained from wal.Log.SnapshotLSN, typically via
// a tx.LevelSnapshot transaction). The view requires an attached WAL and an
// installed snapshot source (node.Manager.EnableSnapshotReads); without
// them it degenerates to reading the live trees.
func (d *Document) AtSnapshot(s uint64) *Snapshot {
	e, ok := d.roots.at(s)
	if !ok {
		e = rootEntry{doc: d.doc.Root(), elem: d.elem.Root(), ids: d.ids.Root()}
	}
	return &Snapshot{
		reader: reader{
			doc:   d.doc.ViewAt(e.doc, s),
			elem:  d.elem.ViewAt(e.elem, s),
			ids:   d.ids.ViewAt(e.ids, s),
			vocab: d.vocab,
		},
		lsn: s,
	}
}
