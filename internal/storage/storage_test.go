package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pagestore"
	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// buildLibrary creates a small version of the paper's Figure 5 document.
func buildLibrary(t testing.TB) *Document {
	t.Helper()
	d, err := Create(pagestore.NewMemBackend(), "bib", Options{Dist: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	b := d.NewBuilder()
	b.StartElement("persons")
	for _, name := range []string{"ann", "bob"} {
		b.StartElement("person").Attribute("id", "p-"+name).
			Element("name", name).
			Element("addr", name+" street").
			EndElement()
	}
	b.EndElement()
	b.StartElement("topics")
	b.StartElement("topic").Attribute("id", "t-1")
	for _, title := range []string{"tcp", "xml"} {
		b.StartElement("book").Attribute("id", "b-"+title).Attribute("year", "2005").
			Element("title", title).
			Element("author", "knuth").
			Element("price", "42").
			StartElement("history").
			StartElement("lend").Attribute("person", "p-ann").Attribute("return", "2006-01-01").EndElement().
			EndElement().
			EndElement()
	}
	b.EndElement()
	b.EndElement()
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	return d
}

func TestCreateAndRoot(t *testing.T) {
	d, err := Create(pagestore.NewMemBackend(), "bib", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	root, err := d.GetNode(d.Root())
	if err != nil {
		t.Fatal(err)
	}
	if root.Kind != xmlmodel.KindElement || d.Vocabulary().Name(root.Name) != "bib" {
		t.Errorf("root = %+v", root)
	}
	if d.Size() != 1 {
		t.Errorf("Size = %d", d.Size())
	}
}

func TestNavigationAxes(t *testing.T) {
	d := buildLibrary(t)
	root := d.Root()

	persons, err := d.FirstChild(root)
	if err != nil || d.Vocabulary().Name(persons.Name) != "persons" {
		t.Fatalf("FirstChild(root) = %+v, %v", persons, err)
	}
	topics, err := d.LastChild(root)
	if err != nil || d.Vocabulary().Name(topics.Name) != "topics" {
		t.Fatalf("LastChild(root) = %+v, %v", topics, err)
	}
	ns, err := d.NextSibling(persons.ID)
	if err != nil || !ns.ID.Equal(topics.ID) {
		t.Fatalf("NextSibling(persons) = %+v, %v", ns, err)
	}
	ps, err := d.PrevSibling(topics.ID)
	if err != nil || !ps.ID.Equal(persons.ID) {
		t.Fatalf("PrevSibling(topics) = %+v, %v", ps, err)
	}
	if n, _ := d.NextSibling(topics.ID); !n.ID.IsNull() {
		t.Error("topics has no next sibling")
	}
	if p, _ := d.PrevSibling(persons.ID); !p.ID.IsNull() {
		t.Error("persons has no previous sibling")
	}
	par, err := d.Parent(persons.ID)
	if err != nil || !par.ID.Equal(root) {
		t.Fatalf("Parent(persons) = %+v, %v", par, err)
	}
	if r, _ := d.Parent(root); !r.ID.IsNull() {
		t.Error("root has no parent")
	}
	if s, _ := d.NextSibling(root); !s.ID.IsNull() {
		t.Error("root has no siblings")
	}
}

func TestChildrenSkipAttributeMachinery(t *testing.T) {
	d := buildLibrary(t)
	book, err := d.ElementByID([]byte("b-tcp"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := d.ScanChildren(book, func(n xmlmodel.Node) bool {
		names = append(names, d.Vocabulary().Name(n.Name))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := "title author price history"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("children = %q, want %q", got, want)
	}
	if n, _ := d.CountChildren(book); n != 4 {
		t.Errorf("CountChildren = %d", n)
	}
	// First child must be title, not the attribute root.
	fc, _ := d.FirstChild(book)
	if d.Vocabulary().Name(fc.Name) != "title" {
		t.Errorf("FirstChild(book) = %s", d.Vocabulary().Name(fc.Name))
	}
}

func TestAttributes(t *testing.T) {
	d := buildLibrary(t)
	book, _ := d.ElementByID([]byte("b-xml"))
	var attrs []string
	d.Attributes(book, func(n xmlmodel.Node) bool {
		v, _ := d.Value(n.ID)
		attrs = append(attrs, d.Vocabulary().Name(n.Name)+"="+string(v))
		return true
	})
	if strings.Join(attrs, ",") != "id=b-xml,year=2005" {
		t.Errorf("attrs = %v", attrs)
	}
	a, err := d.AttributeByName(book, "year")
	if err != nil || a.ID.IsNull() {
		t.Fatalf("AttributeByName(year) = %+v, %v", a, err)
	}
	if v, _ := d.Value(a.ID); string(v) != "2005" {
		t.Errorf("year = %q", v)
	}
	if a, _ := d.AttributeByName(book, "missing"); !a.ID.IsNull() {
		t.Error("missing attribute should be null")
	}
	// Overwrite.
	if _, err := d.SetAttribute(book, "year", []byte("2006")); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Value(a.ID); string(v) != "2006" {
		t.Errorf("year after overwrite = %q", v)
	}
	// Count must not grow.
	count := 0
	d.Attributes(book, func(xmlmodel.Node) bool { count++; return true })
	if count != 2 {
		t.Errorf("attribute count = %d", count)
	}
}

func TestValues(t *testing.T) {
	d := buildLibrary(t)
	book, _ := d.ElementByID([]byte("b-tcp"))
	title, _ := d.FirstChild(book)
	text, _ := d.FirstChild(title.ID)
	if text.Kind != xmlmodel.KindText {
		t.Fatalf("first child of title = %v", text.Kind)
	}
	if v, _ := d.Value(text.ID); string(v) != "tcp" {
		t.Errorf("title text = %q", v)
	}
	if err := d.SetValue(text.ID, []byte("tcp/ip")); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Value(text.ID); string(v) != "tcp/ip" {
		t.Errorf("title after SetValue = %q", v)
	}
	// Values of elements are errors.
	if _, err := d.Value(book); err == nil {
		t.Error("Value(element) should fail")
	}
	if err := d.SetValue(book, []byte("x")); err == nil {
		t.Error("SetValue(element) should fail")
	}
}

func TestIDIndex(t *testing.T) {
	d := buildLibrary(t)
	id, err := d.ElementByID([]byte("p-ann"))
	if err != nil {
		t.Fatal(err)
	}
	n, _ := d.GetNode(id)
	if d.Vocabulary().Name(n.Name) != "person" {
		t.Errorf("p-ann resolves to %s", d.Vocabulary().Name(n.Name))
	}
	if _, err := d.ElementByID([]byte("missing")); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("missing id: %v", err)
	}
	// Changing an id attribute re-points the index.
	attr, _ := d.AttributeByName(id, "id")
	if err := d.SetValue(attr.ID, []byte("p-anna")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ElementByID([]byte("p-ann")); !errors.Is(err, ErrNodeNotFound) {
		t.Error("old id should be gone")
	}
	if got, err := d.ElementByID([]byte("p-anna")); err != nil || !got.Equal(id) {
		t.Errorf("new id lookup = %v, %v", got, err)
	}
}

func TestElementsByName(t *testing.T) {
	d := buildLibrary(t)
	var books []splid.ID
	d.ElementsByName("book", func(id splid.ID) bool {
		books = append(books, id)
		return true
	})
	if len(books) != 2 {
		t.Fatalf("found %d books", len(books))
	}
	if splid.Compare(books[0], books[1]) != -1 {
		t.Error("element index must be in document order")
	}
	count := 0
	d.ElementsByName("lend", func(splid.ID) bool { count++; return true })
	if count != 2 {
		t.Errorf("lend count = %d", count)
	}
	if err := d.ElementsByName("nonexistent", func(splid.ID) bool { t.Error("callback for unknown name"); return true }); err != nil {
		t.Fatal(err)
	}
}

func TestRename(t *testing.T) {
	d := buildLibrary(t)
	topic, err := d.ElementByID([]byte("t-1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Rename(topic, "subject"); err != nil {
		t.Fatal(err)
	}
	n, _ := d.GetNode(topic)
	if d.Vocabulary().Name(n.Name) != "subject" {
		t.Errorf("renamed to %s", d.Vocabulary().Name(n.Name))
	}
	// Element index follows the rename.
	count := 0
	d.ElementsByName("topic", func(splid.ID) bool { count++; return true })
	if count != 0 {
		t.Errorf("stale topic index entries: %d", count)
	}
	d.ElementsByName("subject", func(splid.ID) bool { count++; return true })
	if count != 1 {
		t.Errorf("subject index entries: %d", count)
	}
	// Renaming a text node fails.
	txt, _ := d.FirstChild(topic)
	for !txt.ID.IsNull() && txt.Kind == xmlmodel.KindElement {
		txt, _ = d.FirstChild(txt.ID)
	}
	if !txt.ID.IsNull() {
		if err := d.Rename(txt.ID, "x"); err == nil {
			t.Error("renaming a text node should fail")
		}
	}
}

func TestDeleteSubtree(t *testing.T) {
	d := buildLibrary(t)
	before := d.Size()
	book, _ := d.ElementByID([]byte("b-tcp"))
	sub, _ := d.SubtreeSize(book)
	n, err := d.DeleteSubtree(book)
	if err != nil {
		t.Fatal(err)
	}
	if n != sub {
		t.Errorf("deleted %d nodes, subtree had %d", n, sub)
	}
	if d.Size() != before-n {
		t.Errorf("Size = %d, want %d", d.Size(), before-n)
	}
	if _, err := d.GetNode(book); !errors.Is(err, ErrNodeNotFound) {
		t.Error("book still present")
	}
	if _, err := d.ElementByID([]byte("b-tcp")); !errors.Is(err, ErrNodeNotFound) {
		t.Error("id index entry survived delete")
	}
	count := 0
	d.ElementsByName("book", func(splid.ID) bool { count++; return true })
	if count != 1 {
		t.Errorf("book element index count = %d", count)
	}
	// Sibling structure is intact.
	topic, _ := d.ElementByID([]byte("t-1"))
	if c, _ := d.CountChildren(topic); c != 1 {
		t.Errorf("topic children = %d", c)
	}
	// Root is protected.
	if _, err := d.DeleteSubtree(d.Root()); err == nil {
		t.Error("deleting the root must fail")
	}
	// Deleting twice fails.
	if _, err := d.DeleteSubtree(book); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("second delete: %v", err)
	}
}

func TestInsertDuplicate(t *testing.T) {
	d := buildLibrary(t)
	persons, _ := d.FirstChild(d.Root())
	if _, err := d.InsertElement(persons.ID, "person"); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate insert: %v", err)
	}
}

func TestImportExportXML(t *testing.T) {
	d, err := Create(pagestore.NewMemBackend(), "bib", Options{Dist: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	src := `<persons><person id="p1"><name>Ann &amp; Bob</name></person></persons>`
	if err := d.ImportXML(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	el, err := d.ElementByID([]byte("p1"))
	if err != nil {
		t.Fatal(err)
	}
	name, _ := d.FirstChild(el)
	txt, _ := d.FirstChild(name.ID)
	if v, _ := d.Value(txt.ID); string(v) != "Ann & Bob" {
		t.Errorf("text = %q", v)
	}
	var buf bytes.Buffer
	if err := d.ExportXML(&buf, d.Root()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"<bib>", `id="p1"`, "Ann &amp; Bob", "</bib>"} {
		if !strings.Contains(out, frag) {
			t.Errorf("export missing %q:\n%s", frag, out)
		}
	}
	// Re-import the export into a fresh document: same node count.
	d2, _ := Create(pagestore.NewMemBackend(), "wrapper", Options{})
	defer d2.Close()
	if err := d2.ImportXML(strings.NewReader(out)); err != nil {
		t.Fatalf("re-import: %v\n%s", err, out)
	}
	if d2.Size() != d.Size()+1 { // +1: wrapper root around exported <bib>
		t.Errorf("re-import size %d vs %d", d2.Size(), d.Size())
	}
}

func TestImportErrors(t *testing.T) {
	d, _ := Create(pagestore.NewMemBackend(), "root", Options{})
	defer d.Close()
	if err := d.ImportXML(strings.NewReader("<a><b></a>")); err == nil {
		t.Error("mismatched tags should fail")
	}
}

func TestDocumentOrderScan(t *testing.T) {
	d := buildLibrary(t)
	var prev splid.ID
	count := 0
	err := d.ScanDocument(func(n xmlmodel.Node) bool {
		if !prev.IsNull() && splid.Compare(prev, n.ID) != -1 {
			t.Fatalf("scan out of document order at %v", n.ID)
		}
		prev = n.ID
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != d.Size() {
		t.Errorf("scanned %d, Size %d", count, d.Size())
	}
}

func TestBuilderErrors(t *testing.T) {
	d, _ := Create(pagestore.NewMemBackend(), "r", Options{})
	defer d.Close()
	b := d.NewBuilder()
	b.EndElement()
	if b.Err() == nil {
		t.Error("unbalanced EndElement should error")
	}
	b2 := d.NewBuilder()
	b2.Attribute("x", "y")
	if b2.Err() == nil {
		t.Error("attribute outside element should error")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.db")
	fb, err := pagestore.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Create(fb, "bib", Options{Dist: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := d.NewBuilder()
	b.StartElement("topics").
		StartElement("topic").Attribute("id", "t1").
		Element("title", "durable data").
		EndElement().
		EndElement()
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	size := d.Size()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	fb2, err := pagestore.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Open(fb2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Size() != size {
		t.Errorf("size after reopen = %d, want %d", d2.Size(), size)
	}
	topic, err := d2.ElementByID([]byte("t1"))
	if err != nil {
		t.Fatalf("id index lost: %v", err)
	}
	title, err := d2.FirstChild(topic)
	if err != nil || d2.Vocabulary().Name(title.Name) != "title" {
		t.Fatalf("structure lost: %+v, %v", title, err)
	}
	txt, _ := d2.FirstChild(title.ID)
	if v, _ := d2.Value(txt.ID); string(v) != "durable data" {
		t.Errorf("content lost: %q", v)
	}
	count := 0
	d2.ElementsByName("topic", func(splid.ID) bool { count++; return true })
	if count != 1 {
		t.Errorf("element index lost: %d topics", count)
	}
	// The reopened document accepts further updates.
	if _, err := d2.SetAttribute(topic, "year", []byte("2006")); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	mb := pagestore.NewMemBackend()
	s := pagestore.Open(mb, 4)
	f, _ := s.FixNew()
	copy(f.Data(), "JUNKJUNK")
	f.MarkDirty()
	s.Unfix(f)
	s.Flush()
	if _, err := Open(mb, Options{}); err == nil {
		t.Error("Open should reject a non-document backend")
	}
}

func TestVerifyCleanDocument(t *testing.T) {
	d := buildLibrary(t)
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	// Still clean after updates, renames, and deletes.
	book, _ := d.ElementByID([]byte("b-tcp"))
	if _, err := d.DeleteSubtree(book); err != nil {
		t.Fatal(err)
	}
	topic, _ := d.ElementByID([]byte("t-1"))
	if err := d.Rename(topic, "theme"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetAttribute(topic, "year", []byte("2006")); err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	d := buildLibrary(t)
	// Sever a subtree root while keeping its descendants: orphans.
	book, _ := d.ElementByID([]byte("b-xml"))
	n, _ := d.GetNode(book)
	if err := d.deleteRaw(n); err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(); err == nil {
		t.Error("orphaned descendants must fail verification")
	}
}

func TestRelabelSubtree(t *testing.T) {
	d := buildLibrary(t)
	topic, err := d.ElementByID([]byte("t-1"))
	if err != nil {
		t.Fatal(err)
	}
	// Grow a pathological overflow chain: keep inserting an element between
	// the first two books until the labels get long.
	first, _ := d.FirstChild(topic)
	second, _ := d.NextSibling(first.ID)
	right := second.ID
	for i := 0; i < 40; i++ {
		id, err := d.Allocator().Between(topic, first.ID, right)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.InsertElement(id, "filler"); err != nil {
			t.Fatal(err)
		}
		right = id
	}
	if right.EncodedLen() < 12 {
		t.Fatalf("expected a long overflow label, got %d bytes (%v)", right.EncodedLen(), right)
	}
	sizeBefore, _ := d.SubtreeSize(topic)

	newTopic, err := d.RelabelSubtree(topic)
	if err != nil {
		t.Fatal(err)
	}
	sizeAfter, err := d.SubtreeSize(newTopic)
	if err != nil || sizeAfter != sizeBefore {
		t.Fatalf("subtree size %d -> %d (%v)", sizeBefore, sizeAfter, err)
	}
	// All labels inside are now short.
	maxLen := 0
	d.ScanSubtree(newTopic, func(n xmlmodel.Node) bool {
		if l := n.ID.EncodedLen(); l > maxLen {
			maxLen = l
		}
		return true
	})
	if maxLen > 12 {
		t.Errorf("labels still long after relabel: %d bytes", maxLen)
	}
	// Indexes follow: id lookup and element index agree with the new home.
	got, err := d.ElementByID([]byte("t-1"))
	if err != nil || !got.Equal(newTopic) {
		t.Errorf("id index after relabel: %v, %v", got, err)
	}
	count := 0
	d.ElementsByName("filler", func(splid.ID) bool { count++; return true })
	if count != 40 {
		t.Errorf("filler index count = %d", count)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	// The rest of the document is untouched.
	if _, err := d.ElementByID([]byte("p-ann")); err != nil {
		t.Errorf("unrelated node lost: %v", err)
	}
}

func TestRelabelRootRejected(t *testing.T) {
	d := buildLibrary(t)
	if _, err := d.RelabelSubtree(d.Root()); !errors.Is(err, ErrRelabelRoot) {
		t.Errorf("err = %v", err)
	}
}

func TestNeedsRelabel(t *testing.T) {
	d := buildLibrary(t)
	topic, _ := d.ElementByID([]byte("t-1"))
	first, _ := d.FirstChild(topic)
	need, err := d.NeedsRelabel(topic, splid.Null, first.ID)
	if err != nil || need {
		t.Errorf("fresh position should not need relabeling: %v, %v", need, err)
	}
}

func TestDocStats(t *testing.T) {
	d := buildLibrary(t)
	st, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	total := st.Elements + st.Texts + st.Attributes + st.AttrRoots + st.Strings
	if total != d.Size() {
		t.Errorf("stats count %d != size %d", total, d.Size())
	}
	if st.Elements == 0 || st.Attributes == 0 || st.Strings == 0 {
		t.Errorf("node mix missing kinds: %+v", st)
	}
	if st.MaxDepth < 5 {
		t.Errorf("MaxDepth = %d", st.MaxDepth)
	}
	if st.AvgSplid() <= 0 || st.AvgSplid() > 16 {
		t.Errorf("AvgSplid = %.2f", st.AvgSplid())
	}
	if st.DocTree.Keys != d.Size() {
		t.Errorf("doc tree keys %d != size %d", st.DocTree.Keys, d.Size())
	}
	if st.ElemTree.Keys != st.Elements {
		t.Errorf("elem tree keys %d != elements %d", st.ElemTree.Keys, st.Elements)
	}
}
