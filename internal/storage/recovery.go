package storage

// Crash recovery: ARIES-lite restart over the write-ahead log.
//
// Recover rebuilds a consistent document from whatever the crash left on
// the page backend plus the log's durable prefix, in three passes:
//
//  1. Analysis — one log scan classifies transactions: a RecCommit makes a
//     winner, a RecEnd closes a transaction (committed or fully rolled
//     back), anything else with logged operations is a loser.
//
//  2. Redo — repeating history: every RecOp's page deltas are applied in
//     log order to an in-memory page image, conditional on the page's
//     stamped pageLSN (a page already carrying LSN >= the record's was
//     written back after that operation and is skipped). Pages whose
//     on-disk checksum fails — torn by a crash mid-writeback — are reset
//     and rebuilt from their first logged full-page image; every page
//     written back during the WAL epoch logged one (the first-touch image
//     rule in logOp), so a torn page is always healable. Redone pages are
//     checksummed and written back before the document is opened.
//
//  3. Undo — losers roll back by applying their logical undo payloads in
//     reverse log order through the normal logged-mutation path, so
//     compensations are themselves durable; a RecEnd per loser then makes
//     repeated recovery skip them. Compensations logged by a crashed
//     runtime abort carry their own inverses, so reverse-order undo
//     telescopes through a half-finished rollback correctly.
//
// Running Recover twice (or crashing during recovery and recovering again)
// converges on the same state: redo is pageLSN-conditional, undo is
// resumable, and RecEnd records mark completed rollbacks.

import (
	"fmt"
	"sort"

	"repro/internal/pagestore"
	"repro/internal/wal"
)

// RecoveryReport summarizes a Recover run.
type RecoveryReport struct {
	Records     int             // log records scanned
	RedoneOps   int             // RecOp records whose deltas were (re)applied
	SkippedOps  int             // RecOp records fully absorbed by pageLSNs
	HealedPages int             // pages with failed checksums rebuilt from full images
	Committed   map[uint64]bool // transactions with a durable commit record
	Losers      []uint64        // transactions rolled back by this run
	UndoneOps   int             // undo payloads applied during rollback
}

// loserOp is one undoable operation of an unfinished transaction.
type loserOp struct {
	lsn  wal.LSN
	txn  uint64
	undo []byte
}

// Recover restarts a document from backend and its write-ahead log. The
// log must already be reopened post-crash (wal.Open truncates any torn
// tail). The returned document has the log attached and is fully
// consistent: effects of committed transactions are present, effects of
// unfinished ones are rolled back and their rollbacks logged.
func Recover(backend pagestore.Backend, log *wal.Log, opts Options) (*Document, *RecoveryReport, error) {
	rep := &RecoveryReport{Committed: make(map[uint64]bool)}

	// Pass 1+2 share one scan: classify transactions and redo page state.
	// pages holds the in-memory after-image of every page the log touches;
	// dirty marks those that differ from (or never reached) the backend.
	pages := make(map[pagestore.PageID][]byte)
	dirty := make(map[pagestore.PageID]bool)
	torn := make(map[pagestore.PageID]bool)
	seen := make(map[uint64]bool)
	ended := make(map[uint64]bool)
	undoLog := make(map[uint64][]loserOp)

	load := func(id pagestore.PageID) []byte {
		if p, ok := pages[id]; ok {
			return p
		}
		p := make([]byte, pagestore.PageSize)
		if id < backend.NumPages() {
			if err := backend.ReadPage(id, p); err != nil || pagestore.VerifyChecksum(id, p) != nil {
				// Unreadable or torn: reset and rebuild from the log. The
				// page stays unusable unless a full image arrives, which
				// the torn map enforces below.
				for i := range p {
					p[i] = 0
				}
				torn[id] = true
				rep.HealedPages++
			}
		}
		pages[id] = p
		return p
	}

	err := log.Scan(func(r wal.Record) error {
		rep.Records++
		switch r.Type {
		case wal.RecCommit:
			rep.Committed[r.Txn] = true
		case wal.RecEnd:
			ended[r.Txn] = true
		case wal.RecOp:
			undo, deltas, err := wal.DecodeOp(r.Payload)
			if err != nil {
				return fmt.Errorf("storage: recovery at LSN %d: %w", r.LSN, err)
			}
			if r.Txn != SystemTxn {
				seen[r.Txn] = true
				if len(undo) > 0 {
					undoLog[r.Txn] = append(undoLog[r.Txn], loserOp{r.LSN, r.Txn, undo})
				}
			}
			applied := false
			for _, dl := range deltas {
				p := load(dl.Page)
				if dl.FullImage() {
					torn[dl.Page] = false
				}
				if pagestore.PageLSN(p) >= r.LSN {
					continue // writeback already carried this operation
				}
				copy(p[dl.Off:], dl.Data)
				pagestore.SetPageLSN(p, r.LSN)
				dirty[dl.Page] = true
				applied = true
			}
			if applied {
				rep.RedoneOps++
			} else if len(deltas) > 0 {
				rep.SkippedOps++
			}
		}
		return nil
	})
	if err != nil {
		return nil, rep, err
	}
	for id, t := range torn {
		if t {
			return nil, rep, fmt.Errorf("storage: recovery: page %d is corrupt and the log holds no full image", id)
		}
	}

	// Materialize redone pages. Pages referenced beyond the backend's size
	// were allocated by the crashed run but never written back.
	if len(dirty) > 0 {
		maxPage := pagestore.PageID(0)
		for id := range dirty {
			if id > maxPage {
				maxPage = id
			}
		}
		for backend.NumPages() <= maxPage {
			if _, err := backend.Allocate(); err != nil {
				return nil, rep, err
			}
		}
		for id, d := range dirty {
			if !d {
				continue
			}
			p := pages[id]
			pagestore.StampChecksum(p)
			if err := backend.WritePage(id, p); err != nil {
				return nil, rep, err
			}
		}
		if err := backend.Sync(); err != nil {
			return nil, rep, err
		}
	}

	// Reopen the document over the repaired backend and re-arm logging.
	d, err := Open(backend, opts)
	if err != nil {
		return nil, rep, fmt.Errorf("storage: recovery reopen: %w", err)
	}
	if err := d.AttachWAL(log); err != nil {
		return nil, rep, err
	}

	// Undo pass: roll back losers in global reverse log order.
	var losers []loserOp
	for txn, ops := range undoLog {
		if rep.Committed[txn] || ended[txn] {
			continue
		}
		losers = append(losers, ops...)
	}
	for txn := range seen {
		if !rep.Committed[txn] && !ended[txn] {
			rep.Losers = append(rep.Losers, txn)
		}
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i].lsn > losers[j].lsn })
	sort.Slice(rep.Losers, func(i, j int) bool { return rep.Losers[i] < rep.Losers[j] })
	for _, op := range losers {
		if err := applyUndo(d.ForTx(op.txn), op.undo); err != nil {
			return nil, rep, fmt.Errorf("storage: undo for txn %d at LSN %d: %w", op.txn, op.lsn, err)
		}
		rep.UndoneOps++
	}
	var endLSN wal.LSN
	for _, txn := range rep.Losers {
		lsn, err := log.AppendEnd(txn)
		if err != nil {
			return nil, rep, err
		}
		endLSN = lsn
	}
	if len(rep.Losers) > 0 {
		if err := log.Force(endLSN); err != nil {
			return nil, rep, err
		}
	}
	if err := d.Flush(); err != nil {
		return nil, rep, err
	}
	return d, rep, nil
}
