package storage

// Crash recovery: ARIES-lite restart over the write-ahead log.
//
// Recover rebuilds a consistent document from whatever the crash left on
// the page backend plus the log's durable prefix, in three passes:
//
//  1. Analysis — one log scan classifies transactions: a RecCommit makes a
//     winner, a RecEnd closes a transaction (committed or fully rolled
//     back), anything else with logged operations is a loser. With a fuzzy
//     checkpoint on record (the master pointer, see wal/checkpoint.go) the
//     scan starts at min(checkpoint redo LSN, oldest active transaction's
//     first LSN) instead of LSN 0, so restart work is proportional to
//     work-since-checkpoint, not total history.
//
//  2. Redo — repeating history: every RecOp's page deltas at or above the
//     checkpoint's redo LSN are applied in log order, conditional on the
//     page's stamped pageLSN (a page already carrying LSN >= the record's
//     was written back after that operation and is skipped). The scan
//     groups deltas into per-page chains, partitions the pages across
//     shards with the buffer pool's shard map, and replays the shards in
//     parallel — pages are independent under physiological logging, and
//     each page's chain stays in LSN order within its shard. Pages whose
//     on-disk checksum fails — torn by a crash mid-writeback — are reset
//     and rebuilt from a full-page image; every dirty epoch logs one at
//     the page's recLSN (>= the redo LSN by the checkpoint invariants), so
//     a torn page is always healable from the bounded scan. Redone pages
//     are checksummed and written back before the document is opened.
//
//  3. Undo — losers roll back by applying their logical undo payloads in
//     reverse log order through the normal logged-mutation path, so
//     compensations are themselves durable; a RecEnd per loser then makes
//     repeated recovery skip them. The truncation point never passes an
//     active transaction's first record, so every loser record survives
//     segment GC and sits inside the analysis scan.
//
// Running Recover twice (or crashing during recovery and recovering again)
// converges on the same state: redo is pageLSN-conditional, undo is
// resumable, and RecEnd records mark completed rollbacks.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/pagestore"
	"repro/internal/wal"
)

// DefaultRedoShards is the redo parallelism when Options.RedoShards is 0.
const DefaultRedoShards = 16

// RecoveryReport summarizes a Recover run.
type RecoveryReport struct {
	Records     int             // log records scanned
	RedoneOps   int             // page deltas (re)applied
	SkippedOps  int             // page deltas absorbed by pageLSNs
	HealedPages int             // pages with failed checksums rebuilt from full images
	Committed   map[uint64]bool // transactions with a durable commit record
	Losers      []uint64        // transactions rolled back by this run
	UndoneOps   int             // undo payloads applied during rollback
	// CheckpointLSN is the checkpoint the scan started from (0 = none,
	// full-history scan).
	CheckpointLSN wal.LSN
	// RedoShards is the parallelism the redo pass ran at.
	RedoShards int
	// ShardRedoNS is each redo shard's wall-clock nanoseconds.
	ShardRedoNS []int64
}

// loserOp is one undoable operation of an unfinished transaction.
type loserOp struct {
	lsn  wal.LSN
	txn  uint64
	undo []byte
}

// redoDelta is one page's slice of a RecOp, queued for shard replay.
type redoDelta struct {
	lsn  wal.LSN
	full bool
	off  int
	data []byte
}

// Recover restarts a document from backend and its write-ahead log. The
// log must already be reopened post-crash (wal.Open truncates any torn
// tail and locates the latest checkpoint via the master record). The
// returned document has the log attached and is fully consistent: effects
// of committed transactions are present, effects of unfinished ones are
// rolled back and their rollbacks logged.
func Recover(backend pagestore.Backend, log *wal.Log, opts Options) (*Document, *RecoveryReport, error) {
	rep := &RecoveryReport{Committed: make(map[uint64]bool)}

	// Scan bounds from the latest checkpoint: redo needs records from the
	// redo LSN; undo needs records from the oldest active transaction's
	// first LSN, which can be older. One scan from the minimum serves both.
	var scanFrom, redoFrom wal.LSN
	if ckpt := log.LatestCheckpoint(); ckpt != nil {
		rep.CheckpointLSN = ckpt.LSN
		redoFrom = ckpt.RedoLSN
		scanFrom = redoFrom
		for _, e := range ckpt.Active {
			if e.FirstLSN < scanFrom {
				scanFrom = e.FirstLSN
			}
		}
	}

	// Analysis: classify transactions and collect per-page redo chains.
	chains := make(map[pagestore.PageID][]redoDelta)
	seen := make(map[uint64]bool)
	ended := make(map[uint64]bool)
	undoLog := make(map[uint64][]loserOp)

	err := log.ScanFrom(scanFrom, func(r wal.Record) error {
		rep.Records++
		switch r.Type {
		case wal.RecCommit:
			rep.Committed[r.Txn] = true
		case wal.RecEnd:
			ended[r.Txn] = true
		case wal.RecCheckpoint:
			// Informational: the authoritative checkpoint comes from the
			// master pointer, already consumed above.
		case wal.RecOp:
			undo, deltas, err := wal.DecodeOp(r.Payload)
			if err != nil {
				return fmt.Errorf("storage: recovery at LSN %d: %w", r.LSN, err)
			}
			if r.Txn != SystemTxn {
				seen[r.Txn] = true
				if len(undo) > 0 {
					undoLog[r.Txn] = append(undoLog[r.Txn], loserOp{r.LSN, r.Txn, undo})
				}
			}
			if r.LSN < redoFrom {
				// Below the redo LSN every page effect is durable (else the
				// page's recLSN would have pulled the redo LSN down); the
				// record was scanned only for its undo payload.
				return nil
			}
			for _, dl := range deltas {
				chains[dl.Page] = append(chains[dl.Page], redoDelta{
					lsn:  r.LSN,
					full: dl.FullImage(),
					off:  dl.Off,
					data: dl.Data,
				})
			}
		}
		return nil
	})
	if err != nil {
		return nil, rep, err
	}

	if err := redoChains(backend, chains, opts, rep); err != nil {
		return nil, rep, err
	}

	// Reopen the document over the repaired backend and re-arm logging.
	d, err := Open(backend, opts)
	if err != nil {
		return nil, rep, fmt.Errorf("storage: recovery reopen: %w", err)
	}
	if err := d.AttachWAL(log); err != nil {
		return nil, rep, err
	}

	// Undo pass: roll back losers in global reverse log order.
	var losers []loserOp
	for txn, ops := range undoLog {
		if rep.Committed[txn] || ended[txn] {
			continue
		}
		losers = append(losers, ops...)
	}
	for txn := range seen {
		if !rep.Committed[txn] && !ended[txn] {
			rep.Losers = append(rep.Losers, txn)
		}
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i].lsn > losers[j].lsn })
	sort.Slice(rep.Losers, func(i, j int) bool { return rep.Losers[i] < rep.Losers[j] })
	for _, op := range losers {
		if err := applyUndo(d.ForTx(op.txn), op.undo); err != nil {
			return nil, rep, fmt.Errorf("storage: undo for txn %d at LSN %d: %w", op.txn, op.lsn, err)
		}
		rep.UndoneOps++
	}
	var endLSN wal.LSN
	for _, txn := range rep.Losers {
		lsn, err := log.AppendEnd(txn)
		if err != nil {
			return nil, rep, err
		}
		endLSN = lsn
	}
	if len(rep.Losers) > 0 {
		if err := log.Force(endLSN); err != nil {
			return nil, rep, err
		}
	}
	if err := d.Flush(); err != nil {
		return nil, rep, err
	}
	return d, rep, nil
}

// redoChains replays the per-page delta chains against the backend,
// partitioned across shards by the buffer pool's page-shard map. Pages are
// independent (physiological logging confines every delta to one page), so
// shards share nothing but the backend, and each page's chain replays in
// LSN order within its shard.
func redoChains(backend pagestore.Backend, chains map[pagestore.PageID][]redoDelta, opts Options, rep *RecoveryReport) error {
	nShards := opts.RedoShards
	if nShards <= 0 {
		nShards = DefaultRedoShards
	}
	// ShardIndex masks with n-1, so round up to a power of two.
	pow := 1
	for pow < nShards {
		pow <<= 1
	}
	nShards = pow
	rep.RedoShards = nShards
	rep.ShardRedoNS = make([]int64, nShards)
	if len(chains) == 0 {
		return nil
	}

	// Pages beyond the backend were allocated by the crashed run but never
	// written back; extend serially before the parallel pass (Allocate
	// appends, so concurrent extension would race).
	maxPage := pagestore.PageID(0)
	for id := range chains {
		if id > maxPage {
			maxPage = id
		}
	}
	for backend.NumPages() <= maxPage {
		if _, err := backend.Allocate(); err != nil {
			return err
		}
	}

	shardPages := make([][]pagestore.PageID, nShards)
	for id := range chains {
		s := pagestore.ShardIndex(id, nShards)
		shardPages[s] = append(shardPages[s], id)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards rep counters and firstErr
		firstErr error
	)
	for s := 0; s < nShards; s++ {
		if len(shardPages[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			start := time.Now()
			redone, skipped, healed := 0, 0, 0
			var shardErr error
			buf := make([]byte, pagestore.PageSize)
			for _, id := range shardPages[s] {
				for i := range buf {
					buf[i] = 0
				}
				torn := false
				if err := backend.ReadPage(id, buf); err != nil || pagestore.VerifyChecksum(id, buf) != nil {
					// Unreadable or torn: reset and rebuild from the log.
					// The page stays unusable unless a full image arrives.
					for i := range buf {
						buf[i] = 0
					}
					torn = true
					healed++
				}
				applied := false
				for _, dl := range chains[id] {
					if dl.full {
						torn = false
					}
					if pagestore.PageLSN(buf) >= dl.lsn {
						skipped++
						continue // writeback already carried this operation
					}
					copy(buf[dl.off:], dl.data)
					pagestore.SetPageLSN(buf, dl.lsn)
					applied = true
					redone++
				}
				if torn {
					shardErr = fmt.Errorf("storage: recovery: page %d is corrupt and the log holds no full image", id)
					break
				}
				if applied {
					pagestore.StampChecksum(buf)
					if err := backend.WritePage(id, buf); err != nil {
						shardErr = err
						break
					}
				}
			}
			elapsed := time.Since(start).Nanoseconds()
			mu.Lock()
			rep.RedoneOps += redone
			rep.SkippedOps += skipped
			rep.HealedPages += healed
			rep.ShardRedoNS[s] = elapsed
			if shardErr != nil && firstErr == nil {
				firstErr = shardErr
			}
			mu.Unlock()
			if c := opts.Metrics.Counter(fmt.Sprintf("recovery.redo_ns.shard%02d", s)); c != nil {
				c.Add(uint64(elapsed))
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return backend.Sync()
}
