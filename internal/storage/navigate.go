package storage

import (
	"repro/internal/btree"

	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// Navigation primitives. All of them work purely on the document B*-tree:
// because the document is stored in document order under SPLID keys, every
// DOM axis reduces to one or two index seeks — the paper's argument for
// prefix-based labeling (Section 3.2).
//
// They are defined on reader, so the same implementations serve the live
// document (promoted through Document's embedded reader) and point-in-time
// Snapshot views (whose tree views resolve pages through the version layer).

// ScanSubtree visits the node labeled id and all its descendants (including
// virtual attribute-root and string nodes) in document order. fn returns
// false to stop early.
func (r reader) ScanSubtree(id splid.ID, fn func(xmlmodel.Node) bool) error {
	return r.scanRange(id.Encode(), id.SubtreeLimit().Encode(), fn)
}

// ScanDocument visits every stored node in document order.
func (r reader) ScanDocument(fn func(xmlmodel.Node) bool) error {
	return r.scanRange(nil, nil, fn)
}

func (r reader) scanRange(start, limit []byte, fn func(xmlmodel.Node) bool) error {
	var decodeErr error
	err := r.doc.Ascend(start, limit, func(k, v []byte) bool {
		id, err := splid.Decode(append([]byte(nil), k...))
		if err != nil {
			decodeErr = err
			return false
		}
		n, err := xmlmodel.DecodeRecord(id, append([]byte(nil), v...))
		if err != nil {
			decodeErr = err
			return false
		}
		return fn(n)
	})
	if err != nil {
		return err
	}
	return decodeErr
}

// ScanChildren visits the direct children of id in document order,
// excluding the reserved attribute-root and string-node children (they are
// not DOM children). fn returns false to stop.
func (r reader) ScanChildren(id splid.ID, fn func(xmlmodel.Node) bool) error {
	// Children are exactly the level+1 nodes inside the subtree; skip whole
	// child subtrees between siblings by seeking to each SubtreeLimit.
	childLevel := id.Level() + 1
	cur := id.Encode()
	limit := id.SubtreeLimit().Encode()
	for {
		var child splid.ID
		var node xmlmodel.Node
		found := false
		err := r.scanRange(cur, limit, func(n xmlmodel.Node) bool {
			if n.ID.Equal(id) {
				return true // the subtree root itself
			}
			child = n.ID.AncestorAtLevel(childLevel)
			node = n
			found = true
			return false
		})
		if err != nil {
			return err
		}
		if !found {
			return nil
		}
		if !child.Equal(node.ID) {
			// A child node precedes its descendants in document order, so
			// the first key past the previous child's subtree limit is the
			// next child itself; reaching a deeper node first would mean an
			// orphaned subtree. Re-fetch defensively.
			n, err := r.GetNode(child)
			if err != nil {
				return err
			}
			node = n
		}
		if !child.IsReservedChild() {
			if !fn(node) {
				return nil
			}
		}
		cur = child.SubtreeLimit().Encode()
	}
}

// FirstChild returns the first regular (non-reserved) child of id, or a
// null-ID node when there is none.
func (r reader) FirstChild(id splid.ID) (xmlmodel.Node, error) {
	var out xmlmodel.Node
	err := r.ScanChildren(id, func(n xmlmodel.Node) bool {
		out = n
		return false
	})
	return out, err
}

// LastChild returns the last regular child of id, or a null-ID node.
func (r reader) LastChild(id splid.ID) (xmlmodel.Node, error) {
	k, v, err := r.doc.SeekLT(id.SubtreeLimit().Encode())
	if err != nil {
		return xmlmodel.Node{}, err
	}
	last, err := splid.Decode(k)
	if err != nil {
		return xmlmodel.Node{}, err
	}
	if last.Equal(id) || !id.IsAncestorOf(last) {
		return xmlmodel.Node{}, nil // empty subtree
	}
	child := last.AncestorAtLevel(id.Level() + 1)
	if child.IsReservedChild() {
		return xmlmodel.Node{}, nil // only attribute/string machinery below
	}
	if child.Equal(last) {
		n, err := xmlmodel.DecodeRecord(child, v)
		return n, err
	}
	return r.GetNode(child)
}

// NextSibling returns the following regular sibling of id, or a null-ID
// node when id is the last child.
func (r reader) NextSibling(id splid.ID) (xmlmodel.Node, error) {
	parent := id.Parent()
	if parent.IsNull() {
		return xmlmodel.Node{}, nil // root has no siblings
	}
	k, v, err := r.doc.SeekGE(id.SubtreeLimit().Encode())
	if err == btree.ErrNotFound {
		return xmlmodel.Node{}, nil // id closes the document
	}
	if err != nil {
		return xmlmodel.Node{}, err
	}
	next, err := splid.Decode(k)
	if err != nil {
		return xmlmodel.Node{}, err
	}
	if !next.ChildOf(parent) {
		return xmlmodel.Node{}, nil
	}
	n, err := xmlmodel.DecodeRecord(next, v)
	return n, err
}

// PrevSibling returns the preceding regular sibling of id, or a null-ID
// node when id is the first child.
func (r reader) PrevSibling(id splid.ID) (xmlmodel.Node, error) {
	parent := id.Parent()
	if parent.IsNull() {
		return xmlmodel.Node{}, nil
	}
	k, _, err := r.doc.SeekLT(id.Encode())
	if err != nil {
		return xmlmodel.Node{}, err
	}
	before, err := splid.Decode(k)
	if err != nil {
		return xmlmodel.Node{}, err
	}
	if before.Equal(parent) || !parent.IsAncestorOf(before) {
		return xmlmodel.Node{}, nil // id is the first child
	}
	sib := before.AncestorAtLevel(id.Level())
	if sib.IsReservedChild() {
		return xmlmodel.Node{}, nil // only the attribute root precedes id
	}
	return r.GetNode(sib)
}

// Parent returns the parent node of id, or a null-ID node for the root.
func (r reader) Parent(id splid.ID) (xmlmodel.Node, error) {
	p := id.Parent()
	if p.IsNull() {
		return xmlmodel.Node{}, nil
	}
	return r.GetNode(p)
}

// Attributes visits the attribute nodes of element el in storage order.
func (r reader) Attributes(el splid.ID, fn func(xmlmodel.Node) bool) error {
	ar := el.AttributeRoot()
	if ok, err := r.Exists(ar); err != nil || !ok {
		return err
	}
	stop := false
	return r.ScanSubtree(ar, func(n xmlmodel.Node) bool {
		if stop {
			return false
		}
		if n.Kind == xmlmodel.KindAttribute {
			if !fn(n) {
				stop = true
				return false
			}
		}
		return true
	})
}

// AttributeByName returns the attribute node of el with the given name, or
// a null-ID node.
func (r reader) AttributeByName(el splid.ID, name string) (xmlmodel.Node, error) {
	sur, ok := r.vocab.Lookup(name)
	if !ok {
		return xmlmodel.Node{}, nil
	}
	var out xmlmodel.Node
	err := r.Attributes(el, func(n xmlmodel.Node) bool {
		if n.Name == sur {
			out = n
			return false
		}
		return true
	})
	return out, err
}

// CountChildren returns the number of regular children of id.
func (r reader) CountChildren(id splid.ID) (int, error) {
	n := 0
	err := r.ScanChildren(id, func(xmlmodel.Node) bool { n++; return true })
	return n, err
}

// SubtreeSize returns the number of stored nodes (all kinds) in the subtree
// rooted at id.
func (r reader) SubtreeSize(id splid.ID) (int, error) {
	n := 0
	err := r.ScanSubtree(id, func(xmlmodel.Node) bool { n++; return true })
	return n, err
}
