package storage

import (
	"repro/internal/btree"

	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// Navigation primitives. All of them work purely on the document B*-tree:
// because the document is stored in document order under SPLID keys, every
// DOM axis reduces to one or two index seeks — the paper's argument for
// prefix-based labeling (Section 3.2).

// ScanSubtree visits the node labeled id and all its descendants (including
// virtual attribute-root and string nodes) in document order. fn returns
// false to stop early.
func (d *Document) ScanSubtree(id splid.ID, fn func(xmlmodel.Node) bool) error {
	return d.scanRange(id.Encode(), id.SubtreeLimit().Encode(), fn)
}

// ScanDocument visits every stored node in document order.
func (d *Document) ScanDocument(fn func(xmlmodel.Node) bool) error {
	return d.scanRange(nil, nil, fn)
}

func (d *Document) scanRange(start, limit []byte, fn func(xmlmodel.Node) bool) error {
	var decodeErr error
	err := d.doc.Ascend(start, limit, func(k, v []byte) bool {
		id, err := splid.Decode(append([]byte(nil), k...))
		if err != nil {
			decodeErr = err
			return false
		}
		n, err := xmlmodel.DecodeRecord(id, append([]byte(nil), v...))
		if err != nil {
			decodeErr = err
			return false
		}
		return fn(n)
	})
	if err != nil {
		return err
	}
	return decodeErr
}

// ScanChildren visits the direct children of id in document order,
// excluding the reserved attribute-root and string-node children (they are
// not DOM children). fn returns false to stop.
func (d *Document) ScanChildren(id splid.ID, fn func(xmlmodel.Node) bool) error {
	// Children are exactly the level+1 nodes inside the subtree; skip whole
	// child subtrees between siblings by seeking to each SubtreeLimit.
	childLevel := id.Level() + 1
	cur := id.Encode()
	limit := id.SubtreeLimit().Encode()
	for {
		var child splid.ID
		var node xmlmodel.Node
		found := false
		err := d.scanRange(cur, limit, func(n xmlmodel.Node) bool {
			if n.ID.Equal(id) {
				return true // the subtree root itself
			}
			child = n.ID.AncestorAtLevel(childLevel)
			node = n
			found = true
			return false
		})
		if err != nil {
			return err
		}
		if !found {
			return nil
		}
		if !child.Equal(node.ID) {
			// A child node precedes its descendants in document order, so
			// the first key past the previous child's subtree limit is the
			// next child itself; reaching a deeper node first would mean an
			// orphaned subtree. Re-fetch defensively.
			n, err := d.GetNode(child)
			if err != nil {
				return err
			}
			node = n
		}
		if !child.IsReservedChild() {
			if !fn(node) {
				return nil
			}
		}
		cur = child.SubtreeLimit().Encode()
	}
}

// FirstChild returns the first regular (non-reserved) child of id, or a
// null-ID node when there is none.
func (d *Document) FirstChild(id splid.ID) (xmlmodel.Node, error) {
	var out xmlmodel.Node
	err := d.ScanChildren(id, func(n xmlmodel.Node) bool {
		out = n
		return false
	})
	return out, err
}

// LastChild returns the last regular child of id, or a null-ID node.
func (d *Document) LastChild(id splid.ID) (xmlmodel.Node, error) {
	k, v, err := d.doc.SeekLT(id.SubtreeLimit().Encode())
	if err != nil {
		return xmlmodel.Node{}, err
	}
	last, err := splid.Decode(k)
	if err != nil {
		return xmlmodel.Node{}, err
	}
	if last.Equal(id) || !id.IsAncestorOf(last) {
		return xmlmodel.Node{}, nil // empty subtree
	}
	child := last.AncestorAtLevel(id.Level() + 1)
	if child.IsReservedChild() {
		return xmlmodel.Node{}, nil // only attribute/string machinery below
	}
	if child.Equal(last) {
		n, err := xmlmodel.DecodeRecord(child, v)
		return n, err
	}
	return d.GetNode(child)
}

// NextSibling returns the following regular sibling of id, or a null-ID
// node when id is the last child.
func (d *Document) NextSibling(id splid.ID) (xmlmodel.Node, error) {
	parent := id.Parent()
	if parent.IsNull() {
		return xmlmodel.Node{}, nil // root has no siblings
	}
	k, v, err := d.doc.SeekGE(id.SubtreeLimit().Encode())
	if err == btree.ErrNotFound {
		return xmlmodel.Node{}, nil // id closes the document
	}
	if err != nil {
		return xmlmodel.Node{}, err
	}
	next, err := splid.Decode(k)
	if err != nil {
		return xmlmodel.Node{}, err
	}
	if !next.ChildOf(parent) {
		return xmlmodel.Node{}, nil
	}
	n, err := xmlmodel.DecodeRecord(next, v)
	return n, err
}

// PrevSibling returns the preceding regular sibling of id, or a null-ID
// node when id is the first child.
func (d *Document) PrevSibling(id splid.ID) (xmlmodel.Node, error) {
	parent := id.Parent()
	if parent.IsNull() {
		return xmlmodel.Node{}, nil
	}
	k, _, err := d.doc.SeekLT(id.Encode())
	if err != nil {
		return xmlmodel.Node{}, err
	}
	before, err := splid.Decode(k)
	if err != nil {
		return xmlmodel.Node{}, err
	}
	if before.Equal(parent) || !parent.IsAncestorOf(before) {
		return xmlmodel.Node{}, nil // id is the first child
	}
	sib := before.AncestorAtLevel(id.Level())
	if sib.IsReservedChild() {
		return xmlmodel.Node{}, nil // only the attribute root precedes id
	}
	return d.GetNode(sib)
}

// Parent returns the parent node of id, or a null-ID node for the root.
func (d *Document) Parent(id splid.ID) (xmlmodel.Node, error) {
	p := id.Parent()
	if p.IsNull() {
		return xmlmodel.Node{}, nil
	}
	return d.GetNode(p)
}

// Attributes visits the attribute nodes of element el in storage order.
func (d *Document) Attributes(el splid.ID, fn func(xmlmodel.Node) bool) error {
	ar := el.AttributeRoot()
	if ok, err := d.Exists(ar); err != nil || !ok {
		return err
	}
	stop := false
	return d.ScanSubtree(ar, func(n xmlmodel.Node) bool {
		if stop {
			return false
		}
		if n.Kind == xmlmodel.KindAttribute {
			if !fn(n) {
				stop = true
				return false
			}
		}
		return true
	})
}

// AttributeByName returns the attribute node of el with the given name, or
// a null-ID node.
func (d *Document) AttributeByName(el splid.ID, name string) (xmlmodel.Node, error) {
	sur, ok := d.vocab.Lookup(name)
	if !ok {
		return xmlmodel.Node{}, nil
	}
	var out xmlmodel.Node
	err := d.Attributes(el, func(n xmlmodel.Node) bool {
		if n.Name == sur {
			out = n
			return false
		}
		return true
	})
	return out, err
}

// CountChildren returns the number of regular children of id.
func (d *Document) CountChildren(id splid.ID) (int, error) {
	n := 0
	err := d.ScanChildren(id, func(xmlmodel.Node) bool { n++; return true })
	return n, err
}

// SubtreeSize returns the number of stored nodes (all kinds) in the subtree
// rooted at id.
func (d *Document) SubtreeSize(id splid.ID) (int, error) {
	n := 0
	err := d.ScanSubtree(id, func(xmlmodel.Node) bool { n++; return true })
	return n, err
}
