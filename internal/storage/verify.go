package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// Verify checks the document's physical invariants: tree connectivity, the
// taDOM kind rules, vocabulary consistency, and full agreement between the
// document container and both secondary indexes. Tests run it after
// concurrent workloads to prove that no interleaving corrupted the store.
func (d *Document) Verify() error {
	type info struct {
		kind xmlmodel.Kind
		name xmlmodel.Sur
	}
	nodes := make(map[string]info)
	elements := make(map[string]xmlmodel.Sur)
	idAttrs := make(map[string]string) // id value -> element SPLID string
	idSur, _ := d.vocab.Lookup(IDAttrName)

	count := 0
	err := d.ScanDocument(func(n xmlmodel.Node) bool {
		count++
		nodes[n.ID.String()] = info{n.Kind, n.Name}
		if n.Kind == xmlmodel.KindElement {
			elements[n.ID.String()] = n.Name
		}
		return true
	})
	if err != nil {
		return err
	}
	if count != d.Size() {
		return fmt.Errorf("storage: size counter %d != stored nodes %d", d.Size(), count)
	}

	// Per-node structural rules.
	for idStr, inf := range nodes {
		id := splid.MustParse(idStr)
		if inf.kind == xmlmodel.KindElement || inf.kind == xmlmodel.KindAttribute {
			if inf.name == xmlmodel.NoName || d.vocab.Name(inf.name) == "" {
				return fmt.Errorf("storage: %s %v has no vocabulary name", inf.kind, id)
			}
		}
		parent := id.Parent()
		if parent.IsNull() {
			if !id.IsRoot() {
				return fmt.Errorf("storage: non-root node %v has no parent", id)
			}
			if inf.kind != xmlmodel.KindElement {
				return fmt.Errorf("storage: root is a %v", inf.kind)
			}
			continue
		}
		pinf, ok := nodes[parent.String()]
		if !ok {
			return fmt.Errorf("storage: node %v is orphaned (parent %v missing)", id, parent)
		}
		switch inf.kind {
		case xmlmodel.KindElement, xmlmodel.KindText:
			if pinf.kind != xmlmodel.KindElement {
				return fmt.Errorf("storage: %v node %v under %v parent", inf.kind, id, pinf.kind)
			}
			if id.IsReservedChild() {
				return fmt.Errorf("storage: regular node %v uses the reserved division", id)
			}
		case xmlmodel.KindAttributeRoot:
			if pinf.kind != xmlmodel.KindElement {
				return fmt.Errorf("storage: attribute root %v under %v parent", id, pinf.kind)
			}
			if !id.IsReservedChild() {
				return fmt.Errorf("storage: attribute root %v not on the reserved division", id)
			}
		case xmlmodel.KindAttribute:
			if pinf.kind != xmlmodel.KindAttributeRoot {
				return fmt.Errorf("storage: attribute %v under %v parent", id, pinf.kind)
			}
			if inf.name == idSur && idSur != xmlmodel.NoName {
				el := parent.Parent()
				v, err := d.Value(id)
				if err != nil {
					return fmt.Errorf("storage: id attribute %v has no value: %w", id, err)
				}
				if prev, dup := idAttrs[string(v)]; dup {
					return fmt.Errorf("storage: duplicate id %q on %s and %v", v, prev, el)
				}
				idAttrs[string(v)] = el.String()
			}
		case xmlmodel.KindString:
			if pinf.kind != xmlmodel.KindText && pinf.kind != xmlmodel.KindAttribute {
				return fmt.Errorf("storage: string node %v under %v parent", id, pinf.kind)
			}
			if !id.IsReservedChild() {
				return fmt.Errorf("storage: string node %v not on the reserved division", id)
			}
		}
		// Text and attribute nodes must own exactly their string child.
		if inf.kind == xmlmodel.KindText || inf.kind == xmlmodel.KindAttribute {
			if _, ok := nodes[id.StringNode().String()]; !ok {
				return fmt.Errorf("storage: %v node %v lacks its string child", inf.kind, id)
			}
		}
	}

	// Element index: exact agreement with the stored elements.
	indexed := 0
	var verr error
	scanErr := d.elem.Ascend(nil, nil, func(k, _ []byte) bool {
		indexed++
		if len(k) < 3 {
			verr = fmt.Errorf("storage: element index key too short")
			return false
		}
		sur := xmlmodel.Sur(binary.BigEndian.Uint16(k[:2]))
		id, derr := splid.Decode(append([]byte(nil), k[2:]...))
		if derr != nil {
			verr = derr
			return false
		}
		want, ok := elements[id.String()]
		if !ok {
			verr = fmt.Errorf("storage: element index entry for missing element %v", id)
			return false
		}
		if want != sur {
			verr = fmt.Errorf("storage: element index names %v as %q, stored name is %q",
				id, d.vocab.Name(sur), d.vocab.Name(want))
			return false
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if verr != nil {
		return verr
	}
	if indexed != len(elements) {
		return fmt.Errorf("storage: element index has %d entries for %d elements", indexed, len(elements))
	}

	// ID index: exact agreement with the stored id attributes.
	idIndexed := 0
	scanErr = d.ids.Ascend(nil, nil, func(k, v []byte) bool {
		idIndexed++
		el, derr := splid.Decode(append([]byte(nil), v...))
		if derr != nil {
			verr = derr
			return false
		}
		want, ok := idAttrs[string(k)]
		if !ok {
			verr = fmt.Errorf("storage: id index maps %q to %v but no such id attribute exists", k, el)
			return false
		}
		if want != el.String() {
			verr = fmt.Errorf("storage: id index maps %q to %v, attribute lives on %s", k, el, want)
			return false
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if verr != nil {
		return verr
	}
	if idIndexed != len(idAttrs) {
		return fmt.Errorf("storage: id index has %d entries for %d id attributes", idIndexed, len(idAttrs))
	}
	return nil
}
