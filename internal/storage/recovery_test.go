package storage

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/pagestore"
	"repro/internal/splid"
	"repro/internal/wal"
)

// newLoggedDoc builds a fresh document on backend with a WAL attached.
func newLoggedDoc(t *testing.T, backend pagestore.Backend, segs wal.SegmentStore) (*Document, *wal.Log) {
	t.Helper()
	d, err := Create(backend, "bib", Options{})
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(segs, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	return d, log
}

// commitTxn force-writes a commit record for txn.
func commitTxn(t *testing.T, log *wal.Log, txn uint64) {
	t.Helper()
	lsn, err := log.AppendCommit(txn)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Force(lsn); err != nil {
		t.Fatal(err)
	}
}

// snapshotPages copies every page of backend.
func snapshotPages(t *testing.T, backend pagestore.Backend) [][]byte {
	t.Helper()
	n := int(backend.NumPages())
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		p := make([]byte, pagestore.PageSize)
		if err := backend.ReadPage(pagestore.PageID(i), p); err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

func TestRecoverCommittedVisibleUncommittedRolledBack(t *testing.T) {
	backend := pagestore.NewMemBackend()
	segs := wal.NewMemSegmentStore()
	d, log := newLoggedDoc(t, backend, segs)
	alloc := d.Allocator()

	// Transaction 1 commits durably.
	e1 := alloc.FirstChild(d.Root())
	t1 := d.ForTx(1)
	if _, err := t1.InsertElement(e1, "book"); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.SetAttribute(e1, "id", []byte("b1")); err != nil {
		t.Fatal(err)
	}
	commitTxn(t, log, 1)

	// Transaction 2 mutates — including changes to committed state — and
	// its dirty pages even reach the disk, but it never commits.
	e2 := alloc.NextSibling(e1)
	t2 := d.ForTx(2)
	if _, err := t2.InsertElement(e2, "article"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Rename(e1, "journal"); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil { // loser changes hit stable storage
		t.Fatal(err)
	}

	log.CrashNow()
	segs.Crash()

	log2, err := wal.Open(segs, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d2, rep, err := Recover(backend, log2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	if !rep.Committed[1] {
		t.Error("txn 1 not seen as committed")
	}
	if len(rep.Losers) != 1 || rep.Losers[0] != 2 {
		t.Errorf("Losers = %v, want [2]", rep.Losers)
	}
	if rep.UndoneOps == 0 {
		t.Error("no undo applied for the loser")
	}

	n, err := d2.GetNode(e1)
	if err != nil {
		t.Fatalf("committed element lost: %v", err)
	}
	if got := d2.Vocabulary().Name(n.Name); got != "book" {
		t.Errorf("loser rename survived: element named %q, want book", got)
	}
	a, err := d2.AttributeByName(e1, "id")
	if err != nil || a.ID.IsNull() {
		t.Fatalf("committed attribute lost: %v", err)
	}
	if v, err := d2.Value(a.ID); err != nil || string(v) != "b1" {
		t.Errorf("attribute value = %q, %v; want b1", v, err)
	}
	if ok, _ := d2.Exists(e2); ok {
		t.Error("uncommitted element visible after recovery")
	}
	if err := d2.Verify(); err != nil {
		t.Errorf("Verify after recovery: %v", err)
	}
}

func TestRecoverIdempotent(t *testing.T) {
	backend := pagestore.NewMemBackend()
	segs := wal.NewMemSegmentStore()
	d, log := newLoggedDoc(t, backend, segs)
	alloc := d.Allocator()

	e1 := alloc.FirstChild(d.Root())
	if _, err := d.ForTx(1).InsertElement(e1, "book"); err != nil {
		t.Fatal(err)
	}
	commitTxn(t, log, 1)
	e2 := alloc.NextSibling(e1)
	if _, err := d.ForTx(2).InsertElement(e2, "article"); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	log.CrashNow()
	segs.Crash()

	log2, err := wal.Open(segs, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d2, rep1, err := Recover(backend, log2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Losers) != 1 {
		t.Fatalf("first recovery Losers = %v", rep1.Losers)
	}
	want := snapshotPages(t, backend)

	// Crash again immediately and recover a second time: the rolled-back
	// loser is ended, so the second pass must change nothing.
	_ = d2
	log2.CrashNow()
	segs.Crash()
	log3, err := wal.Open(segs, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d3, rep2, err := Recover(backend, log3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if len(rep2.Losers) != 0 || rep2.UndoneOps != 0 {
		t.Errorf("second recovery rolled back again: losers %v, undone %d",
			rep2.Losers, rep2.UndoneOps)
	}
	got := snapshotPages(t, backend)
	if len(got) != len(want) {
		t.Fatalf("page count changed: %d -> %d", len(want), len(got))
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Errorf("page %d not byte-identical after repeated recovery", i)
		}
	}
	if err := d3.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestRecoverInterruptedMidRedo(t *testing.T) {
	// Committed work that never reached the disk forces redo writes; a torn
	// write injected into the FIRST recovery attempt leaves a page whose
	// checksum fails, and the retry must heal it from the logged full image.
	inner := pagestore.NewMemBackend()
	fb := pagestore.NewFaultBackend(inner, pagestore.FaultConfig{
		Schedule: []pagestore.ScheduledFault{
			{Op: pagestore.OpWrite, N: 1, Class: pagestore.ClassPermanent, Torn: true},
		},
	})
	fb.Disarm()
	segs := wal.NewMemSegmentStore()
	d, log := newLoggedDoc(t, fb, segs)
	alloc := d.Allocator()

	e1 := alloc.FirstChild(d.Root())
	var kids []splid.ID
	if _, err := d.ForTx(1).InsertElement(e1, "book"); err != nil {
		t.Fatal(err)
	}
	prev := alloc.FirstChild(e1)
	for i := 0; i < 20; i++ {
		if _, err := d.ForTx(1).InsertElement(prev, "title"); err != nil {
			t.Fatal(err)
		}
		kids = append(kids, prev)
		prev = alloc.NextSibling(prev)
	}
	commitTxn(t, log, 1)
	// No Flush: the committed pages exist only in the log.
	log.CrashNow()
	segs.Crash()

	log2, err := wal.Open(segs, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fb.Arm()
	if _, _, err := Recover(fb, log2, Options{}); !errors.Is(err, pagestore.ErrInjectedFault) {
		t.Fatalf("interrupted recovery error = %v, want injected fault", err)
	}
	fb.Disarm()

	d2, _, err := Recover(fb, log2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for _, id := range kids {
		if ok, _ := d2.Exists(id); !ok {
			t.Fatalf("committed node %v missing after interrupted recovery", id)
		}
	}
	if err := d2.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestRecoverHealsCorruptPages(t *testing.T) {
	// Corrupt every page the log holds a full image for (the first-touch
	// image rule covers every page written back during the WAL epoch) and
	// demand that recovery rebuilds each one from the log.
	backend := pagestore.NewMemBackend()
	segs := wal.NewMemSegmentStore()
	d, log := newLoggedDoc(t, backend, segs)
	alloc := d.Allocator()

	e1 := alloc.FirstChild(d.Root())
	if _, err := d.ForTx(1).InsertElement(e1, "book"); err != nil {
		t.Fatal(err)
	}
	prev := alloc.FirstChild(e1)
	var kids []splid.ID
	for i := 0; i < 20; i++ {
		if _, err := d.ForTx(1).InsertElement(prev, "title"); err != nil {
			t.Fatal(err)
		}
		kids = append(kids, prev)
		prev = alloc.NextSibling(prev)
	}
	commitTxn(t, log, 1)
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	log.CrashNow()
	segs.Crash()

	log2, err := wal.Open(segs, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	imaged := map[pagestore.PageID]bool{}
	if err := log2.Scan(func(r wal.Record) error {
		if r.Type != wal.RecOp {
			return nil
		}
		_, deltas, err := wal.DecodeOp(r.Payload)
		if err != nil {
			return err
		}
		for _, dl := range deltas {
			if dl.FullImage() {
				imaged[dl.Page] = true
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(imaged) == 0 {
		t.Fatal("no full-page images in the log")
	}
	for id := range imaged {
		p := make([]byte, pagestore.PageSize)
		if err := backend.ReadPage(id, p); err != nil {
			t.Fatal(err)
		}
		p[5000] ^= 0xFF // simulated bit rot / torn write residue
		if err := backend.WritePage(id, p); err != nil {
			t.Fatal(err)
		}
	}

	d2, rep, err := Recover(backend, log2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rep.HealedPages != len(imaged) {
		t.Errorf("HealedPages = %d, want %d", rep.HealedPages, len(imaged))
	}
	for _, id := range kids {
		if ok, _ := d2.Exists(id); !ok {
			t.Fatalf("committed node %v missing after healing", id)
		}
	}
	if err := d2.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}
