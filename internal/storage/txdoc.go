package storage

// Transaction-attributed mutation and write-ahead logging.
//
// TxDoc is a transaction's view of a Document: every structural mutation
// made through it is logged as ONE RecOp record carrying (a) the
// physiological page deltas that redo it and (b) a logical undo payload
// that reverts it. Because both travel in a single CRC-framed record, a
// crash can never persist half an operation's pages-without-undo or
// undo-without-pages: recovery sees the whole operation or none of it.
//
// The page deltas come from a pagestore capture (see pagestore/capture.go)
// bracketing the operation: pre-images are snapshotted at Fix, and the
// diff against them after the operation is the after-image set. The first
// delta a page contributes after AttachWAL is upgraded to a full body
// image — the anchor that lets redo heal a torn page whose on-disk bytes
// fail their checksum.
//
// Undo is logical, not physical: the payload names the inverse operation
// (delete this subtree, restore these nodes, set this old value/name), and
// recovery applies it through the same TxDoc path, so compensations are
// themselves logged with their own inverses. Rolling back a loser is then
// just applying its undo payloads in reverse log order; compensation pairs
// telescope away, and a RecEnd written afterwards makes the rollback
// idempotent across repeated recoveries.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pagestore"
	"repro/internal/splid"
	"repro/internal/wal"
	"repro/internal/xmlmodel"
)

// SystemTxn is the transaction ID for system-attributed operations (bulk
// load, relabeling, direct Document calls). Recovery redoes system
// operations but never undoes them.
const SystemTxn uint64 = 0

// TxDoc is a transaction-scoped mutation handle. Zero-cost to create;
// obtain one per operation via Document.ForTx.
type TxDoc struct {
	d   *Document
	txn uint64
}

// ForTx returns a view of the document whose mutations are attributed (and,
// once a WAL is attached, logged) to the given transaction.
func (d *Document) ForTx(txn uint64) TxDoc { return TxDoc{d: d, txn: txn} }

// Txn returns the transaction the view writes for.
func (t TxDoc) Txn() uint64 { return t.txn }

// Document returns the underlying document.
func (t TxDoc) Document() *Document { return t.d }

// AttachWAL flushes the document to establish a durable baseline and turns
// on write-ahead logging: every subsequent mutation appends a RecOp, the
// buffer manager enforces the WAL rule against log, and Txn.Commit/Abort
// (via tx.Manager.SetWAL) write the matching commit/end records.
func (d *Document) AttachWAL(log *wal.Log) error {
	d.latch.Lock()
	defer d.latch.Unlock()
	if err := d.writeMeta(); err != nil {
		return err
	}
	if err := d.store.Flush(); err != nil {
		return err
	}
	d.wal = log
	d.walMeta = d.metaSig()
	d.store.SetWAL(log)
	// Seed the tree-root history for point-in-time snapshots: the current
	// roots cover every snapshot LSN until an operation moves one (lsn 0
	// sorts below any real snapshot). Re-seeding on a post-recovery
	// re-attach is correct — snapshots do not survive restart.
	d.roots.seed(rootEntry{
		lsn:  0,
		doc:  d.doc.Root(),
		elem: d.elem.Root(),
		ids:  d.ids.Root(),
	})
	// Wire the buffer pool's checkpoint tick (Options.CheckpointInterval)
	// to the log: each tick takes one fuzzy checkpoint over this
	// document's dirty-page table.
	d.store.SetCheckpointer(func() error {
		_, err := d.Checkpoint()
		return err
	})
	return nil
}

// Checkpoint takes one fuzzy checkpoint of the attached WAL: the log
// snapshots its active-transaction table, collects the buffer pool's
// dirty-page table, appends and forces a checkpoint record, repoints the
// master record, and GCs fully-truncated segments. Writers are not
// quiesced. Returns the checkpoint record's LSN.
func (d *Document) Checkpoint() (wal.LSN, error) {
	log := d.WAL()
	if log == nil {
		return 0, errors.New("storage: no WAL attached")
	}
	return log.Checkpoint(func() ([]pagestore.DirtyPage, uint64) {
		return d.store.DirtyPageTable()
	})
}

// WAL returns the attached log (nil when logging is off).
func (d *Document) WAL() *wal.Log {
	d.latch.Lock()
	defer d.latch.Unlock()
	return d.wal
}

// metaSig summarizes the metadata page content that operations can change.
// When it differs from the last logged signature, the metadata page is
// rewritten inside the operation's capture so its deltas ride in the same
// record — tree-root changes and vocabulary growth reach recovery that way.
type metaSig struct {
	docRoot, elemRoot, idsRoot pagestore.PageID
	vocabLen                   int
}

func (d *Document) metaSig() metaSig {
	return metaSig{
		docRoot:  d.doc.Root(),
		elemRoot: d.elem.Root(),
		idsRoot:  d.ids.Root(),
		vocabLen: d.vocab.Len(),
	}
}

// logOp brackets one structural mutation with a page capture and appends
// its RecOp. fn runs the mutation and returns the logical undo payload
// (nil when the operation failed or needs no undo). Caller holds d.latch.
//
// Page deltas are logged even when fn errors: a failed operation may have
// mutated pages before failing (the runtime treats that as residue for the
// transaction's abort path), and redo must reproduce whatever the buffer
// pool holds, or the pageLSN chain would lie.
func (d *Document) logOp(txn uint64, fn func() (undo []byte, err error)) error {
	if d.wal == nil {
		_, err := fn()
		return err
	}
	// The capture floor is the log position this operation's record cannot
	// precede; publishing it lets a concurrent checkpoint's dirty-page
	// scan bound the records of pages this capture is about to dirty.
	cap := d.store.BeginCapture(d.wal.NextLSN())
	defer cap.Close()
	undo, opErr := fn()
	if opErr != nil {
		undo = nil
	}
	var metaErr error
	if sig := d.metaSig(); sig != d.walMeta {
		if metaErr = d.writeMeta(); metaErr == nil {
			d.walMeta = sig
		}
	}
	deltas := cap.Deltas()
	if len(deltas) == 0 && len(undo) == 0 {
		if opErr != nil {
			return opErr
		}
		return metaErr
	}
	lsn, appendErr := d.wal.AppendOp(txn, undo, deltas)
	if appendErr == nil {
		cap.Commit(lsn)
		// Record any root movement under the operation's LSN — before the
		// transaction's commit record can exist, so every snapshot LSN that
		// sees the commit already finds the entry.
		d.noteRoots(lsn)
	}
	switch {
	case opErr != nil:
		return opErr
	case metaErr != nil:
		return metaErr
	default:
		return appendErr
	}
}

// InsertElement adds an element node labeled id.
func (t TxDoc) InsertElement(id splid.ID, name string) (xmlmodel.Node, error) {
	d := t.d
	d.latch.Lock()
	defer d.latch.Unlock()
	var n xmlmodel.Node
	err := d.logOp(t.txn, func() (undo []byte, err error) {
		if n, err = d.insertElementLocked(id, name); err != nil {
			return nil, err
		}
		return encodeUndoDelete(id), nil
	})
	return n, err
}

// InsertText adds a text node (and its string child) labeled id.
func (t TxDoc) InsertText(id splid.ID, value []byte) (xmlmodel.Node, error) {
	d := t.d
	d.latch.Lock()
	defer d.latch.Unlock()
	var n xmlmodel.Node
	err := d.logOp(t.txn, func() (undo []byte, err error) {
		if n, err = d.insertTextLocked(id, value); err != nil {
			return nil, err
		}
		return encodeUndoDelete(id), nil
	})
	return n, err
}

// SetAttribute adds or overwrites an attribute on element el.
func (t TxDoc) SetAttribute(el splid.ID, name string, value []byte) (xmlmodel.Node, error) {
	d := t.d
	d.latch.Lock()
	defer d.latch.Unlock()
	var n xmlmodel.Node
	err := d.logOp(t.txn, func() (undo []byte, err error) {
		n, undo, err = d.setAttributeLocked(el, name, value)
		return undo, err
	})
	return n, err
}

// SetValue overwrites the character data of a text or attribute node.
func (t TxDoc) SetValue(id splid.ID, value []byte) error {
	d := t.d
	d.latch.Lock()
	defer d.latch.Unlock()
	return d.logOp(t.txn, func() (undo []byte, err error) {
		old, err := d.setValueLocked(id, value)
		if err != nil {
			return nil, err
		}
		return encodeUndoSetValue(id, old), nil
	})
}

// Rename changes the name of an element or attribute node.
func (t TxDoc) Rename(id splid.ID, newName string) error {
	d := t.d
	d.latch.Lock()
	defer d.latch.Unlock()
	return d.logOp(t.txn, func() (undo []byte, err error) {
		oldName, err := d.renameLocked(id, newName)
		if err != nil {
			return nil, err
		}
		return encodeUndoRename(id, oldName), nil
	})
}

// DeleteSubtree removes the node labeled id and all its descendants.
func (t TxDoc) DeleteSubtree(id splid.ID) (int, error) {
	d := t.d
	d.latch.Lock()
	defer d.latch.Unlock()
	count := 0
	err := d.logOp(t.txn, func() (undo []byte, err error) {
		victims, err := d.deleteSubtreeLocked(id)
		if err != nil {
			return nil, err
		}
		count = len(victims)
		return encodeUndoRestore(victims), nil
	})
	return count, err
}

// RestoreSubtree reinserts previously deleted nodes (the inverse of
// DeleteSubtree; also the operation recovery uses to undo deletions).
func (t TxDoc) RestoreSubtree(nodes []xmlmodel.Node) error {
	d := t.d
	d.latch.Lock()
	defer d.latch.Unlock()
	return d.logOp(t.txn, func() (undo []byte, err error) {
		if err := d.restoreSubtreeLocked(nodes); err != nil {
			return nil, err
		}
		if len(nodes) == 0 {
			return nil, nil
		}
		return encodeUndoDelete(nodes[0].ID), nil
	})
}

// Logical undo payload catalog. Each payload starts with a one-byte opcode
// followed by opcode-specific fields; SPLIDs are length-prefixed with u16,
// node records with u32.
const (
	undoDelete   byte = 1 // [u16 len][splid] — delete the subtree rooted here
	undoSetValue byte = 2 // [u16 len][splid][old value] — restore a value
	undoRename   byte = 3 // [u16 len][splid][old name] — restore a name
	undoRestore  byte = 4 // [u32 n] n×([u16 len][splid][u32 len][record]) — reinsert
)

// errCorruptUndo reports an undecodable undo payload in a CRC-clean record.
var errCorruptUndo = errors.New("storage: corrupt undo payload")

func appendSplid(buf []byte, id splid.ID) []byte {
	enc := id.Encode()
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(enc)))
	buf = append(buf, l[:]...)
	return append(buf, enc...)
}

func takeSplid(p []byte) (splid.ID, []byte, error) {
	if len(p) < 2 {
		return splid.Null, nil, errCorruptUndo
	}
	n := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return splid.Null, nil, errCorruptUndo
	}
	id, err := splid.Decode(append([]byte(nil), p[:n]...))
	if err != nil {
		return splid.Null, nil, fmt.Errorf("%w: %v", errCorruptUndo, err)
	}
	return id, p[n:], nil
}

func encodeUndoDelete(id splid.ID) []byte {
	return appendSplid([]byte{undoDelete}, id)
}

func encodeUndoSetValue(id splid.ID, old []byte) []byte {
	return append(appendSplid([]byte{undoSetValue}, id), old...)
}

func encodeUndoRename(id splid.ID, oldName string) []byte {
	return append(appendSplid([]byte{undoRename}, id), oldName...)
}

func encodeUndoRestore(nodes []xmlmodel.Node) []byte {
	buf := []byte{undoRestore, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(buf[1:], uint32(len(nodes)))
	for _, n := range nodes {
		buf = appendSplid(buf, n.ID)
		rec := xmlmodel.EncodeRecord(n)
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(rec)))
		buf = append(buf, l[:]...)
		buf = append(buf, rec...)
	}
	return buf
}

// applyUndo executes one logical undo payload through the transaction
// view, so the compensation is logged like any other operation. It is
// tolerant of already-undone state (ErrNodeNotFound, ErrNodeExists):
// recovery may replay an undo whose effect partially survives from a
// runtime abort that crashed halfway.
func applyUndo(t TxDoc, payload []byte) error {
	if len(payload) == 0 {
		return nil
	}
	op, p := payload[0], payload[1:]
	switch op {
	case undoDelete:
		id, _, err := takeSplid(p)
		if err != nil {
			return err
		}
		if _, err := t.DeleteSubtree(id); err != nil && !errors.Is(err, ErrNodeNotFound) {
			return err
		}
		return nil
	case undoSetValue:
		id, rest, err := takeSplid(p)
		if err != nil {
			return err
		}
		if err := t.SetValue(id, append([]byte(nil), rest...)); err != nil && !errors.Is(err, ErrNodeNotFound) {
			return err
		}
		return nil
	case undoRename:
		id, rest, err := takeSplid(p)
		if err != nil {
			return err
		}
		if err := t.Rename(id, string(rest)); err != nil && !errors.Is(err, ErrNodeNotFound) {
			return err
		}
		return nil
	case undoRestore:
		if len(p) < 4 {
			return errCorruptUndo
		}
		n := int(binary.BigEndian.Uint32(p))
		p = p[4:]
		nodes := make([]xmlmodel.Node, 0, n)
		for i := 0; i < n; i++ {
			id, rest, err := takeSplid(p)
			if err != nil {
				return err
			}
			if len(rest) < 4 {
				return errCorruptUndo
			}
			rl := int(binary.BigEndian.Uint32(rest))
			rest = rest[4:]
			if len(rest) < rl {
				return errCorruptUndo
			}
			node, err := xmlmodel.DecodeRecord(id, append([]byte(nil), rest[:rl]...))
			if err != nil {
				return fmt.Errorf("%w: %v", errCorruptUndo, err)
			}
			nodes = append(nodes, node)
			p = rest[rl:]
		}
		// Skip nodes that survived (a half-finished runtime abort may have
		// restored a prefix already).
		live := nodes[:0]
		for _, node := range nodes {
			ok, err := t.d.Exists(node.ID)
			if err != nil {
				return err
			}
			if !ok {
				live = append(live, node)
			}
		}
		if len(live) == 0 {
			return nil
		}
		return t.RestoreSubtree(live)
	default:
		return fmt.Errorf("%w: opcode %d", errCorruptUndo, op)
	}
}
