package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pagestore"
	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// modelNode is the in-memory reference model: a plain pointer tree.
type modelNode struct {
	name     string
	text     string // text content for text nodes
	isText   bool
	attrs    map[string]string
	children []*modelNode
	id       splid.ID // assigned lazily from the store for comparison
}

// TestModelEquivalence drives the document store and a plain in-memory tree
// with the same random operation sequence and compares full structure,
// attributes, and text after every few steps — the storage layer's
// model-based property test.
func TestModelEquivalence(t *testing.T) {
	d, err := Create(pagestore.NewMemBackend(), "root", Options{Dist: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	model := &modelNode{name: "root", attrs: map[string]string{}, id: d.Root()}
	rng := rand.New(rand.NewSource(2026))

	// collect returns all element model nodes (candidates for operations).
	var collect func(n *modelNode, out []*modelNode) []*modelNode
	collect = func(n *modelNode, out []*modelNode) []*modelNode {
		if !n.isText {
			out = append(out, n)
		}
		for _, c := range n.children {
			out = collect(c, out)
		}
		return out
	}

	nameFor := func(i int) string { return fmt.Sprintf("el%d", i%7) }

	for step := 0; step < 600; step++ {
		elems := collect(model, nil)
		target := elems[rng.Intn(len(elems))]
		switch op := rng.Intn(10); {
		case op < 4: // append element
			name := nameFor(rng.Int())
			// Model append.
			mn := &modelNode{name: name, attrs: map[string]string{}}
			target.children = append(target.children, mn)
			// Store append.
			last, err := d.LastChild(target.id)
			if err != nil {
				t.Fatal(err)
			}
			id, err := d.Allocator().Between(target.id, last.ID, splid.Null)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.InsertElement(id, name); err != nil {
				t.Fatal(err)
			}
			mn.id = id
		case op < 6: // append text
			text := fmt.Sprintf("text-%d", step)
			mn := &modelNode{isText: true, text: text}
			target.children = append(target.children, mn)
			last, err := d.LastChild(target.id)
			if err != nil {
				t.Fatal(err)
			}
			id, err := d.Allocator().Between(target.id, last.ID, splid.Null)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.InsertText(id, []byte(text)); err != nil {
				t.Fatal(err)
			}
			mn.id = id
		case op < 7: // set attribute
			name := fmt.Sprintf("a%d", rng.Intn(4))
			val := fmt.Sprintf("v%d", step)
			target.attrs[name] = val
			if _, err := d.SetAttribute(target.id, name, []byte(val)); err != nil {
				t.Fatal(err)
			}
		case op < 8: // rename
			if target == model {
				continue
			}
			name := nameFor(rng.Int() + 3)
			target.name = name
			if err := d.Rename(target.id, name); err != nil {
				t.Fatal(err)
			}
		default: // delete subtree
			if target == model {
				continue
			}
			// Remove from the model parent.
			removeModel(model, target)
			if _, err := d.DeleteSubtree(target.id); err != nil {
				t.Fatal(err)
			}
		}
		if step%50 == 0 {
			compareTrees(t, d, model)
			if err := d.Verify(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	compareTrees(t, d, model)
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

func removeModel(root, victim *modelNode) bool {
	for i, c := range root.children {
		if c == victim {
			root.children = append(root.children[:i], root.children[i+1:]...)
			return true
		}
		if removeModel(c, victim) {
			return true
		}
	}
	return false
}

// compareTrees checks that the stored document matches the model exactly.
func compareTrees(t *testing.T, d *Document, m *modelNode) {
	t.Helper()
	var walk func(m *modelNode)
	walk = func(m *modelNode) {
		if m.isText {
			n, err := d.GetNode(m.id)
			if err != nil || n.Kind != xmlmodel.KindText {
				t.Fatalf("text node %v: %+v, %v", m.id, n, err)
			}
			v, err := d.Value(m.id)
			if err != nil || string(v) != m.text {
				t.Fatalf("text %v = %q, want %q (%v)", m.id, v, m.text, err)
			}
			return
		}
		n, err := d.GetNode(m.id)
		if err != nil || n.Kind != xmlmodel.KindElement {
			t.Fatalf("element %v: %+v, %v", m.id, n, err)
		}
		if got := d.Vocabulary().Name(n.Name); got != m.name {
			t.Fatalf("element %v named %q, want %q", m.id, got, m.name)
		}
		// Attributes.
		got := map[string]string{}
		if err := d.Attributes(m.id, func(a xmlmodel.Node) bool {
			v, _ := d.Value(a.ID)
			got[d.Vocabulary().Name(a.Name)] = string(v)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(m.attrs) {
			t.Fatalf("element %v has %d attrs, want %d", m.id, len(got), len(m.attrs))
		}
		for k, v := range m.attrs {
			if got[k] != v {
				t.Fatalf("element %v attr %s = %q, want %q", m.id, k, got[k], v)
			}
		}
		// Children in order.
		var kids []splid.ID
		d.ScanChildren(m.id, func(c xmlmodel.Node) bool {
			kids = append(kids, c.ID)
			return true
		})
		if len(kids) != len(m.children) {
			t.Fatalf("element %v has %d children, want %d", m.id, len(kids), len(m.children))
		}
		for i, mc := range m.children {
			if !kids[i].Equal(mc.id) {
				t.Fatalf("element %v child %d = %v, want %v", m.id, i, kids[i], mc.id)
			}
			walk(mc)
		}
	}
	walk(m)
}
