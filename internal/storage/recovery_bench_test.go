// BenchmarkRecovery measures restart latency: crash a TaMix burst once per
// configuration, then repeatedly recover clones of the crash image. The
// grid crosses WAL length (burst size) × checkpointing (off / every 3 ops
// per worker) × redo parallelism (1 / 16 shards), so BENCH_recovery.json
// shows both effects the design promises: checkpoints bound restart work by
// work-since-checkpoint instead of total history, and shard-parallel redo
// overlaps per-page I/O.
package storage_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/pagestore"
	"repro/internal/storage"
	"repro/internal/tamix"
	"repro/internal/wal"
)

func BenchmarkRecovery(b *testing.B) {
	// Per-page backend latency on the recovered clones: redo and the final
	// flush pay it, so parallel redo has real I/O to overlap. Clones only —
	// image generation stays fast. (time.Sleep granularity makes the
	// effective cost closer to a disk seek than the nominal value, which is
	// the point.)
	const pageLatency = 20 * time.Microsecond

	for _, ops := range []int{40, 160} {
		for _, ckptEvery := range []int{0, 3} {
			cfg := tamix.CrashConfig{
				Seed:            9000 + int64(ops)*7 + int64(ckptEvery),
				OpsPerWorker:    ops,
				CheckpointEvery: ckptEvery,
			}
			// A bigger document than the crash matrix uses, so redo touches
			// enough distinct pages to parallelize; the trickle flusher keeps
			// the dirty-page table small, which is what lets a checkpoint
			// advance the redo LSN past already-durable history.
			cfg.Bib = tamix.Scaled(0.15)
			cfg.Bib.BufferFrames = 64
			cfg.Bib.FlusherInterval = time.Millisecond
			out, err := tamix.CrashBurst(cfg)
			if err != nil {
				b.Fatal(err)
			}
			mem, ok := out.Backend.(*pagestore.MemBackend)
			if !ok {
				b.Fatalf("benchmark needs a raw MemBackend, got %T", out.Backend)
			}
			for _, shards := range []int{1, 16} {
				name := fmt.Sprintf("ops=%d/ckpt=%v/shards=%d", 3*ops, ckptEvery > 0, shards)
				b.Run(name, func(b *testing.B) {
					benchRecover(b, mem, out, shards, pageLatency)
				})
			}
		}
	}

	// The redo-heavy image: no trickle flusher and a small pool, so the
	// crash leaves deltas outstanding against many distinct pages and the
	// redo pass is the bulk of restart. This is the cell where shard
	// parallelism pays; the redo_ns metric is the redo critical path
	// (slowest shard), isolated from the rest of restart.
	cfg := tamix.CrashConfig{Seed: 9997, Workers: 8, OpsPerWorker: 300}
	cfg.Bib = tamix.Scaled(0.15)
	cfg.Bib.BufferFrames = 32
	out, err := tamix.CrashBurst(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mem, ok := out.Backend.(*pagestore.MemBackend)
	if !ok {
		b.Fatalf("benchmark needs a raw MemBackend, got %T", out.Backend)
	}
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("redo=heavy/shards=%d", shards), func(b *testing.B) {
			benchRecover(b, mem, out, shards, pageLatency)
		})
	}
}

// benchRecover times one recovery configuration over clones of a crash
// image, reporting the scan size and the redo critical path alongside
// ns/op.
func benchRecover(b *testing.B, mem *pagestore.MemBackend, out *tamix.CrashOutcome, shards int, lat time.Duration) {
	var records int
	var redoNS int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		backend := mem.Clone()
		backend.SimulatedLatency = lat
		segs := out.Segments.Clone()
		b.StartTimer()

		log, err := wal.Open(segs, wal.Config{})
		if err != nil {
			b.Fatal(err)
		}
		opts := out.Opts
		opts.RedoShards = shards
		d, rep, err := storage.Recover(backend, log, opts)
		if err != nil {
			b.Fatal(err)
		}
		records = rep.Records
		redoNS = 0
		for _, ns := range rep.ShardRedoNS {
			if ns > redoNS {
				redoNS = ns
			}
		}

		b.StopTimer()
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(records), "records")
	b.ReportMetric(float64(redoNS), "redo_ns")
}
