package storage

import (
	"errors"
	"fmt"

	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// Subtree relabeling (Section 3.2): SPLIDs are maintenance-free in theory,
// but the B*-tree's 128-byte key limit can force a rewrite when insertions
// pile up long even-division overflow chains. XTC reacts by relabeling just
// the affected subtree — all SPLID properties are preserved and no other
// labels change. The caller must hold exclusive access to the subtree
// (in XTC, the relabeling transaction locks it exclusively and may abort a
// violating transaction first).

// ErrRelabelRoot is returned when asked to relabel the document root (its
// label is the fixed "1" and can never overflow).
var ErrRelabelRoot = errors.New("storage: cannot relabel the document root")

// RelabelSubtree rewrites the subtree rooted at old with fresh, compact
// labels: the root receives a new label between its current siblings and
// every descendant gets gap-spaced child labels. It returns the subtree's
// new root label. Both secondary indexes follow the move.
func (d *Document) RelabelSubtree(old splid.ID) (splid.ID, error) {
	d.latch.Lock()
	defer d.latch.Unlock()
	// Logged as a system operation: relabeling is its own recovery unit
	// (redo-only, never undone) regardless of which transaction triggered it
	// — XTC runs it under exclusive subtree access, outside user rollback.
	var newRoot splid.ID
	err := d.logOp(SystemTxn, func() ([]byte, error) {
		var err error
		newRoot, err = d.relabelSubtreeLocked(old)
		return nil, err
	})
	return newRoot, err
}

func (d *Document) relabelSubtreeLocked(old splid.ID) (splid.ID, error) {
	if old.IsRoot() {
		return splid.Null, ErrRelabelRoot
	}
	// Capture the subtree.
	var nodes []xmlmodel.Node
	if err := d.ScanSubtree(old, func(n xmlmodel.Node) bool {
		nodes = append(nodes, n)
		return true
	}); err != nil {
		return splid.Null, err
	}
	if len(nodes) == 0 {
		return splid.Null, fmt.Errorf("%w: %v", ErrNodeNotFound, old)
	}

	// Choose the new root label between the current neighbors. Neighbors
	// keep their labels, so the new label may still carry an overflow chain
	// — but a single fresh Between result is always near-minimal for its
	// position.
	prev, err := d.PrevSibling(old)
	if err != nil {
		return splid.Null, err
	}
	next, err := d.NextSibling(old)
	if err != nil {
		return splid.Null, err
	}
	parent := old.Parent()
	newRoot, err := d.alloc.Between(parent, prev.ID, next.ID)
	if err != nil {
		return splid.Null, err
	}
	// The fresh label may coincide with the old one (e.g. an only child);
	// the descendants are renumbered either way — that is where overflow
	// chains accumulate.

	// Remap every node: the root translates to newRoot; descendants are
	// renumbered level by level with gap-spaced labels, erasing overflow
	// chains entirely.
	mapping := map[string]splid.ID{old.String(): newRoot}
	childCount := map[string]int{}
	for _, n := range nodes[1:] {
		oldParent := n.ID.Parent()
		newParent, ok := mapping[oldParent.String()]
		if !ok {
			return splid.Null, fmt.Errorf("storage: relabel lost parent of %v", n.ID)
		}
		var newID splid.ID
		if n.ID.IsReservedChild() {
			newID = newParent.AttributeRoot() // also the string-node shape
		} else {
			newID = d.alloc.NthChild(newParent, childCount[oldParent.String()])
			childCount[oldParent.String()]++
		}
		mapping[n.ID.String()] = newID
	}

	// Replace the records: delete all old keys, insert all new ones. The
	// value bytes are reused as-is; only keys (and index entries) change.
	idSur, _ := d.vocab.Lookup(IDAttrName)
	for i := len(nodes) - 1; i >= 0; i-- {
		if err := d.deleteRaw(nodes[i]); err != nil {
			return splid.Null, err
		}
	}
	for _, n := range nodes {
		moved := n
		moved.ID = mapping[n.ID.String()]
		if err := d.insertRaw(moved); err != nil {
			return splid.Null, err
		}
	}
	// Re-point the ID index entries of relocated elements.
	for _, n := range nodes {
		if n.Kind == xmlmodel.KindAttribute && n.Name == idSur && idSur != xmlmodel.NoName {
			newAttr := mapping[n.ID.String()]
			newEl := newAttr.Parent().Parent()
			v, err := d.Value(newAttr)
			if err != nil {
				return splid.Null, err
			}
			if err := d.ids.Insert(v, newEl.Encode()); err != nil {
				return splid.Null, err
			}
		}
	}
	return newRoot, nil
}

// NeedsRelabel reports whether a child of parent at the given insert
// position would exceed the B*-tree key limit, i.e. whether the subtree
// should be relabeled before inserting.
func (d *Document) NeedsRelabel(parent, left, right splid.ID) (bool, error) {
	id, err := d.alloc.Between(parent, left, right)
	if err != nil {
		return false, err
	}
	return id.EncodedLen() > maxSplidBytes, nil
}

// maxSplidBytes leaves headroom under btree.MaxKeyLen for the element-index
// prefix and future key decoration.
const maxSplidBytes = 120
