package wal

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkWALAppend measures the append+force path on a real file-backed
// segment store. The "single" variant is one writer forcing every record —
// the worst case, one fsync per commit. The "group" variant is many
// writers forcing concurrently: the flusher batches their records behind
// shared fsyncs, which is the entire point of group commit.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 256)
	open := func(b *testing.B) *Log {
		b.Helper()
		store, err := NewFileSegmentStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		l, err := Open(store, Config{})
		if err != nil {
			b.Fatal(err)
		}
		return l
	}
	report := func(b *testing.B, l *Log) {
		st := l.Stats()
		if st.Syncs > 0 {
			b.ReportMetric(float64(st.Appends)/float64(st.Syncs), "appends/sync")
		}
		l.Close()
	}

	b.Run("single", func(b *testing.B) {
		l := open(b)
		b.SetBytes(int64(frameSize(len(payload))))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lsn, err := l.Append(RecOp, 1, payload)
			if err != nil {
				b.Fatal(err)
			}
			if err := l.Force(lsn); err != nil {
				b.Fatal(err)
			}
		}
		report(b, l)
	})

	b.Run("group", func(b *testing.B) {
		l := open(b)
		var txn atomic.Uint64
		b.SetBytes(int64(frameSize(len(payload))))
		// 8 forcing goroutines per core: group commit only shows up when
		// several commits race for the same fsync.
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			id := txn.Add(1)
			for pb.Next() {
				lsn, err := l.Append(RecOp, id, payload)
				if err != nil {
					b.Error(err)
					return
				}
				if err := l.Force(lsn); err != nil {
					b.Error(err)
					return
				}
			}
		})
		report(b, l)
	})
}

// BenchmarkWALRecoveryScan measures a cold scan of a populated log — the
// fixed cost every restart pays before redo begins.
func BenchmarkWALRecoveryScan(b *testing.B) {
	store := NewMemSegmentStore()
	l, err := Open(store, Config{})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 512)
	const records = 10000
	for i := 0; i < records; i++ {
		if _, err := l.Append(RecOp, uint64(i%7+1), payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	l2, err := Open(store, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer l2.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := l2.Scan(func(Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatal(fmt.Errorf("scanned %d records, want %d", n, records))
		}
	}
}
