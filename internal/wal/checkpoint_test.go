package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/pagestore"
)

func TestCheckpointCodecRoundTrip(t *testing.T) {
	cases := []*Checkpoint{
		{RedoLSN: 1},
		{RedoLSN: 4096, Dirty: []pagestore.DirtyPage{{Page: 3, RecLSN: 4096}}},
		{
			RedoLSN: 123456789,
			Dirty: []pagestore.DirtyPage{
				{Page: 0, RecLSN: 123456789},
				{Page: 7, RecLSN: 900000000},
				{Page: 4_000_000_000, RecLSN: 1},
			},
			Active: []AttEntry{
				{Txn: 1, FirstLSN: 200000000},
				{Txn: 18446744073709551615, FirstLSN: 999999999},
			},
		},
	}
	for i, ck := range cases {
		got, err := DecodeCheckpoint(EncodeCheckpoint(ck))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got.LSN = ck.LSN // LSN travels in the record header, not the payload
		if !reflect.DeepEqual(got, ck) {
			t.Fatalf("case %d: round trip %+v, want %+v", i, got, ck)
		}
	}
}

func TestDecodeCheckpointHostile(t *testing.T) {
	valid := EncodeCheckpoint(&Checkpoint{
		RedoLSN: 500,
		Dirty:   []pagestore.DirtyPage{{Page: 1, RecLSN: 500}, {Page: 2, RecLSN: 600}},
		Active:  []AttEntry{{Txn: 9, FirstLSN: 450}},
	})

	badVersion := append([]byte(nil), valid...)
	badVersion[0] = 99

	// A dirty count claiming ~357M entries in a few bytes: must be rejected
	// by length validation before any allocation happens.
	hugeDirty := append([]byte(nil), valid[:13]...)
	binary.LittleEndian.PutUint32(hugeDirty[9:], 0xFFFFFFF)

	hugeActive := append([]byte(nil), valid[:13]...)
	binary.LittleEndian.PutUint32(hugeActive[9:], 0) // no dirty entries
	hugeActive = append(hugeActive, 0xFF, 0xFF, 0xFF, 0x0F)

	cases := map[string][]byte{
		"empty":             nil,
		"too short":         valid[:5],
		"header only":       valid[:12],
		"bad version":       badVersion,
		"huge dirty count":  hugeDirty,
		"huge active count": hugeActive,
		"truncated dirty":   valid[:20],
		"missing att count": valid[:len(valid)-17],
		"truncated att":     valid[:len(valid)-1],
		"trailing byte":     append(append([]byte(nil), valid...), 0),
		"trailing bytes":    append(append([]byte(nil), valid...), 1, 2, 3),
	}
	for name, p := range cases {
		if _, err := DecodeCheckpoint(p); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("%s: err = %v, want ErrCorruptCheckpoint", name, err)
		}
	}
	if _, err := DecodeCheckpoint(valid); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
}

func TestMasterRecordRoundTrip(t *testing.T) {
	store := NewMemSegmentStore()
	if m, ok := readMaster(store); ok {
		t.Fatalf("fresh store has a master: %+v", m)
	}
	want := masterRec{ckptLSN: 777, truncLSN: 555, keepIdx: 3, keepBase: 400}
	if err := store.WriteMaster(encodeMaster(want)); err != nil {
		t.Fatal(err)
	}
	got, ok := readMaster(store)
	if !ok || got != want {
		t.Fatalf("readMaster = %+v, %v; want %+v, true", got, ok, want)
	}

	// Flip one byte anywhere in the record: the CRC (or magic) must catch it.
	enc := encodeMaster(want)
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if err := store.WriteMaster(bad); err != nil {
			t.Fatal(err)
		}
		if m, ok := readMaster(store); ok {
			t.Fatalf("corrupt master (byte %d) accepted: %+v", i, m)
		}
	}
	// Truncated master: rejected, not mis-parsed.
	if err := store.WriteMaster(enc[:masterSize-8]); err != nil {
		t.Fatal(err)
	}
	if _, ok := readMaster(store); ok {
		t.Fatal("truncated master accepted")
	}
}

func TestFileStoreMasterDurability(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileSegmentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if data, err := store.ReadMaster(); err != nil || data != nil {
		t.Fatalf("fresh file store master = %v, %v; want nil, nil", data, err)
	}
	want := masterRec{ckptLSN: 42, truncLSN: 17, keepIdx: 1, keepBase: 9}
	if err := store.WriteMaster(encodeMaster(want)); err != nil {
		t.Fatal(err)
	}
	// A fresh handle on the same directory sees the same master (the write
	// went through temp+rename, so there is no half-written window).
	store2, err := NewFileSegmentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := readMaster(store2)
	if !ok || got != want {
		t.Fatalf("reopened master = %+v, %v; want %+v, true", got, ok, want)
	}
}

// numSegs counts the store's live segments.
func numSegs(t *testing.T, store SegmentStore) int {
	t.Helper()
	idxs, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	return len(idxs)
}

// fillLog appends n op records of the given payload size under one
// transaction per record, committing each so the ATT stays empty. Each
// commit is forced individually to keep group-commit batches small enough
// that the log actually rotates segments.
func fillLog(t *testing.T, l *Log, n, size int) LSN {
	t.Helper()
	payload := bytes.Repeat([]byte{0xAB}, size)
	var last LSN
	for i := 0; i < n; i++ {
		txn := uint64(i + 1)
		if _, err := l.Append(RecOp, txn, payload); err != nil {
			t.Fatal(err)
		}
		lsn, err := l.AppendCommit(txn)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Force(lsn); err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	return last
}

func TestCheckpointGCsSegmentsAndReanchors(t *testing.T) {
	store := NewMemSegmentStore()
	l, err := Open(store, Config{SegmentSize: 1024, Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillLog(t, l, 40, 100) // ~4.5KiB of records across several segments
	if numSegs(t, store) < 3 {
		t.Fatalf("only %d segments; test needs rotation", numSegs(t, store))
	}
	before := numSegs(t, store)

	lsn, err := l.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Checkpoints != 1 || st.CheckpointLSN != lsn {
		t.Fatalf("stats = %+v, want 1 checkpoint at %d", st, lsn)
	}
	if st.SegmentsGCed == 0 || numSegs(t, store) >= before {
		t.Fatalf("no GC: %d segments before, %d after, %d collected",
			before, numSegs(t, store), st.SegmentsGCed)
	}
	ck := l.LatestCheckpoint()
	if ck == nil || ck.LSN != lsn || len(ck.Active) != 0 {
		t.Fatalf("LatestCheckpoint = %+v", ck)
	}

	// The truncated log must reopen: bases re-anchor from the master record
	// even though segment 0 is gone, the checkpoint is found again, and both
	// appending and scanning from the checkpoint keep working.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(store, Config{SegmentSize: 1024, Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	ck2 := l2.LatestCheckpoint()
	if ck2 == nil || ck2.LSN != lsn {
		t.Fatalf("reopened checkpoint = %+v, want LSN %d", ck2, lsn)
	}
	post, err := l2.Append(RecCommit, 999, nil)
	if err != nil {
		t.Fatal(err)
	}
	if post <= lsn {
		t.Fatalf("post-reopen LSN %d not above checkpoint %d", post, lsn)
	}
	if err := l2.Force(post); err != nil {
		t.Fatal(err)
	}
	var got []LSN
	if err := l2.ScanFrom(ck2.RedoLSN, func(r Record) error {
		got = append(got, r.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[len(got)-1] != post {
		t.Fatalf("scan from redo LSN saw %d records, last %v, want last %d",
			len(got), got, post)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("scan order broken: %v", got)
		}
	}
}

func TestCheckpointRetainKeepsNewestSegments(t *testing.T) {
	store := NewMemSegmentStore()
	l, err := Open(store, Config{SegmentSize: 1024, Retain: 64})
	if err != nil {
		t.Fatal(err)
	}
	fillLog(t, l, 40, 100)
	before := numSegs(t, store)
	if _, err := l.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.SegmentsGCed != 0 || numSegs(t, store) < before {
		t.Fatalf("retain 64 still collected %d of %d segments", st.SegmentsGCed, before)
	}
}

func TestCheckpointActiveTxnPinsSegments(t *testing.T) {
	store := NewMemSegmentStore()
	l, err := Open(store, Config{SegmentSize: 1024, Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Transaction 1000 logs its first record in segment 0 and never
	// finishes (fillLog's own transactions all commit).
	const loser = 1000
	if _, err := l.Append(RecOp, loser, []byte("loser-first-record")); err != nil {
		t.Fatal(err)
	}
	fillLog(t, l, 40, 100)
	before := numSegs(t, store)
	if before < 3 {
		t.Fatalf("only %d segments; test needs rotation", before)
	}
	if _, err := l.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.SegmentsGCed != 0 || numSegs(t, store) < before {
		t.Fatalf("GC ran over an active transaction's records (%d collected)", st.SegmentsGCed)
	}
	if st.ActiveTxns != 1 {
		t.Fatalf("ActiveTxns = %d, want 1", st.ActiveTxns)
	}
	ck := l.LatestCheckpoint()
	if len(ck.Active) != 1 || ck.Active[0].Txn != loser {
		t.Fatalf("checkpoint ATT = %+v, want the loser", ck.Active)
	}

	// Ending the transaction unpins its records: the next checkpoint GCs.
	elsn, err := l.AppendEnd(loser)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Force(elsn); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.SegmentsGCed == 0 {
		t.Fatal("segments stayed pinned after the transaction ended")
	}
}

// failMasterStore refuses master writes, simulating a full or failing disk
// at the worst moment.
type failMasterStore struct {
	*MemSegmentStore
	removed int
}

func (s *failMasterStore) WriteMaster([]byte) error {
	return errors.New("injected: master write failed")
}

func (s *failMasterStore) Remove(index uint64) error {
	s.removed++
	return s.MemSegmentStore.Remove(index)
}

func TestNoGCWithoutDurableMaster(t *testing.T) {
	store := &failMasterStore{MemSegmentStore: NewMemSegmentStore()}
	l, err := Open(store, Config{SegmentSize: 1024, Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillLog(t, l, 40, 100)
	if _, err := l.Checkpoint(nil); err == nil {
		t.Fatal("checkpoint succeeded despite master write failure")
	}
	if store.removed != 0 {
		t.Fatalf("%d segments removed although the master never became durable", store.removed)
	}
	if st := l.Stats(); st.Checkpoints != 0 || st.SegmentsGCed != 0 {
		t.Fatalf("stats advanced on a failed checkpoint: %+v", st)
	}
	if l.LatestCheckpoint() != nil {
		t.Fatal("failed checkpoint became the latest checkpoint")
	}
}

func TestCheckpointConcurrentWithAppends(t *testing.T) {
	store := NewMemSegmentStore()
	l, err := Open(store, Config{SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		payload := bytes.Repeat([]byte{1}, 64)
		for i := 0; i < 300; i++ {
			txn := uint64(i + 1)
			if _, err := l.Append(RecOp, txn, payload); err != nil {
				return
			}
			lsn, err := l.AppendCommit(txn)
			if err != nil {
				return
			}
			_ = l.Force(lsn)
		}
	}()
	for i := 0; i < 10; i++ {
		if _, err := l.Checkpoint(nil); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	<-done
	if st := l.Stats(); st.Checkpoints != 10 {
		t.Fatalf("Checkpoints = %d, want 10", st.Checkpoints)
	}
	// Every record from the final checkpoint's redo LSN on must scan clean.
	ck := l.LatestCheckpoint()
	if err := l.ScanFrom(ck.RedoLSN, func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointSurvivesLogWithOnlyCheckpoints(t *testing.T) {
	// Degenerate but legal: a log whose only traffic is checkpoints must
	// keep checkpointing and reopening without ever GCing itself hollow.
	store := NewMemSegmentStore()
	l, err := Open(store, Config{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var last LSN
	for i := 0; i < 5; i++ {
		lsn, err := l.Checkpoint(nil)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		if lsn <= last {
			t.Fatalf("checkpoint LSNs not increasing: %d after %d", lsn, last)
		}
		last = lsn
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(store, Config{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if ck := l2.LatestCheckpoint(); ck == nil || ck.LSN != last {
		t.Fatalf("reopened checkpoint = %+v, want LSN %d", ck, last)
	}
}

func TestCheckpointStatsString(t *testing.T) {
	// Guard the fmt contract the CLIs rely on: Stats fields exist and are
	// plain integers (a compile-time check more than a runtime one).
	st := Stats{Checkpoints: 1, SegmentsGCed: 2, CheckpointLSN: 3, TruncLSN: 4, ActiveTxns: 5}
	s := fmt.Sprintf("%d %d %d %d %d",
		st.Checkpoints, st.SegmentsGCed, st.CheckpointLSN, st.TruncLSN, st.ActiveTxns)
	if s != "1 2 3 4 5" {
		t.Fatal(s)
	}
}
