// Crash-matrix: seeded end-to-end crash/recovery sweeps over the whole
// stack (tamix burst -> wal crash -> storage recovery). The test lives in
// the wal package's black-box suite because the log's crash semantics are
// the contract under test; it drives them through the real document and
// transaction layers rather than through synthetic records.
package wal_test

import (
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/tamix"
	"repro/internal/wal"
)

// recoverAndAudit runs recovery over a burst's residue and audits the
// result against the workers' knowledge.
func recoverAndAudit(t *testing.T, out *tamix.CrashOutcome) *storage.RecoveryReport {
	t.Helper()
	log, err := wal.Open(out.Segments, wal.Config{})
	if err != nil {
		t.Fatalf("reopening log: %v", err)
	}
	d, rep, err := storage.Recover(out.Backend, log, out.Opts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer d.Close()
	if err := tamix.AuditRecovered(d, out.Expected(rep)); err != nil {
		t.Errorf("audit (commits %d, aborts %d, pending %d, losers %v): %v",
			out.CommittedTxns, out.AbortedTxns, out.PendingTxns, rep.Losers, err)
	}
	return rep
}

// TestCrashMatrixLogCrash sweeps seeds over log-side crashes: the log
// stops accepting appends after a seed-dependent count, mid-burst, and
// pending (unsynced) records are dropped like a power failure would.
func TestCrashMatrixLogCrash(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := tamix.CrashBurst(tamix.CrashConfig{
				Seed:              int64(seed),
				CrashAfterAppends: uint64(20 + seed*13%160),
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := recoverAndAudit(t, out)
			if out.CommittedTxns > 0 && len(rep.Committed) == 0 {
				t.Errorf("%d commits acknowledged but none in the log", out.CommittedTxns)
			}
		})
	}
}

// TestCrashMatrixTornWriteback sweeps seeds over storage-side crashes: a
// seed-dependent write-back is torn mid-page and fails permanently, the
// observing worker hard-stops the log, and recovery must heal the torn
// page from its logged full image.
func TestCrashMatrixTornWriteback(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := tamix.CrashBurst(tamix.CrashConfig{
				Seed:        int64(1000 + seed),
				TornWriteAt: uint64(1 + seed%12),
			})
			if err != nil {
				t.Fatal(err)
			}
			recoverAndAudit(t, out)
		})
	}
}

// TestCrashMatrixCheckpointedBurst sweeps seeds over bursts that take fuzzy
// checkpoints (and GC segments) while running, then suffer an ordinary
// log-side crash. Recovery must start from the surviving checkpoint and the
// truncated log must still hold everything it needs.
func TestCrashMatrixCheckpointedBurst(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := tamix.CrashBurst(tamix.CrashConfig{
				Seed:              int64(2000 + seed),
				CheckpointEvery:   3 + seed%4,
				CrashAfterAppends: uint64(60 + seed*17%200),
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := recoverAndAudit(t, out)
			if out.LogStats.Checkpoints > 0 && rep.CheckpointLSN == 0 {
				t.Errorf("burst took %d checkpoints but recovery scanned from LSN 0",
					out.LogStats.Checkpoints)
			}
		})
	}
}

// TestCrashMatrixMidCheckpoint crashes during the checkpoint itself, after
// the checkpoint record is forced but before the master pointer moves
// (phase 1). The master still names the previous checkpoint (or none), and
// recovery from that older anchor must stay correct.
func TestCrashMatrixMidCheckpoint(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := tamix.CrashBurst(tamix.CrashConfig{
				Seed:                 int64(3000 + seed),
				CheckpointEvery:      2 + seed%3,
				CheckpointCrashAt:    uint64(1 + seed%5),
				CheckpointCrashPhase: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			recoverAndAudit(t, out)
		})
	}
}

// TestCrashMatrixMasterBeforeGC crashes between the master-pointer update
// and segment GC (phase 2): the new checkpoint is authoritative but every
// pre-checkpoint segment is still on disk. Recovery must anchor at the new
// checkpoint and ignore the un-collected garbage.
func TestCrashMatrixMasterBeforeGC(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := tamix.CrashBurst(tamix.CrashConfig{
				Seed:                 int64(4000 + seed),
				CheckpointEvery:      2 + seed%3,
				CheckpointCrashAt:    uint64(2 + seed%5),
				CheckpointCrashPhase: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := recoverAndAudit(t, out)
			if out.LogStats.CheckpointLSN != 0 && rep.CheckpointLSN != out.LogStats.CheckpointLSN {
				t.Errorf("recovery anchored at LSN %d, want the durable master's %d",
					rep.CheckpointLSN, out.LogStats.CheckpointLSN)
			}
		})
	}
}

// TestCrashMatrixDuringGC crashes mid segment GC (phase 3): the master
// already points past the removed segments, some removable segments are
// gone and some linger. Oldest-first removal keeps the survivors
// contiguous, so reopening must re-anchor and recover cleanly.
func TestCrashMatrixDuringGC(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := tamix.CrashBurst(tamix.CrashConfig{
				Seed:                 int64(6000 + seed),
				CheckpointEvery:      2 + seed%3,
				SegmentSize:          8 << 10, // small segments so GC has work
				CheckpointCrashAt:    uint64(2 + seed%6),
				CheckpointCrashPhase: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			recoverAndAudit(t, out)
		})
	}
}

// copyToDisk mirrors a crashed in-memory segment store (segments plus
// master record) into a file-backed store, reproducing the burst's residue
// as a directory on disk.
func copyToDisk(t *testing.T, mem *wal.MemSegmentStore, dir string) *wal.FileSegmentStore {
	t.Helper()
	fs, err := wal.NewFileSegmentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	idxs, err := mem.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range idxs {
		data, err := mem.ReadAll(idx)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := fs.Create(idx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := seg.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if m, err := mem.ReadMaster(); err == nil && m != nil {
		if err := fs.WriteMaster(m); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

// TestCrashMatrixFileBackedRestart replays checkpointed crash images from a
// real directory: the burst's segments and master record are mirrored to
// disk (in a scratch dir audited by TestMain) and recovery runs against the
// file-backed store, covering the file store's master read and base
// re-anchoring paths under the same hostile schedules.
func TestCrashMatrixFileBackedRestart(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := tamix.CrashBurst(tamix.CrashConfig{
				Seed:              int64(8000 + seed),
				CheckpointEvery:   3,
				SegmentSize:       8 << 10,
				CrashAfterAppends: uint64(60 + seed*23%180),
			})
			if err != nil {
				t.Fatal(err)
			}
			fs := copyToDisk(t, out.Segments, crashScratch(t))
			log, err := wal.Open(fs, wal.Config{})
			if err != nil {
				t.Fatalf("reopening file-backed log: %v", err)
			}
			d, rep, err := storage.Recover(out.Backend, log, out.Opts)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer d.Close()
			if err := tamix.AuditRecovered(d, out.Expected(rep)); err != nil {
				t.Errorf("audit: %v", err)
			}
		})
	}
}

// TestCrashMatrixFullBudgetBurst runs bursts that exhaust their op budget
// before any induced fault — the crash is then purely the final hard stop,
// and every acknowledged commit must survive it.
func TestCrashMatrixFullBudgetBurst(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := tamix.CrashBurst(tamix.CrashConfig{
				Seed:         int64(5000 + seed),
				OpsPerWorker: 25,
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.CommittedTxns == 0 {
				t.Fatal("burst committed nothing; the matrix is vacuous")
			}
			recoverAndAudit(t, out)
		})
	}
}
