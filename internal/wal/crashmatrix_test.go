// Crash-matrix: seeded end-to-end crash/recovery sweeps over the whole
// stack (tamix burst -> wal crash -> storage recovery). The test lives in
// the wal package's black-box suite because the log's crash semantics are
// the contract under test; it drives them through the real document and
// transaction layers rather than through synthetic records.
package wal_test

import (
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/tamix"
	"repro/internal/wal"
)

// recoverAndAudit runs recovery over a burst's residue and audits the
// result against the workers' knowledge.
func recoverAndAudit(t *testing.T, out *tamix.CrashOutcome) *storage.RecoveryReport {
	t.Helper()
	log, err := wal.Open(out.Segments, wal.Config{})
	if err != nil {
		t.Fatalf("reopening log: %v", err)
	}
	d, rep, err := storage.Recover(out.Backend, log, out.Opts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer d.Close()
	if err := tamix.AuditRecovered(d, out.Expected(rep)); err != nil {
		t.Errorf("audit (commits %d, aborts %d, pending %d, losers %v): %v",
			out.CommittedTxns, out.AbortedTxns, out.PendingTxns, rep.Losers, err)
	}
	return rep
}

// TestCrashMatrixLogCrash sweeps seeds over log-side crashes: the log
// stops accepting appends after a seed-dependent count, mid-burst, and
// pending (unsynced) records are dropped like a power failure would.
func TestCrashMatrixLogCrash(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := tamix.CrashBurst(tamix.CrashConfig{
				Seed:              int64(seed),
				CrashAfterAppends: uint64(20 + seed*13%160),
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := recoverAndAudit(t, out)
			if out.CommittedTxns > 0 && len(rep.Committed) == 0 {
				t.Errorf("%d commits acknowledged but none in the log", out.CommittedTxns)
			}
		})
	}
}

// TestCrashMatrixTornWriteback sweeps seeds over storage-side crashes: a
// seed-dependent write-back is torn mid-page and fails permanently, the
// observing worker hard-stops the log, and recovery must heal the torn
// page from its logged full image.
func TestCrashMatrixTornWriteback(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := tamix.CrashBurst(tamix.CrashConfig{
				Seed:        int64(1000 + seed),
				TornWriteAt: uint64(1 + seed%12),
			})
			if err != nil {
				t.Fatal(err)
			}
			recoverAndAudit(t, out)
		})
	}
}

// TestCrashMatrixFullBudgetBurst runs bursts that exhaust their op budget
// before any induced fault — the crash is then purely the final hard stop,
// and every acknowledged commit must survive it.
func TestCrashMatrixFullBudgetBurst(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := tamix.CrashBurst(tamix.CrashConfig{
				Seed:         int64(5000 + seed),
				OpsPerWorker: 25,
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.CommittedTxns == 0 {
				t.Fatal("burst committed nothing; the matrix is vacuous")
			}
			recoverAndAudit(t, out)
		})
	}
}
