package wal

// Segment storage: the log is a sequence of append-only segments addressed
// by a monotonically increasing index. The Log writes to one segment at a
// time and rotates to a fresh one when the current segment passes the
// configured size; frames never straddle a segment boundary, so each
// segment parses independently.
//
// MemSegmentStore is the test substrate: it models the OS page cache by
// distinguishing written from synced bytes, and Crash() drops everything
// unsynced — the exact data a power failure loses. FileSegmentStore is the
// real thing, one file per segment with fsync, used by cmd/xtc and the
// group-commit benchmark.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Segment is one open, appendable log segment.
type Segment interface {
	// Write appends p to the segment.
	Write(p []byte) (int, error)
	// Sync makes everything written so far durable.
	Sync() error
	// Close releases the segment handle.
	Close() error
}

// SegmentStore creates, lists, and reads log segments.
type SegmentStore interface {
	// Create opens a fresh segment with the given index for appending.
	Create(index uint64) (Segment, error)
	// List returns the existing segment indices in ascending order.
	List() ([]uint64, error)
	// ReadAll returns a segment's full content.
	ReadAll(index uint64) ([]byte, error)
	// Truncate cuts a segment down to size bytes (torn-tail removal).
	Truncate(index uint64, size int64) error
	// Remove unlinks a segment (checkpoint GC of fully-truncated segments).
	Remove(index uint64) error
	// WriteMaster atomically replaces the master record — the small
	// fixed-size blob that locates the latest complete checkpoint and the
	// base LSN of the oldest surviving segment. Atomic means a crash at
	// any point leaves either the old master or the new one, never a mix.
	WriteMaster(data []byte) error
	// ReadMaster returns the current master record, or (nil, nil) when no
	// master has ever been written.
	ReadMaster() ([]byte, error)
}

// MemSegmentStore is an in-memory SegmentStore with explicit durability:
// bytes become durable only at Sync, and Crash throws away the rest.
type MemSegmentStore struct {
	mu     sync.Mutex
	segs   map[uint64]*memSegment
	master []byte // replaced atomically by WriteMaster; survives Crash
}

type memSegment struct {
	buf    []byte
	synced int
}

// NewMemSegmentStore returns an empty in-memory segment store.
func NewMemSegmentStore() *MemSegmentStore {
	return &MemSegmentStore{segs: make(map[uint64]*memSegment)}
}

// Create implements SegmentStore.
func (s *MemSegmentStore) Create(index uint64) (Segment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.segs[index]; ok {
		return nil, fmt.Errorf("wal: segment %d already exists", index)
	}
	s.segs[index] = &memSegment{}
	return &memSegmentWriter{store: s, index: index}, nil
}

// List implements SegmentStore.
func (s *MemSegmentStore) List() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.segs))
	for i := range s.segs {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// ReadAll implements SegmentStore.
func (s *MemSegmentStore) ReadAll(index uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, ok := s.segs[index]
	if !ok {
		return nil, fmt.Errorf("wal: no segment %d", index)
	}
	out := make([]byte, len(seg.buf))
	copy(out, seg.buf)
	return out, nil
}

// Truncate implements SegmentStore.
func (s *MemSegmentStore) Truncate(index uint64, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, ok := s.segs[index]
	if !ok {
		return fmt.Errorf("wal: no segment %d", index)
	}
	if size < 0 || size > int64(len(seg.buf)) {
		return fmt.Errorf("wal: truncate segment %d to %d, have %d bytes", index, size, len(seg.buf))
	}
	seg.buf = seg.buf[:size]
	if seg.synced > int(size) {
		seg.synced = int(size)
	}
	return nil
}

// Remove implements SegmentStore.
func (s *MemSegmentStore) Remove(index uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.segs[index]; !ok {
		return fmt.Errorf("wal: no segment %d", index)
	}
	delete(s.segs, index)
	return nil
}

// WriteMaster implements SegmentStore. The in-memory analogue of
// write-temp-then-rename is a single slice swap, so the replacement is
// all-or-nothing and survives Crash (a renamed file survives power loss
// once the directory entry is durable).
func (s *MemSegmentStore) WriteMaster(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.master = append([]byte(nil), data...)
	return nil
}

// ReadMaster implements SegmentStore.
func (s *MemSegmentStore) ReadMaster() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.master == nil {
		return nil, nil
	}
	return append([]byte(nil), s.master...), nil
}

// Crash models a power failure: every byte not yet synced is lost. The
// store remains usable — reopen it with wal.Open to recover.
func (s *MemSegmentStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		seg.buf = seg.buf[:seg.synced]
	}
}

// Clone deep-copies the store, letting a test recover the same crashed log
// several times from identical starting bytes.
func (s *MemSegmentStore) Clone() *MemSegmentStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := NewMemSegmentStore()
	for i, seg := range s.segs {
		buf := make([]byte, len(seg.buf))
		copy(buf, seg.buf)
		c.segs[i] = &memSegment{buf: buf, synced: seg.synced}
	}
	if s.master != nil {
		c.master = append([]byte(nil), s.master...)
	}
	return c
}

// TotalBytes reports the byte count across all segments (test aid).
func (s *MemSegmentStore) TotalBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, seg := range s.segs {
		n += len(seg.buf)
	}
	return n
}

type memSegmentWriter struct {
	store *MemSegmentStore
	index uint64
}

func (w *memSegmentWriter) seg() (*memSegment, error) {
	seg, ok := w.store.segs[w.index]
	if !ok {
		return nil, fmt.Errorf("wal: segment %d vanished", w.index)
	}
	return seg, nil
}

// Write implements Segment.
func (w *memSegmentWriter) Write(p []byte) (int, error) {
	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	seg, err := w.seg()
	if err != nil {
		return 0, err
	}
	seg.buf = append(seg.buf, p...)
	return len(p), nil
}

// Sync implements Segment.
func (w *memSegmentWriter) Sync() error {
	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	seg, err := w.seg()
	if err != nil {
		return err
	}
	seg.synced = len(seg.buf)
	return nil
}

// Close implements Segment.
func (w *memSegmentWriter) Close() error { return nil }

// FileSegmentStore keeps one file per segment under a directory.
type FileSegmentStore struct {
	dir string
}

// NewFileSegmentStore opens (creating if needed) a directory of segments.
func NewFileSegmentStore(dir string) (*FileSegmentStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &FileSegmentStore{dir: dir}, nil
}

func (s *FileSegmentStore) path(index uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%010d.seg", index))
}

// Create implements SegmentStore.
func (s *FileSegmentStore) Create(index uint64) (Segment, error) {
	f, err := os.OpenFile(s.path(index), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return f, nil
}

// List implements SegmentStore.
func (s *FileSegmentStore) List() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		var idx uint64
		if n, err := fmt.Sscanf(e.Name(), "wal-%010d.seg", &idx); n == 1 && err == nil {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// ReadAll implements SegmentStore.
func (s *FileSegmentStore) ReadAll(index uint64) ([]byte, error) {
	return os.ReadFile(s.path(index))
}

// Truncate implements SegmentStore.
func (s *FileSegmentStore) Truncate(index uint64, size int64) error {
	return os.Truncate(s.path(index), size)
}

// Remove implements SegmentStore.
func (s *FileSegmentStore) Remove(index uint64) error {
	return os.Remove(s.path(index))
}

func (s *FileSegmentStore) masterPath() string {
	return filepath.Join(s.dir, "wal-master")
}

// WriteMaster implements SegmentStore: write a temp file, fsync it, then
// rename over the real name. rename(2) is atomic within a directory, so a
// crash leaves either the old master or the complete new one.
func (s *FileSegmentStore) WriteMaster(data []byte) error {
	tmp := s.masterPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, s.masterPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// ReadMaster implements SegmentStore.
func (s *FileSegmentStore) ReadMaster() ([]byte, error) {
	data, err := os.ReadFile(s.masterPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return data, nil
}
