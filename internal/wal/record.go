package wal

// Record framing and payload codecs.
//
// Every record is one frame:
//
//	[u32 size][u32 crc][u8 type][u64 txn][payload]
//
// where size = 9 + len(payload) covers everything after the crc, and crc
// is CRC32 (IEEE) over that same region. A record's LSN is the byte offset
// of its frame start within the whole log (summed across segments), so
// LSNs are dense, strictly increasing, and double as durability positions:
// "the log is durable up to LSN x" means every frame starting before x is
// safely on disk.
//
// Record types:
//
//	RecOp     — one logical document operation: a logical undo payload plus
//	            the physiological page deltas that redo it. Deltas and undo
//	            travel in ONE frame, so recovery never sees half an
//	            operation: either the frame parses (CRC + length) and the
//	            operation is fully redoable and undoable, or the frame is
//	            torn tail and the operation never happened.
//	RecCommit — transaction commit point; Commit forces the log up to it.
//	RecEnd    — transaction fully finished: either aborted at runtime with
//	            all compensations logged, or undone by recovery. A
//	            transaction with RecEnd is never rolled back again, which
//	            is what makes recovery idempotent.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/pagestore"
)

// LSN is a log sequence number: the byte offset of a record in the log.
type LSN = uint64

// Record types.
const (
	// RecOp carries one operation's undo payload and page deltas.
	RecOp byte = 1
	// RecCommit marks a transaction committed.
	RecCommit byte = 2
	// RecEnd marks a transaction fully finished (aborted or undone).
	RecEnd byte = 3
)

// Record is one parsed log record.
type Record struct {
	// LSN is the record's byte offset in the log.
	LSN LSN
	// Type is one of RecOp, RecCommit, RecEnd.
	Type byte
	// Txn is the owning transaction (0 = system).
	Txn uint64
	// Payload is the type-specific body (EncodeOp format for RecOp).
	Payload []byte
}

const (
	// frameOverhead is the size+crc prefix.
	frameOverhead = 8
	// bodyHeader is the type+txn part of the body.
	bodyHeader = 9
)

// frameSize returns the full on-disk size of a record with the given
// payload length.
func frameSize(payloadLen int) int { return frameOverhead + bodyHeader + payloadLen }

// appendFrame encodes one record frame onto buf.
func appendFrame(buf []byte, typ byte, txn uint64, payload []byte) []byte {
	size := bodyHeader + len(payload)
	var hdr [frameOverhead + bodyHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(size))
	hdr[8] = typ
	binary.LittleEndian.PutUint64(hdr[9:], txn)
	crc := crc32.ChecksumIEEE(hdr[8:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// parseFrame decodes the frame at buf[off:]. ok is false when the bytes do
// not hold one complete, CRC-clean frame — the torn-tail condition.
func parseFrame(buf []byte, off int) (r Record, next int, ok bool) {
	if off+frameOverhead+bodyHeader > len(buf) {
		return Record{}, 0, false
	}
	size := int(binary.LittleEndian.Uint32(buf[off:]))
	if size < bodyHeader || off+frameOverhead+size > len(buf) {
		return Record{}, 0, false
	}
	crc := binary.LittleEndian.Uint32(buf[off+4:])
	body := buf[off+frameOverhead : off+frameOverhead+size]
	if crc32.ChecksumIEEE(body) != crc {
		return Record{}, 0, false
	}
	payload := make([]byte, size-bodyHeader)
	copy(payload, body[bodyHeader:])
	return Record{
		Type:    body[0],
		Txn:     binary.LittleEndian.Uint64(body[1:]),
		Payload: payload,
	}, off + frameOverhead + size, true
}

// ErrCorruptOp reports an undecodable RecOp payload — unlike a torn tail,
// this means a CRC-clean record holds garbage, which is a bug, not a crash.
var ErrCorruptOp = errors.New("wal: corrupt op payload")

// EncodeOp builds a RecOp payload from a logical undo payload and the
// operation's page deltas:
//
//	[u32 undoLen][undo][u16 nDeltas] nDeltas × [u32 page][u16 off][u16 len][data]
func EncodeOp(undo []byte, deltas []pagestore.PageDelta) []byte {
	n := 4 + len(undo) + 2
	for _, d := range deltas {
		n += 8 + len(d.Data)
	}
	out := make([]byte, 0, n)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(undo)))
	out = append(out, tmp[:4]...)
	out = append(out, undo...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(deltas)))
	out = append(out, tmp[:2]...)
	for _, d := range deltas {
		binary.LittleEndian.PutUint32(tmp[0:], uint32(d.Page))
		binary.LittleEndian.PutUint16(tmp[4:], uint16(d.Off))
		binary.LittleEndian.PutUint16(tmp[6:], uint16(len(d.Data)))
		out = append(out, tmp[:8]...)
		out = append(out, d.Data...)
	}
	return out
}

// DecodeOp parses an EncodeOp payload.
func DecodeOp(p []byte) (undo []byte, deltas []pagestore.PageDelta, err error) {
	if len(p) < 4 {
		return nil, nil, ErrCorruptOp
	}
	ulen := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) < ulen+2 {
		return nil, nil, ErrCorruptOp
	}
	undo = p[:ulen]
	p = p[ulen:]
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	deltas = make([]pagestore.PageDelta, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 8 {
			return nil, nil, ErrCorruptOp
		}
		page := pagestore.PageID(binary.LittleEndian.Uint32(p))
		off := int(binary.LittleEndian.Uint16(p[4:]))
		dlen := int(binary.LittleEndian.Uint16(p[6:]))
		p = p[8:]
		if len(p) < dlen || off < pagestore.PageHeaderSize || off+dlen > pagestore.PageSize {
			return nil, nil, ErrCorruptOp
		}
		deltas = append(deltas, pagestore.PageDelta{Page: page, Off: off, Data: p[:dlen]})
		p = p[dlen:]
	}
	if len(p) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptOp, len(p))
	}
	return undo, deltas, nil
}
