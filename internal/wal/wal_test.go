package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/pagestore"
)

func TestAppendForceScanRoundTrip(t *testing.T) {
	store := NewMemSegmentStore()
	l, err := Open(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		lsn LSN
		typ byte
		txn uint64
		pay string
	}
	var wants []want
	for i := 0; i < 20; i++ {
		pay := fmt.Sprintf("payload-%d", i)
		lsn, err := l.Append(RecOp, uint64(i%3+1), []byte(pay))
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, want{lsn, RecOp, uint64(i%3 + 1), pay})
	}
	clsn, err := l.AppendCommit(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Force(clsn); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := l.Scan(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wants)+1 {
		t.Fatalf("scanned %d records, want %d", len(got), len(wants)+1)
	}
	for i, w := range wants {
		r := got[i]
		if r.LSN != w.lsn || r.Type != w.typ || r.Txn != w.txn || string(r.Payload) != w.pay {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
	}
	last := got[len(got)-1]
	if last.Type != RecCommit || last.Txn != 7 || last.LSN != clsn {
		t.Fatalf("commit record = %+v", last)
	}
	// LSNs are dense byte offsets.
	for i := 1; i < len(got); i++ {
		if got[i].LSN != got[i-1].LSN+LSN(frameSize(len(got[i-1].Payload))) {
			t.Fatalf("LSN gap between records %d and %d", i-1, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	store := NewMemSegmentStore()
	l, err := Open(store, Config{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xEE}, 64)
	var lsns []LSN
	for i := 0; i < 40; i++ {
		lsn, err := l.Append(RecOp, 1, payload)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
		// Force each record so batches stay small and rotation triggers.
		if err := l.Force(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Rotations < 5 {
		t.Errorf("Rotations = %d, want several with 256-byte segments", st.Rotations)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := store.List()
	if len(segs) < 5 {
		t.Fatalf("segments on disk = %d", len(segs))
	}

	// Reopen: LSNs continue where they left off, all records scannable.
	l2, err := Open(store, Config{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	if err := l2.Scan(func(r Record) error {
		if r.LSN != lsns[n] {
			return fmt.Errorf("record %d LSN %d, want %d", n, r.LSN, lsns[n])
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(lsns) {
		t.Fatalf("reopened scan saw %d records, want %d", n, len(lsns))
	}
	lsn, err := l2.Append(RecEnd, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != lsns[len(lsns)-1]+LSN(frameSize(64)) {
		t.Errorf("post-reopen LSN %d does not continue the sequence", lsn)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	store := NewMemSegmentStore()
	l, err := Open(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, _ := l.Append(RecOp, 1, []byte("keep me"))
	if err := l.Force(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Smash a partial frame onto the tail, as a crash mid-write would.
	segs, _ := store.List()
	last := segs[len(segs)-1]
	seg := store.segs[last]
	clean := len(seg.buf)
	seg.buf = append(seg.buf, 0xDE, 0xAD, 0xBE)
	seg.synced = len(seg.buf)

	l2, err := Open(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got, _ := store.ReadAll(last); len(got) != clean {
		t.Errorf("torn tail not truncated: %d bytes, want %d", len(got), clean)
	}
	n := 0
	if err := l2.Scan(func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("scan after truncation saw %d records, want 1", n)
	}
}

func TestCorruptionBeforeTailRejected(t *testing.T) {
	store := NewMemSegmentStore()
	l, err := Open(store, Config{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		lsn, _ := l.Append(RecOp, 1, bytes.Repeat([]byte{byte(i)}, 48))
		if err := l.Force(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := store.List()
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, have %d", len(segs))
	}
	// Flip a byte in the first segment: corruption before later segments.
	store.segs[segs[0]].buf[10] ^= 0xFF
	if _, err := Open(store, Config{}); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("Open on mid-log corruption = %v, want ErrCorruptLog", err)
	}
}

func TestCrashAfterAppends(t *testing.T) {
	store := NewMemSegmentStore()
	l, err := Open(store, Config{CrashAfterAppends: 3})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := l.Append(RecOp, 1, []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Force(l1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecOp, 1, []byte("two")); err != nil {
		t.Fatal(err) // second append accepted, never forced
	}
	if _, err := l.Append(RecOp, 1, []byte("three")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("third append = %v, want ErrCrashed", err)
	}
	if !l.Crashed() {
		t.Fatal("log not crashed")
	}
	if _, err := l.Append(RecCommit, 1, nil); !errors.Is(err, ErrCrashed) {
		t.Errorf("append after crash = %v", err)
	}
	if err := l.Force(l1 + 1000); !errors.Is(err, ErrCrashed) {
		t.Errorf("force after crash = %v", err)
	}
	// FlushTo(0) must fail too: the WAL rule uses it as the write-back
	// barrier, and after a crash nothing may be written back.
	if err := l.FlushTo(0); !errors.Is(err, ErrCrashed) {
		t.Errorf("FlushTo(0) after crash = %v", err)
	}

	// Power failure: only synced bytes survive; record two was pending.
	store.Crash()
	l2, err := Open(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var pays []string
	if err := l2.Scan(func(r Record) error { pays = append(pays, string(r.Payload)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(pays) != 1 || pays[0] != "one" {
		t.Fatalf("surviving records = %q, want [one]", pays)
	}
}

// delayStore wraps MemSegmentStore with a slow Sync so concurrent commits
// pile up behind the flusher and share fsyncs.
type delayStore struct {
	*MemSegmentStore
	delay time.Duration
}

type delaySegment struct {
	Segment
	delay time.Duration
}

func (s *delayStore) Create(index uint64) (Segment, error) {
	seg, err := s.MemSegmentStore.Create(index)
	if err != nil {
		return nil, err
	}
	return &delaySegment{Segment: seg, delay: s.delay}, nil
}

func (s *delaySegment) Sync() error {
	time.Sleep(s.delay)
	return s.Segment.Sync()
}

func TestGroupCommitSharesSyncs(t *testing.T) {
	store := &delayStore{MemSegmentStore: NewMemSegmentStore(), delay: 200 * time.Microsecond}
	l, err := Open(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append(RecCommit, uint64(w+1), nil)
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.Force(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("Appends = %d", st.Appends)
	}
	if st.Syncs >= st.Appends {
		t.Errorf("group commit ineffective: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	l2, _ := Open(store.MemSegmentStore, Config{})
	defer l2.Close()
	l2.Scan(func(Record) error { n++; return nil }) //nolint:errcheck
	if n != writers*perWriter {
		t.Errorf("scan saw %d records, want %d", n, writers*perWriter)
	}
}

func TestEncodeDecodeOp(t *testing.T) {
	undo := []byte("logical undo payload")
	deltas := []pagestore.PageDelta{
		{Page: 3, Off: 16, Data: []byte("abc")},
		{Page: 9, Off: pagestore.PageHeaderSize, Data: bytes.Repeat([]byte{7}, pagestore.PageSize-pagestore.PageHeaderSize)},
		{Page: 4, Off: 8000, Data: []byte{1, 2, 3, 4}},
	}
	enc := EncodeOp(undo, deltas)
	u2, d2, err := DecodeOp(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(u2, undo) {
		t.Error("undo payload mismatch")
	}
	if len(d2) != len(deltas) {
		t.Fatalf("decoded %d deltas", len(d2))
	}
	for i := range deltas {
		if d2[i].Page != deltas[i].Page || d2[i].Off != deltas[i].Off || !bytes.Equal(d2[i].Data, deltas[i].Data) {
			t.Errorf("delta %d mismatch", i)
		}
	}
	if !d2[1].FullImage() || d2[0].FullImage() {
		t.Error("FullImage misclassified")
	}
	// Truncated payloads must error, not panic.
	for cut := 0; cut < len(enc); cut += 7 {
		if _, _, err := DecodeOp(enc[:cut]); err == nil && cut < len(enc) {
			t.Fatalf("DecodeOp accepted %d-byte prefix", cut)
		}
	}
}

func TestForceOnEmptyLog(t *testing.T) {
	l, err := Open(NewMemSegmentStore(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() { done <- l.Force(0) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Force(0) on empty log blocked")
	}
}
