package wal

// Fuzzy checkpoints, the master record, and segment GC.
//
// A checkpoint is taken without quiescing writers: it snapshots the
// active-transaction table (ATT) and the buffer pool's dirty-page table
// (DPT) while appends continue, logs both in one RecCheckpoint record, and
// derives two positions from the snapshot:
//
//	redoLSN  — the oldest LSN redo must scan from to reconstruct every
//	           page image. min(the log position when the snapshot began,
//	           every dirty page's recLSN, the in-flight capture floor).
//	truncLSN — the oldest LSN the log must physically retain.
//	           min(redoLSN, every active transaction's first LSN), so the
//	           undo pass always finds its records too.
//
// The master record is a tiny fixed-size blob stored beside the segments
// (not in the record stream) that locates the latest complete checkpoint
// and re-anchors LSN addressing after truncation:
//
//	[4 "XMST"][u32 crc][u64 ckptLSN][u64 truncLSN][u64 keepIdx][u64 keepBase]
//
// crc is CRC32 (IEEE) over the four u64s. keepIdx/keepBase give the index
// and base LSN of the oldest segment the checkpoint's GC plan keeps, which
// is how Open recomputes every segment's base once segment 0 is gone.
//
// Ordering rule (the no-GC-before-master rule): a segment may be unlinked
// only after (1) the checkpoint record that releases it is durable and
// (2) the master record pointing at that checkpoint is durably in place.
// A crash between any two steps leaves a log that recovers correctly: the
// checkpoint record without a master is simply an ordinary record; a
// master without GC means surviving below-trunc segments, which Open
// re-anchors by walking backward from keepIdx; partial GC leaves a
// contiguous suffix because removal is oldest-first.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/pagestore"
)

// RecCheckpoint carries one fuzzy checkpoint (EncodeCheckpoint payload).
// It belongs to no transaction (txn 0) and is never redone or undone;
// recovery reads it only through the master pointer.
const RecCheckpoint byte = 4

// DefaultRetain is the minimum number of newest segments GC keeps when
// Config.Retain is zero.
const DefaultRetain = 2

// ErrCorruptCheckpoint reports an undecodable checkpoint payload in a
// CRC-clean record — corruption (or a hostile log), not a torn tail.
var ErrCorruptCheckpoint = errors.New("wal: corrupt checkpoint payload")

// AttEntry is one active-transaction-table entry: a transaction with
// logged work but no commit/end record, and its first record's LSN.
type AttEntry struct {
	Txn      uint64
	FirstLSN LSN
}

// Checkpoint is one decoded fuzzy checkpoint.
type Checkpoint struct {
	// LSN locates the RecCheckpoint record in the log (0 when the
	// checkpoint has not been appended yet).
	LSN LSN
	// RedoLSN is where redo must start scanning.
	RedoLSN LSN
	// Dirty is the dirty-page table at snapshot time, sorted by page.
	Dirty []pagestore.DirtyPage
	// Active is the active-transaction table at snapshot time, sorted by
	// transaction id.
	Active []AttEntry
}

// ckptVersion is the checkpoint payload format version.
const ckptVersion = 1

// EncodeCheckpoint builds a RecCheckpoint payload:
//
//	[u8 version][u64 redoLSN][u32 nDirty] nDirty × [u32 page][u64 recLSN]
//	[u32 nActive] nActive × [u64 txn][u64 firstLSN]
func EncodeCheckpoint(ck *Checkpoint) []byte {
	out := make([]byte, 0, 1+8+4+len(ck.Dirty)*12+4+len(ck.Active)*16)
	var tmp [8]byte
	out = append(out, ckptVersion)
	binary.LittleEndian.PutUint64(tmp[:], ck.RedoLSN)
	out = append(out, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(ck.Dirty)))
	out = append(out, tmp[:4]...)
	for _, d := range ck.Dirty {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(d.Page))
		out = append(out, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:], d.RecLSN)
		out = append(out, tmp[:]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(ck.Active)))
	out = append(out, tmp[:4]...)
	for _, e := range ck.Active {
		binary.LittleEndian.PutUint64(tmp[:], e.Txn)
		out = append(out, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], e.FirstLSN)
		out = append(out, tmp[:]...)
	}
	return out
}

// DecodeCheckpoint parses an EncodeCheckpoint payload. Every length is
// validated against the remaining bytes before anything is allocated, so
// a hostile count field cannot force a huge allocation.
func DecodeCheckpoint(p []byte) (*Checkpoint, error) {
	if len(p) < 13 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptCheckpoint, len(p))
	}
	if p[0] != ckptVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCorruptCheckpoint, p[0])
	}
	ck := &Checkpoint{RedoLSN: binary.LittleEndian.Uint64(p[1:])}
	p = p[9:]
	nd := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) < nd*12 {
		return nil, fmt.Errorf("%w: %d dirty entries in %d bytes", ErrCorruptCheckpoint, nd, len(p))
	}
	if nd > 0 {
		ck.Dirty = make([]pagestore.DirtyPage, 0, nd)
	}
	for i := 0; i < nd; i++ {
		ck.Dirty = append(ck.Dirty, pagestore.DirtyPage{
			Page:   pagestore.PageID(binary.LittleEndian.Uint32(p)),
			RecLSN: binary.LittleEndian.Uint64(p[4:]),
		})
		p = p[12:]
	}
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: missing active-txn count", ErrCorruptCheckpoint)
	}
	na := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) < na*16 {
		return nil, fmt.Errorf("%w: %d active entries in %d bytes", ErrCorruptCheckpoint, na, len(p))
	}
	if na > 0 {
		ck.Active = make([]AttEntry, 0, na)
	}
	for i := 0; i < na; i++ {
		ck.Active = append(ck.Active, AttEntry{
			Txn:      binary.LittleEndian.Uint64(p),
			FirstLSN: binary.LittleEndian.Uint64(p[8:]),
		})
		p = p[16:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptCheckpoint, len(p))
	}
	return ck, nil
}

// Master record codec.

const (
	masterMagic = "XMST"
	masterSize  = 40
)

type masterRec struct {
	ckptLSN  LSN
	truncLSN LSN
	keepIdx  uint64
	keepBase LSN
}

func encodeMaster(m masterRec) []byte {
	out := make([]byte, masterSize)
	copy(out[0:4], masterMagic)
	binary.LittleEndian.PutUint64(out[8:], m.ckptLSN)
	binary.LittleEndian.PutUint64(out[16:], m.truncLSN)
	binary.LittleEndian.PutUint64(out[24:], m.keepIdx)
	binary.LittleEndian.PutUint64(out[32:], m.keepBase)
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(out[8:]))
	return out
}

// readMaster loads and validates the master record. Absent, truncated, or
// CRC-invalid masters report false; Open then treats the log as never
// checkpointed, which is safe while segment 0 survives (GC runs only
// after a master is durable) and a hard error once it is gone (LSN
// addressing would be lost).
func readMaster(store SegmentStore) (masterRec, bool) {
	data, err := store.ReadMaster()
	if err != nil || len(data) != masterSize || string(data[0:4]) != masterMagic {
		return masterRec{}, false
	}
	if binary.LittleEndian.Uint32(data[4:]) != crc32.ChecksumIEEE(data[8:]) {
		return masterRec{}, false
	}
	return masterRec{
		ckptLSN:  binary.LittleEndian.Uint64(data[8:]),
		truncLSN: binary.LittleEndian.Uint64(data[16:]),
		keepIdx:  binary.LittleEndian.Uint64(data[24:]),
		keepBase: binary.LittleEndian.Uint64(data[32:]),
	}, true
}

// LatestCheckpoint returns the latest complete checkpoint — the one the
// durable master record points at, updated when Checkpoint completes —
// or nil before the first.
func (l *Log) LatestCheckpoint() *Checkpoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastCkpt
}

// Checkpoint takes one fuzzy checkpoint: snapshot the ATT and (via
// collect, typically Store.DirtyPageTable) the DPT, append and force a
// RecCheckpoint record, durably repoint the master record at it, then GC
// every segment wholly below the truncation point. Writers are never
// quiesced — the snapshot is racy by design and the redo LSN accounts for
// the races (capture floor, recLSN minima, the pre-snapshot log position).
//
// The collect callback runs after the log position is snapshotted; that
// ordering is load-bearing. Any page dirtied by a capture that began after
// the snapshot logs its records above the snapshot position, so redo
// starting at min(snapshot, DPT, floor) cannot miss it.
//
// Concurrent Checkpoint calls serialize; errors leave the previous
// checkpoint in force (truncation is merely delayed).
func (l *Log) Checkpoint(collect func() ([]pagestore.DirtyPage, uint64)) (LSN, error) {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()

	l.mu.Lock()
	if l.crashed {
		l.mu.Unlock()
		return 0, ErrCrashed
	}
	if l.failure != nil {
		err := l.failure
		l.mu.Unlock()
		return 0, err
	}
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	beginLSN := l.next
	att := make([]AttEntry, 0, len(l.att))
	for txn, first := range l.att {
		att = append(att, AttEntry{Txn: txn, FirstLSN: first})
	}
	l.ckptSeq++
	crashPhase := 0
	if l.cfg.CrashAtCheckpoint > 0 && l.ckptSeq == l.cfg.CrashAtCheckpoint {
		crashPhase = l.cfg.CheckpointCrashPhase
		if crashPhase == 0 {
			crashPhase = 1
		}
	}
	l.mu.Unlock()
	sort.Slice(att, func(i, j int) bool { return att[i].Txn < att[j].Txn })

	var dirty []pagestore.DirtyPage
	var floor uint64
	if collect != nil {
		dirty, floor = collect()
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].Page < dirty[j].Page })

	redo := beginLSN
	for _, d := range dirty {
		// recLSN 0 means dirt without LSN tracking; the page's records (if
		// any) predate this log's attachment and beginLSN/floor bound it.
		if d.RecLSN != 0 && d.RecLSN < redo {
			redo = d.RecLSN
		}
	}
	if floor != 0 && floor < redo {
		redo = floor
	}
	trunc := redo
	for _, e := range att {
		if e.FirstLSN < trunc {
			trunc = e.FirstLSN
		}
	}

	ck := &Checkpoint{RedoLSN: redo, Dirty: dirty, Active: att}
	lsn, err := l.Append(RecCheckpoint, 0, EncodeCheckpoint(ck))
	if err != nil {
		return 0, err
	}
	ck.LSN = lsn
	if err := l.Force(lsn); err != nil {
		return 0, err
	}

	if crashPhase == 1 { // record durable, master not yet repointed
		l.CrashNow()
		return 0, ErrCrashed
	}

	keepIdx, keepBase, removable := l.gcPlan(trunc)
	if err := l.store.WriteMaster(encodeMaster(masterRec{
		ckptLSN:  lsn,
		truncLSN: trunc,
		keepIdx:  keepIdx,
		keepBase: keepBase,
	})); err != nil {
		return 0, fmt.Errorf("wal: write master: %w", err)
	}

	l.mu.Lock()
	l.checkpoints++
	l.ckptLSN = lsn
	l.truncLSN = trunc
	l.lastCkpt = ck
	l.mu.Unlock()

	if crashPhase == 2 { // master repointed, no segment removed yet
		l.CrashNow()
		return lsn, ErrCrashed
	}

	for _, idx := range removable {
		if err := l.store.Remove(idx); err != nil {
			return lsn, fmt.Errorf("wal: gc segment %d: %w", idx, err)
		}
		l.mu.Lock()
		delete(l.bases, idx)
		l.segsGCed++
		l.mu.Unlock()
		if crashPhase == 3 { // partial GC: oldest segment removed, rest not
			l.CrashNow()
			return lsn, ErrCrashed
		}
	}
	return lsn, nil
}

// gcPlan computes which segments a truncation to trunc may unlink. A
// segment is removable when every byte of it sits below trunc, i.e. the
// next segment's base is <= trunc. The newest cfg.Retain segments are
// always kept (so the active segment is never touched), and the plan
// reports the oldest kept segment's index and base LSN for the master
// record.
func (l *Log) gcPlan(trunc LSN) (keepIdx uint64, keepBase LSN, removable []uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	idxs := make([]uint64, 0, len(l.bases))
	for idx := range l.bases {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	if len(idxs) == 0 {
		return 0, 1, nil
	}
	n := 0
	for n+1 < len(idxs) && l.bases[idxs[n+1]] <= trunc {
		n++
	}
	if max := len(idxs) - l.cfg.Retain; n > max {
		n = max
	}
	if n < 0 {
		n = 0
	}
	removable = append([]uint64(nil), idxs[:n]...)
	keepIdx = idxs[n]
	keepBase = l.bases[keepIdx]
	return keepIdx, keepBase, removable
}
