package wal

import (
	"bytes"
	"testing"

	"repro/internal/pagestore"
)

// FuzzDecodeCheckpoint throws hostile bytes at the checkpoint codec. The
// decoder must never panic or over-allocate (every count is length-checked
// before allocation), and anything it accepts must re-encode to exactly the
// input — the format is canonical, so decode∘encode is the identity on the
// accepted set.
func FuzzDecodeCheckpoint(f *testing.F) {
	seedCkpts := []*Checkpoint{
		{RedoLSN: 1},
		{RedoLSN: 4096, Dirty: []pagestore.DirtyPage{{Page: 3, RecLSN: 4096}}},
		{
			RedoLSN: 987654321,
			Dirty: []pagestore.DirtyPage{
				{Page: 0, RecLSN: 987654321},
				{Page: 4_000_000_000, RecLSN: 1},
			},
			Active: []AttEntry{{Txn: 7, FirstLSN: 500}, {Txn: 8, FirstLSN: 600}},
		},
	}
	for _, ck := range seedCkpts {
		enc := EncodeCheckpoint(ck)
		f.Add(enc)
		// Truncations at every interesting boundary: mid-header, mid-entry,
		// missing trailer.
		for _, cut := range []int{0, 1, 8, 12, len(enc) / 2, len(enc) - 1} {
			if cut < len(enc) {
				f.Add(enc[:cut])
			}
		}
		// Trailing garbage and a corrupt count field.
		f.Add(append(append([]byte(nil), enc...), 0xde, 0xad))
		if len(enc) >= 13 {
			bad := append([]byte(nil), enc...)
			bad[9], bad[10], bad[11], bad[12] = 0xff, 0xff, 0xff, 0xff
			f.Add(bad)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{ckptVersion})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		re := EncodeCheckpoint(ck)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzOpenHostileSegment feeds arbitrary bytes to Open as a single WAL
// segment: whatever the bytes claim, opening must either succeed (torn-tail
// truncation) or fail cleanly — never panic — and a successful open must
// yield a scannable log.
func FuzzOpenHostileSegment(f *testing.F) {
	// Seed with a legitimate small log image, including a checkpoint record.
	store := NewMemSegmentStore()
	l, err := Open(store, Config{})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := l.Append(RecOp, 1, []byte("op")); err != nil {
		f.Fatal(err)
	}
	if _, err := l.Checkpoint(nil); err != nil {
		f.Fatal(err)
	}
	lsn, err := l.AppendCommit(1)
	if err != nil {
		f.Fatal(err)
	}
	if err := l.Force(lsn); err != nil {
		f.Fatal(err)
	}
	img, err := store.ReadAll(0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	for _, cut := range []int{1, 9, len(img) / 2, len(img) - 1} {
		f.Add(img[:cut])
	}
	flip := append([]byte(nil), img...)
	flip[len(flip)/2] ^= 0x01
	f.Add(flip)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, 32))
	f.Add(bytes.Repeat([]byte{0xff}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		st := NewMemSegmentStore()
		seg, err := st.Create(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := seg.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
		lg, err := Open(st, Config{})
		if err != nil {
			return // rejected cleanly
		}
		if err := lg.Scan(func(Record) error { return nil }); err != nil {
			t.Fatalf("opened log does not scan: %v", err)
		}
	})
}
