package wal

import "testing"

// TestSnapshotLSNAdvance exercises the commit-consistent snapshot position:
// it only advances on non-op records appended while the active-transaction
// table is empty, so every page stamped at or below it belongs to a committed
// transaction.
func TestSnapshotLSNAdvance(t *testing.T) {
	store := NewMemSegmentStore()
	l, err := Open(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.SnapshotLSN(); got != 0 {
		t.Fatalf("fresh log SnapshotLSN = %d, want 0", got)
	}

	// An op record never advances the snapshot: its page stamps land after
	// the record, so its own LSN is not yet a safe visibility bound.
	if _, err := l.Append(RecOp, 1, []byte("op-1")); err != nil {
		t.Fatal(err)
	}
	if got := l.SnapshotLSN(); got != 0 {
		t.Fatalf("SnapshotLSN after op = %d, want 0", got)
	}

	c1, err := l.AppendCommit(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.SnapshotLSN(); got != uint64(c1) {
		t.Fatalf("SnapshotLSN after lone commit = %d, want %d", got, c1)
	}

	// Overlapping writers: committing txn 2 while txn 3 is still active must
	// NOT advance the snapshot — txn 3's stamps may already sit below that
	// commit's LSN.
	if _, err := l.Append(RecOp, 2, []byte("op-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecOp, 3, []byte("op-3")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCommit(2); err != nil {
		t.Fatal(err)
	}
	if got := l.SnapshotLSN(); got != uint64(c1) {
		t.Fatalf("SnapshotLSN with txn 3 active = %d, want %d", got, c1)
	}
	c3, err := l.AppendCommit(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.SnapshotLSN(); got != uint64(c3) {
		t.Fatalf("SnapshotLSN after last commit = %d, want %d", got, c3)
	}

	// An abort path (RecEnd) drains the table too.
	if _, err := l.Append(RecOp, 4, []byte("op-4")); err != nil {
		t.Fatal(err)
	}
	e4, err := l.AppendEnd(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.SnapshotLSN(); got != uint64(e4) {
		t.Fatalf("SnapshotLSN after end = %d, want %d", got, e4)
	}

	if err := l.Force(e4); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Open's parse replays the record stream, so the snapshot position
	// survives a restart.
	l2, err := Open(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.SnapshotLSN(); got != uint64(e4) {
		t.Fatalf("SnapshotLSN after reopen = %d, want %d", got, e4)
	}
}
