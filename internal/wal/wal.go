// Package wal is the write-ahead log of the engine: an append-only,
// LSN-addressed record log with CRC framing, group commit through a
// dedicated flusher goroutine, and segment rotation. It is the durability
// substrate the ARIES-lite recovery in the storage layer replays
// (DESIGN.md §9).
//
// Concurrency model: Append is cheap — it frames the record into an
// in-memory pending buffer under the log mutex and returns its LSN. The
// flusher goroutine drains the pending buffer to the current segment and
// syncs it once per batch, so any number of concurrently committing
// transactions share one fsync (group commit). Force blocks until the log
// is durable up to a given LSN.
//
// Crash testing: CrashNow (or Config.CrashAfterAppends) turns the log
// fail-stop — pending records are dropped, and every later Append, Force,
// and FlushTo returns ErrCrashed. The buffer manager calls FlushTo before
// every dirty-page write-back, so a dead log also stops all page traffic:
// nothing unlogged can reach the backend after the "power failure".
package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/pagestore"
)

// ErrCrashed is returned by every operation after the log crashed (test
// hook or injected failure).
var ErrCrashed = errors.New("wal: log crashed")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCorruptLog reports CRC-invalid bytes before the end of the log — a
// torn tail is healed silently by Open, but garbage in the middle of the
// record stream is unrecoverable corruption.
var ErrCorruptLog = errors.New("wal: corrupt record stream")

// DefaultSegmentSize is the rotation threshold when Config.SegmentSize is
// zero.
const DefaultSegmentSize = 1 << 20

// Config tunes a Log.
type Config struct {
	// SegmentSize is the rotation threshold in bytes (DefaultSegmentSize
	// if <= 0). A batch is written entirely to one segment, so segments
	// can overshoot by up to one batch; frames never straddle segments.
	SegmentSize int
	// CrashAfterAppends, when > 0, makes the Nth Append (and everything
	// after it) fail with ErrCrashed, dropping all unsynced records — the
	// deterministic crash point of the crash-matrix tests.
	CrashAfterAppends uint64
	// Metrics, when non-nil, receives the log's instruments: the wal.*
	// counters, append/force latency histograms, and the group-commit
	// batch-size distribution. Nil disables latency recording.
	Metrics *metrics.Registry
	// Retain is the minimum number of newest segments checkpoint GC always
	// keeps (DefaultRetain if <= 0). Retention keeps a short debugging
	// window of history even when the checkpoint would allow truncating
	// everything; the active segment is never removed regardless.
	Retain int
	// CrashAtCheckpoint, when > 0, makes the Nth Checkpoint call crash the
	// log partway through, at the point selected by CheckpointCrashPhase —
	// the crash-matrix hook for mid-checkpoint and mid-GC power failures.
	CrashAtCheckpoint uint64
	// CheckpointCrashPhase selects where CrashAtCheckpoint fires:
	// 1 = after the checkpoint record is durable, before the master record
	// is written; 2 = after the master record, before any segment is
	// removed; 3 = after the first segment removal, before the rest.
	CheckpointCrashPhase int
}

// Stats counts log activity.
type Stats struct {
	// Appends counts records accepted.
	Appends uint64
	// Syncs counts segment fsyncs (group commit: Forces/Syncs > 1 means
	// commits shared a sync).
	Syncs uint64
	// Forces counts Force calls that had to wait for durability.
	Forces uint64
	// Rotations counts segment rollovers.
	Rotations uint64
	// Durable is the current durable LSN.
	Durable LSN
	// Next is the LSN the next record will get.
	Next LSN
	// Checkpoints counts completed checkpoints (record + master durable).
	Checkpoints uint64
	// SegmentsGCed counts segments unlinked by checkpoint truncation.
	SegmentsGCed uint64
	// CheckpointLSN is the LSN of the latest complete checkpoint record
	// (0 before the first).
	CheckpointLSN LSN
	// TruncLSN is the logical truncation point: every record below it has
	// been released by a checkpoint (its segment may or may not be gone).
	TruncLSN LSN
	// ActiveTxns is the size of the active-transaction table.
	ActiveTxns int
}

// Log is the write-ahead log.
type Log struct {
	store SegmentStore
	cfg   Config

	// fastDurable mirrors durable for the lock-free Force/FlushTo fast
	// path: a Force whose lsn is already strictly below the watermark
	// returns without touching the log mutex, so the sharded buffer
	// pool's concurrent write-backs of already-durable pages never
	// serialize here. Zero means "disabled": the watermark is zeroed the
	// moment the log crashes or fails, restoring the slow path's
	// every-FlushTo-fails barrier (see crashLocked). The zeroing happens
	// under mu before any caller can learn of the crash, so a page made
	// evictable after a failed append can never slip past the fast path.
	fastDurable atomic.Uint64

	// ckptMu serializes Checkpoint calls end to end (snapshot, record,
	// master write, segment GC). It is always acquired before mu and never
	// held across a blocking wait other than Force.
	ckptMu sync.Mutex

	mu          sync.Mutex
	cond        *sync.Cond
	pending     []byte
	pendingRecs uint64 // records in pending (group-commit batch sizing)
	next        LSN
	durable     LSN
	appends     uint64
	crashed     bool
	closed      bool
	failure     error

	// att is the active-transaction table: every transaction with a logged
	// operation and no commit/end record yet, mapped to its first record's
	// LSN. Maintained by Append, rebuilt by Open's parse, snapshotted into
	// checkpoint records so recovery's undo set is bounded.
	att map[uint64]LSN
	// snapLSN is the newest commit-consistent log position: the LSN of the
	// last non-RecOp record appended while the active-transaction table was
	// empty. Every page stamp with pageLSN <= snapLSN belongs to a committed
	// (or fully rolled-back) operation, and the stamp itself has already been
	// applied — commit/end records are appended only after their operations'
	// Capture.Commit stamps. Snapshot transactions pin this value; it stalls
	// (stale but consistent) while writers continuously overlap.
	snapLSN LSN
	// bases maps a segment index to the LSN of its first byte. Seeded by
	// Open (from the master record once GC has unlinked prefix segments)
	// and extended by the flusher at rotation; ScanFrom and gcPlan use it
	// to address segments after truncation.
	bases map[uint64]LSN
	// lastCkpt is the latest complete checkpoint (nil before the first).
	lastCkpt *Checkpoint

	ckptSeq     uint64 // Checkpoint calls, for CrashAtCheckpoint scheduling
	checkpoints uint64
	segsGCed    uint64
	ckptLSN     LSN
	truncLSN    LSN

	// Instruments (nil without Config.Metrics; all methods nil-safe).
	hAppend *metrics.Histogram // wal.append: Append call latency
	hForce  *metrics.Histogram // wal.force: Force latency (slow path; the
	// lock-free fast path is sub-observation noise and records nothing)
	hBatch *metrics.Histogram // wal.batch_records: records per synced batch

	forces    uint64
	syncs     uint64
	rotations uint64

	flushCh chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	// flusher-owned state
	seg        Segment
	segIdx     uint64
	segWritten int
	writePos   LSN // LSN of the next byte the flusher will write
}

// Open replays the segment store's metadata and returns a ready log. A
// torn tail (an incomplete or CRC-invalid final frame, the residue of
// crashing mid-write) is truncated away; corruption before the tail is an
// error.
func Open(store SegmentStore, cfg Config) (*Log, error) {
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = DefaultSegmentSize
	}
	if cfg.Retain <= 0 {
		cfg.Retain = DefaultRetain
	}
	l := &Log{
		store:   store,
		cfg:     cfg,
		att:     make(map[uint64]LSN),
		bases:   make(map[uint64]LSN),
		flushCh: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	if reg := cfg.Metrics; reg != nil {
		l.hAppend = reg.Histogram("wal.append")
		l.hForce = reg.Histogram("wal.force")
		l.hBatch = reg.Histogram("wal.batch_records")
		l.registerCounters(reg)
	}

	indices, err := store.List()
	if err != nil {
		return nil, err
	}
	// Checkpoint GC removes segments oldest-first, so survivors are always
	// a contiguous index range; a gap means segments vanished outside GC.
	for i := 1; i < len(indices); i++ {
		if indices[i] != indices[i-1]+1 {
			return nil, fmt.Errorf("%w: segment %d follows segment %d (survivors must be contiguous)",
				ErrCorruptLog, indices[i], indices[i-1])
		}
	}
	// LSNs are 1-based byte positions (LSN = stable offset + 1): LSN 0 is
	// reserved to mean "never stamped" in page headers, so pageLSN-
	// conditional redo can tell an untouched page from one stamped by the
	// very first record. Once GC has unlinked prefix segments the oldest
	// survivor no longer starts at LSN 1; its base comes from the master
	// record (keepIdx/keepBase), walked backward over any segments GC was
	// interrupted before removing (those are sealed, so their full length
	// is their payload).
	base := LSN(1)
	mrec, mok := readMaster(store)
	if len(indices) > 0 {
		first := indices[0]
		switch {
		case mok:
			if first > mrec.keepIdx || indices[len(indices)-1] < mrec.keepIdx {
				return nil, fmt.Errorf("%w: master record keeps segment %d but segments span %d..%d",
					ErrCorruptLog, mrec.keepIdx, first, indices[len(indices)-1])
			}
			base = mrec.keepBase
			for idx := mrec.keepIdx; idx > first; idx-- {
				buf, err := store.ReadAll(idx - 1)
				if err != nil {
					return nil, err
				}
				base -= LSN(len(buf))
			}
		case first != 0:
			return nil, fmt.Errorf("%w: oldest segment is %d but no master record locates its base LSN",
				ErrCorruptLog, first)
		}
	}
	pos := base
	var ckptPayload []byte // payload of the record the master points at
	for n, idx := range indices {
		buf, err := store.ReadAll(idx)
		if err != nil {
			return nil, err
		}
		l.bases[idx] = pos
		off := 0
		for off < len(buf) {
			rec, next, ok := parseFrame(buf, off)
			if !ok {
				break
			}
			rec.LSN = pos + LSN(off)
			l.noteRecord(rec)
			if mok && rec.Type == RecCheckpoint && rec.LSN == mrec.ckptLSN {
				ckptPayload = rec.Payload
			}
			off = next
		}
		if off < len(buf) {
			if n != len(indices)-1 {
				return nil, fmt.Errorf("%w: segment %d has %d undecodable bytes before later segments",
					ErrCorruptLog, idx, len(buf)-off)
			}
			if err := store.Truncate(idx, int64(off)); err != nil {
				return nil, err
			}
		}
		pos += LSN(off)
		l.segIdx = idx + 1
	}
	l.next, l.durable = pos, pos
	l.writePos = pos
	l.fastDurable.Store(pos)
	if mok {
		l.truncLSN = mrec.truncLSN
		// A master that points at a missing or undecodable checkpoint
		// record degrades to "no checkpoint": recovery scans everything
		// that survives. GC only ever ran behind a durable master, so the
		// surviving range still covers all live state.
		if ckptPayload != nil {
			if ck, err := DecodeCheckpoint(ckptPayload); err == nil {
				ck.LSN = mrec.ckptLSN
				l.lastCkpt = ck
				l.ckptLSN = ck.LSN
			}
		}
	}

	l.wg.Add(1)
	go l.flusher()
	return l, nil
}

// Append frames one record into the pending buffer and returns its LSN.
// The record is not durable until Force (or a page write-back's FlushTo)
// covers it.
func (l *Log) Append(typ byte, txn uint64, payload []byte) (LSN, error) {
	t0 := l.hAppend.Start()
	defer l.hAppend.Since(t0)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return 0, ErrCrashed
	}
	if l.failure != nil {
		return 0, l.failure
	}
	if l.closed {
		return 0, ErrClosed
	}
	l.appends++
	if l.cfg.CrashAfterAppends > 0 && l.appends >= l.cfg.CrashAfterAppends {
		l.crashLocked()
		return 0, ErrCrashed
	}
	lsn := l.next
	l.noteRecord(Record{LSN: lsn, Type: typ, Txn: txn})
	l.pending = appendFrame(l.pending, typ, txn, payload)
	l.pendingRecs++
	l.next += LSN(frameSize(len(payload)))
	l.kick()
	return lsn, nil
}

// noteRecord maintains the active-transaction table. Caller holds l.mu (or,
// during Open's parse, has exclusive access to the unpublished log).
func (l *Log) noteRecord(rec Record) {
	switch rec.Type {
	case RecOp:
		if rec.Txn != 0 {
			if _, ok := l.att[rec.Txn]; !ok {
				l.att[rec.Txn] = rec.LSN
			}
		}
	case RecCommit, RecEnd:
		delete(l.att, rec.Txn)
	}
	// Advance the commit-consistent snapshot position. RecOp records are
	// excluded: an op's page stamps land only after its record is appended
	// (Capture.Commit), so the op's own LSN is not yet a safe visibility
	// bound when the record enters the log.
	if rec.Type != RecOp && len(l.att) == 0 {
		l.snapLSN = rec.LSN
	}
}

// SnapshotLSN returns the newest commit-consistent log position: a snapshot
// reader that treats exactly the pages with pageLSN <= SnapshotLSN() as
// visible observes the committed state as of that LSN. Zero means "before
// any logged commit" (only never-stamped pages are visible).
func (l *Log) SnapshotLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(l.snapLSN)
}

// TxnLogged reports whether txn has appended at least one operation record
// not yet closed by a commit or end record. A transaction that never logged
// needs no commit record at all: recovery only classifies transactions it
// saw operations from, so the record would be pure log noise — and the
// force() it drags along, a wasted fsync per read-only transaction.
func (l *Log) TxnLogged(txn uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.att[txn]
	return ok
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// AppendOp appends a RecOp built from an undo payload and page deltas.
func (l *Log) AppendOp(txn uint64, undo []byte, deltas []pagestore.PageDelta) (LSN, error) {
	return l.Append(RecOp, txn, EncodeOp(undo, deltas))
}

// AppendCommit appends a RecCommit. The caller must Force to the returned
// LSN's end before reporting the commit; Txn.Commit does exactly that.
func (l *Log) AppendCommit(txn uint64) (LSN, error) {
	return l.Append(RecCommit, txn, nil)
}

// AppendEnd appends a RecEnd.
func (l *Log) AppendEnd(txn uint64) (LSN, error) {
	return l.Append(RecEnd, txn, nil)
}

// Force blocks until every record appended at or before lsn is durable.
// Passing an LSN returned by Append covers that record (durability is
// tracked past the record's full frame).
func (l *Log) Force(lsn LSN) error {
	// Fast path: the record is already durable and the log was healthy
	// when the watermark was last published. Records synced before a
	// crash stay durable, but a crashed log must still fail every Force —
	// crashLocked zeroes the watermark, so only the slow path (which
	// checks crashed) can answer then.
	if d := l.fastDurable.Load(); d != 0 && d > lsn {
		return nil
	}
	t0 := l.hForce.Start()
	defer l.hForce.Since(t0)
	l.mu.Lock()
	defer l.mu.Unlock()
	waited := false
	for {
		if l.crashed {
			return ErrCrashed
		}
		if l.failure != nil {
			return l.failure
		}
		if l.durable > lsn || (l.durable == lsn && l.next == lsn) {
			return nil
		}
		if l.closed {
			return ErrClosed
		}
		if !waited {
			l.forces++
			waited = true
		}
		l.kick()
		l.cond.Wait()
	}
}

// FlushTo is the pagestore.LogSyncer hook: identical to Force. The buffer
// manager calls it with a page's LSN before writing the page back.
func (l *Log) FlushTo(lsn uint64) error { return l.Force(lsn) }

// kick nudges the flusher without blocking. Caller holds l.mu.
func (l *Log) kick() {
	select {
	case l.flushCh <- struct{}{}:
	default:
	}
}

// crashLocked turns the log fail-stop. Caller holds l.mu.
func (l *Log) crashLocked() {
	l.crashed = true
	l.fastDurable.Store(0)
	l.pending = nil
	l.pendingRecs = 0
	l.cond.Broadcast()
}

// CrashNow simulates a power failure: all pending (unsynced) records are
// lost and every subsequent operation fails with ErrCrashed. The segment
// store keeps only what was synced.
func (l *Log) CrashNow() {
	l.mu.Lock()
	l.crashLocked()
	l.mu.Unlock()
}

// Crashed reports whether the log is fail-stopped.
func (l *Log) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// flusher is the group-commit goroutine: it drains the pending buffer in
// batches, rotating segments as they fill, and syncs once per batch.
func (l *Log) flusher() {
	defer l.wg.Done()
	for {
		select {
		case <-l.done:
			return
		case <-l.flushCh:
		}
		l.mu.Lock()
		batch := l.pending
		recs := l.pendingRecs
		l.pending = nil
		l.pendingRecs = 0
		l.mu.Unlock()
		if len(batch) == 0 {
			continue
		}
		err := l.writeBatch(batch)
		l.mu.Lock()
		if err != nil {
			l.failure = fmt.Errorf("wal: flush: %w", err)
			l.fastDurable.Store(0)
		} else if !l.crashed {
			l.durable += LSN(len(batch))
			l.fastDurable.Store(l.durable)
			l.syncs++
			l.hBatch.Record(recs)
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// writeBatch appends one batch to the current segment (rotating first if
// it is full) and syncs it.
func (l *Log) writeBatch(batch []byte) error {
	if l.seg == nil || l.segWritten >= l.cfg.SegmentSize {
		if l.seg != nil {
			if err := l.seg.Close(); err != nil {
				return err
			}
			l.mu.Lock()
			l.rotations++
			l.mu.Unlock()
		}
		seg, err := l.store.Create(l.segIdx)
		if err != nil {
			return err
		}
		l.mu.Lock()
		l.bases[l.segIdx] = l.writePos
		l.mu.Unlock()
		l.seg = seg
		l.segIdx++
		l.segWritten = 0
	}
	if _, err := l.seg.Write(batch); err != nil {
		return err
	}
	l.segWritten += len(batch)
	l.writePos += LSN(len(batch))
	return l.seg.Sync()
}

// Scan replays every durable record in LSN order. It reads from the
// segment store, so it sees exactly what a crash would leave behind plus
// anything synced since; a torn tail in the final segment ends the scan
// cleanly.
func (l *Log) Scan(fn func(Record) error) error { return l.ScanFrom(0, fn) }

// ScanFrom replays every durable record with LSN >= from in LSN order.
// Segments that end below from are skipped entirely — this is what makes a
// checkpointed restart's redo pass proportional to work-since-checkpoint
// rather than total history.
func (l *Log) ScanFrom(from LSN, fn func(Record) error) error {
	indices, err := l.store.List()
	if err != nil {
		return err
	}
	for n, idx := range indices {
		base, ok := l.segBase(idx)
		if !ok {
			return fmt.Errorf("%w: segment %d has no known base LSN", ErrCorruptLog, idx)
		}
		buf, err := l.store.ReadAll(idx)
		if err != nil {
			return err
		}
		if base+LSN(len(buf)) <= from {
			continue
		}
		off := 0
		for off < len(buf) {
			rec, next, ok := parseFrame(buf, off)
			if !ok {
				if n != len(indices)-1 {
					return fmt.Errorf("%w: segment %d offset %d", ErrCorruptLog, idx, off)
				}
				return nil
			}
			rec.LSN = base + LSN(off)
			if rec.LSN >= from {
				if err := fn(rec); err != nil {
					return err
				}
			}
			off = next
		}
	}
	return nil
}

// segBase looks up a segment's base LSN.
func (l *Log) segBase(idx uint64) (LSN, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.bases[idx]
	return b, ok
}

// Close flushes everything pending and stops the flusher. A crashed log
// closes without flushing.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for !l.crashed && l.failure == nil && l.durable < l.next {
		l.kick()
		l.cond.Wait()
	}
	err := l.failure
	l.mu.Unlock()
	close(l.done)
	l.wg.Wait()
	if l.seg != nil {
		if cerr := l.seg.Close(); err == nil {
			err = cerr
		}
		l.seg = nil
	}
	return err
}

// registerCounters unifies the log's counters onto a metrics registry as
// snapshot-time computed values (they live under the log mutex, which a
// snapshot may briefly take).
func (l *Log) registerCounters(reg *metrics.Registry) {
	stat := func(pick func(Stats) uint64) func() uint64 {
		return func() uint64 { return pick(l.Stats()) }
	}
	reg.Func("wal.appends", stat(func(s Stats) uint64 { return s.Appends }))
	reg.Func("wal.syncs", stat(func(s Stats) uint64 { return s.Syncs }))
	reg.Func("wal.forces", stat(func(s Stats) uint64 { return s.Forces }))
	reg.Func("wal.rotations", stat(func(s Stats) uint64 { return s.Rotations }))
	reg.Func("wal.durable_lsn", stat(func(s Stats) uint64 { return uint64(s.Durable) }))
	reg.Func("wal.next_lsn", stat(func(s Stats) uint64 { return uint64(s.Next) }))
	reg.Func("wal.checkpoints", stat(func(s Stats) uint64 { return s.Checkpoints }))
	reg.Func("wal.segments_gced", stat(func(s Stats) uint64 { return s.SegmentsGCed }))
}

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:       l.appends,
		Syncs:         l.syncs,
		Forces:        l.forces,
		Rotations:     l.rotations,
		Durable:       l.durable,
		Next:          l.next,
		Checkpoints:   l.checkpoints,
		SegmentsGCed:  l.segsGCed,
		CheckpointLSN: l.ckptLSN,
		TruncLSN:      l.truncLSN,
		ActiveTxns:    len(l.att),
	}
}
