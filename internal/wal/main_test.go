// TestMain for the wal black-box suite: crash-matrix tests that need disk
// (file-backed segment stores) allocate scratch directories through
// crashScratch, and after the run TestMain asserts none were orphaned. A
// crash-test suite that leaks directories is quietly eating disk on every
// CI run — fail loudly instead.
package wal_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// scratchRoot holds every crash-matrix scratch directory for this process.
var scratchRoot string

// crashScratch returns a fresh scratch directory under the managed root.
// Tests clean up via t.Cleanup like t.TempDir, but the root is audited by
// TestMain, so a missed or failed cleanup fails the whole run instead of
// lingering.
func crashScratch(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp(scratchRoot, "burst-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.RemoveAll(dir); err != nil {
			t.Errorf("cleaning scratch dir %s: %v", dir, err)
		}
	})
	return dir
}

func TestMain(m *testing.M) {
	// Stale roots from previous crashed runs are orphans too: report them,
	// then clear them so one crashed run does not poison every later one.
	stale, _ := filepath.Glob(filepath.Join(os.TempDir(), "walcrashmatrix-*"))
	for _, d := range stale {
		fmt.Fprintf(os.Stderr, "wal: removing orphan scratch root from a previous run: %s\n", d)
		os.RemoveAll(d)
	}

	var err error
	scratchRoot, err = os.MkdirTemp("", "walcrashmatrix-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wal: creating scratch root:", err)
		os.Exit(1)
	}

	code := m.Run()

	orphans, err := os.ReadDir(scratchRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wal: auditing scratch root:", err)
		os.Exit(1)
	}
	if len(orphans) > 0 {
		fmt.Fprintf(os.Stderr, "wal: FAIL: %d orphan scratch dir(s) left by the crash matrix:\n", len(orphans))
		for _, e := range orphans {
			fmt.Fprintf(os.Stderr, "  %s\n", filepath.Join(scratchRoot, e.Name()))
		}
		os.RemoveAll(scratchRoot)
		os.Exit(1)
	}
	os.RemoveAll(scratchRoot)
	os.Exit(code)
}
