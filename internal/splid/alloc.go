package splid

import "fmt"

// DefaultDist is the default labeling gap: new sibling labels are spaced
// dist apart in division-value space so later insertions rarely need the
// even-division overflow mechanism. The paper recommends dist = 2 only for
// almost-static documents; larger values trade SPLID bytes for fewer
// overflow chains.
const DefaultDist = 16

// MinDist is the smallest admissible gap (adjacent odd values).
const MinDist = 2

// Allocator assigns labels for structural document updates. It is a pure
// computation over existing labels — it holds no state — so one Allocator
// value can be shared freely across goroutines.
type Allocator struct {
	// Dist is the labeling gap; values < MinDist fall back to DefaultDist
	// and odd gaps are rounded up to the next even value so odd+dist stays
	// odd.
	Dist uint32
}

func (a Allocator) dist() uint32 {
	d := a.Dist
	if d < MinDist {
		d = DefaultDist
	}
	if d%2 == 1 {
		d++
	}
	return d
}

// FirstChild returns the label of the first regular child of parent in a
// freshly built level: parent extended by division dist+1. (Division 1 is
// reserved for attribute roots and string nodes, so regular children start
// above it.)
func (a Allocator) FirstChild(parent ID) ID {
	if parent.IsNull() {
		panic("splid: FirstChild of null ID")
	}
	return parent.appendDiv(a.dist() + 1)
}

// NextSibling returns a label following prev among the children of prev's
// parent, assuming no existing sibling lies beyond prev (i.e. an append).
// Any overflow chain of prev is cut off at its first division, keeping
// appended labels short.
func (a Allocator) NextSibling(prev ID) ID {
	if prev.IsNull() {
		panic("splid: NextSibling of null ID")
	}
	parent := prev.Parent()
	if parent.IsNull() {
		panic("splid: NextSibling of the document root")
	}
	fork := prev.divs[len(parent.divs)]
	next := fork + a.dist()
	if next%2 == 0 {
		next++
	}
	return parent.appendDiv(next)
}

// Between returns a fresh label that sorts strictly between left and right,
// labels a node at the same level as the children of parent, and leaves both
// inputs untouched — the overflow mechanism of Section 3.2. The supported
// shapes are:
//
//   - left and right both non-null children of parent (insert between),
//   - left null (insert before the first existing child right),
//   - right null (insert after the last existing child: NextSibling(left)),
//   - both null (first child of a childless parent).
//
// Between never fails for valid sibling inputs: when no odd division value
// is free between the two labels it descends into even overflow divisions,
// which lengthens the label but preserves document order and level
// arithmetic.
func (a Allocator) Between(parent, left, right ID) (ID, error) {
	switch {
	case left.IsNull() && right.IsNull():
		return a.FirstChild(parent), nil
	case left.IsNull():
		if !right.ChildOf(parent) {
			return Null, fmt.Errorf("splid: Between: %v is not a child of %v", right, parent)
		}
	case right.IsNull():
		if !left.ChildOf(parent) {
			return Null, fmt.Errorf("splid: Between: %v is not a child of %v", left, parent)
		}
		return a.NextSibling(left), nil
	default:
		if Compare(left, right) >= 0 {
			return Null, fmt.Errorf("splid: Between: left %v does not precede right %v", left, right)
		}
		if !left.ChildOf(parent) || !right.ChildOf(parent) {
			return Null, fmt.Errorf("splid: Between: %v and %v are not both children of %v", left, right, parent)
		}
	}

	base := len(parent.divs)
	// The reserved division 1 (attribute root / string node) acts as the
	// virtual lower fence when inserting before the first regular child.
	l := []uint32{1}
	if !left.IsNull() {
		l = left.divs[base:]
	}
	r := right.divs[base:]
	mid := betweenSuffixes(l, r, a.dist())
	out := make([]uint32, base+len(mid))
	copy(out, parent.divs)
	copy(out[base:], mid)
	return ID{divs: out}, nil
}

const maxDiv = ^uint32(0)

// betweenSuffixes computes a division suffix strictly between l and r in
// lexicographic (prefix-first) order, ending in a single odd division — i.e.
// opening exactly one level — and never ending in the reserved value 1.
//
// Preconditions: l < r lexicographically; r consists of zero or more even
// overflow divisions followed by one odd division; l has the same shape (or
// is the one-element reserved fence {1}).
func betweenSuffixes(l, r []uint32, dist uint32) []uint32 {
	var out []uint32
	li, ri := 0, 0
	lPinned, rPinned := true, true // whether each fence still constrains us
	for depth := 0; ; depth++ {
		lv := uint32(0) // exclusive lower fence at this depth
		rv := maxDiv    // exclusive upper fence at this depth
		if lPinned && li < len(l) {
			lv = l[li]
		}
		if rPinned && ri < len(r) {
			rv = r[ri]
		}

		if lPinned && rPinned && lv == rv {
			// Shared prefix division: emit it and stay pinned to both.
			out = append(out, lv)
			li++
			ri++
			continue
		}

		// Try to finish with an odd division strictly between the fences,
		// skipping the reserved value 1.
		if v, ok := pickOdd(lv, rv, dist); ok {
			return append(out, v)
		}
		// Try an even overflow division strictly between the fences; below
		// it the label space is unconstrained, so one fresh odd division
		// completes the label.
		if v, ok := pickEven(lv, rv); ok {
			return append(out, v, dist+1)
		}

		// Fences are adjacent (rv == lv+1): no room at this depth. Descend
		// along whichever fence continues. Following l means emitting lv
		// (then everything below must exceed l's remainder; r no longer
		// constrains because lv < rv). Following r is symmetric.
		if lPinned && li+1 < len(l) {
			out = append(out, lv)
			li++
			rPinned = false
			continue
		}
		if rPinned && ri+1 < len(r) {
			out = append(out, rv)
			ri++
			lPinned = false
			continue
		}
		// Both fences end on adjacent values: one of them would have to end
		// in an even division, which valid labels never do.
		panic(fmt.Sprintf("splid: betweenSuffixes: no room between %v and %v", l, r))
	}
}

// pickOdd selects an odd division v with lv < v < rv and v != 1, preferring
// lv+dist for gap-friendly spacing, falling back to the midpoint. ok is
// false when no such value exists.
func pickOdd(lv, rv, dist uint32) (v uint32, ok bool) {
	if rv <= lv+1 {
		return 0, false
	}
	v = lv + dist
	if v < lv || v >= rv { // overflow or beyond fence: use midpoint
		v = lv + (rv-lv)/2
	}
	if v%2 == 0 {
		switch {
		case v+1 < rv:
			v++
		case v-1 > lv:
			v--
		default:
			return 0, false
		}
	}
	if v == 1 {
		if 3 < rv {
			v = 3
		} else {
			return 0, false
		}
	}
	if v <= lv || v >= rv {
		return 0, false
	}
	return v, true
}

// pickEven selects an even division v with lv < v < rv, or ok=false.
func pickEven(lv, rv uint32) (v uint32, ok bool) {
	if rv <= lv+1 {
		return 0, false
	}
	v = lv + 1
	if v%2 == 1 {
		v++
	}
	if v <= lv || v >= rv {
		return 0, false
	}
	return v, true
}

// NthChild returns the label of the n-th (0-based) regular child of parent
// in a freshly built level using the allocator gap: division n*dist+dist+1.
// It is the bulk-load fast path used when a document is stored initially in
// document order.
func (a Allocator) NthChild(parent ID, n int) ID {
	if n < 0 {
		panic("splid: NthChild with negative index")
	}
	d := a.dist()
	return parent.appendDiv(uint32(n)*d + d + 1)
}
