package splid

import (
	"errors"
	"fmt"
)

// Binary encoding of SPLIDs.
//
// Each division is encoded with a prefix-free, order-preserving variable
// length code in the spirit of ORDPATH's Li/Ling bitstrings: codes of a
// longer class start with a strictly larger leading byte pattern and cover a
// strictly larger value range, so comparing two encoded labels byte-wise is
// exactly document-order comparison of the labels (a prefix label encodes to
// a byte prefix and sorts first). This lets B-trees store SPLIDs as opaque
// byte keys and still keep the document in document order.
//
// Code classes (v is the division value):
//
//	0xxxxxxx                              v in [0, 2^7)
//	10xxxxxx X                            v in [2^7, 2^7+2^14)
//	110xxxxx X X                          v in [2^7+2^14, 2^7+2^14+2^21)
//	1110xxxx X X X                        v in [..., +2^28)
//	11110000 X X X X                      remaining uint32 values
//
// where X is a payload byte and the stored payload is the value minus the
// class base, big-endian.

var classBase = [5]uint64{
	0,
	1 << 7,
	1<<7 + 1<<14,
	1<<7 + 1<<14 + 1<<21,
	1<<7 + 1<<14 + 1<<21 + 1<<28,
}

// AppendDivision appends the order-preserving encoding of one division value
// to dst and returns the extended slice.
func AppendDivision(dst []byte, v uint32) []byte {
	x := uint64(v)
	switch {
	case x < classBase[1]:
		return append(dst, byte(x))
	case x < classBase[2]:
		d := x - classBase[1]
		return append(dst, 0x80|byte(d>>8), byte(d))
	case x < classBase[3]:
		d := x - classBase[2]
		return append(dst, 0xC0|byte(d>>16), byte(d>>8), byte(d))
	case x < classBase[4]:
		d := x - classBase[3]
		return append(dst, 0xE0|byte(d>>24), byte(d>>16), byte(d>>8), byte(d))
	default:
		d := x - classBase[4]
		return append(dst, 0xF0, byte(d>>24), byte(d>>16), byte(d>>8), byte(d))
	}
}

// ErrBadEncoding is returned when decoding malformed SPLID bytes.
var ErrBadEncoding = errors.New("splid: bad encoding")

// decodeDivision decodes one division from b, returning the value and the
// number of bytes consumed.
func decodeDivision(b []byte) (uint32, int, error) {
	if len(b) == 0 {
		return 0, 0, fmt.Errorf("%w: empty input", ErrBadEncoding)
	}
	h := b[0]
	var class, n int
	switch {
	case h&0x80 == 0:
		class, n = 0, 1
	case h&0xC0 == 0x80:
		class, n = 1, 2
	case h&0xE0 == 0xC0:
		class, n = 2, 3
	case h&0xF0 == 0xE0:
		class, n = 3, 4
	case h == 0xF0:
		class, n = 4, 5
	default:
		return 0, 0, fmt.Errorf("%w: header byte %#x", ErrBadEncoding, h)
	}
	if len(b) < n {
		return 0, 0, fmt.Errorf("%w: truncated division (need %d bytes, have %d)", ErrBadEncoding, n, len(b))
	}
	var d uint64
	switch class {
	case 0:
		d = uint64(h)
	case 1:
		d = uint64(h&0x3F)<<8 | uint64(b[1])
	case 2:
		d = uint64(h&0x1F)<<16 | uint64(b[1])<<8 | uint64(b[2])
	case 3:
		d = uint64(h&0x0F)<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	case 4:
		d = uint64(b[1])<<24 | uint64(b[2])<<16 | uint64(b[3])<<8 | uint64(b[4])
	}
	v := d + classBase[class]
	if v > uint64(^uint32(0)) {
		return 0, 0, fmt.Errorf("%w: division overflows uint32", ErrBadEncoding)
	}
	return uint32(v), n, nil
}

// Encode returns the order-preserving byte encoding of id. The null ID
// encodes to an empty (non-nil) slice.
func (id ID) Encode() []byte {
	return id.AppendEncode(make([]byte, 0, 2*len(id.divs)))
}

// AppendEncode appends the encoding of id to dst.
func (id ID) AppendEncode(dst []byte) []byte {
	for _, d := range id.divs {
		dst = AppendDivision(dst, d)
	}
	if dst == nil {
		dst = []byte{}
	}
	return dst
}

// Decode parses an encoded SPLID, consuming the whole input. Empty input
// yields the null ID.
func Decode(b []byte) (ID, error) {
	if len(b) == 0 {
		return Null, nil
	}
	divs := make([]uint32, 0, len(b))
	for len(b) > 0 {
		v, n, err := decodeDivision(b)
		if err != nil {
			return Null, err
		}
		divs = append(divs, v)
		b = b[n:]
	}
	id := ID{divs: divs}
	if err := id.validate(); err != nil {
		return Null, err
	}
	return id, nil
}

// CommonPrefixLen returns the number of leading bytes a and b share. B-tree
// pages use it for prefix compression of consecutive SPLID keys, which the
// paper reports shrinks stored SPLIDs to 2–3 bytes on average.
func CommonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// EncodedLen returns the number of bytes Encode would produce.
func (id ID) EncodedLen() int {
	n := 0
	for _, d := range id.divs {
		x := uint64(d)
		switch {
		case x < classBase[1]:
			n++
		case x < classBase[2]:
			n += 2
		case x < classBase[3]:
			n += 3
		case x < classBase[4]:
			n += 4
		default:
			n += 5
		}
	}
	return n
}
