package splid

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []string{"1", "1.3", "1.3.3", "1.3.4.3", "1.5.3.3.11.3.1", "1.128.65537"}
	for _, s := range cases {
		id, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := id.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "2", "0", "1.0", "1.4", "1.3.4", "x", "1..3", "1.3.", "1.-3", "1.4294967296"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestLevel(t *testing.T) {
	cases := map[string]int{
		"1":            1,
		"1.3":          2,
		"1.3.3":        3,
		"1.3.4.3":      3, // even division 4 does not open a level
		"1.3.4.4.3":    3,
		"1.5.3.3.11.3": 6,
		"1.3.3.1":      4, // attribute root
	}
	for s, want := range cases {
		if got := MustParse(s).Level(); got != want {
			t.Errorf("Level(%s) = %d, want %d", s, got, want)
		}
	}
	if Null.Level() != 0 {
		t.Errorf("Null.Level() = %d", Null.Level())
	}
}

func TestParent(t *testing.T) {
	cases := map[string]string{
		"1.3":       "1",
		"1.3.3":     "1.3",
		"1.3.4.3":   "1.3", // strip overflow chain with the odd division
		"1.3.4.4.3": "1.3",
		"1.3.3.1":   "1.3.3",
		"1.3.3.1.3": "1.3.3.1",
	}
	for s, want := range cases {
		if got := MustParse(s).Parent().String(); got != want {
			t.Errorf("Parent(%s) = %s, want %s", s, got, want)
		}
	}
	if !Root().Parent().IsNull() {
		t.Error("Parent(root) should be null")
	}
	if !Null.Parent().IsNull() {
		t.Error("Parent(null) should be null")
	}
}

func TestAncestors(t *testing.T) {
	id := MustParse("1.3.4.3.5.1.3")
	anc := id.Ancestors()
	want := []string{"1", "1.3", "1.3.4.3", "1.3.4.3.5", "1.3.4.3.5.1"}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors: got %v, want %v", anc, want)
	}
	for i, w := range want {
		if anc[i].String() != w {
			t.Errorf("Ancestors[%d] = %s, want %s", i, anc[i], w)
		}
	}
	if Root().Ancestors() != nil {
		t.Error("root has no ancestors")
	}
}

func TestAncestorAtLevel(t *testing.T) {
	id := MustParse("1.3.4.3.5")
	cases := map[int]string{1: "1", 2: "1.3", 3: "1.3.4.3", 4: "1.3.4.3.5"}
	for lvl, want := range cases {
		if got := id.AncestorAtLevel(lvl).String(); got != want {
			t.Errorf("AncestorAtLevel(%d) = %s, want %s", lvl, got, want)
		}
	}
	if !id.AncestorAtLevel(5).IsNull() || !id.AncestorAtLevel(0).IsNull() {
		t.Error("out-of-range levels should return Null")
	}
}

func TestCompareDocumentOrder(t *testing.T) {
	// From Figure 5 of the paper, in document order.
	ordered := []string{
		"1", "1.3", "1.3.3", "1.3.3.1", "1.3.3.1.3", "1.3.3.1.3.1",
		"1.3.3.3", "1.3.3.3.3", "1.3.3.5", "1.3.3.7",
		"1.3.4.3", // node inserted between 1.3.3 subtree and 1.3.5
		"1.3.5", "1.5", "1.5.3", "1.5.3.3", "1.5.4.3", "1.5.4.5", "1.5.5",
	}
	for i := range ordered {
		for j := range ordered {
			a, b := MustParse(ordered[i]), MustParse(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := Compare(a, b); got != want {
				t.Errorf("Compare(%s, %s) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestAncestryPredicates(t *testing.T) {
	root := Root()
	book := MustParse("1.5.3.3")
	title := MustParse("1.5.3.3.3")
	if !root.IsAncestorOf(book) || !book.IsAncestorOf(title) {
		t.Error("expected ancestry")
	}
	if book.IsAncestorOf(book) {
		t.Error("a node is not its own proper ancestor")
	}
	if !book.IsSelfOrAncestorOf(book) {
		t.Error("IsSelfOrAncestorOf must include self")
	}
	if title.IsAncestorOf(book) {
		t.Error("descendant is not an ancestor")
	}
	if !title.ChildOf(book) {
		t.Error("title is a child of book")
	}
	if title.ChildOf(root) {
		t.Error("title is not a child of root")
	}
	// Overflow labels: 1.3.4.3 is a child of 1.3.
	if !MustParse("1.3.4.3").ChildOf(MustParse("1.3")) {
		t.Error("overflow label should still be a direct child")
	}
}

func TestSubtreeLimit(t *testing.T) {
	d := MustParse("1.3.3")
	lim := d.SubtreeLimit()
	in := []string{"1.3.3", "1.3.3.1", "1.3.3.99.3", "1.3.3.3.5.7"}
	out := []string{"1.3.4.3", "1.3.5", "1.5", "1.3"}
	for _, s := range in {
		if Compare(MustParse(s), lim) >= 0 {
			t.Errorf("%s should be below SubtreeLimit(%s) = %s", s, d, lim)
		}
	}
	for _, s := range out {
		id := MustParse(s)
		if Compare(id, d) > 0 && Compare(id, lim) < 0 {
			t.Errorf("%s should not be inside subtree bound of %s", s, d)
		}
	}
}

func TestReservedChildren(t *testing.T) {
	el := MustParse("1.3.3")
	ar := el.AttributeRoot()
	if ar.String() != "1.3.3.1" {
		t.Errorf("AttributeRoot = %s", ar)
	}
	if !ar.IsReservedChild() {
		t.Error("attribute root must be a reserved child")
	}
	if el.IsReservedChild() {
		t.Error("1.3.3 is a regular node")
	}
	txt := MustParse("1.3.3.5")
	if sn := txt.StringNode(); sn.String() != "1.3.3.5.1" || !sn.IsReservedChild() {
		t.Errorf("StringNode = %s", txt.StringNode())
	}
}

func TestCommonAncestor(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"1.3.3.5", "1.3.3.7", "1.3.3"},
		{"1.3.3", "1.3.3.7", "1.3.3"},
		{"1.3", "1.5", "1"},
		{"1.3.4.3", "1.3.4.5", "1.3"}, // shared prefix ends on even division: back off
		{"1.3.4.3", "1.3.5", "1.3"},
		{"1", "1.5.3", "1"},
	}
	for _, c := range cases {
		got := CommonAncestor(MustParse(c.a), MustParse(c.b))
		if got.String() != c.want {
			t.Errorf("CommonAncestor(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
	if !CommonAncestor(Null, Root()).IsNull() {
		t.Error("CommonAncestor with null input should be null")
	}
}

func TestAllocatorPaperExample(t *testing.T) {
	// Paper, Section 3.2: inserting before d2=1.3.5 when d1=1.3.3 exists
	// yields a label of the form 1.3.4.x (even overflow then a fresh odd).
	a := Allocator{Dist: 2}
	parent := MustParse("1.3")
	d1, d2 := MustParse("1.3.3"), MustParse("1.3.5")
	d3, err := a.Between(parent, d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if d3.String() != "1.3.4.3" {
		t.Errorf("Between(1.3.3, 1.3.5) = %s, want 1.3.4.3", d3)
	}
	if Compare(d1, d3) != -1 || Compare(d3, d2) != -1 {
		t.Error("d3 must sort strictly between d1 and d2")
	}
	if d3.Level() != 3 {
		t.Errorf("d3 level = %d, want 3", d3.Level())
	}
	if d3.Parent().String() != "1.3" {
		t.Errorf("d3 parent = %s", d3.Parent())
	}
}

func TestAllocatorRepeatedInsertions(t *testing.T) {
	// Keep inserting between the first two children; labels must stay
	// ordered, at the right level, with the right parent, forever.
	a := Allocator{Dist: 2}
	parent := MustParse("1.3")
	left, right := MustParse("1.3.3"), MustParse("1.3.5")
	prev := left
	for i := 0; i < 200; i++ {
		mid, err := a.Between(parent, prev, right)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if Compare(prev, mid) != -1 || Compare(mid, right) != -1 {
			t.Fatalf("iteration %d: %s not strictly between %s and %s", i, mid, prev, right)
		}
		if mid.Level() != 3 {
			t.Fatalf("iteration %d: level %d", i, mid.Level())
		}
		if !mid.Parent().Equal(parent) {
			t.Fatalf("iteration %d: parent %s", i, mid.Parent())
		}
		if mid.IsReservedChild() {
			t.Fatalf("iteration %d: produced reserved label %s", i, mid)
		}
		prev = mid
	}
}

func TestAllocatorInsertBeforeFirst(t *testing.T) {
	a := Allocator{Dist: 2}
	parent := MustParse("1.3")
	first := MustParse("1.3.3")
	for i := 0; i < 100; i++ {
		id, err := a.Between(parent, Null, first)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if Compare(id, first) != -1 {
			t.Fatalf("iteration %d: %s not before %s", i, id, first)
		}
		// Must stay above the reserved attribute-root label parent.1.
		if Compare(id, parent.AttributeRoot()) != 1 {
			t.Fatalf("iteration %d: %s collides with reserved space", i, id)
		}
		if id.Level() != 3 || !id.Parent().Equal(parent) || id.IsReservedChild() {
			t.Fatalf("iteration %d: bad label %s (level %d, parent %s)", i, id, id.Level(), id.Parent())
		}
		first = id
	}
}

func TestAllocatorAppend(t *testing.T) {
	a := Allocator{Dist: 16}
	parent := MustParse("1.5")
	prev := a.FirstChild(parent)
	if !prev.ChildOf(parent) {
		t.Fatalf("FirstChild %s not a child of %s", prev, parent)
	}
	for i := 0; i < 100; i++ {
		next := a.NextSibling(prev)
		if Compare(prev, next) != -1 {
			t.Fatalf("NextSibling(%s) = %s not after", prev, next)
		}
		if !next.ChildOf(parent) {
			t.Fatalf("NextSibling %s not a child of %s", next, parent)
		}
		if len(next.Divisions()) != len(parent.Divisions())+1 {
			t.Fatalf("appended sibling %s should not grow an overflow chain", next)
		}
		prev = next
	}
}

func TestAllocatorBetweenOverflowChains(t *testing.T) {
	// Exercise overflow-vs-overflow fences: random insert positions among an
	// evolving sibling list.
	a := Allocator{Dist: 2}
	parent := MustParse("1.3")
	sibs := []ID{MustParse("1.3.3"), MustParse("1.3.5"), MustParse("1.3.7")}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		pos := rng.Intn(len(sibs) + 1)
		var left, right ID
		if pos > 0 {
			left = sibs[pos-1]
		}
		if pos < len(sibs) {
			right = sibs[pos]
		}
		id, err := a.Between(parent, left, right)
		if err != nil {
			t.Fatalf("iteration %d (pos %d, left %v, right %v): %v", i, pos, left, right, err)
		}
		if !left.IsNull() && Compare(left, id) != -1 {
			t.Fatalf("iteration %d: %s not after left %s", i, id, left)
		}
		if !right.IsNull() && Compare(id, right) != -1 {
			t.Fatalf("iteration %d: %s not before right %s", i, id, right)
		}
		if !id.ChildOf(parent) {
			t.Fatalf("iteration %d: %s not child of %s", i, id, parent)
		}
		if id.IsReservedChild() {
			t.Fatalf("iteration %d: reserved label %s", i, id)
		}
		sibs = append(sibs[:pos], append([]ID{id}, sibs[pos:]...)...)
	}
	if !sort.SliceIsSorted(sibs, func(i, j int) bool { return Compare(sibs[i], sibs[j]) < 0 }) {
		t.Error("sibling list lost document order")
	}
}

func TestAllocatorBetweenErrors(t *testing.T) {
	a := Allocator{Dist: 2}
	parent := MustParse("1.3")
	if _, err := a.Between(parent, MustParse("1.3.5"), MustParse("1.3.3")); err == nil {
		t.Error("reversed fences should fail")
	}
	if _, err := a.Between(parent, MustParse("1.5.3"), MustParse("1.3.3")); err == nil {
		t.Error("non-children should fail")
	}
	if _, err := a.Between(parent, Null, MustParse("1.5.3")); err == nil {
		t.Error("right fence under wrong parent should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []string{"1", "1.3", "1.3.4.3", "1.127.128.16511.16512.2113663", "1.4294967295"}
	for _, s := range cases {
		id := MustParse(s)
		b := id.Encode()
		if len(b) != id.EncodedLen() {
			t.Errorf("EncodedLen(%s) = %d, len = %d", s, id.EncodedLen(), len(b))
		}
		back, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%s): %v", s, err)
		}
		if !back.Equal(id) {
			t.Errorf("round trip %s -> %s", id, back)
		}
	}
	if id, err := Decode(nil); err != nil || !id.IsNull() {
		t.Error("Decode(nil) should yield Null")
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{{0x80}, {0xC0, 0x01}, {0xF0, 1, 2}, {0xF1}, {3}} // 3 = bare "3": first division must be 1
	for _, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode(%v): expected error", b)
		}
	}
}

func TestEncodingPreservesOrder(t *testing.T) {
	ids := []string{
		"1", "1.3", "1.3.3", "1.3.4.3", "1.3.5", "1.127", "1.129",
		"1.16511", "1.16513", "1.2113663", "1.2113665", "1.4294967295",
		"1.128.3", "1.16512.3", "1.2113664.3",
		"1.3.3.1", "1.3.3.1.3",
	}
	for i := range ids {
		for j := range ids {
			a, b := MustParse(ids[i]), MustParse(ids[j])
			want := Compare(a, b)
			got := bytes.Compare(a.Encode(), b.Encode())
			if got != want {
				t.Errorf("byte order of (%s, %s) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// randomID builds a structurally valid random SPLID for property tests.
func randomID(rng *rand.Rand) ID {
	depth := 1 + rng.Intn(6)
	divs := []uint32{1}
	for l := 1; l < depth; l++ {
		// Optional overflow chain.
		for rng.Intn(4) == 0 {
			divs = append(divs, uint32(2+2*rng.Intn(1<<uint(2+rng.Intn(14)))))
		}
		divs = append(divs, uint32(3+2*rng.Intn(1<<uint(2+rng.Intn(14)))))
	}
	return ID{divs: divs}
}

func TestPropertyEncodingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randomID(rng), randomID(rng)
		return Compare(a, b) == bytes.Compare(a.Encode(), b.Encode())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		id := randomID(rng)
		back, err := Decode(id.Encode())
		if err != nil {
			return false
		}
		s, err2 := Parse(id.String())
		return err2 == nil && back.Equal(id) && s.Equal(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAncestorPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		id := randomID(rng)
		lvl := id.Level()
		prev := id
		for p := id.Parent(); !p.IsNull(); p = p.Parent() {
			lvl--
			if p.Level() != lvl {
				return false
			}
			if !p.IsAncestorOf(id) || !p.IsAncestorOf(prev) && !p.Equal(prev.Parent()) {
				return false
			}
			if !bytes.HasPrefix(id.Encode(), p.Encode()) {
				return false
			}
			prev = p
		}
		return lvl == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubtreeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		a, b := randomID(rng), randomID(rng)
		lim := a.SubtreeLimit()
		inSubtree := a.IsSelfOrAncestorOf(b)
		inRange := Compare(b, a) >= 0 && Compare(b, lim) < 0
		return inSubtree == inRange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBetween(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Allocator{Dist: 2}
	f := func() bool {
		parent := randomID(rng)
		alloc := Allocator{Dist: uint32(2 + 2*rng.Intn(8))}
		left := alloc.FirstChild(parent)
		right := alloc.NextSibling(left)
		for i := 0; i < 20; i++ {
			mid, err := a.Between(parent, left, right)
			if err != nil {
				return false
			}
			if Compare(left, mid) != -1 || Compare(mid, right) != -1 {
				return false
			}
			if !mid.ChildOf(parent) || mid.IsReservedChild() {
				return false
			}
			if rng.Intn(2) == 0 {
				left = mid
			} else {
				right = mid
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDivisionsCopy(t *testing.T) {
	id := MustParse("1.3.5")
	d := id.Divisions()
	d[1] = 99
	if id.String() != "1.3.5" {
		t.Error("Divisions must return a copy")
	}
}

func BenchmarkEncode(b *testing.B) {
	id := MustParse("1.5.3.3.11.3.1")
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = id.AppendEncode(buf[:0])
	}
}

func BenchmarkCompare(b *testing.B) {
	x := MustParse("1.5.3.3.11.3.1")
	y := MustParse("1.5.3.3.11.5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compare(x, y)
	}
}

func BenchmarkAncestors(b *testing.B) {
	id := MustParse("1.5.3.3.11.3.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id.Ancestors()
	}
}
