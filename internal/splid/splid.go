// Package splid implements stable path labeling identifiers (SPLIDs), the
// Dewey-order node labeling scheme used by XTC and described in Section 3.2
// of "Contest of XML Lock Protocols" (VLDB 2006) and in Härder et al.,
// "Node Labeling Schemes for Dynamic XML Documents Reconsidered" (DKE 2006).
//
// A SPLID is a sequence of numeric divisions such as 1.3.4.3. Odd division
// values indicate a level transition while even values act as an overflow
// mechanism for nodes inserted between existing siblings, so labels never
// have to be reassigned. The label of every ancestor of a node is a prefix
// of the node's own label, which lets a lock manager derive the complete
// ancestor path of any node without touching the stored document — the
// property the paper calls "of paramount importance" for XML lock protocols.
//
// Division value 1 at levels greater than one is reserved: it labels the
// virtual attribute-root and string-node children of the taDOM storage model
// (Section 3.1), which never participate in sibling ordering.
package splid

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ID is a stable path labeling identifier. The zero value is the null ID,
// which is not a valid node label; use Root for the document root. IDs are
// immutable: all methods return new values and never alias the receiver's
// backing array into results that could be modified.
type ID struct {
	divs []uint32
}

// Null is the zero ID. It labels no node and compares before every valid ID.
var Null = ID{}

// Root returns the label of the document root node, 1.
func Root() ID { return ID{divs: []uint32{1}} }

// New builds an ID from explicit division values. It validates the same
// structural rules Parse enforces.
func New(divs ...uint32) (ID, error) {
	id := ID{divs: append([]uint32(nil), divs...)}
	if err := id.validate(); err != nil {
		return Null, err
	}
	return id, nil
}

// MustNew is New for statically known division sequences; it panics on
// invalid input and is intended for tests and package literals.
func MustNew(divs ...uint32) ID {
	id, err := New(divs...)
	if err != nil {
		panic(err)
	}
	return id
}

// errInvalid wraps all structural validation failures.
var errInvalid = errors.New("splid: invalid label")

func (id ID) validate() error {
	if len(id.divs) == 0 {
		return fmt.Errorf("%w: empty division sequence", errInvalid)
	}
	if id.divs[0] != 1 {
		return fmt.Errorf("%w: first division must be 1 (the root), got %d", errInvalid, id.divs[0])
	}
	for i, d := range id.divs {
		if d == 0 {
			return fmt.Errorf("%w: division %d is zero", errInvalid, i)
		}
	}
	// A label must not end in an even (overflow) division: overflow values
	// only connect a parent prefix to the final odd division of a level.
	if last := id.divs[len(id.divs)-1]; last%2 == 0 {
		return fmt.Errorf("%w: trailing overflow division %d", errInvalid, last)
	}
	return nil
}

// Parse converts the dotted textual form "1.3.4.3" into an ID.
func Parse(s string) (ID, error) {
	if s == "" {
		return Null, fmt.Errorf("%w: empty string", errInvalid)
	}
	parts := strings.Split(s, ".")
	divs := make([]uint32, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return Null, fmt.Errorf("%w: division %q: %v", errInvalid, p, err)
		}
		divs[i] = uint32(v)
	}
	id := ID{divs: divs}
	if err := id.validate(); err != nil {
		return Null, err
	}
	return id, nil
}

// MustParse is Parse that panics on error, for tests and literals.
func MustParse(s string) ID {
	id, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return id
}

// String renders the dotted textual form. The null ID renders as "<null>".
func (id ID) String() string {
	if id.IsNull() {
		return "<null>"
	}
	var b strings.Builder
	for i, d := range id.divs {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(d), 10))
	}
	return b.String()
}

// IsNull reports whether id is the null ID.
func (id ID) IsNull() bool { return len(id.divs) == 0 }

// IsRoot reports whether id labels the document root.
func (id ID) IsRoot() bool { return len(id.divs) == 1 && id.divs[0] == 1 }

// Divisions returns a copy of the raw division values.
func (id ID) Divisions() []uint32 { return append([]uint32(nil), id.divs...) }

// Level returns the tree level of the labeled node: the number of odd
// divisions in the label. The root is level 1; even overflow divisions do
// not open a level. The null ID has level 0.
func (id ID) Level() int {
	n := 0
	for _, d := range id.divs {
		if d%2 == 1 {
			n++
		}
	}
	return n
}

// Parent returns the label of the parent node, derived purely from the label
// itself: the trailing odd division and any even overflow divisions in front
// of it are removed. The parent of the root (and of the null ID) is Null.
func (id ID) Parent() ID {
	if len(id.divs) <= 1 {
		return Null
	}
	i := len(id.divs) - 1 // divs[i] is odd by construction
	i--                   // skip the level-opening odd division
	for i >= 0 && id.divs[i]%2 == 0 {
		i--
	}
	if i < 0 {
		return Null
	}
	return ID{divs: id.divs[:i+1]}
}

// Ancestors returns all proper ancestors of id ordered from the root down to
// the direct parent. It returns nil for the root and the null ID. No
// document access is needed — this is the SPLID property lock protocols
// depend on for placing intention locks on the whole ancestor path.
func (id ID) Ancestors() []ID {
	level := id.Level()
	if level <= 1 {
		return nil
	}
	out := make([]ID, 0, level-1)
	for p := id.Parent(); !p.IsNull(); p = p.Parent() {
		out = append(out, p)
	}
	// Built parent-first; reverse to root-first order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// AncestorAtLevel returns the ancestor-or-self of id at the given level
// (root = level 1). It returns Null if the requested level exceeds the
// node's own level or is < 1.
func (id ID) AncestorAtLevel(level int) ID {
	if level < 1 || level > id.Level() {
		return Null
	}
	seen := 0
	for i, d := range id.divs {
		if d%2 == 1 {
			seen++
			if seen == level {
				// Consume trailing overflow divisions belonging to this
				// level? No: overflow divisions precede the odd division of
				// the *next* inserted sibling chain, so the ancestor label
				// ends exactly at this odd division.
				return ID{divs: id.divs[:i+1]}
			}
		}
	}
	return Null // unreachable for valid labels
}

// Compare orders two IDs in document order: a node precedes its descendants,
// and siblings order by their division values. It returns -1, 0, or +1.
// The null ID sorts before everything.
func Compare(a, b ID) int {
	n := len(a.divs)
	if len(b.divs) < n {
		n = len(b.divs)
	}
	for i := 0; i < n; i++ {
		switch {
		case a.divs[i] < b.divs[i]:
			return -1
		case a.divs[i] > b.divs[i]:
			return 1
		}
	}
	switch {
	case len(a.divs) < len(b.divs):
		return -1
	case len(a.divs) > len(b.divs):
		return 1
	}
	return 0
}

// Equal reports whether a and b are the same label.
func (id ID) Equal(other ID) bool { return Compare(id, other) == 0 }

// IsAncestorOf reports whether id is a proper ancestor of other, i.e. id's
// division sequence is a strict prefix of other's and opens fewer levels.
func (id ID) IsAncestorOf(other ID) bool {
	if id.IsNull() || other.IsNull() || len(id.divs) >= len(other.divs) {
		return false
	}
	for i, d := range id.divs {
		if other.divs[i] != d {
			return false
		}
	}
	return true
}

// IsSelfOrAncestorOf reports whether id equals other or is its ancestor.
func (id ID) IsSelfOrAncestorOf(other ID) bool {
	return id.Equal(other) || id.IsAncestorOf(other)
}

// ChildOf reports whether id is a direct child of parent.
func (id ID) ChildOf(parent ID) bool {
	return parent.IsAncestorOf(id) && id.Level() == parent.Level()+1
}

// SubtreeLimit returns an exclusive upper bound for the subtree rooted at
// id: every self-or-descendant label compares strictly below the limit and
// every label outside the subtree that follows id in document order compares
// at or above it. The bound is obtained by bumping the final division by
// one; it is not itself a valid node label and must only be used for range
// scans.
func (id ID) SubtreeLimit() ID {
	if id.IsNull() {
		return Null
	}
	divs := append([]uint32(nil), id.divs...)
	divs[len(divs)-1]++
	return ID{divs: divs}
}

// AttributeRoot returns the label of the virtual attribute-root child of an
// element (Section 3.1 of the paper): the element label extended by the
// reserved division 1.
func (id ID) AttributeRoot() ID {
	return id.appendDiv(1)
}

// StringNode returns the label of the virtual string-node child of a text or
// attribute node: the node label extended by the reserved division 1.
func (id ID) StringNode() ID {
	return id.appendDiv(1)
}

// IsReservedChild reports whether the final level of id was opened with the
// reserved division value 1 at a level greater than one — i.e. the label
// belongs to an attribute root or string node rather than a regular child.
func (id ID) IsReservedChild() bool {
	if len(id.divs) < 2 {
		return false
	}
	return id.divs[len(id.divs)-1] == 1
}

func (id ID) appendDiv(d uint32) ID {
	divs := make([]uint32, len(id.divs)+1)
	copy(divs, id.divs)
	divs[len(id.divs)] = d
	return ID{divs: divs}
}

// Child returns the label of a child of id whose level is opened by the
// given odd division value. It panics if the division is even or zero,
// because such labels would violate the labeling invariants.
func (id ID) Child(div uint32) ID {
	if div == 0 || div%2 == 0 {
		panic(fmt.Sprintf("splid: Child division must be odd, got %d", div))
	}
	return id.appendDiv(div)
}

// CommonAncestor returns the deepest label that is a self-or-ancestor of
// both a and b, or Null if they share none (only possible with null inputs,
// since all valid labels descend from the root).
func CommonAncestor(a, b ID) ID {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	n := len(a.divs)
	if len(b.divs) < n {
		n = len(b.divs)
	}
	i := 0
	for i < n && a.divs[i] == b.divs[i] {
		i++
	}
	if i == 0 {
		return Null
	}
	// Trim back to a valid label: must not end on an even overflow division.
	for i > 0 && a.divs[i-1]%2 == 0 {
		i--
	}
	if i == 0 {
		return Null
	}
	return ID{divs: a.divs[:i]}
}
