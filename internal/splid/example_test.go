package splid_test

import (
	"fmt"

	"repro/internal/splid"
)

// ExampleID_Ancestors shows the property XML lock protocols depend on: the
// complete ancestor path of a node derives from its label alone, without
// accessing the document.
func ExampleID_Ancestors() {
	id := splid.MustParse("1.5.3.3.11.3")
	for _, anc := range id.Ancestors() {
		fmt.Println(anc)
	}
	// Output:
	// 1
	// 1.5
	// 1.5.3
	// 1.5.3.3
	// 1.5.3.3.11
}

// ExampleAllocator_Between shows the overflow mechanism of Section 3.2: a
// node inserted between 1.3.3 and 1.3.5 receives a label with an even
// overflow division — no existing label changes.
func ExampleAllocator_Between() {
	a := splid.Allocator{Dist: 2}
	parent := splid.MustParse("1.3")
	left := splid.MustParse("1.3.3")
	right := splid.MustParse("1.3.5")
	mid, err := a.Between(parent, left, right)
	if err != nil {
		panic(err)
	}
	fmt.Println(mid)
	fmt.Println("level:", mid.Level(), " parent:", mid.Parent())
	// Output:
	// 1.3.4.3
	// level: 3  parent: 1.3
}

// ExampleCompare shows document-order comparison: a node precedes its
// descendants, which precede its following siblings.
func ExampleCompare() {
	book := splid.MustParse("1.5.3.3")
	title := splid.MustParse("1.5.3.3.3")
	nextBook := splid.MustParse("1.5.3.5")
	fmt.Println(splid.Compare(book, title))
	fmt.Println(splid.Compare(title, nextBook))
	fmt.Println(book.IsAncestorOf(title))
	// Output:
	// -1
	// -1
	// true
}
