package figures

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tamix"
)

// quick makes every figure affordable in unit tests: one depth, tiny doc,
// sub-second runs.
func quick() Options {
	return Options{DocScale: 0.01, TimeScale: 0.001, Depths: []int{3}}
}

func TestFigure7Shape(t *testing.T) {
	tp, dl, err := Figure7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tp) != 4 || len(dl) != 4 {
		t.Fatalf("series = %d/%d, want 4 isolation levels", len(tp), len(dl))
	}
	labels := map[string]bool{}
	for _, s := range tp {
		labels[s.Label] = true
		if len(s.Points) != 1 {
			t.Errorf("%s: %d points", s.Label, len(s.Points))
		}
		if s.Points[0].Throughput <= 0 {
			t.Errorf("%s: zero throughput", s.Label)
		}
	}
	for _, want := range []string{"NONE", "UNCOMMITTED", "COMMITTED", "REPEATABLE"} {
		if !labels[want] {
			t.Errorf("missing series %s", want)
		}
	}
}

func TestFigure8Rows(t *testing.T) {
	rows, err := Figure8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total.Committed == 0 {
			t.Errorf("%s committed nothing", r.Protocol)
		}
		if len(r.PerType) != len(tamix.TxTypes) {
			t.Errorf("%s: per-type entries = %d", r.Protocol, len(r.PerType))
		}
	}
	var buf bytes.Buffer
	RenderFigure8(&buf, rows)
	if !strings.Contains(buf.String(), "Node2PL") {
		t.Error("render missing protocol")
	}
}

func TestSweepAndFigures9And10(t *testing.T) {
	o := quick()
	sweep, err := Cluster1Sweep([]string{"taDOM3+", "URIX"}, o)
	if err != nil {
		t.Fatal(err)
	}
	tp, dl := Figure9(sweep, o)
	if len(tp) != 2 || len(dl) != 2 {
		t.Fatalf("figure 9 series = %d", len(tp))
	}
	panels := Figure10(sweep, o)
	if len(panels) != 4 {
		t.Fatalf("figure 10 panels = %d", len(panels))
	}
	for typ, series := range panels {
		if len(series) != 2 {
			t.Errorf("%v: %d series", typ, len(series))
		}
	}
	var buf bytes.Buffer
	RenderSeries(&buf, "Figure 9", "throughput", tp)
	RenderSeries(&buf, "Figure 9", "deadlocks", dl)
	out := buf.String()
	if !strings.Contains(out, "URIX") || !strings.Contains(out, "taDOM3+") {
		t.Errorf("render output incomplete:\n%s", out)
	}
	buf.Reset()
	WriteSeriesCSV(&buf, tp)
	if !strings.HasPrefix(buf.String(), "label,depth,") {
		t.Error("CSV header missing")
	}
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != 3 {
		t.Errorf("CSV rows:\n%s", buf.String())
	}
}

func TestFigure11AllProtocols(t *testing.T) {
	rows, err := Figure11(Options{DocScale: 0.01, TimeScale: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 (11 paper contestants + snapshot)", len(rows))
	}
	byProto := map[string]Figure11Row{}
	for _, r := range rows {
		byProto[r.Protocol] = r
		if r.AvgTimeMs <= 0 {
			t.Errorf("%s: non-positive time", r.Protocol)
		}
	}
	// The group gap: every pure *-2PL protocol issues far more lock
	// requests than every intention-lock protocol.
	for _, heavy := range []string{"Node2PL", "NO2PL", "OO2PL"} {
		for _, light := range []string{"Node2PLa", "URIX", "taDOM3+"} {
			if byProto[heavy].LockRequests <= 2*byProto[light].LockRequests {
				t.Errorf("%s (%d requests) should far exceed %s (%d requests)",
					heavy, byProto[heavy].LockRequests, light, byProto[light].LockRequests)
			}
		}
	}
	var buf bytes.Buffer
	RenderFigure11(&buf, rows)
	if !strings.Contains(buf.String(), "taDOM3+") {
		t.Error("render missing protocol")
	}
}

func TestOptionsFill(t *testing.T) {
	o := Options{}.fill()
	if o.DocScale == 0 || o.TimeScale == 0 || len(o.Depths) != 8 {
		t.Errorf("fill: %+v", o)
	}
}
