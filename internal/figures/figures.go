// Package figures regenerates every figure of the paper's evaluation
// (Section 5): the parameter sweeps, the series extraction, and plain-text/
// CSV rendering. Both cmd/tamix and the repository's benchmark harness are
// thin wrappers around this package.
//
// Scaling: runs are shrunk by two independent factors. DocScale shrinks the
// bib document (1.0 = the paper's 2000 books), TimeScale shrinks every
// run-control interval (1.0 = 5-minute runs with 2500/100 ms think times).
// Throughput numbers are normalized back to the 5-minute interval by
// tamix.Result.Throughput, so series remain comparable across scales; the
// claims under test are the *relative* shapes (who wins, by what factor,
// where the knees lie), as absolute values depend on the host.
package figures

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/tamix"
	"repro/internal/tx"
)

// Options control a figure regeneration run.
type Options struct {
	// DocScale shrinks the bib document (default 0.02).
	DocScale float64
	// TimeScale shrinks the run-control intervals (default 0.002).
	TimeScale float64
	// Depths are the lock depths swept (default 0..7, the paper's range).
	Depths []int
	// Runs averages each configuration over this many repetitions with
	// distinct seeds (the paper used 4 runs per isolation level and lock
	// depth). Default 1.
	Runs int
	// Seed offsets the workload randomness.
	Seed int64
	// LockTimeout overrides the scaled default lock-wait timeout when
	// positive (plumbed into every tamix.Config of the sweep).
	LockTimeout time.Duration
}

func (o Options) fill() Options {
	if o.DocScale == 0 {
		o.DocScale = 0.02
	}
	if o.TimeScale == 0 {
		o.TimeScale = 0.002
	}
	if len(o.Depths) == 0 {
		o.Depths = []int{0, 1, 2, 3, 4, 5, 6, 7}
	}
	if o.Runs <= 0 {
		o.Runs = 1
	}
	return o
}

// Point is one measurement of a series.
type Point struct {
	// Depth is the lock depth of the run.
	Depth int
	// Throughput is committed transactions normalized to the paper's
	// 5-minute interval.
	Throughput float64
	// Deadlocks counts detected cycles (including those surfacing as lock
	// timeouts, which the paper's lock manager also aborts).
	Deadlocks uint64
	// Committed and Aborted are raw transaction counts.
	Committed, Aborted int
}

// Series is one labeled curve of a figure.
type Series struct {
	// Label names the curve (protocol or isolation level).
	Label string
	// Points are ordered by Depth.
	Points []Point
}

// runCluster1 executes one CLUSTER1 configuration, averaging over o.Runs
// repetitions with distinct seeds.
func runCluster1(proto string, iso tx.Level, depth int, o Options) (*tamix.Result, error) {
	var agg *tamix.Result
	for run := 0; run < o.Runs; run++ {
		cfg := tamix.Cluster1Config(proto, iso, depth, o.DocScale, o.TimeScale)
		cfg.Seed += o.Seed + int64(run)*104729
		if o.LockTimeout > 0 {
			cfg.LockTimeout = o.LockTimeout
		}
		r, err := tamix.Run(cfg)
		if err != nil {
			return nil, err
		}
		if agg == nil {
			agg = r
			continue
		}
		agg.Elapsed += r.Elapsed
		agg.Committed += r.Committed
		agg.Aborted += r.Aborted
		agg.Restarts += r.Restarts
		agg.RestartWait += r.RestartWait
		agg.Dropped += r.Dropped
		agg.FaultsInjected += r.FaultsInjected
		agg.TornWrites += r.TornWrites
		agg.BufferRetries += r.BufferRetries
		agg.BufferRetryFailures += r.BufferRetryFailures
		agg.Deadlocks += r.Deadlocks
		agg.ConversionDeadlocks += r.ConversionDeadlocks
		agg.SubtreeDeadlocks += r.SubtreeDeadlocks
		agg.Timeouts += r.Timeouts
		agg.LockRequests += r.LockRequests
		agg.LockCacheHits += r.LockCacheHits
		agg.LockWaits += r.LockWaits
		for i, w := range r.PartitionWaits {
			if i < len(agg.PartitionWaits) {
				agg.PartitionWaits[i] += w
			}
		}
		if agg.Metrics != nil && r.Metrics != nil {
			agg.Metrics.Merge(r.Metrics)
		}
		for typ, st := range r.PerType {
			dst := agg.PerType[typ]
			dst.Committed += st.Committed
			dst.Aborted += st.Aborted
			dst.Restarts += st.Restarts
			dst.RestartWait += st.RestartWait
			dst.Dropped += st.Dropped
			dst.TotalDur += st.TotalDur
			// MinDur uses -1 as "unset": take any set value over unset,
			// including a legitimate zero-duration minimum.
			if st.MinDur >= 0 && (dst.MinDur < 0 || st.MinDur < dst.MinDur) {
				dst.MinDur = st.MinDur
			}
			if st.MaxDur > dst.MaxDur {
				dst.MaxDur = st.MaxDur
			}
		}
	}
	return agg, nil
}

func point(depth int, r *tamix.Result) Point {
	return Point{
		Depth:      depth,
		Throughput: r.Throughput(),
		Deadlocks:  r.Deadlocks + r.Timeouts,
		Committed:  r.Committed,
		Aborted:    r.Aborted,
	}
}

// Note: aggregated results sum deadlocks over o.Runs repetitions while
// Throughput is normalized by the summed elapsed time, so both stay
// comparable across different Runs settings per unit of run time.

// Figure7 reproduces Figure 7: CLUSTER1 under taDOM3+, throughput (left)
// and deadlocks (right) against lock depth for the four isolation levels.
func Figure7(o Options) (throughput, deadlocks []Series, err error) {
	o = o.fill()
	levels := []tx.Level{tx.LevelNone, tx.LevelUncommitted, tx.LevelCommitted, tx.LevelRepeatable}
	for _, iso := range levels {
		tp := Series{Label: strings.ToUpper(iso.String())}
		dl := Series{Label: strings.ToUpper(iso.String())}
		for _, depth := range o.Depths {
			r, err := runCluster1("taDOM3+", iso, depth, o)
			if err != nil {
				return nil, nil, err
			}
			p := point(depth, r)
			tp.Points = append(tp.Points, p)
			dl.Points = append(dl.Points, p)
		}
		throughput = append(throughput, tp)
		deadlocks = append(deadlocks, dl)
	}
	return throughput, deadlocks, nil
}

// Figure8Row is one bar group of Figure 8: a *-2PL protocol's committed and
// aborted counts, total and per transaction type.
type Figure8Row struct {
	Protocol  string
	Total     Point
	PerType   map[tamix.TxType]Point
	Elapsed   string
	Deadlocks uint64
}

// Figure8 reproduces Figure 8: CLUSTER1 under Node2PL, NO2PL, and OO2PL
// (throughput left, deadlocks right, split by transaction type). The pure
// *-2PL protocols have no lock depth; the depth parameter is ignored.
func Figure8(o Options) ([]Figure8Row, error) {
	o = o.fill()
	var rows []Figure8Row
	for _, proto := range []string{"Node2PL", "NO2PL", "OO2PL"} {
		r, err := runCluster1(proto, tx.LevelRepeatable, -1, o)
		if err != nil {
			return nil, err
		}
		row := Figure8Row{
			Protocol:  proto,
			Total:     point(-1, r),
			PerType:   make(map[tamix.TxType]Point),
			Elapsed:   r.Elapsed.String(),
			Deadlocks: r.Deadlocks + r.Timeouts,
		}
		for _, typ := range tamix.TxTypes {
			st := r.PerType[typ]
			row.PerType[typ] = Point{
				Throughput: float64(st.Committed) * 300 / r.Elapsed.Seconds(),
				Committed:  st.Committed,
				Aborted:    st.Aborted,
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Cluster1Sweep runs CLUSTER1 at isolation repeatable for every given
// protocol across the depth range, returning proto -> depth -> result. It
// is the shared data source of Figures 9 and 10.
func Cluster1Sweep(protocols []string, o Options) (map[string]map[int]*tamix.Result, error) {
	o = o.fill()
	out := make(map[string]map[int]*tamix.Result, len(protocols))
	for _, proto := range protocols {
		out[proto] = make(map[int]*tamix.Result, len(o.Depths))
		for _, depth := range o.Depths {
			r, err := runCluster1(proto, tx.LevelRepeatable, depth, o)
			if err != nil {
				return nil, err
			}
			out[proto][depth] = r
		}
	}
	return out, nil
}

// DepthProtocols are the protocols that honor the lock-depth parameter —
// the contestants of Figures 9 and 10 (the paper's eight plus the snapshot
// contestant, whose writers are taDOM3+ and so depth-aware).
func DepthProtocols() []string {
	return []string{"Node2PLa", "IRX", "IRIX", "URIX", "taDOM2", "taDOM2+", "taDOM3", "taDOM3+", "snapshot"}
}

// Figure9 extracts Figure 9 from a sweep: total throughput (left) and
// deadlocks (right) per protocol against lock depth.
func Figure9(sweep map[string]map[int]*tamix.Result, o Options) (throughput, deadlocks []Series) {
	o = o.fill()
	for _, proto := range DepthProtocols() {
		byDepth, ok := sweep[proto]
		if !ok {
			continue
		}
		tp := Series{Label: proto}
		for _, depth := range o.Depths {
			if r, ok := byDepth[depth]; ok {
				tp.Points = append(tp.Points, point(depth, r))
			}
		}
		throughput = append(throughput, tp)
		deadlocks = append(deadlocks, tp)
	}
	return throughput, deadlocks
}

// Figure10 extracts Figure 10 from the same sweep: throughput per
// transaction type (panels a-d: TAqueryBook, TAchapter, TAlendAndReturn,
// TArenameTopic) per protocol against lock depth.
func Figure10(sweep map[string]map[int]*tamix.Result, o Options) map[tamix.TxType][]Series {
	o = o.fill()
	panels := []tamix.TxType{tamix.TAqueryBook, tamix.TAchapter, tamix.TAlendAndReturn, tamix.TArenameTopic}
	out := make(map[tamix.TxType][]Series, len(panels))
	for _, typ := range panels {
		for _, proto := range DepthProtocols() {
			byDepth, ok := sweep[proto]
			if !ok {
				continue
			}
			s := Series{Label: proto}
			for _, depth := range o.Depths {
				r, ok := byDepth[depth]
				if !ok {
					continue
				}
				st := r.PerType[typ]
				s.Points = append(s.Points, Point{
					Depth:      depth,
					Throughput: float64(st.Committed) * 300 / r.Elapsed.Seconds(),
					Committed:  st.Committed,
					Aborted:    st.Aborted,
				})
			}
			out[typ] = append(out[typ], s)
		}
	}
	return out
}

// Figure11Row is one bar of Figure 11.
type Figure11Row struct {
	Protocol string
	// AvgTimeMs is the mean TAdelBook execution time in milliseconds.
	AvgTimeMs float64
	// LockRequests is the total locking work behind the time.
	LockRequests uint64
}

// Figure11 reproduces Figure 11: single-user TAdelBook execution time under
// all 11 protocols (CLUSTER2).
func Figure11(o Options, runs int) ([]Figure11Row, error) {
	o = o.fill()
	if runs <= 0 {
		runs = 3
	}
	protos := []string{
		"Node2PL", "NO2PL", "OO2PL",
		"IRX", "IRIX", "URIX", "Node2PLa",
		"taDOM2", "taDOM2+", "taDOM3", "taDOM3+",
		"snapshot",
	}
	var rows []Figure11Row
	for _, proto := range protos {
		r, err := tamix.RunCluster2(proto, o.DocScale, runs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure11Row{
			Protocol:     proto,
			AvgTimeMs:    float64(r.AvgTime.Microseconds()) / 1000,
			LockRequests: r.LockRequests,
		})
	}
	return rows, nil
}

// --- rendering ---------------------------------------------------------------

// RenderSeries prints labeled depth series as an aligned text table.
func RenderSeries(w io.Writer, title, metric string, series []Series) {
	fmt.Fprintf(w, "%s — %s\n", title, metric)
	if len(series) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	fmt.Fprintf(w, "%-14s", "depth")
	for _, p := range series[0].Points {
		fmt.Fprintf(w, "%10d", p.Depth)
	}
	fmt.Fprintln(w)
	for _, s := range series {
		fmt.Fprintf(w, "%-14s", s.Label)
		for _, p := range s.Points {
			switch metric {
			case "deadlocks":
				fmt.Fprintf(w, "%10d", p.Deadlocks)
			case "aborted":
				fmt.Fprintf(w, "%10d", p.Aborted)
			default:
				fmt.Fprintf(w, "%10.1f", p.Throughput)
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteSeriesCSV emits depth series as CSV: label,depth,throughput,
// deadlocks,committed,aborted.
func WriteSeriesCSV(w io.Writer, series []Series) {
	fmt.Fprintln(w, "label,depth,throughput,deadlocks,committed,aborted")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(w, "%s,%d,%.2f,%d,%d,%d\n",
				s.Label, p.Depth, p.Throughput, p.Deadlocks, p.Committed, p.Aborted)
		}
	}
}

// RenderFigure8 prints the Figure 8 bar groups.
func RenderFigure8(w io.Writer, rows []Figure8Row) {
	fmt.Fprintln(w, "Figure 8 — CLUSTER1 under the *-2PL group")
	fmt.Fprintf(w, "%-10s %12s %10s %10s", "protocol", "throughput", "committed", "aborted")
	for _, typ := range tamix.TxTypes {
		if typ == tamix.TAdelBook {
			continue
		}
		fmt.Fprintf(w, " %16s", typ)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.1f %10d %10d", r.Protocol, r.Total.Throughput, r.Total.Committed, r.Total.Aborted)
		for _, typ := range tamix.TxTypes {
			if typ == tamix.TAdelBook {
				continue
			}
			p := r.PerType[typ]
			fmt.Fprintf(w, " %9d/%6d", p.Committed, p.Aborted)
		}
		fmt.Fprintln(w)
	}
}

// RenderFigure11 prints the Figure 11 bars.
func RenderFigure11(w io.Writer, rows []Figure11Row) {
	fmt.Fprintln(w, "Figure 11 — CLUSTER2: TAdelBook execution time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10.2f ms  (%d lock requests)\n", r.Protocol, r.AvgTimeMs, r.LockRequests)
	}
}
