// Package xmlmodel defines the taDOM document model of XTC (Section 3.1 of
// "Contest of XML Lock Protocols"): the node kinds stored on disk, the
// vocabulary that replaces element and attribute names with small integer
// surrogates, and the byte-level record format used by the document store.
//
// The taDOM model extends plain DOM in two lock-manager-friendly ways:
// attributes hang off a separate virtual attribute-root node instead of
// their element, and the character data of text and attribute nodes lives in
// a dedicated string node. Both virtual node kinds let transactions lock
// structure and content independently; user-visible DOM semantics are
// unchanged.
package xmlmodel

import (
	"encoding/binary"
	"fmt"

	"repro/internal/splid"
)

// Kind enumerates the taDOM node kinds.
type Kind uint8

const (
	// KindElement is a regular XML element node.
	KindElement Kind = iota + 1
	// KindAttributeRoot is the virtual node connecting an element to its
	// attributes; its SPLID is element.1.
	KindAttributeRoot
	// KindAttribute is an attribute node (name only; its value is a string
	// node child).
	KindAttribute
	// KindText is a text node (its character data is a string node child).
	KindText
	// KindString is a string node holding the character data of a text or
	// attribute node; its SPLID is parent.1.
	KindString
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindElement:
		return "element"
	case KindAttributeRoot:
		return "attrRoot"
	case KindAttribute:
		return "attribute"
	case KindText:
		return "text"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined node kind.
func (k Kind) Valid() bool { return k >= KindElement && k <= KindString }

// NoName is the name surrogate of node kinds that carry no name
// (attribute roots, text nodes, string nodes).
const NoName Sur = 0

// Node is one taDOM tree node. It is a value type: the document store
// returns copies, so callers may retain Nodes across operations without
// aliasing store memory (Value is the exception and must be copied before
// mutation).
type Node struct {
	// ID is the node's SPLID.
	ID splid.ID
	// Kind is the node kind.
	Kind Kind
	// Name is the vocabulary surrogate of the element or attribute name;
	// NoName for unnamed kinds.
	Name Sur
	// Value is the character data of a string node; nil for other kinds.
	Value []byte
}

// HasName reports whether the node kind carries a name.
func (n Node) HasName() bool { return n.Kind == KindElement || n.Kind == KindAttribute }

// record format: kind(1) | name-surrogate(2, big-endian) | value bytes.

// recordHeaderLen is the fixed prefix of an encoded node record.
const recordHeaderLen = 3

// EncodeRecord serializes the non-key part of a node (everything except the
// SPLID, which is the B-tree key) into the document container format.
func EncodeRecord(n Node) []byte {
	buf := make([]byte, recordHeaderLen+len(n.Value))
	buf[0] = byte(n.Kind)
	binary.BigEndian.PutUint16(buf[1:3], uint16(n.Name))
	copy(buf[recordHeaderLen:], n.Value)
	return buf
}

// DecodeRecord parses a node record produced by EncodeRecord. The SPLID key
// is supplied by the caller. The returned Node's Value aliases b.
func DecodeRecord(id splid.ID, b []byte) (Node, error) {
	if len(b) < recordHeaderLen {
		return Node{}, fmt.Errorf("xmlmodel: record too short (%d bytes)", len(b))
	}
	k := Kind(b[0])
	if !k.Valid() {
		return Node{}, fmt.Errorf("xmlmodel: invalid node kind %d", b[0])
	}
	n := Node{
		ID:   id,
		Kind: k,
		Name: Sur(binary.BigEndian.Uint16(b[1:3])),
	}
	if len(b) > recordHeaderLen {
		n.Value = b[recordHeaderLen:]
	}
	return n, nil
}
