package xmlmodel

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Sur is a vocabulary surrogate: a small integer standing in for an element
// or attribute name. The paper stores surrogates (<= 2 bytes) instead of
// names inside tree node records.
type Sur uint16

// Vocabulary maps element and attribute names to surrogates and back. It is
// safe for concurrent use; surrogates are assigned densely starting at 1
// (0 is NoName) and are never reassigned, so they may be persisted.
type Vocabulary struct {
	mu    sync.RWMutex
	bySur []string       // bySur[s-1] is the name of surrogate s
	byStr map[string]Sur //
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{byStr: make(map[string]Sur)}
}

// Intern returns the surrogate for name, assigning a fresh one on first use.
// Interning the empty string returns NoName.
func (v *Vocabulary) Intern(name string) (Sur, error) {
	if name == "" {
		return NoName, nil
	}
	v.mu.RLock()
	s, ok := v.byStr[name]
	v.mu.RUnlock()
	if ok {
		return s, nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if s, ok := v.byStr[name]; ok {
		return s, nil
	}
	if len(v.bySur) >= int(^Sur(0)) {
		return NoName, fmt.Errorf("xmlmodel: vocabulary full (%d names)", len(v.bySur))
	}
	v.bySur = append(v.bySur, name)
	s = Sur(len(v.bySur))
	v.byStr[name] = s
	return s, nil
}

// Lookup returns the surrogate for name without assigning one; ok is false
// if the name has never been interned.
func (v *Vocabulary) Lookup(name string) (Sur, bool) {
	if name == "" {
		return NoName, true
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	s, ok := v.byStr[name]
	return s, ok
}

// Name returns the name behind a surrogate; the empty string for NoName or
// unknown surrogates.
func (v *Vocabulary) Name(s Sur) string {
	if s == NoName {
		return ""
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	if int(s) > len(v.bySur) {
		return ""
	}
	return v.bySur[s-1]
}

// Len returns the number of interned names.
func (v *Vocabulary) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.bySur)
}

// Names returns all interned names sorted by surrogate.
func (v *Vocabulary) Names() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]string(nil), v.bySur...)
}

// Encode serializes the vocabulary: uint16 count, then length-prefixed
// names in surrogate order.
func (v *Vocabulary) Encode() []byte {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var size int
	for _, n := range v.bySur {
		size += 2 + len(n)
	}
	buf := make([]byte, 2, 2+size)
	binary.BigEndian.PutUint16(buf, uint16(len(v.bySur)))
	for _, n := range v.bySur {
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(n)))
		buf = append(buf, l[:]...)
		buf = append(buf, n...)
	}
	return buf
}

// DecodeVocabulary parses the output of Encode.
func DecodeVocabulary(b []byte) (*Vocabulary, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("xmlmodel: vocabulary blob too short")
	}
	count := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	v := NewVocabulary()
	for i := 0; i < count; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("xmlmodel: truncated vocabulary entry %d", i)
		}
		l := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < l {
			return nil, fmt.Errorf("xmlmodel: truncated vocabulary name %d", i)
		}
		name := string(b[:l])
		b = b[l:]
		if name == "" {
			return nil, fmt.Errorf("xmlmodel: empty vocabulary name %d", i)
		}
		if _, err := v.Intern(name); err != nil {
			return nil, err
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("xmlmodel: %d trailing bytes after vocabulary", len(b))
	}
	return v, nil
}

// SortedSurrogates returns the surrogates of all names in lexicographic name
// order — the element-index name directory order (Figure 6b).
func (v *Vocabulary) SortedSurrogates() []Sur {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]Sur, len(v.bySur))
	for i := range out {
		out[i] = Sur(i + 1)
	}
	sort.Slice(out, func(i, j int) bool { return v.bySur[out[i]-1] < v.bySur[out[j]-1] })
	return out
}
