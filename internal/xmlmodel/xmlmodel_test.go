package xmlmodel

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/splid"
)

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindElement:       "element",
		KindAttributeRoot: "attrRoot",
		KindAttribute:     "attribute",
		KindText:          "text",
		KindString:        "string",
		Kind(99):          "Kind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k, want)
		}
	}
	if Kind(0).Valid() || Kind(6).Valid() {
		t.Error("invalid kinds reported valid")
	}
	if !KindElement.Valid() || !KindString.Valid() {
		t.Error("valid kinds reported invalid")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	id := splid.MustParse("1.3.5")
	cases := []Node{
		{ID: id, Kind: KindElement, Name: 7},
		{ID: id, Kind: KindAttributeRoot},
		{ID: id, Kind: KindAttribute, Name: 300},
		{ID: id, Kind: KindText},
		{ID: id, Kind: KindString, Value: []byte("hello world")},
		{ID: id, Kind: KindString, Value: []byte{}},
	}
	for _, n := range cases {
		rec := EncodeRecord(n)
		back, err := DecodeRecord(id, rec)
		if err != nil {
			t.Fatalf("decode %v: %v", n, err)
		}
		if back.Kind != n.Kind || back.Name != n.Name || !bytes.Equal(back.Value, n.Value) {
			t.Errorf("round trip %+v -> %+v", n, back)
		}
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	id := splid.Root()
	if _, err := DecodeRecord(id, []byte{1, 0}); err == nil {
		t.Error("short record should fail")
	}
	if _, err := DecodeRecord(id, []byte{0, 0, 0}); err == nil {
		t.Error("kind 0 should fail")
	}
	if _, err := DecodeRecord(id, []byte{9, 0, 0}); err == nil {
		t.Error("kind 9 should fail")
	}
}

func TestRecordPropertyRoundTrip(t *testing.T) {
	id := splid.Root()
	f := func(kindSel uint8, name uint16, value []byte) bool {
		k := Kind(kindSel%5) + KindElement
		n := Node{ID: id, Kind: k, Name: Sur(name), Value: value}
		back, err := DecodeRecord(id, EncodeRecord(n))
		return err == nil && back.Kind == k && back.Name == Sur(name) &&
			bytes.Equal(back.Value, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVocabularyBasics(t *testing.T) {
	v := NewVocabulary()
	s1, err := v.Intern("book")
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := v.Intern("author")
	s1b, _ := v.Intern("book")
	if s1 != s1b {
		t.Error("re-interning must return the same surrogate")
	}
	if s1 == s2 {
		t.Error("distinct names must get distinct surrogates")
	}
	if s1 == NoName || s2 == NoName {
		t.Error("real names must not map to NoName")
	}
	if v.Name(s1) != "book" || v.Name(s2) != "author" {
		t.Error("Name() mismatch")
	}
	if v.Name(NoName) != "" || v.Name(999) != "" {
		t.Error("unknown surrogates must yield empty names")
	}
	if s, ok := v.Lookup("book"); !ok || s != s1 {
		t.Error("Lookup(book) failed")
	}
	if _, ok := v.Lookup("missing"); ok {
		t.Error("Lookup(missing) should fail")
	}
	if s, err := v.Intern(""); err != nil || s != NoName {
		t.Error("empty name must intern to NoName")
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d", v.Len())
	}
}

func TestVocabularyEncodeDecode(t *testing.T) {
	v := NewVocabulary()
	names := []string{"bib", "book", "author", "title", "Ümlaut-日本語"}
	for _, n := range names {
		if _, err := v.Intern(n); err != nil {
			t.Fatal(err)
		}
	}
	back, err := DecodeVocabulary(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		s1, _ := v.Lookup(n)
		s2, ok := back.Lookup(n)
		if !ok || s1 != s2 {
			t.Errorf("name %q: surrogate %d vs %d (ok=%v)", n, s1, s2, ok)
		}
	}
	if back.Len() != v.Len() {
		t.Errorf("Len %d vs %d", back.Len(), v.Len())
	}
}

func TestVocabularyDecodeErrors(t *testing.T) {
	bad := [][]byte{
		{},
		{0, 2, 0, 1}, // count 2 but one truncated entry
		{0, 1, 0, 5, 'a'},
		{0, 1, 0, 0}, // empty name
		{0, 0, 1},    // trailing bytes
	}
	for _, b := range bad {
		if _, err := DecodeVocabulary(b); err == nil {
			t.Errorf("DecodeVocabulary(%v): expected error", b)
		}
	}
}

func TestVocabularyConcurrent(t *testing.T) {
	v := NewVocabulary()
	var wg sync.WaitGroup
	const workers = 8
	results := make([][]Sur, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]Sur, 100)
			for i := range out {
				s, err := v.Intern(fmt.Sprintf("name-%d", i))
				if err != nil {
					t.Error(err)
					return
				}
				out[i] = s
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d got surrogate %d for name-%d, worker 0 got %d",
					w, results[w][i], i, results[0][i])
			}
		}
	}
	if v.Len() != 100 {
		t.Errorf("Len = %d, want 100", v.Len())
	}
}

func TestSortedSurrogates(t *testing.T) {
	v := NewVocabulary()
	for _, n := range []string{"zebra", "alpha", "mango"} {
		v.Intern(n)
	}
	surs := v.SortedSurrogates()
	var got []string
	for _, s := range surs {
		got = append(got, v.Name(s))
	}
	want := []string{"alpha", "mango", "zebra"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedSurrogates order %v, want %v", got, want)
		}
	}
}
