package wire

import (
	"bytes"
	"testing"

	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// seedFrames builds the fuzz seed corpus: one well-formed frame per message
// family, so the fuzzer starts from every decoder path. `go test` replays
// these as regular unit cases even when not fuzzing.
func seedFrames() [][]byte {
	id := splid.MustParse("1.3.5")
	var seeds [][]byte
	add := func(m Msg) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, AppendMsg(nil, m)); err != nil {
			panic(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	add(Msg{Op: OpOpenSession, Req: 1,
		Body: AppendOpenSession(nil, OpenSession{Protocol: "taDOM3+", Isolation: 3, Depth: 5})})
	add(Msg{Op: OpBegin, Session: 1, Req: 2})
	add(Msg{Op: OpJumpToID, Session: 1, Req: 3, DeadlineMS: 100, Body: AppendString(nil, "b0-0")})
	add(Msg{Op: OpReadFragment, Session: 1, Req: 4, Body: append(AppendID(nil, id), 1)})
	add(Msg{Op: OpSetAttribute, Session: 1, Req: 5,
		Body: AppendBytes(AppendString(AppendID(nil, id), "person"), []byte("p1"))})
	add(Msg{Op: OpInsertElementBefore, Session: 1, Req: 6,
		Body: AppendString(AppendID(AppendID(nil, id), id.Child(3)), "lend")})
	add(Msg{Op: OpCommit, Session: 1, Req: 7})
	add(Msg{Op: OpStats, Req: 8, Body: AppendString(nil, "URIX")})
	add(Msg{Op: OpCatalog, Session: 1, Req: 9})
	// A response-shaped frame: status byte + node list.
	add(Msg{Op: OpGetChildren, Session: 1, Req: 10,
		Body: AppendNodes([]byte{byte(StatusOK)}, []xmlmodel.Node{
			{ID: id, Kind: xmlmodel.KindElement, Name: 2},
			{ID: id.Child(7), Kind: xmlmodel.KindText, Value: []byte("v")},
		})})
	// A stats response.
	add(Msg{Op: OpStats, Req: 11,
		Body: AppendStats([]byte{byte(StatusOK)}, Stats{LockRequests: 99, Deadlocks: 1})})
	return seeds
}

// FuzzFrameDecode drives the full inbound pipeline — frame, message header,
// and every body decoder — over arbitrary bytes. Decoders must return errors,
// never panic or over-allocate, on hostile input.
func FuzzFrameDecode(f *testing.F) {
	for _, s := range seedFrames() {
		f.Add(s)
	}
	// Raw mutations of interest: hostile lengths and counts.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 1, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		m, err := DecodeMsg(payload)
		if err != nil {
			return
		}
		// Exercise every body decoder; none may panic regardless of op.
		r := NewReader(m.Body)
		switch m.Op {
		case OpOpenSession:
			r.OpenSession()
		case OpStats:
			_ = r.String()
			NewReader(m.Body).Stats()
		case OpCatalog:
			NewReader(m.Body).Catalog()
		default:
			r.ID()
			r.Node()
			r.Nodes()
			r.StringList()
			_ = r.String()
			r.Uvarint()
			r.Varint()
		}
	})
}

// TestSeedCorpusDecodes pins that every seed frame survives the round trip
// the fuzzer starts from.
func TestSeedCorpusDecodes(t *testing.T) {
	for i, s := range seedFrames() {
		payload, err := ReadFrame(bytes.NewReader(s))
		if err != nil {
			t.Fatalf("seed %d: ReadFrame: %v", i, err)
		}
		if _, err := DecodeMsg(payload); err != nil {
			t.Fatalf("seed %d: DecodeMsg: %v", i, err)
		}
	}
}
