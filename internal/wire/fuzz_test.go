package wire

import (
	"bytes"
	"testing"

	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// seedFrames builds the fuzz seed corpus: one well-formed frame per message
// family, so the fuzzer starts from every decoder path. `go test` replays
// these as regular unit cases even when not fuzzing.
func seedFrames() [][]byte {
	id := splid.MustParse("1.3.5")
	var seeds [][]byte
	add := func(m Msg) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, AppendMsg(nil, m)); err != nil {
			panic(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	add(Msg{Op: OpOpenSession, Req: 1,
		Body: AppendOpenSession(nil, OpenSession{Protocol: "taDOM3+", Isolation: 3, Depth: 5})})
	add(Msg{Op: OpBegin, Session: 1, Req: 2})
	add(Msg{Op: OpJumpToID, Session: 1, Req: 3, DeadlineMS: 100, Body: AppendString(nil, "b0-0")})
	add(Msg{Op: OpReadFragment, Session: 1, Req: 4, Body: append(AppendID(nil, id), 1)})
	add(Msg{Op: OpSetAttribute, Session: 1, Req: 5,
		Body: AppendBytes(AppendString(AppendID(nil, id), "person"), []byte("p1"))})
	add(Msg{Op: OpInsertElementBefore, Session: 1, Req: 6,
		Body: AppendString(AppendID(AppendID(nil, id), id.Child(3)), "lend")})
	add(Msg{Op: OpCommit, Session: 1, Req: 7})
	add(Msg{Op: OpStats, Req: 8, Body: AppendString(nil, "URIX")})
	add(Msg{Op: OpCatalog, Session: 1, Req: 9})
	// A response-shaped frame: status byte + node list.
	add(Msg{Op: OpGetChildren, Session: 1, Req: 10,
		Body: AppendNodes([]byte{byte(StatusOK)}, []xmlmodel.Node{
			{ID: id, Kind: xmlmodel.KindElement, Name: 2},
			{ID: id.Child(7), Kind: xmlmodel.KindText, Value: []byte("v")},
		})})
	// A stats response.
	add(Msg{Op: OpStats, Req: 11,
		Body: AppendStats([]byte{byte(StatusOK)}, Stats{LockRequests: 99, Deadlocks: 1})})
	// Connection-lifecycle opcodes: keep-alive ticks (bare and session-
	// scoped) and a session resume carrying the reopen parameters.
	add(Msg{Op: OpHeartbeat, Req: 12})
	add(Msg{Op: OpHeartbeat, Session: 1, Req: 13, Body: []byte("hb")})
	add(Msg{Op: OpResumeSession, Req: 14,
		Body: AppendResumeSession(nil, ResumeSession{Old: 7,
			Open: OpenSession{Protocol: "taDOM2+", Isolation: 3, Depth: 4}})})
	return seeds
}

// hostileFrames builds framing-layer attack seeds: truncated frames,
// oversized length headers, and checksum damage — the inputs a resilient
// ReadFrame must reject without hanging, panicking, or over-allocating.
func hostileFrames() [][]byte {
	whole := seedFrames()
	var seeds [][]byte
	// Truncations of a valid frame at every interesting boundary: inside the
	// length prefix, inside the payload, and inside the CRC trailer.
	f := whole[0]
	for _, n := range []int{0, 1, 3, 4, 5, len(f) / 2, len(f) - 5, len(f) - 1} {
		if n < len(f) {
			seeds = append(seeds, f[:n:n])
		}
	}
	// Oversized length headers: just past MaxFrame, and the all-ones length a
	// corrupt stream is most likely to present.
	seeds = append(seeds,
		[]byte{0x01, 0x00, 0x00, 0x01}, // MaxFrame+1 big-endian
		[]byte{0xFF, 0xFF, 0xFF, 0xFF},
		[]byte{0x7F, 0xFF, 0xFF, 0xFF, 0x00})
	// A length that promises more payload than follows (blocks a naive
	// reader; ReadFrame must surface ErrUnexpectedEOF).
	seeds = append(seeds, []byte{0x00, 0x00, 0x00, 0x20, 0x01, 0x02})
	// A valid frame with its CRC trailer flipped.
	bad := append([]byte(nil), whole[1]...)
	bad[len(bad)-1] ^= 0xFF
	seeds = append(seeds, bad)
	return seeds
}

// FuzzReadFrame beats on the framing layer alone: arbitrary byte streams,
// seeded with truncated frames and hostile length headers. ReadFrame must
// return an error or a payload — never panic, never allocate beyond
// MaxFrame.
func FuzzReadFrame(f *testing.F) {
	for _, s := range seedFrames() {
		f.Add(s)
	}
	for _, s := range hostileFrames() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxFrame {
			t.Fatalf("ReadFrame returned %d bytes, over MaxFrame", len(payload))
		}
	})
}

// FuzzDecodeMsg fuzzes the message layer below framing: raw payloads fed
// straight to DecodeMsg and every body decoder, including the heartbeat and
// session-resume shapes.
func FuzzDecodeMsg(f *testing.F) {
	for _, m := range []Msg{
		{Op: OpHeartbeat, Session: 3, Req: 1},
		{Op: OpResumeSession, Req: 2, Body: AppendResumeSession(nil,
			ResumeSession{Old: 9, Open: OpenSession{Protocol: "URIX", Isolation: 2, Depth: -1}})},
		{Op: OpOpenSession, Req: 3, Body: AppendOpenSession(nil,
			OpenSession{Protocol: "taDOM3+", Isolation: 3, Depth: 5})},
		{Op: OpPing, Req: 4, Body: []byte("ping")},
	} {
		f.Add(AppendMsg(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(OpResumeSession)}) // truncated header
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := DecodeMsg(payload)
		if err != nil {
			return
		}
		switch m.Op {
		case OpResumeSession:
			NewReader(m.Body).ResumeSession()
		case OpOpenSession:
			NewReader(m.Body).OpenSession()
		case OpHeartbeat, OpPing:
			// Bodies are opaque echoes; nothing to decode.
		default:
			r := NewReader(m.Body)
			r.ID()
			r.Node()
			r.Nodes()
		}
	})
}

// FuzzFrameDecode drives the full inbound pipeline — frame, message header,
// and every body decoder — over arbitrary bytes. Decoders must return errors,
// never panic or over-allocate, on hostile input.
func FuzzFrameDecode(f *testing.F) {
	for _, s := range seedFrames() {
		f.Add(s)
	}
	// Raw mutations of interest: hostile lengths and counts.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 1, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		m, err := DecodeMsg(payload)
		if err != nil {
			return
		}
		// Exercise every body decoder; none may panic regardless of op.
		r := NewReader(m.Body)
		switch m.Op {
		case OpOpenSession:
			r.OpenSession()
		case OpStats:
			_ = r.String()
			NewReader(m.Body).Stats()
		case OpCatalog:
			NewReader(m.Body).Catalog()
		default:
			r.ID()
			r.Node()
			r.Nodes()
			r.StringList()
			_ = r.String()
			r.Uvarint()
			r.Varint()
		}
	})
}

// TestSeedCorpusDecodes pins that every seed frame survives the round trip
// the fuzzer starts from.
func TestSeedCorpusDecodes(t *testing.T) {
	for i, s := range seedFrames() {
		payload, err := ReadFrame(bytes.NewReader(s))
		if err != nil {
			t.Fatalf("seed %d: ReadFrame: %v", i, err)
		}
		if _, err := DecodeMsg(payload); err != nil {
			t.Fatalf("seed %d: DecodeMsg: %v", i, err)
		}
	}
}
