// Package wire defines the xtcd client/server protocol: length-prefixed,
// CRC-framed binary messages multiplexing many sessions over one TCP
// connection (the dispatcher pattern of RPC servers, specialized to the
// engine's meta-lock operation set).
//
// Framing (all integers big-endian):
//
//	u32 length | payload (length bytes) | u32 CRC-32C(payload)
//
// Message payload:
//
//	u8 opcode | u32 session | u32 request | u32 deadline-ms | body
//
// The session field multiplexes independent sessions over one connection;
// the request field matches responses to requests (a client may pipeline);
// deadline-ms propagates the client's remaining per-request budget so the
// server can bound lock waits via context (0 = no deadline). Responses echo
// opcode, session, and request; their body starts with a status byte
// (StatusOK followed by the result encoding, anything else followed by an
// error string).
//
// Body values use a compact self-describing vocabulary: unsigned varints,
// length-prefixed byte strings, encoded SPLIDs, and node records. The codec
// is deliberately free of reflection — every message shape is a hand-written
// append/read pair in codec.go, and the fuzz target in fuzz_test.go beats on
// the decoders with the frame corpus.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFrame bounds a frame payload (catalog responses for the full-scale bib
// document are ~100 KiB; 16 MiB leaves room for large fragments without
// letting a corrupt length field allocate the moon).
const MaxFrame = 16 << 20

// headerLen is the fixed message header: opcode, session, request, deadline.
const headerLen = 1 + 4 + 4 + 4

// ErrFrameTooLarge is returned for length prefixes beyond MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrCRC is returned when a frame's checksum does not match its payload.
var ErrCRC = errors.New("wire: frame checksum mismatch")

// ErrShort is returned when a message or body is truncated.
var ErrShort = errors.New("wire: truncated message")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op is a protocol opcode.
type Op uint8

// Session-control and admin opcodes.
const (
	// OpOpenSession creates a session: body = protocol name, isolation u8,
	// depth zigzag varint. The response body carries the assigned session id
	// (u32 varint); subsequent requests address it via the header field.
	OpOpenSession Op = 1
	// OpCloseSession ends a session (aborting any active transaction).
	OpCloseSession Op = 2
	// OpBegin starts a transaction on the session (one at a time). Response
	// body: transaction id uvarint.
	OpBegin Op = 3
	// OpCommit commits the session's active transaction.
	OpCommit Op = 4
	// OpAbort aborts the session's active transaction.
	OpAbort Op = 5
	// OpCatalog returns the engine's jump-target catalog for the session's
	// protocol: three string lists (books, topics, persons).
	OpCatalog Op = 6
	// OpLookupName resolves a vocabulary name to its surrogate: body =
	// string; response = u8 found, u16-as-uvarint surrogate.
	OpLookupName Op = 7
	// OpStats returns the engine counters for a protocol (body = protocol
	// name; session 0 allowed): see AppendStats.
	OpStats Op = 8
	// OpAudit runs the engine's integrity audits (document Verify + lock
	// LeakCheck) for a protocol (body = protocol name; session 0 allowed).
	OpAudit Op = 9
	// OpPing is a connectivity check; the body is echoed.
	OpPing Op = 10
	// OpHeartbeat is the keep-alive tick. The server answers StatusOK with an
	// empty body and refreshes the connection's read-idle allowance; when the
	// header's session field is non-zero and names a session on this
	// connection, that session's idle clock is refreshed too. A client that
	// stops heartbeating (and sends no other traffic) is closed after it
	// misses its interval allowance.
	OpHeartbeat Op = 11
	// OpResumeSession re-establishes a session after a reconnect: body = old
	// session id (uvarint) followed by the OpenSession fields. The server
	// evicts the stale session if it still exists (canceling its transaction
	// and releasing its locks) and admits a fresh session with the same
	// parameters; the response body carries the new session id like
	// OpOpenSession. The old transaction is gone — resumption restores the
	// session, not in-flight work.
	OpResumeSession Op = 12
)

// Node-operation opcodes (session must hold an active transaction). Bodies
// are listed next to each op; responses carry the node/list encodings of
// codec.go.
const (
	OpGetNode                 Op = 16 // id
	OpJumpToID                Op = 17 // string
	OpFirstChild              Op = 18 // id
	OpLastChild               Op = 19 // id
	OpNextSibling             Op = 20 // id
	OpPrevSibling             Op = 21 // id
	OpParent                  Op = 22 // id
	OpGetChildren             Op = 23 // id
	OpGetAttributes           Op = 24 // id
	OpValue                   Op = 25 // id
	OpAttributeValue          Op = 26 // id, string
	OpReadFragment            Op = 27 // id, u8 jump
	OpReadFragmentForUpdate   Op = 28 // id, u8 jump
	OpUpdateLastChildFragment Op = 29 // id
	OpSetValue                Op = 30 // id, bytes
	OpRename                  Op = 31 // id, string
	OpAppendElement           Op = 32 // id, string
	OpAppendText              Op = 33 // id, bytes
	OpInsertElementBefore     Op = 34 // parent id, before id, string
	OpSetAttribute            Op = 35 // id, string, bytes
	OpDeleteSubtree           Op = 36 // id
)

// String implements fmt.Stringer (metrics labels and error text).
func (o Op) String() string {
	switch o {
	case OpOpenSession:
		return "OpenSession"
	case OpCloseSession:
		return "CloseSession"
	case OpBegin:
		return "Begin"
	case OpCommit:
		return "Commit"
	case OpAbort:
		return "Abort"
	case OpCatalog:
		return "Catalog"
	case OpLookupName:
		return "LookupName"
	case OpStats:
		return "Stats"
	case OpAudit:
		return "Audit"
	case OpPing:
		return "Ping"
	case OpHeartbeat:
		return "Heartbeat"
	case OpResumeSession:
		return "ResumeSession"
	case OpGetNode:
		return "GetNode"
	case OpJumpToID:
		return "JumpToID"
	case OpFirstChild:
		return "FirstChild"
	case OpLastChild:
		return "LastChild"
	case OpNextSibling:
		return "NextSibling"
	case OpPrevSibling:
		return "PrevSibling"
	case OpParent:
		return "Parent"
	case OpGetChildren:
		return "GetChildren"
	case OpGetAttributes:
		return "GetAttributes"
	case OpValue:
		return "Value"
	case OpAttributeValue:
		return "AttributeValue"
	case OpReadFragment:
		return "ReadFragment"
	case OpReadFragmentForUpdate:
		return "ReadFragmentForUpdate"
	case OpUpdateLastChildFragment:
		return "UpdateLastChildFragment"
	case OpSetValue:
		return "SetValue"
	case OpRename:
		return "Rename"
	case OpAppendElement:
		return "AppendElement"
	case OpAppendText:
		return "AppendText"
	case OpInsertElementBefore:
		return "InsertElementBefore"
	case OpSetAttribute:
		return "SetAttribute"
	case OpDeleteSubtree:
		return "DeleteSubtree"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Status is the first byte of every response body.
type Status uint8

const (
	// StatusOK precedes a successful result.
	StatusOK Status = 0
	// StatusDeadlock maps lock.ErrDeadlockVictim (abort-and-retry).
	StatusDeadlock Status = 1
	// StatusTimeout maps lock.ErrLockTimeout (abort-and-retry).
	StatusTimeout Status = 2
	// StatusNotFound maps storage.ErrNodeNotFound.
	StatusNotFound Status = 3
	// StatusTxDone maps tx.ErrTxnDone / operating without a transaction.
	StatusTxDone Status = 4
	// StatusBusy is an admission-control rejection: session limit reached or
	// the session's work queue is full. The client may back off and retry.
	StatusBusy Status = 5
	// StatusCanceled maps context cancellation (disconnect or deadline).
	StatusCanceled Status = 6
	// StatusShutdown means the server is draining and rejects new work.
	StatusShutdown Status = 7
	// StatusBadRequest marks malformed or out-of-protocol requests.
	StatusBadRequest Status = 8
	// StatusNoSession means the named session no longer exists on this
	// connection — reaped for idleness, evicted by a resume, or torn down by
	// a drain. The client should resume (OpResumeSession) or reopen.
	StatusNoSession Status = 9
	// StatusErr is any other server-side failure (message in the body).
	StatusErr Status = 255
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDeadlock:
		return "deadlock"
	case StatusTimeout:
		return "timeout"
	case StatusNotFound:
		return "not-found"
	case StatusTxDone:
		return "tx-done"
	case StatusBusy:
		return "busy"
	case StatusCanceled:
		return "canceled"
	case StatusShutdown:
		return "shutdown"
	case StatusBadRequest:
		return "bad-request"
	case StatusNoSession:
		return "no-session"
	case StatusErr:
		return "error"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Msg is one decoded protocol message (request or response).
type Msg struct {
	Op Op
	// Session addresses one session on the connection (0 = connection scope:
	// OpOpenSession, OpStats, OpAudit, OpPing).
	Session uint32
	// Req matches responses to requests; the client picks it.
	Req uint32
	// DeadlineMS is the client's remaining budget for this request in
	// milliseconds (0 = none). Responses leave it 0.
	DeadlineMS uint32
	// Body is the op-specific payload (for responses: status byte + rest).
	Body []byte
}

// AppendMsg serializes m into dst (header + body), returning the extended
// slice. The result is a frame payload for WriteFrame.
func AppendMsg(dst []byte, m Msg) []byte {
	dst = append(dst, byte(m.Op))
	dst = binary.BigEndian.AppendUint32(dst, m.Session)
	dst = binary.BigEndian.AppendUint32(dst, m.Req)
	dst = binary.BigEndian.AppendUint32(dst, m.DeadlineMS)
	return append(dst, m.Body...)
}

// DecodeMsg parses a frame payload. The returned Msg's Body aliases b.
func DecodeMsg(b []byte) (Msg, error) {
	if len(b) < headerLen {
		return Msg{}, fmt.Errorf("%w: %d-byte message", ErrShort, len(b))
	}
	return Msg{
		Op:         Op(b[0]),
		Session:    binary.BigEndian.Uint32(b[1:5]),
		Req:        binary.BigEndian.Uint32(b[5:9]),
		DeadlineMS: binary.BigEndian.Uint32(b[9:13]),
		Body:       b[headerLen:],
	}, nil
}

// WriteFrame writes one frame: length prefix, payload, CRC-32C trailer. A
// single Write call keeps the frame atomic on the wire without extra locking
// when callers serialize writes themselves.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	buf := make([]byte, 0, 4+len(payload)+4)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame and verifies its checksum, returning the
// payload. io.EOF surfaces unchanged on a clean connection close between
// frames; a close mid-frame is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	payload := buf[:n]
	want := binary.BigEndian.Uint32(buf[n:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: got %08x want %08x", ErrCRC, got, want)
	}
	return payload, nil
}
