package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

// Reader consumes an encoded body left to right. Decoder methods return the
// zero value after the first error; check Err (or use the value-and-error
// variants) once at the end of a fixed shape.
type Reader struct {
	b   []byte
	err error
}

// NewReader wraps a body slice.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unconsumed bytes.
func (r *Reader) Len() int { return len(r.b) }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrShort, what)
	}
}

// Uvarint reads one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Varint reads one zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("byte")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// Bytes reads one length-prefixed byte string (aliasing the input).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail("bytes")
		return nil
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v
}

// String reads one length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// ID reads one encoded SPLID (empty = null ID).
func (r *Reader) ID() splid.ID {
	b := r.Bytes()
	if r.err != nil || len(b) == 0 {
		return splid.ID{}
	}
	id, err := splid.Decode(b)
	if err != nil {
		if r.err == nil {
			r.err = fmt.Errorf("wire: bad SPLID: %w", err)
		}
		return splid.ID{}
	}
	return id
}

// Node reads one node record (see AppendNode).
func (r *Reader) Node() xmlmodel.Node {
	id := r.ID()
	kind := r.Byte()
	name := r.Uvarint()
	value := r.Bytes()
	if r.err != nil {
		return xmlmodel.Node{}
	}
	n := xmlmodel.Node{ID: id, Kind: xmlmodel.Kind(kind), Name: xmlmodel.Sur(name)}
	if len(value) > 0 {
		n.Value = value
	}
	// A null-ID node is the "edge leads nowhere" result and carries kind 0;
	// any other kind must be valid.
	if kind != 0 && !n.Kind.Valid() {
		r.err = fmt.Errorf("wire: invalid node kind %d", kind)
		return xmlmodel.Node{}
	}
	if name > math.MaxUint16 {
		r.err = fmt.Errorf("wire: name surrogate %d out of range", name)
		return xmlmodel.Node{}
	}
	return n
}

// Nodes reads a node list (see AppendNodes).
func (r *Reader) Nodes() []xmlmodel.Node {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	// Each encoded node needs at least 3 bytes (empty id, kind, empty
	// value); reject counts the remaining body cannot possibly hold so a
	// corrupt count cannot pre-allocate gigabytes.
	if n > uint64(len(r.b))/3+1 {
		r.fail("node list")
		return nil
	}
	out := make([]xmlmodel.Node, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.Node())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// StringList reads a string list (see AppendStringList).
func (r *Reader) StringList() []string {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b))+1 {
		r.fail("string list")
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.String())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// --- append side ------------------------------------------------------------

// AppendUvarint appends an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendVarint appends a zigzag-encoded signed varint.
func AppendVarint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendID appends an encoded SPLID (null ID = empty bytes).
func AppendID(dst []byte, id splid.ID) []byte {
	if id.IsNull() {
		return binary.AppendUvarint(dst, 0)
	}
	enc := id.Encode()
	return AppendBytes(dst, enc)
}

// AppendNode appends one node record: id, kind byte, name surrogate, value.
func AppendNode(dst []byte, n xmlmodel.Node) []byte {
	dst = AppendID(dst, n.ID)
	dst = append(dst, byte(n.Kind))
	dst = binary.AppendUvarint(dst, uint64(n.Name))
	return AppendBytes(dst, n.Value)
}

// AppendNodes appends a node list: count, then each node.
func AppendNodes(dst []byte, ns []xmlmodel.Node) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ns)))
	for _, n := range ns {
		dst = AppendNode(dst, n)
	}
	return dst
}

// AppendStringList appends a string list: count, then each string.
func AppendStringList(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = AppendString(dst, s)
	}
	return dst
}

// --- composite shapes -------------------------------------------------------

// Catalog is the jump-target catalog an engine exposes to remote workloads:
// the id-attribute values TaMix transactions address books, topics, and
// persons by.
type Catalog struct {
	Books   []string
	Topics  []string
	Persons []string
}

// AppendCatalog appends a catalog body.
func AppendCatalog(dst []byte, c Catalog) []byte {
	dst = AppendStringList(dst, c.Books)
	dst = AppendStringList(dst, c.Topics)
	return AppendStringList(dst, c.Persons)
}

// Catalog reads a catalog body.
func (r *Reader) Catalog() Catalog {
	return Catalog{
		Books:   r.StringList(),
		Topics:  r.StringList(),
		Persons: r.StringList(),
	}
}

// Stats is the engine counter snapshot served by OpStats: the lock-manager
// activity the contest ranks protocols by, plus transaction outcomes, so a
// remote harness reports the same columns as a local run.
type Stats struct {
	LockRequests        uint64
	LockCacheHits       uint64
	LockWaits           uint64
	Deadlocks           uint64
	ConversionDeadlocks uint64
	SubtreeDeadlocks    uint64
	Timeouts            uint64
	TxBegun             uint64
	TxCommitted         uint64
	TxAborted           uint64
}

// AppendStats appends a stats body (fixed field order).
func AppendStats(dst []byte, s Stats) []byte {
	for _, v := range [...]uint64{
		s.LockRequests, s.LockCacheHits, s.LockWaits,
		s.Deadlocks, s.ConversionDeadlocks, s.SubtreeDeadlocks, s.Timeouts,
		s.TxBegun, s.TxCommitted, s.TxAborted,
	} {
		dst = binary.AppendUvarint(dst, v)
	}
	return dst
}

// Stats reads a stats body.
func (r *Reader) Stats() Stats {
	return Stats{
		LockRequests:        r.Uvarint(),
		LockCacheHits:       r.Uvarint(),
		LockWaits:           r.Uvarint(),
		Deadlocks:           r.Uvarint(),
		ConversionDeadlocks: r.Uvarint(),
		SubtreeDeadlocks:    r.Uvarint(),
		Timeouts:            r.Uvarint(),
		TxBegun:             r.Uvarint(),
		TxCommitted:         r.Uvarint(),
		TxAborted:           r.Uvarint(),
	}
}

// OpenSession is the decoded OpOpenSession request body.
type OpenSession struct {
	// Protocol names the lock protocol the session runs under.
	Protocol string
	// Isolation is the tx.Level as a byte.
	Isolation uint8
	// Depth is the lock-depth parameter (negative = unlimited).
	Depth int
}

// AppendOpenSession appends an OpOpenSession request body.
func AppendOpenSession(dst []byte, o OpenSession) []byte {
	dst = AppendString(dst, o.Protocol)
	dst = append(dst, o.Isolation)
	return binary.AppendVarint(dst, int64(o.Depth))
}

// OpenSession reads an OpOpenSession request body.
func (r *Reader) OpenSession() OpenSession {
	return OpenSession{
		Protocol:  r.String(),
		Isolation: r.Byte(),
		Depth:     int(r.Varint()),
	}
}

// ResumeSession is the decoded OpResumeSession request body: the id of the
// session being replaced plus the parameters to open its successor with.
type ResumeSession struct {
	// Old is the session id the client held before its connection died.
	Old uint32
	// Open carries the protocol/isolation/depth of the replacement session
	// (the client re-sends what it originally opened with).
	Open OpenSession
}

// AppendResumeSession appends an OpResumeSession request body.
func AppendResumeSession(dst []byte, rs ResumeSession) []byte {
	dst = binary.AppendUvarint(dst, uint64(rs.Old))
	return AppendOpenSession(dst, rs.Open)
}

// ResumeSession reads an OpResumeSession request body.
func (r *Reader) ResumeSession() ResumeSession {
	return ResumeSession{
		Old:  uint32(r.Uvarint()),
		Open: r.OpenSession(),
	}
}

// Fate codes carried in the OpResumeSession response: what happened to the
// resumed session's last in-flight transaction. They close the classic
// lost-reply hole — a client whose commit round trip was severed learns from
// the resume whether that commit landed.
const (
	// FateUnknown means the server cannot say (no record of the session, or
	// its teardown did not finish within the resume's wait budget).
	FateUnknown uint8 = 0
	// FateCommitted means the transaction committed durably.
	FateCommitted uint8 = 1
	// FateAborted means the transaction rolled back.
	FateAborted uint8 = 2
)

// ResumeResult is the decoded OpResumeSession response body.
type ResumeResult struct {
	// ID is the replacement session's id.
	ID uint32
	// Fate reports the outcome of the old session's last transaction.
	Fate uint8
	// FateTxn is the transaction id Fate refers to (0 with FateUnknown).
	FateTxn uint64
}

// AppendResumeResult appends an OpResumeSession response body.
func AppendResumeResult(dst []byte, rr ResumeResult) []byte {
	dst = binary.AppendUvarint(dst, uint64(rr.ID))
	dst = append(dst, rr.Fate)
	return binary.AppendUvarint(dst, rr.FateTxn)
}

// ResumeResult reads an OpResumeSession response body.
func (r *Reader) ResumeResult() ResumeResult {
	return ResumeResult{
		ID:      uint32(r.Uvarint()),
		Fate:    r.Byte(),
		FateTxn: r.Uvarint(),
	}
}
