package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/splid"
	"repro/internal/xmlmodel"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		{},
		{0x01},
		bytes.Repeat([]byte{0xAB}, 1000),
		AppendMsg(nil, Msg{Op: OpBegin, Session: 7, Req: 42, DeadlineMS: 1500, Body: []byte("x")}),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %x want %x", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestFrameCRCDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello xtcd")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[6] ^= 0x40 // flip one payload bit
	_, err := ReadFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrCRC) {
		t.Fatalf("expected ErrCRC, got %v", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("partial")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		_, err := ReadFrame(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	// A forged length prefix beyond MaxFrame must be rejected before any
	// allocation of that size.
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00}
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge on write, got %v", err)
	}
}

func TestMsgRoundTrip(t *testing.T) {
	m := Msg{Op: OpReadFragment, Session: 3, Req: 99, DeadlineMS: 250, Body: []byte{1, 2, 3}}
	got, err := DecodeMsg(AppendMsg(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != m.Op || got.Session != m.Session || got.Req != m.Req ||
		got.DeadlineMS != m.DeadlineMS || !bytes.Equal(got.Body, m.Body) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	if _, err := DecodeMsg([]byte{1, 2}); !errors.Is(err, ErrShort) {
		t.Fatalf("expected ErrShort, got %v", err)
	}
}

func TestBodyCodecRoundTrip(t *testing.T) {
	id := splid.MustParse("1.17.5")
	nodes := []xmlmodel.Node{
		{ID: id, Kind: xmlmodel.KindElement, Name: 7},
		{ID: id.Child(3), Kind: xmlmodel.KindText, Value: []byte("body text")},
		{}, // null node (edge leads nowhere)
	}
	var b []byte
	b = AppendUvarint(b, 1234567)
	b = AppendVarint(b, -42)
	b = AppendString(b, "taDOM3+")
	b = AppendID(b, id)
	b = AppendID(b, splid.ID{})
	b = AppendNodes(b, nodes)
	b = AppendCatalog(b, Catalog{Books: []string{"b0-0", "b0-1"}, Topics: []string{"t0"}, Persons: nil})
	b = AppendStats(b, Stats{LockRequests: 10, Deadlocks: 2, TxCommitted: 5})
	b = AppendOpenSession(b, OpenSession{Protocol: "URIX", Isolation: 3, Depth: -1})
	b = AppendResumeSession(b, ResumeSession{Old: 99,
		Open: OpenSession{Protocol: "taDOM2+", Isolation: 2, Depth: 4}})

	r := NewReader(b)
	if v := r.Uvarint(); v != 1234567 {
		t.Fatalf("uvarint: %d", v)
	}
	if v := r.Varint(); v != -42 {
		t.Fatalf("varint: %d", v)
	}
	if s := r.String(); s != "taDOM3+" {
		t.Fatalf("string: %q", s)
	}
	if got := r.ID(); !got.Equal(id) {
		t.Fatalf("id: %v", got)
	}
	if got := r.ID(); !got.IsNull() {
		t.Fatalf("null id: %v", got)
	}
	ns := r.Nodes()
	if len(ns) != len(nodes) {
		t.Fatalf("nodes: %d", len(ns))
	}
	if !ns[0].ID.Equal(id) || ns[0].Kind != xmlmodel.KindElement || ns[0].Name != 7 {
		t.Fatalf("node 0: %+v", ns[0])
	}
	if string(ns[1].Value) != "body text" {
		t.Fatalf("node 1 value: %q", ns[1].Value)
	}
	if !ns[2].ID.IsNull() {
		t.Fatalf("node 2 not null: %+v", ns[2])
	}
	cat := r.Catalog()
	if len(cat.Books) != 2 || cat.Topics[0] != "t0" || len(cat.Persons) != 0 {
		t.Fatalf("catalog: %+v", cat)
	}
	st := r.Stats()
	if st.LockRequests != 10 || st.Deadlocks != 2 || st.TxCommitted != 5 {
		t.Fatalf("stats: %+v", st)
	}
	os := r.OpenSession()
	if os.Protocol != "URIX" || os.Isolation != 3 || os.Depth != -1 {
		t.Fatalf("open session: %+v", os)
	}
	rs := r.ResumeSession()
	if rs.Old != 99 || rs.Open.Protocol != "taDOM2+" || rs.Open.Isolation != 2 || rs.Open.Depth != 4 {
		t.Fatalf("resume session: %+v", rs)
	}
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left", r.Len())
	}
}

func TestReaderRejectsHostileCounts(t *testing.T) {
	// A node-list count far beyond the remaining bytes must fail, not
	// allocate.
	b := AppendUvarint(nil, 1<<40)
	r := NewReader(b)
	if ns := r.Nodes(); ns != nil || r.Err() == nil {
		t.Fatalf("hostile node count accepted: %v, err=%v", ns, r.Err())
	}
	r = NewReader(b)
	if ss := r.StringList(); ss != nil || r.Err() == nil {
		t.Fatalf("hostile string count accepted: %v, err=%v", ss, r.Err())
	}
	// Truncated bytes field.
	r = NewReader(AppendUvarint(nil, 100))
	if v := r.Bytes(); v != nil || !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("truncated bytes accepted: %v, err=%v", v, r.Err())
	}
}
