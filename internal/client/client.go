// Package client is the Go companion client for xtcd. A Pool dials a fixed
// set of connections and demultiplexes pipelined responses by request id;
// sessions are striped across the pool's connections (a session lives on
// exactly one connection — the server binds it there) and expose the node
// manager's operation set with the same error sentinels, so code written
// against the local engine ports to the wire by swapping the receiver.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/wire"
)

// ErrBusy is returned for StatusBusy rejections (admission control or a full
// session queue); the caller may back off and retry.
var ErrBusy = errors.New("client: server busy")

// ErrShutdown is returned when the server is draining or the connection died.
var ErrShutdown = errors.New("client: server shutting down")

// Options configure a Pool.
type Options struct {
	// Conns is the number of TCP connections to stripe sessions over
	// (default 1).
	Conns int
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
	// RequestDeadline, when positive, is stamped on every request as its
	// deadline-ms budget so the server bounds lock waits on our behalf.
	RequestDeadline time.Duration
	// Metrics, when non-nil, receives the client.* instruments.
	Metrics *metrics.Registry
}

// Pool is a set of connections to one xtcd server.
type Pool struct {
	opts  Options
	conns []*Conn
	next  atomic.Uint64

	mLatency *metrics.Histogram
}

// Dial connects opts.Conns connections to addr.
func Dial(addr string, opts Options) (*Pool, error) {
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	p := &Pool{opts: opts}
	if opts.Metrics != nil {
		p.mLatency = opts.Metrics.Histogram("client.request_ns")
	}
	for i := 0; i < opts.Conns; i++ {
		c, err := dialConn(addr, opts.DialTimeout)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.conns = append(p.conns, c)
	}
	return p, nil
}

// Close tears down every connection; outstanding requests fail with
// ErrShutdown.
func (p *Pool) Close() {
	for _, c := range p.conns {
		c.close(ErrShutdown)
	}
}

// conn picks the next connection round-robin.
func (p *Pool) conn() *Conn {
	return p.conns[p.next.Add(1)%uint64(len(p.conns))]
}

// Ping round-trips a frame on every connection.
func (p *Pool) Ping() error {
	for _, c := range p.conns {
		if _, _, err := c.roundTrip(wire.OpPing, 0, 0, []byte("ping")); err != nil {
			return err
		}
	}
	return nil
}

// Stats fetches the server-side engine counters for a protocol.
func (p *Pool) Stats(protocol string) (wire.Stats, error) {
	_, body, err := p.conn().roundTrip(wire.OpStats, 0, 0, wire.AppendString(nil, protocol))
	if err != nil {
		return wire.Stats{}, err
	}
	r := wire.NewReader(body)
	st := r.Stats()
	return st, r.Err()
}

// Audit runs the server-side integrity audits (document Verify plus lock
// LeakCheck) for a protocol — the remote equivalent of the checks a local
// TaMix run finishes with.
func (p *Pool) Audit(protocol string) error {
	_, _, err := p.conn().roundTrip(wire.OpAudit, 0, 0, wire.AppendString(nil, protocol))
	return err
}

// Conn is one TCP connection: a write lock serializing frames out and a
// reader goroutine routing responses to waiting requests by id.
type Conn struct {
	nc      net.Conn
	wmu     sync.Mutex
	nextReq atomic.Uint32

	mu      sync.Mutex
	pending map[uint32]chan wire.Msg
	err     error
	closed  bool
}

func dialConn(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{nc: nc, pending: map[uint32]chan wire.Msg{}}
	go c.readLoop()
	return c, nil
}

// close fails the connection: every in-flight and future request returns
// cause.
func (c *Conn) close(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = cause
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.nc.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// readLoop routes response frames to their waiters.
func (c *Conn) readLoop() {
	for {
		payload, err := wire.ReadFrame(c.nc)
		if err != nil {
			c.close(fmt.Errorf("%w: %v", ErrShutdown, err))
			return
		}
		m, err := wire.DecodeMsg(payload)
		if err != nil {
			c.close(fmt.Errorf("%w: %v", ErrShutdown, err))
			return
		}
		c.mu.Lock()
		ch := c.pending[m.Req]
		delete(c.pending, m.Req)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// roundTrip sends one request and blocks for its response, returning the
// result portion of the body (after the status byte). Non-OK statuses are
// surfaced as the matching sentinel errors.
func (c *Conn) roundTrip(op wire.Op, session uint32, deadlineMS uint32, body []byte) (wire.Status, []byte, error) {
	req := c.nextReq.Add(1)
	ch := make(chan wire.Msg, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return wire.StatusShutdown, nil, err
	}
	c.pending[req] = ch
	c.mu.Unlock()

	payload := wire.AppendMsg(nil, wire.Msg{
		Op: op, Session: session, Req: req, DeadlineMS: deadlineMS, Body: body,
	})
	c.wmu.Lock()
	err := wire.WriteFrame(c.nc, payload)
	c.wmu.Unlock()
	if err != nil {
		c.close(fmt.Errorf("%w: %v", ErrShutdown, err))
		c.mu.Lock()
		delete(c.pending, req)
		c.mu.Unlock()
		return wire.StatusShutdown, nil, c.err
	}

	m, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return wire.StatusShutdown, nil, err
	}
	if len(m.Body) == 0 {
		return wire.StatusErr, nil, fmt.Errorf("client: empty response body for %s", op)
	}
	status := wire.Status(m.Body[0])
	rest := m.Body[1:]
	if status != wire.StatusOK {
		return status, nil, statusError(status, rest)
	}
	return status, rest, nil
}

// statusError converts a non-OK response to an error wrapping the sentinel
// the local engine would have returned, so errors.Is-based control flow
// (node.IsAbortWorthy, vanished-target checks) works unchanged over the
// wire.
func statusError(status wire.Status, body []byte) error {
	msg := wire.NewReader(body).String()
	if msg == "" {
		msg = status.String()
	}
	var base error
	switch status {
	case wire.StatusDeadlock:
		base = lock.ErrDeadlockVictim
	case wire.StatusTimeout:
		base = lock.ErrLockTimeout
	case wire.StatusCanceled:
		base = lock.ErrCanceled
	case wire.StatusNotFound:
		base = storage.ErrNodeNotFound
	case wire.StatusTxDone:
		base = tx.ErrTxnDone
	case wire.StatusBusy:
		base = ErrBusy
	case wire.StatusShutdown:
		base = ErrShutdown
	default:
		return fmt.Errorf("client: server error: %s", msg)
	}
	return fmt.Errorf("%w: %s", base, msg)
}
